examples/fragmentation.mli:
