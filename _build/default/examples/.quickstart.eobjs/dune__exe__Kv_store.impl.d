examples/kv_store.ml: Alloc_api Array Fptree_lib Nvalloc_core Printf Sim
