examples/fragmentation.ml: Alloc_api Array List Nvalloc_core Printf Workloads
