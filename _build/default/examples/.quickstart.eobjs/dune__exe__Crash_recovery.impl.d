examples/crash_recovery.ml: Config List Nvalloc Nvalloc_core Pmem Printf Sim
