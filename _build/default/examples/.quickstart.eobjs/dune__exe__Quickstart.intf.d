examples/quickstart.mli:
