examples/quickstart.ml: Config Heap Nvalloc Nvalloc_core Pmem Printf Sim
