(* Slab morphing in action (paper section 5.2).

   Run with: dune exec examples/fragmentation.exe

   A server workload changes its allocation size over time (Fragbench's
   W1: 100 B objects, then a 90% delete wave, then 130 B objects). With
   static slab segregation the sparse 100 B slabs are stranded; with slab
   morphing they transform into 130 B slabs and get refilled. *)

let run ~morphing =
  let config =
    {
      Nvalloc_core.Config.log_default with
      Nvalloc_core.Config.slab_morphing = morphing;
      arenas = 1;
      root_slots = 1 lsl 18;
    }
  in
  let inst =
    Alloc_api.Instance.of_nvalloc
      ~name:(if morphing then "with morphing" else "static segregation")
      ~config ~threads:1 ~dev_size:(512 * 1024 * 1024) ()
  in
  let r = Workloads.Fragbench.run inst ~workload:Workloads.Fragbench.w1 () in
  let hist =
    match inst.Alloc_api.Instance.slab_histogram with
    | Some hist -> hist [ 0.3; 0.7; 1.0 ]
    | None -> [| 0; 0; 0 |]
  in
  (inst.Alloc_api.Instance.name, r, hist)

let () =
  Printf.printf "Fragbench W1 (live cap 12 MiB): Fixed 100 B -> delete 90%% -> Fixed 130 B\n\n";
  List.iter
    (fun morphing ->
      let name, r, hist = run ~morphing in
      Printf.printf "%-20s peak %5.1f MiB   slabs by occupancy: %d low / %d mid / %d high\n"
        name
        (float_of_int r.Workloads.Fragbench.peak_after /. 1024.0 /. 1024.0)
        hist.(0) hist.(1) hist.(2))
    [ false; true ];
  print_newline ();
  print_endline
    "morphing converts the stranded low-occupancy 100 B slabs into 130 B slabs,\n\
     cutting peak memory (paper: up to 41.9% / 57.8% less memory)."
