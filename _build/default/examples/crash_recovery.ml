(* Crash consistency demo: power failures at adversarial moments.

   Run with: dune exec examples/crash_recovery.exe

   The device can be armed to "lose power" after a chosen number of
   flushed cache lines. We build a workload, crash it mid-flight at many
   different points, recover, and show that the two consistency models
   both restore a usable, leak-free heap: NVAlloc-LOG by WAL replay,
   NVAlloc-GC by conservative garbage collection from the root table. *)

open Nvalloc_core

let mib = 1024 * 1024

let config variant =
  let base = match variant with `Log -> Config.log_default | `Gc -> Config.gc_default in
  { base with Config.arenas = 2; root_slots = 4096; booklog_chunks = 128; wal_entries = 1024 }

let name = function `Log -> "NVAlloc-LOG" | `Gc -> "NVAlloc-GC"

let run_once variant ~crash_after =
  let dev = Pmem.Device.create ~size:(64 * mib) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config:(config variant) dev clock in
  let th = Nvalloc.thread t clock in
  (* Arm the failure, then run allocations and frees until it fires. *)
  Pmem.Device.schedule_crash_after dev crash_after;
  (try
     for i = 0 to 499 do
       ignore (Nvalloc.malloc_to t th ~size:(32 + (8 * (i mod 16))) ~dest:(Nvalloc.root_addr t i));
       if i mod 3 = 0 then Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
     done;
     Pmem.Device.cancel_scheduled_crash dev
   with Pmem.Device.Injected_crash -> ());
  (* Recover and validate: every published root must point at a live,
     freeable block; allocation must work again. *)
  let t', report = Nvalloc.recover ~config:(config variant) dev clock in
  let th' = Nvalloc.thread t' clock in
  let live = ref 0 in
  for i = 0 to 499 do
    let dest = Nvalloc.root_addr t' i in
    if Nvalloc.read_ptr t' ~dest > 0 then begin
      incr live;
      Nvalloc.free_from t' th' ~dest
    end
  done;
  for i = 0 to 99 do
    ignore (Nvalloc.malloc_to t' th' ~size:64 ~dest:(Nvalloc.root_addr t' i))
  done;
  (!live, report)

let () =
  List.iter
    (fun variant ->
      Printf.printf "== %s ==\n" (name variant);
      List.iter
        (fun crash_after ->
          let live, report = run_once variant ~crash_after in
          Printf.printf
            "  crash after %4d flushed lines: %3d live roots recovered, %d leaked blocks reclaimed%s\n"
            crash_after live report.Nvalloc.leaked_blocks_reclaimed
            (match variant with
            | `Log -> Printf.sprintf " (WAL entries replayed: %d)" report.Nvalloc.wal_entries_replayed
            | `Gc -> Printf.sprintf " (GC marked %d blocks)" report.Nvalloc.gc_blocks_marked))
        [ 50; 200; 500; 1000; 2000 ];
      print_newline ())
    [ `Log; `Gc ];
  print_endline "all crash points recovered to a usable, leak-free heap."
