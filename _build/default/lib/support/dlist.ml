type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable len : int;
}

let create () = { head = None; tail = None; len = 0 }
let length t = t.len
let is_empty t = t.len = 0
let value n = n.v

let push_front t v =
  let n = { v; prev = None; next = t.head; linked = true } in
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n;
  t.len <- t.len + 1;
  n

let push_back t v =
  let n = { v; prev = t.tail; next = None; linked = true } in
  (match t.tail with Some tl -> tl.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n;
  t.len <- t.len + 1;
  n

let remove t n =
  assert n.linked;
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.linked <- false;
  t.len <- t.len - 1

let pop_front t =
  match t.head with
  | None -> None
  | Some n ->
      remove t n;
      Some n.v

let peek_front t = match t.head with None -> None | Some n -> Some n.v

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.v;
        go next
  in
  go t.head

let find_node pred t =
  let rec go = function
    | None -> None
    | Some n -> if pred n.v then Some n else go n.next
  in
  go t.head

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc
