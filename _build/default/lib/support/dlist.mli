(** Intrusive doubly-linked list with O(1) removal by node handle.

    NVAlloc keeps slabs on an LRU list scanned head-to-tail when choosing
    a morphing candidate (section 5.2), and keeps extents on the
    activated/reclaimed/retained lists; all of them need O(1) unlink of an
    arbitrary element, which OCaml's [List] cannot give. *)

type 'a t
type 'a node

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val value : 'a node -> 'a

val push_front : 'a t -> 'a -> 'a node
val push_back : 'a t -> 'a -> 'a node

val remove : 'a t -> 'a node -> unit
(** Unlink the node. Removing an already-removed node is an error
    (asserted). *)

val pop_front : 'a t -> 'a option
val peek_front : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. The callback must not modify the list. *)

val find_node : ('a -> bool) -> 'a t -> 'a node option
(** First node (from the front) whose value satisfies the predicate. *)

val to_list : 'a t -> 'a list
