module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type key = Ord.t
  type color = Red | Black
  type 'a node = Leaf | Node of color * 'a node * key * 'a * 'a node
  type 'a t = { mutable root : 'a node; mutable size : int }

  let create () = { root = Leaf; size = 0 }
  let is_empty t = t.root = Leaf
  let cardinal t = t.size

  (* Kahrs' balance: repairs a red-red violation one level down, used by
     both insertion and deletion rebalancing. *)
  let balance left key value right =
    match (left, key, value, right) with
    | Node (Red, a, xk, xv, b), yk, yv, Node (Red, c, zk, zv, d) ->
        Node (Red, Node (Black, a, xk, xv, b), yk, yv, Node (Black, c, zk, zv, d))
    | Node (Red, Node (Red, a, xk, xv, b), yk, yv, c), zk, zv, d ->
        Node (Red, Node (Black, a, xk, xv, b), yk, yv, Node (Black, c, zk, zv, d))
    | Node (Red, a, xk, xv, Node (Red, b, yk, yv, c)), zk, zv, d ->
        Node (Red, Node (Black, a, xk, xv, b), yk, yv, Node (Black, c, zk, zv, d))
    | a, xk, xv, Node (Red, b, yk, yv, Node (Red, c, zk, zv, d)) ->
        Node (Red, Node (Black, a, xk, xv, b), yk, yv, Node (Black, c, zk, zv, d))
    | a, xk, xv, Node (Red, Node (Red, b, yk, yv, c), zk, zv, d) ->
        Node (Red, Node (Black, a, xk, xv, b), yk, yv, Node (Black, c, zk, zv, d))
    | a, xk, xv, b -> Node (Black, a, xk, xv, b)

  let blacken = function
    | Node (Red, l, k, v, r) -> Node (Black, l, k, v, r)
    | n -> n

  exception Unchanged
  (* Raised by [del] when the key was absent: the wrapper then keeps both
     the root and [size] untouched. *)

  let rec mem_node key = function
    | Leaf -> false
    | Node (_, l, k, _, r) ->
        let c = Ord.compare key k in
        if c = 0 then true else if c < 0 then mem_node key l else mem_node key r

  let insert t key value =
    let existed = mem_node key t.root in
    let rec ins = function
      | Leaf -> Node (Red, Leaf, key, value, Leaf)
      | Node (color, l, k, v, r) -> (
          let c = Ord.compare key k in
          if c = 0 then Node (color, l, key, value, r)
          else if c < 0 then
            match color with
            | Black -> balance (ins l) k v r
            | Red -> Node (Red, ins l, k, v, r)
          else
            match color with
            | Black -> balance l k v (ins r)
            | Red -> Node (Red, l, k, v, ins r))
    in
    t.root <- blacken (ins t.root);
    if not existed then t.size <- t.size + 1

  (* --- deletion (Kahrs) ------------------------------------------------ *)

  let sub1 = function
    | Node (Black, a, k, v, b) -> Node (Red, a, k, v, b)
    | _ -> assert false

  let rec bal_left l k v r =
    match (l, k, v, r) with
    | Node (Red, a, xk, xv, b), yk, yv, c ->
        Node (Red, Node (Black, a, xk, xv, b), yk, yv, c)
    | bl, xk, xv, Node (Black, a, yk, yv, b) ->
        balance bl xk xv (Node (Red, a, yk, yv, b))
    | bl, xk, xv, Node (Red, Node (Black, a, yk, yv, b), zk, zv, c) ->
        Node (Red, Node (Black, bl, xk, xv, a), yk, yv, balance b zk zv (sub1 c))
    | _ -> assert false

  and bal_right l k v r =
    match (l, k, v, r) with
    | a, xk, xv, Node (Red, b, yk, yv, c) ->
        Node (Red, a, xk, xv, Node (Black, b, yk, yv, c))
    | Node (Black, a, xk, xv, b), yk, yv, bl ->
        balance (Node (Red, a, xk, xv, b)) yk yv bl
    | Node (Red, a, xk, xv, Node (Black, b, yk, yv, c)), zk, zv, bl ->
        Node (Red, balance (sub1 a) xk xv b, yk, yv, Node (Black, c, zk, zv, bl))
    | _ -> assert false

  and fuse l r =
    match (l, r) with
    | Leaf, x -> x
    | x, Leaf -> x
    | Node (Red, a, xk, xv, b), Node (Red, c, yk, yv, d) -> (
        match fuse b c with
        | Node (Red, b', zk, zv, c') ->
            Node (Red, Node (Red, a, xk, xv, b'), zk, zv, Node (Red, c', yk, yv, d))
        | bc -> Node (Red, a, xk, xv, Node (Red, bc, yk, yv, d)))
    | Node (Black, a, xk, xv, b), Node (Black, c, yk, yv, d) -> (
        match fuse b c with
        | Node (Red, b', zk, zv, c') ->
            Node (Red, Node (Black, a, xk, xv, b'), zk, zv, Node (Black, c', yk, yv, d))
        | bc -> bal_left a xk xv (Node (Black, bc, yk, yv, d)))
    | a, Node (Red, b, xk, xv, c) -> Node (Red, fuse a b, xk, xv, c)
    | Node (Red, a, xk, xv, b), c -> Node (Red, a, xk, xv, fuse b c)

  let remove t key =
    let rec del = function
      | Leaf -> raise_notrace Unchanged
      | Node (_, a, yk, yv, b) ->
          let c = Ord.compare key yk in
          if c < 0 then del_left a yk yv b
          else if c > 0 then del_right a yk yv b
          else fuse a b
    and del_left a yk yv b =
      match a with
      | Node (Black, _, _, _, _) -> bal_left (del a) yk yv b
      | _ -> Node (Red, del a, yk, yv, b)
    and del_right a yk yv b =
      match b with
      | Node (Black, _, _, _, _) -> bal_right a yk yv (del b)
      | _ -> Node (Red, a, yk, yv, del b)
    in
    match blacken (del t.root) with
    | root ->
        t.root <- root;
        t.size <- t.size - 1
    | exception Unchanged -> ()

  (* --- queries --------------------------------------------------------- *)

  let find_opt t key =
    let rec go = function
      | Leaf -> None
      | Node (_, l, k, v, r) ->
          let c = Ord.compare key k in
          if c = 0 then Some v else if c < 0 then go l else go r
    in
    go t.root

  let mem t key = mem_node key t.root

  let min_binding_opt t =
    let rec go = function
      | Leaf -> None
      | Node (_, Leaf, k, v, _) -> Some (k, v)
      | Node (_, l, _, _, _) -> go l
    in
    go t.root

  let max_binding_opt t =
    let rec go = function
      | Leaf -> None
      | Node (_, _, k, v, Leaf) -> Some (k, v)
      | Node (_, _, _, _, r) -> go r
    in
    go t.root

  let find_first_geq t key =
    let rec go best = function
      | Leaf -> best
      | Node (_, l, k, v, r) ->
          let c = Ord.compare key k in
          if c = 0 then Some (k, v)
          else if c < 0 then go (Some (k, v)) l
          else go best r
    in
    go None t.root

  let find_last_leq t key =
    let rec go best = function
      | Leaf -> best
      | Node (_, l, k, v, r) ->
          let c = Ord.compare key k in
          if c = 0 then Some (k, v)
          else if c < 0 then go best l
          else go (Some (k, v)) r
    in
    go None t.root

  let find_last_lt t key =
    let rec go best = function
      | Leaf -> best
      | Node (_, l, k, v, r) ->
          let c = Ord.compare key k in
          if c <= 0 then go best l else go (Some (k, v)) r
    in
    go None t.root

  let iter f t =
    let rec go = function
      | Leaf -> ()
      | Node (_, l, k, v, r) ->
          go l;
          f k v;
          go r
    in
    go t.root

  let fold f t init =
    let rec go acc = function
      | Leaf -> acc
      | Node (_, l, k, v, r) -> go (f k v (go acc l)) r
    in
    go init t.root

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let invariants_ok t =
    (* Returns the black height, raises on violation. *)
    let rec check lo hi = function
      | Leaf -> 1
      | Node (color, l, k, _, r) ->
          (match lo with Some lo -> assert (Ord.compare lo k < 0) | None -> ());
          (match hi with Some hi -> assert (Ord.compare k hi < 0) | None -> ());
          (if color = Red then
             match (l, r) with
             | Node (Red, _, _, _, _), _ | _, Node (Red, _, _, _, _) -> assert false
             | _ -> ());
          let bl = check lo (Some k) l in
          let br = check (Some k) hi r in
          assert (bl = br);
          bl + (if color = Black then 1 else 0)
    in
    match check None None t.root with _ -> true | exception Assert_failure _ -> false
end
