(** Red-black tree (ordered map).

    NVAlloc uses red-black trees in DRAM for three indexes: the address
    index of extents (the paper calls it an R-tree: keys are extent
    start/end addresses), the best-fit size index over free extents, and
    the vchunk index of the bookkeeping log. The implementation is the
    classic persistent red-black tree (Okasaki insertion, Kahrs deletion)
    wrapped in a mutable handle, which gives us simple code with verified
    invariants (see the property tests) at the modest cost of allocation —
    irrelevant here since tree time is charged through the simulated
    latency model, not measured on the host.

    [find_first_geq]/[find_last_leq] provide the ceiling/floor searches
    that best-fit allocation and neighbour coalescing need. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type key = Ord.t
  type 'a t

  val create : unit -> 'a t
  val is_empty : 'a t -> bool
  val cardinal : 'a t -> int

  val insert : 'a t -> key -> 'a -> unit
  (** Replaces any existing binding for the key. *)

  val remove : 'a t -> key -> unit
  (** No-op if the key is absent. *)

  val find_opt : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool
  val min_binding_opt : 'a t -> (key * 'a) option
  val max_binding_opt : 'a t -> (key * 'a) option

  val find_first_geq : 'a t -> key -> (key * 'a) option
  (** Smallest binding whose key is >= the argument. *)

  val find_last_leq : 'a t -> key -> (key * 'a) option
  (** Largest binding whose key is <= the argument. *)

  val find_last_lt : 'a t -> key -> (key * 'a) option
  (** Largest binding whose key is < the argument (left neighbour). *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  (** In increasing key order. *)

  val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val to_list : 'a t -> (key * 'a) list

  val invariants_ok : 'a t -> bool
  (** Checks BST order, no red node with a red child, and equal black
      height on all paths. Exposed for the property tests. *)
end
