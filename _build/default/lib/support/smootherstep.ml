let curve x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else x *. x *. x *. ((x *. ((x *. 6.0) -. 15.0)) +. 10.0)

let limit ~total ~elapsed_fraction =
  let keep = 1.0 -. curve elapsed_fraction in
  int_of_float (Float.round (float_of_int total *. keep))
