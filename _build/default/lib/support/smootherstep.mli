(** Smootherstep decay curve.

    jemalloc — and NVAlloc, which reuses its parameters (section 2.2) —
    shrinks the reclaimed/retained extent lists over time: at each decay
    tick, a list may hold at most [limit total elapsed] bytes, where the
    allowed fraction follows Perlin's smootherstep from 1 down to 0 over
    the decay interval. *)

val curve : float -> float
(** [curve x] for [x] in [0, 1] is [6x^5 - 15x^4 + 10x^3]; clamped
    outside the interval. Monotone from 0 to 1. *)

val limit : total:int -> elapsed_fraction:float -> int
(** Maximum bytes a list holding [total] bytes may keep when
    [elapsed_fraction] of the decay interval has passed since the list
    last grew: [total * (1 - curve elapsed_fraction)]. *)
