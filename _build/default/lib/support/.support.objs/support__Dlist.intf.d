lib/support/dlist.mli:
