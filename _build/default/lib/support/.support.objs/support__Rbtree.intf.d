lib/support/rbtree.mli:
