lib/support/rbtree.ml: List
