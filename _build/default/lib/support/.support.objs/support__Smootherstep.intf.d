lib/support/smootherstep.mli:
