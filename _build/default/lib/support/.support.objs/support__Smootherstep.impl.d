lib/support/smootherstep.ml: Float
