lib/support/dlist.ml: List
