lib/sim/clock.mli:
