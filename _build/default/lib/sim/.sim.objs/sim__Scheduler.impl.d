lib/sim/scheduler.ml: Array Clock Float
