lib/sim/lock.ml: Clock
