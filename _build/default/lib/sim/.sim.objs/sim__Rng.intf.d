lib/sim/rng.mli:
