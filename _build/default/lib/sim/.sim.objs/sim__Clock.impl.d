lib/sim/clock.ml:
