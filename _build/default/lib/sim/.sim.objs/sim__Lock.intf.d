lib/sim/lock.mli: Clock
