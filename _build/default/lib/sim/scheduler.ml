type thread = { clock : Clock.t; step : unit -> bool }

let run threads =
  let n = Array.length threads in
  let alive = Array.make n true in
  let alive_count = ref n in
  while !alive_count > 0 do
    (* Pick the runnable thread with the smallest clock. A linear scan is
       fine: thread counts are at most 64 in every experiment. *)
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if alive.(i) then
        match !best with
        | -1 -> best := i
        | b -> if threads.(i).clock.Clock.now < threads.(b).clock.Clock.now then best := i
    done;
    let i = !best in
    if not (threads.(i).step ()) then begin
      alive.(i) <- false;
      decr alive_count
    end
  done

let makespan threads =
  Array.fold_left (fun acc t -> Float.max acc t.clock.Clock.now) 0.0 threads
