type t = { mutable now : float; id : int }

let counter = ref 0

let create () =
  incr counter;
  { now = 0.0; id = !counter }

let charge t ns = t.now <- t.now +. ns
let wait_until t time = if time > t.now then t.now <- time
