(** Per-thread simulated clock.

    Every logical thread in the simulation owns one clock, measured in
    nanoseconds since the start of the run. All latency charged by the
    persistent-memory device, locks and CPU work advances the clock of the
    thread performing the operation. *)

type t = { mutable now : float; id : int }

val create : unit -> t
(** Each clock gets a unique [id]; the device uses it to keep per-thread
    flush-stream state (reflush windows, sequentiality), since those are
    properties of one core's write stream. *)

val charge : t -> float -> unit
(** [charge t ns] advances the clock by [ns] nanoseconds. *)

val wait_until : t -> float -> unit
(** [wait_until t time] advances the clock to [time] if it is in the
    future; a no-op otherwise. *)
