(** Figure 17 (bookkeeping-log GC overhead) and Figure 18 (recovery). *)

let fig17 () =
  let configs =
    [
      ("w/o GC", { Factory.log_full with Nvalloc_core.Config.booklog_gc = false;
                   booklog_chunks = 4096 });
      ("GC on", { Factory.log_full with Nvalloc_core.Config.booklog_slow_gc_threshold = 0.002 });
    ]
  in
  let benchmarks :
      (string * (Alloc_api.Instance.t -> threads:int -> Workloads.Driver.result)) list =
    [
      ("Larson-large", fun inst ~threads -> Workloads.Larson.run inst ~params:(Sizes.larson_large threads) ());
      ("DBMStest", fun inst ~threads -> Workloads.Dbmstest.run inst ~params:(Sizes.dbmstest threads) ());
    ]
  in
  let threads = 8 in
  let rows =
    List.map
      (fun (bench_name, run) ->
        bench_name
        :: List.map
             (fun (label, config) ->
               let inst =
                 Factory.make ~dev_size:Sizes.large_dev ~threads
                   (Factory.Nv_custom (label, config))
               in
               let r = run inst ~threads in
               Output.mops r.Workloads.Driver.mops)
             configs)
      benchmarks
  in
  [
    {
      Output.id = "fig17";
      title = "Bookkeeping-log GC overhead (Mops/s, 8 threads)";
      header = [ "benchmark"; "w/o GC"; "GC on (Usage_pmem=0.2%)" ];
      rows;
      notes = [ "paper: 3% drop on Larson-large, 8% on DBMStest" ];
    };
  ]

let fig18 () =
  let kinds =
    [ Factory.Nvm_malloc; Factory.Pmdk; Factory.Nv_log; Factory.Ralloc; Factory.Makalu;
      Factory.Nv_gc ]
  in
  let rows =
    List.map
      (fun kind ->
        let inst = Factory.make ~threads:1 kind in
        let t = Workloads.Recovery_workload.run inst () in
        [ Factory.name kind; Output.ms t; Output.us t ])
      kinds
  in
  [
    {
      Output.id = "fig18";
      title = "Recovery time after building a 20k-node linked list";
      header = [ "allocator"; "ms"; "us" ];
      rows;
      notes =
        [
          "paper ordering: nvm_malloc << PMDK < NVAlloc-LOG << Ralloc < Makalu ~ NVAlloc-GC";
        ];
    };
  ]
