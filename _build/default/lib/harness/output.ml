type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let line r =
    String.concat "  " (List.mapi (fun i cell -> pad widths.(i) cell) r)
  in
  Printf.printf "\n== %s: %s ==\n" t.id t.title;
  Printf.printf "%s\n" (line t.header);
  Printf.printf "%s\n" (String.make (String.length (line t.header)) '-');
  List.iter (fun r -> Printf.printf "%s\n" (line r)) t.rows;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) t.notes;
  flush stdout

let mops v = Printf.sprintf "%.3f" v
let mib b = Printf.sprintf "%.1f" (float_of_int b /. 1024.0 /. 1024.0)
let ms ns = Printf.sprintf "%.2f" (ns /. 1e6)
let us ns = Printf.sprintf "%.1f" (ns /. 1e3)
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let ratio v = Printf.sprintf "%.2fx" v
