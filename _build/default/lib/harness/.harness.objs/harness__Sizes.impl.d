lib/harness/sizes.ml: Workloads
