lib/harness/registry.mli: Output
