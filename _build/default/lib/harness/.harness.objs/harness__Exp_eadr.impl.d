lib/harness/exp_eadr.ml: Alloc_api Char Exp_large Exp_sensitivity Exp_small Factory List Output Printf Sizes Workloads
