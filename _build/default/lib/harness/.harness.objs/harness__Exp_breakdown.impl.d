lib/harness/exp_breakdown.ml: Alloc_api Array Char Factory Float List Output Pmem Printf Sim Sizes Workloads
