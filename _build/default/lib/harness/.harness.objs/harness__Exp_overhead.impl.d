lib/harness/exp_overhead.ml: Alloc_api Factory List Nvalloc_core Output Sizes Workloads
