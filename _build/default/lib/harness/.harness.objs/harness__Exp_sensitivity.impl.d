lib/harness/exp_sensitivity.ml: Alloc_api Array Factory List Output Printf Sizes Workloads
