lib/harness/output.ml: Array List Printf String
