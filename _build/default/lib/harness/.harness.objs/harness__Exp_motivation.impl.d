lib/harness/exp_motivation.ml: Alloc_api Exp_small Factory List Output Pmem Sizes Workloads
