lib/harness/exp_space.ml: Factory List Output Sizes Workloads
