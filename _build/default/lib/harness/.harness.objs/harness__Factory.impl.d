lib/harness/factory.ml: Alloc_api Baselines Config Nvalloc_core
