lib/harness/registry.ml: Exp_breakdown Exp_eadr Exp_fptree Exp_frag Exp_large Exp_motivation Exp_overhead Exp_sensitivity Exp_small Exp_space Exp_variants List Output Printf
