lib/harness/exp_variants.ml: Exp_small Factory List Output Workloads
