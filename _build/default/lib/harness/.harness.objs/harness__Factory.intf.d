lib/harness/factory.mli: Alloc_api Nvalloc_core
