lib/harness/exp_frag.ml: Alloc_api Array Factory List Output Printf Workloads
