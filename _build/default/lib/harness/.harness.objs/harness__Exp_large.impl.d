lib/harness/exp_large.ml: Alloc_api Char Factory List Output Printf Sizes Workloads
