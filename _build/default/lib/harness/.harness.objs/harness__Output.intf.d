lib/harness/output.mli:
