lib/harness/exp_small.ml: Alloc_api Char Factory List Output Printf Sizes Workloads
