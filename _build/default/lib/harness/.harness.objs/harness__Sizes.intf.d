lib/harness/sizes.mli: Workloads
