lib/harness/exp_fptree.ml: Factory Fptree_lib List Output Sizes Workloads
