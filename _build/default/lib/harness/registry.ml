type experiment = { id : string; title : string; run : unit -> Output.table list }

let all =
  [
    { id = "tab1"; title = "Table 1: Fragbench workload configuration"; run = Exp_frag.tab1 };
    { id = "tab2"; title = "Table 2: techniques in the two NVAlloc variants"; run = Exp_small.tab2 };
    { id = "fig1a"; title = "Figure 1(a): reflush ratios"; run = Exp_motivation.fig1a };
    { id = "fig1b"; title = "Figure 1(b): Fragbench peak memory"; run = Exp_motivation.fig1b };
    { id = "fig2"; title = "Figure 2: metadata flush-address dispersion"; run = Exp_motivation.fig2 };
    { id = "fig9"; title = "Figure 9: small allocations, strong consistency"; run = Exp_small.fig9 };
    { id = "fig10"; title = "Figure 10: small allocations, weak consistency"; run = Exp_small.fig10 };
    { id = "fig11"; title = "Figure 11: time breakdown"; run = Exp_breakdown.fig11 };
    { id = "fig12"; title = "Figure 12: large allocations"; run = Exp_large.fig12 };
    { id = "fig13"; title = "Figure 13: space consumption"; run = Exp_space.fig13 };
    { id = "fig14"; title = "Figure 14: FPTree"; run = Exp_fptree.fig14 };
    { id = "fig15"; title = "Figure 15: Fragbench"; run = Exp_frag.fig15 };
    { id = "fig16a"; title = "Figure 16(a): bit-stripe sensitivity"; run = Exp_sensitivity.fig16a };
    { id = "fig16b"; title = "Figure 16(b): SU sensitivity"; run = Exp_sensitivity.fig16b };
    { id = "fig17"; title = "Figure 17: bookkeeping GC overhead"; run = Exp_overhead.fig17 };
    { id = "fig18"; title = "Figure 18: recovery time"; run = Exp_overhead.fig18 };
    { id = "fig19"; title = "Figure 19: interleaved mapping on eADR"; run = Exp_eadr.fig19 };
    { id = "fig20"; title = "Figure 20: small allocations on eADR"; run = Exp_eadr.fig20 };
    { id = "fig21"; title = "Figure 21: large allocations on eADR"; run = Exp_eadr.fig21 };
    {
      id = "ext-variants";
      title = "Extension: LOG vs GC vs internal-collection variants";
      run = Exp_variants.ext_variants;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one id =
  match find id with
  | Some e ->
      Printf.printf "\n### %s — %s\n" e.id e.title;
      List.iter Output.print (e.run ())
  | None -> Printf.eprintf "unknown experiment %s\n" id

let run_all () = List.iter (fun e -> run_one e.id) all
