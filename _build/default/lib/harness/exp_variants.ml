(** Extension experiment (beyond the paper): the three consistency
    variants side by side, including the internal-collection model the
    paper names as future work (sections 4.1 and 7). *)

let ext_variants () =
  let kinds = [ Factory.Nv_log; Factory.Nv_gc; Factory.Nv_ic ] in
  let benchmarks = [ List.nth Exp_small.benchmarks 0; List.nth Exp_small.benchmarks 3 ] in
  let rows =
    List.concat_map
      (fun (bench_name, run) ->
        List.map
          (fun threads ->
            (bench_name ^ " " ^ string_of_int threads ^ "T")
            :: List.map
                 (fun kind ->
                   let inst = Factory.make ~threads kind in
                   let r = run inst ~threads in
                   Output.mops r.Workloads.Driver.mops)
                 kinds)
          [ 1; 8; 32 ])
      benchmarks
  in
  (* Recovery cost of the three models on the linked-list workload. *)
  let rec_rows =
    List.map
      (fun kind ->
        let inst = Factory.make ~threads:1 kind in
        let t = Workloads.Recovery_workload.run inst () in
        [ Factory.name kind; Output.ms t ])
      kinds
  in
  [
    {
      Output.id = "ext-variants";
      title = "Extension: consistency variants (Mops/s), incl. internal collection";
      header = "benchmark" :: List.map Factory.name kinds;
      rows;
      notes =
        [
          "NVAlloc-IC: no WAL, eager bitmap persistence, POBJ_FIRST/NEXT-style";
          "enumeration; in-flight crash leaks are resolved by the application";
        ];
    };
    {
      Output.id = "ext-variants-recovery";
      title = "Extension: recovery time of the three variants (ms)";
      header = [ "variant"; "recovery ms" ];
      rows = rec_rows;
      notes = [ "IC needs no replay and no GC: recovery only rebuilds volatile state" ];
    };
  ]
