(** Figures 1 and 2: the motivation experiments (sections 3.1-3.3). *)

let fig1a () =
  (* Reflush vs regular-flush shares of allocator-induced flushes, per
     benchmark, for the WAL-based allocators, at 8 threads. *)
  let threads = 8 in
  let kinds = [ Factory.Pmdk; Factory.Nvm_malloc; Factory.Pallocator ] in
  let rows =
    List.concat_map
      (fun (bench_name, run) ->
        List.map
          (fun kind ->
            let inst = Factory.make ~threads kind in
            let _ = run inst ~threads in
            let st = Pmem.Device.stats inst.Alloc_api.Instance.dev in
            let total = Pmem.Stats.flushes st in
            let re = Pmem.Stats.reflushes st in
            [
              bench_name;
              Factory.name kind;
              string_of_int total;
              Output.pct (if total = 0 then 0.0 else float_of_int re /. float_of_int total);
            ])
          kinds)
      Exp_small.benchmarks
  in
  [
    {
      Output.id = "fig1a";
      title = "Ratio of cache line reflushes (8 threads)";
      header = [ "benchmark"; "allocator"; "flushes"; "reflush share" ];
      rows;
      notes = [ "paper: 40.4%-99.7% of allocator-induced flushes are reflushes" ];
    };
  ]

let frag_kinds =
  [ Factory.Jemalloc; Factory.Makalu; Factory.Nvm_malloc; Factory.Tcmalloc; Factory.Ralloc;
    Factory.Pmdk ]

let fig1b () =
  let rows =
    List.map
      (fun w ->
        w.Workloads.Fragbench.label
        :: List.map
             (fun kind ->
               let inst = Factory.make ~threads:1 kind in
               let r = Workloads.Fragbench.run inst ~workload:w () in
               Output.mib r.Workloads.Fragbench.peak_after)
             frag_kinds)
      Workloads.Fragbench.all
  in
  [
    {
      Output.id = "fig1b";
      title = "Peak memory consumption on Fragbench (MiB; live cap 12 MiB)";
      header = "workload" :: List.map Factory.name frag_kinds;
      rows;
      notes = [ "paper: up to 2.8x the live data for 1 GiB live" ];
    };
  ]

(* Dispersion statistics of the first 1000 metadata-flush addresses while
   running DBMStest — the textual rendering of Figure 2's scatter plots. *)
let fig2 () =
  let threads = 4 in
  let kinds =
    [ Factory.Nvm_malloc; Factory.Pallocator; Factory.Pmdk; Factory.Makalu; Factory.Nv_log ]
  in
  let rows =
    List.map
      (fun kind ->
        let inst = Factory.make ~dev_size:Sizes.large_dev ~threads kind in
        let _ = Workloads.Dbmstest.run inst ~params:(Sizes.dbmstest threads) () in
        let st = Pmem.Device.stats inst.Alloc_api.Instance.dev in
        let addrs = List.map snd (Pmem.Stats.trace st) in
        let n = List.length addrs in
        if n = 0 then [ Factory.name kind; "0"; "-"; "-"; "-" ]
        else begin
          let mn = List.fold_left min max_int addrs and mx = List.fold_left max 0 addrs in
          let fn = float_of_int n in
          let mean = List.fold_left (fun a x -> a +. float_of_int x) 0.0 addrs /. fn in
          let var =
            List.fold_left (fun a x -> a +. ((float_of_int x -. mean) ** 2.0)) 0.0 addrs /. fn
          in
          let stddev = sqrt var in
          (* Locality: share of consecutive flushes within one 4 KiB page. *)
          let rec local acc = function
            | a :: (b :: _ as rest) ->
                local (if abs (a - b) < 4096 then acc + 1 else acc) rest
            | _ -> acc
          in
          let loc = float_of_int (local 0 addrs) /. float_of_int (max 1 (n - 1)) in
          [
            Factory.name kind;
            string_of_int n;
            Output.mib (mx - mn);
            Output.mib (int_of_float stddev);
            Output.pct loc;
          ]
        end)
      kinds
  in
  [
    {
      Output.id = "fig2";
      title = "Metadata flush addresses during DBMStest (first 1000 flushes)";
      header = [ "allocator"; "samples"; "addr span MiB"; "stddev MiB"; "sequential share" ];
      rows;
      notes =
        [
          "baselines scatter metadata flushes across the heap (large span, low locality)";
          "NVAlloc-LOG confines them to the bookkeeping log (small span, high locality)";
        ];
    };
  ]
