(** Figures 9 and 10: small-allocation throughput vs thread count, for
    the strongly and weakly consistent allocator sets; plus Table 2. *)

let benchmarks :
    (string * (Alloc_api.Instance.t -> threads:int -> Workloads.Driver.result)) list =
  [
    ("Threadtest", fun inst ~threads -> Workloads.Threadtest.run inst ~params:(Sizes.threadtest threads) ());
    ("Prod-con", fun inst ~threads -> Workloads.Prodcon.run inst ~params:(Sizes.prodcon threads) ());
    ("Shbench", fun inst ~threads -> Workloads.Shbench.run inst ~params:(Sizes.shbench threads) ());
    ("Larson-small", fun inst ~threads -> Workloads.Larson.run inst ~params:(Sizes.larson_small threads) ());
  ]

let sweep ~id_prefix ~kinds () =
  List.mapi
    (fun i (bench_name, run) ->
      let rows =
        List.map
          (fun threads ->
            string_of_int threads
            :: List.map
                 (fun kind ->
                   let inst = Factory.make ~threads kind in
                   let r = run inst ~threads in
                   Output.mops r.Workloads.Driver.mops)
                 kinds)
          Sizes.threads_sweep
      in
      {
        Output.id = Printf.sprintf "%s%c" id_prefix (Char.chr (Char.code 'a' + i));
        title = Printf.sprintf "%s throughput (Mops/s) vs threads" bench_name;
        header = "threads" :: List.map Factory.name kinds;
        rows;
        notes = [];
      })
    benchmarks

let fig9 () = sweep ~id_prefix:"fig9" ~kinds:Factory.strong ()
let fig10 () = sweep ~id_prefix:"fig10" ~kinds:Factory.weak ()

let tab2 () =
  [
    {
      Output.id = "tab2";
      title = "Techniques used in the two variants of NVAlloc";
      header = [ "Allocator"; "Small allocation"; "Large allocation" ];
      rows =
        [
          [ "NVAlloc-LOG"; "IM(WAL,bitmaps,tcache) + slab morphing";
            "IM(WAL,bookkeeping log) + log-structured bookkeeping" ];
          [ "NVAlloc-GC"; "slab morphing (no metadata flushes)";
            "IM(WAL,bookkeeping log) + log-structured bookkeeping" ];
        ];
      notes = [ "IM = interleaved mapping; mirrors paper Table 2" ];
    };
  ]
