let threads_sweep = [ 1; 2; 4; 8; 16; 32; 64 ]

let threadtest threads =
  { Workloads.Threadtest.iterations = 4; objects = max 100 (8000 / threads); size = 64 }

let prodcon threads =
  let pairs = max 1 (threads / 2) in
  { Workloads.Prodcon.per_pair = max 500 (16_000 / pairs); size = 64; queue_cap = 64 }

let shbench threads =
  {
    Workloads.Shbench.iterations = max 250 (16_000 / threads);
    window = 16;
    min_size = 64;
    max_size = 1000;
  }

let larson_small threads =
  {
    Workloads.Larson.slots = 1000;
    ops = max 500 (32_000 / threads);
    min_size = 64;
    max_size = 256;
    cross_frac = 0.2;
  }

let larson_large threads =
  {
    Workloads.Larson.slots = max 4 (256 / threads);
    ops = max 50 (3200 / threads);
    min_size = 32 * 1024;
    max_size = 512 * 1024;
    cross_frac = 0.2;
  }

let dbmstest threads =
  {
    Workloads.Dbmstest.objects = max 8 (256 / threads);
    iterations = 3;
    warmup = 3;
    min_size = 32 * 1024;
    max_size = 512 * 1024;
    delete_frac = 0.9;
  }

let large_dev = 512 * 1024 * 1024
