(** Scaled workload parameterisations.

    The paper's runs are sized for a 40-core Optane box; ours must finish
    on one simulated core in minutes. Each helper keeps the {e total}
    operation count of a run roughly constant across thread counts, so a
    thread sweep measures scalability rather than workload growth; the
    per-experiment scale factors are documented in EXPERIMENTS.md. *)

val threads_sweep : int list
(** [1; 2; 4; 8; 16; 32; 64], as in Figures 9-14 and 20-21. *)

val threadtest : int -> Workloads.Threadtest.params
val prodcon : int -> Workloads.Prodcon.params
val shbench : int -> Workloads.Shbench.params
val larson_small : int -> Workloads.Larson.params
val larson_large : int -> Workloads.Larson.params
val dbmstest : int -> Workloads.Dbmstest.params

val large_dev : int
(** Device size for large-object experiments (512 MiB). *)
