(** Plain-text rendering of experiment results: one table per paper
    figure/table, with the same rows/series the paper reports. *)

type table = {
  id : string;  (** e.g. "fig9a" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val print : table -> unit

val mops : float -> string
(** Throughput in Mops/s, 3 significant decimals. *)

val mib : int -> string
val ms : float -> string
val us : float -> string
val pct : float -> string
val ratio : float -> string
(** e.g. "3.42x". *)
