(** Figure 12: large-allocation throughput (Larson-large, DBMStest). *)

let benchmarks :
    (string * (Alloc_api.Instance.t -> threads:int -> Workloads.Driver.result)) list =
  [
    ("Larson-large", fun inst ~threads -> Workloads.Larson.run inst ~params:(Sizes.larson_large threads) ());
    ("DBMStest", fun inst ~threads -> Workloads.Dbmstest.run inst ~params:(Sizes.dbmstest threads) ());
  ]

let sweep ~id_prefix ~eadr () =
  List.mapi
    (fun i (bench_name, run) ->
      let rows =
        List.map
          (fun threads ->
            string_of_int threads
            :: List.map
                 (fun kind ->
                   let inst = Factory.make ~eadr ~dev_size:Sizes.large_dev ~threads kind in
                   let r = run inst ~threads in
                   Output.mops r.Workloads.Driver.mops)
                 Factory.large_set)
          Sizes.threads_sweep
      in
      {
        Output.id = Printf.sprintf "%s%c" id_prefix (Char.chr (Char.code 'a' + i));
        title =
          Printf.sprintf "%s throughput (Mops/s) vs threads%s" bench_name
            (if eadr then " [eADR]" else "");
        header = "threads" :: List.map Factory.name Factory.large_set;
        rows;
        notes = [ "Ralloc excluded: its open-source build mishandles large objects (paper)" ];
      })
    benchmarks

let fig12 () = sweep ~id_prefix:"fig12" ~eadr:false ()
