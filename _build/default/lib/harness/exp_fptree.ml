(** Figure 14: FPTree throughput over the allocators under test. *)

let run_point ~threads kind =
  let inst = Factory.make ~threads kind in
  let params =
    {
      Fptree_lib.Fptree_bench.warmup = 10_000;
      ops_per_thread = max 200 (12_000 / threads);
      key_space = 30_000;
      max_leaves = 4096;
    }
  in
  let r = Fptree_lib.Fptree_bench.run inst ~params () in
  Output.mops r.Workloads.Driver.mops

let table ~id ~title ~kinds =
  {
    Output.id;
    title;
    header = "threads" :: List.map Factory.name kinds;
    rows =
      List.map
        (fun threads ->
          string_of_int threads :: List.map (fun kind -> run_point ~threads kind) kinds)
        Sizes.threads_sweep;
    notes = [];
  }

let fig14 () =
  [
    table ~id:"fig14a" ~title:"FPTree throughput (Mops/s), strongly consistent allocators"
      ~kinds:Factory.strong;
    table ~id:"fig14b" ~title:"FPTree throughput (Mops/s), weakly consistent allocators"
      ~kinds:Factory.weak;
  ]
