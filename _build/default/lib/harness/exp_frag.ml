(** Figure 15 and Table 1: the Fragbench evaluation (section 6.4). *)

let tab1 () =
  [
    {
      Output.id = "tab1";
      title = "Workload configuration in Fragbench";
      header = [ "Workload"; "Before"; "Delete"; "After" ];
      rows =
        List.map
          (fun w ->
            let dist = function
              | Workloads.Fragbench.Fixed n -> Printf.sprintf "Fixed %d B" n
              | Workloads.Fragbench.Uniform (a, b) -> Printf.sprintf "Uniform %d-%d B" a b
            in
            [
              w.Workloads.Fragbench.label;
              dist w.Workloads.Fragbench.before;
              Output.pct w.Workloads.Fragbench.delete_frac;
              dist w.Workloads.Fragbench.after;
            ])
          Workloads.Fragbench.all;
      notes = [];
    };
  ]

let space_kinds =
  [
    Factory.Makalu;
    Factory.Nv_custom ("NVAlloc-LOG w/o SM", Factory.log_no_morph);
    Factory.Nv_log;
  ]

let run_frag kind w =
  let inst = Factory.make ~threads:1 kind in
  (inst, Workloads.Fragbench.run inst ~workload:w ())

let fig15a () =
  [
    {
      Output.id = "fig15a";
      title = "Fragbench peak memory (MiB; live cap 12 MiB)";
      header = "workload" :: List.map Factory.name space_kinds;
      rows =
        List.map
          (fun w ->
            w.Workloads.Fragbench.label
            :: List.map
                 (fun kind ->
                   let _, r = run_frag kind w in
                   Output.mib r.Workloads.Fragbench.peak_after)
                 space_kinds)
          Workloads.Fragbench.all;
      notes = [ "slab morphing reuses mostly-empty slabs of the old size class" ];
    };
  ]

let fig15b () =
  let configs =
    [ ("w/o SM", Factory.log_no_morph); ("with SM", Factory.log_full) ]
  in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun (label, config) ->
            let inst = Factory.make ~threads:1 (Factory.Nv_custom (label, config)) in
            let _ = Workloads.Fragbench.run inst ~workload:w () in
            match inst.Alloc_api.Instance.slab_histogram with
            | Some hist ->
                let h = hist [ 0.3; 0.7; 1.0 ] in
                [
                  w.Workloads.Fragbench.label; label;
                  string_of_int h.(0); string_of_int h.(1); string_of_int h.(2);
                ]
            | None -> [ w.Workloads.Fragbench.label; label; "-"; "-"; "-" ])
          configs)
      Workloads.Fragbench.all
  in
  [
    {
      Output.id = "fig15b";
      title = "Slab count by space utilisation at end of run (NVAlloc-LOG)";
      header = [ "workload"; "config"; "0-30%"; "30-70%"; "70-100%" ];
      rows;
      notes = [ "morphing shifts slabs into the high-utilisation bucket" ];
    };
  ]

let perf_table ~id ~title kinds =
  {
    Output.id;
    title;
    header = "workload" :: List.map Factory.name kinds;
    rows =
      List.map
        (fun w ->
          w.Workloads.Fragbench.label
          :: List.map
               (fun kind ->
                 let _, r = run_frag kind w in
                 Output.ms r.Workloads.Fragbench.result.Workloads.Driver.makespan_ns)
               kinds)
        Workloads.Fragbench.all;
    notes = [];
  }

let fig15c () =
  [
    perf_table ~id:"fig15c" ~title:"Fragbench execution time (ms), strongly consistent"
      [
        Factory.Pmdk;
        Factory.Nvm_malloc;
        Factory.Nv_custom ("NVAlloc-LOG w/o SM", Factory.log_no_morph);
        Factory.Nv_log;
      ];
  ]

let fig15d () =
  [
    perf_table ~id:"fig15d" ~title:"Fragbench execution time (ms), weakly consistent"
      [
        Factory.Makalu;
        Factory.Ralloc;
        Factory.Nv_custom ("NVAlloc-GC w/o SM", Factory.gc_no_morph);
        Factory.Nv_gc;
      ];
  ]

let fig15 () = fig15a () @ fig15b () @ fig15c () @ fig15d ()
