(** Figure 16: sensitivity to the bit-stripe count and the morphing
    space-utilisation threshold SU. *)

let stripe_counts = [ 1; 2; 3; 4; 5; 6; 7; 8; 12; 16; 24; 32 ]

let fig16a () =
  let thread_counts = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun stripes ->
        string_of_int stripes
        :: List.map
             (fun threads ->
               let inst =
                 Factory.make ~threads
                   (Factory.Nv_custom
                      (Printf.sprintf "stripes=%d" stripes, Factory.log_stripes stripes))
               in
               let r = Workloads.Threadtest.run inst ~params:(Sizes.threadtest threads) () in
               Output.ms r.Workloads.Driver.makespan_ns)
             thread_counts)
      stripe_counts
  in
  [
    {
      Output.id = "fig16a";
      title = "Threadtest execution time (ms) vs bit stripes (NVAlloc-LOG)";
      header = "stripes" :: List.map (fun t -> Printf.sprintf "%dT" t) thread_counts;
      rows;
      notes =
        [
          "time drops until the stripes clear the reflush window, then flattens;";
          "large stripe counts at high thread counts pressure the XPBuffer";
        ];
    };
  ]

let fig16b () =
  let sus = [ 0.10; 0.20; 0.30; 0.50 ] in
  let rows =
    List.map
      (fun su ->
        let inst =
          Factory.make ~threads:1
            (Factory.Nv_custom (Printf.sprintf "SU=%.0f%%" (su *. 100.0), Factory.log_su su))
        in
        let r = Workloads.Fragbench.run inst ~workload:Workloads.Fragbench.w4 () in
        let slabs =
          match inst.Alloc_api.Instance.slab_histogram with
          | Some hist -> Array.fold_left ( + ) 0 (hist [ 1.0 ])
          | None -> 0
        in
        [
          Output.pct su;
          Output.mib r.Workloads.Fragbench.peak_after;
          string_of_int slabs;
          Output.ms r.Workloads.Fragbench.result.Workloads.Driver.makespan_ns;
        ])
      sus
  in
  [
    {
      Output.id = "fig16b";
      title = "Morphing threshold SU on Fragbench W4 (NVAlloc-LOG)";
      header = [ "SU"; "peak MiB"; "live slabs"; "time ms" ];
      rows;
      notes =
        [
          "larger SU: more morphing, fewer slabs / less memory, slightly more time";
          "the slab count resolves what the 4 MiB region granularity hides";
        ];
    };
  ]
