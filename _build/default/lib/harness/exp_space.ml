(** Figure 13: space consumption vs thread count. *)

let fig13 () =
  let kinds_tt =
    [ Factory.Pmdk; Factory.Nvm_malloc; Factory.Makalu; Factory.Ralloc; Factory.Nv_log ]
  in
  let kinds_dbms = [ Factory.Pmdk; Factory.Nvm_malloc; Factory.Makalu; Factory.Nv_log ] in
  let tt =
    {
      Output.id = "fig13a";
      title = "Threadtest peak memory (MiB) vs threads";
      header = "threads" :: List.map Factory.name kinds_tt;
      rows =
        List.map
          (fun threads ->
            string_of_int threads
            :: List.map
                 (fun kind ->
                   let inst = Factory.make ~threads kind in
                   let r =
                     Workloads.Threadtest.run inst ~params:(Sizes.threadtest threads) ()
                   in
                   Output.mib r.Workloads.Driver.peak_bytes)
                 kinds_tt)
          Sizes.threads_sweep;
      notes = [];
    }
  in
  let dbms =
    {
      Output.id = "fig13b";
      title = "DBMStest peak memory (MiB) vs threads";
      header = "threads" :: List.map Factory.name kinds_dbms;
      rows =
        List.map
          (fun threads ->
            string_of_int threads
            :: List.map
                 (fun kind ->
                   let inst = Factory.make ~dev_size:Sizes.large_dev ~threads kind in
                   let r = Workloads.Dbmstest.run inst ~params:(Sizes.dbmstest threads) () in
                   Output.mib r.Workloads.Driver.peak_bytes)
                 kinds_dbms)
          Sizes.threads_sweep;
      notes = [ "Ralloc excluded on large objects, as in the paper's Figure 13(b)" ];
    }
  in
  [ tt; dbms ]
