(** Figures 19-21: the emulated eADR platform (section 6.7). Flushes are
    free; NVAlloc disables interleaved mapping (except in Figure 19,
    which demonstrates that it no longer matters). *)

let fig19 () =
  let threads = 4 in
  let rows =
    List.map
      (fun stripes ->
        let inst =
          Alloc_api.Instance.of_nvalloc
            ~name:(Printf.sprintf "stripes=%d" stripes)
            ~config:(Factory.log_stripes stripes)
            ~threads ~dev_size:(128 * 1024 * 1024) ~eadr:true ~eadr_keep_interleave:true ()
        in
        let r = Workloads.Threadtest.run inst ~params:(Sizes.threadtest threads) () in
        [ string_of_int stripes; Output.ms r.Workloads.Driver.makespan_ns ])
      Exp_sensitivity.stripe_counts
  in
  [
    {
      Output.id = "fig19";
      title = "eADR: Threadtest time (ms) vs bit stripes, 4 threads";
      header = [ "stripes"; "time ms" ];
      rows;
      notes = [ "with free flushes the stripe count no longer matters" ];
    };
  ]

let fig20 () =
  List.mapi
    (fun i (bench_name, run) ->
      let rows =
        List.map
          (fun threads ->
            string_of_int threads
            :: List.map
                 (fun kind ->
                   let inst = Factory.make ~eadr:true ~threads kind in
                   let r = run inst ~threads in
                   Output.mops r.Workloads.Driver.mops)
                 Factory.strong)
          Sizes.threads_sweep
      in
      {
        Output.id = Printf.sprintf "fig20%c" (Char.chr (Char.code 'a' + i));
        title = Printf.sprintf "%s throughput (Mops/s) vs threads [eADR]" bench_name;
        header = "threads" :: List.map Factory.name Factory.strong;
        rows;
        notes = [];
      })
    Exp_small.benchmarks

let fig21 () = Exp_large.sweep ~id_prefix:"fig21" ~eadr:true ()
