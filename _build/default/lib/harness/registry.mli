(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id (see DESIGN.md's per-experiment
    index). *)

type experiment = {
  id : string;
  title : string;
  run : unit -> Output.table list;
}

val all : experiment list
val find : string -> experiment option
val run_one : string -> unit
val run_all : unit -> unit
