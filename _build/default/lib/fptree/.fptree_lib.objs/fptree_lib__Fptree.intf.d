lib/fptree/fptree.mli: Alloc_api
