lib/fptree/fptree_bench.mli: Alloc_api Workloads
