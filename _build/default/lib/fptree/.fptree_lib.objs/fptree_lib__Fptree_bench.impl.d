lib/fptree/fptree_bench.ml: Alloc_api Array Fptree Sim Workloads
