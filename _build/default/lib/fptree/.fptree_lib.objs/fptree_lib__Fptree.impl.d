lib/fptree/fptree.ml: Alloc_api Array Hashtbl Int64 List Pmem Printf Sim Stack
