(** FPTree (Oukid et al., SIGMOD'16), the paper's real-world application
    (section 6.3): a hybrid persistent B+tree keeping inner nodes in
    DRAM and leaf nodes in persistent memory.

    Layout follows the paper's setup: 64 entries per node; leaves store
    one byte of fingerprint per entry, a validity bitmap, a next-leaf
    pointer, 8 B keys, and 8 B value slots. Values are {e pointers to
    128 B key-value pair objects} obtained from the allocator under test
    — every insert is a [malloc_to] whose destination is the leaf's value
    slot, every delete a [free_from], so the tree exercises exactly the
    allocator paths the paper compares.

    Concurrency is leaf-grained (one simulated lock per leaf), matching
    FPTree's selective-locking design closely enough for the scaling
    curves. Leaf merging on underflow is elided (the evaluation's 50/50
    insert/delete mix keeps occupancy stable); leaves are anchored in the
    instance's root table so the heap stays leak-free. *)

type t

val fanout : int
(** 64. *)

val create : Alloc_api.Instance.t -> max_leaves:int -> t
(** Uses root-table slots [0, max_leaves) to anchor leaves. *)

val insert : t -> tid:int -> key:int -> unit
(** Inserts [key] with a 128 B payload; overwrites an existing key's
    payload reference (the old payload is freed). Keys must be > 0. *)

val delete : t -> tid:int -> key:int -> bool
(** Removes the key and frees its payload; [false] if absent. *)

val mem : t -> tid:int -> key:int -> bool
val cardinal : t -> int
val leaf_count : t -> int

val check_consistent : t -> (unit, string) result
(** Volatile mirror vs persistent leaf images (test support). *)
