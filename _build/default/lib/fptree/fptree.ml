let fanout = 64

(* Persistent leaf layout (offsets from the leaf block base):
   0    fingerprints (64 * 1 B)
   64   validity bitmap (8 B)
   72   next-leaf pointer (8 B)
   80   keys (64 * 8 B)
   592  value slots = pointers to 128 B KV objects (64 * 8 B)
   1104 = leaf block size *)
let leaf_bytes = 1104
let off_fp i = i
let off_bitmap = 64
let off_next = 72
let off_key i = 80 + (8 * i)
let off_val i = 592 + (8 * i)
let kv_bytes = 128

type leaf = {
  addr : int;
  slot_id : int; (* root-table anchor *)
  lock : Sim.Lock.t;
  keys : int array; (* volatile mirror *)
  occ : bool array;
  mutable count : int;
}

type node = Inner of inner | Leaf_n of leaf

and inner = {
  mutable keys : int array; (* n-1 separators, ascending *)
  mutable children : node array; (* n children *)
  mutable n : int;
}

type t = {
  inst : Alloc_api.Instance.t;
  mutable root : node;
  all_leaves : (int, leaf) Hashtbl.t; (* slot_id -> leaf *)
  mutable cardinal : int;
  mutable next_slot : int;
  max_leaves : int;
  free_slots : int Stack.t;
}

let fingerprint key = key * 0x9E3779B9 land 0xFF
let dev t = t.inst.Alloc_api.Instance.dev

let flush_data t clock ~addr ~len =
  Pmem.Device.flush (dev t) clock Pmem.Stats.Data ~addr ~len

let clock_of t ~tid = t.inst.Alloc_api.Instance.clocks.(tid)

let charge_search t ~tid steps =
  Pmem.Device.charge_work (dev t) (clock_of t ~tid) Pmem.Stats.Search
    ~ns:(float_of_int steps *. 25.0)

let new_leaf t ~tid =
  let slot_id =
    if Stack.is_empty t.free_slots then begin
      let s = t.next_slot in
      if s >= t.max_leaves then failwith "Fptree: out of leaf anchors";
      t.next_slot <- s + 1;
      s
    end
    else Stack.pop t.free_slots
  in
  let dest = t.inst.Alloc_api.Instance.root slot_id in
  let addr = t.inst.Alloc_api.Instance.malloc ~tid ~size:leaf_bytes ~dest in
  let l =
    {
      addr;
      slot_id;
      lock = Sim.Lock.create ();
      keys = Array.make fanout 0;
      occ = Array.make fanout false;
      count = 0;
    }
  in
  Hashtbl.replace t.all_leaves slot_id l;
  l

let create inst ~max_leaves =
  let t =
    {
      inst;
      root = Leaf_n { addr = 0; slot_id = -1; lock = Sim.Lock.create ();
                      keys = [||]; occ = [||]; count = 0 };
      all_leaves = Hashtbl.create 64;
      cardinal = 0;
      next_slot = 0;
      max_leaves;
      free_slots = Stack.create ();
    }
  in
  t.root <- Leaf_n (new_leaf t ~tid:0);
  t

let leaf_count t = Hashtbl.length t.all_leaves
let cardinal t = t.cardinal

(* --- persistent leaf mutations -------------------------------------------- *)

let write_bitmap t clock (l : leaf) =
  let bits = ref 0L in
  for i = 0 to fanout - 1 do
    if l.occ.(i) then bits := Int64.logor !bits (Int64.shift_left 1L i)
  done;
  Pmem.Device.write_int64 (dev t) (l.addr + off_bitmap) !bits;
  flush_data t clock ~addr:(l.addr + off_bitmap) ~len:8

let persist_entry t clock (l : leaf) j key =
  Pmem.Device.write_int64 (dev t) (l.addr + off_key j) (Int64.of_int key);
  Pmem.Device.write_u8 (dev t) (l.addr + off_fp j) (fingerprint key);
  flush_data t clock ~addr:(l.addr + off_key j) ~len:8;
  flush_data t clock ~addr:(l.addr + off_fp j) ~len:1

(* Insert [key] into leaf [l], which must have room; allocates the 128 B
   payload with the leaf's value slot as destination (FPTree's values are
   pointers to out-of-line KV pairs). *)
let leaf_put t ~tid (l : leaf) key =
  let clock = clock_of t ~tid in
  let rec free_j j = if l.occ.(j) then free_j (j + 1) else j in
  let j = free_j 0 in
  let kv = t.inst.Alloc_api.Instance.malloc ~tid ~size:kv_bytes ~dest:(l.addr + off_val j) in
  Pmem.Device.write_int64 (dev t) kv (Int64.of_int key);
  flush_data t clock ~addr:kv ~len:16;
  persist_entry t clock l j key;
  l.occ.(j) <- true;
  l.keys.(j) <- key;
  l.count <- l.count + 1;
  write_bitmap t clock l

let leaf_find (l : leaf) key =
  let rec go j =
    if j >= fanout then None else if l.occ.(j) && l.keys.(j) = key then Some j else go (j + 1)
  in
  go 0

let leaf_remove t ~tid (l : leaf) j =
  let clock = clock_of t ~tid in
  l.occ.(j) <- false;
  l.count <- l.count - 1;
  write_bitmap t clock l;
  t.inst.Alloc_api.Instance.free ~tid ~dest:(l.addr + off_val j)

(* Split: move the upper half of the keys to a fresh right leaf. Moving an
   entry re-anchors the payload pointer in the new leaf's value slot. *)
let leaf_split t ~tid (l : leaf) =
  let clock = clock_of t ~tid in
  let right = new_leaf t ~tid in
  let keys = Array.of_list (List.filter (fun k -> k > 0) (Array.to_list (Array.mapi (fun j k -> if l.occ.(j) then k else 0) l.keys))) in
  Array.sort compare keys;
  let sep = keys.(Array.length keys / 2) in
  for j = 0 to fanout - 1 do
    if l.occ.(j) && l.keys.(j) >= sep then begin
      let key = l.keys.(j) in
      (* Move the payload pointer: write it into the right leaf's slot,
         clear the old slot. *)
      let rec free_j j' = if right.occ.(j') then free_j (j' + 1) else j' in
      let j' = free_j 0 in
      let kv = Pmem.Device.read_int64 (dev t) (l.addr + off_val j) in
      Pmem.Device.write_int64 (dev t) (right.addr + off_val j') kv;
      flush_data t clock ~addr:(right.addr + off_val j') ~len:8;
      persist_entry t clock right j' key;
      right.occ.(j') <- true;
      right.keys.(j') <- key;
      right.count <- right.count + 1;
      Pmem.Device.write_int64 (dev t) (l.addr + off_val j) 0L;
      l.occ.(j) <- false;
      l.count <- l.count - 1
    end
  done;
  (* Link the new leaf and commit both bitmaps. *)
  let old_next = Pmem.Device.read_int64 (dev t) (l.addr + off_next) in
  Pmem.Device.write_int64 (dev t) (right.addr + off_next) old_next;
  Pmem.Device.write_int64 (dev t) (l.addr + off_next) (Int64.of_int right.addr);
  flush_data t clock ~addr:(right.addr + off_next) ~len:8;
  flush_data t clock ~addr:(l.addr + off_next) ~len:8;
  write_bitmap t clock right;
  write_bitmap t clock l;
  (sep, right)

(* --- tree structure --------------------------------------------------------- *)

let child_index (inner : inner) key =
  let rec go i = if i >= inner.n - 1 then inner.n - 1 else if key < inner.keys.(i) then i else go (i + 1) in
  go 0

let insert_child (inner : inner) at sep right =
  let keys = Array.make inner.n 0 in
  Array.blit inner.keys 0 keys 0 at;
  keys.(at) <- sep;
  Array.blit inner.keys at keys (at + 1) (inner.n - 1 - at);
  let children = Array.make (inner.n + 1) right in
  Array.blit inner.children 0 children 0 (at + 1);
  children.(at + 1) <- right;
  Array.blit inner.children (at + 1) children (at + 2) (inner.n - at - 1);
  inner.keys <- keys;
  inner.children <- children;
  inner.n <- inner.n + 1

let split_inner (inner : inner) =
  let mid = inner.n / 2 in
  let sep = inner.keys.(mid - 1) in
  let right =
    {
      keys = Array.sub inner.keys mid (inner.n - 1 - mid);
      children = Array.sub inner.children mid (inner.n - mid);
      n = inner.n - mid;
    }
  in
  inner.keys <- Array.sub inner.keys 0 (mid - 1);
  inner.children <- Array.sub inner.children 0 mid;
  inner.n <- mid;
  (sep, right)

let rec find_leaf t ~tid node key =
  match node with
  | Leaf_n l -> l
  | Inner inner ->
      charge_search t ~tid 1;
      find_leaf t ~tid inner.children.(child_index inner key) key

let rec ins t ~tid node key =
  match node with
  | Leaf_n l ->
      Sim.Lock.with_lock l.lock (clock_of t ~tid) (fun () ->
          charge_search t ~tid 1;
          match leaf_find l key with
          | Some j ->
              (* Overwrite: replace the payload object. *)
              t.inst.Alloc_api.Instance.free ~tid ~dest:(l.addr + off_val j);
              let kv =
                t.inst.Alloc_api.Instance.malloc ~tid ~size:kv_bytes
                  ~dest:(l.addr + off_val j)
              in
              Pmem.Device.write_int64 (dev t) kv (Int64.of_int key);
              flush_data t (clock_of t ~tid) ~addr:kv ~len:16;
              None
          | None ->
              t.cardinal <- t.cardinal + 1;
              if l.count < fanout then begin
                leaf_put t ~tid l key;
                None
              end
              else begin
                let sep, right = leaf_split t ~tid l in
                if key >= sep then leaf_put t ~tid right key else leaf_put t ~tid l key;
                Some (sep, Leaf_n right)
              end)
  | Inner inner -> (
      charge_search t ~tid 1;
      let i = child_index inner key in
      match ins t ~tid inner.children.(i) key with
      | None -> None
      | Some (sep, right) ->
          insert_child inner i sep right;
          if inner.n > fanout then
            let sep', right' = split_inner inner in
            Some (sep', Inner right')
          else None)

let insert t ~tid ~key =
  assert (key > 0);
  match ins t ~tid t.root key with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Inner { keys = [| sep |]; children = [| t.root; right |]; n = 2 }

let delete t ~tid ~key =
  let l = find_leaf t ~tid t.root key in
  Sim.Lock.with_lock l.lock (clock_of t ~tid) (fun () ->
      charge_search t ~tid 1;
      match leaf_find l key with
      | None -> false
      | Some j ->
          leaf_remove t ~tid l j;
          t.cardinal <- t.cardinal - 1;
          true)

let mem t ~tid ~key =
  let l = find_leaf t ~tid t.root key in
  charge_search t ~tid 1;
  leaf_find l key <> None

(* --- consistency check -------------------------------------------------------- *)

let check_consistent t =
  let dev = dev t in
  let error = ref None in
  Hashtbl.iter
    (fun _ (l : leaf) ->
      if !error = None then begin
        let bits = Pmem.Device.read_int64 dev (l.addr + off_bitmap) in
        for j = 0 to fanout - 1 do
          let pbit = Int64.logand (Int64.shift_right_logical bits j) 1L = 1L in
          if pbit <> l.occ.(j) then
            error := Some (Printf.sprintf "leaf %d slot %d: bitmap mismatch" l.addr j)
          else if l.occ.(j) then begin
            let pkey = Int64.to_int (Pmem.Device.read_int64 dev (l.addr + off_key j)) in
            let fp = Pmem.Device.read_u8 dev (l.addr + off_fp j) in
            let pv = Int64.to_int (Pmem.Device.read_int64 dev (l.addr + off_val j)) in
            if pkey <> l.keys.(j) then
              error := Some (Printf.sprintf "leaf %d slot %d: key mismatch" l.addr j)
            else if fp <> fingerprint pkey then
              error := Some (Printf.sprintf "leaf %d slot %d: fingerprint mismatch" l.addr j)
            else if pv <= 0 then
              error := Some (Printf.sprintf "leaf %d slot %d: null payload" l.addr j)
            else begin
              let stored = Int64.to_int (Pmem.Device.read_int64 dev pv) in
              if stored <> pkey then
                error := Some (Printf.sprintf "leaf %d slot %d: payload mismatch" l.addr j)
            end
          end
        done
      end)
    t.all_leaves;
  match !error with None -> Ok () | Some e -> Error e
