(** The paper's FPTree workload (section 6.3): warm the tree with
    [warmup] keys, then run [ops] operations per thread of a 50% insert /
    50% delete mix (8 B keys, 128 B key-value payloads). *)

type params = { warmup : int; ops_per_thread : int; key_space : int; max_leaves : int }

val default : params

val run : Alloc_api.Instance.t -> ?params:params -> ?seed:int -> unit -> Workloads.Driver.result
