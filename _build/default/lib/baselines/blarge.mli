(** Baseline large allocator: in-place bookkeeping headers.

    This is the design the paper's section 3.3 profiles: each 4 MB mapped
    region keeps a 16 KB header area of per-extent slots, updated in
    place (one small flush at a random heap location) on every allocation
    and free. Best-fit over a free-extent tree, split/coalesce within a
    region, dedicated regions above 2 MB. Whole regions whose space is
    free are returned to the OS unless the allocator hoards
    ({!Knobs.t.hoard_empty}, Makalu).

    A [wal_write] callback lets the engine attach its per-op log write
    (PMDK redo entries, micro-logs) to every state transition. *)

type t

val create :
  dax:Pmem.Dax.t ->
  region_lock:Sim.Lock.t ->
  persist:bool ->
  hoard:bool ->
  extra_flush:bool ->
  page_headers:bool ->
  light:bool ->
  wal_write:(Sim.Clock.t -> unit) ->
  t
(** [extra_flush] adds a second per-operation header write in the same
    line (an immediate reflush) — Makalu's header maintenance.
    [page_headers] writes a GC block header every 8 KB of a large object
    (Makalu/BDW). [light] skips the per-region summary updates
    (PAllocator's dedicated large allocator). *)

val malloc : t -> Sim.Clock.t -> size:int -> int
val free : t -> Sim.Clock.t -> addr:int -> unit
val owns : t -> int -> bool
(** Whether the address lies in an extent of this instance (cross-arena
    free routing). *)

val live_extents : t -> (int * int) list
(** Activated [(addr, size)] pairs (recovery-cost modelling). *)

val region_count : t -> int
val slab_like_count : t -> int
