(** Behavioural parameters of a baseline allocator.

    Each baseline reproduces the heap-metadata access pattern the paper
    attributes to it (sections 3, 6.2, 7, and DESIGN.md section 4); the
    engine in {!Bengine} interprets these knobs. *)

type wal_style =
  | Redo_commit
      (** PMDK-style transaction: log entry flushed, then a commit mark
          flushed into the same line — a guaranteed reflush per op. *)
  | Micro  (** nvm_malloc / PAllocator micro-log: one entry flush per op. *)
  | No_wal  (** GC-based allocators: no logging. *)

type tracking =
  | Bitmap_seq
      (** Sequentially mapped slab bitmaps, flushed on every allocation
          and free: consecutive operations reflush the same line. *)
  | Embedded_list
      (** Free-list links embedded in the blocks (Makalu, Ralloc): the
          slab-header head pointer is reflushed on every operation and
          link writes share cache lines with user data. *)

type recovery_model =
  | Wal_only  (** nvm_malloc: scan the WAL, defer the rest (fast). *)
  | Wal_and_meta  (** PMDK: walk WAL + all region headers + slab bitmaps. *)
  | Headers_partial  (** Ralloc: slab headers plus a partial node scan. *)
  | Conservative_gc  (** Makalu: trace all live data. *)

type t = {
  name : string;
  wal : wal_style;
  tracking : tracking;
  tcache : bool;  (** volatile per-thread block cache (search-only saving) *)
  per_thread_arena : bool;
      (** PAllocator: dedicated small allocators per thread — best
          64-thread scaling, costly cross-thread frees. *)
  persist : bool;  (** false = volatile allocator (jemalloc/tcmalloc) *)
  hoard_empty : bool;  (** Makalu: never returns empty slabs/regions *)
  extra_header_flush : bool;  (** Makalu: per-op counter update (reflush) *)
  page_headers : bool;
      (** Makalu/BDW: write a GC block header every 8 KB of a large
          allocation, the reason its large path is the slowest. *)
  light_large : bool;
      (** PAllocator: its dedicated large allocator (index trees) skips
          the per-region summary updates. *)
  op_overhead_ns : float;  (** constant software cost per operation *)
  supports_large : bool;
  recovery : recovery_model;
}

let pmdk =
  {
    name = "PMDK";
    wal = Redo_commit;
    tracking = Bitmap_seq;
    tcache = false;
    per_thread_arena = false;
    persist = true;
    hoard_empty = false;
    extra_header_flush = false;
    page_headers = false;
    light_large = false;
    op_overhead_ns = 260.0;
    supports_large = true;
    recovery = Wal_and_meta;
  }

let nvm_malloc =
  {
    pmdk with
    name = "nvm_malloc";
    wal = Micro;
    tcache = true;
    (* Volatile/non-volatile metadata split: cheap flushes but heavier
       DRAM-side bookkeeping than a plain volatile allocator. *)
    op_overhead_ns = 150.0;
    recovery = Wal_only;
  }

let pallocator =
  {
    pmdk with
    name = "PAllocator";
    wal = Micro;
    tcache = true;
    per_thread_arena = true;
    light_large = true;
    op_overhead_ns = 110.0;
    recovery = Wal_and_meta;
  }

let makalu =
  {
    name = "Makalu";
    wal = No_wal;
    tracking = Embedded_list;
    tcache = true;
    per_thread_arena = false;
    persist = true;
    hoard_empty = true;
    extra_header_flush = true;
    page_headers = true;
    light_large = false;
    op_overhead_ns = 120.0;
    supports_large = true;
    recovery = Conservative_gc;
  }

let ralloc =
  {
    makalu with
    name = "Ralloc";
    hoard_empty = false;
    extra_header_flush = false;
    page_headers = false;
    op_overhead_ns = 45.0;
    supports_large = false;
    recovery = Headers_partial;
  }

let jemalloc =
  {
    name = "jemalloc";
    wal = No_wal;
    tracking = Bitmap_seq;
    tcache = true;
    per_thread_arena = false;
    persist = false;
    hoard_empty = false;
    extra_header_flush = false;
    page_headers = false;
    light_large = false;
    op_overhead_ns = 30.0;
    supports_large = true;
    recovery = Wal_only;
  }

let tcmalloc = { jemalloc with name = "tcmalloc"; op_overhead_ns = 25.0 }
