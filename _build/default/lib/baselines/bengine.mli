(** Baseline allocator engine.

    One slab/large-allocator engine interprets a {!Knobs.t} to reproduce
    the metadata behaviour of each comparison allocator (PMDK,
    nvm_malloc, PAllocator, Makalu, Ralloc, and the volatile
    jemalloc/tcmalloc used in Figure 1(b)):

    - [Bitmap_seq] tracking persists a sequentially mapped slab bitmap on
      every allocation and free — the reflush source of section 3.1;
    - [Embedded_list] tracking persists in-block link writes plus a
      slab-header head-pointer update per operation — Makalu/Ralloc's
      pattern;
    - [Redo_commit] WALs flush an entry and then a commit mark into the
      same line (PMDK); [Micro] WALs flush once (nvm_malloc/PAllocator);
    - large objects go through {!Blarge}'s in-place region headers —
      the random-write pattern of section 3.3;
    - per-thread tcaches only save the arena lock and slab search:
      persistence stays per-operation, unlike NVAlloc's batched refills.

    Recovery is modelled by charging the scans each design performs
    (section 6.6 / Figure 18): WAL-only (nvm_malloc), WAL + all metadata
    (PMDK), headers + partial node scan (Ralloc), or a full conservative
    trace of live data (Makalu). *)

val instance :
  knobs:Knobs.t ->
  threads:int ->
  dev_size:int ->
  ?eadr:bool ->
  ?root_slots:int ->
  unit ->
  Alloc_api.Instance.t
