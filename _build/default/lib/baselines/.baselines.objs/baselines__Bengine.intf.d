lib/baselines/bengine.mli: Alloc_api Knobs
