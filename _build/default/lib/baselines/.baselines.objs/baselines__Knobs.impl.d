lib/baselines/knobs.ml:
