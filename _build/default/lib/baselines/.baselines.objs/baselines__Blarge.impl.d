lib/baselines/blarge.ml: Float Hashtbl Int64 Pmem Sim Support
