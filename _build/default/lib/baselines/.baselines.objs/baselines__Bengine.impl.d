lib/baselines/bengine.ml: Alloc_api Array Blarge Int64 Knobs Lazy List Nvalloc_core Pmem Sim Support
