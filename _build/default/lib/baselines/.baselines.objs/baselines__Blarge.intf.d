lib/baselines/blarge.mli: Pmem Sim
