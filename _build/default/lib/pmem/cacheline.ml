let size = 64
let xpline_size = 256
let index addr = addr lsr 6
let base addr = addr land lnot 63

let span addr len =
  assert (len > 0);
  (index addr, index (addr + len - 1))

let xpline addr = addr lsr 8
