type t = {
  lat : Latency.t;
  mutable media_free : float; (* virtual time the media catches up with the queue *)
  mutable stalls : float;
}

let create lat = { lat; media_free = 0.0; stalls = 0.0 }

let reset t =
  t.media_free <- 0.0;
  t.stalls <- 0.0

let admit t ~now ~media_ns =
  let lat = t.lat in
  (* The WPQ absorbs up to [capacity] entries of backlog; beyond that the
     flush stalls until the media catches up. Each admitted line occupies
     the shared media for its classified latency divided by the media
     parallelism, which is what bounds aggregate flush bandwidth. *)
  let window = float_of_int lat.Latency.wpq_capacity *. lat.Latency.wpq_drain_ns in
  let backlog = Float.max 0.0 (t.media_free -. now) in
  let stall = Float.max 0.0 (backlog -. window) in
  t.stalls <- t.stalls +. stall;
  let start = now +. stall in
  t.media_free <-
    Float.max t.media_free start +. (media_ns /. lat.Latency.media_parallelism);
  start +. media_ns

let stall_time t = t.stalls
