type category = Meta | Wal | Log | Data
type work = Search | Other

type t = {
  trace_limit : int;
  mutable flushes : int;
  mutable reflushes : int;
  mutable sequentials : int;
  mutable randoms : int;
  mutable t_meta : float;
  mutable t_wal : float;
  mutable t_log : float;
  mutable t_data : float;
  mutable t_fence : float;
  mutable t_read : float;
  mutable t_search : float;
  mutable t_other : float;
  mutable trace_rev : (category * int) list;
  mutable traced : int;
}

let create ?(trace_limit = 1000) () =
  {
    trace_limit;
    flushes = 0;
    reflushes = 0;
    sequentials = 0;
    randoms = 0;
    t_meta = 0.0;
    t_wal = 0.0;
    t_log = 0.0;
    t_data = 0.0;
    t_fence = 0.0;
    t_read = 0.0;
    t_search = 0.0;
    t_other = 0.0;
    trace_rev = [];
    traced = 0;
  }

let reset t =
  t.flushes <- 0;
  t.reflushes <- 0;
  t.sequentials <- 0;
  t.randoms <- 0;
  t.t_meta <- 0.0;
  t.t_wal <- 0.0;
  t.t_log <- 0.0;
  t.t_data <- 0.0;
  t.t_fence <- 0.0;
  t.t_read <- 0.0;
  t.t_search <- 0.0;
  t.t_other <- 0.0;
  t.trace_rev <- [];
  t.traced <- 0

let record_flush t cat ~addr ~reflush ~sequential ~ns =
  t.flushes <- t.flushes + 1;
  if reflush then t.reflushes <- t.reflushes + 1
  else if sequential then t.sequentials <- t.sequentials + 1
  else t.randoms <- t.randoms + 1;
  (match cat with
  | Meta -> t.t_meta <- t.t_meta +. ns
  | Wal -> t.t_wal <- t.t_wal +. ns
  | Log -> t.t_log <- t.t_log +. ns
  | Data -> t.t_data <- t.t_data +. ns);
  (match cat with
  | Meta | Wal | Log ->
      if t.traced < t.trace_limit then begin
        t.trace_rev <- (cat, addr) :: t.trace_rev;
        t.traced <- t.traced + 1
      end
  | Data -> ())

let record_fence t ~ns = t.t_fence <- t.t_fence +. ns
let record_read t ~ns = t.t_read <- t.t_read +. ns

let charge_work t work ~ns =
  match work with
  | Search -> t.t_search <- t.t_search +. ns
  | Other -> t.t_other <- t.t_other +. ns

let flushes t = t.flushes
let reflushes t = t.reflushes
let sequential_flushes t = t.sequentials
let random_flushes t = t.randoms

let reflush_ratio t =
  if t.flushes = 0 then 0.0 else float_of_int t.reflushes /. float_of_int t.flushes

let flush_time t = function
  | Meta -> t.t_meta
  | Wal -> t.t_wal
  | Log -> t.t_log
  | Data -> t.t_data

let work_time t = function Search -> t.t_search | Other -> t.t_other
let total_flush_time t = t.t_meta +. t.t_wal +. t.t_log +. t.t_data
let trace t = List.rev t.trace_rev

let pp_summary ppf t =
  Format.fprintf ppf
    "flushes=%d reflush=%d (%.1f%%) seq=%d rand=%d meta=%.0fns wal=%.0fns log=%.0fns data=%.0fns"
    t.flushes t.reflushes
    (100.0 *. reflush_ratio t)
    t.sequentials t.randoms t.t_meta t.t_wal t.t_log t.t_data
