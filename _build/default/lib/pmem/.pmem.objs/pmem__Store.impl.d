lib/pmem/store.ml: Array Bytes Cacheline Int32 Int64
