lib/pmem/latency.ml:
