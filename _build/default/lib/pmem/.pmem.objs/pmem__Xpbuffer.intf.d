lib/pmem/xpbuffer.mli: Latency
