lib/pmem/stats.ml: Format List
