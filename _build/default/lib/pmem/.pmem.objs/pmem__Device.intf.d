lib/pmem/device.mli: Latency Sim Stats
