lib/pmem/dax.ml: Device List Stats
