lib/pmem/xpbuffer.ml: Float Latency
