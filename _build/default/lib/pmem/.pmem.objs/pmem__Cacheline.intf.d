lib/pmem/cacheline.mli:
