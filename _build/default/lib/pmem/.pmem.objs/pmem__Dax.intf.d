lib/pmem/dax.mli: Device Sim
