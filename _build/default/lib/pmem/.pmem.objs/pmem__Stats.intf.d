lib/pmem/stats.mli: Format
