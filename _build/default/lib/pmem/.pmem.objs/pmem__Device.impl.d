lib/pmem/device.ml: Array Bytes Cacheline Hashtbl Int64 Latency List Sim Stats Store Xpbuffer
