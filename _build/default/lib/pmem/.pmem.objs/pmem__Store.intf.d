lib/pmem/store.mli:
