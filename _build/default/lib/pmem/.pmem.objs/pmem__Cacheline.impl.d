lib/pmem/cacheline.ml:
