lib/pmem/latency.mli:
