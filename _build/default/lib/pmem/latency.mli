(** Latency model of the simulated persistent-memory platform.

    All timing constants live in this one record so that the whole model is
    auditable at a glance. Defaults are calibrated from the measurements
    the NVAlloc paper itself reports (section 3.1) and from the Optane
    characterisation literature it cites (Yang et al., FAST'20):

    - a cache-line {e reflush} (same line flushed again within a reflush
      distance < 4) costs 800 ns at distance 0, shrinking 100 ns per unit
      of distance down to 500 ns at distance 3;
    - the average reflush is ~3x a random flush and ~7x a sequential one,
      giving 300 ns random and 100 ns sequential flushes;
    - the device drains its write-pending queue (XPBuffer) at a bounded
      rate; threads only see it when the queue is full (ADR flushes wait
      for WPQ acceptance, not for the media write). *)

type t = {
  seq_flush_ns : float;      (** flush landing in the previous XPLine *)
  rand_flush_ns : float;     (** flush landing elsewhere *)
  reflush_base_ns : float;   (** reflush at distance 0 *)
  reflush_step_ns : float;   (** latency drop per unit of reflush distance *)
  reflush_window : int;      (** distances below this count as reflushes *)
  fence_ns : float;          (** sfence *)
  pm_read_line_ns : float;   (** read of one line from PM media *)
  dram_ns : float;           (** generic DRAM-side bookkeeping operation *)
  search_ns : float;         (** one step of a DRAM index search *)
  wpq_capacity : int;  (** XPBuffer entries *)
  wpq_drain_ns : float;  (** nominal per-entry residency (queue window) *)
  media_parallelism : float;
      (** concurrent media writes the DIMMs sustain: a flush occupies the
          shared media for [its latency / media_parallelism], so a stream
          of 800 ns reflushes consumes 8x the bandwidth of combined
          100 ns sequential writes — the reason reflush-heavy allocators
          stop scaling first (Figures 9/10/12). *)
}

val default : t

val eadr : t
(** eADR platform: caches are in the persistence domain, so there is no
    [clwb] and no reflush penalty; a dirty line still costs a flat 60 ns
    of PM write bandwidth when written back. Matches the paper's
    emulation (section 6.7), which removes [clwb] from all allocators. *)

val flush_cost : t -> distance:int option -> sequential:bool -> float
(** Latency of one cache-line flush. [distance = Some d] means the line was
    flushed [d] unique lines ago (a reflush when [d < reflush_window]);
    [None] means it has left the reflush window. *)
