(** Address arithmetic for the simulated memory hierarchy.

    Addresses are plain [int] byte offsets into the device. A CPU cache
    line is 64 B; the Optane media access granularity (XPLine) is 256 B —
    writes falling in the same XPLine as the previous write are treated as
    sequential by the device's latency model. *)

val size : int
(** Cache line size in bytes (64). *)

val xpline_size : int
(** Optane media write granularity in bytes (256). *)

val index : int -> int
(** [index addr] is the cache-line number containing byte [addr]. *)

val base : int -> int
(** [base addr] is the first byte address of [addr]'s cache line. *)

val span : int -> int -> (int * int)
(** [span addr len] is the inclusive range [(first_line, last_line)] of
    cache lines touched by the byte range [addr, addr+len). [len] must be
    positive. *)

val xpline : int -> int
(** [xpline addr] is the XPLine number containing byte [addr]. *)
