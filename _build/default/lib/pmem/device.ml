exception Injected_crash

type t = {
  lat : Latency.t;
  volatile : Store.t;
  persisted : Store.t;
  dirty : (int, unit) Hashtbl.t;
  stats : Stats.t;
  wpq : Xpbuffer.t;
  (* Per-thread flush-stream state, keyed by clock id: the reflush-
     distance LRU (last [reflush_window] distinct lines flushed by that
     thread, most recent first) and the last XPLine it wrote (for the
     sequential-vs-random classification). Reflushes and sequentiality
     are properties of one core's write stream; cross-thread bandwidth
     effects are modelled by the shared XPBuffer instead. *)
  streams : (int, stream) Hashtbl.t;
  mutable crash_after : int option;
}

and stream = {
  recent : int array;
  mutable recent_len : int;
  xplines : int array; (* recent XPLines the thread wrote, LRU *)
  mutable xplines_len : int;
}

let create ?(lat = Latency.default) ?trace_limit ~size () =
  assert (size > 0 && size mod Cacheline.size = 0);
  {
    lat;
    volatile = Store.create ~size;
    persisted = Store.create ~size;
    dirty = Hashtbl.create 4096;
    stats = Stats.create ?trace_limit ();
    wpq = Xpbuffer.create lat;
    streams = Hashtbl.create 64;
    crash_after = None;
  }

let size t = Store.size t.volatile
let stats t = t.stats
let latency t = t.lat
let is_eadr t = t.lat.Latency.reflush_step_ns = 0.0 && t.lat.Latency.seq_flush_ns = t.lat.Latency.reflush_base_ns

(* --- data access ------------------------------------------------------ *)

let mark_dirty t addr len =
  let first, last = Cacheline.span addr len in
  for line = first to last do
    if not (Hashtbl.mem t.dirty line) then Hashtbl.add t.dirty line ()
  done

let read_u8 t addr = Store.get_u8 t.volatile addr

let write_u8 t addr v =
  Store.set_u8 t.volatile addr v;
  mark_dirty t addr 1

let read_u16 t addr = Store.get_u16 t.volatile addr

let write_u16 t addr v =
  Store.set_u16 t.volatile addr v;
  mark_dirty t addr 2

let read_u32 t addr = Store.get_u32 t.volatile addr

let write_u32 t addr v =
  assert (v >= 0 && v <= 0xFFFFFFFF);
  Store.set_u32 t.volatile addr v;
  mark_dirty t addr 4

let read_int64 t addr = Store.get_i64 t.volatile addr

let write_int64 t addr v =
  Store.set_i64 t.volatile addr v;
  mark_dirty t addr 8

let read_int t addr =
  let v = read_int64 t addr in
  let i = Int64.to_int v in
  assert (Int64.of_int i = v);
  i

let write_int t addr v = write_int64 t addr (Int64.of_int v)
let read_bytes t addr len = Store.read_bytes t.volatile addr len

let write_bytes t addr b =
  Store.write_bytes t.volatile addr b;
  mark_dirty t addr (Bytes.length b)

let fill t addr len c =
  Store.fill t.volatile addr len c;
  mark_dirty t addr len

(* --- persistence ------------------------------------------------------ *)

let stream_of t clock =
  match Hashtbl.find_opt t.streams clock.Sim.Clock.id with
  | Some s -> s
  | None ->
      let s =
        {
          recent = Array.make t.lat.Latency.reflush_window (-1);
          recent_len = 0;
          xplines = Array.make 4 min_int;
          xplines_len = 0;
        }
      in
      Hashtbl.replace t.streams clock.Sim.Clock.id s;
      s

(* Reflush distance of [line]: position in the thread's recent-distinct-
   lines LRU, or None if absent. Updates the LRU. *)
let reflush_distance st line =
  let w = Array.length st.recent in
  let pos = ref (-1) in
  for i = 0 to st.recent_len - 1 do
    if !pos = -1 && st.recent.(i) = line then pos := i
  done;
  let d = !pos in
  (* Move [line] to the front. *)
  if d = -1 then begin
    let stop = min st.recent_len (w - 1) in
    for i = stop downto 1 do
      st.recent.(i) <- st.recent.(i - 1)
    done;
    st.recent.(0) <- line;
    if st.recent_len < w then st.recent_len <- st.recent_len + 1;
    None
  end
  else begin
    for i = d downto 1 do
      st.recent.(i) <- st.recent.(i - 1)
    done;
    st.recent.(0) <- line;
    Some d
  end

let do_crash t =
  let lines = Hashtbl.fold (fun line () acc -> line :: acc) t.dirty [] in
  List.iter
    (fun line ->
      if is_eadr t then Store.copy_line ~src:t.volatile ~dst:t.persisted line
      else Store.copy_line ~src:t.persisted ~dst:t.volatile line)
    lines;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.streams;
  Xpbuffer.reset t.wpq;
  t.crash_after <- None

let crash t = do_crash t

let tick_crash_countdown t =
  match t.crash_after with
  | None -> ()
  | Some n ->
      if n <= 1 then begin
        do_crash t;
        raise Injected_crash
      end
      else t.crash_after <- Some (n - 1)

let flush_line t clock cat line =
  let addr = line * Cacheline.size in
  Store.copy_line ~src:t.volatile ~dst:t.persisted line;
  Hashtbl.remove t.dirty line;
  let st = stream_of t clock in
  let distance = reflush_distance st line in
  (* Sequentiality: the write lands in (or right after) an XPLine the
     thread recently wrote — the WPQ write-combines per 256 B XPLine, so
     a thread interleaving a few streams (bitmap stripes, WAL frame,
     destinations) still gets combined sequential writes. *)
  let xp = Cacheline.xpline addr in
  let sequential =
    let hit = ref false in
    for i = 0 to st.xplines_len - 1 do
      if st.xplines.(i) = xp || st.xplines.(i) + 1 = xp then hit := true
    done;
    !hit
  in
  (let w = Array.length st.xplines in
   let pos = ref (-1) in
   for i = 0 to st.xplines_len - 1 do
     if !pos = -1 && st.xplines.(i) = xp then pos := i
   done;
   let d = if !pos = -1 then min st.xplines_len (w - 1) else !pos in
   for i = d downto 1 do
     st.xplines.(i) <- st.xplines.(i - 1)
   done;
   st.xplines.(0) <- xp;
   if !pos = -1 && st.xplines_len < w then st.xplines_len <- st.xplines_len + 1);
  let media_ns = Latency.flush_cost t.lat ~distance ~sequential in
  let finish = Xpbuffer.admit t.wpq ~now:clock.Sim.Clock.now ~media_ns in
  let reflush =
    match distance with Some d -> d < t.lat.Latency.reflush_window | None -> false
  in
  Stats.record_flush t.stats cat ~addr ~reflush ~sequential ~ns:media_ns;
  tick_crash_countdown t;
  finish

let flush t clock cat ~addr ~len =
  if len > 0 then begin
    let first, last = Cacheline.span addr len in
    let finish = ref clock.Sim.Clock.now in
    for line = first to last do
      if Hashtbl.mem t.dirty line then begin
        let f = flush_line t clock cat line in
        if f > !finish then finish := f
      end
    done;
    Sim.Clock.wait_until clock !finish;
    Sim.Clock.charge clock t.lat.Latency.fence_ns;
    Stats.record_fence t.stats ~ns:t.lat.Latency.fence_ns
  end

let flush_all t clock cat =
  let lines = Hashtbl.fold (fun line () acc -> line :: acc) t.dirty [] in
  let lines = List.sort compare lines in
  let finish = ref clock.Sim.Clock.now in
  List.iter
    (fun line ->
      let f = flush_line t clock cat line in
      if f > !finish then finish := f)
    lines;
  Sim.Clock.wait_until clock !finish;
  Sim.Clock.charge clock t.lat.Latency.fence_ns;
  Stats.record_fence t.stats ~ns:t.lat.Latency.fence_ns

let fence t clock =
  Sim.Clock.charge clock t.lat.Latency.fence_ns;
  Stats.record_fence t.stats ~ns:t.lat.Latency.fence_ns

let charge_pm_read t clock ~lines =
  let ns = float_of_int lines *. t.lat.Latency.pm_read_line_ns in
  Sim.Clock.charge clock ns;
  Stats.record_read t.stats ~ns

let charge_work t clock work ~ns =
  Sim.Clock.charge clock ns;
  Stats.charge_work t.stats work ~ns

let dram_op t clock = charge_work t clock Stats.Other ~ns:t.lat.Latency.dram_ns
let search_step t clock = charge_work t clock Stats.Search ~ns:t.lat.Latency.search_ns
let schedule_crash_after t n = t.crash_after <- Some n
let cancel_scheduled_crash t = t.crash_after <- None
let dirty_lines t = Hashtbl.length t.dirty
let persisted_int64 t addr = Store.get_i64 t.persisted addr
let persisted_u8 t addr = Store.get_u8 t.persisted addr
