lib/core/extent.mli: Booklog Heap Sim Support
