lib/core/extent.ml: Booklog Config Float Hashtbl Heap List Pmem Sim Support
