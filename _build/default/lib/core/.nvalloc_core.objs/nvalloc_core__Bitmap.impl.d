lib/core/bitmap.ml: Pmem
