lib/core/wal.mli: Pmem Sim
