lib/core/booklog.mli: Pmem Sim
