lib/core/size_class.ml: Array Format List
