lib/core/config.mli:
