lib/core/slab.mli: Bitmap Hashtbl Pmem Support
