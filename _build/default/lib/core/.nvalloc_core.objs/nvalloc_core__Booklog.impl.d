lib/core/booklog.ml: Array Hashtbl Int64 List Option Pmem Support
