lib/core/arena.mli: Booklog Extent Heap Sim Slab Tcache Wal
