lib/core/tcache.ml: Array Bitmap List Slab
