lib/core/arena.ml: Array Bitmap Booklog Config Extent Hashtbl Header Heap List Option Pmem Sim Size_class Slab Support Tcache Wal
