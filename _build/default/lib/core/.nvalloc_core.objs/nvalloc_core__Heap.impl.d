lib/core/heap.ml: Booklog Config Int64 Pmem Wal
