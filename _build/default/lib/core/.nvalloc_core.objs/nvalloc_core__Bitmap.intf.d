lib/core/bitmap.mli: Pmem
