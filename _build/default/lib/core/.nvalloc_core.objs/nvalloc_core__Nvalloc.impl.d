lib/core/nvalloc.ml: Arena Array Bitmap Booklog Config Extent Float Hashtbl Heap Int64 List Option Pmem Printf Queue Sim Size_class Slab Support Tcache Wal
