lib/core/tcache.mli: Slab
