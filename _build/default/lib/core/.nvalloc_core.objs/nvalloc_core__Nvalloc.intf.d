lib/core/nvalloc.mli: Arena Config Heap Pmem Sim Slab
