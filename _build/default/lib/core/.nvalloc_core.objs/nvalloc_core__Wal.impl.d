lib/core/wal.ml: List Pmem
