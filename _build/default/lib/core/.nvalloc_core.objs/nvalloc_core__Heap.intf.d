lib/core/heap.mli: Config Pmem Sim
