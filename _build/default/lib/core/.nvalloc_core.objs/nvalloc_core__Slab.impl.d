lib/core/slab.ml: Array Bitmap Hashtbl List Pmem Size_class Support
