lib/core/config.ml:
