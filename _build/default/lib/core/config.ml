type consistency = Log_based | Gc_based | Internal_collection

type t = {
  consistency : consistency;
  bit_stripes : int;
  interleave_tcache : bool;
  interleave_wal : bool;
  interleave_log : bool;
  slab_morphing : bool;
  morph_su_threshold : float;
  log_bookkeeping : bool;
  booklog_gc : bool;
  booklog_chunks : int;
  wal_entries : int;
  booklog_slow_gc_threshold : float;
  tcache_capacity : int;
  arenas : int;
  decay_interval_ns : float;
  decay_window_ns : float;
  root_slots : int;
}

let log_default =
  {
    consistency = Log_based;
    bit_stripes = 6;
    interleave_tcache = true;
    interleave_wal = true;
    interleave_log = true;
    slab_morphing = true;
    morph_su_threshold = 0.20;
    log_bookkeeping = true;
    booklog_gc = true;
    booklog_chunks = 512;
    wal_entries = 8192;
    booklog_slow_gc_threshold = 0.8;
    tcache_capacity = 32;
    arenas = 40;
    decay_interval_ns = 50_000_000.0;
    decay_window_ns = 500_000_000.0;
    root_slots = 1 lsl 20;
  }

let gc_default = { log_default with consistency = Gc_based }
let ic_default = { log_default with consistency = Internal_collection }

let base consistency =
  {
    log_default with
    consistency;
    bit_stripes = 1;
    interleave_tcache = false;
    interleave_wal = false;
    interleave_log = false;
    slab_morphing = false;
    log_bookkeeping = false;
  }

(* "+Interleaved" (Figure 11): the interleaved tcache layout groups blocks
   by the cache line of their bitmap bit, which only has an effect when the
   bitmap itself is striped; the ablation therefore enables both. *)
let with_interleaved_tcache t = { t with interleave_tcache = true; bit_stripes = 6 }
let with_log_bookkeeping t = { t with log_bookkeeping = true; interleave_log = false }
