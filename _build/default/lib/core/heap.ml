type state = Running | Shutdown | Recovering

let magic = 0x4E564131 (* "NVA1" *)
let region_slots = 4096
let superblock_bytes = 4096
let region_table_off = superblock_bytes
let region_table_bytes = region_slots * 8
let root_table_off = region_table_off + region_table_bytes

type t = {
  dev : Pmem.Device.t;
  dax : Pmem.Dax.t;
  config : Config.t;
  wal_off : int;
  wal_stride : int;
  booklog_off : int;
  booklog_stride : int;
  heap_start : int;
}

let off_magic = 0
let off_arenas = 4
let off_state = 6

let state_code = function Running -> 0 | Shutdown -> 1 | Recovering -> 2

let state_of_code = function
  | 0 -> Running
  | 1 -> Shutdown
  | 2 -> Recovering
  | _ -> invalid_arg "Heap.state_of_code"

let page_align n = (n + 4095) land lnot 4095

let layout dev (config : Config.t) =
  let wal_off = page_align (root_table_off + (config.root_slots * 8)) in
  let wal_stride = page_align (Wal.region_bytes ~entries:config.wal_entries) in
  let booklog_off = wal_off + (config.arenas * wal_stride) in
  let booklog_stride = page_align (Booklog.region_bytes ~chunks:config.booklog_chunks) in
  let heap_start = booklog_off + (config.arenas * booklog_stride) in
  assert (heap_start < Pmem.Device.size dev);
  (wal_off, wal_stride, booklog_off, booklog_stride, heap_start)

let init dev config =
  let wal_off, wal_stride, booklog_off, booklog_stride, heap_start = layout dev config in
  Pmem.Device.write_u32 dev off_magic magic;
  Pmem.Device.write_u16 dev off_arenas config.Config.arenas;
  Pmem.Device.write_u8 dev off_state (state_code Running);
  Pmem.Device.fill dev region_table_off region_table_bytes '\000';
  let dax = Pmem.Dax.create ~start:heap_start dev in
  { dev; dax; config; wal_off; wal_stride; booklog_off; booklog_stride; heap_start }

let open_existing dev config =
  assert (Pmem.Device.read_u32 dev off_magic = magic);
  assert (Pmem.Device.read_u16 dev off_arenas = config.Config.arenas);
  let found = state_of_code (Pmem.Device.read_u8 dev off_state) in
  let wal_off, wal_stride, booklog_off, booklog_stride, heap_start = layout dev config in
  let dax = Pmem.Dax.create ~start:heap_start dev in
  let t = { dev; dax; config; wal_off; wal_stride; booklog_off; booklog_stride; heap_start } in
  (found, t)

let device t = t.dev
let dax t = t.dax
let config t = t.config

let set_state t clock s =
  Pmem.Device.write_u8 t.dev off_state (state_code s);
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr:off_state ~len:1

let root_addr t i =
  assert (i >= 0 && i < t.config.Config.root_slots);
  root_table_off + (i * 8)

let root_slots t = t.config.Config.root_slots

let wal_base t ~arena =
  assert (arena >= 0 && arena < t.config.Config.arenas);
  t.wal_off + (arena * t.wal_stride)

let booklog_base t ~arena =
  assert (arena >= 0 && arena < t.config.Config.arenas);
  t.booklog_off + (arena * t.booklog_stride)

let heap_start t = t.heap_start

(* --- region table ------------------------------------------------------- *)

(* Slot: low 20 bits size in 4 KB units, high bits base in 4 KB units;
   0 = free slot. *)
let encode_region ~addr ~size =
  assert (addr mod 4096 = 0 && size mod 4096 = 0 && size > 0);
  Int64.logor (Int64.of_int (size / 4096)) (Int64.shift_left (Int64.of_int (addr / 4096)) 20)

let decode_region v =
  let size = Int64.to_int (Int64.logand v 0xFFFFFL) * 4096 in
  let addr = Int64.to_int (Int64.shift_right_logical v 20) * 4096 in
  (addr, size)

let slot_addr i = region_table_off + (i * 8)

let register_region t clock ~addr ~size =
  let rec find i =
    if i >= region_slots then failwith "Heap.register_region: region table full"
    else if Pmem.Device.read_int64 t.dev (slot_addr i) = 0L then i
    else find (i + 1)
  in
  let i = find 0 in
  Pmem.Device.write_int64 t.dev (slot_addr i) (encode_region ~addr ~size);
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr:(slot_addr i) ~len:8

let unregister_region t clock ~addr =
  let rec find i =
    if i >= region_slots then failwith "Heap.unregister_region: not found"
    else
      let v = Pmem.Device.read_int64 t.dev (slot_addr i) in
      if v <> 0L && fst (decode_region v) = addr then i else find (i + 1)
  in
  let i = find 0 in
  Pmem.Device.write_int64 t.dev (slot_addr i) 0L;
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr:(slot_addr i) ~len:8

let read_regions dev =
  let acc = ref [] in
  for i = region_slots - 1 downto 0 do
    let v = Pmem.Device.read_int64 dev (slot_addr i) in
    if v <> 0L then acc := decode_region v :: !acc
  done;
  !acc

let regions t = read_regions t.dev
