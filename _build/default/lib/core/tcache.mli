(** Thread-local cache of free blocks with the interleaved layout.

    A tcache holds, per size class, up to [capacity] blocks ready to serve
    allocations without touching the arena (section 2.1). Plain tcaches
    are LIFO; under the interleaved layout (section 5.1, Figure 6) the
    tcache is split into [nsub] sub-tcaches, one per bitmap stripe, each
    holding only blocks whose bitmap bits live in the same cache line. A
    cursor rotates across sub-tcaches on every allocation so that
    consecutive allocations never persist bits of the same cache line.

    Entries carry the block's {e address} (not its index): a slab can
    morph to another size class while blocks of the old class sit in other
    threads' tcaches, and only the address stays meaningful across the
    layout change. The owning vslab rides along so that overflow (a free
    arriving at a full tcache) can return the block without an index
    lookup. *)

type entry = { slab : Slab.t; addr : int }
type t

val create : class_idx:int -> capacity:int -> nsub:int -> t
(** [nsub = 1] degenerates to a single LIFO list. *)

val class_idx : t -> int
val count : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val push : t -> entry -> bool
(** Adds to the block's home sub-tcache (the one matching its bitmap
    line). Returns [false] — and does nothing — when full. *)

val pop : t -> entry option
(** Pops from the cursor's sub-tcache and advances the cursor, skipping
    empty sub-tcaches. *)

val drain : t -> entry list
(** Remove and return everything (used at thread exit / shutdown). *)
