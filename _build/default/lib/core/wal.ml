type kind = Alloc | Free | Refill | Large_alloc | Large_free

let entry_bytes = 16
let entries_per_line = Pmem.Cacheline.size / entry_bytes (* 4 *)
let frame_lines = 16
let frame_entries = frame_lines * entries_per_line (* 64 *)

type t = {
  dev : Pmem.Device.t;
  base : int;
  nentries : int;
  interleave : bool;
  mutable epoch : int; (* 1..255, skipping 0 = never-written *)
  mutable next : int; (* next logical slot *)
  mutable seq : int;
}

let region_bytes ~entries =
  assert (entries > 0 && entries mod frame_entries = 0);
  Pmem.Cacheline.size + (entries * entry_bytes)

let kind_code = function
  | Alloc -> 1
  | Free -> 2
  | Refill -> 3
  | Large_alloc -> 4
  | Large_free -> 5

let kind_of_code = function
  | 1 -> Some Alloc
  | 2 -> Some Free
  | 3 -> Some Refill
  | 4 -> Some Large_alloc
  | 5 -> Some Large_free
  | _ -> None

(* Logical slot [n] -> byte offset of its entry (relative to the entry
   area). Interleaving spreads the 64 entries of a frame across its 16
   lines: consecutive appends land in consecutive lines. *)
let slot_offset t n =
  let phys =
    if not t.interleave then n
    else
      let frame = n / frame_entries and k = n mod frame_entries in
      let line = k mod frame_lines and pos = k / frame_lines in
      (frame * frame_entries) + (line * entries_per_line) + pos
  in
  Pmem.Cacheline.size + (phys * entry_bytes)

let create dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  Pmem.Device.write_u8 dev base 1;
  (* Entry epochs are all 0 (the device zero-fills), hence invalid. *)
  { dev; base; nentries = entries; interleave; epoch = 1; next = 0; seq = 0 }

let entries t = t.nentries
let used t = t.next
let near_full t = t.next >= t.nentries

let append t clock kind ~addr ~dest =
  assert (not (near_full t));
  let off = t.base + slot_offset t t.next in
  Pmem.Device.write_u8 t.dev off (kind_code kind);
  Pmem.Device.write_u8 t.dev (off + 1) t.epoch;
  Pmem.Device.write_u32 t.dev (off + 4) t.seq;
  Pmem.Device.write_u32 t.dev (off + 8) addr;
  Pmem.Device.write_u32 t.dev (off + 12) dest;
  Pmem.Device.flush t.dev clock Pmem.Stats.Wal ~addr:off ~len:entry_bytes;
  t.next <- t.next + 1;
  t.seq <- t.seq + 1

let checkpoint t clock =
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  Pmem.Device.write_u8 t.dev t.base t.epoch;
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr:t.base ~len:1

let reopen dev clock ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  let old_epoch = Pmem.Device.read_u8 dev base in
  let epoch = if old_epoch >= 255 then 1 else old_epoch + 1 in
  Pmem.Device.write_u8 dev base epoch;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:base ~len:1;
  { dev; base; nentries = entries; interleave; epoch; next = 0; seq = 0 }

type replayed = { kind : kind; seq : int; addr : int; dest : int }

let replay dev ~base ~entries =
  let epoch = Pmem.Device.read_u8 dev base in
  let acc = ref [] in
  for phys = 0 to entries - 1 do
    let off = base + Pmem.Cacheline.size + (phys * entry_bytes) in
    if Pmem.Device.read_u8 dev (off + 1) = epoch then
      match kind_of_code (Pmem.Device.read_u8 dev off) with
      | Some kind ->
          acc :=
            {
              kind;
              seq = Pmem.Device.read_u32 dev (off + 4);
              addr = Pmem.Device.read_u32 dev (off + 8);
              dest = Pmem.Device.read_u32 dev (off + 12);
            }
            :: !acc
      | None -> ()
  done;
  List.sort (fun a b -> compare a.seq b.seq) !acc
