(** Size classes for small allocations.

    Small requests (<= 16 KB, section 4.2) are served from slabs segregated
    by size class. The table follows the jemalloc spacing the paper builds
    on: 16 B steps up to 128 B, then four classes per power-of-two
    doubling, ending at 16 KB. *)

val count : int
(** Number of classes. *)

val max_small : int
(** Largest slab-served request size (16 KB). *)

val size_of : int -> int
(** [size_of c] is the block size of class [c]; raises on bad index. *)

val of_size : int -> int option
(** [of_size n] is the smallest class whose blocks fit [n] bytes, or
    [None] when [n > max_small] (a large allocation) or [n <= 0]. *)

val pp : Format.formatter -> int -> unit
