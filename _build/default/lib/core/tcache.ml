type entry = { slab : Slab.t; addr : int }

type t = {
  class_idx : int;
  capacity : int;
  sub : entry list array;
  mutable cursor : int;
  mutable count : int;
}

let create ~class_idx ~capacity ~nsub =
  assert (capacity > 0 && nsub > 0);
  { class_idx; capacity; sub = Array.make nsub []; cursor = 0; count = 0 }

let class_idx t = t.class_idx
let count t = t.count
let is_empty t = t.count = 0
let is_full t = t.count >= t.capacity

(* Sub-tcache of an entry: the cache line of its bitmap bit. An entry
   whose slab has since morphed to another class (the address no longer
   lies on the current block grid) has no bit; bucket 0 is fine — such
   entries are rare stragglers. *)
let home t e =
  if Slab.contains_new_block e.slab e.addr then begin
    let b = Slab.block_index e.slab e.addr in
    let line, _ = Bitmap.bit_location e.slab.Slab.bitmap b in
    line mod Array.length t.sub
  end
  else 0

let push t e =
  if is_full t then false
  else begin
    let i = home t e in
    t.sub.(i) <- e :: t.sub.(i);
    t.count <- t.count + 1;
    true
  end

let pop t =
  if t.count = 0 then None
  else begin
    let n = Array.length t.sub in
    (* Find the next non-empty sub-tcache from the cursor. *)
    let rec find i remaining =
      if remaining = 0 then assert false
      else if t.sub.(i) <> [] then i
      else find ((i + 1) mod n) (remaining - 1)
    in
    let i = find t.cursor n in
    match t.sub.(i) with
    | [] -> assert false
    | e :: rest ->
        t.sub.(i) <- rest;
        t.count <- t.count - 1;
        t.cursor <- (i + 1) mod n;
        Some e
  end

let drain t =
  let all = Array.fold_left (fun acc l -> List.rev_append l acc) [] t.sub in
  Array.fill t.sub 0 (Array.length t.sub) [];
  t.count <- 0;
  all
