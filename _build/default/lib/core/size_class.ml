let table =
  let small = List.init 8 (fun i -> 16 * (i + 1)) in
  (* Four classes per doubling from 128 up to 16384. *)
  let rec doublings base acc =
    if base >= 16384 then List.rev acc
    else
      let step = base / 4 in
      let acc = List.fold_left (fun acc i -> (base + (step * i)) :: acc) acc [ 1; 2; 3; 4 ] in
      doublings (base * 2) acc
  in
  Array.of_list (small @ doublings 128 [])

let count = Array.length table
let max_small = table.(count - 1)

let size_of c =
  if c < 0 || c >= count then invalid_arg "Size_class.size_of";
  table.(c)

let of_size n =
  if n <= 0 || n > max_small then None
  else begin
    (* The table is sorted and tiny; a linear scan is clear and the cost is
       charged through the simulated search model, not measured here. *)
    let rec go i = if table.(i) >= n then Some i else go (i + 1) in
    go 0
  end

let pp ppf c = Format.fprintf ppf "class %d (%d B)" c table.(c)

let () = assert (max_small = 16384)
