(** Persistent heap layout: superblock, region table, root table.

    The heap occupies the whole device:

    {v
    0            superblock (magic, arena count, run-state flag)
    4 KB         region table: 4096 slots * 8 B (base and size, 4 KB units)
    36 KB        root table: root_slots * 8 B
    ...          per-arena WAL regions
    ...          per-arena bookkeeping-log regions
    heap_start   extent space managed through Dax (the "heap files")
    v}

    The run-state flag implements section 4.4's per-heap state: [Running],
    [Shutdown] (set by a clean [nvalloc_exit]) or [Recovering]; finding
    [Running]/[Recovering] at open time means a failure happened and a
    sanity pass (WAL replay or conservative GC) is required.

    The region table persists which 4 MB regions are mapped, so recovery
    can walk the heap without the volatile Dax state. *)

type state = Running | Shutdown | Recovering

type t

val region_slots : int

val init : Pmem.Device.t -> Config.t -> t
(** Format a fresh heap (volatile image; the first fence persists). *)

val open_existing : Pmem.Device.t -> Config.t -> state * t
(** Rebuild the layout handle from a (post-crash or post-shutdown) image;
    returns the persisted run state as found. [Config] must match the one
    the heap was initialised with (checked against the superblock where
    recorded). The caller ({!Recovery}) is responsible for moving the
    state to [Recovering] and eventually back to [Running]. *)

val device : t -> Pmem.Device.t
val dax : t -> Pmem.Dax.t
val config : t -> Config.t
val set_state : t -> Sim.Clock.t -> state -> unit

val root_addr : t -> int -> int
(** Device address of root slot [i]. *)

val root_slots : t -> int
val wal_base : t -> arena:int -> int
val booklog_base : t -> arena:int -> int
val heap_start : t -> int

(** {1 Region table} *)

val register_region : t -> Sim.Clock.t -> addr:int -> size:int -> unit
(** Record a mapped region (one small metadata flush). *)

val unregister_region : t -> Sim.Clock.t -> addr:int -> unit

val regions : t -> (int * int) list
(** Mapped regions [(addr, size)], from the persistent table. *)

val read_regions : Pmem.Device.t -> (int * int) list
(** Static variant for recovery, before a handle exists. *)
