lib/api/instance.ml: Array Config Nvalloc Nvalloc_core Option Pmem Sim
