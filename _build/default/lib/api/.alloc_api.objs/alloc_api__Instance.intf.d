lib/api/instance.mli: Nvalloc_core Pmem Sim
