(** Prod-con (section 6.2): threads form producer/consumer pairs; the
    producer allocates [per_pair] objects of [size] bytes, the consumer
    frees them — every free is a cross-thread free, stressing remote
    tcache/arena paths. *)

type params = { per_pair : int; size : int; queue_cap : int }

val default : params

val run : Alloc_api.Instance.t -> ?params:params -> unit -> Driver.result
(** Requires an even thread count >= 2 (odd trailing threads idle). *)
