type params = { per_pair : int; size : int; queue_cap : int }

let default = { per_pair = 10_000; size = 64; queue_cap = 64 }

type pair = {
  queue : int Queue.t; (* slot indices of allocated, not yet freed objects *)
  pool : int Stack.t; (* producer's available slot indices *)
  mutable produced : int;
  mutable consumed : int;
}

let run (inst : Alloc_api.Instance.t) ?(params = default) () =
  let open Alloc_api.Instance in
  (* One thread degenerates to a self-pair: it alternates producing and
     consuming (the paper's Figure 9(b) effectively starts at 2 threads). *)
  let solo = inst.threads = 1 in
  let npairs = if solo then 1 else inst.threads / 2 in
  let pairs =
    Array.init npairs (fun _ ->
        let pool = Stack.create () in
        (* Enough slots to cover the in-flight window. *)
        for i = params.queue_cap downto 0 do
          Stack.push i pool
        done;
        { queue = Queue.create (); pool; produced = 0; consumed = 0 })
  in
  let solo_step () =
    let p = pairs.(0) in
    if p.produced < params.per_pair && Queue.length p.queue < params.queue_cap
       && not (Stack.is_empty p.pool)
    then begin
      let i = Stack.pop p.pool in
      ignore (inst.malloc ~tid:0 ~size:params.size ~dest:(Driver.slot inst ~tid:0 i));
      Queue.add i p.queue;
      p.produced <- p.produced + 1;
      true
    end
    else if p.consumed < params.per_pair && not (Queue.is_empty p.queue) then begin
      let i = Queue.pop p.queue in
      inst.free ~tid:0 ~dest:(Driver.slot inst ~tid:0 i);
      Stack.push i p.pool;
      p.consumed <- p.consumed + 1;
      true
    end
    else false
  in
  let step ~tid () =
    if solo then solo_step ()
    else if tid >= 2 * npairs then false
    else begin
      let p = pairs.(tid / 2) in
      let producer_tid = tid / 2 * 2 in
      if tid land 1 = 0 then
        (* Producer: allocates into its own slot partition. *)
        if p.produced >= params.per_pair then false
        else if Queue.length p.queue >= params.queue_cap || Stack.is_empty p.pool then begin
          Driver.idle inst ~tid;
          true
        end
        else begin
          let i = Stack.pop p.pool in
          ignore (inst.malloc ~tid ~size:params.size ~dest:(Driver.slot inst ~tid:producer_tid i));
          Queue.add i p.queue;
          p.produced <- p.produced + 1;
          true
        end
      else if
        (* Consumer: frees from the producer's partition. *)
        p.consumed >= params.per_pair
      then false
      else if Queue.is_empty p.queue then begin
        Driver.idle inst ~tid;
        true
      end
      else begin
        let i = Queue.pop p.queue in
        inst.free ~tid ~dest:(Driver.slot inst ~tid:producer_tid i);
        Stack.push i p.pool;
        p.consumed <- p.consumed + 1;
        true
      end
    end
  in
  Driver.run inst
    ~ops_of:(fun ~tid ->
      if solo then 2 * params.per_pair
      else if tid >= 2 * npairs then 0
      else params.per_pair)
    ~step_of:step
