lib/workloads/threadtest.ml: Alloc_api Array Driver
