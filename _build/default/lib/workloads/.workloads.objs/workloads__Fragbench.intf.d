lib/workloads/fragbench.mli: Alloc_api Driver
