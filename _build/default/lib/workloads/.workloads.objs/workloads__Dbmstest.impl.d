lib/workloads/dbmstest.ml: Alloc_api Array Driver List Sim Stack
