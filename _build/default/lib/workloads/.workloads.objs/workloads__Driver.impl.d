lib/workloads/driver.ml: Alloc_api Array Sim
