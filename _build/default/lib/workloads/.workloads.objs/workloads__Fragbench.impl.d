lib/workloads/fragbench.ml: Alloc_api Array Driver Sim Stack
