lib/workloads/threadtest.mli: Alloc_api Driver
