lib/workloads/prodcon.mli: Alloc_api Driver
