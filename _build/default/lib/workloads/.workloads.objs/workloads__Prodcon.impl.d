lib/workloads/prodcon.ml: Alloc_api Array Driver Queue Stack
