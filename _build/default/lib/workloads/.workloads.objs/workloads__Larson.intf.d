lib/workloads/larson.mli: Alloc_api Driver
