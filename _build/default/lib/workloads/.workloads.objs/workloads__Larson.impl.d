lib/workloads/larson.ml: Alloc_api Array Driver Sim
