lib/workloads/recovery_workload.mli: Alloc_api
