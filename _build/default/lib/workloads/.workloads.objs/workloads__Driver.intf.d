lib/workloads/driver.mli: Alloc_api
