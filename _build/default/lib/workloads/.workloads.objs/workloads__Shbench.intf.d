lib/workloads/shbench.mli: Alloc_api Driver
