lib/workloads/recovery_workload.ml: Alloc_api Driver Sim
