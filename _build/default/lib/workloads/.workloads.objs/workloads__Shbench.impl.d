lib/workloads/shbench.ml: Alloc_api Array Driver Sim
