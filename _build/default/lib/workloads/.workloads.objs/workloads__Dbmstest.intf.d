lib/workloads/dbmstest.mli: Alloc_api Driver
