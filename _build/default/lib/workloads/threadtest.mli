(** Threadtest (Berger et al., via the paper's section 6.2): every thread
    runs [iterations] rounds, each allocating [objects] blocks of [size]
    bytes and then freeing them all. Fixed-size allocation makes it the
    worst case for sequential bitmap mappings (maximum reflushes). *)

type params = { iterations : int; objects : int; size : int }

val default : params
(** Scaled down from the paper's i=10^4, n=10^5: 10 x 1000 x 64 B per
    thread (see EXPERIMENTS.md on scaling). *)

val run : Alloc_api.Instance.t -> ?params:params -> unit -> Driver.result
