type params = { nodes : int; min_size : int; max_size : int }

let default = { nodes = 20_000; min_size = 64; max_size = 128 }

let run (inst : Alloc_api.Instance.t) ?(params = default) ?(seed = 5) () =
  let open Alloc_api.Instance in
  let rng = Sim.Rng.create seed in
  (* Node layout: [next:int64][payload...]; the root slot anchors the
     head, each node's first word anchors the next node, so the GC-based
     recoveries must walk the whole chain. *)
  let head_dest = Driver.slot inst ~tid:0 0 in
  let size () = Sim.Rng.int_in rng params.min_size params.max_size in
  let tail = ref (inst.malloc ~tid:0 ~size:(size ()) ~dest:head_dest) in
  for _ = 2 to params.nodes do
    let node = inst.malloc ~tid:0 ~size:(size ()) ~dest:!tail in
    tail := node
  done;
  inst.recover ()
