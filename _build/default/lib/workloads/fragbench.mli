(** Fragbench (Rumble et al.'s fragmentation benchmark, sections 3.2 and
    6.4): three phases — Before, Delete, After. The Before/After phases
    keep allocating objects from a size distribution, randomly deleting
    live objects whenever live data would exceed [live_cap], until
    [churn] bytes have been allocated in total; the Delete phase removes
    a fraction of the live objects at random. Changing the distribution
    between Before and After is what exposes static slab segregation.

    Workloads W1-W4 reproduce Table 1. The paper's 5 GB churn / 1 GB live
    cap are scaled to 60 MB / 12 MB (same 5:1 ratio). *)

type dist = Fixed of int | Uniform of int * int

type workload = { label : string; before : dist; delete_frac : float; after : dist }

val w1 : workload
val w2 : workload
val w3 : workload
val w4 : workload
val all : workload list

type params = { live_cap : int; churn : int }

val default : params

type frag_result = {
  result : Driver.result;
  peak_before : int;  (** peak mapped bytes during the Before phase *)
  peak_after : int;  (** peak over the whole run (the paper's metric) *)
}

val run :
  Alloc_api.Instance.t -> workload:workload -> ?params:params -> ?seed:int -> unit -> frag_result
(** Single-threaded, as fragmentation is a space property. *)
