(** Larson (section 6.2): server-style churn where objects allocated by
    one thread may be freed by another. Each thread owns a window of
    slots; every operation picks a random slot — usually its own, with
    probability [cross_frac] a neighbour thread's — and frees it if
    occupied or (own slots only) allocates a random-size object into it.

    Two parameterisations reproduce the paper's runs: [small] (64-256 B)
    and [large] (32-512 KB). *)

type params = {
  slots : int;  (** live-object window per thread *)
  ops : int;  (** operations per thread *)
  min_size : int;
  max_size : int;
  cross_frac : float;  (** fraction of ops targeting a neighbour's window *)
}

val small : params
val large : params

val run : Alloc_api.Instance.t -> ?params:params -> ?seed:int -> unit -> Driver.result
