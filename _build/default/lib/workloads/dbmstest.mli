(** DBMStest (Durner et al., section 6.2): database-style large-object
    churn. Per iteration each thread allocates [objects] extents with
    sizes following a (discretised) Poisson distribution between
    [min_size] and [max_size], then deletes [delete_frac] of them in
    random order. The first [warmup] iterations are excluded from the
    operation count but included in peak-memory tracking, as in the
    paper's 50 warmup + 50 measured iterations. *)

type params = {
  objects : int;
  iterations : int;
  warmup : int;
  min_size : int;
  max_size : int;
  delete_frac : float;
}

val default : params

val run : Alloc_api.Instance.t -> ?params:params -> ?seed:int -> unit -> Driver.result
