type params = { iterations : int; window : int; min_size : int; max_size : int }

let default = { iterations = 5000; window = 16; min_size = 64; max_size = 1000 }

type state = { rng : Sim.Rng.t; mutable next : int; mutable filled : int; mutable done_ : int }

let run (inst : Alloc_api.Instance.t) ?(params = default) ?(seed = 7) () =
  let open Alloc_api.Instance in
  let states =
    Array.init inst.threads (fun tid ->
        { rng = Sim.Rng.create (seed + tid); next = 0; filled = 0; done_ = 0 })
  in
  (* Cubing the uniform draw skews towards small sizes, matching
     "smaller objects are allocated and freed more frequently". *)
  let draw_size st =
    let u = Sim.Rng.float st.rng 1.0 in
    params.min_size
    + int_of_float (float_of_int (params.max_size - params.min_size) *. (u *. u *. u))
  in
  let step ~tid () =
    let st = states.(tid) in
    if st.done_ >= params.iterations then false
    else begin
      (if st.filled >= params.window then begin
         (* Free the oldest window entry before reusing its slot. *)
         let victim = st.next mod params.window in
         inst.free ~tid ~dest:(Driver.slot inst ~tid victim);
         st.filled <- st.filled - 1
       end);
      let i = st.next mod params.window in
      ignore (inst.malloc ~tid ~size:(draw_size st) ~dest:(Driver.slot inst ~tid i));
      st.next <- st.next + 1;
      st.filled <- st.filled + 1;
      st.done_ <- st.done_ + 1;
      true
    end
  in
  Driver.run inst ~ops_of:(fun ~tid:_ -> 2 * params.iterations) ~step_of:step
