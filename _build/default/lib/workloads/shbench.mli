(** Shbench (MicroQuill, section 6.2): an allocator stress test mixing
    object sizes from 64 B to 1000 B, smaller objects allocated and freed
    more frequently; each thread keeps a sliding window of live objects. *)

type params = { iterations : int; window : int; min_size : int; max_size : int }

val default : params

val run : Alloc_api.Instance.t -> ?params:params -> ?seed:int -> unit -> Driver.result
