(* Heap layout: superblock state machine, region table persistence,
   per-arena region addressing. *)

open Nvalloc_core

let mib = 1024 * 1024

let config =
  { Config.log_default with Config.arenas = 4; root_slots = 1024; booklog_chunks = 64;
    wal_entries = 256 }

let mk () =
  let dev = Pmem.Device.create ~size:(64 * mib) () in
  let clock = Sim.Clock.create () in
  (dev, clock, Heap.init dev config)

let test_layout_disjoint () =
  let _, _, heap = mk () in
  (* WAL, booklog and root regions of all arenas are pairwise disjoint
     and below the heap start. *)
  let ranges =
    List.concat_map
      (fun arena ->
        [
          (Heap.wal_base heap ~arena, Wal.region_bytes ~entries:config.Config.wal_entries);
          ( Heap.booklog_base heap ~arena,
            Booklog.region_bytes ~chunks:config.Config.booklog_chunks );
        ])
      [ 0; 1; 2; 3 ]
    @ [ (Heap.root_addr heap 0, config.Config.root_slots * 8) ]
  in
  let sorted = List.sort compare ranges in
  let rec disjoint = function
    | (a, la) :: ((b, _) :: _ as rest) -> a + la <= b && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "regions disjoint" true (disjoint sorted);
  Alcotest.(check bool) "below heap start" true
    (List.for_all (fun (a, l) -> a + l <= Heap.heap_start heap) sorted)

let test_state_machine () =
  let dev, clock, heap = mk () in
  Heap.set_state heap clock Heap.Running;
  let found, _ = Heap.open_existing dev config in
  Alcotest.(check bool) "running found" true (found = Heap.Running);
  Heap.set_state heap clock Heap.Shutdown;
  Pmem.Device.crash dev;
  let found, _ = Heap.open_existing dev config in
  Alcotest.(check bool) "shutdown survives crash" true (found = Heap.Shutdown)

let test_region_table () =
  let dev, clock, heap = mk () in
  Heap.register_region heap clock ~addr:(8 * mib) ~size:(4 * mib);
  Heap.register_region heap clock ~addr:(16 * mib) ~size:(8 * mib);
  Alcotest.(check (list (pair int int)))
    "both listed"
    [ (8 * mib, 4 * mib); (16 * mib, 8 * mib) ]
    (List.sort compare (Heap.regions heap));
  Heap.unregister_region heap clock ~addr:(8 * mib);
  Alcotest.(check (list (pair int int))) "one left" [ (16 * mib, 8 * mib) ] (Heap.regions heap);
  (* The table is persistent: a crash keeps registered regions. *)
  Pmem.Device.crash dev;
  Alcotest.(check (list (pair int int)))
    "survives crash"
    [ (16 * mib, 8 * mib) ]
    (Heap.read_regions dev)

let test_slot_reuse () =
  let dev, clock, heap = mk () in
  for i = 0 to 99 do
    Heap.register_region heap clock ~addr:((i + 2) * mib) ~size:mib;
    Heap.unregister_region heap clock ~addr:((i + 2) * mib)
  done;
  Alcotest.(check (list (pair int int))) "empty at the end" [] (Heap.regions heap);
  ignore dev

let prop_region_roundtrip =
  let open QCheck in
  Test.make ~name:"region table roundtrips arbitrary page-aligned regions" ~count:100
    (make Gen.(list_size (int_range 1 30) (pair (int_range 1 4000) (int_range 1 200))))
    (fun specs ->
      let dev, clock, heap = mk () in
      ignore dev;
      (* Make addresses unique by spacing them out. *)
      let regions =
        List.mapi (fun i (a, s) -> (((i * 5000) + a) * 4096, s * 4096)) specs
      in
      List.iter (fun (addr, size) -> Heap.register_region heap clock ~addr ~size) regions;
      List.sort compare (Heap.regions heap) = List.sort compare regions)

let suite =
  [
    Alcotest.test_case "metadata regions are disjoint" `Quick test_layout_disjoint;
    Alcotest.test_case "run-state machine" `Quick test_state_machine;
    Alcotest.test_case "region table register/unregister" `Quick test_region_table;
    Alcotest.test_case "region slots are reused" `Quick test_slot_reuse;
    QCheck_alcotest.to_alcotest prop_region_roundtrip;
  ]
