(* Baseline allocators: functional correctness of every knob set, plus
   the behavioural signatures the figures rely on. *)

let all_knobs =
  Baselines.Knobs.[ pmdk; nvm_malloc; pallocator; makalu; ralloc; jemalloc; tcmalloc ]

let mk knobs =
  Baselines.Bengine.instance ~knobs ~threads:2 ~dev_size:(128 * 1024 * 1024)
    ~root_slots:8192 ()

let test_alloc_free_all () =
  List.iter
    (fun knobs ->
      let inst = mk knobs in
      let open Alloc_api.Instance in
      let seen = Hashtbl.create 64 in
      for i = 0 to 499 do
        let size = 16 + (8 * (i mod 60)) in
        let addr = inst.malloc ~tid:(i mod 2) ~size ~dest:(inst.root i) in
        Alcotest.(check bool)
          (Printf.sprintf "%s unique %d" inst.name i)
          false (Hashtbl.mem seen addr);
        Hashtbl.add seen addr ()
      done;
      for i = 0 to 499 do
        inst.free ~tid:((i + 1) mod 2) ~dest:(inst.root i)
      done;
      (* Reuse after free. *)
      for i = 0 to 99 do
        ignore (inst.malloc ~tid:0 ~size:64 ~dest:(inst.root i))
      done)
    all_knobs

let test_large_objects () =
  List.iter
    (fun knobs ->
      let inst = mk knobs in
      let open Alloc_api.Instance in
      let a = inst.malloc ~tid:0 ~size:(100 * 1024) ~dest:(inst.root 0) in
      let b = inst.malloc ~tid:0 ~size:(3 * 1024 * 1024) ~dest:(inst.root 1) in
      Alcotest.(check bool) "disjoint" true (b >= a + (100 * 1024) || a >= b + (3 * 1024 * 1024));
      inst.free ~tid:0 ~dest:(inst.root 0);
      inst.free ~tid:0 ~dest:(inst.root 1))
    [ Baselines.Knobs.pmdk; Baselines.Knobs.makalu; Baselines.Knobs.jemalloc ]

let test_volatile_never_flushes () =
  let inst = mk Baselines.Knobs.jemalloc in
  let open Alloc_api.Instance in
  for i = 0 to 199 do
    ignore (inst.malloc ~tid:0 ~size:64 ~dest:(inst.root i))
  done;
  Alcotest.(check int) "no flushes" 0 (Pmem.Stats.flushes (Pmem.Device.stats inst.dev))

let test_reflush_signatures () =
  (* PMDK's commit marks guarantee reflushes; sequential bitmaps too. *)
  let ratio knobs =
    let inst = mk knobs in
    let open Alloc_api.Instance in
    for i = 0 to 199 do
      ignore (inst.malloc ~tid:0 ~size:64 ~dest:(inst.root i))
    done;
    Pmem.Stats.reflush_ratio (Pmem.Device.stats inst.dev)
  in
  Alcotest.(check bool) "pmdk reflush-heavy" true (ratio Baselines.Knobs.pmdk > 0.5);
  Alcotest.(check bool) "nvm_malloc reflush-heavy" true (ratio Baselines.Knobs.nvm_malloc > 0.4);
  Alcotest.(check bool) "makalu reflushes" true (ratio Baselines.Knobs.makalu > 0.3)

let test_recovery_model_ordering () =
  (* Build identical small heaps; the modelled recovery times must obey
     the paper's ordering: nvm_malloc < PMDK (WAL-only vs full scan) and
     Ralloc < Makalu (partial vs conservative GC). *)
  let time knobs =
    let inst = mk knobs in
    let open Alloc_api.Instance in
    for i = 0 to 999 do
      ignore (inst.malloc ~tid:0 ~size:96 ~dest:(inst.root i))
    done;
    inst.recover ()
  in
  let t_nvm = time Baselines.Knobs.nvm_malloc in
  let t_pmdk = time Baselines.Knobs.pmdk in
  let t_ralloc = time Baselines.Knobs.ralloc in
  let t_makalu = time Baselines.Knobs.makalu in
  Alcotest.(check bool) "nvm < pmdk" true (t_nvm < t_pmdk);
  Alcotest.(check bool) "ralloc < makalu" true (t_ralloc < t_makalu)

let test_hoarding_signature () =
  (* Makalu hoards empty slabs; others return them. *)
  let peak knobs =
    let inst = mk knobs in
    let open Alloc_api.Instance in
    for round = 0 to 3 do
      ignore round;
      for i = 0 to 1999 do
        ignore (inst.malloc ~tid:0 ~size:4096 ~dest:(inst.root i))
      done;
      for i = 0 to 1999 do
        inst.free ~tid:0 ~dest:(inst.root i)
      done
    done;
    inst.mapped_bytes ()
  in
  Alcotest.(check bool) "makalu retains more" true
    (peak Baselines.Knobs.makalu >= peak Baselines.Knobs.nvm_malloc)

let suite =
  [
    Alcotest.test_case "alloc/free on every baseline" `Quick test_alloc_free_all;
    Alcotest.test_case "large objects" `Quick test_large_objects;
    Alcotest.test_case "volatile allocators never flush" `Quick test_volatile_never_flushes;
    Alcotest.test_case "reflush signatures" `Quick test_reflush_signatures;
    Alcotest.test_case "recovery-model ordering" `Quick test_recovery_model_ordering;
    Alcotest.test_case "hoarding signature" `Quick test_hoarding_signature;
  ]
