(* Red-black tree: unit cases plus model-based property tests against
   Stdlib.Map, including the structural invariants after every op. *)

module Rb = Support.Rbtree.Make (struct
  type t = int

  let compare = compare
end)

module M = Map.Make (Int)

let check = Alcotest.(check (option int))

let test_basic () =
  let t = Rb.create () in
  Alcotest.(check bool) "empty" true (Rb.is_empty t);
  Rb.insert t 5 50;
  Rb.insert t 3 30;
  Rb.insert t 8 80;
  Alcotest.(check int) "cardinal" 3 (Rb.cardinal t);
  check "find 3" (Some 30) (Rb.find_opt t 3);
  check "find 9" None (Rb.find_opt t 9);
  Rb.insert t 3 31;
  Alcotest.(check int) "cardinal after replace" 3 (Rb.cardinal t);
  check "replaced" (Some 31) (Rb.find_opt t 3);
  Rb.remove t 3;
  check "removed" None (Rb.find_opt t 3);
  Alcotest.(check int) "cardinal after remove" 2 (Rb.cardinal t);
  Rb.remove t 99;
  Alcotest.(check int) "remove missing is noop" 2 (Rb.cardinal t)

let test_ordered_queries () =
  let t = Rb.create () in
  List.iter (fun k -> Rb.insert t k (k * 10)) [ 10; 20; 30; 40 ];
  check "geq 15" (Some 200) (Option.map snd (Rb.find_first_geq t 15));
  check "geq 20" (Some 200) (Option.map snd (Rb.find_first_geq t 20));
  check "geq 41" None (Option.map snd (Rb.find_first_geq t 41));
  check "leq 15" (Some 100) (Option.map snd (Rb.find_last_leq t 15));
  check "leq 9" None (Option.map snd (Rb.find_last_leq t 9));
  check "lt 20" (Some 100) (Option.map snd (Rb.find_last_lt t 20));
  check "lt 10" None (Option.map snd (Rb.find_last_lt t 10));
  Alcotest.(check (option (pair int int))) "min" (Some (10, 100)) (Rb.min_binding_opt t);
  Alcotest.(check (option (pair int int))) "max" (Some (40, 400)) (Rb.max_binding_opt t)

let test_iter_order () =
  let t = Rb.create () in
  List.iter (fun k -> Rb.insert t k k) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] (List.map fst (Rb.to_list t))

(* Property: random op sequences agree with Map and preserve invariants. *)
let prop_model =
  let open QCheck in
  let op =
    Gen.(
      oneof
        [
          map (fun k -> `Insert k) (int_bound 200);
          map (fun k -> `Remove k) (int_bound 200);
        ])
  in
  Test.make ~name:"rbtree agrees with Map and keeps invariants" ~count:300
    (make Gen.(list_size (int_bound 400) op))
    (fun ops ->
      let t = Rb.create () in
      let m = ref M.empty in
      List.for_all
        (fun op ->
          (match op with
          | `Insert k ->
              Rb.insert t k (k * 2);
              m := M.add k (k * 2) !m
          | `Remove k ->
              Rb.remove t k;
              m := M.remove k !m);
          Rb.invariants_ok t
          && Rb.cardinal t = M.cardinal !m
          && Rb.to_list t = M.bindings !m)
        ops)

let prop_ordered_queries =
  let open QCheck in
  Test.make ~name:"geq/leq/lt agree with a list model" ~count:300
    (make Gen.(pair (list_size (int_bound 60) (int_bound 100)) (int_bound 100)))
    (fun (keys, probe) ->
      let t = Rb.create () in
      List.iter (fun k -> Rb.insert t k k) keys;
      let sorted = List.sort_uniq compare keys in
      let geq = List.find_opt (fun k -> k >= probe) sorted in
      let leq = List.fold_left (fun acc k -> if k <= probe then Some k else acc) None sorted in
      let lt = List.fold_left (fun acc k -> if k < probe then Some k else acc) None sorted in
      Option.map fst (Rb.find_first_geq t probe) = geq
      && Option.map fst (Rb.find_last_leq t probe) = leq
      && Option.map fst (Rb.find_last_lt t probe) = lt)

let suite =
  [
    Alcotest.test_case "basic insert/find/remove" `Quick test_basic;
    Alcotest.test_case "ordered queries" `Quick test_ordered_queries;
    Alcotest.test_case "iteration order" `Quick test_iter_order;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_ordered_queries;
  ]
