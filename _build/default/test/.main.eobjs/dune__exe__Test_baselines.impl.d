test/test_baselines.ml: Alcotest Alloc_api Baselines Hashtbl List Pmem Printf
