test/test_rbtree.ml: Alcotest Gen Int List Map Option QCheck QCheck_alcotest Support Test
