test/test_internal_collection.ml: Alcotest Config Hashtbl Int64 List Nvalloc Nvalloc_core Pmem Sim
