test/main.mli:
