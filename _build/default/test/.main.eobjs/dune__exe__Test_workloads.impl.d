test/test_workloads.ml: Alcotest Alloc_api Hashtbl Nvalloc_core Workloads
