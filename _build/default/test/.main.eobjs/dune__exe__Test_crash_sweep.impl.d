test/test_crash_sweep.ml: Alcotest Config Heap List Nvalloc Nvalloc_core Pmem Printexc Printf Sim
