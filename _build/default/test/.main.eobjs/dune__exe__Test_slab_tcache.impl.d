test/test_slab_tcache.ml: Alcotest Bitmap Gen List Nvalloc_core Option Pmem QCheck QCheck_alcotest Size_class Slab Tcache Test
