test/test_bitmap.ml: Alcotest Array Bitmap Gen Hashtbl List Nvalloc_core Pmem Printf QCheck QCheck_alcotest Test
