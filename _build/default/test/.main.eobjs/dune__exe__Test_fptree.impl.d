test/test_fptree.ml: Alcotest Alloc_api Fptree_lib Gen Hashtbl List Nvalloc_core Printf QCheck QCheck_alcotest Test
