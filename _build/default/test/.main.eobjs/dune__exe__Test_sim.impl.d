test/test_sim.ml: Alcotest Array Bytes Gen Int64 List Pmem QCheck QCheck_alcotest Sim Support Test
