test/test_morph.ml: Alcotest Config Int64 List Nvalloc Nvalloc_core Pmem Printexc Printf Sim Slab
