test/test_extent.ml: Alcotest Booklog Config Extent Gen Heap List Nvalloc_core Pmem QCheck QCheck_alcotest Sim Test
