test/test_support.ml: Alcotest Float Gen List QCheck QCheck_alcotest Support Test
