test/test_heap.ml: Alcotest Booklog Config Gen Heap List Nvalloc_core Pmem QCheck QCheck_alcotest Sim Test Wal
