test/test_nvalloc.ml: Alcotest Config Hashtbl Heap Int64 Nvalloc Nvalloc_core Pmem Printf Sim
