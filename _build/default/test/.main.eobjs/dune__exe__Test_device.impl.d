test/test_device.ml: Alcotest List Pmem Sim
