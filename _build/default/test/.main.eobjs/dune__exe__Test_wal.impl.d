test/test_wal.ml: Alcotest Gen List Nvalloc_core Pmem QCheck QCheck_alcotest Sim Test Wal
