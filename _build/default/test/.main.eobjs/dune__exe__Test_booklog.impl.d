test/test_booklog.ml: Alcotest Booklog Gen Hashtbl List Nvalloc_core Pmem QCheck QCheck_alcotest Sim Test
