(* Dlist and smootherstep. *)

module D = Support.Dlist

let test_dlist_basic () =
  let l = D.create () in
  Alcotest.(check bool) "empty" true (D.is_empty l);
  let _a = D.push_back l 1 in
  let b = D.push_back l 2 in
  let _c = D.push_back l 3 in
  Alcotest.(check int) "length" 3 (D.length l);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (D.to_list l);
  D.remove l b;
  Alcotest.(check (list int)) "middle removed" [ 1; 3 ] (D.to_list l);
  Alcotest.(check (option int)) "pop front" (Some 1) (D.pop_front l);
  Alcotest.(check (option int)) "peek" (Some 3) (D.peek_front l);
  Alcotest.(check (option int)) "pop last" (Some 3) (D.pop_front l);
  Alcotest.(check (option int)) "pop empty" None (D.pop_front l)

let test_dlist_front () =
  let l = D.create () in
  let _ = D.push_front l 2 in
  let _ = D.push_front l 1 in
  let _ = D.push_back l 3 in
  Alcotest.(check (list int)) "front/back mix" [ 1; 2; 3 ] (D.to_list l);
  match D.find_node (fun v -> v = 2) l with
  | Some n ->
      Alcotest.(check int) "found" 2 (D.value n);
      D.remove l n;
      Alcotest.(check (list int)) "after remove" [ 1; 3 ] (D.to_list l)
  | None -> Alcotest.fail "find_node"

let prop_dlist_model =
  let open QCheck in
  Test.make ~name:"dlist behaves like a list under pushes/pops" ~count:200
    (make
       Gen.(
         list_size (int_bound 60)
           (oneof
              [
                map (fun v -> `Push_back v) (int_bound 100);
                map (fun v -> `Push_front v) (int_bound 100);
                return `Pop;
              ])))
    (fun ops ->
      let l = D.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          (match op with
          | `Push_back v ->
              ignore (D.push_back l v);
              model := !model @ [ v ]
          | `Push_front v ->
              ignore (D.push_front l v);
              model := v :: !model
          | `Pop -> (
              let got = D.pop_front l in
              match !model with
              | [] -> assert (got = None)
              | x :: rest ->
                  assert (got = Some x);
                  model := rest));
          D.to_list l = !model && D.length l = List.length !model)
        ops)

let test_smootherstep () =
  Alcotest.(check (float 1e-9)) "0" 0.0 (Support.Smootherstep.curve 0.0);
  Alcotest.(check (float 1e-9)) "1" 1.0 (Support.Smootherstep.curve 1.0);
  Alcotest.(check (float 1e-9)) "mid" 0.5 (Support.Smootherstep.curve 0.5);
  Alcotest.(check bool) "clamped below" true (Support.Smootherstep.curve (-1.0) = 0.0);
  Alcotest.(check bool) "clamped above" true (Support.Smootherstep.curve 2.0 = 1.0);
  Alcotest.(check int) "limit start" 1000
    (Support.Smootherstep.limit ~total:1000 ~elapsed_fraction:0.0);
  Alcotest.(check int) "limit end" 0 (Support.Smootherstep.limit ~total:1000 ~elapsed_fraction:1.0)

let prop_smootherstep_monotone =
  let open QCheck in
  Test.make ~name:"smootherstep is monotone" ~count:200
    (make Gen.(pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Support.Smootherstep.curve lo <= Support.Smootherstep.curve hi +. 1e-12)

let suite =
  [
    Alcotest.test_case "dlist basic" `Quick test_dlist_basic;
    Alcotest.test_case "dlist push_front/find" `Quick test_dlist_front;
    QCheck_alcotest.to_alcotest prop_dlist_model;
    Alcotest.test_case "smootherstep endpoints" `Quick test_smootherstep;
    QCheck_alcotest.to_alcotest prop_smootherstep_monotone;
  ]
