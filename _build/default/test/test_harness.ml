(* The experiment registry: ids are unique and findable, every paper
   table/figure is present, and the cheap experiments produce well-formed
   tables (the expensive ones are exercised by bench/main.exe). *)

let test_ids_unique () =
  let ids = List.map (fun e -> e.Harness.Registry.id) Harness.Registry.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_paper_coverage () =
  (* Every table and figure of the paper's evaluation has an entry. *)
  let required =
    [ "tab1"; "tab2"; "fig1a"; "fig1b"; "fig2"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
      "fig14"; "fig15"; "fig16a"; "fig16b"; "fig17"; "fig18"; "fig19"; "fig20"; "fig21" ]
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (Harness.Registry.find id <> None))
    required

let test_find_unknown () =
  Alcotest.(check bool) "unknown id" true (Harness.Registry.find "fig99" = None)

let well_formed (t : Harness.Output.table) =
  let cols = List.length t.Harness.Output.header in
  t.Harness.Output.rows <> []
  && List.for_all (fun r -> List.length r = cols) t.Harness.Output.rows

let test_static_tables_well_formed () =
  List.iter
    (fun id ->
      match Harness.Registry.find id with
      | Some e ->
          List.iter
            (fun t ->
              Alcotest.(check bool) (id ^ " well-formed") true (well_formed t))
            (e.Harness.Registry.run ())
      | None -> Alcotest.fail (id ^ " missing"))
    [ "tab1"; "tab2" ]

let test_factory_names_distinct () =
  let kinds =
    Harness.Factory.
      [ Pmdk; Nvm_malloc; Pallocator; Makalu; Ralloc; Jemalloc; Tcmalloc; Nv_log; Nv_gc; Nv_ic ]
  in
  let names = List.map Harness.Factory.name kinds in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_output_formatters () =
  Alcotest.(check string) "mops" "1.234" (Harness.Output.mops 1.2341);
  Alcotest.(check string) "mib" "2.0" (Harness.Output.mib (2 * 1024 * 1024));
  Alcotest.(check string) "ms" "1.50" (Harness.Output.ms 1_500_000.0);
  Alcotest.(check string) "pct" "12.5%" (Harness.Output.pct 0.125);
  Alcotest.(check string) "ratio" "3.40x" (Harness.Output.ratio 3.4)

let suite =
  [
    Alcotest.test_case "registry ids unique" `Quick test_ids_unique;
    Alcotest.test_case "all paper artifacts registered" `Quick test_paper_coverage;
    Alcotest.test_case "unknown id" `Quick test_find_unknown;
    Alcotest.test_case "static tables well-formed" `Quick test_static_tables_well_formed;
    Alcotest.test_case "factory names distinct" `Quick test_factory_names_distinct;
    Alcotest.test_case "output formatters" `Quick test_output_formatters;
  ]
