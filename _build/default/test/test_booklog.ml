(* Log-structured bookkeeping: append/tombstone/scan, fast and slow GC,
   crash safety of the alt-bit switch, recovery reopen. *)

open Nvalloc_core

let mk ?(chunks = 64) ?(interleave = true) () =
  let dev = Pmem.Device.create ~size:(4 * 1024 * 1024) () in
  let clock = Sim.Clock.create () in
  let log = Booklog.create dev ~base:0 ~chunks ~interleave in
  (dev, clock, log)

let scan_addrs dev ~interleave =
  List.map (fun s -> (s.Booklog.addr, s.Booklog.size)) (Booklog.scan dev ~base:0 ~interleave)

let test_append_scan () =
  let dev, clock, log = mk () in
  let r1 = Booklog.append_normal log clock Booklog.Extent ~addr:(1 lsl 20) ~size:65536 in
  let _r2 = Booklog.append_normal log clock Booklog.Slab_extent ~addr:(2 lsl 20) ~size:65536 in
  Alcotest.(check (list (pair int int)))
    "both live"
    [ (1 lsl 20, 65536); (2 lsl 20, 65536) ]
    (scan_addrs dev ~interleave:true);
  Booklog.append_tombstone log clock r1;
  Alcotest.(check (list (pair int int))) "first deleted" [ (2 lsl 20, 65536) ]
    (scan_addrs dev ~interleave:true);
  let kinds = List.map (fun s -> s.Booklog.kind) (Booklog.scan dev ~base:0 ~interleave:true) in
  Alcotest.(check bool) "slab kind survives" true (kinds = [ Booklog.Slab_extent ])

let test_scan_survives_crash () =
  let dev, clock, log = mk () in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let refs =
    List.init 10 (fun i ->
        Booklog.append_normal log clock Booklog.Extent ~addr:((i + 1) * 4096) ~size:4096)
  in
  Booklog.append_tombstone log clock (List.nth refs 3);
  Pmem.Device.crash dev;
  let live = scan_addrs dev ~interleave:true in
  Alcotest.(check int) "nine live after crash" 9 (List.length live);
  Alcotest.(check bool) "tombstoned absent" true
    (not (List.mem_assoc (4 * 4096) live))

let test_fast_gc_frees_dead_chunks () =
  let dev, clock, log = mk ~chunks:8 () in
  ignore dev;
  (* Fill one chunk with entries, kill them all, fast GC should retire the
     chunk (the tail chunk is never retired). *)
  let refs =
    List.init Booklog.entries_per_chunk (fun i ->
        Booklog.append_normal log clock Booklog.Extent ~addr:((i + 1) * 4096) ~size:4096)
  in
  (* Force a new tail so the dead chunk is not the tail. *)
  let keeper = Booklog.append_normal log clock Booklog.Extent ~addr:(1 lsl 21) ~size:4096 in
  ignore keeper;
  List.iter (fun r -> Booklog.append_tombstone log clock r) refs;
  let used_before = Booklog.chunks_in_use log in
  let freed = Booklog.fast_gc log clock in
  Alcotest.(check bool) "freed at least one chunk" true (freed >= 1);
  Alcotest.(check bool) "fewer in use" true (Booklog.chunks_in_use log < used_before);
  (* The survivor entry is still there. *)
  Alcotest.(check bool) "keeper survives" true
    (List.mem_assoc (1 lsl 21) (scan_addrs dev ~interleave:true))

let test_slow_gc_compacts_and_remaps () =
  let dev, clock, log = mk ~chunks:16 () in
  let refs =
    List.init 200 (fun i ->
        Booklog.append_normal log clock Booklog.Extent ~addr:((i + 1) * 4096) ~size:4096)
  in
  (* Kill the even entries. *)
  List.iteri (fun i r -> if i mod 2 = 0 then Booklog.append_tombstone log clock r) refs;
  let remap = Booklog.slow_gc log clock in
  (* Remappings cover exactly the 100 surviving entries. *)
  Alcotest.(check int) "remap count" 100 (List.length remap);
  let live = scan_addrs dev ~interleave:true in
  Alcotest.(check int) "live count after slow GC" 100 (List.length live);
  Alcotest.(check bool) "only odd survivors" true
    (List.for_all (fun (a, _) -> a / 4096 mod 2 = 0) live);
  (* Old refs remap to valid new refs; the new log accepts tombstones for
     them. *)
  List.iter (fun (_, new_ref) -> Booklog.append_tombstone log clock new_ref) remap;
  Alcotest.(check int) "all dead after tombstoning the remapped" 0
    (List.length (scan_addrs dev ~interleave:true))

let test_slow_gc_crash_before_flip_keeps_old () =
  let dev, clock, log = mk ~chunks:16 () in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let refs =
    List.init 50 (fun i ->
        Booklog.append_normal log clock Booklog.Extent ~addr:((i + 1) * 4096) ~size:4096)
  in
  List.iteri (fun i r -> if i < 10 then Booklog.append_tombstone log clock r) refs;
  (* Crash at some point during the slow GC: whether the alt flip
     persisted or not, the scan must return exactly the 40 live extents. *)
  let snapshot_live = List.sort compare (scan_addrs dev ~interleave:true) in
  (try
     Pmem.Device.schedule_crash_after dev 20;
     ignore (Booklog.slow_gc log clock)
   with Pmem.Device.Injected_crash -> ());
  Pmem.Device.cancel_scheduled_crash dev;
  Pmem.Device.crash dev;
  let live = List.sort compare (scan_addrs dev ~interleave:true) in
  Alcotest.(check int) "40 live" 40 (List.length live);
  Alcotest.(check bool) "same set as before the GC" true (live = snapshot_live)

let test_open_existing_compacts () =
  let dev, clock, log = mk ~chunks:16 () in
  let refs =
    List.init 100 (fun i ->
        Booklog.append_normal log clock Booklog.Extent ~addr:((i + 1) * 4096) ~size:4096)
  in
  List.iteri (fun i r -> if i mod 4 <> 0 then Booklog.append_tombstone log clock r) refs;
  Pmem.Device.crash dev;
  let log', live = Booklog.open_existing dev clock ~base:0 ~chunks:16 ~interleave:true in
  Alcotest.(check int) "survivors" 25 (List.length live);
  (* The reopened log is tombstone-free and fully usable. *)
  List.iter (fun s -> Booklog.append_tombstone log' clock s.Booklog.ref_) live;
  Alcotest.(check int) "all tombstoned through new refs" 0
    (List.length (scan_addrs dev ~interleave:true))

let prop_scan_is_appends_minus_tombstones =
  let open QCheck in
  Test.make ~name:"scan = appends - tombstones" ~count:60
    (make
       Gen.(
         pair bool
           (list_size (int_range 1 150) (pair (int_range 1 500) bool))))
    (fun (interleave, ops) ->
      let dev = Pmem.Device.create ~size:(4 * 1024 * 1024) () in
      let clock = Sim.Clock.create () in
      let log = Booklog.create dev ~base:0 ~chunks:32 ~interleave in
      let live = Hashtbl.create 64 in
      List.iteri
        (fun i (page, kill) ->
          let addr = (page + (i * 512)) * 4096 in
          let r = Booklog.append_normal log clock Booklog.Extent ~addr ~size:4096 in
          Hashtbl.replace live r addr;
          if kill then begin
            (* Tombstone a random live entry (here: this one). *)
            Booklog.append_tombstone log clock r;
            Hashtbl.remove live r
          end)
        ops;
      let got = List.sort compare (List.map fst (scan_addrs dev ~interleave)) in
      let want = List.sort compare (Hashtbl.fold (fun _ a acc -> a :: acc) live []) in
      got = want)

let suite =
  [
    Alcotest.test_case "append/tombstone/scan" `Quick test_append_scan;
    Alcotest.test_case "scan survives crash" `Quick test_scan_survives_crash;
    Alcotest.test_case "fast GC frees dead chunks" `Quick test_fast_gc_frees_dead_chunks;
    Alcotest.test_case "slow GC compacts and remaps" `Quick test_slow_gc_compacts_and_remaps;
    Alcotest.test_case "crash during slow GC keeps old chain" `Quick
      test_slow_gc_crash_before_flip_keeps_old;
    Alcotest.test_case "open_existing compacts tombstones" `Quick test_open_existing_compacts;
    QCheck_alcotest.to_alcotest prop_scan_is_appends_minus_tombstones;
  ]
