(* The central crash-consistency property: run a mixed workload, crash
   the device after N flushed lines — for a sweep of N covering the whole
   run — recover, and check global invariants for both consistency
   models:

   - the owner index is disjoint (no double allocation);
   - every root published before the crash resolves to an owned block
     and can be freed;
   - after freeing everything reachable, the heap reports no live small
     blocks (no leaks: WAL replay / conservative GC reclaimed the rest);
   - the allocator remains fully usable. *)

open Nvalloc_core

let mib = 1024 * 1024

let config variant =
  let base = match variant with `Log -> Config.log_default | `Gc -> Config.gc_default in
  {
    base with
    Config.arenas = 2;
    root_slots = 4096;
    booklog_chunks = 128;
    wal_entries = 1024;
    tcache_capacity = 8;
  }

(* The scenario mixes small sizes, a large object, frees, and enough
   churn to trigger refills, slab creation and booklog traffic. *)
let scenario t th n =
  for i = 0 to n - 1 do
    let dest = Nvalloc.root_addr t (i mod 512) in
    if Nvalloc.read_ptr t ~dest > 0 then Nvalloc.free_from t th ~dest
    else begin
      let size =
        match i mod 5 with
        | 0 -> 32
        | 1 -> 136
        | 2 -> 1024
        | 3 -> 48
        | _ -> 40 * 1024 (* large *)
      in
      ignore (Nvalloc.malloc_to t th ~size ~dest)
    end
  done

let run_crash_point variant ~crash_after =
  let cfg = config variant in
  let dev = Pmem.Device.create ~size:(128 * mib) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config:cfg dev clock in
  let th = Nvalloc.thread t clock in
  Pmem.Device.schedule_crash_after dev crash_after;
  (try
     scenario t th 600;
     Pmem.Device.cancel_scheduled_crash dev;
     Pmem.Device.crash dev
   with Pmem.Device.Injected_crash -> ());
  let t', _report = Nvalloc.recover ~config:cfg dev clock in
  (match Nvalloc.check_owner_index t' with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "owner index broken: %s" e));
  let th' = Nvalloc.thread t' clock in
  (* Free everything still published. *)
  for i = 0 to 511 do
    let dest = Nvalloc.root_addr t' i in
    if Nvalloc.read_ptr t' ~dest > 0 then Nvalloc.free_from t' th' ~dest
  done;
  (* No leaks: nothing outside the tcaches/roots may remain allocated.
     Drain by exiting cleanly and re-checking. *)
  Nvalloc.exit_ t' clock;
  let t'', report2 = Nvalloc.recover ~config:cfg dev clock in
  if report2.Nvalloc.found_state <> Heap.Shutdown then failwith "expected clean shutdown";
  let live = Nvalloc.allocated_small_blocks t'' in
  if live <> 0 then failwith (Printf.sprintf "%d small blocks leaked" live);
  (* Usable again. *)
  let th'' = Nvalloc.thread t'' clock in
  for i = 0 to 63 do
    ignore (Nvalloc.malloc_to t'' th'' ~size:64 ~dest:(Nvalloc.root_addr t'' i))
  done

let sweep variant () =
  (* Dense at the start (metadata formation), then geometric. *)
  let points = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610; 987; 1600; 2600 ] in
  List.iter
    (fun n ->
      try run_crash_point variant ~crash_after:n
      with e ->
        Alcotest.failf "crash point %d (%s): %s" n
          (match variant with `Log -> "LOG" | `Gc -> "GC")
          (Printexc.to_string e))
    points

let suite =
  [
    Alcotest.test_case "crash sweep, NVAlloc-LOG" `Slow (sweep `Log);
    Alcotest.test_case "crash sweep, NVAlloc-GC" `Slow (sweep `Gc);
  ]
