(* FPTree: model-based correctness against a Hashtbl, structural growth,
   and volatile/persistent consistency. *)

let mk () =
  Alloc_api.Instance.of_nvalloc
    ~config:
      {
        Nvalloc_core.Config.log_default with
        Nvalloc_core.Config.arenas = 1;
        root_slots = 8192;
      }
    ~threads:2 ~dev_size:(128 * 1024 * 1024) ()

let test_insert_mem_delete () =
  let inst = mk () in
  let tree = Fptree_lib.Fptree.create inst ~max_leaves:512 in
  Fptree_lib.Fptree.insert tree ~tid:0 ~key:42;
  Alcotest.(check bool) "mem" true (Fptree_lib.Fptree.mem tree ~tid:0 ~key:42);
  Alcotest.(check bool) "absent" false (Fptree_lib.Fptree.mem tree ~tid:0 ~key:43);
  Alcotest.(check bool) "delete" true (Fptree_lib.Fptree.delete tree ~tid:0 ~key:42);
  Alcotest.(check bool) "gone" false (Fptree_lib.Fptree.mem tree ~tid:0 ~key:42);
  Alcotest.(check bool) "delete absent" false (Fptree_lib.Fptree.delete tree ~tid:0 ~key:42);
  Alcotest.(check int) "cardinal" 0 (Fptree_lib.Fptree.cardinal tree)

let test_splits () =
  let inst = mk () in
  let tree = Fptree_lib.Fptree.create inst ~max_leaves:512 in
  let n = 2000 in
  for key = 1 to n do
    Fptree_lib.Fptree.insert tree ~tid:0 ~key
  done;
  Alcotest.(check int) "cardinal" n (Fptree_lib.Fptree.cardinal tree);
  Alcotest.(check bool) "many leaves" true (Fptree_lib.Fptree.leaf_count tree > 10);
  for key = 1 to n do
    Alcotest.(check bool) (Printf.sprintf "mem %d" key) true
      (Fptree_lib.Fptree.mem tree ~tid:0 ~key)
  done;
  match Fptree_lib.Fptree.check_consistent tree with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let prop_model =
  let open QCheck in
  Test.make ~name:"fptree agrees with a Hashtbl model" ~count:25
    (make Gen.(list_size (int_range 1 400) (pair (int_range 1 500) bool)))
    (fun ops ->
      let inst = mk () in
      let tree = Fptree_lib.Fptree.create inst ~max_leaves:512 in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (key, insert) ->
          if insert then begin
            Fptree_lib.Fptree.insert tree ~tid:0 ~key;
            Hashtbl.replace model key ()
          end
          else begin
            let got = Fptree_lib.Fptree.delete tree ~tid:0 ~key in
            let want = Hashtbl.mem model key in
            Hashtbl.remove model key;
            if got <> want then failwith "delete mismatch"
          end)
        ops;
      Hashtbl.length model = Fptree_lib.Fptree.cardinal tree
      && Hashtbl.fold
           (fun key () acc -> acc && Fptree_lib.Fptree.mem tree ~tid:0 ~key)
           model true
      && Fptree_lib.Fptree.check_consistent tree = Ok ())

let test_payloads_freed () =
  (* Insert/delete churn must not grow the heap unboundedly. *)
  let inst = mk () in
  let tree = Fptree_lib.Fptree.create inst ~max_leaves:512 in
  for key = 1 to 500 do
    Fptree_lib.Fptree.insert tree ~tid:0 ~key
  done;
  let mapped = inst.Alloc_api.Instance.mapped_bytes () in
  for _round = 1 to 10 do
    for key = 1 to 500 do
      ignore (Fptree_lib.Fptree.delete tree ~tid:0 ~key)
    done;
    for key = 1 to 500 do
      Fptree_lib.Fptree.insert tree ~tid:0 ~key
    done
  done;
  Alcotest.(check bool) "no unbounded growth" true
    (inst.Alloc_api.Instance.mapped_bytes () <= mapped + (8 * 1024 * 1024))

let suite =
  [
    Alcotest.test_case "insert/mem/delete" `Quick test_insert_mem_delete;
    Alcotest.test_case "splits keep everything" `Quick test_splits;
    QCheck_alcotest.to_alcotest prop_model;
    Alcotest.test_case "payload churn is bounded" `Quick test_payloads_freed;
  ]
