(* Benchmark harness.

   Two parts:

   1. The paper reproduction: every table and figure of NVAlloc's
      evaluation (Tables 1-2, Figures 1-2 and 9-21), regenerated from the
      experiment registry and printed as the same rows/series the paper
      reports. These run on the simulated-latency substrate, so the
      numbers are simulated time — shapes, orderings and factors are the
      reproduction targets (see EXPERIMENTS.md).

   2. Bechamel microbenchmarks (one Test.make per core primitive,
      host-time): allocator fast paths and the substrate data structures,
      to catch real-time performance regressions of this implementation
      itself. *)

open Bechamel
open Toolkit

(* --- part 2: Bechamel microbenches ---------------------------------------- *)

let mib = 1024 * 1024

let nvalloc_smallish_config =
  {
    Nvalloc_core.Config.log_default with
    Nvalloc_core.Config.arenas = 1;
    root_slots = 65536;
    booklog_chunks = 256;
    wal_entries = 4096;
  }

let bench_nvalloc_pair ~name ~size =
  (* One allocate/free round trip through the public API. *)
  let dev = Pmem.Device.create ~size:(256 * mib) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc_core.Nvalloc.create ~config:nvalloc_smallish_config dev clock in
  let th = Nvalloc_core.Nvalloc.thread t clock in
  let dest = Nvalloc_core.Nvalloc.root_addr t 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Nvalloc_core.Nvalloc.malloc_to t th ~size ~dest);
         Nvalloc_core.Nvalloc.free_from t th ~dest))

let bench_baseline_pair ~name ~knobs ~size =
  let inst =
    Baselines.Bengine.instance ~knobs ~threads:1 ~dev_size:(256 * mib) ~root_slots:65536 ()
  in
  let dest = inst.Alloc_api.Instance.root 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (inst.Alloc_api.Instance.malloc ~tid:0 ~size ~dest);
         inst.Alloc_api.Instance.free ~tid:0 ~dest))

let bench_rbtree =
  let module Rb = Support.Rbtree.Make (Int) in
  let t = Rb.create () in
  let rng = Sim.Rng.create 1 in
  for _ = 1 to 10_000 do
    Rb.insert t (Sim.Rng.int rng 1_000_000) 0
  done;
  let i = ref 0 in
  Test.make ~name:"rbtree insert+remove (10k live)"
    (Staged.stage (fun () ->
         incr i;
         let k = 1_000_000 + (!i mod 4096) in
         Rb.insert t k 0;
         Rb.remove t k))

let bench_booklog =
  let dev = Pmem.Device.create ~size:(16 * mib) () in
  let clock = Sim.Clock.create () in
  let log = Nvalloc_core.Booklog.create dev ~base:0 ~chunks:1024 ~interleave:true in
  Test.make ~name:"booklog append+tombstone"
    (Staged.stage (fun () ->
         let r =
           Nvalloc_core.Booklog.append_normal log clock Nvalloc_core.Booklog.Extent
             ~addr:(1 lsl 20) ~size:65536
         in
         Nvalloc_core.Booklog.append_tombstone log clock r))

let bench_wal =
  let dev = Pmem.Device.create ~size:(4 * mib) () in
  let clock = Sim.Clock.create () in
  let wal = Nvalloc_core.Wal.create dev ~base:0 ~entries:65536 ~interleave:true in
  Test.make ~name:"wal append"
    (Staged.stage (fun () ->
         if Nvalloc_core.Wal.near_full wal then Nvalloc_core.Wal.checkpoint wal clock;
         Nvalloc_core.Wal.append wal clock Nvalloc_core.Wal.Alloc ~addr:4096 ~dest:8192))

let bench_device_flush =
  let dev = Pmem.Device.create ~size:(16 * mib) () in
  let clock = Sim.Clock.create () in
  let i = ref 0 in
  Test.make ~name:"device write+flush"
    (Staged.stage (fun () ->
         incr i;
         let addr = !i * 64 mod (8 * mib) in
         Pmem.Device.write_int64 dev addr 42L;
         Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr ~len:8))

let microbenches () =
  Test.make_grouped ~name:"primitives"
    [
      bench_nvalloc_pair ~name:"NVAlloc-LOG small pair (64B)" ~size:64;
      bench_nvalloc_pair ~name:"NVAlloc-LOG large pair (64KB)" ~size:65536;
      bench_baseline_pair ~name:"PMDK small pair (64B)" ~knobs:Baselines.Knobs.pmdk ~size:64;
      bench_baseline_pair ~name:"Makalu small pair (64B)" ~knobs:Baselines.Knobs.makalu
        ~size:64;
      bench_rbtree;
      bench_booklog;
      bench_wal;
      bench_device_flush;
    ]

let run_microbenches () =
  print_endline "\n### Bechamel microbenchmarks (host time per run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (microbenches ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-56s %10.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-56s (no estimate)\n" name)
    (List.sort compare rows);
  flush stdout

(* --- entry point ------------------------------------------------------------ *)

let () =
  (* `bench/main.exe micro` runs only the host-time microbenchmarks. *)
  let micro_only = Array.exists (( = ) "micro") Sys.argv in
  print_endline "NVAlloc (ASPLOS'22) reproduction — full benchmark run";
  if not micro_only then Harness.Registry.run_all ();
  run_microbenches ()
