(* Command-line driver: run individual paper experiments by id.

   Examples:
     nvalloc-cli list
     nvalloc-cli run fig9 fig18
     nvalloc-cli all *)

open Cmdliner

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-8s %s\n" e.Harness.Registry.id e.Harness.Registry.title)
      Harness.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- telemetry capture plumbing ------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let slug name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '-') name

(* Shared --telemetry flag: capture a timeline per allocator instance the
   command builds, then export Chrome trace JSON + histogram CSV files. *)
let telemetry_flag =
  let doc =
    "Capture a telemetry timeline for every allocator instance the command \
     builds, and write trace_NN_<allocator>.json (Chrome trace-event format, \
     openable in Perfetto) plus trace_NN_<allocator>.csv (latency-histogram \
     percentiles) into the current directory."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let with_capture enabled f =
  if not enabled then f ()
  else begin
    Telemetry.request_capture ();
    Fun.protect ~finally:Telemetry.cancel_capture f;
    let sinks = Telemetry.registered () in
    Telemetry.reset_registered ();
    List.iteri
      (fun i (name, sink) ->
        let base = Printf.sprintf "trace_%02d_%s" i (slug name) in
        write_file (base ^ ".json") (Telemetry.chrome_json sink);
        write_file (base ^ ".csv") (Telemetry.hist_csv sink);
        Printf.eprintf "telemetry: %s.json %s.csv (%d events, %d dropped)\n" base base
          (Telemetry.events_recorded sink)
          (Telemetry.events_dropped sink))
      sinks
  end

(* Shared --batch/--no-batch pair: whether NVAlloc instances keep the
   batched persistence pipeline (flush coalescing, WAL group commit,
   async checkpointing) or run fully synchronous for comparison. *)
let batch_flag =
  let batch =
    Arg.info [ "batch" ]
      ~doc:"Keep the batched persistence pipeline on NVAlloc instances (default)."
  in
  let no_batch =
    Arg.info [ "no-batch" ]
      ~doc:
        "Force the synchronous persistence pipeline on NVAlloc instances: \
         no flush coalescing, no WAL group commit, no async checkpointing \
         (Config.sync). Baselines are unaffected."
  in
  Arg.(value & vflag true [ (true, batch); (false, no_batch) ])

let with_batching batch f =
  Harness.Factory.force_sync := not batch;
  Fun.protect ~finally:(fun () -> Harness.Factory.force_sync := false) f

let run_cmd =
  let doc = "Run the experiments with the given ids." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run telemetry batch ids =
    with_batching batch (fun () ->
        with_capture telemetry (fun () -> List.iter Harness.Registry.run_one ids))
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ telemetry_flag $ batch_flag $ ids)

let all_cmd =
  let doc = "Run every experiment (the full paper reproduction)." in
  let run telemetry batch () =
    with_batching batch (fun () -> with_capture telemetry Harness.Registry.run_all)
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ telemetry_flag $ batch_flag $ const ())

let allocator_kind name =
  match
    List.find_opt
      (fun k -> String.lowercase_ascii (Harness.Factory.name k) = String.lowercase_ascii name)
      Harness.Factory.[ Pmdk; Nvm_malloc; Pallocator; Makalu; Ralloc; Nv_log; Nv_gc; Nv_ic ]
  with
  | Some k -> k
  | None -> failwith ("unknown allocator " ^ name)

let flushes_cmd =
  (* Figure 2 as raw data: one CSV line per metadata flush, for external
     plotting of the scatter the paper shows. *)
  let doc =
    "Dump the first 1000 metadata-flush addresses of a DBMStest run as CSV \
     (seq,category,address) for the given allocator (default NVAlloc-LOG)."
  in
  let alloc =
    Arg.(value & pos 0 string "NVAlloc-LOG" & info [] ~docv:"ALLOCATOR")
  in
  let run name =
    let kind = allocator_kind name in
    let inst = Harness.Factory.make ~dev_size:(512 * 1024 * 1024) ~threads:4 kind in
    let _ =
      Workloads.Dbmstest.run inst ~params:(Harness.Sizes.dbmstest 4) ()
    in
    print_endline "seq,category,address";
    List.iteri
      (fun i (cat, addr) ->
        Printf.printf "%d,%s,%d\n" i (Pmem.Stats.cat_name cat) addr)
      (Pmem.Stats.trace (Pmem.Device.stats inst.Alloc_api.Instance.dev))
  in
  Cmd.v (Cmd.info "flushes" ~doc) Term.(const run $ alloc)

let trace_cmd =
  let doc =
    "Run one workload with telemetry enabled and print its timeline as \
     Chrome trace-event JSON (load it at https://ui.perfetto.dev). \
     Timestamps are simulated nanoseconds; the trace is byte-identical \
     across runs with the same seed. Workloads: threadtest, prodcon, \
     shbench, larson (small objects), larson-large, dbmstest."
  in
  let workload = Arg.(value & pos 0 string "larson" & info [] ~docv:"WORKLOAD") in
  let alloc =
    let doc = "Allocator to trace (see $(b,flushes) for the list)." in
    Arg.(value & opt string "NVAlloc-LOG" & info [ "allocator" ] ~docv:"ALLOCATOR" ~doc)
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload RNG seed.")
  in
  let out =
    let doc = "Write the trace JSON to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PATH" ~doc)
  in
  let hist =
    let doc = "Also write latency-histogram percentiles as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "hist" ] ~docv:"PATH" ~doc)
  in
  let run workload alloc threads seed out hist batch =
    with_batching batch @@ fun () ->
    let kind = allocator_kind alloc in
    Telemetry.request_capture ();
    let inst =
      Fun.protect ~finally:Telemetry.cancel_capture (fun () ->
          Harness.Factory.make ~dev_size:(512 * 1024 * 1024) ~threads kind)
    in
    let sink =
      match Telemetry.registered () with
      | [ (_, sink) ] -> sink
      | _ -> failwith "expected exactly one captured telemetry sink"
    in
    Telemetry.reset_registered ();
    let result =
      match workload with
      | "threadtest" -> Workloads.Threadtest.run inst ~params:(Harness.Sizes.threadtest threads) ()
      | "prodcon" -> Workloads.Prodcon.run inst ~params:(Harness.Sizes.prodcon threads) ()
      | "shbench" -> Workloads.Shbench.run inst ~params:(Harness.Sizes.shbench threads) ~seed ()
      | "larson" -> Workloads.Larson.run inst ~params:(Harness.Sizes.larson_small threads) ~seed ()
      | "larson-large" ->
          Workloads.Larson.run inst ~params:(Harness.Sizes.larson_large threads) ~seed ()
      | "dbmstest" -> Workloads.Dbmstest.run inst ~params:(Harness.Sizes.dbmstest threads) ~seed ()
      | w -> failwith ("unknown workload " ^ w)
    in
    Printf.eprintf "%s on %s: %d ops, %.0f simulated ns, %.2f Mops/s (%d events, %d dropped)\n"
      workload result.Workloads.Driver.allocator result.Workloads.Driver.total_ops
      result.Workloads.Driver.makespan_ns result.Workloads.Driver.mops
      (Telemetry.events_recorded sink)
      (Telemetry.events_dropped sink);
    let json = Telemetry.chrome_json sink in
    (match out with Some path -> write_file path json | None -> print_string json);
    Option.iter (fun path -> write_file path (Telemetry.hist_csv sink)) hist
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ workload $ alloc $ threads $ seed $ out $ hist $ batch_flag)

let slo_cmd =
  let doc =
    "Run one workload with blame-tree attribution and SLO monitoring \
     enabled, then report per-op latency percentiles (p50/p99/p999, merged \
     across threads), error-budget burn rates against the Config-declared \
     SLO targets, and the per-component latency attribution (fence waits, \
     flushes, WAL group commit, slab refills, extent lookups, lock waits). \
     The report is byte-identical across runs with the same seed. \
     Workloads: threadtest, prodcon, shbench, larson, larson-large, \
     dbmstest."
  in
  let workload = Arg.(value & pos 0 string "larson" & info [] ~docv:"WORKLOAD") in
  let alloc =
    let doc = "Allocator to attribute (see $(b,flushes) for the list)." in
    Arg.(value & opt string "NVAlloc-LOG" & info [ "allocator" ] ~docv:"ALLOCATOR" ~doc)
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload RNG seed.")
  in
  let json =
    let doc = "Print the report as JSON (schema nvalloc/slo/v1) instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let out =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PATH" ~doc)
  in
  let folded =
    let doc =
      "Also write the blame tree as folded stacks (flamegraph.pl collapsed \
       format, one 'path;to;leaf self-ns' line per node) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"PATH" ~doc)
  in
  let prom =
    let doc = "Also write Prometheus text exposition to $(docv)." in
    Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"PATH" ~doc)
  in
  let window_ns =
    let doc = "SLO window width in simulated nanoseconds." in
    Arg.(value & opt float 1_000_000.0 & info [ "window-ns" ] ~docv:"NS" ~doc)
  in
  let check =
    let doc =
      "Gate the report against the baseline JSON at $(docv) \
       (Harness.Slo_report.check); exit 1 listing every failed gate."
    in
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"BASELINE" ~doc)
  in
  let run workload alloc threads seed json out folded prom window_ns check batch =
    with_batching batch @@ fun () ->
    let kind = allocator_kind alloc in
    Telemetry.request_capture ();
    let inst =
      Fun.protect ~finally:Telemetry.cancel_capture (fun () ->
          Harness.Factory.make ~dev_size:(512 * 1024 * 1024) ~threads kind)
    in
    let sink =
      match Telemetry.registered () with
      | [ (_, sink) ] -> sink
      | _ -> failwith "expected exactly one captured telemetry sink"
    in
    Telemetry.reset_registered ();
    let attr = Telemetry.enable_attribution sink in
    Telemetry.Attr.set_slo attr ~window_ns
      ~targets:Nvalloc_core.Config.log_default.Nvalloc_core.Config.slo_targets;
    let result =
      match workload with
      | "threadtest" -> Workloads.Threadtest.run inst ~params:(Harness.Sizes.threadtest threads) ()
      | "prodcon" -> Workloads.Prodcon.run inst ~params:(Harness.Sizes.prodcon threads) ()
      | "shbench" -> Workloads.Shbench.run inst ~params:(Harness.Sizes.shbench threads) ~seed ()
      | "larson" -> Workloads.Larson.run inst ~params:(Harness.Sizes.larson_small threads) ~seed ()
      | "larson-large" ->
          Workloads.Larson.run inst ~params:(Harness.Sizes.larson_large threads) ~seed ()
      | "dbmstest" -> Workloads.Dbmstest.run inst ~params:(Harness.Sizes.dbmstest threads) ~seed ()
      | w -> failwith ("unknown workload " ^ w)
    in
    let meta =
      {
        Harness.Slo_report.workload;
        allocator = result.Workloads.Driver.allocator;
        threads;
        seed;
        batching = batch;
        makespan_ns = result.Workloads.Driver.makespan_ns;
        total_ops = result.Workloads.Driver.total_ops;
      }
    in
    let report = Harness.Slo_report.build ~meta attr in
    let rendered =
      if json then Telemetry.Json.to_string report ^ "\n"
      else Harness.Slo_report.render report
    in
    (match out with Some path -> write_file path rendered | None -> print_string rendered);
    Option.iter (fun path -> write_file path (Telemetry.Attr.folded attr)) folded;
    Option.iter (fun path -> write_file path (Telemetry.prometheus sink)) prom;
    match check with
    | None -> ()
    | Some path ->
        let contents = In_channel.with_open_bin path In_channel.input_all in
        let baseline =
          match Telemetry.Json.parse contents with
          | Ok j -> j
          | Error e -> failwith (Printf.sprintf "cannot parse baseline %s: %s" path e)
        in
        (match Harness.Slo_report.check ~baseline ~current:report with
        | Ok () -> Printf.eprintf "slo check: OK against %s\n" path
        | Error failures ->
            List.iter (fun f -> Printf.eprintf "slo check FAIL: %s\n" f) failures;
            exit 1)
  in
  Cmd.v (Cmd.info "slo" ~doc)
    Term.(
      const run $ workload $ alloc $ threads $ seed $ json $ out $ folded $ prom $ window_ns
      $ check $ batch_flag)

let stats_cmd =
  let doc =
    "Run a DBMStest probe (large objects) and a small-object Larson probe \
     with the persist-ordering checker enabled and print the device's flush \
     statistics alongside the metadata-overhead figures (metadata bytes per \
     live object, header flush lines per allocation) and the checker's \
     counters (commits checked, dependencies tracked, violations recorded)."
  in
  let alloc =
    Arg.(value & pos 0 string "NVAlloc-LOG" & info [] ~docv:"ALLOCATOR")
  in
  let json =
    let doc =
      "Print the device's flush statistics as JSON (schema nvalloc/stats/v4: \
       v3 plus the metadata-layout counters extents_coalesced, \
       extent_tree_lookups, header_flush_lines; v1-v3 documents still \
       parse, counters their schema predates default to 0)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run name batch json =
    let kind = allocator_kind name in
    let inst =
      with_batching batch (fun () ->
          Harness.Factory.make ~dev_size:(512 * 1024 * 1024) ~threads:4 kind)
    in
    let dev = inst.Alloc_api.Instance.dev in
    Pmem.Device.set_check_mode dev true;
    (* Count allocations through a shim so the metadata-overhead figures
       below can be normalised per alloc. *)
    let allocs = ref 0 in
    let counting =
      {
        inst with
        Alloc_api.Instance.malloc =
          (fun ~tid ~size ~dest ->
            incr allocs;
            inst.Alloc_api.Instance.malloc ~tid ~size ~dest);
      }
    in
    (* DBMStest covers the large-object path; the Larson probe exercises
       slabs so the per-object metadata figures below are non-trivial
       (DBMStest's 32 KB-512 KB objects never touch a slab). *)
    let _ = Workloads.Dbmstest.run counting ~params:(Harness.Sizes.dbmstest 4) () in
    let _ = Workloads.Larson.run counting ~params:(Harness.Sizes.larson_small 4) () in
    if json then print_endline (Pmem.Stats.to_json_string (Pmem.Device.stats dev))
    else begin
      Format.printf "%a@." Pmem.Stats.pp_summary (Pmem.Device.stats dev);
      (match inst.Alloc_api.Instance.metadata_bytes with
      | None -> ()
      | Some metadata_bytes ->
          let live = ref 0 in
          Option.iter
            (fun iter -> iter (fun ~addr:_ ~size:_ -> incr live))
            inst.Alloc_api.Instance.iter_live;
          let meta = metadata_bytes () in
          let header_lines =
            Pmem.Stats.header_flush_lines (Pmem.Device.stats dev)
          in
          Printf.printf "metadata overhead:\n";
          Printf.printf "  metadata bytes        %d\n" meta;
          Printf.printf "  live objects          %d\n" !live;
          if !live > 0 then
            Printf.printf "  metadata bytes/object %.1f\n"
              (float_of_int meta /. float_of_int !live);
          Printf.printf "  header flush lines    %d\n" header_lines;
          Printf.printf "  allocations           %d\n" !allocs;
          if !allocs > 0 then
            Printf.printf "  header flushes/alloc  %.3f\n"
              (float_of_int header_lines /. float_of_int !allocs));
      Printf.printf "persist-ordering checker:\n";
      Printf.printf "  commits checked       %d\n" (Pmem.Device.ordering_commits_checked dev);
      Printf.printf "  dependencies tracked  %d\n" (Pmem.Device.ordering_deps_tracked dev);
      Printf.printf "  violations            %d\n" (Pmem.Device.ordering_violation_count dev);
      List.iter
        (fun v -> Format.printf "  %a@." Pmem.Device.pp_violation v)
        (Pmem.Device.ordering_violations dev)
    end;
    if Pmem.Device.ordering_violation_count dev > 0 then exit 1
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ alloc $ batch_flag $ json)

let bench_cmd =
  let doc =
    "Run the host-time microbenchmarks (Bechamel ns/run per core primitive). \
     With $(b,--json) also write the machine-readable baseline; with \
     $(b,--check) compare against a committed baseline instead and exit \
     non-zero if any benchmark regressed beyond the threshold."
  in
  let json =
    let doc = "Write estimates and simulated makespans to $(docv)." in
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_micro.json") (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let check =
    let doc = "Compare against the baseline JSON at $(docv); no benchmark output." in
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_micro.json") (some string) None
      & info [ "check" ] ~docv:"PATH" ~doc)
  in
  let run json check =
    match check with
    | Some baseline -> exit (Bench_micro.run_check ~baseline)
    | None ->
        let ests = Bench_micro.run_print () in
        Option.iter (fun path -> Bench_micro.write_json ~path ~estimates:ests) json
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ json $ check)

let fuzz_cmd =
  let doc =
    "Run the crash-plan fuzzer: sample (workload seed, crash point, torn mode, \
     optional crash-during-recovery) plans, execute each against a fresh device \
     and check the full post-crash invariant oracle. On failure the plan is \
     shrunk and printed as a replayable one-liner (re-run it with $(b,--plan)). \
     Exits non-zero on a counterexample."
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Plan-sampling RNG seed.")
  in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Number of plans to run.")
  in
  let variant =
    let doc = "Pin the consistency variant ($(b,log), $(b,gc), $(b,ic), or $(b,any))." in
    Arg.(value & opt string "any" & info [ "variant" ] ~docv:"VARIANT" ~doc)
  in
  let plan =
    let doc = "Replay one plan (a line previously printed by the fuzzer) instead of sampling." in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let broken =
    let doc =
      "Demo mode: deliberately skip the WAL's append flush on the workload \
       instance, to show a real ordering bug being caught and shrunk."
    in
    Arg.(value & flag & info [ "broken" ] ~doc)
  in
  let broken_record =
    let doc =
      "Demo mode: make every WAL group commit \"forget\" its commit record \
       (effects persist, the group's entries never do), to show the \
       batched-pipeline mutation being caught and shrunk."
    in
    Arg.(value & flag & info [ "broken-record" ] ~doc)
  in
  let check_order =
    let doc =
      "Run every plan with the device's persist-ordering checker enabled: \
       commits that retire before a declared dependency persisted become \
       oracle failures even when the crash misses the vulnerable window."
    in
    Arg.(value & opt bool true & info [ "check-order" ] ~docv:"BOOL" ~doc)
  in
  let broken_scrub =
    let doc =
      "Demo mode: make every media scrub pass \"bless\" a damaged primary \
       (recompute its checksum over the corrupt bytes) instead of repairing \
       it from the replica, to show the media mutation being caught on plans \
       with a scrub step."
    in
    Arg.(value & flag & info [ "broken-scrub" ] ~doc)
  in
  let media =
    let doc =
      "Sample media-fault plans: each draws poisoned-line, bit-rot and/or \
       inject-then-scrub steps, runs with media replication on, and pins \
       the LOG variant."
    in
    Arg.(value & flag & info [ "media" ] ~doc)
  in
  let poison_n =
    let doc = "Pin $(docv) poisoned metadata lines on every plan (implies media sampling)." in
    Arg.(value & opt int 0 & info [ "poison" ] ~docv:"N" ~doc)
  in
  let bitrot_n =
    let doc = "Pin $(docv) at-rest bit flips on every plan (implies media sampling)." in
    Arg.(value & opt int 0 & info [ "bitrot" ] ~docv:"N" ~doc)
  in
  let scrub =
    let doc =
      "Pin the inject-then-scrub step on every plan (implies media sampling); \
       the step poisons a live slab header and immediately runs a scrub pass."
    in
    Arg.(value & flag & info [ "scrub" ] ~doc)
  in
  let tail =
    let doc =
      "On a failing plan, replay it with telemetry attached and dump the \
       last $(docv) timeline events (flushes, WAL appends, recovery phases) \
       leading up to the failure, plus the device's media counters."
    in
    Arg.(value & opt int 32 & info [ "tail" ] ~docv:"N" ~doc)
  in
  (* Replay a failing plan with a telemetry sink attached and print the
     last few events: the flushes/WAL appends/recovery phases right
     before the oracle's verdict, alongside the one-line repro and the
     device's media-fault counters. *)
  let dump_tail ~batch ~broken ~broken_record ~broken_scrub ~check_order ~tail plan =
    if tail > 0 then begin
      let sink = Telemetry.create () in
      let media_line = ref "" in
      let on_device dev =
        let s = Pmem.Device.stats dev in
        media_line :=
          Printf.sprintf
            "poison_hits=%d media_repairs=%d quarantines=%d bitrot_flips=%d scrub_passes=%d"
            (Pmem.Stats.poison_hits s) (Pmem.Stats.media_repairs s)
            (Pmem.Stats.media_quarantines s) (Pmem.Stats.bitrot_flips s)
            (Pmem.Stats.scrub_passes s)
      in
      ignore
        (Fault.Fuzz.run_plan ~batch ~broken ~broken_record ~broken_scrub ~check_order
           ~telemetry:sink ~on_device plan);
      let events = Telemetry.tail_events sink ~n:tail in
      if events <> [] then begin
        Printf.printf "  last %d telemetry events before failure:\n" (List.length events);
        List.iter (fun line -> Printf.printf "    %s\n" line) events
      end;
      Printf.printf "  device media counters: %s\n" !media_line
    end
  in
  let domains =
    let doc =
      "Fan the plans out over $(docv) OCaml domains (each plan on its own \
       fresh device). Sampling switches to pure per-index RNG splitting, so \
       the output is byte-identical for every $(docv) — including 1 — but \
       differs from the sequential sampler's plans at the same seed."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let run seed runs variant plan batch broken broken_record broken_scrub media poison_n
      bitrot_n scrub check_order tail domains =
    let variant =
      match variant with
      | "any" -> None
      | "log" -> Some Fault.Plan.Log
      | "gc" -> Some Fault.Plan.Gc
      | "ic" -> Some Fault.Plan.Ic
      | v -> failwith ("unknown variant " ^ v ^ " (expected log|gc|ic|any)")
    in
    let media = media || poison_n > 0 || bitrot_n > 0 || scrub in
    (* Pin the flag-selected media fields over whatever was sampled or
       parsed; seeds fall back to the plan's workload seed so pinned
       plans stay fully determined by their one-line rendering. *)
    let adjust (p : Fault.Plan.t) =
      if poison_n = 0 && bitrot_n = 0 && not scrub then p
      else
        {
          p with
          Fault.Plan.poison = (if poison_n > 0 then poison_n else p.Fault.Plan.poison);
          pseed = (if p.Fault.Plan.pseed = 0 then p.Fault.Plan.seed else p.Fault.Plan.pseed);
          rot = (if bitrot_n > 0 then bitrot_n else p.Fault.Plan.rot);
          rseed = (if p.Fault.Plan.rseed = 0 then p.Fault.Plan.seed else p.Fault.Plan.rseed);
          scrub = (scrub || p.Fault.Plan.scrub);
        }
    in
    match plan with
    | Some line -> (
        match Fault.Plan.of_string line with
        | Error e -> failwith ("bad --plan: " ^ e)
        | Ok p -> (
            let p = adjust p in
            match
              Fault.Fuzz.run_plan ~batch ~broken ~broken_record ~broken_scrub ~check_order p
            with
            | Ok report ->
                Format.printf "ok: %s@.  %a@." (Fault.Plan.to_string p)
                  Nvalloc_core.Nvalloc.pp_recovery_report report
            | Error reason ->
                Format.printf "FAIL: %s@.  %s@." (Fault.Plan.to_string p) reason;
                dump_tail ~batch ~broken ~broken_record ~broken_scrub ~check_order ~tail p;
                exit 1))
    | None -> (
        let outcome =
          match domains with
          | None ->
              Fault.Fuzz.fuzz ~batch ~broken ~broken_record ~broken_scrub ~check_order
                ?variant ~media ~adjust ~seed ~runs ()
          | Some d ->
              Par.Sweep.fuzz_sweep ~batch ~broken ~broken_record ~broken_scrub ~check_order
                ?variant ~media ~adjust
                (Par.Pool.create ~domains:d)
                ~seed ~runs ()
        in
        match outcome with
        | None -> Printf.printf "ok: %d plans, no counterexamples (seed %d)\n" runs seed
        | Some cex ->
            Format.printf "counterexample (shrunk): %s@.  reason: %s@.  original: %s@."
              (Fault.Plan.to_string cex.Fault.Fuzz.shrunk)
              cex.Fault.Fuzz.reason
              (Fault.Plan.to_string cex.Fault.Fuzz.original);
            dump_tail ~batch ~broken ~broken_record ~broken_scrub ~check_order ~tail
              cex.Fault.Fuzz.shrunk;
            exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seed $ runs $ variant $ plan $ batch_flag $ broken $ broken_record
      $ broken_scrub $ media $ poison_n $ bitrot_n $ scrub $ check_order $ tail $ domains)

let check_cmd =
  let doc =
    "Run the model checker: generate seed-deterministic concurrent \
     allocation histories and execute them differentially against a volatile \
     reference heap model, checking per-step invariants (no overlapping live \
     blocks, alignment, destination publication) plus NVAlloc's deep \
     heap-integrity walk, persist-ordering cleanliness, and — with \
     $(b,--crash) — the full post-crash oracle. On failure the scenario is \
     shrunk and printed as a replayable one-liner (re-run it with \
     $(b,--scenario)). Exits non-zero on a counterexample."
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"History-generation RNG seed.")
  in
  let runs =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"N" ~doc:"Scenarios per allocator (seeds SEED..SEED+N-1).")
  in
  let ops =
    Arg.(
      value & opt int 2000
      & info [ "ops" ] ~docv:"N" ~doc:"Total operations per scenario, across all threads.")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Simulated threads.")
  in
  let crash =
    let doc =
      "Also arm a crash after $(docv) flushed lines and run the post-crash \
       oracle (NVAlloc variants only; baselines ignore the crash point)."
    in
    Arg.(value & opt (some int) None & info [ "crash" ] ~docv:"N" ~doc)
  in
  let allocators =
    let doc =
      "Comma-separated allocator names to check, or $(b,all). See \
       $(b,nvalloc-cli list) / the NVAlloc variants NVAlloc-LOG, NVAlloc-GC, \
       NVAlloc-IC."
    in
    Arg.(value & opt string "all" & info [ "allocators" ] ~docv:"NAMES" ~doc)
  in
  let broken =
    let doc =
      "Demo mode: re-introduce the refill WAL-before-bitmap ordering bug on \
       the NVAlloc instances, to show the checker catching a real protocol \
       violation."
    in
    Arg.(value & flag & info [ "broken" ] ~doc)
  in
  let broken_record =
    let doc =
      "Demo mode: make every WAL group commit on the NVAlloc instances \
       \"forget\" its commit record (effects persist without their log \
       entries), to show the checker catching the batched-pipeline \
       mutation. Meaningful with $(b,--crash)."
    in
    Arg.(value & flag & info [ "broken-record" ] ~doc)
  in
  let broken_header =
    let doc =
      "Demo mode: mis-decode the packed slab header's size-class field on \
       every read on the NVAlloc instances, to show the deep integrity walk \
       catching a metadata-layout bug."
    in
    Arg.(value & flag & info [ "broken-header" ] ~doc)
  in
  let scenario =
    let doc =
      "Replay one scenario (a line previously printed by the checker) instead \
       of generating fresh ones; overrides the other selection flags."
    in
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"LINE" ~doc)
  in
  let domains =
    let doc =
      "Fan the scenarios out over $(docv) OCaml domains (each seed on its own \
       fresh device, still on the simulated scheduler). The verdict is \
       byte-identical to the sequential checker's for every $(docv)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let run seed runs ops threads crash allocators batch broken broken_record broken_header
      scenario domains =
    match scenario with
    | Some line -> (
        match Check.History.of_string line with
        | Error e -> failwith ("bad --scenario: " ^ e)
        | Ok sc -> (
            match Check.Runner.run ~batch ~broken ~broken_record ~broken_header sc with
            | Ok () -> Printf.printf "ok: %s\n" (Check.History.to_string sc)
            | Error reason ->
                Printf.printf "FAIL: %s\n  reason: %s\n" (Check.History.to_string sc) reason;
                exit 1))
    | None ->
        let names =
          if allocators = "all" then Check.Runner.allocator_names
          else String.split_on_char ',' allocators |> List.map String.trim
        in
        let failed = ref false in
        List.iter
          (fun alloc ->
            let outcome =
              match domains with
              | None ->
                  Check.Runner.check ~batch ~broken ~broken_record ~broken_header ~alloc ~seed
                    ~runs ~ops ~threads ?crash ()
              | Some d ->
                  Par.Sweep.check_sweep ~batch ~broken ~broken_record ~broken_header
                    (Par.Pool.create ~domains:d)
                    ~alloc ~seed ~runs ~ops ~threads ?crash ()
            in
            match outcome with
            | None ->
                Printf.printf "ok: %-12s %d scenario(s), ops=%d threads=%d seed=%d%s\n" alloc
                  runs ops threads seed
                  (match crash with None -> "" | Some n -> Printf.sprintf " crash=%d" n)
            | Some cex ->
                failed := true;
                Printf.printf
                  "counterexample (shrunk): %s\n  reason: %s\n  original: %s\n"
                  (Check.History.to_string cex.Check.Runner.shrunk)
                  cex.Check.Runner.reason
                  (Check.History.to_string cex.Check.Runner.original))
          names;
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ seed $ runs $ ops $ threads $ crash $ allocators $ batch_flag $ broken
      $ broken_record $ broken_header $ scenario $ domains)

let par_cmd =
  let doc =
    "Run the domain-parallel differential gate: execute model-checker \
     histories on the real-parallelism backend (OCaml domains, one big lock \
     per instance, OS-chosen interleavings) with the full lockstep model \
     validation, then re-run each scenario on the simulated scheduler and \
     cross-check the interleaving-invariant aggregates. Per-scenario verdict \
     lines are deterministic (host times appear only in the summary). On \
     failure the scenario is shrunk through the differential predicate and \
     printed as a replayable one-liner. Exits non-zero on a failure."
  in
  let domains =
    let doc = "Domains driving each scenario's threads (default: the host's recommended count)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"History-generation RNG seed.")
  in
  let runs =
    Arg.(
      value & opt int 10
      & info [ "runs" ] ~docv:"N" ~doc:"Scenarios per allocator (seeds SEED..SEED+N-1).")
  in
  let ops =
    Arg.(
      value & opt int 2000
      & info [ "ops" ] ~docv:"N" ~doc:"Total operations per scenario, across all threads.")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"History threads per scenario.")
  in
  let crash =
    let doc =
      "Also arm a crash after $(docv) flushed lines on every scenario and run \
       the post-crash oracle on both backends (NVAlloc variants only)."
    in
    Arg.(value & opt (some int) None & info [ "crash" ] ~docv:"N" ~doc)
  in
  let allocators =
    let doc = "Comma-separated allocator names, or $(b,all)." in
    Arg.(value & opt string "all" & info [ "allocators" ] ~docv:"NAMES" ~doc)
  in
  let broken =
    let doc = "Demo mode: the refill WAL-ordering mutation (the gate must fail)." in
    Arg.(value & flag & info [ "broken" ] ~doc)
  in
  let broken_record =
    let doc = "Demo mode: the forgotten-commit-record mutation (with --crash)." in
    Arg.(value & flag & info [ "broken-record" ] ~doc)
  in
  let broken_header =
    let doc = "Demo mode: the packed-header mis-decode mutation (the gate must fail)." in
    Arg.(value & flag & info [ "broken-header" ] ~doc)
  in
  let run domains seed runs ops threads crash allocators batch broken broken_record
      broken_header =
    let domains =
      match domains with Some d -> d | None -> Domain.recommended_domain_count ()
    in
    let pool = Par.Pool.create ~domains in
    let names =
      if allocators = "all" then Check.Runner.allocator_names
      else String.split_on_char ',' allocators |> List.map String.trim
    in
    let failed = ref false in
    let scenarios = ref 0 in
    let total_executed = ref 0 in
    let total_host_ns = ref 0.0 in
    let total_waits = ref 0 in
    List.iter
      (fun alloc ->
        for i = 0 to runs - 1 do
          let sc = { Check.History.alloc; seed = seed + i; ops; threads; crash } in
          match
            Par.Runner.run_history ~batch ~broken ~broken_record ~broken_header pool sc
          with
          | Ok r ->
              incr scenarios;
              total_executed := !total_executed + r.Par.Runner.executed;
              total_host_ns := !total_host_ns +. r.Par.Runner.host_ns;
              total_waits := !total_waits + r.Par.Runner.lock_waits;
              Printf.printf "ok: %s\n" (Check.History.to_string sc)
          | Error reason ->
              failed := true;
              incr scenarios;
              let shrunk, reason =
                Par.Runner.shrink ~batch ~broken ~broken_record ~broken_header pool sc
                  ~reason
              in
              Printf.printf "FAIL: %s\n  reason: %s\n  original: %s\n"
                (Check.History.to_string shrunk)
                reason
                (Check.History.to_string sc)
        done)
      names;
    (* Host time is the one authoritative duration in par mode; it is
       also nondeterministic, so it stays out of the per-scenario lines
       the differential scripts diff. *)
    Printf.printf
      "par summary: %d scenario(s), domains=%d, executed=%d ops, host=%.1f ms, %.2f Mops/s \
       (host), lock_waits=%d\n"
      !scenarios domains !total_executed (!total_host_ns /. 1e6)
      (if !total_host_ns > 0.0 then float_of_int !total_executed /. (!total_host_ns /. 1e9) /. 1e6
       else 0.0)
      !total_waits;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "par" ~doc)
    Term.(
      const run $ domains $ seed $ runs $ ops $ threads $ crash $ allocators $ batch_flag
      $ broken $ broken_record $ broken_header)

let () =
  let doc = "NVAlloc (ASPLOS'22) reproduction driver" in
  let info = Cmd.info "nvalloc-cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            all_cmd;
            trace_cmd;
            slo_cmd;
            flushes_cmd;
            stats_cmd;
            bench_cmd;
            fuzz_cmd;
            check_cmd;
            par_cmd;
          ]))
