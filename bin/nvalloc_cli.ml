(* Command-line driver: run individual paper experiments by id.

   Examples:
     nvalloc-cli list
     nvalloc-cli run fig9 fig18
     nvalloc-cli all *)

open Cmdliner

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-8s %s\n" e.Harness.Registry.id e.Harness.Registry.title)
      Harness.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run the experiments with the given ids." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run ids = List.iter Harness.Registry.run_one ids in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids)

let all_cmd =
  let doc = "Run every experiment (the full paper reproduction)." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const Harness.Registry.run_all $ const ())

let allocator_kind name =
  match
    List.find_opt
      (fun k -> String.lowercase_ascii (Harness.Factory.name k) = String.lowercase_ascii name)
      Harness.Factory.[ Pmdk; Nvm_malloc; Pallocator; Makalu; Ralloc; Nv_log; Nv_gc; Nv_ic ]
  with
  | Some k -> k
  | None -> failwith ("unknown allocator " ^ name)

let trace_cmd =
  (* Figure 2 as raw data: one CSV line per metadata flush, for external
     plotting of the scatter the paper shows. *)
  let doc =
    "Dump the first 1000 metadata-flush addresses of a DBMStest run as CSV \
     (seq,category,address) for the given allocator (default NVAlloc-LOG)."
  in
  let alloc =
    Arg.(value & pos 0 string "NVAlloc-LOG" & info [] ~docv:"ALLOCATOR")
  in
  let run name =
    let kind = allocator_kind name in
    let inst = Harness.Factory.make ~dev_size:(512 * 1024 * 1024) ~threads:4 kind in
    let _ =
      Workloads.Dbmstest.run inst ~params:(Harness.Sizes.dbmstest 4) ()
    in
    print_endline "seq,category,address";
    List.iteri
      (fun i (cat, addr) ->
        let c =
          match cat with
          | Pmem.Stats.Meta -> "meta"
          | Pmem.Stats.Wal -> "wal"
          | Pmem.Stats.Log -> "log"
          | Pmem.Stats.Data -> "data"
        in
        Printf.printf "%d,%s,%d\n" i c addr)
      (Pmem.Stats.trace (Pmem.Device.stats inst.Alloc_api.Instance.dev))
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ alloc)

let stats_cmd =
  let doc =
    "Run a DBMStest probe with the persist-ordering checker enabled and print \
     the device's flush statistics alongside the checker's counters (commits \
     checked, dependencies tracked, violations recorded)."
  in
  let alloc =
    Arg.(value & pos 0 string "NVAlloc-LOG" & info [] ~docv:"ALLOCATOR")
  in
  let run name =
    let kind = allocator_kind name in
    let inst = Harness.Factory.make ~dev_size:(512 * 1024 * 1024) ~threads:4 kind in
    let dev = inst.Alloc_api.Instance.dev in
    Pmem.Device.set_check_mode dev true;
    let _ = Workloads.Dbmstest.run inst ~params:(Harness.Sizes.dbmstest 4) () in
    Format.printf "%a@." Pmem.Stats.pp_summary (Pmem.Device.stats dev);
    Printf.printf "persist-ordering checker:\n";
    Printf.printf "  commits checked       %d\n" (Pmem.Device.ordering_commits_checked dev);
    Printf.printf "  dependencies tracked  %d\n" (Pmem.Device.ordering_deps_tracked dev);
    Printf.printf "  violations            %d\n" (Pmem.Device.ordering_violation_count dev);
    List.iter
      (fun v -> Format.printf "  %a@." Pmem.Device.pp_violation v)
      (Pmem.Device.ordering_violations dev);
    if Pmem.Device.ordering_violation_count dev > 0 then exit 1
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ alloc)

let bench_cmd =
  let doc =
    "Run the host-time microbenchmarks (Bechamel ns/run per core primitive). \
     With $(b,--json) also write the machine-readable baseline; with \
     $(b,--check) compare against a committed baseline instead and exit \
     non-zero if any benchmark regressed beyond the threshold."
  in
  let json =
    let doc = "Write estimates and simulated makespans to $(docv)." in
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_micro.json") (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let check =
    let doc = "Compare against the baseline JSON at $(docv); no benchmark output." in
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_micro.json") (some string) None
      & info [ "check" ] ~docv:"PATH" ~doc)
  in
  let run json check =
    match check with
    | Some baseline -> exit (Bench_micro.run_check ~baseline)
    | None ->
        let ests = Bench_micro.run_print () in
        Option.iter (fun path -> Bench_micro.write_json ~path ~estimates:ests) json
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ json $ check)

let fuzz_cmd =
  let doc =
    "Run the crash-plan fuzzer: sample (workload seed, crash point, torn mode, \
     optional crash-during-recovery) plans, execute each against a fresh device \
     and check the full post-crash invariant oracle. On failure the plan is \
     shrunk and printed as a replayable one-liner (re-run it with $(b,--plan)). \
     Exits non-zero on a counterexample."
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Plan-sampling RNG seed.")
  in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Number of plans to run.")
  in
  let variant =
    let doc = "Pin the consistency variant ($(b,log), $(b,gc), $(b,ic), or $(b,any))." in
    Arg.(value & opt string "any" & info [ "variant" ] ~docv:"VARIANT" ~doc)
  in
  let plan =
    let doc = "Replay one plan (a line previously printed by the fuzzer) instead of sampling." in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let broken =
    let doc =
      "Demo mode: deliberately skip the WAL's append flush on the workload \
       instance, to show a real ordering bug being caught and shrunk."
    in
    Arg.(value & flag & info [ "broken" ] ~doc)
  in
  let check_order =
    let doc =
      "Run every plan with the device's persist-ordering checker enabled: \
       commits that retire before a declared dependency persisted become \
       oracle failures even when the crash misses the vulnerable window."
    in
    Arg.(value & opt bool true & info [ "check-order" ] ~docv:"BOOL" ~doc)
  in
  let run seed runs variant plan broken check_order =
    let variant =
      match variant with
      | "any" -> None
      | "log" -> Some Fault.Plan.Log
      | "gc" -> Some Fault.Plan.Gc
      | "ic" -> Some Fault.Plan.Ic
      | v -> failwith ("unknown variant " ^ v ^ " (expected log|gc|ic|any)")
    in
    match plan with
    | Some line -> (
        match Fault.Plan.of_string line with
        | Error e -> failwith ("bad --plan: " ^ e)
        | Ok p -> (
            match Fault.Fuzz.run_plan ~broken ~check_order p with
            | Ok report ->
                Format.printf "ok: %s@.  %a@." (Fault.Plan.to_string p)
                  Nvalloc_core.Nvalloc.pp_recovery_report report
            | Error reason ->
                Format.printf "FAIL: %s@.  %s@." (Fault.Plan.to_string p) reason;
                exit 1))
    | None -> (
        match Fault.Fuzz.fuzz ~broken ~check_order ?variant ~seed ~runs () with
        | None -> Printf.printf "ok: %d plans, no counterexamples (seed %d)\n" runs seed
        | Some cex ->
            Format.printf "counterexample (shrunk): %s@.  reason: %s@.  original: %s@."
              (Fault.Plan.to_string cex.Fault.Fuzz.shrunk)
              cex.Fault.Fuzz.reason
              (Fault.Plan.to_string cex.Fault.Fuzz.original);
            exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(const run $ seed $ runs $ variant $ plan $ broken $ check_order)

let () =
  let doc = "NVAlloc (ASPLOS'22) reproduction driver" in
  let info = Cmd.info "nvalloc-cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; run_cmd; all_cmd; trace_cmd; stats_cmd; bench_cmd; fuzz_cmd ]))
