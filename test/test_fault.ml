(* The fault-injection subsystem: crash plans (parse/print/sample),
   the fuzzer end to end (clean allocator -> no counterexamples; broken
   WAL ordering -> caught, shrunk, replayable), and configuration
   validation. *)

open Nvalloc_core

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let test_plan_roundtrip_examples () =
  let roundtrip s =
    match Fault.Plan.of_string s with
    | Error e -> Alcotest.failf "parse %S: %s" s e
    | Ok p -> Alcotest.(check string) "roundtrip" s (Fault.Plan.to_string p)
  in
  roundtrip "v=log seed=42 ops=600 crash=55 torn=prefix tseed=7 rcrash=12";
  roundtrip "v=gc seed=1 ops=40 crash=1 torn=line tseed=0 rcrash=-";
  roundtrip "v=ic seed=999999 ops=700 crash=4200 torn=random tseed=123 rcrash=200";
  roundtrip "v=log seed=0 ops=1 crash=1 torn=suffix tseed=1 rcrash=-"

let test_plan_rejects_garbage () =
  let rejects s =
    match Fault.Plan.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  rejects "";
  rejects "v=zig seed=1 ops=10 crash=1 torn=line tseed=0 rcrash=-";
  rejects "v=log seed=1 ops=0 crash=1 torn=line tseed=0 rcrash=-";
  rejects "v=log seed=1 ops=10 crash=0 torn=line tseed=0 rcrash=-";
  rejects "v=log seed=1 ops=10 crash=1 torn=sideways tseed=0 rcrash=-";
  rejects "v=log seed=1 ops=10 crash=1";
  rejects "v=log seed=x ops=10 crash=1 torn=line tseed=0 rcrash=-"

let prop_sampled_plans_roundtrip =
  let open QCheck in
  Test.make ~name:"sampled plans print/parse bit-for-bit" ~count:200
    (make Gen.(int_bound 1_000_000))
    (fun seed ->
      let p = Fault.Plan.sample (Sim.Rng.create seed) in
      Fault.Plan.of_string (Fault.Plan.to_string p) = Ok p)

let prop_shrink_candidates_simpler =
  let open QCheck in
  Test.make ~name:"shrink candidates are strictly simpler" ~count:200
    (make Gen.(int_bound 1_000_000))
    (fun seed ->
      let p = Fault.Plan.sample (Sim.Rng.create seed) in
      let weight (q : Fault.Plan.t) =
        q.Fault.Plan.ops + q.Fault.Plan.crash_after
        + (match q.Fault.Plan.torn with None -> 0 | Some _ -> 1)
        + (match q.Fault.Plan.recovery_crash with None -> 0 | Some n -> 1 + n)
      in
      List.for_all (fun q -> weight q < weight p) (Fault.Plan.shrink_candidates p))

let test_fuzz_clean () =
  (* The committed default seed: every plan must pass on the real
     allocator. (scripts/fuzz_check.sh runs the full 200-plan budget;
     keep the in-suite budget smaller.) *)
  match Fault.Fuzz.fuzz ~seed:1 ~runs:60 () with
  | None -> ()
  | Some cex ->
      Alcotest.failf "counterexample: %s (%s)"
        (Fault.Plan.to_string cex.Fault.Fuzz.shrunk)
        cex.Fault.Fuzz.reason

let test_fuzz_catches_broken_ordering () =
  (* Disable the WAL's flush-before-effect ordering: the fuzzer must
     find a failing plan, shrink it to something no bigger, and the
     shrunk plan must replay to the same verdict. *)
  match Fault.Fuzz.fuzz ~broken:true ~variant:Fault.Plan.Log ~seed:1 ~runs:60 () with
  | None -> Alcotest.fail "broken WAL ordering escaped the fuzzer"
  | Some { Fault.Fuzz.original; shrunk; reason } ->
      Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0);
      Alcotest.(check bool) "shrunk no bigger than original" true
        (shrunk.Fault.Plan.ops <= original.Fault.Plan.ops
        && shrunk.Fault.Plan.crash_after <= original.Fault.Plan.crash_after);
      (match Fault.Fuzz.run_plan ~broken:true shrunk with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shrunk plan no longer fails under --broken");
      (* The one-line rendering is a complete repro. *)
      let reparsed =
        match Fault.Plan.of_string (Fault.Plan.to_string shrunk) with
        | Ok p -> p
        | Error e -> Alcotest.failf "shrunk plan does not reparse: %s" e
      in
      Alcotest.(check bool) "reparsed equals shrunk" true (reparsed = shrunk)

let test_config_validation () =
  let rejects name field cfg =
    match Config.validate cfg with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s names the field (%s)" name msg)
          true (contains msg field)
    | () -> Alcotest.failf "%s: accepted" name
  in
  let d = Config.log_default in
  Config.validate d;
  Config.validate Config.gc_default;
  Config.validate Config.ic_default;
  rejects "zero arenas" "arenas" { d with Config.arenas = 0 };
  rejects "too many arenas for the 6-bit header field" "arenas" { d with Config.arenas = 65 };
  rejects "zero root slots" "root_slots" { d with Config.root_slots = 0 };
  rejects "one WAL entry" "wal_entries" { d with Config.wal_entries = 1 };
  rejects "unframed WAL size" "wal_entries" { d with Config.wal_entries = 100 };
  rejects "one booklog chunk" "booklog_chunks" { d with Config.booklog_chunks = 1 };
  rejects "zero stripes" "bit_stripes" { d with Config.bit_stripes = 0 };
  rejects "zero tcache" "tcache_capacity" { d with Config.tcache_capacity = 0 };
  rejects "SU out of range" "morph_su_threshold" { d with Config.morph_su_threshold = 1.5 };
  rejects "gc threshold zero" "booklog_slow_gc_threshold"
    { d with Config.booklog_slow_gc_threshold = 0.0 }

let test_create_rejects_invalid () =
  (* Validation runs at the API boundary, not just as a helper. *)
  let dev = Pmem.Device.create ~size:(1 lsl 22) () in
  let clock = Sim.Clock.create () in
  let bad = { Config.log_default with Config.arenas = 0 } in
  match Nvalloc.create ~config:bad dev clock with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Nvalloc.create accepted arenas = 0"

let suite =
  [
    Alcotest.test_case "plan roundtrip examples" `Quick test_plan_roundtrip_examples;
    Alcotest.test_case "plan rejects garbage" `Quick test_plan_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_sampled_plans_roundtrip;
    QCheck_alcotest.to_alcotest prop_shrink_candidates_simpler;
    Alcotest.test_case "fuzz: clean allocator passes" `Slow test_fuzz_clean;
    Alcotest.test_case "fuzz: broken ordering caught and shrunk" `Slow
      test_fuzz_catches_broken_ordering;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "create rejects invalid config" `Quick test_create_rejects_invalid;
  ]
