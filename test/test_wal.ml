(* Write-ahead log: slot mapping, replay, epochs, crash survival. *)

open Nvalloc_core

let mk () = (Pmem.Device.create ~size:(4 * 1024 * 1024) (), Sim.Clock.create ())

let test_append_replay () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:true in
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:64;
  Wal.append wal clock Wal.Free ~addr:8192 ~dest:128;
  Wal.append wal clock Wal.Refill ~addr:12288 ~dest:0;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  let kinds = List.map (fun e -> e.Wal.kind) entries in
  Alcotest.(check bool) "ordered by seq" true (kinds = [ Wal.Alloc; Wal.Free; Wal.Refill ]);
  let first = List.hd entries in
  Alcotest.(check int) "addr" 4096 first.Wal.addr;
  Alcotest.(check int) "dest" 64 first.Wal.dest

let test_replay_survives_crash () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:false in
  (* The header epoch must be persistent before entries matter. *)
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  for i = 1 to 10 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Pmem.Device.crash dev;
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  (* Appends flush synchronously: all survive the crash. *)
  Alcotest.(check int) "all appends survive" 10 (List.length entries)

let test_checkpoint_invalidates () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:true in
  for i = 1 to 5 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Wal.checkpoint wal clock;
  Alcotest.(check int) "empty after checkpoint" 0 (List.length (Wal.replay dev ~base:0 ~entries:256));
  Wal.append wal clock Wal.Free ~addr:4096 ~dest:9;
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  Alcotest.(check int) "only the new entry" 1 (List.length entries);
  Alcotest.(check bool) "right kind" true ((List.hd entries).Wal.kind = Wal.Free)

let test_near_full () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:64 ~interleave:true in
  for i = 1 to 64 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Alcotest.(check bool) "full" true (Wal.near_full wal);
  Wal.checkpoint wal clock;
  Alcotest.(check bool) "empty again" false (Wal.near_full wal)

let test_reopen_bumps_epoch () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:true in
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  let wal' = Wal.reopen dev clock ~base:0 ~entries:256 ~interleave:true in
  Alcotest.(check int) "old entries invalidated" 0
    (List.length (Wal.replay dev ~base:0 ~entries:256));
  Wal.append wal' clock Wal.Alloc ~addr:8192 ~dest:2;
  Alcotest.(check int) "new entry valid" 1 (List.length (Wal.replay dev ~base:0 ~entries:256))

let test_torn_entry_rejected () =
  (* ADR persists 8-byte words atomically, but a WAL entry spans two
     words: tearing either one must fail the checksum, and replay must
     skip (and count) the entry without disturbing its neighbours. *)
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:false in
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  Wal.append wal clock Wal.Free ~addr:8192 ~dest:2;
  Wal.append wal clock Wal.Refill ~addr:12288 ~dest:0;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  (* Entry 1 sits at 64 + 16 bytes (no interleave): smash its second
     word (the addr field) as a torn store would. *)
  Pmem.Device.write_u32 dev (64 + 16 + 8) 0xDEAD00;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let entries, torn = Wal.replay_torn dev ~base:0 ~entries:256 in
  Alcotest.(check int) "one entry torn" 1 torn;
  Alcotest.(check (list int)) "neighbours survive" [ 4096; 12288 ]
    (List.map (fun e -> e.Wal.addr) entries);
  (* Now tear the first word of entry 2 (its seq field). *)
  Pmem.Device.write_u32 dev (64 + 32 + 4) 0xBEEF;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let entries, torn = Wal.replay_torn dev ~base:0 ~entries:256 in
  Alcotest.(check int) "two entries torn" 2 torn;
  Alcotest.(check (list int)) "only the intact entry remains" [ 4096 ]
    (List.map (fun e -> e.Wal.addr) entries)

let prop_interleaved_appends_rotate_lines =
  (* Consecutive interleaved appends never write the same cache line
     within the reflush window. *)
  let open QCheck in
  Test.make ~name:"interleaved WAL appends avoid reflushes" ~count:50
    (make Gen.(int_range 5 200))
    (fun n ->
      let dev, clock = mk () in
      let wal = Wal.create dev ~base:0 ~entries:1024 ~interleave:true in
      Pmem.Stats.reset (Pmem.Device.stats dev);
      for i = 1 to n do
        Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
      done;
      Pmem.Stats.reflushes (Pmem.Device.stats dev) = 0)

let prop_sequential_appends_reflush =
  let open QCheck in
  Test.make ~name:"sequential WAL appends do reflush" ~count:20
    (make Gen.(int_range 16 200))
    (fun n ->
      let dev, clock = mk () in
      let wal = Wal.create dev ~base:0 ~entries:1024 ~interleave:false in
      Pmem.Stats.reset (Pmem.Device.stats dev);
      for i = 1 to n do
        Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
      done;
      Pmem.Stats.reflushes (Pmem.Device.stats dev) > 0)

let prop_replay_roundtrip =
  let open QCheck in
  Test.make ~name:"replay returns exactly what was appended" ~count:50
    (make Gen.(pair bool (list_size (int_range 1 60) (pair (int_range 1 1000) (int_range 0 1000)))))
    (fun (interleave, ops) ->
      let dev, clock = mk () in
      let wal = Wal.create dev ~base:0 ~entries:128 ~interleave in
      List.iter (fun (a, d) -> Wal.append wal clock Wal.Alloc ~addr:(a * 8) ~dest:d) ops;
      let entries = Wal.replay dev ~base:0 ~entries:128 in
      List.map (fun e -> (e.Wal.addr / 8, e.Wal.dest)) entries = ops)

(* --- group commit ------------------------------------------------------ *)

let test_group_open_discarded_on_crash () =
  let dev, clock = mk () in
  let wal = Wal.create ~group:4 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  for i = 1 to 3 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Alcotest.(check int) "group open" 3 (Wal.open_group wal);
  (* Even if the entry lines reach the media, the watermark has not
     advanced: replay must discard the whole open group. *)
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  Pmem.Device.crash dev;
  Alcotest.(check int) "open group lost wholesale" 0
    (List.length (Wal.replay dev ~base:0 ~entries:256))

let test_group_close_commits_batch () =
  let dev, clock = mk () in
  let wal = Wal.create ~group:4 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  for i = 1 to 4 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Wal.flush_group wal clock;
  Alcotest.(check int) "group closed" 0 (Wal.open_group wal);
  for i = 5 to 6 do
    Wal.append wal clock Wal.Free ~addr:(i * 4096) ~dest:i
  done;
  Pmem.Device.crash dev;
  (* The closed group survives; the reopened one does not. *)
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  Alcotest.(check (list int)) "exactly the closed batch" [ 4096; 8192; 12288; 16384 ]
    (List.map (fun e -> e.Wal.addr) entries)

let test_group_deferred_effects_ride_close () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  let wal = Wal.create ~group:8 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  (* A metadata effect deferred into the group: volatile at once,
     persistent only at the close. *)
  Pmem.Device.write_int64 dev 8192 99L;
  Wal.defer_commit wal clock Pmem.Stats.Meta (Pstruct.span_of ~addr:8192 ~len:8);
  Alcotest.(check int64) "effect volatile before close" 0L
    (Pmem.Device.persisted_int64 dev 8192);
  Wal.flush_group wal clock;
  Alcotest.(check int64) "effect persistent after close" 99L
    (Pmem.Device.persisted_int64 dev 8192);
  Alcotest.(check int) "entry committed" 1 (List.length (Wal.replay dev ~base:0 ~entries:256))

let test_group_auto_close_at_capacity () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  let wal = Wal.create ~group:2 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  for i = 1 to 2 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i;
    Pmem.Device.write_int64 dev (16384 + (i * 64)) (Int64.of_int i);
    Wal.defer_commit wal clock Pmem.Stats.Meta
      (Pstruct.span_of ~addr:(16384 + (i * 64)) ~len:8)
  done;
  (* The second defer_commit reached the group size: closed without an
     explicit flush_group. *)
  Alcotest.(check int) "auto-closed" 0 (Wal.open_group wal);
  Pmem.Device.crash dev;
  Alcotest.(check int) "both entries durable" 2
    (List.length (Wal.replay dev ~base:0 ~entries:256));
  Alcotest.(check int64) "effects durable" 2L (Pmem.Device.persisted_int64 dev (16384 + 128))

let test_group_checkpoint_closes_first () =
  let dev, clock = mk () in
  let wal = Wal.create ~group:8 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  for i = 1 to 3 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Wal.checkpoint wal clock;
  Alcotest.(check int) "nothing open" 0 (Wal.open_group wal);
  Alcotest.(check int) "ring invalidated" 0
    (List.length (Wal.replay dev ~base:0 ~entries:256));
  (* Fresh epoch: grouping still works after the checkpoint. *)
  Wal.append wal clock Wal.Free ~addr:4096 ~dest:9;
  Wal.flush_group wal clock;
  Pmem.Device.crash dev;
  Alcotest.(check int) "post-checkpoint group commits" 1
    (List.length (Wal.replay dev ~base:0 ~entries:256))

let test_group_sync_mode_accepts_all () =
  (* A log written with grouping, then reopened synchronous: the sync
     header zeroes the watermark fields, so replay falls back to
     accept-all and sync appends are never filtered. *)
  let dev, clock = mk () in
  let wal = Wal.create ~group:4 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  Wal.flush_group wal clock;
  let wal' = Wal.reopen dev clock ~base:0 ~entries:256 ~interleave:true in
  for i = 1 to 3 do
    Wal.append wal' clock Wal.Alloc ~addr:(i * 8192) ~dest:i
  done;
  Pmem.Device.crash dev;
  Alcotest.(check int) "sync appends all accepted" 3
    (List.length (Wal.replay dev ~base:0 ~entries:256))

let test_group_forgotten_commit_record () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  let wal = Wal.create ~group:4 dev ~base:0 ~entries:256 ~interleave:true in
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  Pmem.Device.write_int64 dev 8192 55L;
  Wal.defer_commit wal clock Pmem.Stats.Meta (Pstruct.span_of ~addr:8192 ~len:8);
  Wal.unsafe_set_skip_commit_record wal true;
  Wal.flush_group wal clock;
  Pmem.Device.crash dev;
  (* The broken close persisted the watermark and the effect but dropped
     the entry: replay finds nothing behind the commit record while the
     effect survives — the evidence-free inconsistency the model checker
     must catch at the allocator level. *)
  Alcotest.(check int) "entry lost" 0 (List.length (Wal.replay dev ~base:0 ~entries:256));
  Alcotest.(check int64) "effect leaked" 55L (Pmem.Device.persisted_int64 dev 8192)

let suite =
  [
    Alcotest.test_case "append then replay" `Quick test_append_replay;
    Alcotest.test_case "replay survives a crash" `Quick test_replay_survives_crash;
    Alcotest.test_case "checkpoint invalidates" `Quick test_checkpoint_invalidates;
    Alcotest.test_case "near_full and reset" `Quick test_near_full;
    Alcotest.test_case "reopen bumps the epoch" `Quick test_reopen_bumps_epoch;
    Alcotest.test_case "torn entries fail the checksum" `Quick test_torn_entry_rejected;
    Alcotest.test_case "group: open group lost on crash" `Quick
      test_group_open_discarded_on_crash;
    Alcotest.test_case "group: close commits the batch" `Quick test_group_close_commits_batch;
    Alcotest.test_case "group: deferred effects ride the close" `Quick
      test_group_deferred_effects_ride_close;
    Alcotest.test_case "group: auto-close at capacity" `Quick test_group_auto_close_at_capacity;
    Alcotest.test_case "group: checkpoint closes first" `Quick test_group_checkpoint_closes_first;
    Alcotest.test_case "group: sync reopen accepts all" `Quick test_group_sync_mode_accepts_all;
    Alcotest.test_case "group: forgotten commit record" `Quick
      test_group_forgotten_commit_record;
    QCheck_alcotest.to_alcotest prop_interleaved_appends_rotate_lines;
    QCheck_alcotest.to_alcotest prop_sequential_appends_reflush;
    QCheck_alcotest.to_alcotest prop_replay_roundtrip;
  ]
