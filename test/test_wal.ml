(* Write-ahead log: slot mapping, replay, epochs, crash survival. *)

open Nvalloc_core

let mk () = (Pmem.Device.create ~size:(4 * 1024 * 1024) (), Sim.Clock.create ())

let test_append_replay () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:true in
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:64;
  Wal.append wal clock Wal.Free ~addr:8192 ~dest:128;
  Wal.append wal clock Wal.Refill ~addr:12288 ~dest:0;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  let kinds = List.map (fun e -> e.Wal.kind) entries in
  Alcotest.(check bool) "ordered by seq" true (kinds = [ Wal.Alloc; Wal.Free; Wal.Refill ]);
  let first = List.hd entries in
  Alcotest.(check int) "addr" 4096 first.Wal.addr;
  Alcotest.(check int) "dest" 64 first.Wal.dest

let test_replay_survives_crash () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:false in
  (* The header epoch must be persistent before entries matter. *)
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  for i = 1 to 10 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Pmem.Device.crash dev;
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  (* Appends flush synchronously: all survive the crash. *)
  Alcotest.(check int) "all appends survive" 10 (List.length entries)

let test_checkpoint_invalidates () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:true in
  for i = 1 to 5 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Wal.checkpoint wal clock;
  Alcotest.(check int) "empty after checkpoint" 0 (List.length (Wal.replay dev ~base:0 ~entries:256));
  Wal.append wal clock Wal.Free ~addr:4096 ~dest:9;
  let entries = Wal.replay dev ~base:0 ~entries:256 in
  Alcotest.(check int) "only the new entry" 1 (List.length entries);
  Alcotest.(check bool) "right kind" true ((List.hd entries).Wal.kind = Wal.Free)

let test_near_full () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:64 ~interleave:true in
  for i = 1 to 64 do
    Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
  done;
  Alcotest.(check bool) "full" true (Wal.near_full wal);
  Wal.checkpoint wal clock;
  Alcotest.(check bool) "empty again" false (Wal.near_full wal)

let test_reopen_bumps_epoch () =
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:true in
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  let wal' = Wal.reopen dev clock ~base:0 ~entries:256 ~interleave:true in
  Alcotest.(check int) "old entries invalidated" 0
    (List.length (Wal.replay dev ~base:0 ~entries:256));
  Wal.append wal' clock Wal.Alloc ~addr:8192 ~dest:2;
  Alcotest.(check int) "new entry valid" 1 (List.length (Wal.replay dev ~base:0 ~entries:256))

let test_torn_entry_rejected () =
  (* ADR persists 8-byte words atomically, but a WAL entry spans two
     words: tearing either one must fail the checksum, and replay must
     skip (and count) the entry without disturbing its neighbours. *)
  let dev, clock = mk () in
  let wal = Wal.create dev ~base:0 ~entries:256 ~interleave:false in
  Wal.append wal clock Wal.Alloc ~addr:4096 ~dest:1;
  Wal.append wal clock Wal.Free ~addr:8192 ~dest:2;
  Wal.append wal clock Wal.Refill ~addr:12288 ~dest:0;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  (* Entry 1 sits at 64 + 16 bytes (no interleave): smash its second
     word (the addr field) as a torn store would. *)
  Pmem.Device.write_u32 dev (64 + 16 + 8) 0xDEAD00;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let entries, torn = Wal.replay_torn dev ~base:0 ~entries:256 in
  Alcotest.(check int) "one entry torn" 1 torn;
  Alcotest.(check (list int)) "neighbours survive" [ 4096; 12288 ]
    (List.map (fun e -> e.Wal.addr) entries);
  (* Now tear the first word of entry 2 (its seq field). *)
  Pmem.Device.write_u32 dev (64 + 32 + 4) 0xBEEF;
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let entries, torn = Wal.replay_torn dev ~base:0 ~entries:256 in
  Alcotest.(check int) "two entries torn" 2 torn;
  Alcotest.(check (list int)) "only the intact entry remains" [ 4096 ]
    (List.map (fun e -> e.Wal.addr) entries)

let prop_interleaved_appends_rotate_lines =
  (* Consecutive interleaved appends never write the same cache line
     within the reflush window. *)
  let open QCheck in
  Test.make ~name:"interleaved WAL appends avoid reflushes" ~count:50
    (make Gen.(int_range 5 200))
    (fun n ->
      let dev, clock = mk () in
      let wal = Wal.create dev ~base:0 ~entries:1024 ~interleave:true in
      Pmem.Stats.reset (Pmem.Device.stats dev);
      for i = 1 to n do
        Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
      done;
      Pmem.Stats.reflushes (Pmem.Device.stats dev) = 0)

let prop_sequential_appends_reflush =
  let open QCheck in
  Test.make ~name:"sequential WAL appends do reflush" ~count:20
    (make Gen.(int_range 16 200))
    (fun n ->
      let dev, clock = mk () in
      let wal = Wal.create dev ~base:0 ~entries:1024 ~interleave:false in
      Pmem.Stats.reset (Pmem.Device.stats dev);
      for i = 1 to n do
        Wal.append wal clock Wal.Alloc ~addr:(i * 4096) ~dest:i
      done;
      Pmem.Stats.reflushes (Pmem.Device.stats dev) > 0)

let prop_replay_roundtrip =
  let open QCheck in
  Test.make ~name:"replay returns exactly what was appended" ~count:50
    (make Gen.(pair bool (list_size (int_range 1 60) (pair (int_range 1 1000) (int_range 0 1000)))))
    (fun (interleave, ops) ->
      let dev, clock = mk () in
      let wal = Wal.create dev ~base:0 ~entries:128 ~interleave in
      List.iter (fun (a, d) -> Wal.append wal clock Wal.Alloc ~addr:(a * 8) ~dest:d) ops;
      let entries = Wal.replay dev ~base:0 ~entries:128 in
      List.map (fun e -> (e.Wal.addr / 8, e.Wal.dest)) entries = ops)

let suite =
  [
    Alcotest.test_case "append then replay" `Quick test_append_replay;
    Alcotest.test_case "replay survives a crash" `Quick test_replay_survives_crash;
    Alcotest.test_case "checkpoint invalidates" `Quick test_checkpoint_invalidates;
    Alcotest.test_case "near_full and reset" `Quick test_near_full;
    Alcotest.test_case "reopen bumps the epoch" `Quick test_reopen_bumps_epoch;
    Alcotest.test_case "torn entries fail the checksum" `Quick test_torn_entry_rejected;
    QCheck_alcotest.to_alcotest prop_interleaved_appends_rotate_lines;
    QCheck_alcotest.to_alcotest prop_sequential_appends_reflush;
    QCheck_alcotest.to_alcotest prop_replay_roundtrip;
  ]
