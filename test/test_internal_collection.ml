(* NVAlloc-IC, the internal-collection variant (the paper's future-work
   model, section 4.1): no WAL for small objects; the persistent bitmap
   enumerates exactly the user's objects, and post-crash leak resolution
   is the application's job via iter_allocated — PMDK's POBJ_FIRST/NEXT
   idiom. *)

open Nvalloc_core

let mib = 1024 * 1024

let config =
  {
    Config.ic_default with
    Config.arenas = 2;
    root_slots = 4096;
    booklog_chunks = 128;
    wal_entries = 1024;
    tcache_capacity = 8;
  }

let mk () =
  let dev = Pmem.Device.create ~size:(128 * mib) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config dev clock in
  let th = Nvalloc.thread t clock in
  (dev, clock, t, th)

let enumerate t =
  let acc = ref [] in
  Nvalloc.iter_allocated t (fun ~addr ~size -> acc := (addr, size) :: !acc);
  List.sort compare !acc

let test_enumeration_exact () =
  let _, _, t, th = mk () in
  (* Churn through the tcache, keep a known live set. *)
  let live = Hashtbl.create 64 in
  for i = 0 to 499 do
    let dest = Nvalloc.root_addr t (i mod 64) in
    if Nvalloc.read_ptr t ~dest > 0 then begin
      Nvalloc.free_from t th ~dest;
      Hashtbl.remove live (i mod 64)
    end
    else begin
      let addr = Nvalloc.malloc_to t th ~size:64 ~dest in
      Hashtbl.replace live (i mod 64) addr
    end
  done;
  let want =
    List.sort compare (Hashtbl.fold (fun _ addr acc -> addr :: acc) live [])
  in
  let got = List.map fst (enumerate t) in
  Alcotest.(check (list int)) "enumeration = live set" want got

let test_no_wal_for_small () =
  let dev, _, t, th = mk () in
  let st = Pmem.Device.stats dev in
  Pmem.Stats.reset st;
  for i = 0 to 99 do
    ignore (Nvalloc.malloc_to t th ~size:64 ~dest:(Nvalloc.root_addr t i))
  done;
  Alcotest.(check (float 1e-9)) "no WAL flush time" 0.0 (Pmem.Stats.flush_time st Pmem.Stats.Wal)

let test_crash_user_side_resolution () =
  let dev, clock, t, th = mk () in
  for i = 0 to 199 do
    ignore (Nvalloc.malloc_to t th ~size:96 ~dest:(Nvalloc.root_addr t i))
  done;
  for i = 0 to 99 do
    Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
  done;
  Pmem.Device.crash dev;
  let t', report = Nvalloc.recover ~config dev clock in
  Alcotest.(check bool) "no allocator-side WAL replay" true
    (report.Nvalloc.wal_entries_replayed = 0);
  (* The application resolves leaks: every enumerated object not
     referenced from a root is freed through a scratch slot. *)
  let published = Hashtbl.create 64 in
  for i = 0 to 199 do
    let v = Nvalloc.read_ptr t' ~dest:(Nvalloc.root_addr t' i) in
    if v > 0 then Hashtbl.replace published v ()
  done;
  let th' = Nvalloc.thread t' clock in
  let scratch = Nvalloc.root_addr t' 4000 in
  let freed = ref 0 in
  let orphans = ref [] in
  Nvalloc.iter_allocated t' (fun ~addr ~size:_ ->
      if not (Hashtbl.mem published addr) then orphans := addr :: !orphans);
  List.iter
    (fun addr ->
      Pmem.Device.write_int64 dev scratch (Int64.of_int addr);
      Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:scratch ~len:8;
      Nvalloc.free_from t' th' ~dest:scratch;
      incr freed)
    !orphans;
  (* After resolution, allocation state matches the published set
     exactly. *)
  Alcotest.(check int) "live = published" (Hashtbl.length published)
    (List.length (enumerate t'));
  (* Everything still works; free the survivors. *)
  for i = 100 to 199 do
    let dest = Nvalloc.root_addr t' i in
    if Nvalloc.read_ptr t' ~dest > 0 then Nvalloc.free_from t' th' ~dest
  done;
  Alcotest.(check (list (pair int int))) "all freed" [] (enumerate t')

let test_crash_sweep_ic () =
  List.iter
    (fun crash_after ->
      let dev = Pmem.Device.create ~size:(128 * mib) () in
      let clock = Sim.Clock.create () in
      let t = Nvalloc.create ~config dev clock in
      let th = Nvalloc.thread t clock in
      Pmem.Device.schedule_crash_after dev crash_after;
      (try
         for i = 0 to 399 do
           let dest = Nvalloc.root_addr t (i mod 128) in
           if Nvalloc.read_ptr t ~dest > 0 then Nvalloc.free_from t th ~dest
           else ignore (Nvalloc.malloc_to t th ~size:(32 + (8 * (i mod 12))) ~dest)
         done;
         Pmem.Device.cancel_scheduled_crash dev;
         Pmem.Device.crash dev
       with Pmem.Device.Injected_crash -> ());
      (* The oracle performs the IC contract itself: it frees published
         roots, then resolves every remaining enumerated orphan through a
         scratch slot before demanding leak-freedom. *)
      match Fault.Oracle.check ~config dev clock with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "crash@%d: %s" crash_after e)
    [ 2; 5; 11; 23; 47; 95; 190; 380; 760 ]

let suite =
  [
    Alcotest.test_case "enumeration is exact" `Quick test_enumeration_exact;
    Alcotest.test_case "no WAL for small objects" `Quick test_no_wal_for_small;
    Alcotest.test_case "crash: user-side leak resolution" `Quick test_crash_user_side_resolution;
    Alcotest.test_case "crash sweep (IC)" `Slow test_crash_sweep_ic;
  ]
