(* The central crash-consistency property: run a mixed workload, crash
   the device after N flushed lines — for a sweep of N covering the whole
   run — recover, and check the global invariants of {!Fault.Oracle}
   (owner-index disjointness, root reachability, leak-freedom,
   usability) for both consistency models.

   Refinements swept here on top of the plain countdown:

   - torn crashes: the line in flight persists only a word subset
     (prefix / suffix / random), the 8-byte atomicity model of ADR;
   - crash during recovery: a second countdown armed across
     [Nvalloc.recover] itself, then recovery re-run — recovery must be
     idempotent at every one of its own flushes;
   - eADR: crashes keep the CPU caches, so every crash point must be
     invariant-clean with no replay work at all. *)

open Nvalloc_core

let mib = 1024 * 1024

let config variant =
  let base =
    match variant with `Log -> Config.log_default | `Gc -> Config.gc_default
  in
  {
    base with
    Config.arenas = 2;
    root_slots = 4096;
    booklog_chunks = 128;
    wal_entries = 1024;
    tcache_capacity = 8;
  }

(* The scenario mixes small sizes, a large object, frees, and enough
   churn to trigger refills, slab creation and booklog traffic. *)
let scenario ?(every = fun _ -> ()) t th n =
  for i = 0 to n - 1 do
    let dest = Nvalloc.root_addr t (i mod 512) in
    if Nvalloc.read_ptr t ~dest > 0 then Nvalloc.free_from t th ~dest
    else begin
      let size =
        match i mod 5 with
        | 0 -> 32
        | 1 -> 136
        | 2 -> 1024
        | 3 -> 48
        | _ -> 40 * 1024 (* large *)
      in
      ignore (Nvalloc.malloc_to t th ~size ~dest)
    end;
    every i
  done

let run_crash_point ?lat ?torn ?(torn_seed = 0) ?recovery_crash ?(sync = false)
    ?(async_tick = false) variant ~crash_after =
  let cfg = config variant in
  let cfg = if sync then Config.sync cfg else cfg in
  (* A low ring-fraction threshold so the explicit ticks below actually
     fire checkpoints mid-workload, putting crash points inside them. *)
  let cfg = if async_tick then { cfg with Config.async_checkpoint = 0.05 } else cfg in
  let dev = Pmem.Device.create ?lat ~size:(128 * mib) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config:cfg dev clock in
  let th = Nvalloc.thread t clock in
  let every =
    if async_tick then (fun i ->
      if i mod 50 = 49 then
        Array.iter
          (fun a -> ignore (Arena.async_checkpoint_tick a clock))
          (Nvalloc.arenas t))
    else fun _ -> ()
  in
  Pmem.Device.schedule_crash_after ?torn ~torn_seed dev crash_after;
  (try
     scenario ~every t th 600;
     Pmem.Device.cancel_scheduled_crash dev;
     Pmem.Device.crash dev
   with Pmem.Device.Injected_crash -> ());
  (* Optionally crash a first recovery attempt partway through; the
     oracle's own recovery then runs over the half-recovered image. *)
  (match recovery_crash with
  | None -> ()
  | Some n -> (
      Pmem.Device.schedule_crash_after dev n;
      try
        ignore (Nvalloc.recover ~config:cfg dev clock);
        Pmem.Device.cancel_scheduled_crash dev;
        Pmem.Device.crash dev
      with Pmem.Device.Injected_crash -> ()));
  match Fault.Oracle.check ~config:cfg dev clock with
  | Ok _ -> ()
  | Error e -> failwith e

(* Dense at the start (metadata formation), then geometric. *)
let points = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610; 987; 1600; 2600 ]
let name_of = function `Log -> "LOG" | `Gc -> "GC"

let sweep variant () =
  List.iter
    (fun n ->
      try run_crash_point variant ~crash_after:n
      with e ->
        Alcotest.failf "crash point %d (%s): %s" n (name_of variant)
          (Printexc.to_string e))
    points

let sweep_torn variant torn () =
  List.iter
    (fun n ->
      try run_crash_point variant ~torn ~torn_seed:(n * 7919) ~crash_after:n
      with e ->
        Alcotest.failf "torn crash point %d (%s): %s" n (name_of variant)
          (Printexc.to_string e))
    points

(* Crash the first recovery after [m] of its own flushes, for every
   (workload crash, recovery crash) pair in a smaller grid: recovery must
   be idempotent, i.e. a second recovery from the torn-down state finds
   the same invariants. *)
let sweep_recovery_crash variant () =
  let crash_points = [ 13; 89; 377; 987 ] in
  let recovery_points = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144 ] in
  List.iter
    (fun c ->
      List.iter
        (fun r ->
          try run_crash_point variant ~recovery_crash:r ~crash_after:c
          with e ->
            Alcotest.failf "crash %d + recovery crash %d (%s): %s" c r
              (name_of variant) (Printexc.to_string e))
        recovery_points)
    crash_points

(* Under eADR a crash persists the cache contents, so every crash point
   behaves like a clean (if abrupt) stop: the sweep must pass and the
   in-flight line logic (torn stores) must never engage. *)
let sweep_eadr variant () =
  List.iter
    (fun n ->
      try
        run_crash_point ~lat:Pmem.Latency.eadr ~torn:Pmem.Device.Torn_random
          ~torn_seed:n variant ~crash_after:n
      with e ->
        Alcotest.failf "eADR crash point %d (%s): %s" n (name_of variant)
          (Printexc.to_string e))
    points

(* The defaults above run the batched pipeline (flush coalescing + WAL
   group commit); this sweep pins the synchronous configuration so both
   persistence modes stay under the oracle. *)
let sweep_sync variant () =
  List.iter
    (fun n ->
      try run_crash_point ~sync:true variant ~crash_after:n
      with e ->
        Alcotest.failf "sync crash point %d (%s): %s" n (name_of variant)
          (Printexc.to_string e))
    points

(* Crashes landing inside background-checkpoint work: the workload is
   interleaved with explicit [Arena.async_checkpoint_tick] polls (what
   the driver's daemon thread does) under a low occupancy threshold, so
   many of the countdown points fall within a checkpoint's own flushes. *)
let sweep_async_checkpoint variant () =
  List.iter
    (fun n ->
      try run_crash_point ~async_tick:true variant ~crash_after:n
      with e ->
        Alcotest.failf "async-checkpoint crash point %d (%s): %s" n (name_of variant)
          (Printexc.to_string e))
    points

(* The perf claim behind the pipeline, asserted at sweep scale: the same
   workload issues measurably fewer fences and media flushes when
   batched, and finishes earlier on the simulated clock. *)
let test_batching_saves_fences () =
  let run sync =
    let cfg = config `Log in
    let cfg = if sync then Config.sync cfg else cfg in
    let dev = Pmem.Device.create ~size:(128 * mib) () in
    let clock = Sim.Clock.create () in
    let t = Nvalloc.create ~config:cfg dev clock in
    let th = Nvalloc.thread t clock in
    scenario t th 600;
    Nvalloc.exit_ t clock;
    (Pmem.Stats.flushes (Pmem.Device.stats dev), Sim.Clock.now clock, dev)
  in
  let sync_flushes, sync_ns, _ = run true in
  let batch_flushes, batch_ns, bdev = run false in
  let st = Pmem.Device.stats bdev in
  Alcotest.(check bool) "fences saved" true (Pmem.Stats.fences_saved st > 0);
  Alcotest.(check bool) "flushes coalesced" true (Pmem.Stats.flushes_coalesced st > 0);
  Alcotest.(check bool) "group commits ran" true (Pmem.Stats.group_commits st > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fewer media flushes batched (%d vs %d sync)" batch_flushes
       sync_flushes)
    true
    (batch_flushes < sync_flushes);
  Alcotest.(check bool)
    (Printf.sprintf "lower simulated time batched (%.0fns vs %.0fns sync)" batch_ns
       sync_ns)
    true (batch_ns < sync_ns)

(* Batching must not cost determinism: the coalescing buffers drain in a
   canonical (ascending-line) order, so two identical runs agree on every
   counter and on the simulated clock. *)
let test_batched_determinism () =
  let run () =
    let cfg = config `Log in
    let dev = Pmem.Device.create ~size:(128 * mib) () in
    let clock = Sim.Clock.create () in
    let t = Nvalloc.create ~config:cfg dev clock in
    let th = Nvalloc.thread t clock in
    scenario t th 600;
    Nvalloc.exit_ t clock;
    let st = Pmem.Device.stats dev in
    ( Sim.Clock.now clock,
      Pmem.Stats.flushes st,
      Pmem.Stats.fences_saved st,
      Pmem.Stats.flushes_coalesced st,
      Pmem.Stats.group_commits st )
  in
  let t1, f1, s1, c1, g1 = run () in
  let t2, f2, s2, c2, g2 = run () in
  Alcotest.(check (float 0.0)) "same simulated time" t1 t2;
  Alcotest.(check int) "same media flushes" f1 f2;
  Alcotest.(check int) "same fences saved" s1 s2;
  Alcotest.(check int) "same coalesced count" c1 c2;
  Alcotest.(check int) "same group commits" g1 g2

(* Generator-driven sweep: the model checker's history generator (morph
   churn, tcache-overflow bursts, cross-thread frees, boundary sizes)
   replaces the hand-written scenario above; {!Check.Runner} arms the
   crash countdown and hands the crashed image to the same oracle. *)
let sweep_generated variant () =
  let alloc = match variant with `Log -> "NVAlloc-LOG" | `Gc -> "NVAlloc-GC" in
  List.iter
    (fun seed ->
      List.iter
        (fun crash ->
          let sc =
            { Check.History.alloc; seed; ops = 400; threads = 2; crash = Some crash }
          in
          match Check.Runner.run sc with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" (Check.History.to_string sc) e)
        [ 5; 50; 500 ])
    [ 1; 2; 3; 4 ]

let suite =
  [
    Alcotest.test_case "crash sweep, NVAlloc-LOG" `Slow (sweep `Log);
    Alcotest.test_case "crash sweep, NVAlloc-GC" `Slow (sweep `Gc);
    Alcotest.test_case "torn prefix sweep, LOG" `Slow (sweep_torn `Log Pmem.Device.Torn_prefix);
    Alcotest.test_case "torn suffix sweep, LOG" `Slow (sweep_torn `Log Pmem.Device.Torn_suffix);
    Alcotest.test_case "torn random sweep, LOG" `Slow (sweep_torn `Log Pmem.Device.Torn_random);
    Alcotest.test_case "torn random sweep, GC" `Slow (sweep_torn `Gc Pmem.Device.Torn_random);
    Alcotest.test_case "crash during recovery, LOG" `Slow (sweep_recovery_crash `Log);
    Alcotest.test_case "crash during recovery, GC" `Slow (sweep_recovery_crash `Gc);
    Alcotest.test_case "eADR crash sweep, LOG" `Slow (sweep_eadr `Log);
    Alcotest.test_case "eADR crash sweep, GC" `Slow (sweep_eadr `Gc);
    Alcotest.test_case "generated crash sweep, LOG" `Slow (sweep_generated `Log);
    Alcotest.test_case "generated crash sweep, GC" `Slow (sweep_generated `Gc);
    Alcotest.test_case "sync crash sweep, LOG" `Slow (sweep_sync `Log);
    Alcotest.test_case "sync crash sweep, GC" `Slow (sweep_sync `Gc);
    Alcotest.test_case "async-checkpoint crash sweep, LOG" `Slow
      (sweep_async_checkpoint `Log);
    Alcotest.test_case "async-checkpoint crash sweep, GC" `Slow
      (sweep_async_checkpoint `Gc);
    Alcotest.test_case "batching saves fences" `Quick test_batching_saves_fences;
    Alcotest.test_case "batched run is deterministic" `Quick test_batched_determinism;
  ]
