let () =
  Alcotest.run "nvalloc"
    [
      ("sim", Test_sim.suite);
      ("rbtree", Test_rbtree.suite);
      ("support", Test_support.suite);
      ("device", Test_device.suite);
      ("dax", Test_dax.suite);
      ("pstruct", Test_pstruct.suite);
      ("substrate-perf", Test_substrate_perf.suite);
      ("bitmap", Test_bitmap.suite);
      ("slab-tcache", Test_slab_tcache.suite);
      ("heap", Test_heap.suite);
      ("wal", Test_wal.suite);
      ("extent", Test_extent.suite);
      ("booklog", Test_booklog.suite);
      ("nvalloc", Test_nvalloc.suite);
      ("morph", Test_morph.suite);
      ("crash-sweep", Test_crash_sweep.suite);
      ("internal-collection", Test_internal_collection.suite);
      ("fault", Test_fault.suite);
      ("media", Test_media.suite);
      ("fptree", Test_fptree.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("check", Test_check.suite);
      ("guard", Test_guard.suite);
      ("par", Test_par.suite);
      ("telemetry", Test_telemetry.suite);
      ("harness", Test_harness.suite);
    ]
