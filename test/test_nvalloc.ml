(* End-to-end allocator tests: alloc/free through the public API, clean
   shutdown + recovery, crash injection + recovery, both variants. *)

open Nvalloc_core

let small_config variant =
  let base = match variant with
    | `Log -> Config.log_default
    | `Gc -> Config.gc_default
  in
  { base with Config.arenas = 2; root_slots = 4096; booklog_chunks = 64; wal_entries = 1024 }

let mk ?(variant = `Log) () =
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config:(small_config variant) dev clock in
  (dev, clock, t)

let test_alloc_free_small () =
  let _, clock, t = mk () in
  let th = Nvalloc.thread t clock in
  let dest = Nvalloc.root_addr t 0 in
  let addr = Nvalloc.malloc_to t th ~size:64 ~dest in
  Alcotest.(check bool) "address in heap" true (addr >= Heap.heap_start (Nvalloc.heap t));
  Alcotest.(check int) "published" addr (Nvalloc.read_ptr t ~dest);
  Nvalloc.free_from t th ~dest;
  Alcotest.(check int) "dest cleared" 0 (Nvalloc.read_ptr t ~dest)

let test_alloc_free_large () =
  let _, clock, t = mk () in
  let th = Nvalloc.thread t clock in
  let dest = Nvalloc.root_addr t 0 in
  let addr = Nvalloc.malloc_to t th ~size:(300 * 1024) ~dest in
  Alcotest.(check int) "published" addr (Nvalloc.read_ptr t ~dest);
  Nvalloc.free_from t th ~dest;
  Alcotest.(check int) "dest cleared" 0 (Nvalloc.read_ptr t ~dest)

let test_distinct_addresses () =
  let _, clock, t = mk () in
  let th = Nvalloc.thread t clock in
  let n = 2000 in
  let seen = Hashtbl.create n in
  for i = 0 to n - 1 do
    let dest = Nvalloc.root_addr t i in
    let addr = Nvalloc.malloc_to t th ~size:48 ~dest in
    Alcotest.(check bool) (Printf.sprintf "unique %d" i) false (Hashtbl.mem seen addr);
    Hashtbl.add seen addr ()
  done;
  (* Free half, reallocate, still unique among live. *)
  for i = 0 to (n / 2) - 1 do
    Hashtbl.remove seen (Nvalloc.read_ptr t ~dest:(Nvalloc.root_addr t i));
    Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
  done;
  for i = 0 to (n / 2) - 1 do
    let addr = Nvalloc.malloc_to t th ~size:48 ~dest:(Nvalloc.root_addr t i) in
    Alcotest.(check bool) "no double allocation" false (Hashtbl.mem seen addr);
    Hashtbl.add seen addr ()
  done

let test_payload_integrity () =
  let dev, clock, t = mk () in
  let th = Nvalloc.thread t clock in
  let n = 500 in
  for i = 0 to n - 1 do
    let dest = Nvalloc.root_addr t i in
    let addr = Nvalloc.malloc_to t th ~size:32 ~dest in
    Pmem.Device.write_int64 dev addr (Int64.of_int (i * 7));
    Pmem.Device.flush dev clock Pmem.Stats.Data ~addr ~len:8
  done;
  for i = 0 to n - 1 do
    let addr = Nvalloc.read_ptr t ~dest:(Nvalloc.root_addr t i) in
    Alcotest.(check int64)
      (Printf.sprintf "payload %d" i)
      (Int64.of_int (i * 7))
      (Pmem.Device.read_int64 dev addr)
  done

let test_size_mix () =
  let _, clock, t = mk () in
  let th = Nvalloc.thread t clock in
  let rng = Sim.Rng.create 42 in
  let live = Hashtbl.create 64 in
  for i = 0 to 3000 do
    let slot = Sim.Rng.int rng 256 in
    let dest = Nvalloc.root_addr t slot in
    if Hashtbl.mem live slot then begin
      Nvalloc.free_from t th ~dest;
      Hashtbl.remove live slot
    end
    else begin
      let size =
        match Sim.Rng.int rng 4 with
        | 0 -> Sim.Rng.int_in rng 16 256
        | 1 -> Sim.Rng.int_in rng 256 4096
        | 2 -> Sim.Rng.int_in rng 4096 16384
        | _ -> Sim.Rng.int_in rng 16385 (256 * 1024)
      in
      ignore (Nvalloc.malloc_to t th ~size ~dest);
      Hashtbl.add live slot ()
    end;
    ignore i
  done;
  (* Free everything; mapped memory should decay back down over time. *)
  Hashtbl.iter (fun slot () -> Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t slot)) live

let check_recovered_pointers t' n =
  for i = 0 to n - 1 do
    let addr = Nvalloc.read_ptr t' ~dest:(Nvalloc.root_addr t' i) in
    Alcotest.(check bool) (Printf.sprintf "root %d live" i) true (addr > 0)
  done

let test_shutdown_recover variant =
  let dev, clock, t = mk ~variant () in
  let th = Nvalloc.thread t clock in
  let n = 300 in
  for i = 0 to n - 1 do
    ignore (Nvalloc.malloc_to t th ~size:(32 + (8 * (i mod 30))) ~dest:(Nvalloc.root_addr t i))
  done;
  (* A couple of large ones. *)
  ignore (Nvalloc.malloc_to t th ~size:(128 * 1024) ~dest:(Nvalloc.root_addr t 1000));
  Nvalloc.exit_ t clock;
  let t', report = Nvalloc.recover ~config:(small_config variant) dev clock in
  Alcotest.(check bool) "clean shutdown detected" true (report.found_state = Heap.Shutdown);
  check_recovered_pointers t' n;
  (* The heap is usable after recovery: allocate and free everything. *)
  let th' = Nvalloc.thread t' clock in
  for i = 0 to n - 1 do
    Nvalloc.free_from t' th' ~dest:(Nvalloc.root_addr t' i)
  done;
  Nvalloc.free_from t' th' ~dest:(Nvalloc.root_addr t' 1000);
  for i = 0 to n - 1 do
    ignore (Nvalloc.malloc_to t' th' ~size:64 ~dest:(Nvalloc.root_addr t' i))
  done

let test_crash_recover variant =
  let dev, clock, t = mk ~variant () in
  let th = Nvalloc.thread t clock in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore (Nvalloc.malloc_to t th ~size:64 ~dest:(Nvalloc.root_addr t i))
  done;
  (* Crash without shutdown: everything in CPU caches is lost. *)
  Pmem.Device.crash dev;
  let t', report = Nvalloc.recover ~config:(small_config variant) dev clock in
  Alcotest.(check bool) "unclean shutdown detected" true (report.found_state = Heap.Running);
  (* All published roots must still resolve to live blocks and be freeable. *)
  let th' = Nvalloc.thread t' clock in
  let live = ref 0 in
  for i = 0 to n - 1 do
    let addr = Nvalloc.read_ptr t' ~dest:(Nvalloc.root_addr t' i) in
    if addr > 0 then begin
      incr live;
      Nvalloc.free_from t' th' ~dest:(Nvalloc.root_addr t' i)
    end
  done;
  (* Publishing is the last step of malloc_to, so all roots persisted
     before the crash... but root flushes are synchronous: all survive. *)
  Alcotest.(check int) "all published roots live" n !live;
  (* And allocation still works. *)
  for i = 0 to 50 do
    ignore (Nvalloc.malloc_to t' th' ~size:128 ~dest:(Nvalloc.root_addr t' i))
  done

let test_crash_leak_reclaim () =
  (* LOG variant: blocks sitting in tcaches at crash time are recovered as
     free (WAL replay), so repeated crash/recover cycles do not leak.
     Synchronous pipeline: the test asserts every completed op is durable
     at an arbitrary crash point, which group commit deliberately does
     not promise (a crash forfeits the open group). *)
  let variant = `Log in
  let config = Config.sync (small_config variant) in
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config dev clock in
  let th = Nvalloc.thread t clock in
  for i = 0 to 99 do
    ignore (Nvalloc.malloc_to t th ~size:64 ~dest:(Nvalloc.root_addr t i))
  done;
  (* Free half: those blocks are now in the tcache, still marked in the
     persistent bitmap. *)
  for i = 0 to 49 do
    Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
  done;
  Pmem.Device.crash dev;
  let t', report = Nvalloc.recover ~config dev clock in
  Alcotest.(check bool) "replayed some WAL entries" true (report.wal_entries_replayed > 0);
  (* Exactly the 50 still-published blocks are allocated (plus none leaked). *)
  let allocated = Nvalloc.allocated_small_blocks t' in
  Alcotest.(check int) "tcache blocks reclaimed by replay" 50 allocated

let test_gc_crash_collects_garbage () =
  let variant = `Gc in
  let dev, clock, t = mk ~variant () in
  let th = Nvalloc.thread t clock in
  for i = 0 to 99 do
    ignore (Nvalloc.malloc_to t th ~size:64 ~dest:(Nvalloc.root_addr t i))
  done;
  for i = 0 to 49 do
    Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
  done;
  Pmem.Device.crash dev;
  let t', report = Nvalloc.recover ~config:(small_config variant) dev clock in
  Alcotest.(check bool) "GC marked the live blocks" true (report.gc_blocks_marked >= 50);
  Alcotest.(check int) "GC rebuilt exactly the live set" 50 (Nvalloc.allocated_small_blocks t')

let test_linked_list_gc_reachability () =
  (* Roots only point at the list head; the GC must follow next pointers
     stored inside blocks. *)
  let variant = `Gc in
  let dev, clock, t = mk ~variant () in
  let th = Nvalloc.thread t clock in
  let n = 64 in
  (* node layout: [next:int64][value:int64]; allocate head first. *)
  let head_dest = Nvalloc.root_addr t 0 in
  let head = Nvalloc.malloc_to t th ~size:32 ~dest:head_dest in
  let tail = ref head in
  for i = 1 to n - 1 do
    let next_dest = !tail in
    (* next pointer lives at offset 0 of the previous node *)
    let node = Nvalloc.malloc_to t th ~size:32 ~dest:next_dest in
    Pmem.Device.write_int64 dev (node + 8) (Int64.of_int i);
    Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:node ~len:16;
    tail := node
  done;
  Pmem.Device.crash dev;
  let t', _report = Nvalloc.recover ~config:(small_config variant) dev clock in
  Alcotest.(check int) "whole list survives GC" n (Nvalloc.allocated_small_blocks t');
  (* Walk the recovered list. *)
  let count = ref 0 in
  let cur = ref (Nvalloc.read_ptr t' ~dest:(Nvalloc.root_addr t' 0)) in
  while !cur > 0 && !count < n + 1 do
    incr count;
    cur := Int64.to_int (Pmem.Device.read_int64 dev !cur)
  done;
  Alcotest.(check int) "list walk length" n !count

let suite =
  [
    Alcotest.test_case "small alloc/free" `Quick test_alloc_free_small;
    Alcotest.test_case "large alloc/free" `Quick test_alloc_free_large;
    Alcotest.test_case "addresses unique" `Quick test_distinct_addresses;
    Alcotest.test_case "payload integrity" `Quick test_payload_integrity;
    Alcotest.test_case "mixed sizes churn" `Quick test_size_mix;
    Alcotest.test_case "shutdown+recover (LOG)" `Quick (fun () -> test_shutdown_recover `Log);
    Alcotest.test_case "shutdown+recover (GC)" `Quick (fun () -> test_shutdown_recover `Gc);
    Alcotest.test_case "crash+recover (LOG)" `Quick (fun () -> test_crash_recover `Log);
    Alcotest.test_case "crash+recover (GC)" `Quick (fun () -> test_crash_recover `Gc);
    Alcotest.test_case "crash reclaims tcache blocks (LOG)" `Quick test_crash_leak_reclaim;
    Alcotest.test_case "crash GC collects garbage (GC)" `Quick test_gc_crash_collects_garbage;
    Alcotest.test_case "GC follows pointers in blocks" `Quick test_linked_list_gc_reachability;
  ]
