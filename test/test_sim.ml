(* Simulation kernel: rng determinism, clock/lock semantics, the
   min-clock scheduler, the chunked store, and the XPBuffer bound. *)

let test_rng_determinism () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
  done

let prop_rng_bounds =
  let open QCheck in
  Test.make ~name:"rng int stays in bounds" ~count:300
    (make Gen.(pair (int_range 1 1000000) (int_range 0 10000)))
    (fun (bound, seed) ->
      let rng = Sim.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Sim.Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_rng_shuffle_is_permutation =
  let open QCheck in
  Test.make ~name:"shuffle permutes" ~count:200
    (make Gen.(pair (int_range 0 1000) (list_size (int_bound 50) (int_bound 100))))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      Sim.Rng.shuffle (Sim.Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let test_lock_serializes () =
  let lock = Sim.Lock.create () in
  let a = Sim.Clock.create () and b = Sim.Clock.create () in
  Sim.Lock.acquire lock a;
  Sim.Clock.charge a 1000.0;
  Sim.Lock.release lock a;
  (* b arrives earlier but must wait until a released. *)
  Sim.Lock.acquire lock b;
  Alcotest.(check bool) "b waited for a" true (Sim.Clock.now b >= 1000.0);
  Alcotest.(check int) "contention counted" 1 (Sim.Lock.contention_count lock)

let test_scheduler_min_clock () =
  (* The slower thread's steps interleave after the faster one's. *)
  let order = ref [] in
  let mk name cost n =
    let clock = Sim.Clock.create () in
    let left = ref n in
    {
      Sim.Scheduler.clock;
      step =
        (fun () ->
          if !left = 0 then false
          else begin
            decr left;
            order := name :: !order;
            Sim.Clock.charge clock cost;
            true
          end);
    }
  in
  let fast = mk "f" 10.0 4 in
  let slow = mk "s" 100.0 2 in
  Sim.Scheduler.run [| fast; slow |];
  (* All fast steps (40ns total) happen before the second slow step. *)
  let l = List.rev !order in
  Alcotest.(check (list string)) "interleaving" [ "f"; "s"; "f"; "f"; "f"; "s" ] l;
  Alcotest.(check (float 1e-9)) "makespan" 200.0 (Sim.Scheduler.makespan [| fast; slow |])

let test_store_straddling () =
  let s = Pmem.Store.create ~size:(4 * Pmem.Store.chunk_bytes) in
  (* Write an int64 across a chunk boundary. *)
  let addr = Pmem.Store.chunk_bytes - 3 in
  Pmem.Store.set_i64 s addr 0x1122334455667788L;
  Alcotest.(check int64) "straddling i64" 0x1122334455667788L (Pmem.Store.get_i64 s addr);
  Alcotest.(check int) "byte on far side" 0x11 (Pmem.Store.get_u8 s (addr + 7));
  (* Unwritten chunks read as zero. *)
  Alcotest.(check int64) "lazy zero" 0L (Pmem.Store.get_i64 s (3 * Pmem.Store.chunk_bytes))

let prop_store_model =
  let open QCheck in
  Test.make ~name:"store agrees with a Bytes model" ~count:100
    (make
       Gen.(
         list_size (int_range 1 60)
           (pair (int_range 0 (65536 - 8)) (int_range 0 0xFFFF))))
    (fun writes ->
      let s = Pmem.Store.create ~size:65536 in
      let model = Bytes.make 65536 '\000' in
      List.iter
        (fun (addr, v) ->
          match v mod 3 with
          | 0 ->
              Pmem.Store.set_u8 s addr (v land 0xFF);
              Bytes.set_uint8 model addr (v land 0xFF)
          | 1 ->
              Pmem.Store.set_u16 s addr v;
              Bytes.set_uint16_le model addr v
          | _ ->
              Pmem.Store.set_i64 s addr (Int64.of_int v);
              Bytes.set_int64_le model addr (Int64.of_int v))
        writes;
      let ok = ref true in
      List.iter
        (fun (addr, _) ->
          if Pmem.Store.get_i64 s addr <> Bytes.get_int64_le model addr then ok := false)
        writes;
      !ok)

let test_xpbuffer_bounds_bandwidth () =
  let lat = Pmem.Latency.default in
  let wpq = Pmem.Xpbuffer.create lat in
  (* Hammer it far above the drain rate: completions must fall behind
     arrival times by at least the queueing discipline. *)
  let finish = ref 0.0 in
  let n = 10_000 in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 10.0 (* 10 ns between flushes: oversubscribed *) in
    finish := Pmem.Xpbuffer.admit wpq ~now ~media_ns:lat.Pmem.Latency.rand_flush_ns
  done;
  (* Sustained throughput can't beat media_ns / parallelism per line. *)
  let min_duration =
    float_of_int n *. lat.Pmem.Latency.rand_flush_ns /. lat.Pmem.Latency.media_parallelism
  in
  Alcotest.(check bool) "bandwidth bound holds" true (!finish >= min_duration *. 0.9);
  Alcotest.(check bool) "stalls recorded" true (Pmem.Xpbuffer.stall_time wpq > 0.0)

let test_smootherstep_decay_limit () =
  Alcotest.(check bool) "limit shrinks over time" true
    (Support.Smootherstep.limit ~total:1000 ~elapsed_fraction:0.8
    < Support.Smootherstep.limit ~total:1000 ~elapsed_fraction:0.2)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    QCheck_alcotest.to_alcotest prop_rng_bounds;
    QCheck_alcotest.to_alcotest prop_rng_shuffle_is_permutation;
    Alcotest.test_case "lock serializes" `Quick test_lock_serializes;
    Alcotest.test_case "scheduler steps min clock" `Quick test_scheduler_min_clock;
    Alcotest.test_case "store straddles chunks" `Quick test_store_straddling;
    QCheck_alcotest.to_alcotest prop_store_model;
    Alcotest.test_case "xpbuffer bounds bandwidth" `Quick test_xpbuffer_bounds_bandwidth;
    Alcotest.test_case "smootherstep decay limit" `Quick test_smootherstep_decay_limit;
  ]
