(* Guard protocol corners the media suite leaves uncovered: primary-wins
   resync when both copies carry valid checksums but diverged, primary
   restoration when only the replica's checksum is broken, the bless
   mutation on silent bit-rot (no poison involved), and the
   replica-first persistence order of region-table slot writes, proven
   by a deterministic crash sweep over every flush of a
   [Heap.register_region] under the synchronous pipeline. *)

open Nvalloc_core

let guard_fixture () =
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let clock = Sim.Clock.create () in
  let r =
    { Guard.primary = 0; len = 14; p_ck = 14; replica = 64; r_ck = 78; cat = Pmem.Stats.Meta }
  in
  for i = 0 to r.Guard.len - 1 do
    Pmem.Device.write_u8 dev i (i + 1)
  done;
  Guard.refresh dev r;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:16;
  Guard.write_replica dev clock r;
  (dev, clock, r)

let bytes_at dev addr len = List.init len (fun i -> Pmem.Device.read_u8 dev (addr + i))
let primary_bytes dev (r : Guard.record) = bytes_at dev r.Guard.primary r.Guard.len
let replica_bytes dev (r : Guard.record) = bytes_at dev r.Guard.replica r.Guard.len

(* Both checksums valid, contents diverged (a committed primary update
   whose replica mirror was lost): primary must win and the replica must
   be resynced from it — never the reverse. *)
let test_primary_wins_stale_replica () =
  let dev, clock, r = guard_fixture () in
  let stale = replica_bytes dev r in
  for i = 0 to r.Guard.len - 1 do
    Pmem.Device.write_u8 dev (r.Guard.primary + i) (100 + i)
  done;
  Guard.refresh dev r;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:r.Guard.primary ~len:16;
  Alcotest.(check bool) "primary valid" true (Guard.primary_ok dev r);
  Alcotest.(check bool) "replica still valid on its own" true (Guard.replica_ok dev r);
  Alcotest.(check (list int)) "replica is the stale content" stale (replica_bytes dev r);
  Alcotest.(check bool)
    "diverged copies repair" true
    (Guard.verify_repair dev clock r = Guard.Repaired);
  Alcotest.(check (list int))
    "replica resynced from the primary" (primary_bytes dev r) (replica_bytes dev r);
  Alcotest.(check bool) "second pass clean" true (Guard.verify_repair dev clock r = Guard.Clean)

(* Replica checksum broken (its line rotted), primary intact: repair
   rewrites the replica and the primary bytes never change. *)
let test_primary_wins_bad_replica_checksum () =
  let dev, clock, r = guard_fixture () in
  let original = primary_bytes dev r in
  Pmem.Device.write_u8 dev r.Guard.r_ck
    (Pmem.Device.read_u8 dev r.Guard.r_ck lxor 0xFF);
  Alcotest.(check bool) "replica invalid" false (Guard.replica_ok dev r);
  Alcotest.(check bool)
    "repairs" true
    (Guard.verify_repair dev clock r = Guard.Repaired);
  Alcotest.(check (list int)) "primary untouched" original (primary_bytes dev r);
  Alcotest.(check bool) "replica valid again" true (Guard.replica_ok dev r);
  Alcotest.(check (list int)) "replica matches primary" original (replica_bytes dev r)

(* The bless mutation on silent bit-rot: no poison anywhere, just a
   flipped primary byte. A correct scrub would restore the byte from
   the replica; bless recomputes the checksum over the garbage and then
   propagates it into the replica — both copies end up "valid" and
   wrong, which is exactly why --broken-scrub must be caught downstream
   by the oracle rather than by any checksum. *)
let test_bless_blesses_bitrot () =
  let dev, clock, r = guard_fixture () in
  let original = primary_bytes dev r in
  Pmem.Device.write_u8 dev r.Guard.primary
    (Pmem.Device.read_u8 dev r.Guard.primary lxor 0x40);
  Alcotest.(check bool) "rot detected by the checksum" false (Guard.primary_ok dev r);
  Guard.bless dev clock r;
  Alcotest.(check bool) "garbage blessed as valid" true (Guard.primary_ok dev r);
  Alcotest.(check bool) "bytes are still the garbage" true (primary_bytes dev r <> original);
  Alcotest.(check bool) "replica blessed too" true (Guard.replica_ok dev r);
  Alcotest.(check (list int))
    "replica carries the garbage" (primary_bytes dev r) (replica_bytes dev r)

(* Replica-first slot writes. Under the synchronous pipeline with
   replication on, one [register_region] costs exactly three flushes in
   protocol order: the mirror line, the shared checksum line, then the
   primary slot commit. Crashing after each k and repairing must give
   all-or-nothing: k=1 rolls the half-written mirror back (no region),
   k=2 rolls forward from the persisted mirror+checksum (full region),
   k=3 is simply complete — never a torn entry, never a lost line. *)
let sync_replicated =
  Config.sync { Config.log_default with Config.media_replication = true }

let region_addr = 8 * 1024 * 1024
let region_size = 4 * 1024 * 1024

let fresh_heap () =
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  let clock = Sim.Clock.create () in
  let heap = Heap.init dev sync_replicated in
  (* Heap.init formats a volatile image; persist it so the sweep's
     baseline is a clean heap and the only unpersisted state is the
     register_region under test. *)
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  (dev, clock, heap)

let test_register_region_flush_count () =
  let dev, clock, heap = fresh_heap () in
  let before = Pmem.Stats.flushes (Pmem.Device.stats dev) in
  Heap.register_region heap clock ~addr:region_addr ~size:region_size;
  Alcotest.(check int)
    "replica line, checksum line, primary commit" 3
    (Pmem.Stats.flushes (Pmem.Device.stats dev) - before)

let test_register_region_crash_sweep () =
  let expected_after_repair = [ (1, []); (2, [ (region_addr, region_size) ]); (3, [ (region_addr, region_size) ]) ] in
  List.iter
    (fun (k, expected) ->
      let dev, clock, heap = fresh_heap () in
      Pmem.Device.schedule_crash_after dev k;
      (try
         Heap.register_region heap clock ~addr:region_addr ~size:region_size;
         Pmem.Device.cancel_scheduled_crash dev;
         Pmem.Device.crash dev
       with Pmem.Device.Injected_crash -> ());
      let c2 = Sim.Clock.create () in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d superblock survives" k)
        true
        (Heap.verify_superblock dev c2 = Guard.Clean);
      let repaired, lost = Heap.verify_regions dev c2 in
      Alcotest.(check int) (Printf.sprintf "k=%d nothing lost" k) 0 lost;
      (* k=3 persisted everything, so there is nothing to repair; the
         two partial cuts each heal exactly the one in-flight line. *)
      Alcotest.(check int)
        (Printf.sprintf "k=%d repairs" k)
        (if k < 3 then 1 else 0)
        repaired;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "k=%d all-or-nothing region table" k)
        expected (Heap.read_regions dev))
    expected_after_repair

let suite =
  [
    Alcotest.test_case "primary wins over a stale (valid) replica" `Quick
      test_primary_wins_stale_replica;
    Alcotest.test_case "primary wins over a broken replica checksum" `Quick
      test_primary_wins_bad_replica_checksum;
    Alcotest.test_case "bless blesses silent bit-rot into both copies" `Quick
      test_bless_blesses_bitrot;
    Alcotest.test_case "register_region costs replica+ck+primary flushes" `Quick
      test_register_region_flush_count;
    Alcotest.test_case "slot-write crash sweep is all-or-nothing" `Quick
      test_register_region_crash_sweep;
  ]
