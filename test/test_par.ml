(* Domain-parallel backend: pool semantics (index-ordered results,
   exception propagation), pure RNG splitting, the real-mutex lock,
   the differential history runner (clean pass, mutation teeth, crash
   scenarios) and the seed-sweep determinism guarantee — identical
   aggregated verdicts for any domain count. *)

let test_pool_result_order () =
  let pool = Par.Pool.create ~domains:4 in
  let results = Par.Pool.run pool ~n:23 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land by index, not completion order"
    (Array.init 23 (fun i -> i * i))
    results;
  (* Degenerate widths still cover every index. *)
  let seq = Par.Pool.run (Par.Pool.create ~domains:1) ~n:5 (fun i -> i + 1) in
  Alcotest.(check (array int)) "one domain runs inline" [| 1; 2; 3; 4; 5 |] seq;
  Alcotest.(check (array int)) "zero tasks" [||] (Par.Pool.run pool ~n:0 (fun i -> i))

exception Task_failed of int

let test_pool_error_propagation () =
  let pool = Par.Pool.create ~domains:3 in
  (* The lowest failing index wins, and the other tasks still ran. *)
  let ran = Array.make 12 false in
  (match
     Par.Pool.run pool ~n:12 (fun i ->
         ran.(i) <- true;
         if i = 7 || i = 4 then raise (Task_failed i))
   with
  | exception Task_failed i -> Alcotest.(check int) "lowest failing index" 4 i
  | _ -> Alcotest.fail "expected Task_failed");
  Alcotest.(check bool) "non-failing tasks completed" true (Array.for_all Fun.id ran);
  match Par.Pool.create ~domains:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains=0 accepted"

let test_rng_split_pure_and_deterministic () =
  let root = Sim.Rng.create 42 in
  let a = Array.init 8 (fun i -> Sim.Rng.int (Sim.Rng.split root i) 1_000_000) in
  (* Splitting never advances the root, and child i is a function of
     (seed, i) alone — so re-splitting, in any order, reproduces the
     same children. *)
  let b = Array.init 8 (fun i -> Sim.Rng.int (Sim.Rng.split root (7 - i)) 1_000_000) in
  Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "child %d" i) v b.(7 - i)) a;
  let after = Sim.Rng.int root 1_000_000 in
  let fresh = Sim.Rng.int (Sim.Rng.create 42) 1_000_000 in
  Alcotest.(check int) "root stream unperturbed by splitting" fresh after;
  let distinct = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "children are distinct streams" 8 (List.length distinct)

let test_lock_contention_counting () =
  let lock = Par.Lock.create () in
  Par.Lock.with_lock lock (fun () -> ());
  Alcotest.(check int) "uncontended" 0 (Par.Lock.contention_count lock);
  (* Exception safety: the lock is free again after a raising body. *)
  (try Par.Lock.with_lock lock (fun () -> failwith "boom") with Failure _ -> ());
  Par.Lock.with_lock lock (fun () -> ());
  (* Two domains hammering one lock must make progress and typically
     collide; the counter only ever grows. *)
  let n = ref 0 in
  ignore
    (Par.Pool.run (Par.Pool.create ~domains:2) ~n:2 (fun _ ->
         for _ = 1 to 2000 do
           Par.Lock.with_lock lock (fun () -> incr n)
         done)
      : unit array);
  Alcotest.(check int) "critical sections all ran" 4000 !n;
  Alcotest.(check bool) "counter non-negative" true (Par.Lock.contention_count lock >= 0)

(* One differential run per NVAlloc variant, on one and two domains: the
   par run must pass the full model validation and agree with the sim
   cross-run on executed ops. *)
let test_run_history_differential () =
  List.iter
    (fun alloc ->
      List.iter
        (fun domains ->
          let pool = Par.Pool.create ~domains in
          let sc = { Check.History.alloc; seed = 3; ops = 400; threads = 3; crash = None } in
          match Par.Runner.run_history pool sc with
          | Error e -> Alcotest.failf "%s (%d domains): %s" alloc domains e
          | Ok r ->
              Alcotest.(check int)
                (Printf.sprintf "%s executed everything" alloc)
                400 r.Par.Runner.executed)
        [ 1; 2 ])
    [ "NVAlloc-LOG"; "NVAlloc-GC"; "NVAlloc-IC" ]

let test_run_history_crash_scenario () =
  let pool = Par.Pool.create ~domains:2 in
  let sc =
    { Check.History.alloc = "NVAlloc-LOG"; seed = 1; ops = 500; threads = 2; crash = Some 120 }
  in
  match Par.Runner.run_history pool sc with
  | Error e -> Alcotest.failf "crash scenario: %s" e
  | Ok r ->
      Alcotest.(check bool)
        "crash fired before the workload finished" true
        (r.Par.Runner.executed < 500)

let test_run_history_mutation_teeth () =
  let pool = Par.Pool.create ~domains:2 in
  let sc =
    { Check.History.alloc = "NVAlloc-IC"; seed = 1; ops = 400; threads = 2; crash = None }
  in
  match Par.Runner.run_history ~broken_header:true pool sc with
  | Ok _ -> Alcotest.fail "the packed-header mis-decode survived the domain backend"
  | Error e ->
      Alcotest.(check bool)
        "verdict names the domain backend" true
        (String.length e >= 14 && String.sub e 0 14 = "domain backend")

(* Satellite: seed-sweep determinism. The aggregated verdict — passes
   and the (shrunk) counterexample alike — must be identical for any
   domain count, on both the clean path and a failing (mutated) one. *)
let verdict_of = function
  | None -> "ok"
  | Some { Check.Runner.original; shrunk; reason } ->
      Printf.sprintf "cex original=%s shrunk=%s reason=%s"
        (Check.History.to_string original)
        (Check.History.to_string shrunk)
        reason

let test_check_sweep_determinism () =
  let sweep ?broken_header domains =
    verdict_of
      (Par.Sweep.check_sweep ?broken_header
         (Par.Pool.create ~domains)
         ~alloc:"NVAlloc-LOG" ~seed:5 ~runs:6 ~ops:300 ~threads:2 ())
  in
  let clean1 = sweep 1 in
  Alcotest.(check string) "clean sweep passes" "ok" clean1;
  Alcotest.(check string) "clean verdict, 1 vs 3 domains" clean1 (sweep 3);
  Alcotest.(check string) "clean verdict, 1 vs 4 domains" clean1 (sweep 4);
  let broken1 = sweep ~broken_header:true 1 in
  Alcotest.(check bool)
    "mutated sweep fails" true
    (String.length broken1 > 3 && String.sub broken1 0 3 = "cex");
  Alcotest.(check string) "counterexample, 1 vs 3 domains" broken1 (sweep ~broken_header:true 3)

let fuzz_verdict_of = function
  | None -> "ok"
  | Some { Fault.Fuzz.original; shrunk; reason } ->
      Printf.sprintf "cex original=%s shrunk=%s reason=%s"
        (Fault.Plan.to_string original) (Fault.Plan.to_string shrunk) reason

let test_fuzz_sweep_determinism () =
  let sweep ?broken domains =
    fuzz_verdict_of
      (Par.Sweep.fuzz_sweep ?broken (Par.Pool.create ~domains) ~seed:9 ~runs:4 ())
  in
  let clean1 = sweep 1 in
  Alcotest.(check string) "clean fuzz sweep passes" "ok" clean1;
  Alcotest.(check string) "clean verdict, 1 vs 3 domains" clean1 (sweep 3);
  let broken1 = sweep ~broken:true 1 in
  Alcotest.(check bool)
    "mutated fuzz sweep fails" true
    (String.length broken1 > 3 && String.sub broken1 0 3 = "cex");
  Alcotest.(check string) "counterexample, 1 vs 3 domains" broken1 (sweep ~broken:true 3)

let suite =
  [
    Alcotest.test_case "pool returns results by index" `Quick test_pool_result_order;
    Alcotest.test_case "pool re-raises the lowest failing index" `Quick
      test_pool_error_propagation;
    Alcotest.test_case "rng split is pure and order-independent" `Quick
      test_rng_split_pure_and_deterministic;
    Alcotest.test_case "real lock: exception safety and contention" `Quick
      test_lock_contention_counting;
    Alcotest.test_case "differential history run (LOG/GC/IC, 1 and 2 domains)" `Slow
      test_run_history_differential;
    Alcotest.test_case "differential crash scenario" `Quick test_run_history_crash_scenario;
    Alcotest.test_case "mutation teeth on the domain backend" `Quick
      test_run_history_mutation_teeth;
    Alcotest.test_case "check-sweep verdicts identical for any domain count" `Slow
      test_check_sweep_determinism;
    Alcotest.test_case "fuzz-sweep verdicts identical for any domain count" `Slow
      test_fuzz_sweep_determinism;
  ]
