(* The DAX file-space manager: region recycling, space accounting, and
   argument validation. *)

let mib = 1024 * 1024

let mk ?(size = 64 * mib) () =
  let dev = Pmem.Device.create ~size () in
  (Pmem.Dax.create dev, Sim.Clock.create ())

let test_unaligned_unmap_rejected () =
  let dax, clock = mk () in
  let base = Pmem.Dax.mmap dax clock ~size:(4 * mib) in
  Alcotest.check_raises "unaligned addr"
    (Invalid_argument
       (Printf.sprintf "Pmem.Dax.munmap: unaligned addr %d (page size %d)" (base + 5)
          Pmem.Dax.page_size))
    (fun () -> Pmem.Dax.munmap dax clock ~addr:(base + 5) ~size:(4 * mib) ());
  Pmem.Dax.munmap dax clock ~addr:base ~size:(4 * mib) ()

(* Mapping n 4 MB regions, unmapping them all, and mapping again must
   recycle the same address space: first-fit over a fully coalesced free
   list hands back the original base, and the accounting returns to
   zero in between. *)
let prop_recycle =
  QCheck.Test.make ~name:"mmap/munmap recycles 4 MB regions" ~count:50
    QCheck.(pair (int_range 1 8) bool)
    (fun (n, reverse) ->
      let dax, clock = mk () in
      let bases = List.init n (fun _ -> Pmem.Dax.mmap dax clock ~size:(4 * mib)) in
      let distinct = List.sort_uniq compare bases in
      if List.length distinct <> n then QCheck.Test.fail_report "overlapping regions";
      if Pmem.Dax.mapped_bytes dax <> n * 4 * mib then
        QCheck.Test.fail_report "mapped_bytes after mmaps";
      List.iter
        (fun addr -> Pmem.Dax.munmap dax clock ~addr ~size:(4 * mib) ())
        (if reverse then List.rev bases else bases);
      if Pmem.Dax.mapped_bytes dax <> 0 then
        QCheck.Test.fail_report "mapped_bytes not zero after unmapping everything";
      let again = Pmem.Dax.mmap dax clock ~size:(4 * mib) in
      if again <> List.hd bases then
        QCheck.Test.fail_report "freed space not recycled from the original base";
      true)

(* Random interleavings of mmap/munmap against a model map: the device
   never hands out overlapping regions and mapped_bytes always equals
   the model's total. *)
let prop_accounting =
  QCheck.Test.make ~name:"mmap/munmap accounting matches a model" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 40) (pair bool (int_range 1 4)))
    (fun ops ->
      let dax, clock = mk () in
      let live = ref [] in
      List.iter
        (fun (do_map, pages_ish) ->
          if do_map || !live = [] then begin
            let size = pages_ish * mib in
            let addr = Pmem.Dax.mmap dax clock ~size in
            List.iter
              (fun (a, s) ->
                if addr < a + s && a < addr + size then
                  QCheck.Test.fail_report "handed out an overlapping region")
              !live;
            live := (addr, size) :: !live
          end
          else begin
            match !live with
            | (addr, size) :: rest ->
                Pmem.Dax.munmap dax clock ~addr ~size ();
                live := rest
            | [] -> ()
          end;
          let total = List.fold_left (fun acc (_, s) -> acc + s) 0 !live in
          if Pmem.Dax.mapped_bytes dax <> total then
            QCheck.Test.fail_report "mapped_bytes diverged from model")
        ops;
      true)

let suite =
  [
    Alcotest.test_case "unaligned unmap rejected" `Quick test_unaligned_unmap_rejected;
    QCheck_alcotest.to_alcotest prop_recycle;
    QCheck_alcotest.to_alcotest prop_accounting;
  ]
