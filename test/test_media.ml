(* Media-fault resilience: the device's poisoned-line and at-rest bit-rot
   model, the Guard checksum+replica repair protocol, demand repair and
   quarantine-based degradation in the allocator, recovery hardening and
   its idempotence under double faults and crashes landing inside a
   scrub, plus the stats-schema and crash-plan surface the faults ride
   on. *)

open Nvalloc_core

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let cl = Pmem.Cacheline.size

(* --- device model -------------------------------------------------------- *)

let test_device_poison () =
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  Pmem.Device.write_int64 dev 256 0xABCDL;
  Pmem.Device.poison dev ~line:4;
  Alcotest.(check bool) "is_poisoned" true (Pmem.Device.is_poisoned dev ~line:4);
  Alcotest.(check int) "poisoned_count" 1 (Pmem.Device.poisoned_count dev);
  Alcotest.(check bool) "poisoned_within spanning read" true
    (Pmem.Device.poisoned_within dev ~addr:250 ~len:16);
  (* Reads of the line raise the typed error, naming the line; writes are
     not checked (stores to failed media are absorbed, as on real PM). *)
  (match Pmem.Device.read_int64 dev 256 with
  | exception Pmem.Device.Media_error { line; _ } ->
      Alcotest.(check int) "error names the line" 4 line
  | _ -> Alcotest.fail "read of a poisoned line succeeded");
  Pmem.Device.write_int64 dev 260 1L;
  Alcotest.(check bool) "poison hit counted" true
    (Pmem.Stats.poison_hits (Pmem.Device.stats dev) >= 1);
  (* The line's content is deterministically scrambled: a second device
     poisoned at the same line holds the same garbage. *)
  let dev' = Pmem.Device.create ~size:(1 lsl 20) () in
  Pmem.Device.poison dev' ~line:4;
  Pmem.Device.clear_poison dev ~line:4;
  Pmem.Device.clear_poison dev' ~line:4;
  (* Compare past the 8 bytes the unchecked write above replaced. *)
  Alcotest.(check bool) "scramble is seed-deterministic" true
    (Pmem.Device.read_int64 dev 272 = Pmem.Device.read_int64 dev' 272);
  Alcotest.(check bool) "scramble destroyed the payload" true
    (Pmem.Device.read_int64 dev 256 <> 0xABCDL)

let test_device_bitrot_persisted_only () =
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let clock = Sim.Clock.create () in
  Pmem.Device.write_int64 dev 128 0x5AL;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:128 ~len:8;
  Pmem.Device.corrupt_bit dev ~addr:128 ~bit:0;
  (* Rot lives in the media image only: the cached copy still reads
     clean, and only the crash promotion exposes the flip. *)
  Alcotest.(check int64) "cached read unaffected" 0x5AL (Pmem.Device.read_int64 dev 128);
  Alcotest.(check int) "flip counted" 1 (Pmem.Stats.bitrot_flips (Pmem.Device.stats dev));
  Pmem.Device.crash dev;
  Alcotest.(check int64) "crash promotes the rotten byte" 0x5BL
    (Pmem.Device.read_int64 dev 128)

let test_device_scrub_lines () =
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let clock = Sim.Clock.create () in
  Pmem.Device.write_int64 dev 0 7L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:8;
  Pmem.Device.corrupt_bit dev ~addr:0 ~bit:3;
  (* A dirty line is skipped (its writeback overwrites the media anyway)
     and a poisoned one is the repair path's job, not the scrubber's. *)
  Pmem.Device.write_int64 dev 64 9L;
  Pmem.Device.poison dev ~line:2;
  Alcotest.(check int) "one drifted line rewritten" 1
    (Pmem.Device.scrub_lines dev ~addr:0 ~len:(3 * cl));
  Pmem.Device.crash dev;
  Alcotest.(check int64) "scrubbed line survives the crash intact" 7L
    (Pmem.Device.read_int64 dev 0)

(* --- guard protocol ------------------------------------------------------ *)

let guard_fixture () =
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let clock = Sim.Clock.create () in
  let r =
    { Guard.primary = 0; len = 14; p_ck = 14; replica = 64; r_ck = 78; cat = Pmem.Stats.Meta }
  in
  for i = 0 to 13 do
    Pmem.Device.write_u8 dev i (i + 1)
  done;
  Guard.refresh dev r;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:16;
  Guard.write_replica dev clock r;
  (dev, clock, r)

let guarded_bytes dev (r : Guard.record) =
  List.init r.Guard.len (fun i -> Pmem.Device.read_u8 dev (r.Guard.primary + i))

let test_guard_repair_poisoned_primary () =
  let dev, clock, r = guard_fixture () in
  let original = guarded_bytes dev r in
  Alcotest.(check bool) "clean after setup" true (Guard.verify_repair dev clock r = Guard.Clean);
  Pmem.Device.poison dev ~line:0;
  Alcotest.(check bool) "repaired from replica" true
    (Guard.verify_repair dev clock r = Guard.Repaired);
  Alcotest.(check bool) "poison cleared" false (Pmem.Device.is_poisoned dev ~line:0);
  Alcotest.(check (list int)) "bytes restored" original (guarded_bytes dev r);
  Alcotest.(check bool) "second verify is clean" true
    (Guard.verify_repair dev clock r = Guard.Clean)

let test_guard_repair_poisoned_replica () =
  let dev, clock, r = guard_fixture () in
  Pmem.Device.poison dev ~line:1;
  Alcotest.(check bool) "replica rebuilt from primary" true
    (Guard.verify_repair dev clock r = Guard.Repaired);
  Alcotest.(check bool) "replica verifies" true (Guard.replica_ok dev r)

let test_guard_double_fault_lost () =
  let dev, clock, r = guard_fixture () in
  Pmem.Device.poison dev ~line:0;
  Pmem.Device.poison dev ~line:1;
  Alcotest.(check bool) "both copies damaged is Lost" true
    (Guard.verify_repair dev clock r = Guard.Lost)

let test_guard_bless_is_the_bug () =
  let dev, clock, r = guard_fixture () in
  let original = guarded_bytes dev r in
  Pmem.Device.poison dev ~line:0;
  Guard.bless dev clock r;
  (* The mutation accepts the scrambled primary as truth: checksum valid,
     poison gone, bytes garbage, and the replica now agrees with it. *)
  Alcotest.(check bool) "checksum blessed" true (Guard.primary_ok dev r);
  Alcotest.(check bool) "bytes are garbage" true (guarded_bytes dev r <> original);
  Alcotest.(check bool) "garbage propagated to the replica" true (Guard.replica_ok dev r)

(* --- config surface (media knobs) ---------------------------------------- *)

let test_media_config_validation () =
  let rejects name field cfg =
    match Config.validate cfg with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s names the field (%s)" name msg)
          true (contains msg field)
    | () -> Alcotest.failf "%s: accepted" name
  in
  let d = { Config.log_default with Config.media_replication = true } in
  Config.validate d;
  Config.validate { d with Config.media_scrub = true };
  rejects "zero repair attempts" "media_max_repair" { d with Config.media_max_repair = 0 };
  rejects "zero scrub interval" "media_scrub_interval_ns"
    { d with Config.media_scrub = true; media_scrub_interval_ns = 0.0 };
  rejects "negative scrub interval" "media_scrub_interval_ns"
    { d with Config.media_scrub = true; media_scrub_interval_ns = -1.0 };
  rejects "scrub without replication" "media_scrub"
    { Config.log_default with Config.media_scrub = true };
  rejects "replication without booklog" "media_replication"
    { d with Config.log_bookkeeping = false };
  (* Replication needs room for the guard areas: a device that fits the
     bare layout but not the replicas is rejected up front. *)
  (match Config.validate ~dev_size:4096 d with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "small device names replication" true
        (contains msg "media_replication")
  | () -> Alcotest.fail "tiny device accepted with replication");
  Config.validate ~dev_size:(64 * 1024 * 1024) d

(* --- crash-plan surface --------------------------------------------------- *)

let test_plan_media_roundtrip () =
  let media = "v=log seed=7 ops=100 crash=50 torn=line tseed=0 rcrash=- poison=3 pseed=11 rot=2 rseed=12 scrub=1" in
  (match Fault.Plan.of_string media with
  | Error e -> Alcotest.failf "media plan rejected: %s" e
  | Ok p ->
      Alcotest.(check bool) "media_active" true (Fault.Plan.media_active p);
      Alcotest.(check string) "roundtrip" media (Fault.Plan.to_string p));
  (* Legacy plans parse with media off and render exactly as before. *)
  let legacy = "v=gc seed=1 ops=40 crash=1 torn=line tseed=0 rcrash=-" in
  match Fault.Plan.of_string legacy with
  | Error e -> Alcotest.failf "legacy plan rejected: %s" e
  | Ok p ->
      Alcotest.(check bool) "legacy not media_active" false (Fault.Plan.media_active p);
      Alcotest.(check int) "poison defaults to 0" 0 p.Fault.Plan.poison;
      Alcotest.(check bool) "scrub defaults to off" false p.Fault.Plan.scrub;
      Alcotest.(check string) "legacy rendering unchanged" legacy (Fault.Plan.to_string p)

let prop_media_plans_roundtrip =
  let open QCheck in
  Test.make ~name:"sampled media plans print/parse bit-for-bit" ~count:200
    (make Gen.(int_bound 1_000_000))
    (fun seed ->
      let p = Fault.Plan.sample ~media:true (Sim.Rng.create seed) in
      Fault.Plan.media_active p
      && p.Fault.Plan.variant = Fault.Plan.Log
      && Fault.Plan.of_string (Fault.Plan.to_string p) = Ok p)

(* --- stats schema (satellite: nvalloc/stats/v3) --------------------------- *)

let test_stats_v3_compat () =
  let doc schema extra =
    Printf.sprintf
      {|{"schema":"%s","trace_limit":8,"flushes":7,"reflushes":1,
         "sequential_flushes":4,"random_flushes":3,"reflush_ratio":0.14,
         "flush_ns":{"meta":100,"wal":200,"log":0,"data":300},
         "fence_ns":20,"read_ns":50,"search_ns":75,"other_ns":0%s,
         "trace":[]}|}
      schema extra
  in
  let batching =
    {|,"fences_saved":3,"flushes_coalesced":1,"group_commits":1,
      "group_commit_entries":5,"group_commit_size":5|}
  in
  (* v1 and v2 documents predate the media counters: both load with the
     counters at zero. *)
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v1" "") with
  | Error e -> Alcotest.fail ("v1 document rejected: " ^ e)
  | Ok st ->
      Alcotest.(check int) "v1: media_repairs 0" 0 (Pmem.Stats.media_repairs st);
      Alcotest.(check int) "v1: scrub_passes 0" 0 (Pmem.Stats.scrub_passes st));
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v2" batching) with
  | Error e -> Alcotest.fail ("v2 document rejected: " ^ e)
  | Ok st ->
      Alcotest.(check int) "v2: batching counters load" 3 (Pmem.Stats.fences_saved st);
      Alcotest.(check int) "v2: poison_hits 0" 0 (Pmem.Stats.poison_hits st);
      Alcotest.(check int) "v2: bitrot_flips 0" 0 (Pmem.Stats.bitrot_flips st));
  (* A v3 document missing the media counters is truncated, not legacy. *)
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v3" batching) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v3 document without media counters accepted");
  let media =
    {|,"poison_hits":2,"media_repairs":4,"media_quarantines":1,
      "bitrot_flips":6,"scrub_passes":3|}
  in
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v3" (batching ^ media)) with
  | Error e -> Alcotest.fail ("complete v3 document rejected: " ^ e)
  | Ok st ->
      Alcotest.(check int) "v3: media_repairs load" 4 (Pmem.Stats.media_repairs st);
      Alcotest.(check int) "v3: quarantines load" 1 (Pmem.Stats.media_quarantines st);
      (* v3 predates the metadata-layout counters: they read back zero. *)
      Alcotest.(check int) "v3: extents_coalesced 0" 0 (Pmem.Stats.extents_coalesced st);
      Alcotest.(check int) "v3: header_flush_lines 0" 0 (Pmem.Stats.header_flush_lines st));
  (* A v4 document missing the metadata-layout counters is truncated. *)
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v4" (batching ^ media)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v4 document without metadata-layout counters accepted");
  let layout =
    {|,"extents_coalesced":9,"extent_tree_lookups":120,"header_flush_lines":33|}
  in
  match Pmem.Stats.of_json_string (doc "nvalloc/stats/v4" (batching ^ media ^ layout)) with
  | Error e -> Alcotest.fail ("complete v4 document rejected: " ^ e)
  | Ok st ->
      Alcotest.(check int) "v4: extents_coalesced load" 9 (Pmem.Stats.extents_coalesced st);
      Alcotest.(check int) "v4: extent_tree_lookups load" 120
        (Pmem.Stats.extent_tree_lookups st);
      Alcotest.(check int) "v4: header_flush_lines load" 33 (Pmem.Stats.header_flush_lines st)

(* --- allocator: demand repair, quarantine, degradation -------------------- *)

let media_config =
  { (Fault.Plan.config Fault.Plan.Log) with Config.media_replication = true }

let mk_media () =
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config:media_config dev clock in
  let th = Nvalloc.thread t clock in
  (dev, clock, t, th)

(* Publish [n] small blocks at roots [0, n). *)
let publish_n t th n =
  Array.init n (fun i ->
      let dest = Nvalloc.root_addr t i in
      let addr = Nvalloc.malloc_to t th ~size:48 ~dest in
      (dest, addr))

let test_demand_repair_zero_loss () =
  let dev, clock, t, th = mk_media () in
  let published = publish_n t th 96 in
  (* Rot before poison — the injectors partner-exclude against faults
     already present, and with only a handful of guard records the
     reverse order can leave rot no record with both copies healthy. *)
  let rotted = Nvalloc.inject_bitrot t ~seed:9 ~flips:2 in
  Alcotest.(check bool) "some bits rotted" true (rotted > 0);
  let injected = Nvalloc.seed_poison t ~seed:5 ~count:3 in
  Alcotest.(check bool) "some lines poisoned" true (injected > 0);
  (* The next operation's one-integer gate repairs every poisoned line
     before any metadata is read: nothing raises, nothing is lost. *)
  let extra = Nvalloc.malloc_to t th ~size:48 ~dest:(Nvalloc.root_addr t 100) in
  Alcotest.(check bool) "allocation proceeds" true (extra > 0);
  Alcotest.(check int) "all poison healed" 0 (Pmem.Device.poisoned_count dev);
  Alcotest.(check bool) "repairs counted" true
    (Pmem.Stats.media_repairs (Pmem.Device.stats dev) >= injected);
  Alcotest.(check int) "nothing quarantined" 0 (Nvalloc.quarantined_slabs t);
  Array.iter
    (fun (dest, addr) ->
      Alcotest.(check int) "publication intact" addr (Nvalloc.read_ptr t ~dest);
      Alcotest.(check bool) "owner still answers" true
        (Nvalloc.owner_of_addr t addr <> None))
    published;
  match Nvalloc.integrity_walk t clock with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "integrity walk after repair: %s" e

let test_runtime_quarantine_degrades () =
  let dev, clock, t, th = mk_media () in
  let published = publish_n t th 64 in
  let _, victim = published.(0) in
  let base =
    match Nvalloc.owner_of_addr t victim with
    | Some { Nvalloc.base; is_slab = true; _ } -> base
    | _ -> Alcotest.fail "victim not slab-owned"
  in
  (* Both copies of the slab header: unrepairable, must quarantine. *)
  let r = Slab.guard_record base in
  Pmem.Device.poison dev ~line:(r.Guard.primary / cl);
  Pmem.Device.poison dev ~line:(r.Guard.replica / cl);
  let before = Nvalloc.dropped_frees t in
  ignore (Nvalloc.malloc_to t th ~size:48 ~dest:(Nvalloc.root_addr t 200) : int);
  Alcotest.(check int) "slab quarantined" 1 (Nvalloc.quarantined_slabs t);
  Alcotest.(check int) "capacity withdrawn" Slab.slab_bytes (Nvalloc.quarantined_bytes t);
  Alcotest.(check bool) "quarantine counted on device" true
    (Pmem.Stats.media_quarantines (Pmem.Device.stats dev) >= 1);
  (* Owner queries keep answering for the range; frees into it are
     swallowed with only the publication retracted. *)
  List.iter
    (fun (dest, addr) ->
      (match Nvalloc.owner_of_addr t addr with
      | Some { Nvalloc.is_slab = true; _ } -> ()
      | _ -> Alcotest.fail "quarantined range lost its owner");
      Nvalloc.free_from t th ~dest;
      Alcotest.(check int) "publication retracted" 0 (Nvalloc.read_ptr t ~dest))
    (Array.to_list published
    |> List.filter (fun (_, a) -> a >= base && a < base + Slab.slab_bytes));
  Alcotest.(check bool) "swallowed frees counted" true (Nvalloc.dropped_frees t > before);
  (* Allocation continues degraded. *)
  let a = Nvalloc.malloc_to t th ~size:48 ~dest:(Nvalloc.root_addr t 201) in
  Alcotest.(check bool) "post-quarantine allocation works" true (a > 0);
  match Nvalloc.integrity_walk t clock with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "integrity walk with quarantine: %s" e

let test_recovery_quarantine_idempotent () =
  let dev, _clock, t, th = mk_media () in
  let published = publish_n t th 64 in
  let _, victim = published.(0) in
  let base =
    match Nvalloc.owner_of_addr t victim with
    | Some { Nvalloc.base; is_slab = true; _ } -> base
    | _ -> Alcotest.fail "victim not slab-owned"
  in
  let r = Slab.guard_record base in
  Pmem.Device.poison dev ~line:(r.Guard.primary / cl);
  Pmem.Device.poison dev ~line:(r.Guard.replica / cl);
  Pmem.Device.crash dev;
  let clock2 = Sim.Clock.create () in
  let t2, rep1 = Nvalloc.recover ~config:media_config dev clock2 in
  Alcotest.(check int) "slab written off at recovery" 1 rep1.Nvalloc.quarantined_slabs;
  Alcotest.(check int) "bytes withdrawn" Slab.slab_bytes rep1.Nvalloc.quarantined_bytes;
  Alcotest.(check bool) "owner answers from the quarantined range" true
    (Nvalloc.owner_of_addr t2 victim <> None);
  let th2 = Nvalloc.thread t2 clock2 in
  let a = Nvalloc.malloc_to t2 th2 ~size:48 ~dest:(Nvalloc.root_addr t2 300) in
  Alcotest.(check bool) "degraded allocation works" true (a > 0);
  (* Poison persists across crashes, so a re-recovery reaches the same
     verdict: quarantine is derived state, and recovery stays
     idempotent. *)
  Pmem.Device.crash dev;
  let clock3 = Sim.Clock.create () in
  let t3, rep2 = Nvalloc.recover ~config:media_config dev clock3 in
  Alcotest.(check int) "re-recovery re-quarantines" 1 rep2.Nvalloc.quarantined_slabs;
  Alcotest.(check bool) "owner still answers" true (Nvalloc.owner_of_addr t3 victim <> None)

let test_recovery_repairs_seeded_faults () =
  let dev, _clock, t, th = mk_media () in
  let published = publish_n t th 64 in
  let injected = Nvalloc.seed_poison t ~seed:3 ~count:5 in
  Alcotest.(check bool) "some lines poisoned" true (injected > 0);
  Pmem.Device.crash dev;
  let clock2 = Sim.Clock.create () in
  let t2, rep = Nvalloc.recover ~config:media_config dev clock2 in
  (* Partner exclusion makes every seeded fault repairable: no loss, no
     quarantine, every publication survives. *)
  Alcotest.(check int) "nothing quarantined" 0 rep.Nvalloc.quarantined_slabs;
  Alcotest.(check int) "no poison outlives recovery" 0 (Pmem.Device.poisoned_count dev);
  Array.iter
    (fun (dest, addr) ->
      Alcotest.(check int) "publication survives" addr (Nvalloc.read_ptr t2 ~dest);
      Alcotest.(check bool) "owner answers" true (Nvalloc.owner_of_addr t2 addr <> None))
    published

let test_crash_during_scrub_sweep () =
  (* Crash at every early flush point inside a scrub-with-repairs pass:
     whatever the countdown hits — a repair's persist, the replica
     mirror, nothing at all — the image must recover, and the full
     oracle (recover, free everything, re-recover) must hold. *)
  for countdown = 1 to 10 do
    let dev, clock, t, th = mk_media () in
    ignore (publish_n t th 48 : (int * int) array);
    ignore (Nvalloc.seed_poison t ~seed:(100 + countdown) ~count:4 : int);
    Pmem.Device.schedule_crash_after dev countdown;
    (try
       ignore (Nvalloc.scrub t clock : int * int);
       Pmem.Device.cancel_scheduled_crash dev;
       Pmem.Device.crash dev
     with Pmem.Device.Injected_crash -> ());
    match Fault.Oracle.check ~config:media_config dev (Sim.Clock.create ()) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "countdown %d: %s" countdown e
  done

let test_scrub_tick_maintenance () =
  let config = { media_config with Config.media_scrub = true; media_scrub_interval_ns = 1e6 } in
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config dev clock in
  let th = Nvalloc.thread t clock in
  ignore (publish_n t th 16 : (int * int) array);
  (* Rot a guarded byte at rest: the scheduled pass rewrites it from the
     cached image before any crash can promote it. Drain the batched
     pipeline first — the scrubber (correctly) skips dirty lines, so rot
     must land on clean ones to be its to fix. *)
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  let rotted = Nvalloc.inject_bitrot t ~seed:1 ~flips:2 in
  Alcotest.(check bool) "rot applied" true (rotted > 0);
  Alcotest.(check bool) "first tick runs a pass" true (Nvalloc.scrub_tick t clock);
  Alcotest.(check bool) "second tick waits out the interval" false (Nvalloc.scrub_tick t clock);
  Alcotest.(check int) "pass counted" 1 (Pmem.Stats.scrub_passes (Pmem.Device.stats dev));
  Alcotest.(check bool) "rot rewritten" true
    (Pmem.Stats.media_repairs (Pmem.Device.stats dev) >= 1)

(* --- fuzz pipeline -------------------------------------------------------- *)

let pinned_media_plan =
  "v=log seed=67770 ops=40 crash=240 torn=line tseed=368050 rcrash=- poison=1 pseed=126106 \
   rot=2 rseed=769496 scrub=1"

let test_fuzz_broken_scrub_caught () =
  let plan =
    match Fault.Plan.of_string pinned_media_plan with
    | Ok p -> p
    | Error e -> Alcotest.failf "pinned plan: %s" e
  in
  (match Fault.Fuzz.run_plan plan with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean scrub failed the oracle: %s" e);
  match Fault.Fuzz.run_plan ~broken_scrub:true plan with
  | Error e ->
      Alcotest.(check bool) "verdict names the corruption" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "broken scrub escaped the oracle"

let test_media_plans_deterministic_stats () =
  (* Same plan, two runs: the whole media pipeline — injection, demand
     repair, scrub, recovery — must leave byte-identical device stats. *)
  let plan =
    match Fault.Plan.of_string pinned_media_plan with
    | Ok p -> p
    | Error e -> Alcotest.failf "pinned plan: %s" e
  in
  let stats_of () =
    let captured = ref "" in
    (match
       Fault.Fuzz.run_plan
         ~on_device:(fun dev -> captured := Pmem.Stats.to_json_string (Pmem.Device.stats dev))
         plan
     with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "plan failed: %s" e);
    !captured
  in
  let a = stats_of () and b = stats_of () in
  Alcotest.(check bool) "stats JSON captured" true (String.length a > 0);
  Alcotest.(check string) "same-seed stats are byte-identical" a b

let test_fuzz_media_clean_sweep () =
  (* A smaller in-suite media budget; scripts/fault_media_check.sh runs
     the full sweep on both pipelines. *)
  match Fault.Fuzz.fuzz ~media:true ~seed:2 ~runs:15 () with
  | None -> ()
  | Some cex ->
      Alcotest.failf "media counterexample: %s (%s)"
        (Fault.Plan.to_string cex.Fault.Fuzz.shrunk)
        cex.Fault.Fuzz.reason

let suite =
  [
    Alcotest.test_case "device: poison semantics" `Quick test_device_poison;
    Alcotest.test_case "device: bit-rot is persisted-only" `Quick
      test_device_bitrot_persisted_only;
    Alcotest.test_case "device: scrub_lines rewrites drift" `Quick test_device_scrub_lines;
    Alcotest.test_case "guard: repair poisoned primary" `Quick
      test_guard_repair_poisoned_primary;
    Alcotest.test_case "guard: rebuild poisoned replica" `Quick
      test_guard_repair_poisoned_replica;
    Alcotest.test_case "guard: double fault is Lost" `Quick test_guard_double_fault_lost;
    Alcotest.test_case "guard: bless accepts garbage" `Quick test_guard_bless_is_the_bug;
    Alcotest.test_case "config: media knob validation" `Quick test_media_config_validation;
    Alcotest.test_case "plan: media fields roundtrip" `Quick test_plan_media_roundtrip;
    QCheck_alcotest.to_alcotest prop_media_plans_roundtrip;
    Alcotest.test_case "stats: v3 schema back-compat" `Quick test_stats_v3_compat;
    Alcotest.test_case "alloc: demand repair, zero loss" `Quick test_demand_repair_zero_loss;
    Alcotest.test_case "alloc: runtime quarantine degrades" `Quick
      test_runtime_quarantine_degrades;
    Alcotest.test_case "recovery: quarantine is idempotent" `Quick
      test_recovery_quarantine_idempotent;
    Alcotest.test_case "recovery: seeded faults repaired" `Quick
      test_recovery_repairs_seeded_faults;
    Alcotest.test_case "recovery: crash during scrub sweep" `Slow
      test_crash_during_scrub_sweep;
    Alcotest.test_case "maintenance: scrub tick" `Quick test_scrub_tick_maintenance;
    Alcotest.test_case "fuzz: broken scrub caught" `Quick test_fuzz_broken_scrub_caught;
    Alcotest.test_case "fuzz: media stats deterministic" `Quick
      test_media_plans_deterministic_stats;
    Alcotest.test_case "fuzz: media clean sweep" `Slow test_fuzz_media_clean_sweep;
  ]
