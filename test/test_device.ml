(* The persistent-memory device: persistence semantics, crash behaviour,
   flush classification (reflush / sequential / random), and the
   latency model's shape. *)

let mk ?(size = 1 lsl 20) () =
  let dev = Pmem.Device.create ~size () in
  (dev, Sim.Clock.create ())

let test_write_read () =
  let dev, _ = mk () in
  Pmem.Device.write_int64 dev 128 0x1122334455667788L;
  Alcotest.(check int64) "int64 roundtrip" 0x1122334455667788L (Pmem.Device.read_int64 dev 128);
  Pmem.Device.write_u16 dev 200 0xBEEF;
  Alcotest.(check int) "u16 roundtrip" 0xBEEF (Pmem.Device.read_u16 dev 200);
  Pmem.Device.write_u32 dev 204 0xCAFEBABE;
  Alcotest.(check int) "u32 roundtrip" 0xCAFEBABE (Pmem.Device.read_u32 dev 204)

let test_crash_discards_unflushed () =
  let dev, clock = mk () in
  Pmem.Device.write_int64 dev 0 11L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:8;
  Pmem.Device.write_int64 dev 64 22L;
  (* not flushed *)
  Pmem.Device.crash dev;
  Alcotest.(check int64) "flushed survives" 11L (Pmem.Device.read_int64 dev 0);
  Alcotest.(check int64) "unflushed lost" 0L (Pmem.Device.read_int64 dev 64)

let test_crash_partial_line () =
  (* Two writes to the same line: crash keeps both or neither. *)
  let dev, clock = mk () in
  Pmem.Device.write_int64 dev 0 1L;
  Pmem.Device.write_int64 dev 8 2L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:16;
  Pmem.Device.write_int64 dev 16 3L;
  Pmem.Device.crash dev;
  Alcotest.(check int64) "first" 1L (Pmem.Device.read_int64 dev 0);
  Alcotest.(check int64) "second" 2L (Pmem.Device.read_int64 dev 8);
  Alcotest.(check int64) "third lost" 0L (Pmem.Device.read_int64 dev 16)

let test_eadr_crash_keeps_cache () =
  let dev = Pmem.Device.create ~lat:Pmem.Latency.eadr ~size:(1 lsl 20) () in
  Pmem.Device.write_int64 dev 64 77L;
  Pmem.Device.crash dev;
  Alcotest.(check int64) "eADR keeps unflushed writes" 77L (Pmem.Device.read_int64 dev 64)

let test_reflush_classification () =
  let dev, clock = mk () in
  let stats = Pmem.Device.stats dev in
  (* Flush the same line twice in a row: the second is a reflush. *)
  Pmem.Device.write_u8 dev 0 1;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:1;
  Pmem.Device.write_u8 dev 1 1;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:1 ~len:1;
  Alcotest.(check int) "two flushes" 2 (Pmem.Stats.flushes stats);
  Alcotest.(check int) "one reflush" 1 (Pmem.Stats.reflushes stats)

let test_reflush_window () =
  let dev, clock = mk () in
  let stats = Pmem.Device.stats dev in
  let touch line =
    Pmem.Device.write_u8 dev (line * 64) 1;
    Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:(line * 64) ~len:1
  in
  (* A, B, C, D, E then A again: distance 4 >= window, not a reflush. *)
  List.iter touch [ 0; 100; 200; 300; 400; 0 ];
  Alcotest.(check int) "no reflush at distance >= 4" 0 (Pmem.Stats.reflushes stats);
  (* A, B, A: distance 1, reflush. *)
  List.iter touch [ 10; 20; 10 ];
  Alcotest.(check int) "reflush at distance 1" 1 (Pmem.Stats.reflushes stats)

let test_sequential_vs_random () =
  let dev, clock = mk () in
  let stats = Pmem.Device.stats dev in
  let touch addr =
    Pmem.Device.write_u8 dev addr 1;
    Pmem.Device.flush dev clock Pmem.Stats.Data ~addr ~len:1
  in
  (* The very first flush has no predecessor: random. Then consecutive
     XPLines are sequential; a far jump is random again. *)
  touch 0;
  touch 256;
  touch 512;
  touch 65536;
  Alcotest.(check int) "sequential count" 2 (Pmem.Stats.sequential_flushes stats);
  Alcotest.(check int) "random count" 2 (Pmem.Stats.random_flushes stats)

let test_reflush_costs_more () =
  let lat = Pmem.Latency.default in
  let reflush0 = Pmem.Latency.flush_cost lat ~distance:(Some 0) ~sequential:false in
  let reflush3 = Pmem.Latency.flush_cost lat ~distance:(Some 3) ~sequential:false in
  let rand = Pmem.Latency.flush_cost lat ~distance:None ~sequential:false in
  let seq = Pmem.Latency.flush_cost lat ~distance:None ~sequential:true in
  Alcotest.(check (float 1e-9)) "800ns at distance 0" 800.0 reflush0;
  Alcotest.(check (float 1e-9)) "500ns at distance 3" 500.0 reflush3;
  Alcotest.(check bool) "reflush > random > sequential" true (reflush3 > rand && rand > seq)

let test_clean_line_flush_free () =
  let dev, clock = mk () in
  Pmem.Device.write_u8 dev 0 1;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:1;
  let n = Pmem.Stats.flushes (Pmem.Device.stats dev) in
  (* Flushing a clean line does nothing. *)
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:1;
  Alcotest.(check int) "clean flush skipped" n (Pmem.Stats.flushes (Pmem.Device.stats dev))

let test_crash_injection () =
  let dev, clock = mk () in
  Pmem.Device.schedule_crash_after dev 2;
  Pmem.Device.write_u8 dev 0 1;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:1;
  Pmem.Device.write_u8 dev 64 1;
  Alcotest.check_raises "crash on second flushed line" Pmem.Device.Injected_crash (fun () ->
      Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:1);
  (* Both lines were admitted before the crash triggered after them. *)
  Alcotest.(check int) "first line persisted" 1 (Pmem.Device.persisted_u8 dev 0)

let test_crash_rearm_and_cancel () =
  let dev, clock = mk () in
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Device.schedule_crash_after: countdown must be >= 1 (got 0)")
    (fun () -> Pmem.Device.schedule_crash_after dev 0);
  (* Re-arming replaces the pending countdown, it does not stack. *)
  Pmem.Device.schedule_crash_after dev 100;
  Pmem.Device.schedule_crash_after dev 1;
  Alcotest.(check bool) "armed" true (Pmem.Device.crash_armed dev);
  Pmem.Device.write_u8 dev 0 1;
  Alcotest.check_raises "re-armed countdown fires" Pmem.Device.Injected_crash (fun () ->
      Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:1);
  (* Firing disarms; cancel afterwards is a no-op, twice too. *)
  Alcotest.(check bool) "disarmed by firing" false (Pmem.Device.crash_armed dev);
  Pmem.Device.cancel_scheduled_crash dev;
  Pmem.Device.cancel_scheduled_crash dev;
  Pmem.Device.write_u8 dev 64 1;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:1;
  (* Cancelling a live countdown prevents it from ever firing. *)
  Pmem.Device.schedule_crash_after dev 1;
  Pmem.Device.cancel_scheduled_crash dev;
  Alcotest.(check bool) "cancelled" false (Pmem.Device.crash_armed dev);
  Pmem.Device.write_u8 dev 128 1;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:128 ~len:1;
  Alcotest.(check int) "flush survived cancel" 1 (Pmem.Device.persisted_u8 dev 128)

(* Tear one fully-written line and report, per 8-byte word, whether the
   new value persisted. *)
let tear ?(seed = 7) mode =
  let dev, clock = mk () in
  for w = 0 to 7 do
    Pmem.Device.write_int64 dev (w * 8) (Int64.of_int (0x100 + w))
  done;
  Pmem.Device.schedule_crash_after ~torn:mode ~torn_seed:seed dev 1;
  (try Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:64
   with Pmem.Device.Injected_crash -> ());
  Array.init 8 (fun w -> Pmem.Device.persisted_int64 dev (w * 8) = Int64.of_int (0x100 + w))

let test_torn_modes () =
  (* Prefix: once a word is missing, all later words are missing. *)
  let monotone dir got =
    let arr = if dir = `Suffix then Array.of_list (List.rev (Array.to_list got)) else got in
    let ok = ref true and seen_gap = ref false in
    Array.iter
      (fun present ->
        if not present then seen_gap := true else if !seen_gap then ok := false)
      arr;
    !ok
  in
  for seed = 1 to 32 do
    let p = tear ~seed Pmem.Device.Torn_prefix in
    Alcotest.(check bool) "prefix shape" true (monotone `Prefix p);
    let s = tear ~seed Pmem.Device.Torn_suffix in
    Alcotest.(check bool) "suffix shape" true (monotone `Suffix s);
    (* Random tears a strict subset: never all eight words. *)
    let r = tear ~seed Pmem.Device.Torn_random in
    Alcotest.(check bool) "random is strict subset" true
      (Array.exists (fun b -> not b) r)
  done;
  (* Deterministic in the seed: the same plan tears the same way. *)
  Alcotest.(check (array bool)) "torn mask deterministic"
    (tear ~seed:11 Pmem.Device.Torn_random)
    (tear ~seed:11 Pmem.Device.Torn_random);
  (* Words not persisted keep their previous persisted content, not the
     volatile one. *)
  let dev, clock = mk () in
  Pmem.Device.write_int64 dev 0 1L;
  Pmem.Device.write_int64 dev 56 1L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:64;
  for w = 0 to 7 do
    Pmem.Device.write_int64 dev (w * 8) 2L
  done;
  Pmem.Device.schedule_crash_after ~torn:Pmem.Device.Torn_prefix ~torn_seed:3 dev 1;
  (try Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:64
   with Pmem.Device.Injected_crash -> ());
  for w = 0 to 7 do
    let v = Pmem.Device.persisted_int64 dev (w * 8) in
    let old = if w = 0 || w = 7 then 1L else 0L in
    Alcotest.(check bool)
      (Printf.sprintf "word %d is old or new" w)
      true
      (v = 2L || v = old)
  done

let test_clock_advances () =
  let dev, clock = mk () in
  Pmem.Device.write_u8 dev 0 1;
  let before = Sim.Clock.now clock in
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:0 ~len:1;
  Alcotest.(check bool) "flush costs time" true (Sim.Clock.now clock > before)

let test_dax_mmap () =
  let dev, clock = mk () in
  let dax = Pmem.Dax.create dev in
  let a = Pmem.Dax.mmap dax clock ~size:8192 in
  let b = Pmem.Dax.mmap dax clock ~size:4096 in
  Alcotest.(check bool) "distinct regions" true (b >= a + 8192 || a >= b + 4096);
  Alcotest.(check int) "mapped" 12288 (Pmem.Dax.mapped_bytes dax);
  Pmem.Dax.munmap dax clock ~addr:a ~size:8192 ();
  Alcotest.(check int) "after munmap" 4096 (Pmem.Dax.mapped_bytes dax);
  Alcotest.(check int) "peak" 12288 (Pmem.Dax.peak_mapped_bytes dax);
  (* Coalescing: the freed range is reusable. *)
  let c = Pmem.Dax.mmap dax clock ~size:8192 in
  Alcotest.(check int) "first fit reuses hole" a c

let test_dax_decommit () =
  let dev, clock = mk () in
  let dax = Pmem.Dax.create dev in
  let a = Pmem.Dax.mmap dax clock ~size:16384 in
  Pmem.Dax.decommit dax clock ~addr:a ~size:16384;
  Alcotest.(check int) "decommitted" 0 (Pmem.Dax.mapped_bytes dax);
  Pmem.Dax.recommit dax clock ~addr:a ~size:16384;
  Alcotest.(check int) "recommitted" 16384 (Pmem.Dax.mapped_bytes dax)

(* Every accessor reports out-of-bounds access with one uniform message
   naming the accessor, the offending extent and the device size. *)
let test_bounds_messages () =
  let size = 1 lsl 20 in
  let dev, _ = mk ~size () in
  let expect op addr len f =
    Alcotest.check_raises op
      (Invalid_argument
         (Printf.sprintf "Pmem.Device.%s: out of bounds (addr=%d, len=%d, device size=%d)"
            op addr len size))
      f
  in
  expect "read_u8" size 1 (fun () -> ignore (Pmem.Device.read_u8 dev size));
  expect "write_u16" (size - 1) 2 (fun () -> Pmem.Device.write_u16 dev (size - 1) 7);
  expect "read_u32" (-4) 4 (fun () -> ignore (Pmem.Device.read_u32 dev (-4)));
  expect "write_int64" (size - 7) 8 (fun () -> Pmem.Device.write_int64 dev (size - 7) 1L);
  expect "read_int" (size - 4) 8 (fun () -> ignore (Pmem.Device.read_int dev (size - 4)));
  expect "read_bytes" 0 (size + 1) (fun () -> ignore (Pmem.Device.read_bytes dev 0 (size + 1)));
  expect "write_bytes" (size - 2) 4 (fun () ->
      Pmem.Device.write_bytes dev (size - 2) (Bytes.create 4));
  expect "fill" 64 (-1) (fun () -> Pmem.Device.fill dev 64 (-1) 'x')

(* --- persist-ordering checker ------------------------------------------- *)

let test_checker_off_costs_nothing () =
  let dev, clock = mk () in
  Alcotest.(check bool) "off by default" false (Pmem.Device.check_mode dev);
  (* No-ops when off: *)
  Pmem.Device.depends_on dev clock ~addr:0 ~len:8;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:0 ~len:8;
  Alcotest.(check int) "no commits counted" 0 (Pmem.Device.ordering_commits_checked dev)

let test_checker_clean_commit () =
  let dev, clock = mk () in
  Pmem.Device.set_check_mode dev true;
  Pmem.Device.write_int64 dev 0 1L;
  Pmem.Device.flush dev clock Pmem.Stats.Wal ~addr:0 ~len:8;
  Pmem.Device.depends_on ~note:"wal" dev clock ~addr:0 ~len:8;
  Pmem.Device.write_u8 dev 4096 1;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:1;
  Alcotest.(check int) "commit counted" 1 (Pmem.Device.ordering_commits_checked dev);
  Alcotest.(check int) "dep counted" 1 (Pmem.Device.ordering_deps_tracked dev);
  Alcotest.(check int) "no violation" 0 (Pmem.Device.ordering_violation_count dev)

let test_checker_dirty_dep_flagged () =
  let dev, clock = mk () in
  Pmem.Device.set_check_mode dev true;
  Pmem.Device.write_int64 dev 128 1L;
  (* not flushed *)
  Pmem.Device.depends_on ~note:"wal" dev clock ~addr:128 ~len:8;
  Pmem.Device.write_u8 dev 4096 1;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:1;
  Alcotest.(check int) "violation" 1 (Pmem.Device.ordering_violation_count dev);
  (match Pmem.Device.ordering_violations dev with
  | [ v ] ->
      Alcotest.(check string) "note" "wal" v.Pmem.Device.v_dep_note;
      Alcotest.(check int) "commit addr" 4096 v.Pmem.Device.v_commit_addr;
      Alcotest.(check int) "dirty line" 2 v.Pmem.Device.v_dirty_line;
      (* pp renders without raising and names the dependency *)
      let rendered = Format.asprintf "%a" Pmem.Device.pp_violation v in
      Alcotest.(check bool) "pp non-empty" true (String.length rendered > 0)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* Deps are consumed: an immediate second commit is clean. *)
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:1;
  Alcotest.(check int) "deps consumed" 1 (Pmem.Device.ordering_violation_count dev)

let test_checker_shared_line_no_false_positive () =
  (* A dependency whose bytes already persisted does not trip the check
     just because an unrelated write dirtied its cache line again. *)
  let dev, clock = mk () in
  Pmem.Device.set_check_mode dev true;
  Pmem.Device.write_int64 dev 0 1L;
  Pmem.Device.flush dev clock Pmem.Stats.Wal ~addr:0 ~len:8;
  Pmem.Device.write_int64 dev 8 2L;
  (* same line, not flushed: line dirty, dep bytes persisted *)
  Pmem.Device.depends_on ~note:"wal" dev clock ~addr:0 ~len:8;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:1;
  Alcotest.(check int) "no false positive" 0 (Pmem.Device.ordering_violation_count dev)

let test_checker_crash_voids_pending () =
  let dev, clock = mk () in
  Pmem.Device.set_check_mode dev true;
  (* One real violation before the crash... *)
  Pmem.Device.write_int64 dev 128 1L;
  Pmem.Device.depends_on ~note:"pre" dev clock ~addr:128 ~len:8;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:1;
  (* ...and one dependency left pending across it. *)
  Pmem.Device.write_int64 dev 256 1L;
  Pmem.Device.depends_on ~note:"pending" dev clock ~addr:256 ~len:8;
  Pmem.Device.crash dev;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:1;
  Alcotest.(check int) "recorded violation survives, pending voided" 1
    (Pmem.Device.ordering_violation_count dev);
  match Pmem.Device.ordering_violations dev with
  | [ v ] -> Alcotest.(check string) "the pre-crash one" "pre" v.Pmem.Device.v_dep_note
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* --- flush coalescing ------------------------------------------------- *)

let test_batching_defers_until_fence () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  Pmem.Device.write_int64 dev 0 11L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:8;
  (* Deferred: the persisted image is untouched until an ordering point. *)
  Alcotest.(check int64) "not yet persistent" 0L (Pmem.Device.persisted_int64 dev 0);
  Alcotest.(check int) "one line pending" 1 (Pmem.Device.pending_flushes dev clock);
  Pmem.Device.fence dev clock;
  Alcotest.(check int64) "persistent after fence" 11L (Pmem.Device.persisted_int64 dev 0);
  Alcotest.(check int) "drained" 0 (Pmem.Device.pending_flushes dev clock)

let test_batching_coalesces_same_line () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  let stats = Pmem.Device.stats dev in
  (* Three flushes of the same line collapse to one media write-back and
     one fence: two fences saved, two calls coalesced. *)
  for i = 0 to 2 do
    Pmem.Device.write_int64 dev (i * 8) (Int64.of_int (i + 1));
    Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:(i * 8) ~len:8
  done;
  Pmem.Device.fence dev clock;
  Alcotest.(check int) "one media flush" 1 (Pmem.Stats.flushes stats);
  Alcotest.(check int) "two coalesced" 2 (Pmem.Stats.flushes_coalesced stats);
  Alcotest.(check int) "two fences saved" 2 (Pmem.Stats.fences_saved stats)

let test_batching_crash_discards_pending () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  Pmem.Device.write_int64 dev 0 42L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:8;
  Pmem.Device.crash dev;
  (* A deferred flush is exactly an unflushed cache line at crash time. *)
  Alcotest.(check int64) "pending flush lost" 0L (Pmem.Device.read_int64 dev 0);
  Pmem.Device.write_int64 dev 64 7L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:64 ~len:8;
  Pmem.Device.fence dev clock;
  Alcotest.(check int64) "post-crash stream works" 7L (Pmem.Device.persisted_int64 dev 64)

let test_batching_commit_drains_first () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  Pmem.Device.set_check_mode dev true;
  (* Dependency deferred by an earlier flush: commit_flush must drain the
     pending set before validating, so no violation is recorded. *)
  Pmem.Device.write_int64 dev 0 1L;
  Pmem.Device.flush dev clock Pmem.Stats.Wal ~addr:0 ~len:8;
  Pmem.Device.depends_on ~note:"deferred-dep" dev clock ~addr:0 ~len:8;
  Pmem.Device.write_int64 dev 4096 2L;
  Pmem.Device.commit_flush dev clock Pmem.Stats.Meta ~addr:4096 ~len:8;
  Alcotest.(check int) "drain precedes validation" 0
    (Pmem.Device.ordering_violation_count dev);
  Alcotest.(check int64) "dep persisted" 1L (Pmem.Device.persisted_int64 dev 0);
  Alcotest.(check int64) "commit persisted" 2L (Pmem.Device.persisted_int64 dev 4096)

let test_unpend_drops_line () =
  let dev, clock = mk () in
  Pmem.Device.set_batching dev true;
  Pmem.Device.write_int64 dev 0 5L;
  Pmem.Device.write_int64 dev 64 6L;
  Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:0 ~len:72;
  Pmem.Device.unpend dev clock ~addr:0 ~len:8;
  Pmem.Device.fence dev clock;
  Alcotest.(check int64) "unpended line not persisted" 0L (Pmem.Device.persisted_int64 dev 0);
  Alcotest.(check int64) "other line persisted" 6L (Pmem.Device.persisted_int64 dev 64)

let test_batching_same_seed_deterministic () =
  (* The batched pipeline must not perturb determinism: identical op
     sequences give identical clocks and stats. *)
  let run () =
    let dev, clock = mk () in
    Pmem.Device.set_batching dev true;
    for i = 0 to 199 do
      Pmem.Device.write_int64 dev (i * 24 mod 4096) (Int64.of_int i);
      Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:(i * 24 mod 4096) ~len:8;
      if i mod 7 = 0 then Pmem.Device.fence dev clock
    done;
    Pmem.Device.fence dev clock;
    let s = Pmem.Device.stats dev in
    (Sim.Clock.now clock, Pmem.Stats.flushes s, Pmem.Stats.fences_saved s)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same clock and counters" true (a = b)

let suite =
  [
    Alcotest.test_case "write/read roundtrips" `Quick test_write_read;
    Alcotest.test_case "crash discards unflushed lines" `Quick test_crash_discards_unflushed;
    Alcotest.test_case "crash is line-granular" `Quick test_crash_partial_line;
    Alcotest.test_case "eADR crash keeps caches" `Quick test_eadr_crash_keeps_cache;
    Alcotest.test_case "reflush classification" `Quick test_reflush_classification;
    Alcotest.test_case "reflush window boundary" `Quick test_reflush_window;
    Alcotest.test_case "sequential vs random" `Quick test_sequential_vs_random;
    Alcotest.test_case "latency ordering" `Quick test_reflush_costs_more;
    Alcotest.test_case "clean-line flush is free" `Quick test_clean_line_flush_free;
    Alcotest.test_case "crash injection" `Quick test_crash_injection;
    Alcotest.test_case "crash re-arm and cancel" `Quick test_crash_rearm_and_cancel;
    Alcotest.test_case "torn-store modes" `Quick test_torn_modes;
    Alcotest.test_case "flush charges the clock" `Quick test_clock_advances;
    Alcotest.test_case "dax mmap/munmap/coalesce" `Quick test_dax_mmap;
    Alcotest.test_case "dax decommit/recommit" `Quick test_dax_decommit;
    Alcotest.test_case "uniform bounds messages" `Quick test_bounds_messages;
    Alcotest.test_case "checker off by default" `Quick test_checker_off_costs_nothing;
    Alcotest.test_case "checker: clean commit" `Quick test_checker_clean_commit;
    Alcotest.test_case "checker: dirty dependency flagged" `Quick test_checker_dirty_dep_flagged;
    Alcotest.test_case "checker: shared line, persisted dep" `Quick
      test_checker_shared_line_no_false_positive;
    Alcotest.test_case "checker: crash voids pending deps" `Quick
      test_checker_crash_voids_pending;
    Alcotest.test_case "batching: deferred until fence" `Quick test_batching_defers_until_fence;
    Alcotest.test_case "batching: same-line coalescing" `Quick test_batching_coalesces_same_line;
    Alcotest.test_case "batching: crash discards pending" `Quick
      test_batching_crash_discards_pending;
    Alcotest.test_case "batching: commit drains before validating" `Quick
      test_batching_commit_drains_first;
    Alcotest.test_case "batching: unpend drops a line" `Quick test_unpend_drops_line;
    Alcotest.test_case "batching: deterministic" `Quick test_batching_same_seed_deterministic;
  ]
