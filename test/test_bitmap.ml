(* Bitmap mapping: bijection, interleaving guarantees, persistence. *)

open Nvalloc_core

let mk_dev () = Pmem.Device.create ~size:(1 lsl 16) ()

let test_set_get_clear () =
  let dev = mk_dev () in
  let t = Bitmap.make ~base:0 ~nbits:1000 ~mapping:(Bitmap.Interleaved 6) in
  Bitmap.set dev t 0;
  Bitmap.set dev t 999;
  Alcotest.(check bool) "bit 0" true (Bitmap.get dev t 0);
  Alcotest.(check bool) "bit 999" true (Bitmap.get dev t 999);
  Alcotest.(check bool) "bit 1" false (Bitmap.get dev t 1);
  Alcotest.(check int) "popcount" 2 (Bitmap.popcount dev t);
  Bitmap.clear dev t 0;
  Alcotest.(check bool) "cleared" false (Bitmap.get dev t 0);
  Bitmap.clear_all dev t;
  Alcotest.(check int) "all cleared" 0 (Bitmap.popcount dev t)

let test_sequential_mapping () =
  let t = Bitmap.make ~base:0 ~nbits:1024 ~mapping:Bitmap.Sequential in
  Alcotest.(check int) "two lines" 2 t.Bitmap.lines;
  Alcotest.(check (pair int int)) "bit 0" (0, 0) (Bitmap.bit_location t 0);
  Alcotest.(check (pair int int)) "bit 511" (0, 511) (Bitmap.bit_location t 511);
  Alcotest.(check (pair int int)) "bit 512" (1, 0) (Bitmap.bit_location t 512)

let test_interleaved_rotates_lines () =
  let t = Bitmap.make ~base:0 ~nbits:1000 ~mapping:(Bitmap.Interleaved 6) in
  Alcotest.(check int) "six stripes" 6 t.Bitmap.lines;
  (* Consecutive blocks land in consecutive (distinct) lines. *)
  for b = 0 to 10 do
    let line, _ = Bitmap.bit_location t b in
    Alcotest.(check int) (Printf.sprintf "block %d line" b) (b mod 6) line
  done

let test_interleaved_capacity_growth () =
  (* 4096 blocks cannot fit 6 stripes of 512 bits: lines grow to 8. *)
  let t = Bitmap.make ~base:0 ~nbits:4096 ~mapping:(Bitmap.Interleaved 6) in
  Alcotest.(check int) "eight lines" 8 t.Bitmap.lines

let prop_bijection =
  let open QCheck in
  Test.make ~name:"bit mapping is a bijection" ~count:200
    (make
       Gen.(
         pair
           (int_range 1 5000)
           (oneof [ return Bitmap.Sequential; map (fun s -> Bitmap.Interleaved s) (int_range 1 32) ])))
    (fun (nbits, mapping) ->
      let t = Bitmap.make ~base:0 ~nbits ~mapping in
      let seen = Hashtbl.create nbits in
      let ok = ref true in
      for b = 0 to nbits - 1 do
        let line, idx = Bitmap.bit_location t b in
        if line < 0 || line >= t.Bitmap.lines || idx < 0 || idx >= Bitmap.bits_per_line then
          ok := false;
        let key = (line * Bitmap.bits_per_line) + idx in
        if Hashtbl.mem seen key then ok := false;
        Hashtbl.add seen key ()
      done;
      !ok)

let prop_no_reflush_window =
  (* With >= 5 stripes, any 4 consecutive blocks map to 4 distinct lines,
     which is exactly what eliminates reflushes under the distance-4
     window. *)
  let open QCheck in
  Test.make ~name:"stripes >= 5 keep consecutive blocks in distinct lines" ~count:200
    (make Gen.(pair (int_range 5 32) (int_range 100 4000)))
    (fun (stripes, nbits) ->
      let t = Bitmap.make ~base:0 ~nbits ~mapping:(Bitmap.Interleaved stripes) in
      let ok = ref true in
      for b = 0 to min (nbits - 5) 500 do
        let lines = List.init 4 (fun i -> fst (Bitmap.bit_location t (b + i))) in
        if List.length (List.sort_uniq compare lines) <> 4 then ok := false
      done;
      !ok)

let prop_set_then_get =
  let open QCheck in
  Test.make ~name:"set/clear agree with a bool-array model" ~count:100
    (make
       Gen.(
         triple (int_range 1 2000)
           (oneof [ return Bitmap.Sequential; map (fun s -> Bitmap.Interleaved s) (int_range 1 16) ])
           (list_size (int_bound 200) (pair bool (int_bound 1999)))))
    (fun (nbits, mapping, ops) ->
      let dev = mk_dev () in
      let t = Bitmap.make ~base:0 ~nbits ~mapping in
      let model = Array.make nbits false in
      List.iter
        (fun (set, b) ->
          let b = b mod nbits in
          if set then begin
            Bitmap.set dev t b;
            model.(b) <- true
          end
          else begin
            Bitmap.clear dev t b;
            model.(b) <- false
          end)
        ops;
      let ok = ref true in
      Array.iteri (fun b expect -> if Bitmap.get dev t b <> expect then ok := false) model;
      let set_count = Array.fold_left (fun n v -> if v then n + 1 else n) 0 model in
      !ok && Bitmap.popcount dev t = set_count)

(* Naive oracle for the word-scan: probe bits 0..nbits-1 one at a time. *)
let naive_first_zero dev t nbits =
  let rec go b = if b >= nbits then None else if Bitmap.get dev t b then go (b + 1) else Some b in
  go 0

let gen_mapping =
  QCheck.Gen.(oneof [ return Bitmap.Sequential; map (fun s -> Bitmap.Interleaved s) (int_range 1 16) ])

let prop_find_first_zero =
  (* The 64-bit word scan agrees with a per-bit loop after arbitrary
     set/clear traffic, for both mappings. *)
  let open QCheck in
  Test.make ~name:"find_first_zero agrees with the naive bit loop" ~count:300
    (make
       Gen.(
         triple (int_range 1 2000) gen_mapping
           (list_size (int_bound 300) (pair bool (int_bound 1999)))))
    (fun (nbits, mapping, ops) ->
      let dev = mk_dev () in
      let t = Bitmap.make ~base:0 ~nbits ~mapping in
      List.iter
        (fun (set, b) ->
          let b = b mod nbits in
          if set then Bitmap.set dev t b else Bitmap.clear dev t b)
        ops;
      Bitmap.find_first_zero dev t = naive_first_zero dev t nbits)

let prop_find_first_zero_edges =
  (* Line-boundary sizes: nbits at, one below and one above multiples of
     the 64-bit word and the 512-bit line, saturated then drained one bit
     at a time — the scan must track the naive answer at every step and
     report None exactly when the bitmap is full. *)
  let open QCheck in
  let sizes =
    List.concat_map (fun n -> [ n - 1; n; n + 1 ]) [ 64; 128; 512; 1024 ] |> List.filter (fun n -> n > 0)
  in
  Test.make ~name:"find_first_zero at word/line boundaries and full bitmaps" ~count:60
    (make Gen.(pair (oneofl sizes) gen_mapping))
    (fun (nbits, mapping) ->
      let dev = mk_dev () in
      let t = Bitmap.make ~base:0 ~nbits ~mapping in
      let ok = ref true in
      (* Fill in mapping order via set_first: each step must take the
         naive first-zero, and a full bitmap must return None. *)
      for _ = 1 to nbits do
        let expect = naive_first_zero dev t nbits in
        if Bitmap.set_first dev t <> expect then ok := false
      done;
      if Bitmap.find_first_zero dev t <> None then ok := false;
      if Bitmap.popcount dev t <> nbits then ok := false;
      (* Drain from the back: clearing bit b must make it the answer iff
         it is the lowest clear bit. *)
      for b = nbits - 1 downto 0 do
        Bitmap.clear dev t b;
        if Bitmap.find_first_zero dev t <> Some b then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "set/get/clear" `Quick test_set_get_clear;
    Alcotest.test_case "sequential mapping" `Quick test_sequential_mapping;
    Alcotest.test_case "interleaved rotates lines" `Quick test_interleaved_rotates_lines;
    Alcotest.test_case "interleaved capacity growth" `Quick test_interleaved_capacity_growth;
    QCheck_alcotest.to_alcotest prop_bijection;
    QCheck_alcotest.to_alcotest prop_no_reflush_window;
    QCheck_alcotest.to_alcotest prop_set_then_get;
    QCheck_alcotest.to_alcotest prop_find_first_zero;
    QCheck_alcotest.to_alcotest prop_find_first_zero_edges;
  ]
