(* Telemetry: JSON printer/parser, histograms, bounded rings, trace
   determinism, zero perturbation of simulated results, and the Stats
   JSON round trip. *)

module J = Telemetry.Json

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Num 42.0);
        ("f", J.Num 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("a", J.Arr [ J.Num 0.0; J.Str ""; J.Obj [] ]);
      ]
  in
  let s = J.to_string v in
  (match J.parse s with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok v' -> Alcotest.(check string) "print/parse/print stable" s (J.to_string v'));
  (* Integral floats print without a decimal point. *)
  Alcotest.(check string) "integral" "42" (J.to_string (J.Num 42.0));
  Alcotest.(check string) "fractional" "1.500" (J.to_string (J.Num 1.5))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parse accepted garbage: " ^ s))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1}x" ]

let test_json_escapes () =
  (* Every escape our printer can emit decodes back, plus \u for the
     Latin-1 range. *)
  (match J.parse {|"a\nb\tc\rd\be\ff\"g\\h\/iA\u00e9"|} with
  | Ok (J.Str s) ->
      Alcotest.(check string) "escape decoding" "a\nb\tc\rd\be\012f\"g\\h/iA\xe9" s
  | Ok _ -> Alcotest.fail "parsed to non-string"
  | Error e -> Alcotest.fail ("escapes rejected: " ^ e));
  (* Beyond Latin-1, malformed hex, unknown escapes, truncations: all
     rejected with Error, never an exception. *)
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parse accepted bad escape: " ^ s)
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "parse raised on %s: %s" s (Printexc.to_string e)))
    [ {|"\u0100"|}; {|"\ud800"|}; {|"\uzzzz"|}; {|"\x"|}; {|"\|}; {|"\u00|}; {|"\u|} ]

let test_json_deep_nesting () =
  (* A few hundred nesting levels must parse and round-trip — deep
     blame-tree paths serialise as nested structures, and the recursive
     parser has to survive them. *)
  let depth = 400 in
  let b = Buffer.create (depth * 12) in
  for _ = 1 to depth do
    Buffer.add_string b {|{"a":[|}
  done;
  Buffer.add_string b "null";
  for _ = 1 to depth do
    Buffer.add_string b "]}"
  done;
  let s = Buffer.contents b in
  match J.parse s with
  | Error e -> Alcotest.fail ("deep nesting rejected: " ^ e)
  | Ok v ->
      Alcotest.(check string) "deep round trip" s (J.to_string v);
      let rec depth_of v =
        match v with
        | J.Obj [ ("a", J.Arr [ inner ]) ] -> 1 + depth_of inner
        | J.Null -> 0
        | _ -> Alcotest.fail "unexpected shape"
      in
      Alcotest.(check int) "all levels present" depth (depth_of v)

let test_json_error_stability () =
  (* Error messages are part of the interface: scripts and humans match
     on them, so they are pinned exactly (message + offset). *)
  List.iter
    (fun (input, expected) ->
      match J.parse input with
      | Ok _ -> Alcotest.fail ("parse accepted: " ^ input)
      | Error e -> Alcotest.(check string) ("message for " ^ input) expected e)
    [
      ("", "unexpected end of input at offset 0");
      ("   ", "unexpected end of input at offset 3");
      ("{", {|expected '"' at offset 1|});
      ("\"abc", "unterminated string at offset 4");
      ("[1, 2", "expected ',' or ']' at offset 5");
      ({|{"a":1|}, "expected ',' or '}' at offset 6");
      ("1 x", "trailing garbage at offset 2");
      ("tru", "expected true at offset 0");
      ("-", "bad number at offset 1");
      ({|"\uzzzz"|}, {|bad \u escape at offset 2|});
      ({|"\u0100"|}, {|unsupported \u escape at offset 2|});
      ({|"\q"|}, {|bad escape '\q' at offset 2|});
    ]

(* --- Histogram ----------------------------------------------------------- *)

let test_histogram () =
  let h = Telemetry.Histogram.create "h" in
  Alcotest.(check int) "empty count" 0 (Telemetry.Histogram.count h);
  List.iter (Telemetry.Histogram.observe h) [ 100.0; 200.0; 300.0; 400.0; 100000.0 ];
  Alcotest.(check int) "count" 5 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "min" 100.0 (Telemetry.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100000.0 (Telemetry.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 20200.0 (Telemetry.Histogram.mean h);
  let p50 = Telemetry.Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 within factor-2 bucket" true (p50 >= 200.0 && p50 <= 512.0);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 100000.0
    (Telemetry.Histogram.percentile h 1.0);
  let p0 = Telemetry.Histogram.percentile h 0.0 in
  Alcotest.(check bool) "p0 within min's bucket" true (p0 >= 100.0 && p0 <= 128.0)

(* Merge oracle: merging per-thread histograms must be exactly a single
   histogram fed every observation — same counts, same moments, same
   percentiles at every quantile. *)
let prop_histogram_merge =
  let open QCheck in
  Test.make ~name:"Histogram.merge equals one histogram of all observations" ~count:200
    (make
       (* Integral values so partial sums are exact in double precision:
          the oracle compares totals with [=], not a tolerance. *)
       Gen.(
         list_size (int_range 0 6)
           (list_size (int_range 0 40) (map float_of_int (int_range 0 200_000)))))
    (fun groups ->
      let parts =
        List.map
          (fun obs ->
            let h = Telemetry.Histogram.create "part" in
            List.iter (Telemetry.Histogram.observe h) obs;
            h)
          groups
      in
      let merged = Telemetry.Histogram.merge ~name:"merged" parts in
      let oracle = Telemetry.Histogram.create "merged" in
      List.iter (List.iter (Telemetry.Histogram.observe oracle)) groups;
      let module H = Telemetry.Histogram in
      H.count merged = H.count oracle
      && H.total merged = H.total oracle
      && H.mean merged = H.mean oracle
      && (H.count merged = 0
         || H.min_value merged = H.min_value oracle && H.max_value merged = H.max_value oracle
         )
      && List.for_all
           (fun q -> H.percentile merged q = H.percentile oracle q)
           [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let test_histogram_merge_empty () =
  let m = Telemetry.Histogram.merge ~name:"m" [] in
  Alcotest.(check int) "empty merge" 0 (Telemetry.Histogram.count m);
  let h = Telemetry.Histogram.create "h" in
  Telemetry.Histogram.observe h 7.0;
  let m1 = Telemetry.Histogram.merge ~name:"m" [ h ] in
  Alcotest.(check int) "singleton count" 1 (Telemetry.Histogram.count m1);
  Alcotest.(check (float 1e-9)) "singleton mean" 7.0 (Telemetry.Histogram.mean m1);
  (* Merge does not alias its inputs: observing into the merge leaves
     the parts untouched. *)
  Telemetry.Histogram.observe m1 9.0;
  Alcotest.(check int) "input untouched" 1 (Telemetry.Histogram.count h)

(* --- Rings --------------------------------------------------------------- *)

let test_ring_bounds () =
  let t = Telemetry.create ~ring_capacity:4 () in
  let name = Telemetry.intern t "ev" in
  for i = 1 to 10 do
    Telemetry.span t ~tid:0 ~name ~ts:(float_of_int i) ~dur:1.0
  done;
  Alcotest.(check int) "recorded" 10 (Telemetry.events_recorded t);
  Alcotest.(check int) "dropped oldest" 6 (Telemetry.events_dropped t);
  (* The tail holds the newest events, oldest first. *)
  let tail = Telemetry.tail_events t ~n:10 in
  Alcotest.(check int) "tail bounded by capacity" 4 (List.length tail);
  Alcotest.(check bool) "newest survives" true
    (List.exists (fun l -> String.length l > 0) tail)

let test_ring_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Telemetry.create: ring_capacity must be positive (got 0)") (fun () ->
      ignore (Telemetry.create ~ring_capacity:0 ()))

let test_interning () =
  let t = Telemetry.create () in
  let a = Telemetry.intern t "alloc" and b = Telemetry.intern t "free" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "stable" a (Telemetry.intern t "alloc");
  Alcotest.(check string) "name_of" "free" (Telemetry.name_of t b)

(* --- End-to-end: traced workload runs ------------------------------------ *)

let larson_params =
  { Workloads.Larson.slots = 64; ops = 500; min_size = 64; max_size = 256; cross_frac = 0.2 }

let mk () =
  Alloc_api.Instance.of_nvalloc
    ~config:
      {
        Nvalloc_core.Config.log_default with
        Nvalloc_core.Config.arenas = 2;
        root_slots = 1 lsl 16;
      }
    ~threads:4 ~dev_size:(256 * 1024 * 1024) ()

let traced_run ~seed =
  Telemetry.reset_registered ();
  Telemetry.request_capture ();
  let inst = Fun.protect ~finally:Telemetry.cancel_capture (fun () -> mk ()) in
  let sink =
    match Telemetry.registered () with
    | [ (_, s) ] -> s
    | l -> Alcotest.fail (Printf.sprintf "expected 1 registered sink, got %d" (List.length l))
  in
  Telemetry.reset_registered ();
  let r = Workloads.Larson.run inst ~params:larson_params ~seed () in
  (sink, r)

let test_trace_determinism () =
  (* Satellite: two same-seed runs export byte-identical trace JSON,
     even though raw clock ids differ between the runs (tids are
     normalised at export). *)
  let sink1, _ = traced_run ~seed:7 in
  let sink2, _ = traced_run ~seed:7 in
  let j1 = Telemetry.chrome_json sink1 and j2 = Telemetry.chrome_json sink2 in
  Alcotest.(check int) "same length" (String.length j1) (String.length j2);
  Alcotest.(check bool) "byte-identical JSON" true (String.equal j1 j2);
  Alcotest.(check string) "identical histogram CSV" (Telemetry.hist_csv sink1)
    (Telemetry.hist_csv sink2)

let test_trace_validity () =
  let sink, _ = traced_run ~seed:3 in
  Alcotest.(check bool) "events recorded" true (Telemetry.events_recorded sink > 0);
  let json =
    match J.parse (Telemetry.chrome_json sink) with
    | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
    | Ok j -> j
  in
  let events =
    match Option.bind (J.member "traceEvents" json) J.arr with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 100);
  let phases = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let field name = Option.bind (J.member name ev) in
      (match field "ph" J.str with
      | Some ("X" | "i" | "C" | "M") as p -> Hashtbl.replace phases (Option.get p) ()
      | Some ph -> Alcotest.fail ("unexpected ph " ^ ph)
      | None -> Alcotest.fail "event without ph");
      (match field "ts" J.num with
      | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
      | None -> Alcotest.fail "event without ts");
      (match field "pid" J.num with
      | Some 0.0 -> ()
      | _ -> Alcotest.fail "event without pid 0");
      match field "tid" J.num with
      | Some tid -> Alcotest.(check bool) "tid normalised" true (tid >= 0.0 && tid < 16.0)
      | None -> Alcotest.fail "event without tid")
    events;
  (* All four phase kinds appear: spans, snapshots (counters), thread
     names (metadata). *)
  Alcotest.(check bool) "has spans" true (Hashtbl.mem phases "X");
  Alcotest.(check bool) "has counters" true (Hashtbl.mem phases "C");
  Alcotest.(check bool) "has metadata" true (Hashtbl.mem phases "M");
  (* Heap-introspection track exists and carries occupancy counters. *)
  let csv = Telemetry.hist_csv sink in
  Alcotest.(check bool) "alloc histogram present" true
    (String.length csv > 0
    && List.exists
         (fun line -> String.length line >= 6 && String.sub line 0 6 = "alloc,")
         (String.split_on_char '\n' csv))

(* Satellite: the reserved domain-tid band. Lifting [Domain.self ()]
   ids must never collide with sim-clock tids (which start at 1 and
   grow by creation) nor with the snapshot pseudo-tid, and the exported
   labels must come from the position within the band — raw domain ids
   are process-global spawn counters, so labelling by them would break
   byte-identical same-seed traces. *)
let test_domain_tid_namespace () =
  Alcotest.(check int) "band base" Telemetry.domain_tid_base (Telemetry.domain_tid 0);
  Alcotest.(check bool) "band is above any plausible clock id" true
    (Telemetry.domain_tid_base > 1 lsl 40);
  Alcotest.(check bool) "band is below the snapshot tid" true
    (Telemetry.domain_tid 1_000_000 < Telemetry.snapshot_tid);
  Alcotest.(check bool) "member" true (Telemetry.is_domain_tid (Telemetry.domain_tid 7));
  Alcotest.(check bool) "clock tids are not domain tids" false (Telemetry.is_domain_tid 3);
  Alcotest.(check bool) "snapshot tid is not a domain tid" false
    (Telemetry.is_domain_tid Telemetry.snapshot_tid);
  match Telemetry.domain_tid (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative domain id accepted"

let thread_labels json =
  match J.parse json with
  | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
  | Ok j ->
      let events = Option.value ~default:[] (Option.bind (J.member "traceEvents" j) J.arr) in
      List.filter_map
        (fun ev ->
          match Option.bind (J.member "ph" ev) J.str with
          | Some "M" ->
              Option.bind (J.member "args" ev) (fun a ->
                  Option.bind (J.member "name" a) J.str)
          | _ -> None)
        events

let test_domain_tracks_in_export () =
  (* Two sinks, same shape, different raw domain ids (as two runs of a
     pool would produce): labels are positional and the exports are
     byte-identical. Domain tracks sort after sim-thread tracks and
     before the "heap" track. *)
  let mk_sink d1 d2 =
    let sink = Telemetry.create () in
    Telemetry.span_named sink ~tid:1 ~name:"run" ~ts:0.0 ~dur:5.0;
    Telemetry.span_named sink ~tid:2 ~name:"run" ~ts:1.0 ~dur:5.0;
    Telemetry.span_named sink ~tid:(Telemetry.domain_tid d1) ~name:"par-drive" ~ts:0.0
      ~dur:100.0;
    Telemetry.span_named sink ~tid:(Telemetry.domain_tid d2) ~name:"par-drive" ~ts:0.0
      ~dur:90.0;
    Telemetry.counter_named sink ~tid:Telemetry.snapshot_tid ~name:"live" ~ts:2.0 ~value:1.0;
    sink
  in
  let j1 = Telemetry.chrome_json (mk_sink 3 9) in
  let j2 = Telemetry.chrome_json (mk_sink 4 11) in
  Alcotest.(check string) "positional labels make exports byte-identical" j1 j2;
  Alcotest.(check (list string))
    "track order: sim threads, then domains, then heap"
    [ "thread-0"; "thread-1"; "domain-0"; "domain-1"; "heap" ]
    (thread_labels j1)

let test_zero_perturbation () =
  (* Attaching a sink must not change simulated results: same makespan
     with telemetry on and off. *)
  let _, r_on = traced_run ~seed:11 in
  let r_off = Workloads.Larson.run (mk ()) ~params:larson_params ~seed:11 () in
  Alcotest.(check (float 1e-9)) "identical makespans"
    r_off.Workloads.Driver.makespan_ns r_on.Workloads.Driver.makespan_ns;
  Alcotest.(check int) "identical op counts" r_off.Workloads.Driver.total_ops
    r_on.Workloads.Driver.total_ops

let test_fuzz_plan_telemetry () =
  (* A failing plan replayed with a sink yields a non-empty tail whose
     capture does not change the verdict. *)
  let plan =
    match Fault.Plan.of_string "v=log seed=5 ops=40 crash=200 torn=line tseed=1 rcrash=-" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let bare = Fault.Fuzz.run_plan plan in
  let sink = Telemetry.create () in
  let traced = Fault.Fuzz.run_plan ~telemetry:sink plan in
  Alcotest.(check bool) "same verdict" true
    (match (bare, traced) with Ok _, Ok _ | Error _, Error _ -> true | _ -> false);
  Alcotest.(check bool) "timeline captured" true (Telemetry.events_recorded sink > 0);
  Alcotest.(check bool) "tail renders" true (Telemetry.tail_events sink ~n:8 <> [])

(* --- Blame-tree attribution ---------------------------------------------- *)

module A = Telemetry.Attr

let test_attr_blame_tree () =
  (* Hand-driven op: charges land on (frame, component) leaves, frame
     self-time is wall minus children and charges, the root completion
     feeds the op histogram, and the folded export is exact. *)
  let sink = Telemetry.create () in
  let a = Telemetry.enable_attribution sink in
  Alcotest.(check bool) "enable is idempotent" true (Telemetry.enable_attribution sink == a);
  A.enter_root_named a ~tid:3 ~name:"op" ~ts:0.0;
  A.charge_named a ~tid:3 ~name:"fence" ~ns:10.0;
  A.enter_named a ~tid:3 ~name:"refill" ~ts:20.0;
  A.charge_named a ~tid:3 ~name:"flush" ~ns:30.0;
  A.leave a ~tid:3 ~ts:60.0;
  A.leave a ~tid:3 ~ts:100.0;
  Alcotest.(check string) "folded export"
    "op 50\nop;fence 10\nop;refill 10\nop;refill;flush 30\n" (A.folded a);
  Alcotest.(check (list string)) "op names" [ "op" ] (A.op_names a);
  let h = A.op_histogram a "op" in
  Alcotest.(check int) "one completion" 1 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "op wall time" 100.0 (Telemetry.Histogram.mean h);
  (* nodes carries counts too: the refill frame completed once, the
     flush charge hit once. *)
  List.iter
    (fun (path, self, count) ->
      match String.concat ";" path with
      | "op" -> Alcotest.(check (float 1e-9)) "op self" 50.0 self
      | "op;fence" -> Alcotest.(check int) "fence count" 1 count
      | "op;refill" -> Alcotest.(check (float 1e-9)) "refill self" 10.0 self
      | "op;refill;flush" -> Alcotest.(check (float 1e-9)) "flush self" 30.0 self
      | p -> Alcotest.fail ("unexpected node " ^ p))
    (A.nodes a)

let test_attr_edge_cases () =
  let sink = Telemetry.create () in
  let a = Telemetry.enable_attribution sink in
  (* A charge with no open frame still lands (directly under the root)
     rather than being dropped or crashing. *)
  A.charge_named a ~tid:0 ~name:"orphan" ~ns:5.0;
  (* Leaving with no open frame is a no-op. *)
  A.leave a ~tid:0 ~ts:50.0;
  Alcotest.(check string) "orphan charge kept" "orphan 5\n" (A.folded a);
  (* enter_root resets a stack left open by a faulted op. *)
  A.enter_root_named a ~tid:0 ~name:"op1" ~ts:0.0;
  A.enter_named a ~tid:0 ~name:"inner" ~ts:1.0;
  Alcotest.(check int) "two frames open" 2 (A.depth a ~tid:0);
  A.enter_root_named a ~tid:0 ~name:"op2" ~ts:2.0;
  Alcotest.(check int) "root reset the stack" 1 (A.depth a ~tid:0);
  (* Charges beyond the frame's wall time clamp self at zero (batched
     flush charges are pipeline occupancy and can outlast the op), but
     the op histogram still records the true wall time. *)
  A.charge_named a ~tid:0 ~name:"pipeline" ~ns:1000.0;
  A.leave a ~tid:0 ~ts:52.0;
  let h = A.op_histogram a "op2" in
  Alcotest.(check (float 1e-9)) "wall time not inflated" 50.0 (Telemetry.Histogram.mean h);
  List.iter
    (fun (path, self, _) ->
      if String.concat ";" path = "op2" then
        Alcotest.(check (float 1e-9)) "self clamped at 0" 0.0 self)
    (A.nodes a)

let test_attr_slo_windows () =
  let sink = Telemetry.create () in
  let a = Telemetry.enable_attribution sink in
  A.set_slo a ~window_ns:100.0 ~targets:[ ("op", 10.0, 0.9) ];
  let complete ~start ~stop =
    A.enter_root_named a ~tid:0 ~name:"op" ~ts:start;
    A.leave a ~tid:0 ~ts:stop
  in
  complete ~start:0.0 ~stop:5.0;
  complete ~start:10.0 ~stop:30.0;
  complete ~start:150.0 ~stop:170.0;
  Alcotest.(check int) "two violations" 2 (A.violations a ~op:"op");
  (match A.windows a ~op:"op" with
  | [ (0, h0, v0); (1, h1, v1) ] ->
      Alcotest.(check int) "window 0 count" 2 (Telemetry.Histogram.count h0);
      Alcotest.(check int) "window 0 violations" 1 v0;
      Alcotest.(check int) "window 1 count" 1 (Telemetry.Histogram.count h1);
      Alcotest.(check int) "window 1 violations" 1 v1
  | ws -> Alcotest.fail (Printf.sprintf "expected windows 0 and 1, got %d" (List.length ws)));
  (* Burn rate: 2 of 3 ops violated a 10% error budget. *)
  Alcotest.(check (float 1e-9)) "burn rate" (2.0 /. 3.0 /. 0.1)
    (Harness.Slo_report.burn_rate ~violations:2 ~count:3 ~goal:0.9);
  Alcotest.(check (float 1e-9)) "no ops, no burn" 0.0
    (Harness.Slo_report.burn_rate ~violations:0 ~count:0 ~goal:0.9);
  (* Degradation events are capped, ordered, and annotate the timeline. *)
  A.note_event a ~ts:42.0 ~name:"media:repair";
  A.note_event a ~ts:77.0 ~name:"wal:checkpoint";
  Alcotest.(check (list (pair (float 1e-9) string))) "events oldest first"
    [ (42.0, "media:repair"); (77.0, "wal:checkpoint") ]
    (A.events a)

let test_attr_invalid_window () =
  let sink = Telemetry.create () in
  let a = Telemetry.enable_attribution sink in
  Alcotest.check_raises "zero window"
    (Invalid_argument "Telemetry.Attr.set_slo: window_ns must be positive (got 0)") (fun () ->
      A.set_slo a ~window_ns:0.0 ~targets:[])

(* --- SLO report: build, determinism, gate -------------------------------- *)

let slo_meta =
  {
    Harness.Slo_report.workload = "larson";
    allocator = "NVAlloc-LOG";
    threads = 4;
    seed = 13;
    batching = true;
    makespan_ns = 0.0;
    total_ops = 0;
  }

let attributed_run ~seed =
  Telemetry.reset_registered ();
  Telemetry.request_capture ();
  let inst = Fun.protect ~finally:Telemetry.cancel_capture (fun () -> mk ()) in
  let sink =
    match Telemetry.registered () with
    | [ (_, s) ] -> s
    | l -> Alcotest.fail (Printf.sprintf "expected 1 registered sink, got %d" (List.length l))
  in
  Telemetry.reset_registered ();
  let a = Telemetry.enable_attribution sink in
  A.set_slo a ~window_ns:100_000.0
    ~targets:Nvalloc_core.Config.log_default.Nvalloc_core.Config.slo_targets;
  let r = Workloads.Larson.run inst ~params:larson_params ~seed () in
  let meta =
    { slo_meta with seed; makespan_ns = r.Workloads.Driver.makespan_ns; total_ops = r.total_ops }
  in
  (Harness.Slo_report.build ~meta a, sink, r)

let test_slo_report_determinism () =
  (* Acceptance: same-seed runs produce byte-identical SLO reports,
     folded-stack exports and Prometheus expositions. *)
  let report1, sink1, r1 = attributed_run ~seed:13 in
  let report2, sink2, r2 = attributed_run ~seed:13 in
  Alcotest.(check string) "byte-identical report JSON" (J.to_string report1)
    (J.to_string report2);
  let f1 = Option.get (Telemetry.attribution sink1) and f2 = Option.get (Telemetry.attribution sink2) in
  Alcotest.(check string) "byte-identical folded stacks" (A.folded f1) (A.folded f2);
  Alcotest.(check string) "byte-identical prometheus" (Telemetry.prometheus sink1)
    (Telemetry.prometheus sink2);
  (* Attribution must not perturb the simulation either: same makespan
     as a bare run. *)
  let bare = Workloads.Larson.run (mk ()) ~params:larson_params ~seed:13 () in
  Alcotest.(check (float 1e-9)) "attribution does not perturb" bare.Workloads.Driver.makespan_ns
    r1.Workloads.Driver.makespan_ns;
  ignore r2;
  (* The report carries real content: ops with counts, a nonempty
     component breakdown, and every declared target present. *)
  let ops = Option.value ~default:[] (Option.bind (J.member "ops" report1) J.arr) in
  Alcotest.(check bool) "has op classes" true (List.length ops >= 2);
  List.iter
    (fun op ->
      match Option.bind (J.member "count" op) J.num with
      | Some c -> Alcotest.(check bool) "op count positive" true (c > 0.0)
      | None -> Alcotest.fail "op without count")
    ops;
  let comps = Option.value ~default:[] (Option.bind (J.member "components" report1) J.arr) in
  Alcotest.(check bool) "has components" true (List.length comps >= 3);
  (* Folded export is valid flamegraph input: every line "path int". *)
  String.split_on_char '\n' (A.folded f1)
  |> List.iter (fun line ->
         if line <> "" then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.fail ("folded line without space: " ^ line)
           | Some i -> (
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match int_of_string_opt v with
               | Some n -> Alcotest.(check bool) "folded value positive" true (n > 0)
               | None -> Alcotest.fail ("folded value not an int: " ^ line)))

let test_slo_report_gate () =
  let report, _, _ = attributed_run ~seed:13 in
  (* A report gates cleanly against itself. *)
  (match Harness.Slo_report.check ~baseline:report ~current:report with
  | Ok () -> ()
  | Error fs -> Alcotest.fail ("self-check failed: " ^ String.concat "; " fs));
  (* Identity mismatches fail loudly. *)
  let retag key v j =
    match j with
    | J.Obj fields -> J.Obj (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  (match
     Harness.Slo_report.check ~baseline:(retag "seed" (J.Num 99.0) report) ~current:report
   with
  | Error [ msg ] ->
      Alcotest.(check bool) "seed named" true
        (String.length msg >= 4 && String.sub msg 0 4 = "seed")
  | Error fs -> Alcotest.fail ("expected one failure, got " ^ String.concat "; " fs)
  | Ok () -> Alcotest.fail "seed mismatch passed");
  (* A doubled fence share trips the component gate. *)
  let inflate name j =
    match j with
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, x) ->
               if k <> "components" then (k, x)
               else
                 match x with
                 | J.Arr comps ->
                     ( k,
                       J.Arr
                         (List.map
                            (fun c ->
                              if Option.bind (J.member "component" c) J.str <> Some name then c
                              else
                                match c with
                                | J.Obj cf ->
                                    J.Obj
                                      (List.map
                                         (fun (ck, cv) ->
                                           if ck <> "share" then (ck, cv)
                                           else
                                             match cv with
                                             | J.Num s -> (ck, J.Num ((s *. 2.0) +. 0.1))
                                             | _ -> (ck, cv))
                                         cf)
                                | _ -> c)
                            comps) )
                 | _ -> (k, x))
             fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  match Harness.Slo_report.check ~baseline:report ~current:(inflate "fence" report) with
  | Error fs ->
      Alcotest.(check bool) "fence share gate trips" true
        (List.exists
           (fun m ->
             String.length m >= 15 && String.sub m 0 15 = "component fence")
           fs)
  | Ok () -> Alcotest.fail "inflated fence share passed the gate"

(* --- Stats JSON + reset satellites --------------------------------------- *)

let populated_stats () =
  let st = Pmem.Stats.create ~trace_limit:8 () in
  Pmem.Stats.record_flush st Pmem.Stats.Meta ~addr:64 ~reflush:false ~sequential:true ~ns:100.0;
  Pmem.Stats.record_flush st Pmem.Stats.Wal ~addr:128 ~reflush:true ~sequential:false ~ns:200.0;
  Pmem.Stats.record_flush st Pmem.Stats.Data ~addr:256 ~reflush:false ~sequential:true ~ns:300.0;
  Pmem.Stats.record_fence st ~ns:20.0;
  Pmem.Stats.record_read st ~ns:50.0;
  Pmem.Stats.charge_work st Pmem.Stats.Search ~ns:75.0;
  Pmem.Stats.record_fences_saved st 3;
  Pmem.Stats.record_flush_coalesced st;
  Pmem.Stats.record_group_commit st ~entries:5;
  st

let test_stats_json_roundtrip () =
  let st = populated_stats () in
  let s = Pmem.Stats.to_json_string st in
  match Pmem.Stats.of_json_string s with
  | Error e -> Alcotest.fail ("of_json failed: " ^ e)
  | Ok st' ->
      Alcotest.(check string) "round trip" s (Pmem.Stats.to_json_string st');
      Alcotest.(check int) "flushes" (Pmem.Stats.flushes st) (Pmem.Stats.flushes st');
      Alcotest.(check int) "reflushes" (Pmem.Stats.reflushes st) (Pmem.Stats.reflushes st');
      Alcotest.(check int) "fences_saved" 3 (Pmem.Stats.fences_saved st');
      Alcotest.(check int) "flushes_coalesced" 1 (Pmem.Stats.flushes_coalesced st');
      Alcotest.(check int) "group_commits" 1 (Pmem.Stats.group_commits st');
      Alcotest.(check int) "group_commit_entries" 5 (Pmem.Stats.group_commit_entries st');
      Alcotest.(check bool) "trace" true (Pmem.Stats.trace st = Pmem.Stats.trace st')

(* A v1 document (recorded before the batching pipeline) still parses:
   the batching counters default to zero. A v2 document missing them is
   rejected, not defaulted. *)
let test_stats_json_v1_compat () =
  let doc schema extra =
    Printf.sprintf
      {|{"schema":"%s","trace_limit":8,"flushes":7,"reflushes":1,
         "sequential_flushes":4,"random_flushes":3,"reflush_ratio":0.14,
         "flush_ns":{"meta":100,"wal":200,"log":0,"data":300},
         "fence_ns":20,"read_ns":50,"search_ns":75,"other_ns":0%s,
         "trace":[]}|}
      schema extra
  in
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v1" "") with
  | Error e -> Alcotest.fail ("v1 document rejected: " ^ e)
  | Ok st' ->
      Alcotest.(check int) "flushes survive" 7 (Pmem.Stats.flushes st');
      Alcotest.(check int) "fences_saved defaults to 0" 0 (Pmem.Stats.fences_saved st');
      Alcotest.(check int) "group_commits defaults to 0" 0 (Pmem.Stats.group_commits st'));
  (* The same fields under the v2 schema are a truncated document: the
     batching counters are required, not defaulted. *)
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v2" "") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v2 document without batching counters accepted");
  match
    Pmem.Stats.of_json_string
      (doc "nvalloc/stats/v2"
         {|,"fences_saved":3,"flushes_coalesced":1,"group_commits":1,
           "group_commit_entries":5,"group_commit_size":5|})
  with
  | Error e -> Alcotest.fail ("complete v2 document rejected: " ^ e)
  | Ok st' -> Alcotest.(check int) "v2 counters load" 3 (Pmem.Stats.fences_saved st')

let test_stats_json_rejects () =
  List.iter
    (fun s ->
      match Pmem.Stats.of_json_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("of_json accepted: " ^ s))
    [ "{}"; "{\"schema\":\"nvalloc/stats/v2\"}"; "[1,2]"; "not json" ]

let test_stats_reset_clears_trace () =
  let st = populated_stats () in
  Alcotest.(check bool) "trace non-empty before" true (Pmem.Stats.trace st <> []);
  Pmem.Stats.reset st;
  Alcotest.(check int) "flushes zero" 0 (Pmem.Stats.flushes st);
  Alcotest.(check bool) "trace cleared" true (Pmem.Stats.trace st = []);
  Alcotest.(check string) "reset = fresh" (Pmem.Stats.to_json_string (Pmem.Stats.create ~trace_limit:8 ()))
    (Pmem.Stats.to_json_string st);
  (* And the trace records again after the reset. *)
  Pmem.Stats.record_flush st Pmem.Stats.Meta ~addr:64 ~reflush:false ~sequential:true ~ns:1.0;
  Alcotest.(check int) "records after reset" 1 (List.length (Pmem.Stats.trace st))

let test_stats_trace_limit_zero () =
  let st = Pmem.Stats.create ~trace_limit:0 () in
  Pmem.Stats.record_flush st Pmem.Stats.Meta ~addr:64 ~reflush:false ~sequential:true ~ns:1.0;
  Alcotest.(check int) "counts still work" 1 (Pmem.Stats.flushes st);
  Alcotest.(check bool) "no trace kept" true (Pmem.Stats.trace st = []);
  Pmem.Stats.reset st;
  Alcotest.(check int) "reset fine" 0 (Pmem.Stats.flushes st)

let test_stats_trace_limit_negative () =
  Alcotest.check_raises "negative trace_limit"
    (Invalid_argument "Pmem.Stats.create: trace_limit must be >= 0 (got -1)") (fun () ->
      ignore (Pmem.Stats.create ~trace_limit:(-1) ()))

let test_device_reset_stats () =
  (* Device.reset_stats clears the reflush bookkeeping too: the same
     line flushed right after a reset is NOT counted as a reflush. *)
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let clock = Sim.Clock.create () in
  Pmem.Device.write_int dev 64 0xdead;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:8;
  Pmem.Device.write_int dev 64 0xbeef;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:8;
  Alcotest.(check int) "reflush seen" 1 (Pmem.Stats.reflushes (Pmem.Device.stats dev));
  Pmem.Device.reset_stats dev;
  Alcotest.(check int) "counters cleared" 0 (Pmem.Stats.flushes (Pmem.Device.stats dev));
  Pmem.Device.write_int dev 64 0xf00d;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:8;
  Alcotest.(check int) "no stale reflush" 0 (Pmem.Stats.reflushes (Pmem.Device.stats dev))

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_errors;
    Alcotest.test_case "json escape sequences" `Quick test_json_escapes;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "json error messages are pinned" `Quick test_json_error_stability;
    Alcotest.test_case "histogram" `Quick test_histogram;
    QCheck_alcotest.to_alcotest prop_histogram_merge;
    Alcotest.test_case "histogram merge edge cases" `Quick test_histogram_merge_empty;
    Alcotest.test_case "ring bounds + drop-oldest" `Quick test_ring_bounds;
    Alcotest.test_case "ring capacity validation" `Quick test_ring_capacity_validation;
    Alcotest.test_case "name interning" `Quick test_interning;
    Alcotest.test_case "same-seed trace is byte-identical" `Quick test_trace_determinism;
    Alcotest.test_case "trace JSON is well-formed" `Quick test_trace_validity;
    Alcotest.test_case "domain-tid band: no collisions, validated" `Quick
      test_domain_tid_namespace;
    Alcotest.test_case "domain tracks: positional labels, stable export" `Quick
      test_domain_tracks_in_export;
    Alcotest.test_case "telemetry does not perturb simulation" `Quick test_zero_perturbation;
    Alcotest.test_case "fuzz plan replay with sink" `Quick test_fuzz_plan_telemetry;
    Alcotest.test_case "attr: blame tree exact attribution" `Quick test_attr_blame_tree;
    Alcotest.test_case "attr: orphan charge, reset, clamp" `Quick test_attr_edge_cases;
    Alcotest.test_case "attr: slo windows + violations + burn" `Quick test_attr_slo_windows;
    Alcotest.test_case "attr: invalid window rejected" `Quick test_attr_invalid_window;
    Alcotest.test_case "slo report: deterministic + non-perturbing" `Quick
      test_slo_report_determinism;
    Alcotest.test_case "slo report: regression gate" `Quick test_slo_report_gate;
    Alcotest.test_case "stats: json round trip" `Quick test_stats_json_roundtrip;
    Alcotest.test_case "stats: json rejects bad input" `Quick test_stats_json_rejects;
    Alcotest.test_case "stats: v1 back-compat" `Quick test_stats_json_v1_compat;
    Alcotest.test_case "stats: reset clears trace" `Quick test_stats_reset_clears_trace;
    Alcotest.test_case "stats: trace_limit 0" `Quick test_stats_trace_limit_zero;
    Alcotest.test_case "stats: negative trace_limit" `Quick test_stats_trace_limit_negative;
    Alcotest.test_case "device: reset_stats clears reflush state" `Quick test_device_reset_stats;
  ]
