(* Telemetry: JSON printer/parser, histograms, bounded rings, trace
   determinism, zero perturbation of simulated results, and the Stats
   JSON round trip. *)

module J = Telemetry.Json

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Num 42.0);
        ("f", J.Num 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("a", J.Arr [ J.Num 0.0; J.Str ""; J.Obj [] ]);
      ]
  in
  let s = J.to_string v in
  (match J.parse s with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok v' -> Alcotest.(check string) "print/parse/print stable" s (J.to_string v'));
  (* Integral floats print without a decimal point. *)
  Alcotest.(check string) "integral" "42" (J.to_string (J.Num 42.0));
  Alcotest.(check string) "fractional" "1.500" (J.to_string (J.Num 1.5))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parse accepted garbage: " ^ s))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1}x" ]

(* --- Histogram ----------------------------------------------------------- *)

let test_histogram () =
  let h = Telemetry.Histogram.create "h" in
  Alcotest.(check int) "empty count" 0 (Telemetry.Histogram.count h);
  List.iter (Telemetry.Histogram.observe h) [ 100.0; 200.0; 300.0; 400.0; 100000.0 ];
  Alcotest.(check int) "count" 5 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "min" 100.0 (Telemetry.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100000.0 (Telemetry.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 20200.0 (Telemetry.Histogram.mean h);
  let p50 = Telemetry.Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 within factor-2 bucket" true (p50 >= 200.0 && p50 <= 512.0);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 100000.0
    (Telemetry.Histogram.percentile h 1.0);
  let p0 = Telemetry.Histogram.percentile h 0.0 in
  Alcotest.(check bool) "p0 within min's bucket" true (p0 >= 100.0 && p0 <= 128.0)

(* --- Rings --------------------------------------------------------------- *)

let test_ring_bounds () =
  let t = Telemetry.create ~ring_capacity:4 () in
  let name = Telemetry.intern t "ev" in
  for i = 1 to 10 do
    Telemetry.span t ~tid:0 ~name ~ts:(float_of_int i) ~dur:1.0
  done;
  Alcotest.(check int) "recorded" 10 (Telemetry.events_recorded t);
  Alcotest.(check int) "dropped oldest" 6 (Telemetry.events_dropped t);
  (* The tail holds the newest events, oldest first. *)
  let tail = Telemetry.tail_events t ~n:10 in
  Alcotest.(check int) "tail bounded by capacity" 4 (List.length tail);
  Alcotest.(check bool) "newest survives" true
    (List.exists (fun l -> String.length l > 0) tail)

let test_ring_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Telemetry.create: ring_capacity must be positive (got 0)") (fun () ->
      ignore (Telemetry.create ~ring_capacity:0 ()))

let test_interning () =
  let t = Telemetry.create () in
  let a = Telemetry.intern t "alloc" and b = Telemetry.intern t "free" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "stable" a (Telemetry.intern t "alloc");
  Alcotest.(check string) "name_of" "free" (Telemetry.name_of t b)

(* --- End-to-end: traced workload runs ------------------------------------ *)

let larson_params =
  { Workloads.Larson.slots = 64; ops = 500; min_size = 64; max_size = 256; cross_frac = 0.2 }

let mk () =
  Alloc_api.Instance.of_nvalloc
    ~config:
      {
        Nvalloc_core.Config.log_default with
        Nvalloc_core.Config.arenas = 2;
        root_slots = 1 lsl 16;
      }
    ~threads:4 ~dev_size:(256 * 1024 * 1024) ()

let traced_run ~seed =
  Telemetry.reset_registered ();
  Telemetry.request_capture ();
  let inst = Fun.protect ~finally:Telemetry.cancel_capture (fun () -> mk ()) in
  let sink =
    match Telemetry.registered () with
    | [ (_, s) ] -> s
    | l -> Alcotest.fail (Printf.sprintf "expected 1 registered sink, got %d" (List.length l))
  in
  Telemetry.reset_registered ();
  let r = Workloads.Larson.run inst ~params:larson_params ~seed () in
  (sink, r)

let test_trace_determinism () =
  (* Satellite: two same-seed runs export byte-identical trace JSON,
     even though raw clock ids differ between the runs (tids are
     normalised at export). *)
  let sink1, _ = traced_run ~seed:7 in
  let sink2, _ = traced_run ~seed:7 in
  let j1 = Telemetry.chrome_json sink1 and j2 = Telemetry.chrome_json sink2 in
  Alcotest.(check int) "same length" (String.length j1) (String.length j2);
  Alcotest.(check bool) "byte-identical JSON" true (String.equal j1 j2);
  Alcotest.(check string) "identical histogram CSV" (Telemetry.hist_csv sink1)
    (Telemetry.hist_csv sink2)

let test_trace_validity () =
  let sink, _ = traced_run ~seed:3 in
  Alcotest.(check bool) "events recorded" true (Telemetry.events_recorded sink > 0);
  let json =
    match J.parse (Telemetry.chrome_json sink) with
    | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
    | Ok j -> j
  in
  let events =
    match Option.bind (J.member "traceEvents" json) J.arr with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 100);
  let phases = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let field name = Option.bind (J.member name ev) in
      (match field "ph" J.str with
      | Some ("X" | "i" | "C" | "M") as p -> Hashtbl.replace phases (Option.get p) ()
      | Some ph -> Alcotest.fail ("unexpected ph " ^ ph)
      | None -> Alcotest.fail "event without ph");
      (match field "ts" J.num with
      | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
      | None -> Alcotest.fail "event without ts");
      (match field "pid" J.num with
      | Some 0.0 -> ()
      | _ -> Alcotest.fail "event without pid 0");
      match field "tid" J.num with
      | Some tid -> Alcotest.(check bool) "tid normalised" true (tid >= 0.0 && tid < 16.0)
      | None -> Alcotest.fail "event without tid")
    events;
  (* All four phase kinds appear: spans, snapshots (counters), thread
     names (metadata). *)
  Alcotest.(check bool) "has spans" true (Hashtbl.mem phases "X");
  Alcotest.(check bool) "has counters" true (Hashtbl.mem phases "C");
  Alcotest.(check bool) "has metadata" true (Hashtbl.mem phases "M");
  (* Heap-introspection track exists and carries occupancy counters. *)
  let csv = Telemetry.hist_csv sink in
  Alcotest.(check bool) "alloc histogram present" true
    (String.length csv > 0
    && List.exists
         (fun line -> String.length line >= 6 && String.sub line 0 6 = "alloc,")
         (String.split_on_char '\n' csv))

let test_zero_perturbation () =
  (* Attaching a sink must not change simulated results: same makespan
     with telemetry on and off. *)
  let _, r_on = traced_run ~seed:11 in
  let r_off = Workloads.Larson.run (mk ()) ~params:larson_params ~seed:11 () in
  Alcotest.(check (float 1e-9)) "identical makespans"
    r_off.Workloads.Driver.makespan_ns r_on.Workloads.Driver.makespan_ns;
  Alcotest.(check int) "identical op counts" r_off.Workloads.Driver.total_ops
    r_on.Workloads.Driver.total_ops

let test_fuzz_plan_telemetry () =
  (* A failing plan replayed with a sink yields a non-empty tail whose
     capture does not change the verdict. *)
  let plan =
    match Fault.Plan.of_string "v=log seed=5 ops=40 crash=200 torn=line tseed=1 rcrash=-" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let bare = Fault.Fuzz.run_plan plan in
  let sink = Telemetry.create () in
  let traced = Fault.Fuzz.run_plan ~telemetry:sink plan in
  Alcotest.(check bool) "same verdict" true
    (match (bare, traced) with Ok _, Ok _ | Error _, Error _ -> true | _ -> false);
  Alcotest.(check bool) "timeline captured" true (Telemetry.events_recorded sink > 0);
  Alcotest.(check bool) "tail renders" true (Telemetry.tail_events sink ~n:8 <> [])

(* --- Stats JSON + reset satellites --------------------------------------- *)

let populated_stats () =
  let st = Pmem.Stats.create ~trace_limit:8 () in
  Pmem.Stats.record_flush st Pmem.Stats.Meta ~addr:64 ~reflush:false ~sequential:true ~ns:100.0;
  Pmem.Stats.record_flush st Pmem.Stats.Wal ~addr:128 ~reflush:true ~sequential:false ~ns:200.0;
  Pmem.Stats.record_flush st Pmem.Stats.Data ~addr:256 ~reflush:false ~sequential:true ~ns:300.0;
  Pmem.Stats.record_fence st ~ns:20.0;
  Pmem.Stats.record_read st ~ns:50.0;
  Pmem.Stats.charge_work st Pmem.Stats.Search ~ns:75.0;
  Pmem.Stats.record_fences_saved st 3;
  Pmem.Stats.record_flush_coalesced st;
  Pmem.Stats.record_group_commit st ~entries:5;
  st

let test_stats_json_roundtrip () =
  let st = populated_stats () in
  let s = Pmem.Stats.to_json_string st in
  match Pmem.Stats.of_json_string s with
  | Error e -> Alcotest.fail ("of_json failed: " ^ e)
  | Ok st' ->
      Alcotest.(check string) "round trip" s (Pmem.Stats.to_json_string st');
      Alcotest.(check int) "flushes" (Pmem.Stats.flushes st) (Pmem.Stats.flushes st');
      Alcotest.(check int) "reflushes" (Pmem.Stats.reflushes st) (Pmem.Stats.reflushes st');
      Alcotest.(check int) "fences_saved" 3 (Pmem.Stats.fences_saved st');
      Alcotest.(check int) "flushes_coalesced" 1 (Pmem.Stats.flushes_coalesced st');
      Alcotest.(check int) "group_commits" 1 (Pmem.Stats.group_commits st');
      Alcotest.(check int) "group_commit_entries" 5 (Pmem.Stats.group_commit_entries st');
      Alcotest.(check bool) "trace" true (Pmem.Stats.trace st = Pmem.Stats.trace st')

(* A v1 document (recorded before the batching pipeline) still parses:
   the batching counters default to zero. A v2 document missing them is
   rejected, not defaulted. *)
let test_stats_json_v1_compat () =
  let doc schema extra =
    Printf.sprintf
      {|{"schema":"%s","trace_limit":8,"flushes":7,"reflushes":1,
         "sequential_flushes":4,"random_flushes":3,"reflush_ratio":0.14,
         "flush_ns":{"meta":100,"wal":200,"log":0,"data":300},
         "fence_ns":20,"read_ns":50,"search_ns":75,"other_ns":0%s,
         "trace":[]}|}
      schema extra
  in
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v1" "") with
  | Error e -> Alcotest.fail ("v1 document rejected: " ^ e)
  | Ok st' ->
      Alcotest.(check int) "flushes survive" 7 (Pmem.Stats.flushes st');
      Alcotest.(check int) "fences_saved defaults to 0" 0 (Pmem.Stats.fences_saved st');
      Alcotest.(check int) "group_commits defaults to 0" 0 (Pmem.Stats.group_commits st'));
  (* The same fields under the v2 schema are a truncated document: the
     batching counters are required, not defaulted. *)
  (match Pmem.Stats.of_json_string (doc "nvalloc/stats/v2" "") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v2 document without batching counters accepted");
  match
    Pmem.Stats.of_json_string
      (doc "nvalloc/stats/v2"
         {|,"fences_saved":3,"flushes_coalesced":1,"group_commits":1,
           "group_commit_entries":5,"group_commit_size":5|})
  with
  | Error e -> Alcotest.fail ("complete v2 document rejected: " ^ e)
  | Ok st' -> Alcotest.(check int) "v2 counters load" 3 (Pmem.Stats.fences_saved st')

let test_stats_json_rejects () =
  List.iter
    (fun s ->
      match Pmem.Stats.of_json_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("of_json accepted: " ^ s))
    [ "{}"; "{\"schema\":\"nvalloc/stats/v2\"}"; "[1,2]"; "not json" ]

let test_stats_reset_clears_trace () =
  let st = populated_stats () in
  Alcotest.(check bool) "trace non-empty before" true (Pmem.Stats.trace st <> []);
  Pmem.Stats.reset st;
  Alcotest.(check int) "flushes zero" 0 (Pmem.Stats.flushes st);
  Alcotest.(check bool) "trace cleared" true (Pmem.Stats.trace st = []);
  Alcotest.(check string) "reset = fresh" (Pmem.Stats.to_json_string (Pmem.Stats.create ~trace_limit:8 ()))
    (Pmem.Stats.to_json_string st);
  (* And the trace records again after the reset. *)
  Pmem.Stats.record_flush st Pmem.Stats.Meta ~addr:64 ~reflush:false ~sequential:true ~ns:1.0;
  Alcotest.(check int) "records after reset" 1 (List.length (Pmem.Stats.trace st))

let test_stats_trace_limit_zero () =
  let st = Pmem.Stats.create ~trace_limit:0 () in
  Pmem.Stats.record_flush st Pmem.Stats.Meta ~addr:64 ~reflush:false ~sequential:true ~ns:1.0;
  Alcotest.(check int) "counts still work" 1 (Pmem.Stats.flushes st);
  Alcotest.(check bool) "no trace kept" true (Pmem.Stats.trace st = []);
  Pmem.Stats.reset st;
  Alcotest.(check int) "reset fine" 0 (Pmem.Stats.flushes st)

let test_stats_trace_limit_negative () =
  Alcotest.check_raises "negative trace_limit"
    (Invalid_argument "Pmem.Stats.create: trace_limit must be >= 0 (got -1)") (fun () ->
      ignore (Pmem.Stats.create ~trace_limit:(-1) ()))

let test_device_reset_stats () =
  (* Device.reset_stats clears the reflush bookkeeping too: the same
     line flushed right after a reset is NOT counted as a reflush. *)
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let clock = Sim.Clock.create () in
  Pmem.Device.write_int dev 64 0xdead;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:8;
  Pmem.Device.write_int dev 64 0xbeef;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:8;
  Alcotest.(check int) "reflush seen" 1 (Pmem.Stats.reflushes (Pmem.Device.stats dev));
  Pmem.Device.reset_stats dev;
  Alcotest.(check int) "counters cleared" 0 (Pmem.Stats.flushes (Pmem.Device.stats dev));
  Pmem.Device.write_int dev 64 0xf00d;
  Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:64 ~len:8;
  Alcotest.(check int) "no stale reflush" 0 (Pmem.Stats.reflushes (Pmem.Device.stats dev))

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_errors;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "ring bounds + drop-oldest" `Quick test_ring_bounds;
    Alcotest.test_case "ring capacity validation" `Quick test_ring_capacity_validation;
    Alcotest.test_case "name interning" `Quick test_interning;
    Alcotest.test_case "same-seed trace is byte-identical" `Quick test_trace_determinism;
    Alcotest.test_case "trace JSON is well-formed" `Quick test_trace_validity;
    Alcotest.test_case "telemetry does not perturb simulation" `Quick test_zero_perturbation;
    Alcotest.test_case "fuzz plan replay with sink" `Quick test_fuzz_plan_telemetry;
    Alcotest.test_case "stats: json round trip" `Quick test_stats_json_roundtrip;
    Alcotest.test_case "stats: json rejects bad input" `Quick test_stats_json_rejects;
    Alcotest.test_case "stats: v1 back-compat" `Quick test_stats_json_v1_compat;
    Alcotest.test_case "stats: reset clears trace" `Quick test_stats_reset_clears_trace;
    Alcotest.test_case "stats: trace_limit 0" `Quick test_stats_trace_limit_zero;
    Alcotest.test_case "stats: negative trace_limit" `Quick test_stats_trace_limit_negative;
    Alcotest.test_case "device: reset_stats clears reflush state" `Quick test_device_reset_stats;
  ]
