(* Large allocator: best-fit, split/coalesce, decay, huge path, both
   bookkeeping modes. Exercised through a minimal heap. *)

open Nvalloc_core

let mib = 1024 * 1024

let mk ?(log_bookkeeping = true) () =
  let config =
    {
      Config.log_default with
      Config.arenas = 1;
      root_slots = 1024;
      booklog_chunks = 256;
      wal_entries = 1024;
      log_bookkeeping;
      (* Immediate decay windows would perturb the tests; keep them long. *)
      decay_interval_ns = 1e12;
      decay_window_ns = 1e13;
    }
  in
  let dev = Pmem.Device.create ~size:(256 * mib) () in
  let clock = Sim.Clock.create () in
  let heap = Heap.init dev config in
  Heap.set_state heap clock Heap.Running;
  let large =
    Extent.create heap ~mode:
      (if log_bookkeeping then
         Extent.Logged
           (Booklog.create dev ~base:(Heap.booklog_base heap ~arena:0) ~chunks:256
              ~interleave:true)
       else Extent.In_place)
      ~region_lock:(Sim.Lock.create ())
      ~on_new_extent:(fun _ -> ())
      ~on_drop_extent:(fun _ -> ())
  in
  (dev, clock, heap, large)

let test_malloc_free_roundtrip () =
  let _, clock, _, large = mk () in
  let v = Extent.malloc large clock ~size:65536 ~kind:Booklog.Extent in
  Alcotest.(check int) "rounded size" 65536 v.Extent.size;
  Alcotest.(check bool) "activated" true (v.Extent.state = Extent.Activated);
  Alcotest.(check int) "activated bytes" 65536 (Extent.activated_bytes large);
  Extent.free large clock v;
  Alcotest.(check int) "nothing activated" 0 (Extent.activated_bytes large);
  Alcotest.(check bool) "reclaimed" true (Extent.reclaimed_bytes large > 0)

let test_best_fit_reuse () =
  let _, clock, _, large = mk () in
  let a = Extent.malloc large clock ~size:(128 * 1024) ~kind:Booklog.Extent in
  let b = Extent.malloc large clock ~size:(64 * 1024) ~kind:Booklog.Extent in
  let addr_a = a.Extent.addr in
  Extent.free large clock a;
  (* A 100 KiB request best-fits the freed 128 KiB hole, not fresh space. *)
  let c = Extent.malloc large clock ~size:(100 * 1024) ~kind:Booklog.Extent in
  Alcotest.(check int) "reuses the hole" addr_a c.Extent.addr;
  Extent.free large clock b;
  Extent.free large clock c

let test_split_and_coalesce () =
  let _, clock, _, large = mk () in
  let vs =
    List.init 8 (fun _ -> Extent.malloc large clock ~size:(64 * 1024) ~kind:Booklog.Extent)
  in
  (* Contiguous carve-out from one region. *)
  let sorted = List.sort compare (List.map (fun v -> v.Extent.addr) vs) in
  let rec contiguous = function
    | a :: (b :: _ as rest) -> a + (64 * 1024) = b && contiguous rest
    | _ -> true
  in
  Alcotest.(check bool) "contiguous split" true (contiguous sorted);
  (* Free all: they coalesce back into one reclaimed extent covering the
     whole region data area. *)
  List.iter (fun v -> Extent.free large clock v) vs;
  let v = Extent.malloc large clock ~size:(512 * 1024) ~kind:Booklog.Extent in
  Alcotest.(check int) "coalesced space serves a big request" (List.hd sorted) v.Extent.addr

let test_huge_path () =
  let _, clock, heap, large = mk () in
  let before = Pmem.Dax.mapped_bytes (Heap.dax heap) in
  let v = Extent.malloc large clock ~size:(3 * mib) ~kind:Booklog.Extent in
  Alcotest.(check bool) "dedicated region mapped" true
    (Pmem.Dax.mapped_bytes (Heap.dax heap) >= before + (3 * mib));
  Extent.free large clock v;
  Alcotest.(check int) "returned to the OS" before (Pmem.Dax.mapped_bytes (Heap.dax heap))

let test_decay_releases_memory () =
  let config_decay = 1e6 (* 1 ms *) in
  let dev = Pmem.Device.create ~size:(256 * mib) () in
  let clock = Sim.Clock.create () in
  let config =
    {
      Config.log_default with
      Config.arenas = 1;
      root_slots = 1024;
      decay_interval_ns = config_decay;
      decay_window_ns = 4.0 *. config_decay;
    }
  in
  let heap = Heap.init dev config in
  let large =
    Extent.create heap
      ~mode:
        (Extent.Logged
           (Booklog.create dev ~base:(Heap.booklog_base heap ~arena:0) ~chunks:256
              ~interleave:true))
      ~region_lock:(Sim.Lock.create ())
      ~on_new_extent:(fun _ -> ())
      ~on_drop_extent:(fun _ -> ())
  in
  let vs =
    List.init 4 (fun _ -> Extent.malloc large clock ~size:(512 * 1024) ~kind:Booklog.Extent)
  in
  List.iter (fun v -> Extent.free large clock v) vs;
  let mapped_full = Pmem.Dax.mapped_bytes (Heap.dax heap) in
  Alcotest.(check bool) "reclaimed memory still mapped" true (mapped_full > 0);
  (* Advance simulated time well past the decay window and tick. *)
  Sim.Clock.charge clock (20.0 *. config_decay);
  Extent.decay_tick large clock;
  Sim.Clock.charge clock (20.0 *. config_decay);
  Extent.decay_tick large clock;
  Alcotest.(check bool) "memory decayed"
    true
    (Pmem.Dax.mapped_bytes (Heap.dax heap) < mapped_full
    || Extent.retained_bytes large > 0)

let test_empty_page_release () =
  (* Page-descriptor grouping: when a region's last live extent dies and
     the frees coalesce back into one whole-page reclaimed extent, the
     next decay tick unmaps the region outright — without waiting for
     the retain window. *)
  let config_decay = 1e6 (* 1 ms *) in
  let dev = Pmem.Device.create ~size:(256 * mib) () in
  let clock = Sim.Clock.create () in
  let config =
    {
      Config.log_default with
      Config.arenas = 1;
      root_slots = 1024;
      decay_interval_ns = config_decay;
      decay_window_ns = 100.0 *. config_decay;
    }
  in
  let heap = Heap.init dev config in
  let large =
    Extent.create heap
      ~mode:
        (Extent.Logged
           (Booklog.create dev ~base:(Heap.booklog_base heap ~arena:0) ~chunks:256
              ~interleave:true))
      ~region_lock:(Sim.Lock.create ())
      ~on_new_extent:(fun _ -> ())
      ~on_drop_extent:(fun _ -> ())
  in
  let before = Pmem.Dax.mapped_bytes (Heap.dax heap) in
  (* Eight 512 KiB extents carve up exactly one 4 MiB region. *)
  let vs =
    List.init 8 (fun _ -> Extent.malloc large clock ~size:(512 * 1024) ~kind:Booklog.Extent)
  in
  Alcotest.(check int) "one region mapped" 1 (Extent.page_count large);
  (match Extent.page_of_addr large (List.hd vs).Extent.addr with
  | None -> Alcotest.fail "page descriptor missing"
  | Some pd ->
      Alcotest.(check int) "descriptor counts live extents" 8 pd.Extent.activated_count;
      Alcotest.(check bool) "not dedicated" false pd.Extent.dedicated);
  List.iter (fun v -> Extent.free large clock v) vs;
  (* Tick just past the decay interval: the retain window (100 ms) is
     nowhere near over, yet the fully-free page goes back to the OS. *)
  Sim.Clock.charge clock (2.0 *. config_decay);
  Extent.decay_tick large clock;
  Alcotest.(check int) "empty region unmapped" before
    (Pmem.Dax.mapped_bytes (Heap.dax heap));
  Alcotest.(check int) "page descriptor dropped" 0 (Extent.page_count large);
  Alcotest.(check int) "no reclaimed bytes left" 0 (Extent.reclaimed_bytes large)

let test_partial_page_stays_mapped () =
  (* The release is gated on the descriptor's live count and the extent
     spanning the whole data area: one surviving extent pins the region. *)
  let config_decay = 1e6 in
  let dev = Pmem.Device.create ~size:(256 * mib) () in
  let clock = Sim.Clock.create () in
  let config =
    {
      Config.log_default with
      Config.arenas = 1;
      root_slots = 1024;
      decay_interval_ns = config_decay;
      decay_window_ns = 100.0 *. config_decay;
    }
  in
  let heap = Heap.init dev config in
  let large =
    Extent.create heap
      ~mode:
        (Extent.Logged
           (Booklog.create dev ~base:(Heap.booklog_base heap ~arena:0) ~chunks:256
              ~interleave:true))
      ~region_lock:(Sim.Lock.create ())
      ~on_new_extent:(fun _ -> ())
      ~on_drop_extent:(fun _ -> ())
  in
  let vs =
    List.init 8 (fun _ -> Extent.malloc large clock ~size:(512 * 1024) ~kind:Booklog.Extent)
  in
  let survivor, rest =
    match vs with v :: rest -> (v, rest) | [] -> assert false
  in
  List.iter (fun v -> Extent.free large clock v) rest;
  Sim.Clock.charge clock (2.0 *. config_decay);
  Extent.decay_tick large clock;
  Alcotest.(check int) "region still mapped" 1 (Extent.page_count large);
  (match Extent.page_of_addr large survivor.Extent.addr with
  | None -> Alcotest.fail "page descriptor missing"
  | Some pd -> Alcotest.(check int) "one live extent" 1 pd.Extent.activated_count);
  (* Freeing the survivor leaves the page split between a reclaimed head
     and a retained tail (coalescing is per-state); once the full decay
     window passes, the head decommits, coalesces with the tail into one
     spanning retained extent, and the page releases in the same tick. *)
  Extent.free large clock survivor;
  Sim.Clock.charge clock (300.0 *. config_decay);
  Extent.decay_tick large clock;
  Alcotest.(check int) "now released" 0 (Extent.page_count large)

let prop_no_overlap_model =
  (* Random alloc/free sequences never hand out overlapping live extents
     and never lose bytes (model-based). *)
  let open QCheck in
  Test.make ~name:"extent allocations never overlap (model)" ~count:40
    (make
       Gen.(
         pair bool
           (list_size (int_range 1 120)
              (pair (int_range 16 512) (int_range 0 1000)))))
    (fun (log_bookkeeping, ops) ->
      let _, clock, _, large = mk ~log_bookkeeping () in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (kib, sel) ->
          if List.length !live > 20 && sel mod 2 = 0 then begin
            let idx = sel mod List.length !live in
            let v = List.nth !live idx in
            live := List.filteri (fun i _ -> i <> idx) !live;
            Extent.free large clock v
          end
          else begin
            let v = Extent.malloc large clock ~size:(kib * 1024) ~kind:Booklog.Extent in
            List.iter
              (fun u ->
                if
                  v.Extent.addr < u.Extent.addr + u.Extent.size
                  && u.Extent.addr < v.Extent.addr + v.Extent.size
                then ok := false)
              !live;
            live := v :: !live
          end)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "malloc/free roundtrip" `Quick test_malloc_free_roundtrip;
    Alcotest.test_case "best-fit reuses holes" `Quick test_best_fit_reuse;
    Alcotest.test_case "split and coalesce" `Quick test_split_and_coalesce;
    Alcotest.test_case "huge allocations get own regions" `Quick test_huge_path;
    Alcotest.test_case "decay releases idle memory" `Quick test_decay_releases_memory;
    Alcotest.test_case "empty page released whole" `Quick test_empty_page_release;
    Alcotest.test_case "partial page stays mapped" `Quick test_partial_page_stays_mapped;
    QCheck_alcotest.to_alcotest prop_no_overlap_model;
  ]
