(* Slab layout, header persistence, index-entry packing; tcache rotation
   semantics; size classes. *)

open Nvalloc_core

let mk_dev () = Pmem.Device.create ~size:(1 lsl 20) ()

(* --- size classes --------------------------------------------------------- *)

let test_size_class_table () =
  Alcotest.(check int) "first class is 16 B" 16 (Size_class.size_of 0);
  Alcotest.(check int) "largest is 16 KiB" 16384 (Size_class.size_of (Size_class.count - 1));
  Alcotest.(check (option int)) "zero has no class" None (Size_class.of_size 0);
  Alcotest.(check (option int)) "above max is large" None (Size_class.of_size 16385);
  Alcotest.(check (option int)) "1 B fits class 0" (Some 0) (Size_class.of_size 1)

let prop_size_class_fits =
  let open QCheck in
  Test.make ~name:"of_size returns the smallest fitting class" ~count:300
    (make Gen.(int_range 1 16384))
    (fun n ->
      match Size_class.of_size n with
      | None -> false
      | Some c ->
          Size_class.size_of c >= n && (c = 0 || Size_class.size_of (c - 1) < n))

let prop_classes_monotone =
  let open QCheck in
  Test.make ~name:"class sizes strictly increase" ~count:1
    (make Gen.(return ()))
    (fun () ->
      let ok = ref true in
      for c = 1 to Size_class.count - 1 do
        if Size_class.size_of c <= Size_class.size_of (c - 1) then ok := false
      done;
      !ok)

(* --- slab layout ------------------------------------------------------------ *)

let prop_layout_sound =
  (* For every class and mapping: blocks fit the slab, never overlap the
     header, and the bitmap covers them. *)
  let open QCheck in
  Test.make ~name:"slab layouts are sound for all classes" ~count:80
    (make
       Gen.(
         pair (int_range 0 (Size_class.count - 1))
           (oneof [ return Bitmap.Sequential; map (fun s -> Bitmap.Interleaved s) (int_range 2 32) ])))
    (fun (class_idx, mapping) ->
      let l = Slab.layout_of_class ~class_idx ~mapping in
      l.Slab.nblocks > 0
      && l.Slab.data_off >= 64 + (Slab.index_capacity * 2) + (l.Slab.bitmap_lines * 64)
      && l.Slab.data_off + (l.Slab.nblocks * l.Slab.block_size) <= Slab.slab_bytes
      && Bitmap.lines_for ~nbits:l.Slab.nblocks ~mapping = l.Slab.bitmap_lines)

let test_format_and_recover () =
  let dev = mk_dev () in
  let mapping = Bitmap.Interleaved 6 in
  let layout = Slab.layout_of_class ~class_idx:3 ~mapping in
  let s = Slab.format dev ~addr:65536 ~arena:0 ~mapping layout in
  Alcotest.(check bool) "magic present" true (Slab.is_slab_header dev 65536);
  Alcotest.(check int) "class persisted" 3 (Slab.read_class dev 65536);
  Alcotest.(check int) "all free" layout.Slab.nblocks s.Slab.free_count;
  (* Mark a few blocks, then rebuild from the header. *)
  Bitmap.set dev s.Slab.bitmap 0;
  Bitmap.set dev s.Slab.bitmap 5;
  let s', undone = Slab.recover dev ~addr:65536 ~arena:0 ~mapping in
  Alcotest.(check bool) "no undo needed" false undone;
  Alcotest.(check int) "free count reflects bits" (layout.Slab.nblocks - 2) s'.Slab.free_count;
  Alcotest.(check bool) "free set excludes set bits" true
    ((not (Slab.free_mem s' 0)) && not (Slab.free_mem s' 5))

let prop_index_entry_roundtrip =
  let open QCheck in
  Test.make ~name:"index entries pack/unpack" ~count:200
    (make Gen.(pair (int_range 0 4095) bool))
    (fun (block, allocated) ->
      Slab.unpack_index_entry (Slab.pack_index_entry ~block ~allocated) = (block, allocated))

let test_block_addr_roundtrip () =
  let dev = mk_dev () in
  let mapping = Bitmap.Sequential in
  let layout = Slab.layout_of_class ~class_idx:0 ~mapping in
  let s = Slab.format dev ~addr:65536 ~arena:0 ~mapping layout in
  for b = 0 to layout.Slab.nblocks - 1 do
    let addr = Slab.block_addr s b in
    assert (Slab.block_index s addr = b);
    assert (Slab.contains_new_block s addr)
  done;
  Alcotest.(check bool) "misaligned address rejected" false
    (Slab.contains_new_block s (Slab.block_addr s 0 + 1))

(* --- tcache ------------------------------------------------------------------ *)

let mk_slab dev = Slab.format dev ~addr:65536 ~arena:0 ~mapping:(Bitmap.Interleaved 6)
    (Slab.layout_of_class ~class_idx:2 ~mapping:(Bitmap.Interleaved 6))

let test_tcache_fifo_capacity () =
  let dev = mk_dev () in
  let s = mk_slab dev in
  let tc = Tcache.create ~class_idx:2 ~capacity:4 ~nsub:1 in
  for b = 0 to 3 do
    Alcotest.(check bool) "push ok" true
      (Tcache.push tc { Tcache.slab = s; addr = Slab.block_addr s b })
  done;
  Alcotest.(check bool) "full rejects" false
    (Tcache.push tc { Tcache.slab = s; addr = Slab.block_addr s 4 });
  Alcotest.(check int) "count" 4 (Tcache.count tc);
  Alcotest.(check int) "drain returns all" 4 (List.length (Tcache.drain tc));
  Alcotest.(check bool) "empty after drain" true (Tcache.is_empty tc)

let test_tcache_rotation_avoids_lines () =
  let dev = mk_dev () in
  let s = mk_slab dev in
  let nsub = 6 in
  let tc = Tcache.create ~class_idx:2 ~capacity:64 ~nsub in
  for b = 0 to 47 do
    ignore (Tcache.push tc { Tcache.slab = s; addr = Slab.block_addr s b })
  done;
  (* Any 4 consecutive pops map to 4 distinct bitmap lines. *)
  let pops = List.init 24 (fun _ -> Option.get (Tcache.pop tc)) in
  let lines =
    List.map
      (fun e ->
        let b = Slab.block_index e.Tcache.slab e.Tcache.addr in
        fst (Bitmap.bit_location s.Slab.bitmap b))
      pops
  in
  let rec windows = function
    | a :: b :: c :: d :: rest ->
        List.length (List.sort_uniq compare [ a; b; c; d ]) = 4
        && windows (b :: c :: d :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "rotation yields distinct lines" true (windows lines)

let prop_tcache_conserves_entries =
  let open QCheck in
  Test.make ~name:"tcache pops exactly what was pushed" ~count:100
    (make Gen.(pair (int_range 1 8) (list_size (int_range 1 80) (int_range 0 200))))
    (fun (nsub, blocks) ->
      let dev = mk_dev () in
      let s = mk_slab dev in
      let blocks = List.filter (fun b -> b < s.Slab.layout.Slab.nblocks) blocks in
      let tc = Tcache.create ~class_idx:2 ~capacity:1000 ~nsub in
      List.iter
        (fun b -> ignore (Tcache.push tc { Tcache.slab = s; addr = Slab.block_addr s b }))
        blocks;
      let popped = ref [] in
      let rec drain () =
        match Tcache.pop tc with
        | Some e ->
            popped := Slab.block_index e.Tcache.slab e.Tcache.addr :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      List.sort compare !popped = List.sort compare blocks)

let suite =
  [
    Alcotest.test_case "size-class table shape" `Quick test_size_class_table;
    QCheck_alcotest.to_alcotest prop_size_class_fits;
    QCheck_alcotest.to_alcotest prop_classes_monotone;
    QCheck_alcotest.to_alcotest prop_layout_sound;
    Alcotest.test_case "format + recover roundtrip" `Quick test_format_and_recover;
    QCheck_alcotest.to_alcotest prop_index_entry_roundtrip;
    Alcotest.test_case "block addr/index roundtrip" `Quick test_block_addr_roundtrip;
    Alcotest.test_case "tcache capacity and drain" `Quick test_tcache_fifo_capacity;
    Alcotest.test_case "tcache rotation avoids lines" `Quick test_tcache_rotation_avoids_lines;
    QCheck_alcotest.to_alcotest prop_tcache_conserves_entries;
  ]
