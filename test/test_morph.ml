(* Slab morphing, end to end through the public API: a slab of one size
   class with low occupancy is transformed to serve another class, old
   blocks stay live and freeable, crash-torn transformations undo. *)

open Nvalloc_core

let mib = 1024 * 1024

let config =
  {
    Config.log_default with
    Config.arenas = 1;
    root_slots = 1 lsl 16;
    booklog_chunks = 128;
    wal_entries = 2048;
    tcache_capacity = 8;
  }

let mk () =
  let dev = Pmem.Device.create ~size:(128 * mib) () in
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config dev clock in
  let th = Nvalloc.thread t clock in
  (dev, clock, t, th)

(* Fill slabs of [size_a], free most blocks so occupancy drops below SU,
   then allocate [size_b] and observe reuse of the same slab memory. *)
let build_sparse_slabs t th ~size_a ~n ~keep_every =
  for i = 0 to n - 1 do
    ignore (Nvalloc.malloc_to t th ~size:size_a ~dest:(Nvalloc.root_addr t i))
  done;
  for i = 0 to n - 1 do
    if i mod keep_every <> 0 then Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
  done

let count_morphing t =
  let n = ref 0 in
  Nvalloc.iter_slabs t (fun s -> if s.Slab.morph <> None then incr n);
  !n

let slab_bytes_mapped t =
  let n = ref 0 in
  Nvalloc.iter_slabs t (fun _ -> incr n);
  !n * Slab.slab_bytes

let test_morph_triggers () =
  let _, _, t, th = mk () in
  (* ~3000 x 128 B fills several slabs; keep 1 in 16 -> ~6% occupancy. *)
  build_sparse_slabs t th ~size_a:128 ~n:3000 ~keep_every:16;
  let slabs_before = slab_bytes_mapped t in
  (* Now demand a different class; morphing must transform the sparse
     slabs instead of allocating fresh ones. *)
  for i = 0 to 999 do
    ignore (Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + i)))
  done;
  Alcotest.(check bool) "some slab is morphing" true (count_morphing t > 0);
  Alcotest.(check bool) "no net slab growth" true (slab_bytes_mapped t <= slabs_before + Slab.slab_bytes)

let test_old_blocks_survive_and_free () =
  let dev, _, t, th = mk () in
  build_sparse_slabs t th ~size_a:128 ~n:3000 ~keep_every:16;
  (* Write payloads into the survivors. *)
  let survivors = ref [] in
  for i = 0 to 2999 do
    if i mod 16 = 0 then begin
      let addr = Nvalloc.read_ptr t ~dest:(Nvalloc.root_addr t i) in
      Pmem.Device.write_int64 dev addr (Int64.of_int (i * 13));
      survivors := (i, addr) :: !survivors
    end
  done;
  for i = 0 to 1999 do
    ignore (Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + i)))
  done;
  Alcotest.(check bool) "morphing happened" true (count_morphing t > 0);
  (* Old-class payloads are intact (morphing never moves live data). *)
  List.iter
    (fun (i, addr) ->
      Alcotest.(check int64)
        (Printf.sprintf "payload %d" i)
        (Int64.of_int (i * 13))
        (Pmem.Device.read_int64 dev addr))
    !survivors;
  (* Freeing every old block eventually turns the slab_in regular again. *)
  List.iter (fun (i, _) -> Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)) !survivors;
  Alcotest.(check int) "no slab still morphing" 0 (count_morphing t)

let test_new_blocks_dont_overlap_old () =
  let _, _, t, th = mk () in
  build_sparse_slabs t th ~size_a:128 ~n:3000 ~keep_every:16;
  let old_live = ref [] in
  for i = 0 to 2999 do
    if i mod 16 = 0 then
      old_live := Nvalloc.read_ptr t ~dest:(Nvalloc.root_addr t i) :: !old_live
  done;
  let news = ref [] in
  for i = 0 to 1999 do
    news := Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + i)) :: !news
  done;
  (* No 192 B block may intersect a live 128 B block. *)
  let old_set = List.sort compare !old_live in
  let overlaps a =
    List.exists (fun o -> a < o + 128 && o < a + 192) old_set
  in
  Alcotest.(check bool) "no overlap with live old blocks" false (List.exists overlaps !news)

(* Morph with survivors at the slab boundaries: keep exactly the lowest-
   and highest-address block of each slab (the blocks most likely to
   collide with the new header area or the slab end under the new grid),
   morph, and hold the image against the deep integrity walker. *)
let test_boundary_survivors () =
  let dev, clock, t, th = mk () in
  let n = 3000 in
  for i = 0 to n - 1 do
    ignore (Nvalloc.malloc_to t th ~size:128 ~dest:(Nvalloc.root_addr t i))
  done;
  (* Group by owning slab; remember each slab's min/max-address block. *)
  let extremes = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let addr = Nvalloc.read_ptr t ~dest:(Nvalloc.root_addr t i) in
    match Nvalloc.owner_of_addr t addr with
    | Some o when o.Nvalloc.is_slab -> (
        match Hashtbl.find_opt extremes o.Nvalloc.base with
        | None -> Hashtbl.replace extremes o.Nvalloc.base ((i, addr), (i, addr))
        | Some ((_, lo_a) as lo, ((_, hi_a) as hi)) ->
            let lo = if addr < lo_a then (i, addr) else lo in
            let hi = if addr > hi_a then (i, addr) else hi in
            Hashtbl.replace extremes o.Nvalloc.base (lo, hi))
    | _ -> Alcotest.fail "allocation not owned by a slab"
  done;
  let keep = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ ((i_lo, a_lo), (i_hi, a_hi)) ->
      Hashtbl.replace keep i_lo a_lo;
      Hashtbl.replace keep i_hi a_hi)
    extremes;
  for i = 0 to n - 1 do
    if not (Hashtbl.mem keep i) then Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)
  done;
  Hashtbl.iter (fun i addr -> Pmem.Device.write_int64 dev addr (Int64.of_int (i * 31))) keep;
  (* Demand a different class; the sparse slabs must morph around the
     boundary survivors. *)
  for i = 0 to 999 do
    ignore (Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + i)))
  done;
  Alcotest.(check bool) "some slab is morphing" true (count_morphing t > 0);
  Hashtbl.iter
    (fun i addr ->
      Alcotest.(check int64)
        (Printf.sprintf "boundary payload %d" i)
        (Int64.of_int (i * 31))
        (Pmem.Device.read_int64 dev addr))
    keep;
  (match Nvalloc.integrity_walk t clock with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "integrity walk (morphing): %s" e);
  (* Releasing every boundary survivor completes all morphs. *)
  Hashtbl.iter (fun i _ -> Nvalloc.free_from t th ~dest:(Nvalloc.root_addr t i)) keep;
  Alcotest.(check int) "no slab still morphing" 0 (count_morphing t);
  match Nvalloc.integrity_walk t clock with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "integrity walk (after release): %s" e

(* Morph immediately followed by a crash: drive the heap into a morphing
   state, crash on the very next flushes, and require the full post-crash
   oracle to pass — under both consistency models. *)
let test_morph_then_crash variant () =
  let base = match variant with `Log -> Config.log_default | `Gc -> Config.gc_default in
  let cfg = { config with Config.consistency = base.Config.consistency } in
  List.iter
    (fun extra_flushes ->
      let dev = Pmem.Device.create ~size:(128 * mib) () in
      let clock = Sim.Clock.create () in
      let t = Nvalloc.create ~config:cfg dev clock in
      let th = Nvalloc.thread t clock in
      build_sparse_slabs t th ~size_a:128 ~n:3000 ~keep_every:16;
      (* Allocate until a morph is in flight, then arm a short fuse. *)
      let i = ref 0 in
      while count_morphing t = 0 && !i < 2000 do
        ignore (Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + !i)));
        incr i
      done;
      Alcotest.(check bool) "reached a morphing state" true (count_morphing t > 0);
      Pmem.Device.schedule_crash_after dev extra_flushes;
      (try
         while !i < 3000 do
           ignore (Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + !i)));
           incr i
         done;
         Pmem.Device.cancel_scheduled_crash dev;
         Pmem.Device.crash dev
       with Pmem.Device.Injected_crash -> ());
      match Fault.Oracle.check ~config:cfg dev clock with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "morph+crash (+%d flushes): %s" extra_flushes e)
    [ 1; 2; 3; 5; 8; 13; 21 ]

let test_morph_crash_undo () =
  (* Sweep crash points across the whole morph-triggering allocation; at
     every point the full invariant oracle (owner-index disjointness,
     root reachability, leak-freedom, usability) must hold. *)
  let failures = ref [] in
  List.iter
    (fun crash_after ->
      let dev = Pmem.Device.create ~size:(128 * mib) () in
      let clock = Sim.Clock.create () in
      let t = Nvalloc.create ~config dev clock in
      let th = Nvalloc.thread t clock in
      build_sparse_slabs t th ~size_a:128 ~n:3000 ~keep_every:16;
      Pmem.Device.schedule_crash_after dev crash_after;
      (try
         for i = 0 to 999 do
           ignore (Nvalloc.malloc_to t th ~size:192 ~dest:(Nvalloc.root_addr t (10_000 + i)))
         done;
         Pmem.Device.cancel_scheduled_crash dev;
         Pmem.Device.crash dev
       with Pmem.Device.Injected_crash -> ());
      match Fault.Oracle.check ~config dev clock with
      | Ok _ -> ()
      | Error e -> failures := Printf.sprintf "crash@%d: %s" crash_after e :: !failures)
    [ 1; 3; 7; 15; 40; 80; 160; 400 ];
  Alcotest.(check (list string)) "all crash points recover" [] !failures

let suite =
  [
    Alcotest.test_case "low-occupancy slabs morph" `Quick test_morph_triggers;
    Alcotest.test_case "old blocks survive and free" `Quick test_old_blocks_survive_and_free;
    Alcotest.test_case "no old/new block overlap" `Quick test_new_blocks_dont_overlap_old;
    Alcotest.test_case "boundary survivors morph + integrity" `Quick test_boundary_survivors;
    Alcotest.test_case "morph then crash, LOG" `Slow (test_morph_then_crash `Log);
    Alcotest.test_case "morph then crash, GC" `Slow (test_morph_then_crash `Gc);
    Alcotest.test_case "crash-torn morphs undo" `Slow test_morph_crash_undo;
  ]
