(* The typed persistent-layout DSL: declaration-time overlap rejection,
   typed roundtrips through the device, span arithmetic, and the
   commit/dependency combinator feeding the persist-ordering checker. *)

let mk ?(size = 1 lsl 20) ?(check = false) () =
  let dev = Pmem.Device.create ~size () in
  Pmem.Device.set_check_mode dev check;
  (dev, Sim.Clock.create ())

(* A layout exercising every field type plus an array with a stride. *)
module Probe = struct
  let l = Pstruct.layout "test.probe"
  let a = Pstruct.u8 l "a" ~off:0
  let b = Pstruct.u16 l "b" ~off:2
  let c = Pstruct.u32 l "c" ~off:4
  let d = Pstruct.i64 l "d" ~off:8
  let e = Pstruct.int_ l "e" ~off:16
  let f = Pstruct.bytes_ l "f" ~off:24 ~len:5
  let arr = Pstruct.array l "arr" ~off:32 ~stride:8 ~count:4 Pstruct.U32
  let () = Pstruct.seal l ~size:64
end

let test_roundtrip () =
  let dev, _ = mk () in
  let base = 4096 in
  Pstruct.set dev ~base Probe.a 0xAB;
  Pstruct.set dev ~base Probe.b 0xBEEF;
  Pstruct.set dev ~base Probe.c 0xCAFEBABE;
  Pstruct.set dev ~base Probe.d 0x1122334455667788L;
  Pstruct.set dev ~base Probe.e (-42);
  Pstruct.set dev ~base Probe.f (Bytes.of_string "hello");
  for i = 0 to 3 do
    Pstruct.set_elt dev ~base Probe.arr i (100 + i)
  done;
  Alcotest.(check int) "u8" 0xAB (Pstruct.get dev ~base Probe.a);
  Alcotest.(check int) "u16" 0xBEEF (Pstruct.get dev ~base Probe.b);
  Alcotest.(check int) "u32" 0xCAFEBABE (Pstruct.get dev ~base Probe.c);
  Alcotest.(check int64) "i64" 0x1122334455667788L (Pstruct.get dev ~base Probe.d);
  Alcotest.(check int) "int" (-42) (Pstruct.get dev ~base Probe.e);
  Alcotest.(check string) "bytes" "hello" (Bytes.to_string (Pstruct.get dev ~base Probe.f));
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "arr.(%d)" i)
      (100 + i)
      (Pstruct.get_elt dev ~base Probe.arr i)
  done;
  (* The typed writes land exactly where the raw offsets say. *)
  Alcotest.(check int) "raw u16" 0xBEEF (Pmem.Device.read_u16 dev (base + 2));
  Alcotest.(check int) "raw arr elt 2" 102 (Pmem.Device.read_u32 dev (base + 32 + 16))

let test_spans () =
  let base = 8192 in
  let s = Pstruct.span ~base Probe.d in
  Alcotest.(check int) "field span addr" (base + 8) s.Pstruct.addr;
  Alcotest.(check int) "field span len" 8 s.Pstruct.len;
  let s = Pstruct.elt_span ~base Probe.arr 3 in
  Alcotest.(check int) "elt span addr" (base + 32 + 24) s.Pstruct.addr;
  Alcotest.(check int) "elt span len" 4 s.Pstruct.len;
  let s = Pstruct.arr_span ~base Probe.arr in
  Alcotest.(check int) "arr span addr" (base + 32) s.Pstruct.addr;
  Alcotest.(check int) "arr span len" 32 s.Pstruct.len;
  let s = Pstruct.layout_span ~base Probe.l in
  Alcotest.(check int) "layout span len" 64 s.Pstruct.len;
  let u = Pstruct.union (Pstruct.span_of ~addr:10 ~len:4) (Pstruct.span_of ~addr:20 ~len:8) in
  Alcotest.(check int) "union addr" 10 u.Pstruct.addr;
  Alcotest.(check int) "union len" 18 u.Pstruct.len

let test_declaration_rejection () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "overlap" (fun () ->
      let l = Pstruct.layout "test.overlap" in
      let _ = Pstruct.u32 l "x" ~off:0 in
      Pstruct.u16 l "y" ~off:2);
  raises "declare after seal" (fun () ->
      let l = Pstruct.layout "test.sealed" in
      let _ = Pstruct.u8 l "x" ~off:0 in
      Pstruct.seal l ~size:8;
      Pstruct.u8 l "y" ~off:1);
  raises "field escapes seal" (fun () ->
      let l = Pstruct.layout "test.escape" in
      let _ = Pstruct.i64 l "x" ~off:4 in
      Pstruct.seal l ~size:8);
  raises "bad array stride" (fun () ->
      let l = Pstruct.layout "test.stride" in
      Pstruct.array l "a" ~off:0 ~stride:2 ~count:4 Pstruct.U32);
  raises "array index out of range" (fun () ->
      let dev, _ = mk () in
      Pstruct.get_elt dev ~base:0 Probe.arr 4)

let test_commit_is_flush () =
  (* With check mode off, commit is plain flush: the span survives a
     crash, an unflushed neighbour does not. *)
  let dev, clock = mk () in
  let base = 4096 in
  Pstruct.set dev ~base Probe.d 7L;
  Pstruct.commit dev clock Pmem.Stats.Meta (Pstruct.span ~base Probe.d);
  Pstruct.set dev ~base:(base + 128) Probe.d 9L;
  Pmem.Device.crash dev;
  Alcotest.(check int64) "committed survives" 7L (Pstruct.get dev ~base Probe.d);
  Alcotest.(check int64) "uncommitted lost" 0L (Pstruct.get dev ~base:(base + 128) Probe.d)

let test_reordered_commit_flagged () =
  (* The protocol bug shape the checker exists for: commit B declaring a
     dependency on A while A is still dirty. *)
  let dev, clock = mk ~check:true () in
  let wal = Pstruct.span_of ~addr:4096 ~len:16 in
  let bit = Pstruct.span_of ~addr:8192 ~len:1 in
  Pmem.Device.write_int64 dev wal.Pstruct.addr 1L;
  (* deliberately not flushed *)
  Pmem.Device.write_u8 dev bit.Pstruct.addr 1;
  Pstruct.commit ~deps:[ ("wal:entry", wal) ] dev clock Pmem.Stats.Meta bit;
  Alcotest.(check int) "violation recorded" 1 (Pmem.Device.ordering_violation_count dev);
  (match Pmem.Device.ordering_violations dev with
  | [ v ] ->
      Alcotest.(check string) "note" "wal:entry" v.Pmem.Device.v_dep_note;
      Alcotest.(check int) "dep addr" 4096 v.Pmem.Device.v_dep_addr;
      Alcotest.(check int) "dirty line" (4096 / 64) v.Pmem.Device.v_dirty_line
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs));
  (* The correct order on fresh spans is silent. *)
  let wal2 = Pstruct.span_of ~addr:4160 ~len:16 in
  let bit2 = Pstruct.span_of ~addr:8256 ~len:1 in
  Pmem.Device.write_int64 dev wal2.Pstruct.addr 1L;
  Pstruct.flush_span dev clock Pmem.Stats.Wal wal2;
  Pmem.Device.write_u8 dev bit2.Pstruct.addr 1;
  Pstruct.commit ~deps:[ ("wal:entry", wal2) ] dev clock Pmem.Stats.Meta bit2;
  Alcotest.(check int) "no new violation" 1 (Pmem.Device.ordering_violation_count dev)

let test_broken_wal_caught_without_crash () =
  (* Re-introducing the PR 2 WAL ordering bug (entry not flushed before
     the bitmap bit / published pointer) is flagged by the checker on a
     plain run: no crash has to land in the vulnerable window. *)
  let config =
    {
      Nvalloc_core.Config.log_default with
      Nvalloc_core.Config.arenas = 1;
      root_slots = 64;
      booklog_chunks = 128;
      wal_entries = 1024;
    }
  in
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  Pmem.Device.set_check_mode dev true;
  let clock = Sim.Clock.create () in
  let t = Nvalloc_core.Nvalloc.create ~config dev clock in
  let th = Nvalloc_core.Nvalloc.thread t clock in
  Array.iter
    (fun a -> Nvalloc_core.Wal.unsafe_set_skip_flush (Nvalloc_core.Arena.wal a) true)
    (Nvalloc_core.Nvalloc.arenas t);
  ignore (Nvalloc_core.Nvalloc.malloc_to t th ~size:64 ~dest:(Nvalloc_core.Nvalloc.root_addr t 0));
  Alcotest.(check bool)
    "skip-flushed WAL entries flagged" true
    (Pmem.Device.ordering_violation_count dev > 0);
  (match Pmem.Device.ordering_violations dev with
  | v :: _ ->
      Alcotest.(check bool)
        "dependency is a WAL span" true
        (String.length v.Pmem.Device.v_dep_note >= 4
        && String.sub v.Pmem.Device.v_dep_note 0 4 = "wal:")
  | [] -> Alcotest.fail "no violation recorded");
  (* The same run with flushes intact is silent. *)
  let dev2 = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  Pmem.Device.set_check_mode dev2 true;
  let t2 = Nvalloc_core.Nvalloc.create ~config dev2 clock in
  let th2 = Nvalloc_core.Nvalloc.thread t2 clock in
  ignore
    (Nvalloc_core.Nvalloc.malloc_to t2 th2 ~size:64 ~dest:(Nvalloc_core.Nvalloc.root_addr t2 0));
  Nvalloc_core.Nvalloc.free_from t2 th2 ~dest:(Nvalloc_core.Nvalloc.root_addr t2 0);
  Alcotest.(check int) "clean run silent" 0 (Pmem.Device.ordering_violation_count dev2)

let test_pp () =
  let dev, _ = mk () in
  let base = 4096 in
  Pstruct.set dev ~base Probe.b 0xBEEF;
  Pstruct.set_elt dev ~base Probe.arr 0 7;
  let s = Format.asprintf "%a" (Pstruct.pp dev ~base) Probe.l in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "pp mentions %S" needle) true (contains needle))
    [ "test.probe"; "0xbeef"; "arr" ]

let suite =
  [
    Alcotest.test_case "typed roundtrips" `Quick test_roundtrip;
    Alcotest.test_case "span arithmetic" `Quick test_spans;
    Alcotest.test_case "declaration-time rejection" `Quick test_declaration_rejection;
    Alcotest.test_case "commit is a flush" `Quick test_commit_is_flush;
    Alcotest.test_case "reordered commit flagged" `Quick test_reordered_commit_flagged;
    Alcotest.test_case "broken WAL caught without crash" `Quick
      test_broken_wal_caught_without_crash;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
  ]
