(* Workload generators: each runs to completion on a small instance,
   reports sane metrics, and is deterministic for a fixed seed. *)

let mk ?(threads = 4) () =
  Alloc_api.Instance.of_nvalloc
    ~config:
      {
        Nvalloc_core.Config.log_default with
        Nvalloc_core.Config.arenas = 2;
        root_slots = 1 lsl 16;
      }
    ~threads ~dev_size:(256 * 1024 * 1024) ()

let check_result name (r : Workloads.Driver.result) =
  Alcotest.(check bool) (name ^ " ops > 0") true (r.Workloads.Driver.total_ops > 0);
  Alcotest.(check bool) (name ^ " time > 0") true (r.Workloads.Driver.makespan_ns > 0.0);
  Alcotest.(check bool) (name ^ " throughput > 0") true (r.Workloads.Driver.mops > 0.0);
  Alcotest.(check bool) (name ^ " peak > 0") true (r.Workloads.Driver.peak_bytes > 0)

let test_threadtest () =
  let r =
    Workloads.Threadtest.run (mk ())
      ~params:{ Workloads.Threadtest.iterations = 3; objects = 200; size = 64 }
      ()
  in
  check_result "threadtest" r;
  Alcotest.(check int) "exact op count" (4 * 2 * 3 * 200) r.Workloads.Driver.total_ops

let test_prodcon () =
  let r =
    Workloads.Prodcon.run (mk ())
      ~params:{ Workloads.Prodcon.per_pair = 500; size = 64; queue_cap = 16 }
      ()
  in
  check_result "prodcon" r;
  Alcotest.(check int) "per-pair ops" (4 * 500) r.Workloads.Driver.total_ops

let test_prodcon_solo () =
  let r =
    Workloads.Prodcon.run
      (mk ~threads:1 ())
      ~params:{ Workloads.Prodcon.per_pair = 300; size = 64; queue_cap = 8 }
      ()
  in
  Alcotest.(check int) "solo ops" 600 r.Workloads.Driver.total_ops

let test_shbench () =
  check_result "shbench"
    (Workloads.Shbench.run (mk ())
       ~params:{ Workloads.Shbench.iterations = 400; window = 8; min_size = 64; max_size = 1000 }
       ())

let test_larson () =
  check_result "larson-small"
    (Workloads.Larson.run (mk ())
       ~params:
         { Workloads.Larson.slots = 100; ops = 800; min_size = 64; max_size = 256; cross_frac = 0.3 }
       ())

let test_larson_large () =
  check_result "larson-large"
    (Workloads.Larson.run (mk ())
       ~params:
         {
           Workloads.Larson.slots = 8;
           ops = 100;
           min_size = 32 * 1024;
           max_size = 256 * 1024;
           cross_frac = 0.2;
         }
       ())

let test_dbmstest () =
  check_result "dbmstest"
    (Workloads.Dbmstest.run (mk ())
       ~params:
         {
           Workloads.Dbmstest.objects = 16;
           iterations = 2;
           warmup = 1;
           min_size = 32 * 1024;
           max_size = 128 * 1024;
           delete_frac = 0.9;
         }
       ())

let test_fragbench () =
  let r =
    Workloads.Fragbench.run
      (mk ~threads:1 ())
      ~workload:Workloads.Fragbench.w1
      ~params:{ Workloads.Fragbench.live_cap = 1 lsl 20; churn = 4 lsl 20 }
      ()
  in
  check_result "fragbench" r.Workloads.Fragbench.result;
  Alcotest.(check bool) "peak >= live cap" true
    (r.Workloads.Fragbench.peak_after >= 1 lsl 20)

let test_recovery_workload () =
  let t =
    Workloads.Recovery_workload.run
      (mk ~threads:1 ())
      ~params:{ Workloads.Recovery_workload.nodes = 500; min_size = 64; max_size = 128 }
      ()
  in
  Alcotest.(check bool) "recovery time positive" true (t > 0.0)

let test_recovery_workload_injected_crash () =
  (* The Figure 18 harness must also survive a crash landed in the
     middle of the list build, at a sweep of flush counts: recovery
     still completes and reports a positive time. *)
  List.iter
    (fun crash_after ->
      let t =
        Workloads.Recovery_workload.run
          (mk ~threads:1 ())
          ~params:{ Workloads.Recovery_workload.nodes = 500; min_size = 64; max_size = 128 }
          ~crash_after ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "recovery after mid-build crash @%d" crash_after)
        true (t > 0.0))
    [ 1; 7; 55; 377; 2600 ]

let test_determinism () =
  let run () =
    let r =
      Workloads.Larson.run (mk ())
        ~params:
          { Workloads.Larson.slots = 64; ops = 500; min_size = 64; max_size = 256; cross_frac = 0.2 }
        ~seed:7 ()
    in
    r.Workloads.Driver.makespan_ns
  in
  Alcotest.(check (float 1e-6)) "identical makespans" (run ()) (run ())

(* Same seed, fresh instance: identical makespan AND byte-identical
   device-stats JSON (flush/fence/WAL/search counters) for every
   workload generator. The stats JSON is the stronger check — any
   nondeterminism in the simulated execution shows up in a counter. *)
let test_determinism_all () =
  let runners =
    [
      ( "larson",
        fun inst ->
          Workloads.Larson.run inst
            ~params:
              {
                Workloads.Larson.slots = 64;
                ops = 400;
                min_size = 64;
                max_size = 256;
                cross_frac = 0.2;
              }
            ~seed:11 () );
      ( "shbench",
        fun inst ->
          Workloads.Shbench.run inst
            ~params:
              { Workloads.Shbench.iterations = 300; window = 8; min_size = 64; max_size = 1000 }
            ~seed:11 () );
      ( "threadtest",
        fun inst ->
          Workloads.Threadtest.run inst
            ~params:{ Workloads.Threadtest.iterations = 2; objects = 150; size = 64 }
            () );
      ( "prodcon",
        fun inst ->
          Workloads.Prodcon.run inst
            ~params:{ Workloads.Prodcon.per_pair = 300; size = 64; queue_cap = 16 }
            () );
      ( "dbmstest",
        fun inst ->
          Workloads.Dbmstest.run inst
            ~params:
              {
                Workloads.Dbmstest.objects = 12;
                iterations = 2;
                warmup = 1;
                min_size = 32 * 1024;
                max_size = 128 * 1024;
                delete_frac = 0.9;
              }
            ~seed:11 () );
      ( "fragbench",
        fun inst ->
          (Workloads.Fragbench.run inst ~workload:Workloads.Fragbench.w1
             ~params:{ Workloads.Fragbench.live_cap = 1 lsl 19; churn = 2 lsl 20 }
             ~seed:11 ())
            .Workloads.Fragbench.result );
    ]
  in
  List.iter
    (fun (name, run_once) ->
      let observe () =
        let inst = mk () in
        let r = run_once inst in
        ( r.Workloads.Driver.makespan_ns,
          Pmem.Stats.to_json_string (Pmem.Device.stats inst.Alloc_api.Instance.dev) )
      in
      let m1, s1 = observe () in
      let m2, s2 = observe () in
      Alcotest.(check (float 1e-9)) (name ^ ": identical makespans") m1 m2;
      Alcotest.(check string) (name ^ ": identical stats json") s1 s2)
    runners

let test_driver_slot_interleaving () =
  let inst = mk ~threads:2 () in
  (* Distinct logical slots map to distinct physical slots. *)
  let seen = Hashtbl.create 64 in
  let per = Workloads.Driver.slots_per_thread inst in
  for i = 0 to min 511 (per - 1) do
    let s = Workloads.Driver.slot inst ~tid:1 i in
    Alcotest.(check bool) "unique slot" false (Hashtbl.mem seen s);
    Hashtbl.add seen s ()
  done;
  (* Consecutive slots land in different cache lines. *)
  let a = Workloads.Driver.slot inst ~tid:0 0 and b = Workloads.Driver.slot inst ~tid:0 1 in
  Alcotest.(check bool) "different lines" true (a / 64 <> b / 64)

let suite =
  [
    Alcotest.test_case "threadtest" `Quick test_threadtest;
    Alcotest.test_case "prodcon" `Quick test_prodcon;
    Alcotest.test_case "prodcon solo" `Quick test_prodcon_solo;
    Alcotest.test_case "shbench" `Quick test_shbench;
    Alcotest.test_case "larson small" `Quick test_larson;
    Alcotest.test_case "larson large" `Quick test_larson_large;
    Alcotest.test_case "dbmstest" `Quick test_dbmstest;
    Alcotest.test_case "fragbench" `Quick test_fragbench;
    Alcotest.test_case "recovery workload" `Quick test_recovery_workload;
    Alcotest.test_case "recovery workload, mid-build crash" `Quick
      test_recovery_workload_injected_crash;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "determinism, all workloads + stats" `Quick test_determinism_all;
    Alcotest.test_case "root-slot interleaving" `Quick test_driver_slot_interleaving;
  ]
