(* The model-based checker (lib/check): reference-model unit tests,
   scenario round-trips, differential runs over every allocator, crash
   scenarios, mutation teeth (a seeded WAL ordering bug must be caught),
   determinism, and the uniform-error satellites. *)

let mib = 1024 * 1024

(* --- reference model ------------------------------------------------------- *)

let ok_exn name = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" name e

let test_model_basics () =
  let m = Check.Model.create () in
  ok_exn "alloc" (Check.Model.on_alloc m ~tid:0 ~dest:64 ~size:32 ~addr:4096);
  Alcotest.(check int) "live count" 1 (Check.Model.live_count m);
  Alcotest.(check int) "live bytes" 32 (Check.Model.live_bytes m);
  (* Same dest twice is a model error. *)
  (match Check.Model.on_alloc m ~tid:0 ~dest:64 ~size:16 ~addr:8192 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "occupied dest accepted");
  (* Overlap with the live [4096, 4128) block, from both sides. *)
  (match Check.Model.on_alloc m ~tid:1 ~dest:128 ~size:16 ~addr:4112 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inner overlap accepted");
  (match Check.Model.on_alloc m ~tid:1 ~dest:128 ~size:4000 ~addr:2048 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "spanning overlap accepted");
  (* Misaligned small allocation. *)
  (match Check.Model.on_alloc m ~tid:1 ~dest:128 ~size:32 ~addr:4248 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "misaligned address accepted");
  (* Adjacent block is fine. *)
  ok_exn "adjacent" (Check.Model.on_alloc m ~tid:1 ~dest:128 ~size:16 ~addr:4128);
  let a = ok_exn "free" (Check.Model.on_free m ~dest:64) in
  Alcotest.(check int) "freed addr" 4096 a.Check.Model.addr;
  (match Check.Model.on_free m ~dest:64 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double free accepted");
  Alcotest.(check int) "one left" 1 (Check.Model.live_count m);
  Alcotest.(check int) "total is cumulative" 48 (Check.Model.total_bytes m)

(* --- scenario round-trip --------------------------------------------------- *)

let test_scenario_roundtrip () =
  List.iter
    (fun sc ->
      match Check.History.of_string (Check.History.to_string sc) with
      | Ok sc' ->
          Alcotest.(check string)
            "round trip" (Check.History.to_string sc) (Check.History.to_string sc')
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    [
      { Check.History.alloc = "NVAlloc-LOG"; seed = 7; ops = 4000; threads = 4; crash = None };
      { Check.History.alloc = "PMDK"; seed = 1; ops = 1; threads = 1; crash = Some 13 };
    ];
  List.iter
    (fun line ->
      match Check.History.of_string line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad scenario %S" line)
    [
      "alloc=X seed=1 ops=0 threads=1 crash=-";
      "alloc=X seed=1 ops=10 threads=0 crash=-";
      "alloc=X seed=1 ops=10 threads=1 crash=0";
      "alloc=X seed=nope ops=10 threads=1 crash=-";
      "alloc=X ops=10 threads=1 crash=-";
      "garbage";
    ]

let test_generator_deterministic () =
  let sc =
    { Check.History.alloc = "NVAlloc-LOG"; seed = 3; ops = 1000; threads = 3; crash = None }
  in
  let a = Check.History.generate sc ~large_ok:true in
  let b = Check.History.generate sc ~large_ok:true in
  Alcotest.(check bool) "identical streams" true (a = b);
  let total = Array.fold_left (fun acc ops -> acc + Array.length ops) 0 a in
  Alcotest.(check int) "exact op budget" 1000 total;
  (* large_ok:false keeps every size within the small classes. *)
  Array.iter
    (Array.iter (function
      | Check.History.Alloc { size; _ } ->
          Alcotest.(check bool) "small only" true (size <= Nvalloc_core.Size_class.max_small)
      | Check.History.Free _ -> ()))
    (Check.History.generate sc ~large_ok:false)

(* --- differential runner --------------------------------------------------- *)

let test_runner_all_allocators () =
  List.iter
    (fun alloc ->
      let sc = { Check.History.alloc; seed = 5; ops = 300; threads = 2; crash = None } in
      match Check.Runner.run sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Check.History.to_string sc) e)
    Check.Runner.allocator_names

let test_runner_crash () =
  List.iter
    (fun alloc ->
      List.iter
        (fun crash ->
          let sc = { Check.History.alloc; seed = 2; ops = 300; threads = 2; crash = Some crash } in
          match Check.Runner.run sc with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" (Check.History.to_string sc) e)
        [ 3; 40; 300 ])
    [ "NVAlloc-LOG"; "NVAlloc-GC"; "NVAlloc-IC" ]

(* Mutation teeth: with the PR 2 refill ordering bug re-introduced the
   checker must find a counterexample within a few seeds — and the very
   same scenarios must pass with the bug disabled. *)
let test_mutation_teeth () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let failing =
    List.filter
      (fun seed ->
        let sc =
          { Check.History.alloc = "NVAlloc-LOG"; seed; ops = 1000; threads = 2; crash = None }
        in
        match Check.Runner.run ~broken:true sc with Error _ -> true | Ok () -> false)
      seeds
  in
  Alcotest.(check bool) "broken WAL caught within 8 seeds" true (failing <> []);
  List.iter
    (fun seed ->
      let sc =
        { Check.History.alloc = "NVAlloc-LOG"; seed; ops = 1000; threads = 2; crash = None }
      in
      match Check.Runner.run sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "clean run failed (seed %d): %s" seed e)
    seeds

(* Second mutation: group commit "forgets" its commit record, so a crash
   discards entries whose effects already persisted. Only crashes can
   expose it, so every scenario arms a countdown. *)
let test_mutation_group_commit () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let scenario seed crash =
    { Check.History.alloc = "NVAlloc-LOG"; seed; ops = 1000; threads = 2;
      crash = Some crash }
  in
  let failing =
    List.filter
      (fun seed ->
        List.exists
          (fun crash ->
            match Check.Runner.run ~broken_record:true (scenario seed crash) with
            | Error _ -> true
            | Ok () -> false)
          [ 50; 200; 600 ])
      seeds
  in
  Alcotest.(check bool) "forgotten commit record caught within 8 seeds" true
    (failing <> []);
  (* The same crash scenarios are clean without the mutation. *)
  List.iter
    (fun seed ->
      List.iter
        (fun crash ->
          match Check.Runner.run (scenario seed crash) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "clean run failed (seed %d): %s" seed e)
        [ 50; 200; 600 ])
    seeds

(* Third mutation: the packed slab header mis-decodes its size-class
   field on every read. The deep integrity walk compares the persisted
   class against the volatile layout, so crash-free scenarios catch it. *)
let test_mutation_broken_header () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let scenario seed =
    { Check.History.alloc = "NVAlloc-LOG"; seed; ops = 1000; threads = 2; crash = None }
  in
  let failing =
    List.filter
      (fun seed ->
        match Check.Runner.run ~broken_header:true (scenario seed) with
        | Error _ -> true
        | Ok () -> false)
      seeds
  in
  Alcotest.(check bool) "packed-header mis-decode caught within 8 seeds" true (failing <> []);
  (* The same scenarios are clean without the mutation. *)
  List.iter
    (fun seed ->
      match Check.Runner.run (scenario seed) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "clean run failed (seed %d): %s" seed e)
    seeds

let test_checker_deterministic () =
  (* Same seed: identical verdict, and an identical shrunk repro line. *)
  let go () =
    Check.Runner.check ~broken:true ~alloc:"NVAlloc-LOG" ~seed:1 ~runs:8 ~ops:1000
      ~threads:2 ()
  in
  match (go (), go ()) with
  | Some a, Some b ->
      Alcotest.(check string)
        "identical shrunk repro"
        (Check.History.to_string a.Check.Runner.shrunk)
        (Check.History.to_string b.Check.Runner.shrunk);
      Alcotest.(check string) "identical reason" a.Check.Runner.reason b.Check.Runner.reason
  | None, None -> Alcotest.fail "mutation not caught (expected a counterexample)"
  | _ -> Alcotest.fail "verdict differs between identical runs"

(* --- uniform unpublished-free error (satellite: Instance.free) ------------- *)

let test_uniform_free_error () =
  let check_raises name (inst : Alloc_api.Instance.t) =
    let dest = Workloads.Driver.slot inst ~tid:0 0 in
    match inst.Alloc_api.Instance.free ~tid:0 ~dest with
    | () -> Alcotest.failf "%s: free of an unpublished slot succeeded" name
    | exception Invalid_argument m ->
        Alcotest.(check string)
          (name ^ ": uniform message") Nvalloc_core.Nvalloc.err_free_unpublished m
  in
  List.iter
    (fun alloc ->
      let inst =
        match alloc with
        | "NVAlloc-LOG" ->
            Alloc_api.Instance.of_nvalloc ~config:Nvalloc_core.Config.log_default ~threads:1
              ~dev_size:(64 * mib) ()
        | name ->
            let knobs =
              List.find
                (fun k -> k.Baselines.Knobs.name = name)
                Baselines.Knobs.
                  [ pmdk; nvm_malloc; pallocator; makalu; ralloc; jemalloc; tcmalloc ]
            in
            Baselines.Bengine.instance ~knobs ~threads:1 ~dev_size:(64 * mib) ()
      in
      check_raises alloc inst)
    [ "NVAlloc-LOG"; "PMDK"; "nvm_malloc"; "PAllocator"; "Makalu"; "Ralloc"; "jemalloc";
      "tcmalloc" ]

(* --- driver argument validation (satellite: Driver) ------------------------ *)

let test_driver_validation () =
  let inst =
    Alloc_api.Instance.of_nvalloc ~config:Nvalloc_core.Config.log_default ~threads:2
      ~dev_size:(64 * mib) ()
  in
  (* Thread count <= 0 is rejected up front, not an array error later. *)
  let zero = { inst with Alloc_api.Instance.threads = 0 } in
  (match Workloads.Driver.slots_per_thread zero with
  | _ -> Alcotest.fail "threads=0 accepted by slots_per_thread"
  | exception Invalid_argument _ -> ());
  (match
     Workloads.Driver.run zero ~ops_of:(fun ~tid:_ -> 1) ~step_of:(fun ~tid:_ () -> false)
   with
  | _ -> Alcotest.fail "threads=0 accepted by run"
  | exception Invalid_argument _ -> ());
  (* Oversized per-thread slot demands raise a descriptive error. *)
  let per = Workloads.Driver.slots_per_thread inst in
  (match Workloads.Driver.require_slots inst (per + 1) with
  | () -> Alcotest.fail "oversized slot demand accepted"
  | exception Invalid_argument _ -> ());
  Workloads.Driver.require_slots inst per;
  (* A workload whose parameters overflow the partition reports the same
     clear error instead of an assert failure. *)
  match
    Workloads.Threadtest.run inst
      ~params:{ Workloads.Threadtest.iterations = 1; objects = per + 1; size = 64 }
      ()
  with
  | _ -> Alcotest.fail "oversized workload accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "model: basics" `Quick test_model_basics;
    Alcotest.test_case "scenario: round trip" `Quick test_scenario_roundtrip;
    Alcotest.test_case "generator: deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "runner: all allocators" `Slow test_runner_all_allocators;
    Alcotest.test_case "runner: crash scenarios" `Slow test_runner_crash;
    Alcotest.test_case "mutation teeth" `Slow test_mutation_teeth;
    Alcotest.test_case "mutation teeth: forgotten commit record" `Slow
      test_mutation_group_commit;
    Alcotest.test_case "mutation teeth: packed-header mis-decode" `Slow
      test_mutation_broken_header;
    Alcotest.test_case "checker determinism" `Slow test_checker_deterministic;
    Alcotest.test_case "uniform unpublished-free error" `Quick test_uniform_free_error;
    Alcotest.test_case "driver validation" `Quick test_driver_validation;
  ]
