(* Observational equivalence of the fast-path substrate rewrites with
   the straightforward implementations they replaced, plus regressions
   for the Store.fill fast path and the Stats trace buffers.

   - Dirtymap (per-chunk bitmaps) vs the former [(int, unit) Hashtbl.t]
     dirty set;
   - Lru_ring (move-to-front ring) vs the former array-shift LRU,
     modelled here as a plain most-recent-first list;
   - the whole Device flush pipeline vs a byte-for-byte model device
     (same flush classifications, same dirty sets, same crash
     survivors) over randomized write/flush/crash sequences;
   - the heap-based Scheduler vs the former linear min-scan on
     tie-heavy schedules. *)

let mib = 1024 * 1024

(* --- Dirtymap vs Hashtbl model ---------------------------------------- *)

(* Three chunks' worth of lines so ops cross chunk boundaries:
   16384 lines per 1 MiB chunk. *)
let dm_size = 3 * mib
let dm_lines = dm_size / 64

type dm_op = Mark of int | MarkRange of int * int | Clear of int

let dm_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun l -> Mark l) (int_bound (dm_lines - 1)));
        ( 1,
          map2
            (fun a b -> MarkRange (min a b, max a b))
            (int_bound (dm_lines - 1))
            (int_bound (dm_lines - 1)) );
        (3, map (fun l -> Clear l) (int_bound (dm_lines - 1)));
      ])

let dm_op_print = function
  | Mark l -> Printf.sprintf "Mark %d" l
  | MarkRange (a, b) -> Printf.sprintf "MarkRange (%d, %d)" a b
  | Clear l -> Printf.sprintf "Clear %d" l

let prop_dirtymap_model =
  let open QCheck in
  Test.make ~name:"dirtymap equals Hashtbl dirty-set model" ~count:200
    (list_of_size Gen.(int_range 0 400) (make ~print:dm_op_print dm_op_gen))
    (fun ops ->
      let dm = Pmem.Dirtymap.create ~size:dm_size in
      let model = Hashtbl.create 64 in
      List.iter
        (function
          | Mark l ->
              Pmem.Dirtymap.mark dm l;
              Hashtbl.replace model l ()
          | MarkRange (a, b) ->
              Pmem.Dirtymap.mark_range dm ~first:a ~last:b;
              for l = a to b do
                Hashtbl.replace model l ()
              done
          | Clear l ->
              Pmem.Dirtymap.clear dm l;
              Hashtbl.remove model l)
        ops;
      (* Same cardinality, same membership, same (sorted) iteration. *)
      let count_ok = Pmem.Dirtymap.count dm = Hashtbl.length model in
      let member_ok =
        List.for_all
          (fun op ->
            let l = match op with Mark l | Clear l -> l | MarkRange (a, _) -> a in
            Pmem.Dirtymap.test dm l = Hashtbl.mem model l)
          ops
      in
      let visited = ref [] in
      Pmem.Dirtymap.iter dm (fun l -> visited := l :: !visited);
      let visited = List.rev !visited in
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      count_ok && member_ok && visited = expected)

(* --- Lru_ring vs array-shift (list) model ------------------------------ *)

(* The former LRU shifted an array on every touch; a most-recent-first
   list is the same structure. *)
let model_touch cap lru v =
  let rec index i = function
    | [] -> -1
    | x :: _ when x = v -> i
    | _ :: tl -> index (i + 1) tl
  in
  let d = index 0 !lru in
  let without = List.filter (fun x -> x <> v) !lru in
  let trimmed =
    if d = -1 && List.length without >= cap then
      List.filteri (fun i _ -> i < cap - 1) without
    else without
  in
  lru := v :: trimmed;
  if cap = 0 then (
    lru := [];
    None)
  else if d = -1 then None
  else Some d

let prop_lru_ring_model =
  let open QCheck in
  (* Values from a domain of 8 against capacity 4: plenty of hits at
     every distance, plenty of evictions. *)
  Test.make ~name:"lru_ring equals array-shift LRU model" ~count:500
    (pair (int_range 0 6) (list_of_size Gen.(int_range 0 200) (int_range 0 7)))
    (fun (cap, touches) ->
      let ring = Pmem.Lru_ring.create cap in
      let lru = ref [] in
      List.for_all
        (fun v ->
          let expect = model_touch cap lru v in
          let got = Pmem.Lru_ring.touch ring v in
          got = expect && Pmem.Lru_ring.to_list ring = !lru)
        touches)

let prop_lru_touch_seq =
  let open QCheck in
  (* touch_seq = mem_self_or_pred on the pre-touch window + the same
     window update as touch. *)
  Test.make ~name:"lru_ring touch_seq fuses membership and touch" ~count:500
    (pair (int_range 0 6) (list_of_size Gen.(int_range 0 200) (int_range 0 7)))
    (fun (cap, touches) ->
      let ring = Pmem.Lru_ring.create cap in
      let lru = ref [] in
      List.for_all
        (fun v ->
          let expect_seq = List.exists (fun s -> s = v || s + 1 = v) !lru in
          let got_seq = Pmem.Lru_ring.touch_seq ring v in
          ignore (model_touch cap lru v);
          got_seq = (expect_seq && cap > 0) && Pmem.Lru_ring.to_list ring = !lru)
        touches)

(* --- Device flush pipeline vs model device ----------------------------- *)

(* A model device: plain Bytes images, a Hashtbl dirty set, and
   list-based per-thread LRU windows — the pre-rewrite implementation,
   restated. Compared observables: flush classification counters, the
   dirty-line set, and the byte images surviving a crash. *)

let dev_size = 64 * 1024
let dev_lines = dev_size / 64
let reflush_window = Pmem.Latency.default.Pmem.Latency.reflush_window

type model_dev = {
  volatile : Bytes.t;
  persisted : Bytes.t;
  dirty : (int, unit) Hashtbl.t;
  streams : (int, int list ref * int list ref) Hashtbl.t;
  mutable m_flushes : int;
  mutable m_reflushes : int;
  mutable m_seq : int;
  mutable m_rand : int;
}

let model_create () =
  {
    volatile = Bytes.make dev_size '\000';
    persisted = Bytes.make dev_size '\000';
    dirty = Hashtbl.create 64;
    streams = Hashtbl.create 4;
    m_flushes = 0;
    m_reflushes = 0;
    m_seq = 0;
    m_rand = 0;
  }

let model_stream m id =
  match Hashtbl.find_opt m.streams id with
  | Some s -> s
  | None ->
      let s = (ref [], ref []) in
      Hashtbl.replace m.streams id s;
      s

let model_flush_line m id line =
  Bytes.blit m.volatile (line * 64) m.persisted (line * 64) 64;
  Hashtbl.remove m.dirty line;
  let recent, xplines = model_stream m id in
  let distance = model_touch reflush_window recent line in
  let xp = line * 64 / 256 in
  let sequential = List.exists (fun s -> s = xp || s + 1 = xp) !xplines in
  ignore (model_touch 4 xplines xp);
  m.m_flushes <- m.m_flushes + 1;
  if distance <> None then m.m_reflushes <- m.m_reflushes + 1
  else if sequential then m.m_seq <- m.m_seq + 1
  else m.m_rand <- m.m_rand + 1

let model_flush m id ~addr ~len =
  if len > 0 then
    for line = addr / 64 to (addr + len - 1) / 64 do
      if Hashtbl.mem m.dirty line then model_flush_line m id line
    done

let model_crash m =
  Hashtbl.iter
    (fun line () -> Bytes.blit m.persisted (line * 64) m.volatile (line * 64) 64)
    m.dirty;
  Hashtbl.reset m.dirty;
  Hashtbl.reset m.streams

type dev_op =
  | Write of int * int * int (* thread, addr, byte *)
  | Flush of int * int * int (* thread, addr, len *)
  | FlushAll of int
  | Crash

let dev_op_gen =
  QCheck.Gen.(
    let thread = int_bound 1 in
    frequency
      [
        ( 6,
          map3
            (fun th a b -> Write (th, a, b))
            thread
            (int_bound (dev_size - 1))
            (int_bound 255) );
        ( 5,
          map3
            (fun th a l -> Flush (th, a, l))
            thread
            (int_bound (dev_size - 1))
            (int_range 1 256) );
        (1, map (fun th -> FlushAll th) thread);
        (1, return Crash);
      ])

let dev_op_print = function
  | Write (t, a, b) -> Printf.sprintf "Write (%d, %d, %d)" t a b
  | Flush (t, a, l) -> Printf.sprintf "Flush (%d, %d, %d)" t a l
  | FlushAll t -> Printf.sprintf "FlushAll %d" t
  | Crash -> "Crash"

let prop_device_model =
  let open QCheck in
  Test.make ~name:"device flush pipeline equals model device" ~count:100
    (list_of_size Gen.(int_range 0 300) (make ~print:dev_op_print dev_op_gen))
    (fun ops ->
      let dev = Pmem.Device.create ~size:dev_size () in
      let clocks = [| Sim.Clock.create (); Sim.Clock.create () |] in
      let ids = Array.map Sim.Clock.id clocks in
      let m = model_create () in
      List.iter
        (function
          | Write (th, addr, b) ->
              (* The clock is irrelevant to a write; [th] only varies
                 which flush stream later persists it. *)
              ignore th;
              let addr = min addr (dev_size - 1) in
              Pmem.Device.write_u8 dev addr b;
              Bytes.set m.volatile addr (Char.chr b);
              Hashtbl.replace m.dirty (addr / 64) ()
          | Flush (th, addr, len) ->
              let len = min len (dev_size - addr) in
              Pmem.Device.flush dev clocks.(th) Pmem.Stats.Meta ~addr ~len;
              model_flush m ids.(th) ~addr ~len
          | FlushAll th ->
              Pmem.Device.flush_all dev clocks.(th) Pmem.Stats.Meta;
              (* flush_all visits dirty lines in ascending order. *)
              let lines =
                List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) m.dirty [])
              in
              List.iter (model_flush_line m ids.(th)) lines
          | Crash ->
              Pmem.Device.crash dev;
              model_crash m)
        ops;
      let stats = Pmem.Device.stats dev in
      let counters_ok =
        Pmem.Stats.flushes stats = m.m_flushes
        && Pmem.Stats.reflushes stats = m.m_reflushes
        && Pmem.Stats.sequential_flushes stats = m.m_seq
        && Pmem.Stats.random_flushes stats = m.m_rand
      in
      let dirty_ok = Pmem.Device.dirty_lines dev = Hashtbl.length m.dirty in
      (* Crash: surviving volatile state must match the model's. *)
      Pmem.Device.crash dev;
      model_crash m;
      let bytes_ok = ref true in
      for line = 0 to dev_lines - 1 do
        (* One probe byte per line keeps the check O(lines). *)
        let a = line * 64 in
        if Pmem.Device.read_u8 dev a <> Char.code (Bytes.get m.volatile a) then
          bytes_ok := false
      done;
      counters_ok && dirty_ok && !bytes_ok)

(* --- Scheduler: heap visits = linear-scan visits ----------------------- *)

(* Each thread runs a script of charges drawn from {0, 10, 20} ns — a
   tie-heavy schedule — and records each visit. The reference order is
   the former linear scan: smallest clock, lowest index on ties. *)
let prop_scheduler_order =
  let open QCheck in
  Test.make ~name:"heap scheduler visits = linear-scan order" ~count:200
    (list_of_size
       Gen.(int_range 1 8)
       (list_of_size Gen.(int_range 0 20) (int_range 0 2)))
    (fun scripts ->
      let scripts = List.map (List.map (fun c -> float_of_int (c * 10))) scripts in
      let n = List.length scripts in
      let arr = Array.of_list scripts in
      (* Real scheduler. *)
      let visits = ref [] in
      let threads =
        Array.init n (fun i ->
            let clock = Sim.Clock.create () in
            let remaining = ref arr.(i) in
            let step () =
              visits := i :: !visits;
              match !remaining with
              | [] -> false
              | c :: tl ->
                  Sim.Clock.charge clock c;
                  remaining := tl;
                  true
            in
            { Sim.Scheduler.clock; step })
      in
      Sim.Scheduler.run threads;
      let visits = List.rev !visits in
      (* Linear-scan reference. *)
      let clocks = Array.make n 0.0 in
      let remaining = Array.map (fun s -> ref s) arr in
      let live = Array.make n true in
      let expected = ref [] in
      let rec loop () =
        let best = ref (-1) in
        for i = n - 1 downto 0 do
          if live.(i) && (!best = -1 || clocks.(i) <= clocks.(!best)) then best := i
        done;
        if !best >= 0 then begin
          let i = !best in
          expected := i :: !expected;
          (match !(remaining.(i)) with
          | [] -> live.(i) <- false
          | c :: tl ->
              clocks.(i) <- clocks.(i) +. c;
              remaining.(i) := tl);
          loop ()
        end
      in
      loop ();
      visits = List.rev !expected)

(* --- Store.fill fast path ---------------------------------------------- *)

let test_fill_zero_no_chunks () =
  (* Filling zeros into unwritten space is the status quo: no chunk may
     materialise. 3 MiB spans three chunks, all untouched. *)
  let s = Pmem.Store.create ~size:(8 * mib) in
  Alcotest.(check int) "fresh store" 0 (Pmem.Store.allocated_chunks s);
  Pmem.Store.fill s 0 (3 * mib) '\000';
  Alcotest.(check int) "zero fill allocates nothing" 0 (Pmem.Store.allocated_chunks s);
  (* A touched chunk still gets zeroed in place... *)
  Pmem.Store.set_u8 s 10 0xAB;
  Alcotest.(check int) "one chunk" 1 (Pmem.Store.allocated_chunks s);
  Pmem.Store.fill s 0 (3 * mib) '\000';
  Alcotest.(check int) "still one chunk" 1 (Pmem.Store.allocated_chunks s);
  Alcotest.(check int) "byte zeroed" 0 (Pmem.Store.get_u8 s 10);
  (* ...and a nonzero fill materialises exactly the chunks it covers. *)
  Pmem.Store.fill s (4 * mib) mib '\xFF';
  Alcotest.(check int) "nonzero fill allocates" 2 (Pmem.Store.allocated_chunks s);
  Alcotest.(check int) "fill visible" 0xFF (Pmem.Store.get_u8 s ((4 * mib) + 123))

(* --- Stats trace buffers ----------------------------------------------- *)

let test_trace_truncation () =
  let stats = Pmem.Stats.create ~trace_limit:5 () in
  for i = 0 to 19 do
    let cat = if i mod 2 = 0 then Pmem.Stats.Meta else Pmem.Stats.Wal in
    Pmem.Stats.record_flush stats cat ~addr:(i * 64) ~reflush:false ~sequential:true
      ~ns:10.0
  done;
  (* Data flushes never enter the trace. *)
  Pmem.Stats.record_flush stats Pmem.Stats.Data ~addr:9999 ~reflush:false
    ~sequential:true ~ns:10.0;
  let trace = Pmem.Stats.trace stats in
  Alcotest.(check int) "truncated to limit" 5 (List.length trace);
  List.iteri
    (fun i (cat, addr) ->
      Alcotest.(check int) (Printf.sprintf "addr %d" i) (i * 64) addr;
      Alcotest.(check bool)
        (Printf.sprintf "cat %d" i)
        true
        (cat = if i mod 2 = 0 then Pmem.Stats.Meta else Pmem.Stats.Wal))
    trace;
  Alcotest.(check int) "all flushes counted" 21 (Pmem.Stats.flushes stats)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dirtymap_model;
    QCheck_alcotest.to_alcotest prop_lru_ring_model;
    QCheck_alcotest.to_alcotest prop_lru_touch_seq;
    QCheck_alcotest.to_alcotest prop_device_model;
    QCheck_alcotest.to_alcotest prop_scheduler_order;
    Alcotest.test_case "store fill '\\000' materialises no chunks" `Quick
      test_fill_zero_no_chunks;
    Alcotest.test_case "stats trace truncates at limit" `Quick test_trace_truncation;
  ]
