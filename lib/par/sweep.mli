(** Seed-sweep parallelism: independent seeds, each on its own fresh
    device and instance, fanned over the pool — the embarrassingly
    parallel case where domains buy real wall-time speedup.

    Tasks run on the {e simulated} scheduler (never install the domain
    backend around a sweep); {!Pool.run}'s index-ordered results plus
    sequential shrinking of the first failure make the aggregated
    verdict byte-identical for any [--domains] value. *)

val check_sweep :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?broken_header:bool ->
  Pool.t ->
  alloc:string ->
  seed:int ->
  runs:int ->
  ops:int ->
  threads:int ->
  ?crash:int ->
  unit ->
  Check.Runner.counterexample option
(** Parallel [Check.Runner.check]: seeds [seed .. seed+runs-1] fan out
    over the pool; the lowest failing seed is then shrunk sequentially,
    so the counterexample equals the sequential checker's (which stops
    at the first failure — the sweep merely also finishes the later
    seeds it had already started). *)

val fuzz_sweep :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?broken_scrub:bool ->
  ?check_order:bool ->
  ?variant:Fault.Plan.variant ->
  ?media:bool ->
  ?adjust:(Fault.Plan.t -> Fault.Plan.t) ->
  Pool.t ->
  seed:int ->
  runs:int ->
  unit ->
  Fault.Fuzz.counterexample option
(** Parallel crash-plan fuzzing. Plan [i] is sampled from the {e pure}
    child stream [Sim.Rng.split (create seed) i], so the sampled plans
    are a function of [(seed, i)] alone — identical for any domain
    count, though {e different} from the sequential fuzzer's
    one-stream sampling at the same seed (a sweep is its own corpus).
    First failing index shrinks sequentially, as above. *)
