type t = { domains : int }

let create ~domains =
  if domains < 1 then
    invalid_arg (Printf.sprintf "Par.Pool.create: domains must be >= 1 (got %d)" domains);
  { domains }

let domains t = t.domains

let run t ~n f =
  if n < 0 then invalid_arg "Par.Pool.run: n must be >= 0";
  let k = min t.domains n in
  if k <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (try results.(i) <- Some (f i)
         with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let spawned = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end
