(* Both sweeps share the shape: fan the seeds out, collect outcomes in
   index order, then shrink the lowest failing index sequentially so
   the reported counterexample is deterministic for any pool width.
   Later seeds keep running after an early failure — unlike the
   sequential loops, which stop — but the verdict they produce is
   discarded, so the printed output is unchanged. *)

let first_failure ~runs outcomes shrink =
  let rec go i =
    if i >= runs then None
    else match outcomes.(i) with None -> go (i + 1) | Some reason -> Some (shrink i reason)
  in
  go 0

let check_sweep ?batch ?broken ?broken_record ?broken_header pool ~alloc ~seed ~runs ~ops
    ~threads ?crash () =
  let scenarios =
    Array.init runs (fun i -> { Check.History.alloc; seed = seed + i; ops; threads; crash })
  in
  let outcomes =
    Pool.run pool ~n:runs (fun i ->
        match Check.Runner.run ?batch ?broken ?broken_record ?broken_header scenarios.(i) with
        | Ok () -> None
        | Error reason -> Some reason)
  in
  first_failure ~runs outcomes (fun i reason ->
      let sc = scenarios.(i) in
      let shrunk, reason =
        Check.Runner.shrink ?batch ?broken ?broken_record ?broken_header sc ~reason
      in
      { Check.Runner.original = sc; shrunk; reason })

let fuzz_sweep ?batch ?broken ?broken_record ?broken_scrub ?check_order ?variant ?media
    ?(adjust = fun p -> p) pool ~seed ~runs () =
  (* Pure per-index sampling: [Rng.split] derives child [i] without
     advancing the root, so plan [i] depends on (seed, i) alone — the
     property that makes the sweep's output independent of how the
     indices land on domains. *)
  let root = Sim.Rng.create seed in
  let plans =
    Array.init runs (fun i ->
        adjust (Fault.Plan.sample ?variant ?media (Sim.Rng.split root i)))
  in
  let outcomes =
    Pool.run pool ~n:runs (fun i ->
        match
          Fault.Fuzz.run_plan ?batch ?broken ?broken_record ?broken_scrub ?check_order
            plans.(i)
        with
        | Ok _ -> None
        | Error reason -> Some reason)
  in
  first_failure ~runs outcomes (fun i reason ->
      let shrunk, reason =
        Fault.Fuzz.shrink ?batch ?broken ?broken_record ?broken_scrub ?check_order plans.(i)
          ~reason
      in
      { Fault.Fuzz.original = plans.(i); shrunk; reason })
