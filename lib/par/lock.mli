(** Real mutex with the {!Sim.Lock} observation surface.

    The simulated lock is a timestamp and its [with_lock] assumes the
    body never raises; this one wraps a stdlib [Mutex.t] for actual
    domains and must tolerate exceptions — par-mode critical sections
    execute allocator operations that can raise
    [Pmem.Device.Injected_crash] on armed crash countdowns. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Counts a contention event when the uncontended [try_lock] fails
    before blocking, mirroring [Sim.Lock.contention_count]'s "had to
    wait" semantics. *)

val release : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Brackets [f] with {!acquire}/{!release}; the lock is released even
    when [f] raises (unlike [Sim.Lock.with_lock], which forbids
    raising). *)

val contention_count : t -> int
(** Number of acquisitions that had to wait, totalled across domains. *)
