type t = { m : Mutex.t; contended : int Atomic.t }

let create () = { m = Mutex.create (); contended = Atomic.make 0 }

let acquire t =
  if not (Mutex.try_lock t.m) then begin
    Atomic.incr t.contended;
    Mutex.lock t.m
  end

let release t = Mutex.unlock t.m
let with_lock t f = acquire t; Fun.protect ~finally:(fun () -> release t) f
let contention_count t = Atomic.get t.contended
