(* Same cadences as the sim scheduler path (Workloads.Driver): heap
   snapshots every 1024 executed steps, maintenance-daemon polls folded
   in every 128 steps on a dedicated clock. *)
let snapshot_period = 1024
let maintenance_period = 128

let exec ?stats pool (inst : Alloc_api.Instance.t) ~ops_of ~step_of =
  let n = inst.Alloc_api.Instance.threads in
  let telem = Pmem.Device.telemetry inst.Alloc_api.Instance.dev in
  let steps = Array.init n (fun tid -> step_of ~tid) in
  let lock = Lock.create () in
  let stop = Atomic.make false in
  let crashed = Atomic.make false in
  (* Written under the big lock only. *)
  let executed = ref 0 in
  let dclock = Sim.Clock.create () in
  let k = min (Pool.domains pool) n in
  let t0 = Host.now_ns () in
  let drive d =
    (* Domain [d] owns history threads {tid | tid mod k = d} and
       round-robins them; every step — allocator call, model update,
       telemetry — happens inside the big critical section because the
       simulated substrate is not domain-safe. The value of the
       exercise is the serialisation order: the OS, not the min-clock
       rule, decides which domain enters next. *)
    let mine = Array.of_list (List.filter (fun tid -> tid mod k = d) (List.init n Fun.id)) in
    let live = Array.map (fun _ -> true) mine in
    let remaining = ref (Array.length mine) in
    let turn = ref 0 in
    while !remaining > 0 && not (Atomic.get stop) do
      let j = !turn mod Array.length mine in
      incr turn;
      if live.(j) then begin
        let tid = mine.(j) in
        let alive =
          Lock.with_lock lock (fun () ->
              if Atomic.get stop then false
              else
                match steps.(tid) () with
                | alive ->
                    incr executed;
                    (match inst.Alloc_api.Instance.maintenance with
                    | Some tick when !executed mod maintenance_period = 0 ->
                        ignore (tick dclock : bool)
                    | _ -> ());
                    (match telem with
                    | Some _ when !executed mod snapshot_period = 0 ->
                        inst.Alloc_api.Instance.snapshot
                          (Sim.Clock.now inst.Alloc_api.Instance.clocks.(tid))
                    | _ -> ());
                    alive
                | exception Pmem.Device.Injected_crash ->
                    (* Set [stop] while still holding the lock: no other
                       domain may step a crashed device. *)
                    Atomic.set stop true;
                    Atomic.set crashed true;
                    false)
        in
        if not alive then begin
          live.(j) <- false;
          decr remaining
        end
      end
    done;
    (* One span per domain on the reserved domain-tid band — the sink is
       not domain-safe, so emit under the big lock. *)
    match telem with
    | Some sink ->
        Lock.with_lock lock (fun () ->
            Telemetry.span_named sink
              ~tid:(Telemetry.domain_tid (Domain.self () :> int))
              ~name:"par-drive" ~ts:0.0 ~dur:(Host.now_ns () -. t0))
    | None -> ()
  in
  ignore (Pool.run pool ~n:k drive : unit array);
  (match stats with
  | Some f -> f ~steps:!executed ~lock_waits:(Lock.contention_count lock) ~domains:k
  | None -> ());
  if Atomic.get crashed then raise Pmem.Device.Injected_crash;
  let makespan =
    Array.fold_left
      (fun m c -> Float.max m (Sim.Clock.now c))
      0.0 inst.Alloc_api.Instance.clocks
  in
  (match telem with Some _ -> inst.Alloc_api.Instance.snapshot makespan | None -> ());
  let total_ops = ref 0 in
  for tid = 0 to n - 1 do
    total_ops := !total_ops + ops_of ~tid
  done;
  {
    Workloads.Driver.allocator = inst.Alloc_api.Instance.name;
    threads = n;
    total_ops = !total_ops;
    makespan_ns = makespan;
    mops =
      (if makespan > 0.0 then float_of_int !total_ops /. (makespan /. 1e9) /. 1e6 else 0.0);
    peak_bytes = inst.Alloc_api.Instance.peak_bytes ();
  }

let with_backend backend f =
  Workloads.Driver.set_parallel_backend (Some backend);
  Fun.protect ~finally:(fun () -> Workloads.Driver.set_parallel_backend None) f

let workload pool f =
  with_backend (exec pool) (fun () ->
      let t0 = Host.now_ns () in
      let r = f () in
      (r, Host.now_ns () -. t0))

type report = {
  scenario : Check.History.t;
  domains : int;
  executed : int;
  host_ns : float;
  par_makespan_ns : float;
  sim_makespan_ns : float;
  lock_waits : int;
}

let run_history ?batch ?broken ?broken_record ?broken_header pool (sc : Check.History.t) =
  let lock_waits = ref 0 in
  let stats ~steps:_ ~lock_waits:w ~domains:_ = lock_waits := w in
  let t0 = Host.now_ns () in
  let par =
    with_backend (exec ~stats pool) (fun () ->
        Check.Runner.run_report ?batch ?broken ?broken_record ?broken_header sc)
  in
  let host_ns = Host.now_ns () -. t0 in
  match par with
  | Error e -> Error (Printf.sprintf "domain backend (%d domains): %s" (Pool.domains pool) e)
  | Ok pr -> (
      (* Sim cross-run: the identical scenario on the deterministic
         scheduler must also pass every invariant... *)
      match Check.Runner.run_report ?batch ?broken ?broken_record ?broken_header sc with
      | Error e -> Error (Printf.sprintf "sim backend (par run passed): %s" e)
      | Ok sr ->
          (* ...and on crash-free scenarios both backends must execute
             the identical op count (no-op steps included, so the count
             is interleaving-invariant; a crash countdown fires at an
             interleaving-dependent op, exempting crash scenarios). *)
          if sc.Check.History.crash = None && pr.Check.Runner.executed <> sr.Check.Runner.executed
          then
            Error
              (Printf.sprintf "executed-op divergence: domain backend %d vs sim %d"
                 pr.Check.Runner.executed sr.Check.Runner.executed)
          else
            Ok
              {
                scenario = sc;
                domains = Pool.domains pool;
                executed = pr.Check.Runner.executed;
                host_ns;
                par_makespan_ns = pr.Check.Runner.makespan_ns;
                sim_makespan_ns = sr.Check.Runner.makespan_ns;
                lock_waits = !lock_waits;
              })

(* Greedy shrinking against the differential predicate, the
   Check.Runner.shrink shape. Each probe costs two full runs (par +
   sim), so the round bound is tighter than the sequential checker's
   64. The predicate is flaky by nature — a scenario may fail only
   under some interleavings — so greedy first-still-failing descent is
   the right tool: whatever it lands on did fail. *)
let max_shrink_rounds = 16

let shrink ?batch ?broken ?broken_record ?broken_header pool sc ~reason =
  let fails c =
    match run_history ?batch ?broken ?broken_record ?broken_header pool c with
    | Error e -> Some e
    | Ok _ -> None
  in
  let rec go sc reason rounds =
    if rounds = 0 then (sc, reason)
    else
      match
        List.find_map
          (fun c -> Option.map (fun r -> (c, r)) (fails c))
          (Check.History.shrink_candidates sc)
      with
      | Some (smaller, reason') -> go smaller reason' (rounds - 1)
      | None -> (sc, reason)
  in
  go sc reason max_shrink_rounds
