(** Domain-parallel execution backend and the differential harness
    over it.

    The backend drives the {e same} per-thread step closures every
    workload and the model checker hand to [Workloads.Driver.run], but
    on OCaml domains instead of the min-clock scheduler: history thread
    [tid] is owned by domain [tid mod k], each step executes under one
    big real mutex per run (the simulated device and allocator are not
    domain-safe), and the OS decides which domain's step runs next. Op
    granularity real interleaving is exactly the differential-testing
    value: the serialisation the big lock produces is one the simulated
    scheduler would never pick.

    Simulated clocks still advance inside the critical sections, so a
    par run's simulated makespan reflects an OS-chosen interleaving —
    never compare it to a sim-mode makespan; host time is the
    authoritative duration in par mode (see DESIGN.md "Execution
    backends"). *)

val exec :
  ?stats:(steps:int -> lock_waits:int -> domains:int -> unit) ->
  Pool.t ->
  Workloads.Driver.backend
(** The backend itself: drive an instance's step closures on the pool's
    domains. Maintenance ticks and telemetry heap snapshots keep their
    sim-mode cadences (every 128 / 1024 executed steps, under the
    lock). An [Injected_crash] raised by any step stops every domain at
    its next step and is re-raised to the caller after the join, so
    crash-countdown harnesses behave as in sim mode. [stats] (called
    once, after the join, before any crash re-raise) observes executed
    steps, big-lock contention and the domain count actually used. *)

val workload : Pool.t -> (unit -> 'a) -> 'a * float
(** [workload pool f] installs {!exec} as the driver's parallel backend
    for the duration of [f] (uninstalling on any exit) and returns
    [f ()] with the host nanoseconds it took. Every
    [Workloads.Driver.run] inside [f] — any registered workload —
    executes on domains. Do not nest, and do not wrap seed sweeps in it
    ({!Sweep} tasks must run on the sim scheduler). *)

type report = {
  scenario : Check.History.t;
  domains : int;  (** pool width *)
  executed : int;  (** ops stepped by the par run (no-ops included) *)
  host_ns : float;  (** host wall time of the par run *)
  par_makespan_ns : float;
      (** largest simulated clock after the par run; interleaving-
          dependent, reported for scale only *)
  sim_makespan_ns : float;  (** the sim cross-run's (deterministic) makespan *)
  lock_waits : int;  (** contended big-lock acquisitions in the par run *)
}

val run_history :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?broken_header:bool ->
  Pool.t ->
  Check.History.t ->
  (report, string) result
(** Differentially check one history scenario across both backends.

    The par run is literally [Check.Runner.run_report] with {!exec}
    installed: same instance construction ([Check.Runner.instance_of]),
    same lockstep model validation, destination-publication checks,
    byte bounds, persist-ordering gate, [iter_live] cross-check, deep
    [integrity_walk] (or [Fault.Oracle.check] on crash scenarios). Then
    the same scenario runs again on the simulated scheduler and the
    interleaving-invariant aggregates are cross-checked: both runs must
    pass every invariant, and on crash-free scenarios both must have
    executed the identical op count (final live {e sets} are
    interleaving-dependent under cross-thread frees and deliberately
    not compared). [Error] names the backend that failed and why. *)

val shrink :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?broken_header:bool ->
  Pool.t ->
  Check.History.t ->
  reason:string ->
  Check.History.t * string
(** Greedy bounded-round minimisation of a scenario that failed
    {!run_history}, re-probing candidates through the full differential
    predicate. Par-mode failures can be interleaving-dependent, so the
    result is a scenario that {e did} fail, not one guaranteed to fail
    every time. *)
