(** Host wall-clock time for the domain-parallel backend.

    Everything else in the repo measures {e simulated} nanoseconds; the
    domain backend is the one place host time is authoritative (its
    simulated clocks still advance under the big lock, but their
    interleaving is the OS scheduler's, so par-mode makespans are not
    comparable to sim-mode ones — see DESIGN.md "Execution backends"). *)

val now_ns : unit -> float
(** Host time in nanoseconds, monotone non-decreasing across all
    domains: raw [gettimeofday] readings are clamped so a caller never
    observes time moving backwards (NTP steps, coarse clocks). *)
