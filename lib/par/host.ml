(* Monotonic clamp over gettimeofday. The high-water mark is kept as an
   integer nanosecond count: [int] CAS is lock-free and 63 bits of ns
   overflows in ~146 years, while a boxed [float Atomic.t] CAS compares
   by physical equality and can livelock on equal readings. *)
let high_water = Atomic.make 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else clamp ()
  in
  float_of_int (clamp ())
