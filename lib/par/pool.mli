(** Fixed-width domain pool with deterministic result ordering.

    [run] distributes indexed tasks over at most [domains] OCaml domains
    and returns results {e by task index}, never by completion order —
    the anchor that makes seed-sweep output byte-identical for any
    [--domains] value. A pool holds no OS resources between runs
    (domains are spawned per [run] and joined before it returns), so
    creating one is free and it never needs tearing down. *)

type t

val create : domains:int -> t
(** Raises [Invalid_argument] when [domains < 1]. *)

val domains : t -> int

val run : t -> n:int -> (int -> 'a) -> 'a array
(** [run t ~n f] evaluates [f 0 .. f (n-1)], each exactly once, on
    [min domains n] domains pulling indices from a shared counter;
    result [i] is [f i]'s value regardless of which domain ran it.
    With one domain (or one task) the calls run inline in index order —
    the degenerate case sequential runs compare against. A raising task
    does not abort the others; after all domains join, the exception of
    the {e lowest} failing index is re-raised with its backtrace. *)
