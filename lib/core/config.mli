(** NVAlloc configuration.

    One record gathers every tunable the paper discusses, so the Figure 11
    ablations (Base / +Interleaved / +Log / full) and the Figure 15/16
    sensitivity studies are just different configurations of the same
    allocator. *)

type consistency =
  | Log_based  (** NVAlloc-LOG: WAL flushed on every small alloc/free *)
  | Gc_based
      (** NVAlloc-GC: no WAL and no metadata flushes for small
          allocations; post-crash conservative GC rebuilds metadata *)
  | Internal_collection
      (** NVAlloc-IC, the paper's stated future-work variant (sections
          4.1 and 7), modelled on PMDK's non-transactional atomic
          allocations: no WAL for small objects; the persistent bitmap
          marks exactly the user-allocated blocks, so after a crash the
          application enumerates its objects ([Nvalloc.iter_allocated],
          the POBJ_FIRST/POBJ_NEXT idiom) and resolves in-flight
          allocations itself. *)

type t = {
  consistency : consistency;
  bit_stripes : int;
      (** Bit stripes of the interleaved slab-bitmap mapping (section 5.1).
          [1] selects the sequential baseline mapping. Default 6. *)
  interleave_tcache : bool;  (** interleaved sub-tcache layout (section 5.1) *)
  interleave_wal : bool;  (** interleaved mapping of WAL entries *)
  interleave_log : bool;  (** interleaved mapping of bookkeeping-log entries *)
  slab_morphing : bool;  (** slab morphing (section 5.2) *)
  morph_su_threshold : float;
      (** Space-utilisation threshold SU below which a slab may morph;
          default 0.20 (section 6.5). *)
  log_bookkeeping : bool;
      (** Log-structured bookkeeping for large allocations (section 5.3);
          when off, extent metadata is updated in place in per-region
          header space, as the Base version and the baselines do. *)
  booklog_gc : bool;  (** run fast/slow GC on the bookkeeping log *)
  booklog_chunks : int;  (** per-arena bookkeeping-log capacity, in 1 KB chunks *)
  wal_entries : int;  (** per-arena WAL ring capacity (multiple of 64) *)
  booklog_slow_gc_threshold : float;
      (** Usage_pmem: fraction of chunks in use that triggers slow GC. *)
  tcache_capacity : int;  (** blocks cached per thread per size class *)
  arenas : int;  (** number of arenas = simulated CPU cores *)
  decay_interval_ns : float;  (** decay tick, 50 ms as in jemalloc *)
  decay_window_ns : float;  (** full smootherstep decay horizon *)
  root_slots : int;  (** persistent root-table entries *)
  flush_batch : bool;
      (** Per-thread flush coalescing: [Device.flush] calls are absorbed
          into a pending buffer, deduplicated per cache line, and drained
          (in one burst, under a single fence) at the next ordering point.
          Default on. *)
  wal_group_commit : int;
      (** WAL group commit: batch up to this many small-op log appends
          behind one commit record and one fence triple, instead of a
          flush + fence per append. [0] disables grouping (every append
          commits synchronously). Only the log-based variant groups. *)
  async_checkpoint : float;
      (** Background WAL checkpointing threshold, as a fraction of the
          ring: when a workload driver runs a maintenance thread, it
          checkpoints any arena whose WAL is fuller than this fraction
          off the hot path. [0.0] disables the daemon (the inline
          near-full checkpoint still guards the ring). Default 0.5. *)
  media_replication : bool;
      (** Maintain a mirrored replica (plus content checksum) of each
          critical metadata record — slab headers, region-table lines,
          WAL/booklog headers, the superblock — on a distinct cache line,
          and repair damaged primaries from it on [Media_error] or
          checksum mismatch. Requires [log_bookkeeping] (slab-header
          verification needs the log's authoritative extent kinds).
          Default off: the checksums are still written (they ride inside
          already-committed lines for free) but nothing verifies or
          replicates. *)
  media_scrub : bool;
      (** Background scrub: [Instance.maintenance] idle slots walk the
          metadata records verifying checksums and pre-emptively
          repairing rot. Requires [media_replication]. Default off. *)
  media_scrub_interval_ns : float;
      (** Minimum simulated time between scrub passes. Default 1 ms. *)
  media_max_repair : int;
      (** Bounded-retry policy: repair attempts per damaged record before
          it is quarantined (capacity withdrawn, allocation continues
          degraded). Default 3. *)
  slo_targets : (string * float * float) list;
      (** Declared SLO targets for latency attribution, as
          [(op class, target ns, goal)]: [goal] is the fraction of ops
          expected within the target (must be inside (0, 1)), so the
          error budget is [1 - goal] and [nvalloc-cli slo] reports the
          burn rate as violating-fraction / budget. Op classes are the
          attribution root frames ([malloc:small], [malloc:large],
          [free], [recovery]). Purely observational: the allocator never
          reads these. *)
}

val validate : ?dev_size:int -> t -> unit
(** Reject nonsensical configurations (zero arenas, too-small WAL ring,
    empty root table, scrubbing without replication, ...) with a
    descriptive [Invalid_argument] naming the offending field, instead of
    failing deep inside [Arena]/[Wal]. [dev_size], when given, also
    rejects [media_replication] on a device too small to hold the
    replicas. Called by [Nvalloc.create] and [Nvalloc.recover]. *)

val log_default : t
(** NVAlloc-LOG with every optimisation on (stripes = 6, SU = 20%). *)

val gc_default : t
(** NVAlloc-GC with every optimisation on. *)

val ic_default : t
(** NVAlloc-IC (internal collection) with every optimisation on. *)

val base : consistency -> t
(** The Figure 11 "Base" version: no interleaving anywhere, in-place
    bookkeeping, no morphing. *)

val with_interleaved_tcache : t -> t
(** Base + interleaved tcache layout only ("+Interleaved"). *)

val with_log_bookkeeping : t -> t
(** Base + log-structured bookkeeping only ("+Log"). *)

val sync : t -> t
(** The same configuration with the whole batched-persistence pipeline
    off: no flush coalescing, no WAL group commit, no async
    checkpointing. The CLI's [--no-batch] A/B switch. *)
