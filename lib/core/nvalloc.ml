module Int_rb = Support.Rbtree.Make (struct
  type t = int

  let compare = compare
end)

type owner = Small_owner of Slab.t | Large_owner of Extent.veh * int

type t = {
  heap : Heap.t;
  dev : Pmem.Device.t;
  config : Config.t;
  mutable arenas : Arena.t array;
  owner_index : owner Int_rb.t;
  owner_lock : Sim.Lock.t;
  region_lock : Sim.Lock.t;
  arena_threads : int array;
  mutable next_thread : int;
  mutable closed : bool;
  (* Media-fault state: address ranges written off at recovery time
     (no vslab exists for them), runtime-quarantined vslabs (withdrawn
     from their arena but still owning their range), frees swallowed
     into recovery-quarantined ranges, scrub pacing, and the fuzzer's
     broken-scrub mutation switch. *)
  mutable quarantined_ranges : (int * int) list;
  mutable quarantined_vslabs : Slab.t list;
  mutable media_dropped_frees : int;
  mutable next_scrub : float;
  mutable broken_scrub : bool;
  (* Lines whose persisted copy was rotted by [inject_bitrot]: the
     injectors consult this so poison never lands on the partner of a
     rotted copy (and vice versa) — a rot+poison double fault on a
     non-slab record would make recovery fatal, which is a test-harness
     artefact, not an allocator property. *)
  mutable rotted_lines : int list;
  (* Telemetry emission state, pre-interned at attach; None (the default)
     costs one compare per malloc/free. Emission never charges clocks. *)
  mutable telem : ntelem option;
}

and ntelem = {
  tsink : Telemetry.t;
  tn_alloc : int;
  tn_free : int;
  tn_op_small : int; (* attribution root frames *)
  tn_op_large : int;
  tn_op_free : int;
  ta_size : int;
  ta_addr : int;
  th_alloc : Telemetry.Histogram.t;
  th_free : Telemetry.Histogram.t;
}

type thread = { id : int; clock : Sim.Clock.t; arena : int; tcaches : Tcache.t array }

type recovery_report = {
  found_state : Heap.state;
  wal_entries_replayed : int;
  torn_wal_skipped : int;
  wal_entries_undone : int;
  torn_slab_creations : int;
  leaked_blocks_reclaimed : int;
  leaked_extents_reclaimed : int;
  gc_blocks_marked : int;
  booklog_entries : int;
  media_repairs : int;
  quarantined_slabs : int;
  quarantined_bytes : int;
}

let pp_recovery_report ppf r =
  Format.fprintf ppf
    "state=%s wal_replayed=%d wal_torn_skipped=%d wal_undone=%d torn_slabs=%d \
     leaked_blocks=%d leaked_extents=%d gc_marked=%d booklog_entries=%d media_repaired=%d \
     quarantined=%d quarantined_bytes=%d"
    (match r.found_state with
    | Heap.Running -> "running"
    | Heap.Shutdown -> "shutdown"
    | Heap.Recovering -> "recovering")
    r.wal_entries_replayed r.torn_wal_skipped r.wal_entries_undone r.torn_slab_creations
    r.leaked_blocks_reclaimed r.leaked_extents_reclaimed r.gc_blocks_marked
    r.booklog_entries r.media_repairs r.quarantined_slabs r.quarantined_bytes

(* --- owner index --------------------------------------------------------- *)

let owner_insert t addr owner = Int_rb.insert t.owner_index addr owner
let owner_remove t addr = Int_rb.remove t.owner_index addr

(* Find the slab or extent containing [addr]; charges a search. *)
let owner_lookup t clock addr =
  let n = Int_rb.cardinal t.owner_index in
  let steps = 1 + (if n <= 1 then 0 else int_of_float (Float.log2 (float_of_int n))) in
  Pmem.Device.charge_work t.dev clock Pmem.Stats.Search ~ns:(float_of_int steps *. 25.0);
  match Int_rb.find_last_leq t.owner_index addr with
  | None -> None
  | Some (_, (Small_owner s as o)) ->
      if addr < s.Slab.addr + Slab.slab_bytes then Some o else None
  | Some (_, (Large_owner (v, _) as o)) ->
      if addr < v.Extent.addr + v.Extent.size then Some o else None

let callbacks t =
  let on_slab_created s = owner_insert t s.Slab.addr (Small_owner s) in
  let on_slab_destroyed s = owner_remove t s.Slab.addr in
  let on_extent_created v arena =
    match v.Extent.kind with
    | Booklog.Extent -> owner_insert t v.Extent.addr (Large_owner (v, arena))
    | Booklog.Slab_extent -> ()
  in
  let on_extent_dropped v =
    match v.Extent.kind with
    | Booklog.Extent -> owner_remove t v.Extent.addr
    | Booklog.Slab_extent -> ()
  in
  (on_slab_created, on_slab_destroyed, on_extent_created, on_extent_dropped)

(* --- construction ---------------------------------------------------------- *)

(* eADR makes the batched pipeline meaningless and the group-commit
   watermark wrong: flushes are free, and a crash preserves the CPU
   caches — so an open group's effects always persist, while the stale
   watermark would discard its entries on replay. Force the synchronous
   pipeline, like NVAlloc's pmem_has_auto_flush() path disables the
   interleaved mapping (section 6.7). *)
let effective_config config dev =
  if Pmem.Device.is_eadr dev then Config.sync config else config

let create ?(config = Config.log_default) dev clock =
  Config.validate ~dev_size:(Pmem.Device.size dev) config;
  let config = effective_config config dev in
  Pmem.Device.set_batching dev config.Config.flush_batch;
  let heap = Heap.init dev config in
  let t =
    {
      heap;
      dev;
      config;
      arenas = [||];
      owner_index = Int_rb.create ();
      owner_lock = Sim.Lock.create ();
      region_lock = Sim.Lock.create ();
      arena_threads = Array.make config.Config.arenas 0;
      next_thread = 0;
      closed = false;
      quarantined_ranges = [];
      quarantined_vslabs = [];
      media_dropped_frees = 0;
      next_scrub = 0.0;
      broken_scrub = false;
      rotted_lines = [];
      telem = None;
    }
  in
  let on_sc, on_sd, on_ec, on_ed = callbacks t in
  t.arenas <-
    Array.init config.Config.arenas (fun index ->
        Arena.create heap ~index ~region_lock:t.region_lock ~on_slab_created:on_sc
          ~on_slab_destroyed:on_sd ~on_extent_created:on_ec ~on_extent_dropped:on_ed);
  Array.iter (fun a -> Arena.set_peers a t.arenas) t.arenas;
  (* Persist the freshly formatted metadata (superblock, WAL and
     bookkeeping-log headers): initialisation must survive a crash that
     happens before the first operation flushes anything nearby. *)
  Pmem.Device.flush_all dev clock Pmem.Stats.Meta;
  Heap.set_state heap clock Heap.Running;
  t

let config t = t.config
let device t = t.dev
let heap t = t.heap

let set_telemetry t sink =
  (* One sink serves the whole stack: device flushes/fences, arena
     refills/morphs/WAL traffic, and the malloc/free wrappers here all
     emit into the same per-thread rings. *)
  Pmem.Device.set_telemetry t.dev sink;
  Array.iter (fun a -> Arena.set_telemetry a sink) t.arenas;
  match sink with
  | None ->
      t.telem <- None;
      Sim.Lock.set_wait_hook t.owner_lock None;
      Sim.Lock.set_wait_hook t.region_lock None
  | Some s ->
      t.telem <-
        Some
          {
            tsink = s;
            tn_alloc = Telemetry.intern s "alloc";
            tn_free = Telemetry.intern s "free";
            tn_op_small = Telemetry.intern s "malloc:small";
            tn_op_large = Telemetry.intern s "malloc:large";
            tn_op_free = Telemetry.intern s "free";
            ta_size = Telemetry.intern s "size";
            ta_addr = Telemetry.intern s "addr";
            th_alloc = Telemetry.histogram s "alloc";
            th_free = Telemetry.histogram s "free";
          };
      (* Contended owner/region-lock acquires charge [lock_wait] leaves
         into the waiting thread's open frame (the arena locks hook
         themselves in Arena.set_telemetry). *)
      let lock_wait = Telemetry.intern s "lock_wait" in
      let hook =
        Some
          (fun clock ns ->
            match Telemetry.attribution s with
            | None -> ()
            | Some a ->
                Telemetry.Attr.charge a ~tid:(Sim.Clock.id clock) ~name:lock_wait ~ns)
      in
      Sim.Lock.set_wait_hook t.owner_lock hook;
      Sim.Lock.set_wait_hook t.region_lock hook

(* Open/close the per-operation root frame of the blame tree. Entering a
   root resets the thread's stack (a faulted op may have left frames
   open); leaving one records the op completion into the per-thread
   latency histograms and SLO windows. No-ops without attribution. *)
let aroot_enter t clock pick t0 =
  match t.telem with
  | None -> ()
  | Some e -> (
      match Telemetry.attribution e.tsink with
      | None -> ()
      | Some a ->
          Telemetry.Attr.enter_root a ~tid:(Sim.Clock.id clock) ~name:(pick e) ~ts:t0)

let aroot_leave t clock =
  match t.telem with
  | None -> ()
  | Some e -> (
      match Telemetry.attribution e.tsink with
      | None -> ()
      | Some a -> Telemetry.Attr.leave a ~tid:(Sim.Clock.id clock) ~ts:(Sim.Clock.now clock))

let telemetry t = Option.map (fun e -> e.tsink) t.telem
let root_addr t i = Heap.root_addr t.heap i
let root_slots t = Heap.root_slots t.heap
let arenas t = t.arenas

let thread t clock =
  (* Least-loaded arena, as in section 4.2. *)
  let best = ref 0 in
  Array.iteri (fun i n -> if n < t.arena_threads.(!best) then best := i) t.arena_threads;
  let arena = !best in
  t.arena_threads.(arena) <- t.arena_threads.(arena) + 1;
  let nsub =
    if t.config.Config.interleave_tcache then max 2 t.config.Config.bit_stripes else 1
  in
  let tcaches =
    Array.init Size_class.count (fun class_idx ->
        Tcache.create ~class_idx ~capacity:t.config.Config.tcache_capacity ~nsub)
  in
  Arena.register_tcaches t.arenas.(arena) tcaches;
  let th = { id = t.next_thread; clock; arena; tcaches } in
  t.next_thread <- t.next_thread + 1;
  th

let thread_clock th = th.clock
let thread_arena th = th.arena

(* --- media faults: demand repair and quarantine ------------------------------

   The device models two media failure modes: poisoned lines (reads
   raise [Media_error]; content scrambled in both images) and at-rest
   bit-rot (persisted image only — surfaces at crash promotion or under
   a scrub). Every critical metadata record carries a {!Guard} checksum
   plus replica, so damage is repaired in place; a slab whose header
   loses both copies is quarantined: capacity withdrawn, live blocks
   written off, allocation continues degraded. *)

let cl = Pmem.Cacheline.size
let media_on t = t.config.Config.media_replication

let in_quarantine t addr =
  List.exists (fun (base, len) -> addr >= base && addr < base + len) t.quarantined_ranges
  || List.exists
       (fun s -> addr >= s.Slab.addr && addr < s.Slab.addr + Slab.slab_bytes)
       t.quarantined_vslabs

let quarantined_slabs t =
  List.length t.quarantined_ranges + List.length t.quarantined_vslabs

let quarantined_bytes t =
  List.fold_left (fun acc (_, len) -> acc + len) 0 t.quarantined_ranges
  + (List.length t.quarantined_vslabs * Slab.slab_bytes)

(* Repair-path telemetry interns per emission: these paths run a handful
   of times per workload, not per operation. *)
let media_span t clock name t0 =
  match Pmem.Device.telemetry t.dev with
  | None -> ()
  | Some s ->
      Telemetry.span_named s ~tid:(Sim.Clock.id clock) ~name ~ts:t0
        ~dur:(Sim.Clock.now clock -. t0);
      (* Media degradations annotate the SLO timeline. *)
      (match Telemetry.attribution s with
      | None -> ()
      | Some a -> Telemetry.Attr.note_event a ~ts:t0 ~name)

let quarantine_runtime t clock s =
  let t0 = Sim.Clock.now clock in
  Arena.quarantine_slab t.arenas.(s.Slab.arena) s;
  (* The owner-index entry stays: the range is still the allocator's,
     and frees into it must be swallowed, never rejected. *)
  t.quarantined_vslabs <- s :: t.quarantined_vslabs;
  media_span t clock "media:quarantine" t0

let record_covers_line (r : Guard.record) line =
  let within addr len = len > 0 && line >= addr / cl && line <= (addr + len - 1) / cl in
  within r.Guard.primary r.Guard.len
  || within r.Guard.replica r.Guard.len
  || within r.Guard.p_ck 2 || within r.Guard.r_ck 2

(* Map a damaged line to the guard record covering it: fixed metadata
   first (superblock, region table, per-arena WAL and bookkeeping-log
   headers), then slab headers through the owner index. [None] means the
   line holds block data or unguarded bulk (WAL entries, log chunks,
   bitmaps): nothing to repair from, the caller keeps the error. *)
let guard_of_line t line =
  let found = ref None in
  let try_r ?slab r =
    if !found = None && record_covers_line r line then found := Some (r, slab)
  in
  try_r Heap.sb_guard;
  for l = 0 to Heap.region_lines - 1 do
    if !found = None then try_r (Heap.region_guard l)
  done;
  for i = 0 to Array.length t.arenas - 1 do
    try_r
      (Wal.guard_record ~base:(Heap.wal_base t.heap ~arena:i)
         ~entries:t.config.Config.wal_entries);
    if t.config.Config.log_bookkeeping then
      try_r
        (Booklog.guard_record
           ~base:(Heap.booklog_base t.heap ~arena:i)
           ~chunks:t.config.Config.booklog_chunks)
  done;
  (if !found = None then
     let addr = line * cl in
     match Int_rb.find_last_leq t.owner_index addr with
     | Some (_, Small_owner s) when addr < s.Slab.addr + Slab.slab_bytes ->
         try_r ~slab:s (Slab.guard_record s.Slab.addr)
     | _ -> ());
  !found

(* Demand repair, run before an operation touches the heap: map every
   poisoned line to its guard record and heal it from the replica —
   bounded attempts per record ([Config.media_max_repair]), quarantine
   when a slab header loses both copies. Lines in already-quarantined
   ranges stay poisoned: nothing will read them again. *)
let handle_poison t clock =
  List.iter
    (fun line ->
      if Pmem.Device.is_poisoned t.dev ~line && not (in_quarantine t (line * cl)) then
        match guard_of_line t line with
        | None -> ()
        | Some (r, slab) ->
            let t0 = Sim.Clock.now clock in
            let attr = Pmem.Device.attribution t.dev in
            (match attr with
            | None -> ()
            | Some a ->
                Telemetry.Attr.enter_named a ~tid:(Sim.Clock.id clock)
                  ~name:"guard:verify" ~ts:t0);
            let status = ref Guard.Lost in
            let attempts = ref 0 in
            while !attempts < t.config.Config.media_max_repair && !status = Guard.Lost do
              incr attempts;
              status := Guard.verify_repair t.dev clock r
            done;
            (match attr with
            | None -> ()
            | Some a ->
                Telemetry.Attr.leave a ~tid:(Sim.Clock.id clock)
                  ~ts:(Sim.Clock.now clock));
            (match !status with
            | Guard.Clean | Guard.Repaired -> media_span t clock "media:repair" t0
            | Guard.Lost -> (
                match slab with
                | Some s when not s.Slab.quarantined -> quarantine_runtime t clock s
                | _ -> ())))
    (Pmem.Device.poisoned_lines t.dev)

(* The per-operation gate: one integer compare when the device is
   healthy. *)
let media_gate t clock =
  if media_on t && Pmem.Device.poisoned_count t.dev > 0 then handle_poison t clock

(* --- allocation ------------------------------------------------------------- *)

(* A user-visible pointer slot (a root slot or a word inside an allocated
   object): the only persistent word the allocator writes outside its own
   metadata. *)
module Ptr = struct
  let l = Pstruct.layout "nvalloc.ptr"
  let v = Pstruct.i64 l "ptr" ~off:0
  let () = Pstruct.seal l ~size:8
end

(* Publishing (and retracting) a pointer is a commit point: the WAL entry
   covering the operation must already be persistent. When the entry sits
   in an open commit group ([via] the arena's WAL), the publish rides the
   group's close instead of retiring inline — the watermark then commits
   entry and pointer together, so a crash mid-group loses the whole
   operation rather than publishing a pointer whose entry replay
   discards. *)
let publish ?(deps = []) ?via t clock ~dest ~addr =
  Pstruct.set t.dev ~base:dest Ptr.v (Int64.of_int addr);
  let span = Pstruct.span ~base:dest Ptr.v in
  match via with
  | Some wal -> Wal.defer_commit ~deps wal clock Pmem.Stats.Data span
  | None -> Pstruct.commit ~deps t.dev clock Pmem.Stats.Data span

let malloc_to t th ~size ~dest =
  assert (not t.closed);
  assert (size > 0);
  let clock = th.clock in
  media_gate t clock;
  let t0 = Sim.Clock.now clock in
  let addr, deps, via =
    match Size_class.of_size size with
    | Some class_idx ->
        aroot_enter t clock (fun e -> e.tn_op_small) t0;
        let arena = t.arenas.(th.arena) in
        let _slab, addr = Arena.alloc_small arena clock ~tcaches:th.tcaches ~class_idx in
        let wal_span = Arena.log_op arena clock Wal.Alloc ~addr ~dest in
        (* Grouped only when an entry covers the op: the publish must
           never outlive its entry's commit record. *)
        let via = if wal_span = None then None else Some (Arena.wal arena) in
        (addr, Arena.wal_dep Wal.Alloc wal_span, via)
    | None ->
        aroot_enter t clock (fun e -> e.tn_op_large) t0;
        let arena = t.arenas.(th.arena) in
        let veh = Arena.malloc_large arena clock ~size in
        let wal_span = Arena.log_op arena clock Wal.Large_alloc ~addr:veh.Extent.addr ~dest in
        (* [log_op] closed the group behind a Large_* entry: commit inline. *)
        (veh.Extent.addr, Arena.wal_dep Wal.Large_alloc wal_span, None)
  in
  publish ~deps ?via t clock ~dest ~addr;
  aroot_leave t clock;
  (match t.telem with
  | None -> ()
  | Some e ->
      let now = Sim.Clock.now clock in
      Telemetry.span2 e.tsink ~tid:(Sim.Clock.id clock) ~name:e.tn_alloc ~ts:t0
        ~dur:(now -. t0) ~k1:e.ta_size ~v1:(float_of_int size) ~k2:e.ta_addr
        ~v2:(float_of_int addr);
      Telemetry.Histogram.observe e.th_alloc (now -. t0));
  addr

let read_ptr t ~dest = Int64.to_int (Pstruct.get t.dev ~base:dest Ptr.v)

(* The exact wording is part of the API: the baselines raise the same
   message, so harnesses can treat "free of an unpublished slot" uniformly
   across every allocator (see Alloc_api.Instance.free). *)
let err_free_unpublished = "free: destination slot holds no published address"

let free_from t th ~dest =
  assert (not t.closed);
  let clock = th.clock in
  media_gate t clock;
  let t0 = Sim.Clock.now clock in
  let addr = read_ptr t ~dest in
  if addr <= 0 then invalid_arg err_free_unpublished;
  (* One root frame for both small and large frees: the owner is unknown
     until the lookup, which itself belongs inside the frame. *)
  aroot_enter t clock (fun e -> e.tn_op_free) t0;
  if media_on t && in_quarantine t addr then begin
    (* Graceful degradation: the block's home metadata is written off —
       its capacity already left the heap, so the free is swallowed and
       only the publication retracted, keeping the image consistent. *)
    t.media_dropped_frees <- t.media_dropped_frees + 1;
    publish t clock ~dest ~addr:0
  end
  else begin
    (* Internal collection retracts the reference before unmarking the
       block: a crash in between leaves an orphan the application resolves
       via iter_allocated, never a published pointer to a freed block. The
       logged variants keep the reverse order and let WAL replay clear the
       dangling destination. *)
    if t.config.Config.consistency = Config.Internal_collection then
      publish t clock ~dest ~addr:0;
    let deps, via =
      match owner_lookup t clock addr with
      | Some (Small_owner slab) ->
          let arena = t.arenas.(slab.Slab.arena) in
          let wal_span = Arena.free_small arena clock ~tcaches:th.tcaches slab ~addr ~dest in
          (* The morph-release path logs no entry (wal_span = None): its
             metadata committed inline above, so the retraction must too —
             deferring it with no covering entry would leave the published
             pointer dangling at a freed block across the group window. *)
          let via = if wal_span = None then None else Some (Arena.wal arena) in
          (Arena.wal_dep Wal.Free wal_span, via)
      | Some (Large_owner (veh, aidx)) ->
          assert (veh.Extent.addr = addr);
          let arena = t.arenas.(aidx) in
          let wal_span = Arena.log_op arena clock Wal.Large_free ~addr ~dest in
          Arena.free_large arena clock veh;
          (Arena.wal_dep Wal.Large_free wal_span, None)
      | None -> invalid_arg "Nvalloc.free_from: address not owned by the allocator"
    in
    publish ~deps ?via t clock ~dest ~addr:0
  end;
  aroot_leave t clock;
  match t.telem with
  | None -> ()
  | Some e ->
      let now = Sim.Clock.now clock in
      Telemetry.span2 e.tsink ~tid:(Sim.Clock.id clock) ~name:e.tn_free ~ts:t0
        ~dur:(now -. t0) ~k1:e.ta_addr ~v1:(float_of_int addr) ~k2:(-1) ~v2:0.0;
      Telemetry.Histogram.observe e.th_free (now -. t0)

let exit_ t clock =
  assert (not t.closed);
  Array.iter
    (fun arena ->
      Sim.Lock.with_lock (Arena.lock arena) clock (fun () ->
          Arena.drain_all_tcaches arena clock;
          Wal.checkpoint (Arena.wal arena) clock))
    t.arenas;
  (* Persist every remaining volatile line (NVAlloc-GC's bitmaps, free
     extent bookkeeping, ...). *)
  Pmem.Device.flush_all t.dev clock Pmem.Stats.Meta;
  Heap.set_state t.heap clock Heap.Shutdown;
  t.closed <- true

(* --- observability ------------------------------------------------------------ *)

let mapped_bytes t = Pmem.Dax.mapped_bytes (Heap.dax t.heap)
let peak_mapped_bytes t = Pmem.Dax.peak_mapped_bytes (Heap.dax t.heap)
let reset_peak t = Pmem.Dax.reset_peak (Heap.dax t.heap)
let stats t = Pmem.Device.stats t.dev

type owner_info = { base : int; size : int; is_slab : bool }

let info_of_owner = function
  | Small_owner s -> { base = s.Slab.addr; size = Slab.slab_bytes; is_slab = true }
  | Large_owner (v, _) -> { base = v.Extent.addr; size = v.Extent.size; is_slab = false }

let owner_of_addr t addr =
  match Int_rb.find_last_leq t.owner_index addr with
  | Some (_, o) when addr < (info_of_owner o).base + (info_of_owner o).size ->
      Some (info_of_owner o)
  | _ ->
      (* Recovery-quarantined ranges have no index entry (no vslab was
         built) but remain the allocator's: queries must keep reporting
         them so callers free (and get swallowed) instead of erroring. *)
      List.find_map
        (fun (base, size) ->
          if addr >= base && addr < base + size then Some { base; size; is_slab = true }
          else None)
        t.quarantined_ranges

let check_owner_index t =
  let prev = ref None in
  let error = ref None in
  Int_rb.iter
    (fun key o ->
      let i = info_of_owner o in
      if key <> i.base then
        error := Some (Printf.sprintf "key %d <> base %d" key i.base);
      (match !prev with
      | Some p when p.base + p.size > i.base && !error = None ->
          error :=
            Some
              (Printf.sprintf "overlap: [%d,+%d,%s] and [%d,+%d,%s]" p.base p.size
                 (if p.is_slab then "slab" else "ext")
                 i.base i.size
                 (if i.is_slab then "slab" else "ext"))
      | _ -> ());
      prev := Some i)
    t.owner_index;
  match !error with None -> Ok "disjoint" | Some e -> Error e

let iter_slabs t f = Array.iter (fun a -> Arena.iter_slabs a f) t.arenas

let iter_allocated t f =
  (* Small objects: marked, non-pinned blocks; old-class blocks of a
     morphing slab are enumerated from the index table. *)
  iter_slabs t (fun s ->
      Bitmap.iter_set t.dev s.Slab.bitmap (fun b ->
          if Slab.usable s b then
            f ~addr:(Slab.block_addr s b) ~size:s.Slab.layout.Slab.block_size);
      match s.Slab.morph with
      | Some m ->
          Hashtbl.iter
            (fun b _ ->
              f
                ~addr:(s.Slab.addr + m.Slab.old_data_off + (b * m.Slab.old_block_size))
                ~size:m.Slab.old_block_size)
            m.Slab.old_live
      | None -> ());
  (* Large objects. *)
  Int_rb.iter
    (fun _ o ->
      match o with
      | Large_owner (v, _) -> f ~addr:v.Extent.addr ~size:v.Extent.size
      | Small_owner _ -> ())
    t.owner_index

let allocated_small_blocks t =
  Array.fold_left (fun acc a -> acc + Arena.live_small_blocks a) 0 t.arenas

let metadata_bytes t =
  (* Per-object heap metadata resident right now: everything below each
     slab's block 0 (packed header line, bitmaps, morph index table)
     plus the in-place VEH slot area at the head of each mapped region.
     Fixed-size arena structures (WAL, bookkeeping log) are excluded —
     they do not grow with the number of live objects. *)
  let total = ref 0 in
  iter_slabs t (fun s -> total := !total + s.Slab.layout.Slab.data_off);
  Array.iter
    (fun a ->
      Extent.iter_pages (Arena.large a) (fun pd ->
          total := !total + pd.Extent.page_data_off))
    t.arenas;
  !total

let slab_utilization_histogram t ~buckets =
  let bounds = Array.of_list buckets in
  let counts = Array.make (Array.length bounds) 0 in
  iter_slabs t (fun s ->
      let r = Slab.occupancy_ratio s in
      let rec place i =
        if i >= Array.length bounds then ()
        else if r <= bounds.(i) then counts.(i) <- counts.(i) + 1
        else place (i + 1)
      in
      place 0);
  counts

(* --- heap-integrity walker ---------------------------------------------------

   Deep consistency check of the persistent image against the volatile
   bookkeeping, for the model-based checker (lib/check) and tests. Two
   passes: structural checks with tcaches live, then a quiescing pass
   (drain every tcache, checkpoint every WAL) after which the WAL must be
   empty and the same structural checks must still hold.

   A cross-arena free parks a foreign block in the freeing thread's
   tcache, but drains route every entry back through the slab's owning
   arena (Arena.set_peers), so slab registration stays with the arena
   named in the slab header — and the walker checks that affinity. *)

exception Integrity of string

let failf fmt = Printf.ksprintf (fun m -> raise (Integrity m)) fmt

let walk_slab t ~quiesced s =
  let l = s.Slab.layout in
  let sid = s.Slab.addr in
  let ic = t.config.Config.consistency = Config.Internal_collection in
  if s.Slab.dying then failf "slab %#x: dying slab still enumerated" sid;
  if s.Slab.free_count < 0 || s.Slab.free_count > l.Slab.nblocks then
    failf "slab %#x: free_count %d outside [0, %d]" sid s.Slab.free_count l.Slab.nblocks;
  let free_seen = ref 0 in
  Slab.iter_free s (fun b ->
      incr free_seen;
      if Bitmap.get t.dev s.Slab.bitmap b then
        failf "slab %#x: free block %d has its bitmap bit set" sid b;
      if not (Slab.usable s b) then failf "slab %#x: free block %d is not usable" sid b);
  if !free_seen <> s.Slab.free_count then
    failf "slab %#x: free-set size %d <> free_count %d" sid !free_seen s.Slab.free_count;
  (* Persistent packed header vs. volatile layout. *)
  if not (Slab.is_slab_header t.dev sid) then failf "slab %#x: bad header magic" sid;
  if Slab.Header.read_class t.dev sid <> l.Slab.class_idx then
    failf "slab %#x: persisted class %d <> volatile class %d" sid
      (Slab.Header.read_class t.dev sid)
      l.Slab.class_idx;
  if Slab.Header.read_arena t.dev sid <> s.Slab.arena then
    failf "slab %#x: persisted arena %d <> volatile arena %d" sid
      (Slab.Header.read_arena t.dev sid)
      s.Slab.arena;
  (* The free hint is advisory (refreshed only at header commits) but must
     stay in the packed field's valid range for the current layout. *)
  let hint = Slab.Header.read_free_hint t.dev sid in
  if hint > l.Slab.nblocks then
    failf "slab %#x: persisted free hint %d exceeds nblocks %d" sid hint l.Slab.nblocks;
  let flag = Slab.Header.read_flag t.dev sid in
  if flag <> 0 then failf "slab %#x: morph flag %d left nonzero at rest" sid flag;
  (* Tcache accounting: only the internal-collection variant tracks
     bit-unmarked tcache residents per slab. *)
  if s.Slab.tcached < 0 then failf "slab %#x: negative tcached %d" sid s.Slab.tcached;
  if (not ic) && s.Slab.tcached <> 0 then
    failf "slab %#x: tcached %d under a non-IC variant" sid s.Slab.tcached;
  if quiesced && s.Slab.tcached <> 0 then
    failf "slab %#x: tcached %d after the quiescing drain" sid s.Slab.tcached;
  (* Bitmap accounting: bit set iff the block is allocated (user-live,
     tcache-resident under LOG/GC, or morph-pinned). *)
  let pop = Bitmap.popcount t.dev s.Slab.bitmap in
  let expect = l.Slab.nblocks - s.Slab.free_count - (if ic then s.Slab.tcached else 0) in
  if pop <> expect then
    failf "slab %#x: bitmap popcount %d <> expected %d (nblocks %d, free %d, tcached %d)" sid
      pop expect l.Slab.nblocks s.Slab.free_count s.Slab.tcached;
  (* Morph state vs. the persistent index table (section 5.2). *)
  match s.Slab.morph with
  | None ->
      if Slab.Header.read_old_class t.dev sid <> Slab.Header.no_class then
        failf "slab %#x: not morphing but persisted old_class is %d" sid
          (Slab.Header.read_old_class t.dev sid)
  | Some m ->
      if m.Slab.cnt_slab = 0 then failf "slab %#x: morph state with cnt_slab 0" sid;
      if Hashtbl.length m.Slab.old_live <> m.Slab.cnt_slab then
        failf "slab %#x: cnt_slab %d <> %d live old blocks" sid m.Slab.cnt_slab
          (Hashtbl.length m.Slab.old_live);
      if Slab.Header.read_old_class t.dev sid <> m.Slab.old_class then
        failf "slab %#x: persisted old_class %d <> volatile %d" sid
          (Slab.Header.read_old_class t.dev sid)
          m.Slab.old_class;
      let icount = Slab.Header.read_index_count t.dev sid in
      let by_slot = Hashtbl.create 16 in
      Hashtbl.iter
        (fun b slot ->
          if slot < 0 || slot >= icount then
            failf "slab %#x: old block %d in index slot %d, persisted count %d" sid b slot
              icount;
          if Hashtbl.mem by_slot slot then failf "slab %#x: index slot %d claimed twice" sid slot;
          Hashtbl.add by_slot slot b;
          let e = Slab.read_index_entry t.dev sid slot in
          if e <> Slab.pack_index_entry ~block:b ~allocated:true then
            failf "slab %#x: index slot %d reads %#x, expected live old block %d" sid slot e b)
        m.Slab.old_live;
      for slot = 0 to icount - 1 do
        let b, allocated = Slab.unpack_index_entry (Slab.read_index_entry t.dev sid slot) in
        if allocated then
          match Hashtbl.find_opt by_slot slot with
          | Some b' when b' = b -> ()
          | _ ->
              failf "slab %#x: index slot %d marks old block %d allocated, volatile state does not"
                sid slot b
      done;
      (* Recompute the per-new-block pin counts from the live old blocks
         and hold them against cnt_block and the bitmap pins. *)
      let cnt = Array.make (Array.length m.Slab.cnt_block) 0 in
      Hashtbl.iter
        (fun b _ ->
          let lo, hi = Slab.overlapping_new_blocks s m b in
          for j = lo to hi do
            cnt.(j) <- cnt.(j) + 1
          done)
        m.Slab.old_live;
      Array.iteri
        (fun j c ->
          if c <> m.Slab.cnt_block.(j) then
            failf "slab %#x: cnt_block[%d] = %d, recomputed %d" sid j m.Slab.cnt_block.(j) c;
          if c > 0 then begin
            if not (Bitmap.get t.dev s.Slab.bitmap j) then
              failf "slab %#x: morph-pinned block %d has a clear bit" sid j;
            if Slab.usable s j then failf "slab %#x: morph-pinned block %d usable" sid j
          end)
        cnt

let structural_walk t ~quiesced =
  (match check_owner_index t with Ok _ -> () | Error e -> failf "owner index: %s" e);
  let slabs = ref 0 in
  Array.iter
    (fun a ->
      Arena.iter_slabs a (fun s ->
          incr slabs;
          if s.Slab.arena <> Arena.index a then
            failf "slab %#x: belongs to arena %d, registered with arena %d" s.Slab.addr
              s.Slab.arena (Arena.index a);
          walk_slab t ~quiesced s))
    t.arenas;
  !slabs

let integrity_walk t clock =
  try
    if t.closed then failf "integrity walk on a closed handle";
    (* Heal outstanding media damage first: the walker reads persisted
       headers, and surviving poison on a repairable record is a repair
       debt, not an integrity failure. *)
    media_gate t clock;
    List.iter
      (fun s ->
        if not s.Slab.quarantined then
          failf "slab %#x: in the quarantine list but not flagged" s.Slab.addr;
        if Arena.find_slab t.arenas.(s.Slab.arena) s.Slab.addr <> None then
          failf "slab %#x: quarantined but still registered with its arena" s.Slab.addr)
      t.quarantined_vslabs;
    List.iter
      (fun (base, size) ->
        if size <> Slab.slab_bytes then
          failf "quarantined range %#x: size %d is not one slab" base size)
      t.quarantined_ranges;
    let _ = structural_walk t ~quiesced:false in
    (* Quiesce exactly as a clean shutdown would, but keep the heap
       running: every tcache drained, every WAL checkpointed. *)
    Array.iter
      (fun arena ->
        Sim.Lock.with_lock (Arena.lock arena) clock (fun () ->
            Arena.drain_all_tcaches arena clock;
            Wal.checkpoint (Arena.wal arena) clock))
      t.arenas;
    Array.iter
      (fun arena ->
        let used = Wal.used (Arena.wal arena) in
        if used <> 0 then
          failf "arena %d: WAL holds %d entries after the quiescing checkpoint"
            (Arena.index arena) used)
      t.arenas;
    let slabs = structural_walk t ~quiesced:true in
    Ok
      (Printf.sprintf "%d slabs, %d small blocks allocated, owner index disjoint" slabs
         (allocated_small_blocks t))
  with
  | Integrity m -> Error m
  | Pmem.Device.Media_error { op; addr; line; _ } ->
      Error (Printf.sprintf "media error during walk: %s at %#x (line %d)" op addr line)

(* Periodic heap introspection: counter events on the snapshot pseudo-
   track — per-size-class slab counts and mean occupancy, free/full/
   partial slab counts, extent byte totals and fragmentation, mapped
   bytes. Read-only over volatile bookkeeping; charges nothing. *)
let telemetry_snapshot t sink ~ts =
  let tid = Telemetry.snapshot_tid in
  let emit name value = Telemetry.counter_named sink ~tid ~name ~ts ~value in
  let nclasses = Size_class.count in
  let nslabs = Array.make nclasses 0 in
  let occ = Array.make nclasses 0.0 in
  let free = ref 0 and full = ref 0 and partial = ref 0 in
  iter_slabs t (fun s ->
      let c = s.Slab.layout.Slab.class_idx in
      nslabs.(c) <- nslabs.(c) + 1;
      occ.(c) <- occ.(c) +. Slab.occupancy_ratio s;
      if s.Slab.free_count = 0 then incr full
      else if s.Slab.free_count = s.Slab.layout.Slab.nblocks then incr free
      else incr partial);
  emit "slabs:free" (float_of_int !free);
  emit "slabs:full" (float_of_int !full);
  emit "slabs:partial" (float_of_int !partial);
  for c = 0 to nclasses - 1 do
    if nslabs.(c) > 0 then begin
      emit (Printf.sprintf "slabs:c%d" c) (float_of_int nslabs.(c));
      emit (Printf.sprintf "occupancy:c%d" c) (occ.(c) /. float_of_int nslabs.(c))
    end
  done;
  let sum f = Array.fold_left (fun acc a -> acc + f (Arena.large a)) 0 t.arenas in
  let activated = sum Extent.activated_bytes in
  let reclaimed = sum Extent.reclaimed_bytes in
  let retained = sum Extent.retained_bytes in
  emit "extent:activated_bytes" (float_of_int activated);
  emit "extent:reclaimed_bytes" (float_of_int reclaimed);
  emit "extent:retained_bytes" (float_of_int retained);
  (* Fragmentation: share of once-activated address space now sitting in
     reclaimed (free but carved-up) extents. *)
  let denom = activated + reclaimed in
  emit "extent:fragmentation"
    (if denom = 0 then 0.0 else float_of_int reclaimed /. float_of_int denom);
  emit "mapped_bytes" (float_of_int (mapped_bytes t))

(* --- media scrub and fault injection ------------------------------------ *)

(* One scrub pass over every guarded record: rewrite at-rest rot from
   the verified cached image, then verify/repair each checksum pair. A
   slab whose record lost both copies is quarantined; losing any other
   record here is only counted — the next recovery decides whether it is
   fatal. Returns [(repaired, lost)], rot rewrites included. *)
let scrub t clock =
  assert (media_on t);
  let t0 = Sim.Clock.now clock in
  let repaired = ref 0 and lost = ref 0 in
  let handle ?slab (r : Guard.record) =
    (* Cost model: the scrubber reads both copies and their checksums. *)
    Pmem.Device.charge_pm_read t.dev clock ~lines:2;
    let n = Pmem.Device.scrub_lines t.dev ~addr:r.Guard.primary ~len:r.Guard.len in
    let n = n + Pmem.Device.scrub_lines t.dev ~addr:r.Guard.p_ck ~len:2 in
    let n = n + Pmem.Device.scrub_lines t.dev ~addr:r.Guard.replica ~len:r.Guard.len in
    let n = n + Pmem.Device.scrub_lines t.dev ~addr:r.Guard.r_ck ~len:2 in
    repaired := !repaired + n;
    for _ = 1 to n do
      Pmem.Device.note_media_repair t.dev
    done;
    if t.broken_scrub then begin
      (* The seeded mutation (--broken-scrub): bless whatever a damaged
         primary contains instead of repairing it from the replica. The
         differential oracle must catch the downstream corruption. *)
      if not (Guard.primary_ok t.dev r) then Guard.bless t.dev clock r
    end
    else
      match Guard.verify_repair t.dev clock r with
      | Guard.Clean -> ()
      | Guard.Repaired -> incr repaired
      | Guard.Lost -> (
          match slab with
          | Some s when not s.Slab.quarantined ->
              quarantine_runtime t clock s;
              incr lost
          | Some _ -> ()
          | None -> incr lost)
  in
  handle Heap.sb_guard;
  for line = 0 to Heap.region_lines - 1 do
    handle (Heap.region_guard line)
  done;
  for i = 0 to Array.length t.arenas - 1 do
    handle
      (Wal.guard_record ~base:(Heap.wal_base t.heap ~arena:i)
         ~entries:t.config.Config.wal_entries);
    if t.config.Config.log_bookkeeping then
      handle
        (Booklog.guard_record
           ~base:(Heap.booklog_base t.heap ~arena:i)
           ~chunks:t.config.Config.booklog_chunks)
  done;
  (* Collect first: a quarantine mutates the arena's slab table. *)
  let slabs = ref [] in
  iter_slabs t (fun s -> slabs := s :: !slabs);
  List.iter (fun s -> handle ~slab:s (Slab.guard_record s.Slab.addr)) !slabs;
  Pmem.Device.note_scrub_pass t.dev;
  media_span t clock "scrub" t0;
  (!repaired, !lost)

(* Idle-slot hook for [Instance.maintenance]: at most one pass per
   [Config.media_scrub_interval_ns] of simulated time. *)
let scrub_tick t clock =
  if
    media_on t && t.config.Config.media_scrub && (not t.closed)
    && Sim.Clock.now clock >= t.next_scrub
  then begin
    t.next_scrub <- Sim.Clock.now clock +. t.config.Config.media_scrub_interval_ns;
    ignore (scrub t clock);
    true
  end
  else false

let unsafe_set_broken_scrub t v = t.broken_scrub <- v

let dropped_frees t =
  t.media_dropped_frees
  + Array.fold_left (fun acc a -> acc + Arena.dropped_frees a) 0 t.arenas

(* Injection candidates: the primary and replica lines of every guarded
   record, each paired with its partner. Sampling never takes both
   halves of one record, so a seeded fault is always repairable — the
   acceptance bound: no block whose data lines are intact may be lost.
   Region-table lines are excluded (their checksums share cache lines
   across 32 records); double faults are exercised directly in tests via
   [Device.poison]. *)
let poison_candidates t =
  let cands = ref [] in
  let pair (r : Guard.record) =
    let pl = r.Guard.primary / cl and rl = r.Guard.replica / cl in
    cands := (pl, rl) :: (rl, pl) :: !cands
  in
  pair Heap.sb_guard;
  for i = 0 to Array.length t.arenas - 1 do
    pair
      (Wal.guard_record ~base:(Heap.wal_base t.heap ~arena:i)
         ~entries:t.config.Config.wal_entries);
    if t.config.Config.log_bookkeeping then
      pair
        (Booklog.guard_record
           ~base:(Heap.booklog_base t.heap ~arena:i)
           ~chunks:t.config.Config.booklog_chunks)
  done;
  iter_slabs t (fun s -> pair (Slab.guard_record s.Slab.addr));
  Array.of_list !cands

let seed_poison t ~seed ~count =
  assert (media_on t);
  let cands = poison_candidates t in
  let n = Array.length cands in
  let rng = Sim.Rng.create (0x50150 lxor seed) in
  for i = n - 1 downto 1 do
    let j = Sim.Rng.int rng (i + 1) in
    let tmp = cands.(i) in
    cands.(i) <- cands.(j);
    cands.(j) <- tmp
  done;
  let taken = Hashtbl.create 16 in
  let injected = ref 0 in
  Array.iter
    (fun (line, partner) ->
      if
        !injected < count
        && (not (Hashtbl.mem taken line))
        && (not (Hashtbl.mem taken partner))
        && (not (List.mem partner t.rotted_lines))
        && not (Pmem.Device.is_poisoned t.dev ~line)
      then begin
        Hashtbl.replace taken line ();
        Pmem.Device.poison t.dev ~line;
        incr injected
      end)
    cands;
  !injected

(* At-rest rot over the guarded byte spans, one copy per record (the
   partner rule again): repairable at the next crash promotion from the
   surviving copy, or rewritten earlier by a scrub pass. *)
let inject_bitrot t ~seed ~flips =
  assert (media_on t);
  let spans = ref [] in
  let add (r : Guard.record) =
    spans :=
      (r.Guard.primary, r.Guard.len, r.Guard.replica)
      :: (r.Guard.replica, r.Guard.len, r.Guard.primary)
      :: !spans
  in
  add Heap.sb_guard;
  for i = 0 to Array.length t.arenas - 1 do
    add
      (Wal.guard_record ~base:(Heap.wal_base t.heap ~arena:i)
         ~entries:t.config.Config.wal_entries);
    if t.config.Config.log_bookkeeping then
      add
        (Booklog.guard_record
           ~base:(Heap.booklog_base t.heap ~arena:i)
           ~chunks:t.config.Config.booklog_chunks)
  done;
  iter_slabs t (fun s -> add (Slab.guard_record s.Slab.addr));
  let spans = Array.of_list !spans in
  let rng = Sim.Rng.create (0xB17 lxor seed) in
  let taken = Hashtbl.create 8 in
  let applied = ref 0 in
  let budget = ref (8 * flips) in
  while !applied < flips && !budget > 0 do
    decr budget;
    let base, len, partner = spans.(Sim.Rng.int rng (Array.length spans)) in
    if
      (not (Hashtbl.mem taken partner))
      && not (Pmem.Device.poisoned_within t.dev ~addr:partner ~len)
    then begin
      Hashtbl.replace taken base ();
      let a = base + Sim.Rng.int rng len in
      if not (Pmem.Device.is_poisoned t.dev ~line:(a / cl)) then begin
        Pmem.Device.corrupt_bit t.dev ~addr:a ~bit:(Sim.Rng.int rng 8);
        t.rotted_lines <- (a / cl) :: t.rotted_lines;
        incr applied
      end
    end
  done;
  !applied

(* --- recovery (section 4.4) ----------------------------------------------------- *)

let charge_lines t clock n = Pmem.Device.charge_pm_read t.dev clock ~lines:n

let recover ?(config = Config.log_default) dev clock =
  Config.validate ~dev_size:(Pmem.Device.size dev) config;
  let config = effective_config config dev in
  Pmem.Device.set_batching dev config.Config.flush_batch;
  (* Recovery emits phase spans into a sink already attached to the
     device (there is no allocator to attach to until recovery returns).
     [phase] charges nothing; without a sink it is the identity. *)
  let tsink = Pmem.Device.telemetry dev in
  let t_start = Sim.Clock.now clock in
  (* Blame attribution: recovery is its own root op class — its WAL
     replay reads, guard repairs and metadata flushes attribute under
     [recovery] instead of polluting malloc/free. *)
  (match Pmem.Device.attribution dev with
  | None -> ()
  | Some a ->
      Telemetry.Attr.enter_root_named a ~tid:(Sim.Clock.id clock) ~name:"recovery"
        ~ts:t_start);
  let phase name f =
    match tsink with
    | None -> f ()
    | Some s ->
        let t0 = Sim.Clock.now clock in
        let r = f () in
        Telemetry.span_named s ~tid:(Sim.Clock.id clock) ~name ~ts:t0
          ~dur:(Sim.Clock.now clock -. t0);
        r
  in
  (* 0. Media pass, before anything reads a (possibly damaged) header:
     verify and repair the superblock and region table from their
     replicas. Losing either is fatal — there is nothing to rebuild the
     heap from. Per-arena log headers are verified below, once the heap
     handle provides their bases; slab headers during extent restore. *)
  let media = config.Config.media_replication in
  let media_repaired = ref 0 in
  let quarantined : (int * int) list ref = ref [] in
  let bump = function
    | Guard.Repaired -> incr media_repaired
    | Guard.Clean | Guard.Lost -> ()
  in
  if media then
    phase "recovery:media" (fun () ->
        (match Heap.verify_superblock dev clock with
        | Guard.Lost -> failwith "Nvalloc.recover: superblock unrepairable (both copies damaged)"
        | s -> bump s);
        let r, l = Heap.verify_regions dev clock in
        media_repaired := !media_repaired + r;
        if l > 0 then failwith "Nvalloc.recover: region table unrepairable");
  let found_state, heap = Heap.open_existing dev config in
  let t =
    {
      heap;
      dev;
      config;
      arenas = [||];
      owner_index = Int_rb.create ();
      owner_lock = Sim.Lock.create ();
      region_lock = Sim.Lock.create ();
      arena_threads = Array.make config.Config.arenas 0;
      next_thread = 0;
      closed = false;
      quarantined_ranges = [];
      quarantined_vslabs = [];
      media_dropped_frees = 0;
      next_scrub = 0.0;
      broken_scrub = false;
      rotted_lines = [];
      telem = None;
    }
  in
  Heap.set_state heap clock Heap.Recovering;
  let n_arenas = config.Config.arenas in
  (* Verify/repair the per-arena log headers before the decode below
     reads them: a poisoned header would raise, a rotten one (promoted
     by the crash) would decode garbage. A repair from a replica that
     trailed by one un-fenced window restores exactly a
     crash-before-commit image, which the crash model already covers. *)
  if media then
    phase "recovery:media" (fun () ->
        for i = 0 to n_arenas - 1 do
          (match
             Wal.verify_guard dev clock
               ~base:(Heap.wal_base heap ~arena:i)
               ~entries:config.Config.wal_entries
           with
          | Guard.Lost -> failwith "Nvalloc.recover: WAL header unrepairable"
          | s -> bump s);
          if config.Config.log_bookkeeping then
            match
              Booklog.verify_guard dev clock
                ~base:(Heap.booklog_base heap ~arena:i)
                ~chunks:config.Config.booklog_chunks
            with
            | Guard.Lost -> failwith "Nvalloc.recover: bookkeeping-log header unrepairable"
            | s -> bump s
        done);
  (* 1. Decode the WALs. The epochs are NOT bumped yet: they stay valid
     until the sanity pass has finished (see the [Wal.seal] calls below),
     so a crash during recovery leaves the logs replayable and recovery
     idempotent. *)
  let torn_wal = ref 0 in
  let decoded =
    phase "recovery:wal-decode" (fun () ->
        Array.init n_arenas (fun i ->
            let base = Heap.wal_base heap ~arena:i in
            charge_lines t clock (config.Config.wal_entries / 4);
            let committed, discarded, torn =
              Wal.replay_full dev ~base ~entries:config.Config.wal_entries
            in
            torn_wal := !torn_wal + torn;
            (committed, discarded)))
  in
  let replays = Array.map fst decoded in
  (* The committed window plus the crash's open group, in seq order: what
     the sanity pass judges block fates by. A discarded entry's op never
     happened, but its effects can have leaked through shared-line
     flushes — so "no entry" must mean "checkpointed", never "dropped". *)
  let windows = Array.map (fun (c, d) -> c @ d) decoded in
  (* 2. Reopen per-arena bookkeeping logs (with their recovery-time slow
     GC) and WALs, then build the arenas around them. *)
  let booklog_live = Array.make n_arenas [] in
  let booklogs =
    phase "recovery:booklog" (fun () ->
        if config.Config.log_bookkeeping then
          Array.init n_arenas (fun i ->
              let base = Heap.booklog_base heap ~arena:i in
              charge_lines t clock (Booklog.scanned_chunks dev ~base * 16);
              let log, live =
                Booklog.open_existing dev clock ~replicate:media ~base
                  ~chunks:config.Config.booklog_chunks
                  ~interleave:config.Config.interleave_log
              in
              booklog_live.(i) <- live;
              Some log)
        else Array.make n_arenas None)
  in
  let wals =
    let group =
      if config.Config.consistency = Config.Log_based then config.Config.wal_group_commit
      else 0
    in
    Array.init n_arenas (fun i ->
        Wal.adopt dev ~group ~replicate:media
          ~base:(Heap.wal_base heap ~arena:i)
          ~entries:config.Config.wal_entries ~interleave:config.Config.interleave_wal)
  in
  let on_sc, on_sd, on_ec, on_ed = callbacks t in
  t.arenas <-
    Array.init n_arenas (fun index ->
        Arena.of_recovered heap ~index ~region_lock:t.region_lock ~booklog:booklogs.(index)
          ~wal:wals.(index) ~on_slab_created:on_sc ~on_slab_destroyed:on_sd
          ~on_extent_created:on_ec ~on_extent_dropped:on_ed);
  Array.iter (fun a -> Arena.set_peers a t.arenas) t.arenas;
  (* 3. Regions. *)
  let regions = Heap.read_regions dev in
  let region_of_addr addr =
    List.find (fun (base, total) -> addr >= base && addr < base + total) regions
  in
  let mapping = if config.Config.bit_stripes <= 1 then Bitmap.Sequential
    else Bitmap.Interleaved config.Config.bit_stripes
  in
  (* Collect activated extents per arena: from the bookkeeping logs, or by
     scanning region headers in in-place mode (round-robin ownership). *)
  let activated : (int * Booklog.scanned) list =
    if config.Config.log_bookkeeping then
      List.concat
        (List.init n_arenas (fun i -> List.map (fun s -> (i, s)) booklog_live.(i)))
    else begin
      let acc = ref [] in
      List.iteri
        (fun ri (base, total) ->
          let arena = ri mod n_arenas in
          charge_lines t clock (Extent.region_bytes / 4096 / 8);
          let off = ref 16384 in
          while !off < total do
            let v = Extent.read_slot dev ~region:base ((!off - 16384) / 4096) in
            if v land (1 lsl 24) <> 0 then begin
              let size = v land 0xFFFFFF * 4096 in
              acc :=
                (arena, { Booklog.ref_ = -1; kind = Booklog.Extent; addr = base + !off; size })
                :: !acc;
              off := !off + size
            end
            else off := !off + 4096
          done)
        regions;
      !acc
    end
  in
  (* Register regions with the arena that owns extents in them; regions
     with no activated extents go to arena 0. *)
  let region_arena = Hashtbl.create 16 in
  List.iter
    (fun (arena, (s : Booklog.scanned)) ->
      let base, _ = region_of_addr s.Booklog.addr in
      if not (Hashtbl.mem region_arena base) then Hashtbl.add region_arena base arena)
    activated;
  List.iter
    (fun (base, total) ->
      let arena = Option.value ~default:0 (Hashtbl.find_opt region_arena base) in
      Extent.restore_region (Arena.large t.arenas.(arena)) ~base ~total)
    regions;
  (* 4. Restore activated extents; rebuild vslabs for slab extents. *)
  let undone_morphs = ref 0 in
  let torn_slabs : (Arena.t * Extent.veh) list ref = ref [] in
  phase "recovery:restore-extents" (fun () ->
  List.iter
    (fun (arena_idx, (s : Booklog.scanned)) ->
      let arena = t.arenas.(arena_idx) in
      let base, _ = region_of_addr s.Booklog.addr in
      let veh =
        Extent.restore_extent (Arena.large arena) ~addr:s.Booklog.addr ~size:s.Booklog.size
          ~kind:s.Booklog.kind ~state:Extent.Activated ~log_ref:s.Booklog.ref_ ~region:base
      in
      match s.Booklog.kind with
      | Booklog.Slab_extent ->
          let header_lost =
            media
            && (match Guard.verify_repair dev clock (Slab.guard_record s.Booklog.addr) with
               | Guard.Lost -> true
               | Guard.Repaired ->
                   incr media_repaired;
                   false
               | Guard.Clean -> false)
          in
          if header_lost then
            (* Unrepairable header (both copies damaged): write the slab
               off. No vslab is built, but the extent stays activated and
               the range is quarantined — the address space is never
               reissued while damaged, owner queries keep answering for
               it, and frees into it are swallowed. Poison persists
               across crashes, so a re-recovery reaches the same verdict
               and recovery stays idempotent. *)
            quarantined := (s.Booklog.addr, s.Booklog.size) :: !quarantined
          else if not (Slab.is_slab_header dev s.Booklog.addr) then
            (* Torn slab creation: the bookkeeping entry persisted but the
               header flush did not. The extent carries no live data (the
               first refill happens only after the header is persistent):
               reclaim it — after the gaps are rebuilt, so the address
               ranges stay disjoint. *)
            torn_slabs := (arena, veh) :: !torn_slabs
          else begin
            Arena.adopt_slab_veh arena veh;
            charge_lines t clock (Slab.slab_bytes / Pmem.Cacheline.size / 8);
            let vslab, undone =
              Slab.recover dev ~addr:s.Booklog.addr ~arena:arena_idx ~mapping
            in
            if undone then begin
              incr undone_morphs;
              Pmem.Device.flush dev clock Pmem.Stats.Meta ~addr:s.Booklog.addr
                ~len:Slab.slab_bytes
            end;
            owner_insert t vslab.Slab.addr (Small_owner vslab);
            Arena.restore_slab arena vslab
          end
      | Booklog.Extent -> ())
    activated);
  t.quarantined_ranges <- !quarantined;
  (* In-place mode marks every activated extent kind Extent; detect slabs
     by their magic. *)
  if not config.Config.log_bookkeeping then
    List.iter
      (fun (arena_idx, (s : Booklog.scanned)) ->
        if s.Booklog.size = Slab.slab_bytes && Slab.is_slab_header dev s.Booklog.addr then begin
          let arena = t.arenas.(arena_idx) in
          (match owner_lookup t clock s.Booklog.addr with
          | Some (Large_owner (veh, _)) ->
              owner_remove t veh.Extent.addr;
              veh.Extent.kind <- Booklog.Slab_extent;
              Arena.adopt_slab_veh arena veh
          | _ -> ());
          charge_lines t clock (Slab.slab_bytes / Pmem.Cacheline.size / 8);
          let vslab, undone = Slab.recover dev ~addr:s.Booklog.addr ~arena:arena_idx ~mapping in
          if undone then incr undone_morphs;
          owner_insert t vslab.Slab.addr (Small_owner vslab);
          Arena.restore_slab arena vslab
        end)
      activated;
  (* 5. Gaps between activated extents become reclaimed free extents. *)
  phase "recovery:gaps" (fun () ->
  let by_region = Hashtbl.create 16 in
  List.iter
    (fun ((_ : int), (s : Booklog.scanned)) ->
      let base, _ = region_of_addr s.Booklog.addr in
      Hashtbl.replace by_region base
        ((s.Booklog.addr, s.Booklog.size)
        :: Option.value ~default:[] (Hashtbl.find_opt by_region base)))
    activated;
  let header_off = if config.Config.log_bookkeeping then 0 else 16384 in
  List.iter
    (fun (base, total) ->
      let arena_idx = Option.value ~default:0 (Hashtbl.find_opt region_arena base) in
      let large = Arena.large t.arenas.(arena_idx) in
      let exts =
        List.sort compare (Option.value ~default:[] (Hashtbl.find_opt by_region base))
      in
      let cursor = ref (base + header_off) in
      let add_gap stop =
        if stop > !cursor then
          ignore
            (Extent.restore_extent large ~addr:!cursor ~size:(stop - !cursor)
               ~kind:Booklog.Extent ~state:Extent.Reclaimed ~log_ref:(-1) ~region:base)
      in
      List.iter
        (fun (a, sz) ->
          add_gap a;
          cursor := a + sz)
        exts;
      add_gap (base + total))
    regions;
  (* Reclaim extents of torn slab creations now that ranges are settled. *)
  List.iter (fun (arena, veh) -> Extent.free (Arena.large arena) clock veh) !torn_slabs);
  (* 6. Sanity pass on unclean shutdown. *)
  let leaked_blocks = ref 0 and leaked_extents = ref (List.length !torn_slabs) in
  let marked = ref 0 and wal_undone = ref 0 in
  let wal_total = Array.fold_left (fun acc l -> acc + List.length l) 0 replays in
  let clear_dest dest addr =
    if dest > 0 && read_ptr t ~dest = addr then publish t clock ~dest ~addr:0
  in
  let release_block arena_idx slab block =
    Arena.recover_return_block t.arenas.(arena_idx) clock slab block;
    incr leaked_blocks
  in
  phase "recovery:sanity" (fun () ->
  if found_state <> Heap.Shutdown then begin
    (match config.Config.consistency with
    | Config.Internal_collection ->
        (* Internal collection (PMDK's model): the persistent bitmap marks
           exactly the user's objects — unpublished in-flight allocations
           are the application's to resolve via [iter_allocated], so the
           allocator itself has no sanity pass to run. *)
        ()
    | Config.Log_based ->
        (* WAL replay: decide the fate of every allocated-marked block from
           its last log entry (protocol in wal.mli). *)
        let last : (int, Wal.replayed) Hashtbl.t = Hashtbl.create 1024 in
        Array.iter (List.iter (fun (e : Wal.replayed) -> Hashtbl.replace last e.addr e)) windows;
        (* Collect first: releases can destroy now-empty slabs, which
           would mutate the iteration set. *)
        let slabs = ref [] in
        iter_slabs t (fun s -> slabs := s :: !slabs);
        List.iter
          (fun s ->
            let pinned b = not (Slab.usable s b) in
            let victims = ref [] in
            Bitmap.iter_set dev s.Slab.bitmap (fun b ->
                if not (pinned b) then begin
                  let addr = Slab.block_addr s b in
                  match Hashtbl.find_opt last addr with
                  | Some { kind = Wal.Refill; _ } -> victims := (b, 0) :: !victims
                  | Some { kind = Wal.Free; dest; _ } ->
                      victims := (b, dest) :: !victims
                  | Some { kind = Wal.Alloc; dest; _ } ->
                      if read_ptr t ~dest <> addr then victims := (b, 0) :: !victims
                  | Some { kind = Wal.Large_alloc | Wal.Large_free; _ } | None -> ()
                end);
            List.iter
              (fun (b, dest) ->
                clear_dest dest (Slab.block_addr s b);
                release_block s.Slab.arena s b;
                incr wal_undone)
              !victims;
            (* Old-class blocks of a morphing slab live in the index
               table, not the bitmap: judge them by the same WAL rules. *)
            match s.Slab.morph with
            | Some m ->
                let dead = ref [] in
                Hashtbl.iter
                  (fun b _ ->
                    let addr = s.Slab.addr + m.Slab.old_data_off + (b * m.Slab.old_block_size) in
                    match Hashtbl.find_opt last addr with
                    | Some { kind = Wal.Refill; _ } -> dead := (b, 0) :: !dead
                    | Some { kind = Wal.Free; dest; _ } -> dead := (b, dest) :: !dead
                    | Some { kind = Wal.Alloc; dest; _ } ->
                        if read_ptr t ~dest <> addr then dead := (b, 0) :: !dead
                    | Some { kind = Wal.Large_alloc | Wal.Large_free; _ } | None -> ())
                  m.Slab.old_live;
                List.iter
                  (fun (b, dest) ->
                    clear_dest dest
                      (s.Slab.addr + m.Slab.old_data_off + (b * m.Slab.old_block_size));
                    Arena.recover_release_old_block t.arenas.(s.Slab.arena) clock s b;
                    incr leaked_blocks;
                    incr wal_undone)
                  !dead
            | None -> ())
          !slabs;
        (* Large objects: a Large_alloc whose destination was never
           published is a leak; a Large_free that never reached the
           bookkeeping log must be completed. *)
        Hashtbl.iter
          (fun addr (e : Wal.replayed) ->
            match e.kind with
            | Wal.Large_alloc | Wal.Large_free -> (
                match owner_lookup t clock addr with
                | Some (Large_owner (veh, aidx)) when veh.Extent.addr = addr ->
                    let leak =
                      match e.kind with
                      | Wal.Large_alloc -> read_ptr t ~dest:e.dest <> addr
                      | _ -> true (* Large_free: the free must be completed *)
                    in
                    if leak then begin
                      clear_dest e.dest addr;
                      Arena.free_large t.arenas.(aidx) clock veh;
                      incr leaked_extents;
                      incr wal_undone
                    end
                | _ -> ())
            | Wal.Alloc | Wal.Free | Wal.Refill -> ())
          last
    | Config.Gc_based ->
        (* Conservative GC from the root table, as in Makalu: mark every
           object reachable from a root, treating any word that decodes to
           an address inside a live object as a reference; then rebuild
           the slab bitmaps from the marks and reclaim unmarked extents. *)
        let heap_lo = Heap.heap_start heap and heap_hi = Pmem.Device.size dev in
        let mark_small : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
        let mark_old : (int, unit) Hashtbl.t = Hashtbl.create 64 in
        let mark_large : (int, unit) Hashtbl.t = Hashtbl.create 64 in
        let queue = Queue.create () in
        let enqueue addr = if addr >= heap_lo && addr < heap_hi then Queue.add addr queue in
        (* Roots. *)
        charge_lines t clock (Heap.root_slots heap / 8);
        for i = 0 to Heap.root_slots heap - 1 do
          let v = Int64.to_int (Pmem.Device.read_int64 dev (Heap.root_addr heap i)) in
          if v > 0 then enqueue v
        done;
        let scan_range addr size =
          charge_lines t clock ((size + Pmem.Cacheline.size - 1) / Pmem.Cacheline.size);
          let words = size / 8 in
          for w = 0 to words - 1 do
            let v = Int64.to_int (Pmem.Device.read_int64 dev (addr + (w * 8))) in
            if v > 0 then enqueue v
          done
        in
        while not (Queue.is_empty queue) do
          let addr = Queue.pop queue in
          match owner_lookup t clock addr with
          | Some (Small_owner s) ->
              let off = addr - s.Slab.addr in
              let old_hit =
                match s.Slab.morph with
                | Some m -> Slab.old_block_index m off
                | None -> None
              in
              (match old_hit with
              | Some _ ->
                  if not (Hashtbl.mem mark_old addr) then begin
                    Hashtbl.add mark_old addr ();
                    incr marked;
                    let m = Option.get s.Slab.morph in
                    scan_range addr m.Slab.old_block_size
                  end
              | None ->
                  let d = off - s.Slab.layout.Slab.data_off in
                  if d >= 0 && d / s.Slab.layout.Slab.block_size < s.Slab.layout.Slab.nblocks
                  then begin
                    let b = d / s.Slab.layout.Slab.block_size in
                    let base = Slab.block_addr s b in
                    if not (Hashtbl.mem mark_small base) then begin
                      Hashtbl.add mark_small base ();
                      incr marked;
                      scan_range base s.Slab.layout.Slab.block_size
                    end
                  end)
          | Some (Large_owner (veh, _)) ->
              if not (Hashtbl.mem mark_large veh.Extent.addr) then begin
                Hashtbl.add mark_large veh.Extent.addr ();
                incr marked;
                scan_range veh.Extent.addr veh.Extent.size
              end
          | None -> ()
        done;
        (* Rebuild slab bitmaps wholesale from the marks: in the GC variant
           the persisted bits are stale in both directions. Collect first:
           rebuilds can destroy empty slabs, mutating the iteration set. *)
        let slabs = ref [] in
        iter_slabs t (fun s -> slabs := s :: !slabs);
        List.iter
          (fun s ->
            (* Old-class blocks whose addresses are unmarked are leaks. *)
            (match s.Slab.morph with
            | Some m ->
                let dead = ref [] in
                Hashtbl.iter
                  (fun b _ ->
                    let addr = s.Slab.addr + m.Slab.old_data_off + (b * m.Slab.old_block_size) in
                    if not (Hashtbl.mem mark_old addr) then dead := b :: !dead)
                  m.Slab.old_live;
                List.iter
                  (fun b ->
                    Arena.recover_release_old_block t.arenas.(s.Slab.arena) clock s b;
                    incr leaked_blocks)
                  !dead
            | None -> ());
            let released =
              Arena.recover_rebuild_slab t.arenas.(s.Slab.arena) clock s ~live:(fun b ->
                  Hashtbl.mem mark_small (Slab.block_addr s b))
            in
            leaked_blocks := !leaked_blocks + released)
          !slabs;
        (* Unmarked large extents are leaks. *)
        let unmarked = ref [] in
        Int_rb.iter
          (fun _ o ->
            match o with
            | Large_owner (veh, aidx) ->
                if not (Hashtbl.mem mark_large veh.Extent.addr) then
                  unmarked := (veh, aidx) :: !unmarked
            | Small_owner _ -> ())
          t.owner_index;
        List.iter
          (fun (veh, aidx) ->
            Arena.free_large t.arenas.(aidx) clock veh;
            incr leaked_extents)
          !unmarked);
    (* [free_from]'s final step — zeroing the destination — can be the only
       store the crash loses, after the free's metadata effect (bitmap bit,
       morph index entry, or bookkeeping-log tombstone) already persisted.
       The sanity passes above only judge objects still marked allocated,
       so a fully-persisted free with a lost destination clear leaves a
       dangling publication nothing else will touch.  The WAL entry still
       names the (addr, dest) pair: if the object is no longer allocated
       but the destination still points at it, complete the clear.  (Both
       the large-extent and morph-old-block cases were found by the
       crash-plan fuzzer.) *)
    let still_allocated addr =
      (* A quarantined range's blocks are conservatively live: their
         bitmap is unreadable, so no publication into it may be
         cleared. *)
      in_quarantine t addr
      ||
      match owner_lookup t clock addr with
      | Some (Small_owner s) -> (
          let off = addr - s.Slab.addr in
          match s.Slab.morph with
          | Some m when Slab.old_block_index m off <> None -> true
          | _ ->
              Slab.contains_new_block s addr
              && Bitmap.get dev s.Slab.bitmap (Slab.block_index s addr))
      | Some (Large_owner (veh, _)) -> veh.Extent.addr = addr
      | None -> false
    in
    (* With group commit, a freed block can be handed out again inside the
       same open group, so the replay window may hold Free (addr, dest)
       followed by Alloc (addr, dest'): after a crash in the group's
       effect phase the block is allocated again (at dest') while [dest]
       still points at it. [still_allocated] alone would keep that stale
       pointer, so an entry is also undone when a {e later} entry for the
       same address supersedes it — unless that later entry is an Alloc
       re-publishing the very same destination, in which case the pointer
       is current. Small-object entries for one address always live in
       that block's home-arena WAL (and large publishes commit inline), so
       comparing sequence numbers per WAL is sound. *)
    Array.iter
      (fun (entries : Wal.replayed list) ->
        let last = Hashtbl.create 64 in
        List.iter
          (fun (e : Wal.replayed) ->
            match Hashtbl.find_opt last e.Wal.addr with
            | Some (l : Wal.replayed) when l.Wal.seq >= e.Wal.seq -> ()
            | _ -> Hashtbl.replace last e.Wal.addr e)
          entries;
        List.iter
          (fun (e : Wal.replayed) ->
            let superseded =
              match Hashtbl.find_opt last e.Wal.addr with
              | Some (l : Wal.replayed) ->
                  l.Wal.seq > e.Wal.seq
                  && not (l.Wal.kind = Wal.Alloc && l.Wal.dest = e.Wal.dest)
              | None -> false
            in
            if
              e.Wal.dest > 0
              && read_ptr t ~dest:e.Wal.dest = e.Wal.addr
              && (superseded || not (still_allocated e.Wal.addr))
            then begin
              clear_dest e.Wal.dest e.Wal.addr;
              incr wal_undone
            end)
          entries)
      windows
  end);
  (* The sanity pass is done: only now invalidate the WAL windows. A
     crash anywhere before this point re-runs the pass from the same
     entries (all its releases are idempotent); a crash after it finds
     the heap already sane, with nothing left to replay. *)
  phase "recovery:seal" (fun () -> Array.iter (fun wal -> Wal.seal wal clock) wals);
  Heap.set_state heap clock Heap.Running;
  (match Pmem.Device.attribution dev with
  | None -> ()
  | Some a -> Telemetry.Attr.leave a ~tid:(Sim.Clock.id clock) ~ts:(Sim.Clock.now clock));
  (match tsink with
  | None -> ()
  | Some s ->
      Telemetry.span_named s ~tid:(Sim.Clock.id clock) ~name:"recovery" ~ts:t_start
        ~dur:(Sim.Clock.now clock -. t_start));
  ( t,
    {
      found_state;
      wal_entries_replayed = (if found_state <> Heap.Shutdown then wal_total else 0);
      torn_wal_skipped = !torn_wal;
      wal_entries_undone = !wal_undone;
      torn_slab_creations = List.length !torn_slabs;
      leaked_blocks_reclaimed = !leaked_blocks;
      leaked_extents_reclaimed = !leaked_extents;
      gc_blocks_marked = !marked;
      booklog_entries = Array.fold_left (fun acc l -> acc + List.length l) 0 booklog_live;
      media_repairs = !media_repaired;
      quarantined_slabs = List.length !quarantined;
      quarantined_bytes = List.fold_left (fun acc (_, len) -> acc + len) 0 !quarantined;
    } )
