(** Self-healing metadata records: content checksum on the record's own
    cache line (refreshed for free inside existing commits) plus a
    mirrored replica on a distinct line, with a primary-wins repair
    protocol. See the implementation header for the crash-interaction
    argument. *)

type record = {
  primary : int;  (** first guarded byte *)
  len : int;  (** guarded length, checksum excluded *)
  p_ck : int;  (** address of the primary's u16 checksum *)
  replica : int;  (** replica copy of the [len] guarded bytes *)
  r_ck : int;  (** replica's u16 checksum (may be shared with [p_ck]) *)
  cat : Pmem.Stats.category;
}

type status =
  | Clean  (** both copies valid and in sync *)
  | Repaired  (** one copy was rewritten from the other *)
  | Lost  (** both copies damaged — quarantine or fail *)

val refresh : Pmem.Device.t -> record -> unit
(** Recompute and store the primary checksum (volatile write only — the
    caller's commit of the primary line persists it). *)

val primary_ok : Pmem.Device.t -> record -> bool
(** No poison on the guarded bytes or checksum, and the checksum
    matches. *)

val replica_ok : Pmem.Device.t -> record -> bool

val write_replica : Pmem.Device.t -> Sim.Clock.t -> record -> unit
(** Copy the primary (checksum included) over the replica and persist it
    (deferred under batching). Call after each primary commit when
    replication is on. *)

val verify_repair : Pmem.Device.t -> Sim.Clock.t -> record -> status
(** Verify both copies and heal whatever is damaged (clearing poison on
    lines it rewrites). Counts a media repair on the device when it had
    to heal. *)

val bless : Pmem.Device.t -> Sim.Clock.t -> record -> unit
(** The seeded [--broken-scrub] bug: accept the primary's (possibly
    rotten) content as truth — recompute its checksum, clear poison
    without restoring bytes, and propagate into the replica. *)
