type t = {
  heap : Heap.t;
  dev : Pmem.Device.t;
  config : Config.t;
  idx : int;
  lock : Sim.Lock.t;
  large : Extent.t;
  wal : Wal.t;
  freelists : Slab.t Support.Dlist.t array;
  lru : Slab.t Support.Dlist.t;
  slab_vehs : (int, Extent.veh) Hashtbl.t; (* slab base -> its extent *)
  all_slabs : (int, Slab.t) Hashtbl.t; (* slab base -> vslab *)
  mutable thread_tcaches : Tcache.t array list;
  (* All arenas of the owning heap (self included), indexed by arena
     index. Tcache entries can hold foreign-arena blocks (a cross-arena
     free pushes into the freeing thread's tcache), and a drain must
     return each block through the slab's owning arena — its freelists,
     LRU and extent allocator — not the draining one. *)
  mutable peers : t array;
  mutable dropped_frees : int;
      (* frees into quarantined slabs, swallowed (graceful degradation) *)
  layouts : Slab.layout array; (* per class, under this config's mapping *)
  mapping : Bitmap.mapping;
  on_slab_created : Slab.t -> unit;
  on_slab_destroyed : Slab.t -> unit;
  (* Telemetry emission state, pre-interned at attach; None (the default)
     costs one compare per instrumented operation. Emission never charges
     clocks. *)
  mutable telem : atelem option;
}

and atelem = {
  tsink : Telemetry.t;
  tn_refill : int;
  tn_morph : int;
  tn_checkpoint : int;
  tn_wal_append : int;
  ta_class : int;
  ta_old_class : int;
  ta_live : int;
  th_refill : Telemetry.Histogram.t;
  th_morph : Telemetry.Histogram.t;
  th_checkpoint : Telemetry.Histogram.t;
  th_wal_append : Telemetry.Histogram.t;
}

let mapping_of_config (cfg : Config.t) =
  if cfg.Config.bit_stripes <= 1 then Bitmap.Sequential
  else Bitmap.Interleaved cfg.Config.bit_stripes

let build heap ~index ~region_lock ~booklog ~wal ~on_slab_created ~on_slab_destroyed
    ~on_extent_created ~on_extent_dropped =
  let config = Heap.config heap in
  let mapping = mapping_of_config config in
  let mode =
    match booklog with Some log -> Extent.Logged log | None -> Extent.In_place
  in
  let large =
    Extent.create heap ~mode ~region_lock
      ~on_new_extent:(fun v -> on_extent_created v index)
      ~on_drop_extent:on_extent_dropped
  in
  {
    heap;
    dev = Heap.device heap;
    config;
    idx = index;
    lock = Sim.Lock.create ();
    large;
    wal;
    freelists = Array.init Size_class.count (fun _ -> Support.Dlist.create ());
    lru = Support.Dlist.create ();
    slab_vehs = Hashtbl.create 64;
    all_slabs = Hashtbl.create 64;
    thread_tcaches = [];
    peers = [||];
    dropped_frees = 0;
    layouts = Array.init Size_class.count (fun c -> Slab.layout_of_class ~class_idx:c ~mapping);
    mapping;
    on_slab_created;
    on_slab_destroyed;
    telem = None;
  }

let set_telemetry t sink =
  match sink with
  | None ->
      t.telem <- None;
      Sim.Lock.set_wait_hook t.lock None
  | Some s ->
      t.telem <-
        Some
          {
            tsink = s;
            tn_refill = Telemetry.intern s "refill";
            tn_morph = Telemetry.intern s "morph";
            tn_checkpoint = Telemetry.intern s "wal:checkpoint";
            tn_wal_append = Telemetry.intern s "wal:append";
            ta_class = Telemetry.intern s "class";
            ta_old_class = Telemetry.intern s "old_class";
            ta_live = Telemetry.intern s "live";
            th_refill = Telemetry.histogram s "refill";
            th_morph = Telemetry.histogram s "morph";
            th_checkpoint = Telemetry.histogram s "wal:checkpoint";
            th_wal_append = Telemetry.histogram s "wal:append";
          };
      (* Latency attribution: contended acquires of the arena lock charge
         a [lock_wait] leaf into the waiting thread's open frame. The hook
         observes the stall without touching clocks. *)
      let lock_wait = Telemetry.intern s "lock_wait" in
      Sim.Lock.set_wait_hook t.lock
        (Some
           (fun clock ns ->
             match Telemetry.attribution s with
             | None -> ()
             | Some a ->
                 Telemetry.Attr.charge a ~tid:(Sim.Clock.id clock) ~name:lock_wait ~ns))

(* Open/close an interior blame frame on the calling thread's stack when
   the attached sink has attribution enabled; no-ops otherwise. [pick]
   selects the pre-interned frame name (constant closures, no per-call
   allocation). Never touches simulated clocks. *)
let aframe_enter t clock pick =
  match t.telem with
  | None -> ()
  | Some e -> (
      match Telemetry.attribution e.tsink with
      | None -> ()
      | Some a ->
          Telemetry.Attr.enter a ~tid:(Sim.Clock.id clock) ~name:(pick e)
            ~ts:(Sim.Clock.now clock))

let aframe_leave t clock =
  match t.telem with
  | None -> ()
  | Some e -> (
      match Telemetry.attribution e.tsink with
      | None -> ()
      | Some a -> Telemetry.Attr.leave a ~tid:(Sim.Clock.id clock) ~ts:(Sim.Clock.now clock))

let create heap ~index ~region_lock ~on_slab_created ~on_slab_destroyed ~on_extent_created
    ~on_extent_dropped =
  let config = Heap.config heap in
  let booklog =
    if config.Config.log_bookkeeping then
      Some
        (Booklog.create (Heap.device heap)
           ~replicate:config.Config.media_replication
           ~base:(Heap.booklog_base heap ~arena:index)
           ~chunks:config.Config.booklog_chunks ~interleave:config.Config.interleave_log)
    else None
  in
  let wal =
    (* Only the log-based variant groups small-op appends; GC/IC write so
       few WAL entries (Large_* only) that grouping would just delay
       extent commits for nothing. *)
    let group =
      if config.Config.consistency = Config.Log_based then config.Config.wal_group_commit
      else 0
    in
    Wal.create (Heap.device heap) ~group ~replicate:config.Config.media_replication
      ~base:(Heap.wal_base heap ~arena:index)
      ~entries:config.Config.wal_entries ~interleave:config.Config.interleave_wal
  in
  build heap ~index ~region_lock ~booklog ~wal ~on_slab_created ~on_slab_destroyed
    ~on_extent_created ~on_extent_dropped

let of_recovered heap ~index ~region_lock ~booklog ~wal ~on_slab_created ~on_slab_destroyed
    ~on_extent_created ~on_extent_dropped =
  build heap ~index ~region_lock ~booklog ~wal ~on_slab_created ~on_slab_destroyed
    ~on_extent_created ~on_extent_dropped

let index t = t.idx
let lock t = t.lock
let wal t = t.wal
let large t = t.large
let heap t = t.heap
let is_log t = t.config.Config.consistency = Config.Log_based
let is_ic t = t.config.Config.consistency = Config.Internal_collection
let is_gc t = t.config.Config.consistency = Config.Gc_based

(* Whether small-allocator metadata (bits, index entries) is flushed:
   LOG and IC persist it eagerly; GC rebuilds it post-crash. *)
let flushes_small_meta t = t.config.Config.consistency <> Config.Gc_based
let register_tcaches t tcaches = t.thread_tcaches <- tcaches :: t.thread_tcaches

(* --- slab plumbing ------------------------------------------------------- *)

(* Freelist membership is tracked by node presence, not inferred from the
   free count: a WAL checkpoint can fire from inside [refill_tcache] (the
   Refill append hits the high-water mark) and drain a tcache block back
   into the very slab being refilled, while that slab sits at
   [free_count = 0] but is still linked — the refill loop unlinks it only
   after its inner loop ends. *)
let freelist_add t s =
  if s.Slab.freelist_node = None then
    s.Slab.freelist_node <-
      Some (Support.Dlist.push_back t.freelists.(s.Slab.layout.Slab.class_idx) s)

let freelist_remove t s =
  match s.Slab.freelist_node with
  | Some node ->
      Support.Dlist.remove t.freelists.(s.Slab.layout.Slab.class_idx) node;
      s.Slab.freelist_node <- None
  | None -> ()

let lru_touch t s =
  (match s.Slab.lru_node with
  | Some node -> Support.Dlist.remove t.lru node
  | None -> ());
  s.Slab.lru_node <- Some (Support.Dlist.push_back t.lru s)

let lru_remove t s =
  match s.Slab.lru_node with
  | Some node ->
      Support.Dlist.remove t.lru node;
      s.Slab.lru_node <- None
  | None -> ()

let flush_meta t clock ~addr ~len =
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr ~len

let replicate_meta t = t.config.Config.media_replication

(* Commit a slab's fixed header fields: refresh the guard checksum (same
   line — free), commit, then mirror into the slab's guard-replica line
   when replication is on. Every header-mutating protocol step funnels
   through here so a poisoned or rotten header line stays repairable. *)
let commit_slab_header ?deps t clock addr =
  (* Refresh the advisory free hint here — and only here — so the header
     line is dirtied once per protocol step, never per alloc/free. *)
  (match Hashtbl.find_opt t.all_slabs addr with
  | Some s -> Slab.Header.write_free_hint t.dev addr s.Slab.free_count
  | None -> ());
  let r = Slab.guard_record addr in
  Guard.refresh t.dev r;
  (* The packed-word payoff, asserted: the commit unit (word + checksum)
     sits in a single cache line at the line-aligned slab base. *)
  assert (addr land (Pmem.Cacheline.size - 1) = 0);
  Pmem.Device.note_header_flush_line t.dev;
  Pstruct.commit t.dev clock Pmem.Stats.Meta ?deps (Slab.header_commit_span addr);
  if replicate_meta t then Guard.write_replica t.dev clock r

let new_slab t clock class_idx =
  let veh = Extent.malloc t.large clock ~size:Slab.slab_bytes ~kind:Booklog.Slab_extent in
  let layout = t.layouts.(class_idx) in
  let s = Slab.format t.dev ~addr:veh.Extent.addr ~arena:t.idx ~mapping:t.mapping layout in
  if replicate_meta t then begin
    (* Birth the replica valid; its dirty line persists with the header
       flush below. *)
    let r = Slab.guard_record s.Slab.addr in
    Pmem.Device.blit t.dev ~src:r.Guard.primary ~dst:r.Guard.replica ~len:(r.Guard.len + 2)
  end;
  (* Persist the fresh header and (zeroed) bitmap in both variants:
     recovery derives block sizes from slab headers. *)
  flush_meta t clock ~addr:(Slab.header_addr s) ~len:Slab.slab_bytes
    (* only dirty lines (header + bitmap) actually flush *);
  Hashtbl.replace t.slab_vehs s.Slab.addr veh;
  Hashtbl.replace t.all_slabs s.Slab.addr s;
  freelist_add t s;
  lru_touch t s;
  t.on_slab_created s;
  s

let destroy_slab t clock s =
  assert (s.Slab.free_count = s.Slab.layout.Slab.nblocks && s.Slab.morph = None);
  (* The frees that emptied this slab may still be provisional (open WAL
     group). The extent-free tombstone below commits synchronously, so
     close the group first: a crash must never roll back those frees —
     leaving their blocks user-live — after the backing extent is gone. *)
  Wal.flush_group t.wal clock;
  s.Slab.dying <- true;
  freelist_remove t s;
  lru_remove t s;
  t.on_slab_destroyed s;
  let veh = Hashtbl.find t.slab_vehs s.Slab.addr in
  Hashtbl.remove t.slab_vehs s.Slab.addr;
  Hashtbl.remove t.all_slabs s.Slab.addr;
  Extent.free t.large clock veh

(* Destroy an empty slab unless it is the last one cached for its class. *)
let maybe_destroy_empty t clock s =
  if
    (not s.Slab.dying)
    && s.Slab.morph = None
    && s.Slab.free_count = s.Slab.layout.Slab.nblocks
    && Support.Dlist.length t.freelists.(s.Slab.layout.Slab.class_idx) > 1
  then destroy_slab t clock s

(* --- slab morphing (section 5.2) ----------------------------------------- *)

let live_old_blocks t s =
  let acc = ref [] in
  Bitmap.iter_set t.dev s.Slab.bitmap (fun b -> acc := b :: !acc);
  List.rev !acc

let morph_candidate_ok t s ~target_layout =
  let open Slab in
  s.morph = None && (not s.dying)
  && s.tcached = 0
  && s.layout.class_idx <> target_layout.class_idx
  && occupancy_ratio s < t.config.Config.morph_su_threshold
  && s.layout.nblocks - s.free_count <= index_capacity
  &&
  (* No live old block may overlap the new header area, and every live
     old block index must fit the 12-bit index-entry encoding. *)
  List.for_all
    (fun b ->
      s.layout.data_off + (b * s.layout.block_size) >= target_layout.data_off && b < 4096)
    (live_old_blocks t s)

(* Three-step flag-guarded metadata transformation. Header flushes hit the
   same line repeatedly: this is the morphing cost the paper quantifies at
   ~4.5%. *)
let transform_slab t clock s target_class =
  (* The survivor snapshot below reads the volatile bitmap, which may
     reflect frees whose WAL entries still sit in the open group. The
     morph record commits synchronously; close the group first so a crash
     cannot roll those frees back after a record that presumed them. *)
  Wal.flush_group t.wal clock;
  let t0 = Sim.Clock.now clock in
  aframe_enter t clock (fun e -> e.tn_morph);
  let open Slab in
  let dev = t.dev in
  let addr = s.addr in
  let old_layout = s.layout in
  let new_layout = t.layouts.(target_class) in
  let live = live_old_blocks t s in
  let nlive = List.length live in
  (* Step 1: preserve the old class identity (the old data offset is
     derived from the class at recovery, not stored). *)
  Header.write_old_class dev addr old_layout.class_idx;
  Header.write_flag dev addr 1;
  commit_slab_header t clock addr;
  (* Step 2: record the live old blocks in the index table. *)
  List.iteri
    (fun slot b -> write_index_entry dev addr slot (pack_index_entry ~block:b ~allocated:true))
    live;
  let index_span =
    Pstruct.span_of ~addr:(index_entry_addr s 0) ~len:(2 * max 1 nlive)
  in
  if nlive > 0 then Pstruct.flush_span dev clock Pmem.Stats.Meta index_span;
  Header.write_index_count dev addr nlive;
  Header.write_flag dev addr 2;
  (* Flag 2 asserts the index table is complete: that is an ordering
     dependency. *)
  commit_slab_header t clock addr
    ~deps:(if nlive > 0 then [ ("index:record", index_span) ] else []);
  (* Step 3: install the new class: header field and rebuilt bitmap. *)
  Header.write_class dev addr target_class;
  (* With no surviving old blocks the morph completes right here, so
     retire the old-class identity the way release_old_block would at
     cnt_slab = 0 (same header commit line; index_count is already 0). *)
  if nlive = 0 then Header.write_old_class dev addr Header.no_class;
  let new_bitmap = Bitmap.make ~base:(bitmap_addr s) ~nbits:new_layout.nblocks ~mapping:t.mapping in
  Pmem.Device.fill dev (bitmap_addr s) (new_layout.bitmap_lines * Pmem.Cacheline.size) '\000';
  let cnt_block = Array.make new_layout.nblocks 0 in
  let old_live = Hashtbl.create 16 in
  s.layout <- new_layout;
  s.bitmap <- new_bitmap;
  List.iteri
    (fun slot b ->
      Hashtbl.replace old_live b slot;
      let m_stub =
        { old_class = old_layout.class_idx; old_block_size = old_layout.block_size;
          old_data_off = old_layout.data_off; cnt_slab = 0; cnt_block; old_live }
      in
      let lo, hi = overlapping_new_blocks s m_stub b in
      for j = lo to hi do
        if cnt_block.(j) = 0 then Bitmap.set dev new_bitmap j;
        cnt_block.(j) <- cnt_block.(j) + 1
      done)
    live;
  let bitmap_span =
    Pstruct.span_of ~addr:(bitmap_addr s)
      ~len:(new_layout.bitmap_lines * Pmem.Cacheline.size)
  in
  Pstruct.flush_span dev clock Pmem.Stats.Meta bitmap_span;
  (* Volatile state first, so the flag-0 commit records an in-range free
     hint for the new layout. *)
  let morph =
    {
      old_class = old_layout.class_idx;
      old_block_size = old_layout.block_size;
      old_data_off = old_layout.data_off;
      cnt_slab = nlive;
      cnt_block;
      old_live;
    }
  in
  s.morph <- (if nlive > 0 then Some morph else None);
  Slab.recompute_free dev s;
  Header.write_flag dev addr 0;
  (* Flag 0 asserts the new class's bitmap is in place. *)
  commit_slab_header t clock addr ~deps:[ ("bitmap:rebuilt", bitmap_span) ];
  aframe_leave t clock;
  match t.telem with
  | None -> ()
  | Some e ->
      let now = Sim.Clock.now clock in
      Telemetry.span2 e.tsink ~tid:(Sim.Clock.id clock) ~name:e.tn_morph ~ts:t0
        ~dur:(now -. t0) ~k1:e.ta_old_class
        ~v1:(float_of_int old_layout.class_idx)
        ~k2:e.ta_live ~v2:(float_of_int nlive);
      Telemetry.Histogram.observe e.th_morph (now -. t0)

let try_morph t clock target_class =
  if not t.config.Config.slab_morphing then None
  else begin
    let target_layout = t.layouts.(target_class) in
    (* LRU scan, head (coldest) first. *)
    let found = ref None in
    let scanned = ref 0 in
    Support.Dlist.iter
      (fun s ->
        incr scanned;
        if !found = None && morph_candidate_ok t s ~target_layout then found := Some s)
      t.lru;
    Pmem.Device.charge_work t.dev clock Pmem.Stats.Search
      ~ns:(float_of_int (max 1 !scanned) *. 25.0);
    match !found with
    | None -> None
    | Some s ->
        freelist_remove t s;
        lru_remove t s;
        transform_slab t clock s target_class;
        freelist_add t s;
        (* A slab that finished morphing with no surviving old blocks is a
           regular slab again and may morph later. *)
        if s.Slab.morph = None then lru_touch t s;
        Some s
  end

(* Return one block straight to its slab (tcache overflow, drains). In the
   internal-collection variant tcache-resident blocks were never marked, so
   there is no bit to clear. *)
let return_block t clock s b =
  if is_gc t && Slab.free_mem s b then
    (* GC resurrection aliasing: a pre-crash free whose root-clear never
       persisted is revived by the conservative mark even though its space
       was already reused and republished — the post-crash caller then
       frees the same slot through both publications. Makalu's free is a
       mark and inherently idempotent, so absorb the duplicate. The other
       variants keep the hard double-free assert: their frees are logged
       (LOG) or eagerly unmarked (IC), so a duplicate there is a bug. *)
    Pmem.Device.dram_op t.dev clock
  else begin
  if not (is_ic t) then begin
    Bitmap.clear t.dev s.Slab.bitmap b;
    if is_log t then begin
      (* The bit-clear must not persist before the Free/Refill entry that
         moved this block into the tcache — under group commit that entry
         may still sit in the open group, and any commit point would drain
         a plain (pending) flush past it. Ride the group's close instead;
         a crash then rolls back entry and bit-clear together. *)
      let addr = Bitmap.line_addr s.Slab.bitmap b in
      if Wal.group_commit t.wal > 0 && Wal.is_ready t.wal then
        Wal.defer_commit t.wal clock Pmem.Stats.Meta (Pstruct.span_of ~addr ~len:1)
      else flush_meta t clock ~addr ~len:1
    end
  end;
  if s.Slab.free_count = 0 then freelist_add t s;
  Slab.free_put s b;
  maybe_destroy_empty t clock s
  end

(* Release of a block_before: resolved against the index table, bypassing
   the tcache (section 5.2, "Block release"). *)
let release_old_block t clock s (m : Slab.morph) old_b =
  let slot = Hashtbl.find m.Slab.old_live old_b in
  (* Derived state first, commit last: the overlap bits exist only to pin
     new-grid blocks while this old block lives, and recovery rebuilds the
     pins from the index table. Clearing the index entry first would let a
     crash strand set bits that the rebuilt morph no longer pins — misread
     by WAL replay as user-live new-class blocks (found by the crash-plan
     fuzzer, crash-during-recovery case). *)
  let lo, hi = Slab.overlapping_new_blocks s m old_b in
  let cleared = ref [] in
  for j = lo to hi do
    m.Slab.cnt_block.(j) <- m.Slab.cnt_block.(j) - 1;
    if m.Slab.cnt_block.(j) = 0 then begin
      Bitmap.clear t.dev s.Slab.bitmap j;
      if flushes_small_meta t then begin
        let sp = Bitmap.bit_span s.Slab.bitmap j in
        Pstruct.flush_span t.dev clock Pmem.Stats.Meta sp;
        cleared := ("bitmap:unpin", sp) :: !cleared
      end;
      (* The pinned slot may already sit in the free set after a crash in
         the GC variant: resurrection aliasing (see return_block) can mark
         both an old block and the new-grid block it pins, and the new
         block's free lands first. *)
      if not (is_gc t && Slab.free_mem s j) then begin
        if s.Slab.free_count = 0 then freelist_add t s;
        Slab.free_put s j
      end
    end
  done;
  Slab.write_index_entry t.dev s.Slab.addr slot
    (Slab.pack_index_entry ~block:old_b ~allocated:false);
  if flushes_small_meta t then
    Pstruct.commit t.dev clock Pmem.Stats.Meta ~deps:!cleared
      (Slab.index_entry_span s.Slab.addr slot);
  Hashtbl.remove m.Slab.old_live old_b;
  m.Slab.cnt_slab <- m.Slab.cnt_slab - 1;
  if m.Slab.cnt_slab = 0 then begin
    (* slab_in becomes a regular slab_after and rejoins the LRU. *)
    Slab.Header.write_old_class t.dev s.Slab.addr Slab.Header.no_class;
    Slab.Header.write_index_count t.dev s.Slab.addr 0;
    let deps =
      if flushes_small_meta t then
        [ ("index:release", Slab.index_entry_span s.Slab.addr slot) ]
      else []
    in
    commit_slab_header t clock s.Slab.addr ~deps;
    s.Slab.morph <- None;
    lru_touch t s;
    maybe_destroy_empty t clock s
  end

(* Return a tcache entry to its slab, resolving whether the address is an
   old-class block of a morphing slab or a current-class block. *)
let return_entry t clock s addr =
  if s.Slab.quarantined then begin
    (* Graceful degradation: the slab's header is unrepairable and its
       capacity written off — swallow the free (the block's line may be
       damaged too) and count it. *)
    t.dropped_frees <- t.dropped_frees + 1;
    Pmem.Device.dram_op t.dev clock
  end
  else begin
  let off = addr - s.Slab.addr in
  if is_ic t then s.Slab.tcached <- s.Slab.tcached - 1;
  match s.Slab.morph with
  | Some m -> (
      match Slab.old_block_index m off with
      | Some b -> release_old_block t clock s m b
      | None -> return_block t clock s (Slab.block_index s addr))
  | None -> return_block t clock s (Slab.block_index s addr)
  end

(* --- WAL ------------------------------------------------------------------ *)

let set_peers t arenas = t.peers <- arenas

let drain_tcache t clock tc =
  List.iter
    (fun e ->
      let s = e.Tcache.slab in
      if s.Slab.arena = t.idx || Array.length t.peers = 0 then
        return_entry t clock s e.Tcache.addr
      else
        (* Foreign-arena block: return it under its home arena's lock so
           freelist membership and empty-slab destruction act on the arena
           that actually owns the slab's extent. *)
        let home = t.peers.(s.Slab.arena) in
        Sim.Lock.with_lock home.lock clock (fun () -> return_entry home clock s e.Tcache.addr))
    (Tcache.drain tc)

let drain_all_tcaches t clock =
  List.iter (fun tcs -> Array.iter (fun tc -> drain_tcache t clock tc) tcs) t.thread_tcaches

(* Caller holds [t.lock]. *)
let checkpoint_locked t clock =
  let t0 = Sim.Clock.now clock in
  aframe_enter t clock (fun e -> e.tn_checkpoint);
  drain_all_tcaches t clock;
  Wal.checkpoint t.wal clock;
  aframe_leave t clock;
  match t.telem with
  | None -> ()
  | Some e ->
      let now = Sim.Clock.now clock in
      Telemetry.span e.tsink ~tid:(Sim.Clock.id clock) ~name:e.tn_checkpoint ~ts:t0
        ~dur:(now -. t0);
      Telemetry.Histogram.observe e.th_checkpoint (now -. t0);
      (* Checkpoints stall whoever pays for them (an allocating thread
         inline, or the maintenance daemon): annotate the SLO timeline. *)
      (match Telemetry.attribution e.tsink with
      | None -> ()
      | Some a -> Telemetry.Attr.note_event a ~ts:t0 ~name:"wal:checkpoint")

let checkpoint_if_needed t clock =
  if Wal.near_full t.wal then
    Sim.Lock.with_lock t.lock clock (fun () ->
        (* Re-check under the lock; another thread may have checkpointed. *)
        if Wal.near_full t.wal then checkpoint_locked t clock)

(* One background-maintenance poll: checkpoint once the ring passes the
   configured fraction, taking the drain + epoch bump off the allocating
   threads' hot path (the near-full inline checkpoint above remains as the
   hard backstop). Returns whether a checkpoint ran. *)
let async_checkpoint_tick t clock =
  let frac = t.config.Config.async_checkpoint in
  let over () =
    float_of_int (Wal.used t.wal) >= frac *. float_of_int (Wal.entries t.wal)
  in
  if frac > 0.0 && Wal.is_ready t.wal && Wal.used t.wal > 0 && over () then begin
    let ran = ref false in
    Sim.Lock.with_lock t.lock clock (fun () ->
        if over () then begin
          checkpoint_locked t clock;
          ran := true
        end);
    !ran
  end
  else false

(* Append a WAL entry; Large_* entries are logged in both variants
   (Table 2), small-allocation entries only by NVAlloc-LOG. Returns the
   entry's span (when one was appended) so the caller can declare it as a
   dependency of the metadata commit it covers. *)
let log_op t clock kind ~addr ~dest =
  let wanted =
    match kind with
    | Wal.Large_alloc | Wal.Large_free -> true
    | Wal.Alloc | Wal.Free | Wal.Refill -> is_log t
  in
  if wanted then begin
    checkpoint_if_needed t clock;
    let t0 = Sim.Clock.now clock in
    aframe_enter t clock (fun e -> e.tn_wal_append);
    (* Slot reservation is a CAS, not a lock. *)
    Pmem.Device.dram_op t.dev clock;
    let span = Wal.append_span t.wal clock kind ~addr ~dest in
    (* Extent metadata commits follow a Large_* entry synchronously and
       depend on it: close the open group now so the entry (and any small
       ops sharing the group) is durable before they retire. *)
    (match kind with
    | Wal.Large_alloc | Wal.Large_free -> Wal.flush_group t.wal clock
    | Wal.Alloc | Wal.Free | Wal.Refill -> ());
    aframe_leave t clock;
    (match t.telem with
    | None -> ()
    | Some e ->
        let now = Sim.Clock.now clock in
        Telemetry.span e.tsink ~tid:(Sim.Clock.id clock) ~name:e.tn_wal_append ~ts:t0
          ~dur:(now -. t0);
        Telemetry.Histogram.observe e.th_wal_append (now -. t0));
    Some span
  end
  else None

let wal_dep kind = function
  | Some span ->
      let name =
        match kind with
        | Wal.Alloc -> "wal:Alloc"
        | Wal.Free -> "wal:Free"
        | Wal.Refill -> "wal:Refill"
        | Wal.Large_alloc -> "wal:Large_alloc"
        | Wal.Large_free -> "wal:Large_free"
      in
      [ (name, span) ]
  | None -> []

(* --- small allocation ------------------------------------------------------ *)

let take_slab_with_space t clock class_idx =
  match Support.Dlist.peek_front t.freelists.(class_idx) with
  | Some s -> s
  | None -> (
      match try_morph t clock class_idx with
      | Some s -> s
      | None -> new_slab t clock class_idx)

let refill_tcache t clock tc class_idx =
  let t0 = Sim.Clock.now clock in
  aframe_enter t clock (fun e -> e.tn_refill);
  (while not (Tcache.is_full tc) do
    let s = take_slab_with_space t clock class_idx in
    lru_touch t s;
    let continue_slab = ref true in
    while (not (Tcache.is_full tc)) && !continue_slab do
      (* Slot selection. On the dominant path — no morph in progress,
         bits marked at refill — the persistent bitmap itself is scanned
         with the word-level {!Bitmap.find_first_zero} (section 5.1): a
         clear bit is exactly an available block, so the volatile free
         set is only a cross-checked mirror. Morphing slabs (clear but
         pinned bits) and the internal-collection variant (clear bits for
         tcache residents) allocate from the volatile set instead. *)
      let b_opt =
        if (not (is_ic t)) && s.Slab.morph = None then (
          match Bitmap.find_first_zero t.dev s.Slab.bitmap with
          | Some b ->
              Slab.free_claim s b;
              Some b
          | None ->
              assert (s.Slab.free_count = 0);
              None)
        else Slab.free_take_first s
      in
      match b_opt with
      | None ->
          freelist_remove t s;
          continue_slab := false
      | Some b ->
          if is_ic t then
            (* Internal collection: the bit is set only when the block is
               handed to the user, so the bitmap enumerates exactly the
               user's objects. *)
            s.Slab.tcached <- s.Slab.tcached + 1
          else begin
            (* WAL before effect: the Refill entry must be persistent
               before the bit is. A crash in between leaves a valid entry
               for a clear bit, which replay ignores; the reverse order
               would leave a set bit with no entry — read as user-live by
               recovery — leaking the block (found by the crash-plan
               fuzzer). The bit flush is the commit point and declares the
               entry as its dependency. *)
            let wal_span =
              if is_log t then log_op t clock Wal.Refill ~addr:(Slab.block_addr s b) ~dest:0
              else None
            in
            Bitmap.set t.dev s.Slab.bitmap b;
            if is_log t then
              (* With group commit the bit's persist rides the group's
                 phase C — after the Refill entry and its commit record —
                 instead of paying its own fence here. *)
              Wal.defer_commit t.wal clock Pmem.Stats.Meta
                ~deps:(wal_dep Wal.Refill wal_span)
                (Bitmap.bit_span s.Slab.bitmap b)
          end;
          let pushed = Tcache.push tc { Tcache.slab = s; addr = Slab.block_addr s b } in
          assert pushed
    done;
    if s.Slab.free_count = 0 then freelist_remove t s
  done);
  aframe_leave t clock;
  match t.telem with
  | None -> ()
  | Some e ->
      let now = Sim.Clock.now clock in
      Telemetry.span2 e.tsink ~tid:(Sim.Clock.id clock) ~name:e.tn_refill ~ts:t0
        ~dur:(now -. t0) ~k1:e.ta_class ~v1:(float_of_int class_idx) ~k2:(-1) ~v2:0.0;
      Telemetry.Histogram.observe e.th_refill (now -. t0)

let ic_mark t clock (e : Tcache.entry) =
  let s = e.Tcache.slab in
  s.Slab.tcached <- s.Slab.tcached - 1;
  let b = Slab.block_index s e.Tcache.addr in
  Bitmap.set t.dev s.Slab.bitmap b;
  flush_meta t clock ~addr:(Bitmap.line_addr s.Slab.bitmap b) ~len:1

let alloc_small t clock ~tcaches ~class_idx =
  let tc = tcaches.(class_idx) in
  let e =
    match Tcache.pop tc with
    | Some e ->
        Pmem.Device.dram_op t.dev clock;
        e
    | None ->
        Sim.Lock.with_lock t.lock clock (fun () -> refill_tcache t clock tc class_idx);
        Option.get (Tcache.pop tc)
  in
  if is_ic t then ic_mark t clock e;
  (e.Tcache.slab, e.Tcache.addr)

let free_small t clock ~tcaches s ~addr ~dest =
  let off = addr - s.Slab.addr in
  let old_block =
    match s.Slab.morph with
    | Some m -> Option.map (fun b -> (m, b)) (Slab.old_block_index m off)
    | None -> None
  in
  match old_block with
  | Some (m, b) ->
      Sim.Lock.with_lock t.lock clock (fun () -> release_old_block t clock s m b);
      None
  | None ->
      let b = Slab.block_index s addr (* validates the grid *) in
      let wal_span = log_op t clock Wal.Free ~addr ~dest in
      if is_ic t then begin
        (* Internal collection: unmark eagerly so the persistent bitmap
           never claims a freed object. *)
        Bitmap.clear t.dev s.Slab.bitmap b;
        flush_meta t clock ~addr:(Bitmap.line_addr s.Slab.bitmap b) ~len:1
      end;
      let tc = tcaches.(s.Slab.layout.Slab.class_idx) in
      Pmem.Device.dram_op t.dev clock;
      (if Tcache.push tc { Tcache.slab = s; addr } then begin
         if is_ic t then s.Slab.tcached <- s.Slab.tcached + 1
       end
       else
         (* Full tcache: bypass it and return the block to its slab. *)
         Sim.Lock.with_lock t.lock clock (fun () -> return_block t clock s b));
      wal_span

(* --- large allocation ------------------------------------------------------ *)

let malloc_large t clock ~size =
  Sim.Lock.with_lock t.lock clock (fun () ->
      Extent.malloc t.large clock ~size ~kind:Booklog.Extent)

let free_large t clock veh =
  Sim.Lock.with_lock t.lock clock (fun () -> Extent.free t.large clock veh)

(* --- recovery / observability ----------------------------------------------- *)

let adopt_slab_veh t veh = Hashtbl.replace t.slab_vehs veh.Extent.addr veh

let restore_slab t s =
  if not (Hashtbl.mem t.slab_vehs s.Slab.addr) then
    invalid_arg "Arena.restore_slab: extent not restored first";
  Hashtbl.replace t.all_slabs s.Slab.addr s;
  if s.Slab.free_count > 0 then freelist_add t s;
  if s.Slab.morph = None then lru_touch t s

let iter_slabs t f = Hashtbl.iter (fun _ s -> f s) t.all_slabs

let recover_return_block t clock s b = return_block t clock s b

(* GC-variant recovery: the persisted bitmap is stale in both directions
   (bits are never flushed at runtime), so rebuild it wholesale from the
   conservative-GC mark set. Returns the number of stale-allocated blocks
   released. *)
let recover_rebuild_slab t clock s ~live =
  let open Slab in
  let layout = s.layout in
  let released = ref 0 in
  for b = layout.nblocks - 1 downto 0 do
    let pinned = not (usable s b) in
    let want = pinned || live b in
    let had = Bitmap.get t.dev s.bitmap b in
    if had && (not want) then incr released;
    if had <> want then
      if want then Bitmap.set t.dev s.bitmap b else Bitmap.clear t.dev s.bitmap b
  done;
  Slab.recompute_free t.dev s;
  flush_meta t clock ~addr:(bitmap_addr s)
    ~len:(layout.bitmap_lines * Pmem.Cacheline.size);
  (match s.freelist_node with
  | Some _ when s.free_count = 0 -> freelist_remove t s
  | None when s.free_count > 0 && not s.dying -> freelist_add t s
  | Some _ | None -> ());
  maybe_destroy_empty t clock s;
  !released

let recover_release_old_block t clock s b =
  match s.Slab.morph with
  | Some m -> release_old_block t clock s m b
  | None -> invalid_arg "Arena.recover_release_old_block: slab not morphing"

let live_small_blocks t =
  Hashtbl.fold
    (fun _ s acc -> acc + (s.Slab.layout.Slab.nblocks - s.Slab.free_count))
    t.all_slabs 0

(* --- media quarantine ------------------------------------------------------ *)

(* Withdraw a slab whose header is unrepairable: capacity leaves the
   freelists and the LRU (no future allocations or morphs), the vslab
   leaves [all_slabs] (walks and recovery sweeps skip it), but the
   backing extent stays activated so the address range is never reissued
   while damaged. Frees targeting it are swallowed in [return_entry]. *)
let quarantine_slab t s =
  assert (not s.Slab.dying);
  s.Slab.quarantined <- true;
  freelist_remove t s;
  lru_remove t s;
  Hashtbl.remove t.all_slabs s.Slab.addr;
  Pmem.Device.note_quarantine t.dev

let dropped_frees t = t.dropped_frees
let find_slab t addr = Hashtbl.find_opt t.all_slabs addr
