(* Self-healing metadata records.

   Each critical persistent record — a slab header, a region-table line,
   a WAL or bookkeeping-log header, the superblock — carries a 16-bit
   content checksum in spare bytes of the SAME cache line, so refreshing
   it rides the record's existing commit for free, plus (when
   [Config.media_replication] is on) a mirrored replica on a distinct
   cache line written right after each commit.

   Repair protocol: the primary copy wins whenever its checksum is valid
   — the replica is only consulted when the primary is poisoned or fails
   its checksum. The replica trails the primary by at most one un-fenced
   window (its flush is deferred into the same pending set, and every
   later ordering point drains it first), so falling back to the replica
   restores a state the crash model already allows: as-if the damaged
   commit never retired, or — when the replica was persisted ahead of a
   region-table slot — as-if it retired atomically. *)

type record = {
  primary : int;  (* first guarded byte *)
  len : int;  (* guarded length, checksum excluded *)
  p_ck : int;  (* address of the primary's u16 checksum *)
  replica : int;  (* replica copy of the [len] guarded bytes *)
  r_ck : int;  (* replica's u16 checksum (may be shared with [p_ck]) *)
  cat : Pmem.Stats.category;
}

type status = Clean | Repaired | Lost

let sum dev r addr = Pmem.Device.sum16 dev ~addr ~len:r.len

(* Volatile-only: the caller's commit of the primary line persists it. *)
let refresh dev r = Pmem.Device.write_u16 dev r.p_ck (sum dev r r.primary)

let primary_ok dev r =
  (not (Pmem.Device.poisoned_within dev ~addr:r.primary ~len:r.len))
  && (not (Pmem.Device.poisoned_within dev ~addr:r.p_ck ~len:2))
  && Pmem.Device.read_u16 dev r.p_ck = sum dev r r.primary

let replica_ok dev r =
  (not (Pmem.Device.poisoned_within dev ~addr:r.replica ~len:r.len))
  && (not (Pmem.Device.poisoned_within dev ~addr:r.r_ck ~len:2))
  && Pmem.Device.read_u16 dev r.r_ck = sum dev r r.replica

(* Copy the primary record (checksum included, unless shared) over the
   replica — volatile writes only; the caller persists. *)
let copy_to_replica dev r =
  Pmem.Device.blit dev ~src:r.primary ~dst:r.replica ~len:r.len;
  if r.r_ck <> r.p_ck then Pmem.Device.blit dev ~src:r.p_ck ~dst:r.r_ck ~len:2

(* Persist a span now-ish: deferred into the pending set under batching
   (the next ordering point drains it), synchronous otherwise. Not a
   commit-classified flush — repairs must not consume ordering
   dependencies an interrupted operation may still have declared. *)
let persist dev clock cat ~addr ~len = Pmem.Device.flush dev clock cat ~addr ~len

let persist_record dev clock r ~addr =
  persist dev clock r.cat ~addr ~len:r.len;
  let ck = if addr = r.primary then r.p_ck else r.r_ck in
  if Pmem.Cacheline.index ck <> Pmem.Cacheline.index addr then
    persist dev clock r.cat ~addr:ck ~len:2

(* Maintain the replica after a primary commit (call sites gate on
   [Config.media_replication]). *)
let write_replica dev clock r =
  copy_to_replica dev r;
  persist_record dev clock r ~addr:r.replica

(* Verify a record and heal whatever is damaged. The primary wins when
   its checksum is valid; the replica is rebuilt from it if stale, rotten
   or poisoned. An invalid primary is rewritten from a valid replica
   (clearing poison first — the line is being rewritten in place). Both
   copies damaged is [Lost]: the caller quarantines or fails. *)
let verify_repair dev clock r =
  let p = primary_ok dev r in
  if p then begin
    let in_sync =
      replica_ok dev r && Pmem.Device.read_u16 dev r.r_ck = Pmem.Device.read_u16 dev r.p_ck
    in
    if in_sync then Clean
    else begin
      Pmem.Device.clear_poison_within dev ~addr:r.replica ~len:r.len;
      Pmem.Device.clear_poison_within dev ~addr:r.r_ck ~len:2;
      write_replica dev clock r;
      Pmem.Device.note_media_repair dev;
      Repaired
    end
  end
  else if replica_ok dev r then begin
    Pmem.Device.clear_poison_within dev ~addr:r.primary ~len:r.len;
    Pmem.Device.clear_poison_within dev ~addr:r.p_ck ~len:2;
    Pmem.Device.blit dev ~src:r.replica ~dst:r.primary ~len:r.len;
    if r.r_ck <> r.p_ck then Pmem.Device.blit dev ~src:r.r_ck ~dst:r.p_ck ~len:2;
    persist_record dev clock r ~addr:r.primary;
    Pmem.Device.note_media_repair dev;
    Repaired
  end
  else Lost

(* The seeded scrub bug (--broken-scrub): instead of repairing from the
   replica, "bless" whatever the primary contains — recompute its
   checksum over the (possibly rotten) bytes, clear the poison without
   restoring content, and propagate the damage into the replica. The
   differential oracle must catch the downstream corruption. *)
let bless dev clock r =
  Pmem.Device.clear_poison_within dev ~addr:r.primary ~len:r.len;
  Pmem.Device.clear_poison_within dev ~addr:r.p_ck ~len:2;
  refresh dev r;
  persist_record dev clock r ~addr:r.primary;
  Pmem.Device.clear_poison_within dev ~addr:r.replica ~len:r.len;
  Pmem.Device.clear_poison_within dev ~addr:r.r_ck ~len:2;
  write_replica dev clock r
