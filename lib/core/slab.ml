let slab_bytes = 65536
let index_capacity = 512
let magic = 0x51AB
let fixed_header = 64
let no_class = 0xFF

type layout = {
  class_idx : int;
  block_size : int;
  nblocks : int;
  bitmap_lines : int;
  index_off : int;
  data_off : int;
}

let align64 n = (n + 63) land lnot 63

(* The index table sits at a fixed offset before the bitmap so that a
   morph's step-2 index writes can never clobber the old bitmap, which the
   crash-undo path may still need while the flag is 1. The header's guard
   replica (a mirrored copy of the packed word plus checksum, see
   {!Guard}) gets its own cache line between the index table and the
   bitmap: damage to the header line and to its replica are independent
   faults. *)
let index_off = fixed_header
let replica_off = fixed_header + (index_capacity * 2)
let bitmap_off = replica_off + Pmem.Cacheline.size

let layout_of_class ~class_idx ~mapping =
  let block_size = Size_class.size_of class_idx in
  let rec fix nblocks =
    let lines = Bitmap.lines_for ~nbits:nblocks ~mapping in
    let data_off = align64 (bitmap_off + (lines * Pmem.Cacheline.size)) in
    let nblocks' = (slab_bytes - data_off) / block_size in
    if nblocks' = nblocks then
      { class_idx; block_size; nblocks; bitmap_lines = lines; index_off; data_off }
    else fix nblocks'
  in
  let l = fix ((slab_bytes - bitmap_off) / block_size) in
  assert (l.nblocks > 0);
  l

type t = {
  addr : int;
  arena : int;
  mutable layout : layout;
  mutable bitmap : Bitmap.t;
  mutable free_count : int;
  mutable avail : int array;
  mutable tcached : int; (* blocks popped to tcaches while unmarked (IC variant) *)
  mutable freelist_node : t Support.Dlist.node option;
  mutable lru_node : t Support.Dlist.node option;
  mutable morph : morph option;
  mutable dying : bool;
  mutable quarantined : bool;
}

and morph = {
  old_class : int;
  old_block_size : int;
  old_data_off : int;
  mutable cnt_slab : int;
  cnt_block : int array;
  old_live : (int, int) Hashtbl.t;
}

(* --- packed persistent header --------------------------------------------

   Every header field lives in one 64-bit word (see the .mli bit diagram):

     0..15  magic        16..23 size class    24..25 morph flag
     26..33 old class    34..43 index count   44..49 arena
     50..62 free hint    63     always 0

   so a header commit dirties a single cache line, an aligned 8-byte
   store is crash-atomic under the torn-store model, and bit 63 staying
   zero makes the word a lossless OCaml int. [free hint] is advisory
   (refreshed only inside header commits, recomputed by recovery). *)

module Hdr = struct
  let l = Pstruct.layout "slab.header"
  let word = Pstruct.i64 l "packed" ~off:0
  let cksum = Pstruct.u16 l "cksum" ~off:8
  let () = Pstruct.seal l ~size:fixed_header
end

let shift_magic = 0
and shift_class = 16
and shift_flag = 24
and shift_old_class = 26
and shift_index_count = 34
and shift_arena = 44
and shift_free_hint = 50

let mask_magic = 0xFFFF
and mask_class = 0xFF
and mask_flag = 0x3
and mask_old_class = 0xFF
and mask_index_count = 0x3FF
and mask_arena = 0x3F
and mask_free_hint = 0x1FFF

let () = assert (Size_class.count < no_class)

let get_bits w ~shift ~mask = (w lsr shift) land mask

let set_bits w ~shift ~mask v =
  assert (v land lnot mask = 0);
  w land lnot (mask lsl shift) lor (v lsl shift)

let read_word dev addr = Int64.to_int (Pstruct.get dev ~base:addr Hdr.word)
let write_word dev addr w = Pstruct.set dev ~base:addr Hdr.word (Int64.of_int w)

(* Mutation-test knob (--broken-header): mis-decode the class field by
   flipping its lowest bit, as a mispacked shift would. Read-side only, so
   the persistent image stays intact and the defect is purely a decoder
   bug for the walkers to catch. *)
let broken_header = ref false
let unsafe_set_broken_header v = broken_header := v

let word_class w =
  let c = get_bits w ~shift:shift_class ~mask:mask_class in
  if !broken_header then c lxor 1 else c

(* Guarded bytes: the packed word; checksum at offset 8. *)
let guarded_len = 8

let guard_record addr =
  {
    Guard.primary = addr;
    len = guarded_len;
    p_ck = addr + guarded_len;
    replica = addr + replica_off;
    r_ck = addr + replica_off + guarded_len;
    cat = Pmem.Stats.Meta;
  }

let _ = Hdr.cksum

(* The index table: packed u16 entries at a fixed offset. *)
module Index = struct
  let l = Pstruct.layout "slab.index"
  let entries = Pstruct.array l "entries" ~off:0 ~count:index_capacity Pstruct.U16
  let () = Pstruct.seal l ~size:(index_capacity * 2)
end

let header_addr t = t.addr
let bitmap_addr t = t.addr + bitmap_off
let index_entry_addr t i = t.addr + t.layout.index_off + (2 * i)
let read_index_entry dev addr i = Pstruct.get_elt dev ~base:(addr + index_off) Index.entries i
let write_index_entry dev addr i v = Pstruct.set_elt dev ~base:(addr + index_off) Index.entries i v
let index_entry_span addr i = Pstruct.elt_span ~base:(addr + index_off) Index.entries i

(* The span the morph protocol commits when it flushes "the header": the
   packed word and its checksum, well inside the slab's first line. *)
let header_commit_span addr = Pstruct.span_of ~addr ~len:16

let read_class dev addr = word_class (read_word dev addr)
let is_slab_header dev addr = get_bits (read_word dev addr) ~shift:shift_magic ~mask:mask_magic = magic

module Header = struct
  let rmw dev addr ~shift ~mask v = write_word dev addr (set_bits (read_word dev addr) ~shift ~mask v)
  let read_class = read_class
  let write_class dev addr v = rmw dev addr ~shift:shift_class ~mask:mask_class v
  let read_flag dev addr = get_bits (read_word dev addr) ~shift:shift_flag ~mask:mask_flag
  let write_flag dev addr v = rmw dev addr ~shift:shift_flag ~mask:mask_flag v
  let read_old_class dev addr = get_bits (read_word dev addr) ~shift:shift_old_class ~mask:mask_old_class
  let write_old_class dev addr v = rmw dev addr ~shift:shift_old_class ~mask:mask_old_class v
  let read_index_count dev addr =
    get_bits (read_word dev addr) ~shift:shift_index_count ~mask:mask_index_count
  let write_index_count dev addr v = rmw dev addr ~shift:shift_index_count ~mask:mask_index_count v
  let read_arena dev addr = get_bits (read_word dev addr) ~shift:shift_arena ~mask:mask_arena
  let write_arena dev addr v = rmw dev addr ~shift:shift_arena ~mask:mask_arena v
  let read_free_hint dev addr =
    get_bits (read_word dev addr) ~shift:shift_free_hint ~mask:mask_free_hint
  let write_free_hint dev addr v = rmw dev addr ~shift:shift_free_hint ~mask:mask_free_hint v
  let no_class = no_class
end

(* --- volatile free-block bitset ------------------------------------------

   One bit per block, 1 = available to hand out. Replaces the old free
   stack: membership is O(1), duplicates are impossible by construction,
   and first-fit is a word scan — the same shape as the persistent
   bitmap's {!Bitmap.find_first_zero}, with which it agrees bit-for-bit on
   non-morphing slabs outside the internal-collection variant. *)

let avail_bits = 32

let avail_words n = (n + avail_bits - 1) / avail_bits

let free_mem t b = t.avail.(b / avail_bits) land (1 lsl (b mod avail_bits)) <> 0

let free_put t b =
  assert (not (free_mem t b));
  t.avail.(b / avail_bits) <- t.avail.(b / avail_bits) lor (1 lsl (b mod avail_bits));
  t.free_count <- t.free_count + 1

let free_claim t b =
  assert (free_mem t b);
  t.avail.(b / avail_bits) <- t.avail.(b / avail_bits) land lnot (1 lsl (b mod avail_bits));
  t.free_count <- t.free_count - 1

let free_take_first t =
  let n = Array.length t.avail in
  let rec scan i =
    if i >= n then None
    else if t.avail.(i) = 0 then scan (i + 1)
    else begin
      let w = t.avail.(i) in
      let j = ref 0 in
      while w land (1 lsl !j) = 0 do
        incr j
      done;
      let b = (i * avail_bits) + !j in
      free_claim t b;
      Some b
    end
  in
  scan 0

let iter_free t f =
  for b = 0 to t.layout.nblocks - 1 do
    if free_mem t b then f b
  done

let usable t b =
  match t.morph with
  | None -> true
  | Some m -> m.cnt_block.(b) = 0

(* Recompute the free set from the persistent bitmap and the morph pins.
   A pinned block's bit is normally set, but a crash inside an old-block
   release can leave it already cleared (bits are cleared before the
   index-entry commit); such a block must stay out of the free set — the
   release will add it when it re-runs and the pin drops. *)
let recompute_free dev t =
  t.avail <- Array.make (avail_words t.layout.nblocks) 0;
  t.free_count <- 0;
  for b = 0 to t.layout.nblocks - 1 do
    if (not (Bitmap.get dev t.bitmap b)) && usable t b then free_put t b
  done

let format dev ~addr ~arena ~mapping layout =
  assert (addr mod 4096 = 0);
  assert (arena land lnot mask_arena = 0);
  assert (layout.nblocks land lnot mask_free_hint = 0);
  let w = magic in
  let w = set_bits w ~shift:shift_class ~mask:mask_class layout.class_idx in
  let w = set_bits w ~shift:shift_old_class ~mask:mask_old_class no_class in
  let w = set_bits w ~shift:shift_arena ~mask:mask_arena arena in
  let w = set_bits w ~shift:shift_free_hint ~mask:mask_free_hint layout.nblocks in
  write_word dev addr w;
  Guard.refresh dev (guard_record addr);
  Pmem.Device.fill dev (addr + bitmap_off) (layout.bitmap_lines * Pmem.Cacheline.size) '\000';
  let bitmap = Bitmap.make ~base:(addr + bitmap_off) ~nbits:layout.nblocks ~mapping in
  assert (bitmap.Bitmap.lines = layout.bitmap_lines);
  let avail = Array.make (avail_words layout.nblocks) 0 in
  let t =
    {
      addr;
      arena;
      layout;
      bitmap;
      free_count = 0;
      avail;
      tcached = 0;
      freelist_node = None;
      lru_node = None;
      morph = None;
      dying = false;
      quarantined = false;
    }
  in
  for b = 0 to layout.nblocks - 1 do
    free_put t b
  done;
  t

let block_addr t b = t.addr + t.layout.data_off + (b * t.layout.block_size)

let block_index t addr =
  let off = addr - t.addr - t.layout.data_off in
  assert (off >= 0 && off mod t.layout.block_size = 0);
  let b = off / t.layout.block_size in
  assert (b < t.layout.nblocks);
  b

let contains_new_block t addr =
  let off = addr - t.addr - t.layout.data_off in
  off >= 0
  && off mod t.layout.block_size = 0
  && off / t.layout.block_size < t.layout.nblocks

let occupancy_ratio t =
  let total = t.layout.nblocks in
  float_of_int (total - t.free_count) /. float_of_int total

let pack_index_entry ~block ~allocated =
  assert (block >= 0 && block < 4096);
  block lor (if allocated then 0x8000 else 0)

let unpack_index_entry e = (e land 0x0FFF, e land 0x8000 <> 0)

let old_block_index m addr_off =
  (* [addr_off] is the slab-relative offset of the freed address. *)
  let off = addr_off - m.old_data_off in
  if off < 0 || off mod m.old_block_size <> 0 then None
  else
    let b = off / m.old_block_size in
    if Hashtbl.mem m.old_live b then Some b else None

let overlapping_new_blocks t m old_b =
  let start = m.old_data_off + (old_b * m.old_block_size) in
  let stop = start + m.old_block_size in
  let d = t.layout.data_off in
  let bs = t.layout.block_size in
  let lo = if start <= d then 0 else (start - d) / bs in
  let hi = if stop <= d then -1 else (stop - 1 - d) / bs in
  (max 0 lo, min (t.layout.nblocks - 1) hi)

(* --- recovery -------------------------------------------------------------- *)

let rebuild_vslab dev ~addr ~arena ~mapping =
  let class_idx = Header.read_class dev addr in
  let layout = layout_of_class ~class_idx ~mapping in
  (* The persisted arena index may disagree with the caller's placement
     (older images, or recovery rebalancing slabs round-robin); the caller
     wins and the word is rewritten so the persistent image matches. The
     word is crash-atomic, so a crash before this persists just means the
     next recovery repeats the fix. *)
  if Header.read_arena dev addr <> arena then begin
    Header.write_arena dev addr (arena land mask_arena);
    Guard.refresh dev (guard_record addr)
  end;
  let bitmap = Bitmap.make ~base:(addr + bitmap_off) ~nbits:layout.nblocks ~mapping in
  let s =
    {
      addr;
      arena;
      layout;
      bitmap;
      free_count = 0;
      avail = Array.make (avail_words layout.nblocks) 0;
      tcached = 0;
      freelist_node = None;
      lru_node = None;
      morph = None;
      dying = false;
      quarantined = false;
    }
  in
  (* Morphing state survives in the index table while old-class blocks are
     still live. *)
  let old_class = Header.read_old_class dev addr in
  let index_count = Header.read_index_count dev addr in
  if old_class <> no_class && index_count > 0 then begin
    let old_layout = layout_of_class ~class_idx:old_class ~mapping in
    let old_live = Hashtbl.create 16 in
    let cnt_block = Array.make layout.nblocks 0 in
    let m =
      {
        old_class;
        old_block_size = old_layout.block_size;
        old_data_off = old_layout.data_off;
        cnt_slab = 0;
        cnt_block;
        old_live;
      }
    in
    for slot = 0 to index_count - 1 do
      let b, allocated = unpack_index_entry (read_index_entry dev addr slot) in
      if allocated then begin
        Hashtbl.replace old_live b slot;
        m.cnt_slab <- m.cnt_slab + 1;
        let lo, hi = overlapping_new_blocks s m b in
        for j = lo to hi do
          cnt_block.(j) <- cnt_block.(j) + 1
        done
      end
    done;
    if m.cnt_slab > 0 then s.morph <- Some m
  end;
  recompute_free dev s;
  s

let undo_morph dev ~addr ~mapping =
  let flag = Header.read_flag dev addr in
  assert (flag = 1 || flag = 2);
  if flag = 2 then begin
    (* The new class field and bitmap may be partially written: restore
       the old class and rebuild its bitmap from the index table. *)
    let old_class = Header.read_old_class dev addr in
    let old_layout = layout_of_class ~class_idx:old_class ~mapping in
    Header.write_class dev addr old_class;
    let bitmap = Bitmap.make ~base:(addr + bitmap_off) ~nbits:old_layout.nblocks ~mapping in
    Pmem.Device.fill dev (addr + bitmap_off) (Bitmap.bytes bitmap) '\000';
    let index_count = Header.read_index_count dev addr in
    for slot = 0 to index_count - 1 do
      let b, allocated = unpack_index_entry (read_index_entry dev addr slot) in
      if allocated then Bitmap.set dev bitmap b
    done
  end;
  Header.write_old_class dev addr no_class;
  Header.write_index_count dev addr 0;
  Header.write_flag dev addr 0;
  (* The stale hint may exceed the restored class's block count; zero is
     always in range and recovery recomputes the real free set anyway. *)
  Header.write_free_hint dev addr 0;
  Guard.refresh dev (guard_record addr)

let recover dev ~addr ~arena ~mapping =
  let flag = Header.read_flag dev addr in
  let undone = flag = 1 || flag = 2 in
  if undone then undo_morph dev ~addr ~mapping;
  (rebuild_vslab dev ~addr ~arena ~mapping, undone)
