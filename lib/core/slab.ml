let slab_bytes = 65536
let index_capacity = 512
let magic = 0x51AB
let fixed_header = 64
let no_class = 0xFFFF

type layout = {
  class_idx : int;
  block_size : int;
  nblocks : int;
  bitmap_lines : int;
  index_off : int;
  data_off : int;
}

let align64 n = (n + 63) land lnot 63

(* The index table sits at a fixed offset before the bitmap so that a
   morph's step-2 index writes can never clobber the old bitmap, which the
   crash-undo path may still need while the flag is 1. The header's guard
   replica (a mirrored copy of the fixed fields plus checksum, see
   {!Guard}) gets its own cache line between the index table and the
   bitmap: damage to the header line and to its replica are independent
   faults. *)
let index_off = fixed_header
let replica_off = fixed_header + (index_capacity * 2)
let bitmap_off = replica_off + Pmem.Cacheline.size

let layout_of_class ~class_idx ~mapping =
  let block_size = Size_class.size_of class_idx in
  let rec fix nblocks =
    let lines = Bitmap.lines_for ~nbits:nblocks ~mapping in
    let data_off = align64 (bitmap_off + (lines * Pmem.Cacheline.size)) in
    let nblocks' = (slab_bytes - data_off) / block_size in
    if nblocks' = nblocks then
      { class_idx; block_size; nblocks; bitmap_lines = lines; index_off; data_off }
    else fix nblocks'
  in
  let l = fix ((slab_bytes - bitmap_off) / block_size) in
  assert (l.nblocks > 0);
  l

type t = {
  addr : int;
  arena : int;
  mutable layout : layout;
  mutable bitmap : Bitmap.t;
  mutable free_count : int;
  mutable free_stack : int list;
  mutable tcached : int; (* blocks popped to tcaches while unmarked (IC variant) *)
  mutable freelist_node : t Support.Dlist.node option;
  mutable lru_node : t Support.Dlist.node option;
  mutable morph : morph option;
  mutable dying : bool;
  mutable quarantined : bool;
}

and morph = {
  old_class : int;
  old_block_size : int;
  old_data_off : int;
  mutable cnt_slab : int;
  cnt_block : int array;
  old_live : (int, int) Hashtbl.t;
}

(* Persistent header layout (see the .mli layout comment). *)
module Hdr = struct
  let l = Pstruct.layout "slab.header"
  let magic = Pstruct.u16 l "magic" ~off:0
  let class_ = Pstruct.u16 l "class" ~off:2
  let data = Pstruct.u16 l "data_off" ~off:4
  let flag = Pstruct.u8 l "flag" ~off:6
  let old_class = Pstruct.u16 l "old_class" ~off:8
  let old_data = Pstruct.u16 l "old_data_off" ~off:10
  let index_count = Pstruct.u16 l "index_count" ~off:12
  let cksum = Pstruct.u16 l "cksum" ~off:14
  let () = Pstruct.seal l ~size:fixed_header
end

(* Guarded bytes: every fixed field above, checksum excluded. *)
let guarded_len = 14
let _ = Hdr.cksum

let guard_record addr =
  {
    Guard.primary = addr;
    len = guarded_len;
    p_ck = addr + guarded_len;
    replica = addr + replica_off;
    r_ck = addr + replica_off + guarded_len;
    cat = Pmem.Stats.Meta;
  }

(* The index table: packed u16 entries at a fixed offset. *)
module Index = struct
  let l = Pstruct.layout "slab.index"
  let entries = Pstruct.array l "entries" ~off:0 ~count:index_capacity Pstruct.U16
  let () = Pstruct.seal l ~size:(index_capacity * 2)
end

let header_addr t = t.addr
let bitmap_addr t = t.addr + bitmap_off
let index_entry_addr t i = t.addr + t.layout.index_off + (2 * i)
let read_index_entry dev addr i = Pstruct.get_elt dev ~base:(addr + index_off) Index.entries i
let write_index_entry dev addr i v = Pstruct.set_elt dev ~base:(addr + index_off) Index.entries i v
let index_entry_span addr i = Pstruct.elt_span ~base:(addr + index_off) Index.entries i

(* The span the morph protocol commits when it flushes "the header": the
   fixed fields' first line. *)
let header_commit_span addr = Pstruct.span_of ~addr ~len:16

let format dev ~addr ~arena ~mapping layout =
  assert (addr mod 4096 = 0);
  Pstruct.set dev ~base:addr Hdr.magic magic;
  Pstruct.set dev ~base:addr Hdr.class_ layout.class_idx;
  Pstruct.set dev ~base:addr Hdr.data layout.data_off;
  Pstruct.set dev ~base:addr Hdr.flag 0;
  Pstruct.set dev ~base:addr Hdr.old_class no_class;
  Pstruct.set dev ~base:addr Hdr.old_data 0;
  Pstruct.set dev ~base:addr Hdr.index_count 0;
  Guard.refresh dev (guard_record addr);
  Pmem.Device.fill dev (addr + bitmap_off) (layout.bitmap_lines * Pmem.Cacheline.size) '\000';
  let bitmap = Bitmap.make ~base:(addr + bitmap_off) ~nbits:layout.nblocks ~mapping in
  assert (bitmap.Bitmap.lines = layout.bitmap_lines);
  let rec stack i acc = if i < 0 then acc else stack (i - 1) (i :: acc) in
  {
    addr;
    arena;
    layout;
    bitmap;
    free_count = layout.nblocks;
    free_stack = stack (layout.nblocks - 1) [];
    tcached = 0;
    freelist_node = None;
    lru_node = None;
    morph = None;
    dying = false;
    quarantined = false;
  }

let read_class dev addr = Pstruct.get dev ~base:addr Hdr.class_
let is_slab_header dev addr = Pstruct.get dev ~base:addr Hdr.magic = magic

module Header = struct
  let read_class = read_class
  let write_class dev addr v = Pstruct.set dev ~base:addr Hdr.class_ v
  let read_data_off dev addr = Pstruct.get dev ~base:addr Hdr.data
  let write_data_off dev addr v = Pstruct.set dev ~base:addr Hdr.data v
  let read_flag dev addr = Pstruct.get dev ~base:addr Hdr.flag
  let write_flag dev addr v = Pstruct.set dev ~base:addr Hdr.flag v
  let read_old_class dev addr = Pstruct.get dev ~base:addr Hdr.old_class
  let write_old_class dev addr v = Pstruct.set dev ~base:addr Hdr.old_class v
  let read_old_data_off dev addr = Pstruct.get dev ~base:addr Hdr.old_data
  let write_old_data_off dev addr v = Pstruct.set dev ~base:addr Hdr.old_data v
  let read_index_count dev addr = Pstruct.get dev ~base:addr Hdr.index_count
  let write_index_count dev addr v = Pstruct.set dev ~base:addr Hdr.index_count v
  let no_class = no_class
end
let block_addr t b = t.addr + t.layout.data_off + (b * t.layout.block_size)

let block_index t addr =
  let off = addr - t.addr - t.layout.data_off in
  assert (off >= 0 && off mod t.layout.block_size = 0);
  let b = off / t.layout.block_size in
  assert (b < t.layout.nblocks);
  b

let contains_new_block t addr =
  let off = addr - t.addr - t.layout.data_off in
  off >= 0
  && off mod t.layout.block_size = 0
  && off / t.layout.block_size < t.layout.nblocks

let usable t b =
  match t.morph with
  | None -> true
  | Some m -> m.cnt_block.(b) = 0

let occupancy_ratio t =
  let total = t.layout.nblocks in
  float_of_int (total - t.free_count) /. float_of_int total

let pack_index_entry ~block ~allocated =
  assert (block >= 0 && block < 4096);
  block lor (if allocated then 0x8000 else 0)

let unpack_index_entry e = (e land 0x0FFF, e land 0x8000 <> 0)

let old_block_index m addr_off =
  (* [addr_off] is the slab-relative offset of the freed address. *)
  let off = addr_off - m.old_data_off in
  if off < 0 || off mod m.old_block_size <> 0 then None
  else
    let b = off / m.old_block_size in
    if Hashtbl.mem m.old_live b then Some b else None

let overlapping_new_blocks t m old_b =
  let start = m.old_data_off + (old_b * m.old_block_size) in
  let stop = start + m.old_block_size in
  let d = t.layout.data_off in
  let bs = t.layout.block_size in
  let lo = if start <= d then 0 else (start - d) / bs in
  let hi = if stop <= d then -1 else (stop - 1 - d) / bs in
  (max 0 lo, min (t.layout.nblocks - 1) hi)

(* --- recovery -------------------------------------------------------------- *)

let rebuild_vslab dev ~addr ~arena ~mapping =
  let class_idx = Header.read_class dev addr in
  let layout = layout_of_class ~class_idx ~mapping in
  assert (layout.data_off = Header.read_data_off dev addr);
  let bitmap = Bitmap.make ~base:(addr + bitmap_off) ~nbits:layout.nblocks ~mapping in
  let s =
    {
      addr;
      arena;
      layout;
      bitmap;
      free_count = 0;
      free_stack = [];
      tcached = 0;
      freelist_node = None;
      lru_node = None;
      morph = None;
      dying = false;
      quarantined = false;
    }
  in
  (* Morphing state survives in the index table while old-class blocks are
     still live. *)
  let old_class = Header.read_old_class dev addr in
  let index_count = Header.read_index_count dev addr in
  if old_class <> no_class && index_count > 0 then begin
    let old_layout = layout_of_class ~class_idx:old_class ~mapping in
    let old_live = Hashtbl.create 16 in
    let cnt_block = Array.make layout.nblocks 0 in
    let m =
      {
        old_class;
        old_block_size = old_layout.block_size;
        old_data_off = Header.read_old_data_off dev addr;
        cnt_slab = 0;
        cnt_block;
        old_live;
      }
    in
    for slot = 0 to index_count - 1 do
      let b, allocated = unpack_index_entry (read_index_entry dev addr slot) in
      if allocated then begin
        Hashtbl.replace old_live b slot;
        m.cnt_slab <- m.cnt_slab + 1;
        let lo, hi = overlapping_new_blocks s m b in
        for j = lo to hi do
          cnt_block.(j) <- cnt_block.(j) + 1
        done
      end
    done;
    if m.cnt_slab > 0 then s.morph <- Some m
  end;
  (* Free blocks: clear bit and not morph-pinned. A pinned block's bit is
     normally set, but a crash inside an old-block release can leave it
     already cleared (bits are cleared before the index-entry commit);
     such a block must stay out of the free stack — the release will push
     it when it re-runs and the pin drops. *)
  let stack = ref [] in
  for b = layout.nblocks - 1 downto 0 do
    if (not (Bitmap.get dev bitmap b)) && usable s b then stack := b :: !stack
  done;
  s.free_stack <- !stack;
  s.free_count <- List.length !stack;
  s

let undo_morph dev ~addr ~mapping =
  let flag = Header.read_flag dev addr in
  assert (flag = 1 || flag = 2);
  if flag = 2 then begin
    (* The new class fields and bitmap may be partially written: restore
       the old class and rebuild its bitmap from the index table. *)
    let old_class = Header.read_old_class dev addr in
    let old_layout = layout_of_class ~class_idx:old_class ~mapping in
    Header.write_class dev addr old_class;
    Header.write_data_off dev addr old_layout.data_off;
    let bitmap = Bitmap.make ~base:(addr + bitmap_off) ~nbits:old_layout.nblocks ~mapping in
    Pmem.Device.fill dev (addr + bitmap_off) (Bitmap.bytes bitmap) '\000';
    let index_count = Header.read_index_count dev addr in
    for slot = 0 to index_count - 1 do
      let b, allocated = unpack_index_entry (read_index_entry dev addr slot) in
      if allocated then Bitmap.set dev bitmap b
    done
  end;
  Header.write_old_class dev addr no_class;
  Header.write_old_data_off dev addr 0;
  Header.write_index_count dev addr 0;
  Header.write_flag dev addr 0;
  Guard.refresh dev (guard_record addr)

let recover dev ~addr ~arena ~mapping =
  let flag = Header.read_flag dev addr in
  let undone = flag = 1 || flag = 2 in
  if undone then undo_morph dev ~addr ~mapping;
  (rebuild_vslab dev ~addr ~arena ~mapping, undone)
