module Int_rb = Support.Rbtree.Make (struct
  type t = int

  let compare = compare
end)

type entry_ref = int
type kind = Extent | Slab_extent
type scanned = { ref_ : entry_ref; kind : kind; addr : int; size : int }

let chunk_bytes = 1024
let chunk_lines = chunk_bytes / Pmem.Cacheline.size (* 16 *)
let entry_lines = chunk_lines - 1 (* line 0 is the chunk header *)
let entries_per_line = Pmem.Cacheline.size / 8 (* 8 *)
let entries_per_chunk = entry_lines * entries_per_line (* 120 *)
let ref_stride = 128
let none = -1

type vchunk = {
  idx : int;
  valid : bool array;
  mutable live : int;  (** live normal entries *)
  mutable tombs : int;  (** tombstones not yet retired *)
  mutable next_slot : int;
}

type t = {
  dev : Pmem.Device.t;
  base : int;
  nchunks : int;
  interleave : bool;
  vchunks : vchunk Int_rb.t;
  mutable free : int list;
  mutable next_unused : int;
  mutable head : int;
  mutable tail : int;
  list_prev : int array;
  list_next : int array;
  tomb_index : (int, entry_ref list) Hashtbl.t;
  mutable alt : int;
  mutable fast_runs : int;
  mutable slow_runs : int;
  replicate : bool; (* maintain the header's guard replica (media model) *)
}

(* Header line, chunk array, one trailing guard-replica line. *)
let region_bytes ~chunks = Pmem.Cacheline.size + (chunks * chunk_bytes) + Pmem.Cacheline.size
let chunk_base t c = t.base + Pmem.Cacheline.size + (c * chunk_bytes)

(* --- persistent header / chunk layouts --------------------------------- *)

(* Region header line: the alt bit selects which of the two list-head
   pointers is current (pointers are chunk index + 1; 0 = empty list). *)
module Hdr = struct
  let l = Pstruct.layout "booklog.header"
  let alt = Pstruct.u8 l "alt" ~off:0
  let ptrs = Pstruct.array l "ptr" ~off:4 ~count:2 Pstruct.U32
  let cksum = Pstruct.u16 l "cksum" ~off:12
  let () = Pstruct.seal l ~size:Pmem.Cacheline.size
end

let _ = Hdr.cksum

(* Media guard over the header's guarded bytes (alt bit + both list-head
   pointers, bytes 0..11): checksum at offset 12 on the same line
   (refreshed inside every header commit for free), replica on the
   region's trailing line. A replica lagging by one header commit rolls
   the alt flip or a list-head update back to its pre-commit state —
   exactly a crash-before-commit image, which the scan/compaction path
   already handles (the old chain stays intact until the flip). *)
let guard_record ~base ~chunks =
  {
    Guard.primary = base;
    len = 12;
    p_ck = base + 12;
    replica = base + Pmem.Cacheline.size + (chunks * chunk_bytes);
    r_ck = base + Pmem.Cacheline.size + (chunks * chunk_bytes) + 12;
    cat = Pmem.Stats.Log;
  }

(* A chunk: header line (next pointer + active flag), then 15 lines of
   packed 8 B entries. *)
module Chunk = struct
  let l = Pstruct.layout "booklog.chunk"
  let next = Pstruct.u32 l "next" ~off:0
  let active = Pstruct.u8 l "active" ~off:4

  let entries =
    Pstruct.array l "entries" ~off:Pmem.Cacheline.size ~count:entries_per_chunk Pstruct.I64

  let () = Pstruct.seal l ~size:chunk_bytes
end

let guard t = guard_record ~base:t.base ~chunks:t.nchunks

let commit_header t clock span =
  Guard.refresh t.dev (guard t);
  Pstruct.commit t.dev clock Pmem.Stats.Log span;
  if t.replicate then Guard.write_replica t.dev clock (guard t)

let write_list_head t clock head =
  Pstruct.set_elt t.dev ~base:t.base Hdr.ptrs t.alt (head + 1);
  commit_header t clock
    (Pstruct.union (Pstruct.span ~base:t.base Hdr.alt) (Pstruct.arr_span ~base:t.base Hdr.ptrs))

let write_chunk_next t clock c next =
  let base = chunk_base t c in
  Pstruct.set t.dev ~base Chunk.next (next + 1);
  Pstruct.commit t.dev clock Pmem.Stats.Log (Pstruct.span ~base Chunk.next)

(* --- entry encoding ----------------------------------------------------- *)

let code_extent = 1
let code_slab = 2
let code_tomb = 3

let encode ~code ~size4k ~payload =
  assert (size4k >= 0 && size4k < 1 lsl 26);
  assert (payload >= 0 && payload < 1 lsl 36);
  Int64.logor
    (Int64.of_int code)
    (Int64.logor
       (Int64.shift_left (Int64.of_int size4k) 2)
       (Int64.shift_left (Int64.of_int payload) 28))

let decode v =
  let code = Int64.to_int (Int64.logand v 3L) in
  let size4k = Int64.to_int (Int64.logand (Int64.shift_right_logical v 2) 0x3FFFFFFL) in
  let payload = Int64.to_int (Int64.shift_right_logical v 28) in
  (code, size4k, payload)

(* Logical slot -> byte offset within the chunk. Interleaving rotates
   consecutive entries across the chunk's 15 entry lines. *)
let slot_offset ~interleave s =
  assert (s >= 0 && s < entries_per_chunk);
  let line, pos =
    if interleave then (1 + (s mod entry_lines), s / entry_lines)
    else (1 + (s / entries_per_line), s mod entries_per_line)
  in
  (line * Pmem.Cacheline.size) + (pos * 8)

(* Physical entry index within the chunk's entry array. *)
let slot_index ~interleave s = (slot_offset ~interleave s - Pmem.Cacheline.size) / 8

(* --- construction ------------------------------------------------------- *)

let create ?(replicate = false) dev ~base ~chunks ~interleave =
  Pstruct.set dev ~base Hdr.alt 0;
  Pstruct.set_elt dev ~base Hdr.ptrs 0 0;
  Pstruct.set_elt dev ~base Hdr.ptrs 1 0;
  Guard.refresh dev (guard_record ~base ~chunks);
  if replicate then begin
    let r = guard_record ~base ~chunks in
    (* Volatile-only here; the caller persists the whole init image. *)
    Pmem.Device.blit dev ~src:r.Guard.primary ~dst:r.Guard.replica ~len:(r.Guard.len + 2)
  end;
  {
    dev;
    base;
    nchunks = chunks;
    interleave;
    vchunks = Int_rb.create ();
    free = [];
    next_unused = 0;
    head = none;
    tail = none;
    list_prev = Array.make chunks none;
    list_next = Array.make chunks none;
    tomb_index = Hashtbl.create 64;
    alt = 0;
    fast_runs = 0;
    slow_runs = 0;
    replicate;
  }

let chunks_in_use t = Int_rb.cardinal t.vchunks
let capacity_chunks t = t.nchunks
let fast_gc_runs t = t.fast_runs
let slow_gc_runs t = t.slow_runs

let needs_slow_gc t ~threshold =
  float_of_int (chunks_in_use t) >= threshold *. float_of_int t.nchunks

(* --- chunk allocation --------------------------------------------------- *)

exception Full

let grab_chunk t clock =
  let reused, idx =
    match t.free with
    | c :: rest ->
        t.free <- rest;
        (true, c)
    | [] ->
        if t.next_unused >= t.nchunks then raise Full
        else begin
          let c = t.next_unused in
          t.next_unused <- c + 1;
          (false, c)
        end
  in
  let base = chunk_base t idx in
  if reused then begin
    (* Stale entries from the previous life of the chunk must not be
       replayable: zero the whole chunk. Sequential writes, cheap. *)
    Pmem.Device.fill t.dev base chunk_bytes '\000';
    Pstruct.flush_span t.dev clock Pmem.Stats.Log (Pstruct.layout_span ~base Chunk.l)
  end;
  Pstruct.set t.dev ~base Chunk.next 0;
  Pstruct.set t.dev ~base Chunk.active 1;
  Pstruct.flush_span t.dev clock Pmem.Stats.Log
    (Pstruct.union (Pstruct.span ~base Chunk.next) (Pstruct.span ~base Chunk.active));
  let vc = { idx; valid = Array.make entries_per_chunk false; live = 0; tombs = 0; next_slot = 0 } in
  Int_rb.insert t.vchunks idx vc;
  vc

let link_tail t clock (vc : vchunk) =
  if t.tail = none then begin
    t.head <- vc.idx;
    t.tail <- vc.idx;
    write_list_head t clock vc.idx
  end
  else begin
    t.list_next.(t.tail) <- vc.idx;
    t.list_prev.(vc.idx) <- t.tail;
    write_chunk_next t clock t.tail vc.idx;
    t.tail <- vc.idx
  end

let rec tail_vchunk t clock =
  if t.tail <> none then
    match Int_rb.find_opt t.vchunks t.tail with
    | Some vc when vc.next_slot < entries_per_chunk -> vc
    | _ ->
        let vc = grab_chunk t clock in
        link_tail t clock vc;
        vc
  else begin
    let vc = grab_chunk t clock in
    link_tail t clock vc;
    tail_vchunk t clock
  end

(* --- appends ------------------------------------------------------------ *)

let append_raw t clock ~code ~size4k ~payload =
  let vc = tail_vchunk t clock in
  let s = vc.next_slot in
  vc.next_slot <- s + 1;
  let base = chunk_base t vc.idx in
  let phys = slot_index ~interleave:t.interleave s in
  Pstruct.set_elt t.dev ~base Chunk.entries phys (encode ~code ~size4k ~payload);
  Pstruct.flush_span t.dev clock Pmem.Stats.Log (Pstruct.elt_span ~base Chunk.entries phys);
  (vc, s)

let append_normal t clock kind ~addr ~size =
  assert (addr mod 4096 = 0 && size mod 4096 = 0);
  let code = match kind with Extent -> code_extent | Slab_extent -> code_slab in
  let vc, s = append_raw t clock ~code ~size4k:(size / 4096) ~payload:(addr / 4096) in
  vc.valid.(s) <- true;
  vc.live <- vc.live + 1;
  (vc.idx * ref_stride) + s

let retire_tombstones_for t retired_chunk =
  match Hashtbl.find_opt t.tomb_index retired_chunk with
  | None -> ()
  | Some refs ->
      Hashtbl.remove t.tomb_index retired_chunk;
      List.iter
        (fun r ->
          let c = r / ref_stride in
          match Int_rb.find_opt t.vchunks c with
          | Some vc -> vc.tombs <- vc.tombs - 1
          | None -> ())
        refs

let unlink_chunk t clock idx =
  let prev = t.list_prev.(idx) and next = t.list_next.(idx) in
  if prev = none then begin
    t.head <- next;
    write_list_head t clock next
  end
  else begin
    t.list_next.(prev) <- next;
    write_chunk_next t clock prev next
  end;
  if next <> none then t.list_prev.(next) <- prev;
  if t.tail = idx then t.tail <- prev;
  t.list_prev.(idx) <- none;
  t.list_next.(idx) <- none

let fast_gc t clock =
  t.fast_runs <- t.fast_runs + 1;
  let freed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let victims =
      Int_rb.fold
        (fun idx vc acc ->
          (* The tail keeps receiving appends; never retire it. *)
          if vc.live = 0 && vc.tombs = 0 && idx <> t.tail then idx :: acc else acc)
        t.vchunks []
    in
    List.iter
      (fun idx ->
        unlink_chunk t clock idx;
        Int_rb.remove t.vchunks idx;
        t.free <- idx :: t.free;
        retire_tombstones_for t idx;
        incr freed;
        progress := true)
      victims
  done;
  !freed

let append_tombstone t clock ref_ =
  let target_chunk = ref_ / ref_stride and target_slot = ref_ mod ref_stride in
  let vc, s = append_raw t clock ~code:code_tomb ~size4k:0 ~payload:ref_ in
  vc.tombs <- vc.tombs + 1;
  let self_ref = (vc.idx * ref_stride) + s in
  (match Int_rb.find_opt t.vchunks target_chunk with
  | Some target ->
      assert target.valid.(target_slot);
      target.valid.(target_slot) <- false;
      target.live <- target.live - 1
  | None -> assert false);
  Hashtbl.replace t.tomb_index target_chunk
    (self_ref :: Option.value ~default:[] (Hashtbl.find_opt t.tomb_index target_chunk))

let decode_kind = function
  | c when c = code_extent -> Some Extent
  | c when c = code_slab -> Some Slab_extent
  | _ -> None

let slow_gc t clock =
  t.slow_runs <- t.slow_runs + 1;
  (* Collect live entries in list order. *)
  let live = ref [] in
  let c = ref t.head in
  while !c <> none do
    (match Int_rb.find_opt t.vchunks !c with
    | Some vc ->
        for s = 0 to vc.next_slot - 1 do
          if vc.valid.(s) then begin
            let v =
              Pstruct.get_elt t.dev ~base:(chunk_base t vc.idx) Chunk.entries
                (slot_index ~interleave:t.interleave s)
            in
            let code, size4k, payload = decode v in
            assert (code = code_extent || code = code_slab);
            live := ((vc.idx * ref_stride) + s, code, size4k, payload) :: !live
          end
        done
    | None -> assert false);
    c := t.list_next.(!c)
  done;
  let live = List.rev !live in
  let old_chunks = Int_rb.fold (fun idx _ acc -> idx :: acc) t.vchunks [] in
  (* Build the new list on fresh chunks. *)
  let old_vchunks = Int_rb.to_list t.vchunks in
  List.iter (fun (idx, _) -> Int_rb.remove t.vchunks idx) old_vchunks;
  t.head <- none;
  t.tail <- none;
  t.alt <- 1 - t.alt;
  Hashtbl.reset t.tomb_index;
  let remap = ref [] in
  List.iter
    (fun (old_ref, code, size4k, payload) ->
      let vc, s = append_raw t clock ~code ~size4k ~payload in
      vc.valid.(s) <- true;
      vc.live <- vc.live + 1;
      remap := (old_ref, (vc.idx * ref_stride) + s) :: !remap)
    live;
  (* Publish the new list by flipping the alt bit, then recycle. *)
  Pstruct.set t.dev ~base:t.base Hdr.alt t.alt;
  commit_header t clock (Pstruct.span ~base:t.base Hdr.alt);
  t.free <- old_chunks @ t.free;
  Array.fill t.list_prev 0 t.nchunks none;
  Array.fill t.list_next 0 t.nchunks none;
  (* Rebuild volatile list links of the new chain from the entries just
     appended: link order was set by link_tail during appends, so only
     prev/next of the new chunks need restoring. *)
  let rec relink prev c =
    if c <> none then begin
      t.list_prev.(c) <- prev;
      let next = Pstruct.get t.dev ~base:(chunk_base t c) Chunk.next - 1 in
      if prev <> none then t.list_next.(prev) <- c;
      relink c next
    end
  in
  relink none t.head;
  List.rev !remap

(* --- recovery-time decoding --------------------------------------------- *)

let scan dev ~base ~interleave =
  let alt = Pstruct.get dev ~base Hdr.alt in
  let head = Pstruct.get_elt dev ~base Hdr.ptrs alt - 1 in
  let normals : (entry_ref, scanned) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let c = ref head in
  while !c <> none do
    let cb = base + Pmem.Cacheline.size + (!c * chunk_bytes) in
    for s = 0 to entries_per_chunk - 1 do
      let v = Pstruct.get_elt dev ~base:cb Chunk.entries (slot_index ~interleave s) in
      if v <> 0L then begin
        let code, size4k, payload = decode v in
        let ref_ = (!c * ref_stride) + s in
        if code = code_tomb then Hashtbl.remove normals payload
        else
          match decode_kind code with
          | Some kind ->
              Hashtbl.replace normals ref_
                { ref_; kind; addr = payload * 4096; size = size4k * 4096 };
              order := ref_ :: !order
          | None -> ()
      end
    done;
    c := Pstruct.get dev ~base:cb Chunk.next - 1
  done;
  List.filter_map (Hashtbl.find_opt normals) (List.rev !order)

let scanned_chunks dev ~base =
  let alt = Pstruct.get dev ~base Hdr.alt in
  let head = Pstruct.get_elt dev ~base Hdr.ptrs alt - 1 in
  let n = ref 0 in
  let c = ref head in
  while !c <> none do
    incr n;
    let cb = base + Pmem.Cacheline.size + (!c * chunk_bytes) in
    c := Pstruct.get dev ~base:cb Chunk.next - 1
  done;
  !n

(* --- recovery reopen ------------------------------------------------------ *)

let open_existing ?(replicate = false) dev clock ~base ~chunks ~interleave =
  let alt = Pstruct.get dev ~base Hdr.alt in
  (* Chunks of the old chain: excluded from the fresh free pool so that a
     crash during compaction leaves the old chain fully replayable. *)
  let in_old = Array.make chunks false in
  let c = ref (Pstruct.get_elt dev ~base Hdr.ptrs alt - 1) in
  while !c <> none do
    in_old.(!c) <- true;
    c := Pstruct.get dev ~base:(base + Pmem.Cacheline.size + (!c * chunk_bytes)) Chunk.next - 1
  done;
  let live = scan dev ~base ~interleave in
  let t =
    {
      dev;
      base;
      nchunks = chunks;
      interleave;
      vchunks = Int_rb.create ();
      free = List.filter (fun i -> not in_old.(i)) (List.init chunks (fun i -> i));
      next_unused = chunks;
      head = none;
      tail = none;
      list_prev = Array.make chunks none;
      list_next = Array.make chunks none;
      tomb_index = Hashtbl.create 64;
      alt = 1 - alt;
      fast_runs = 0;
      slow_runs = 0;
      replicate;
    }
  in
  (* Compact the live entries into the new chain (section 4.4's slow GC on
     the bookkeeping log), then publish it with the alt-bit flip. *)
  let live' =
    List.map
      (fun s ->
        let new_ref = append_normal t clock s.kind ~addr:s.addr ~size:s.size in
        { s with ref_ = new_ref })
      live
  in
  Pstruct.set t.dev ~base:t.base Hdr.alt t.alt;
  commit_header t clock (Pstruct.span ~base:t.base Hdr.alt);
  (* The old chain is now garbage: hand its chunks to the free pool. *)
  for i = 0 to chunks - 1 do
    if in_old.(i) then t.free <- i :: t.free
  done;
  (t, live')

let verify_guard dev clock ~base ~chunks =
  Guard.verify_repair dev clock (guard_record ~base ~chunks)
