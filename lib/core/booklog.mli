(** Log-structured bookkeeping for large allocations (section 5.3).

    Instead of updating extent headers in place (small random writes all
    over the heap, section 3.3), NVAlloc appends each virtual-extent-header
    change to a persistent log with a strictly sequential write pattern.

    Layout: one header line (alt bit + two list-head pointers), then an
    array of 1 KB chunks. A chunk's first line holds its header (next
    pointer + active flag); its 15 remaining lines hold 8 B entries — 120
    per chunk. An entry packs 2 type bits (extent / slab / tombstone),
    a 26-bit size and a 36-bit address, both in 4 KB units, exactly the
    encoding the paper describes. A tombstone's address field carries the
    entry reference of the normal entry it deletes.

    Volatile vchunks mirror per-entry liveness in DRAM and are indexed by
    a red-black tree; freed chunks are kept on a free list.

    GC: {e fast GC} frees chunks with no live normal entries and no
    pending tombstones by unlinking them from the persistent list (one
    small flush) — tombstones whose target chunk is retired die with it.
    {e slow GC} rewrites all live entries into a fresh chunk list and
    flips the header's alt bit, reclaiming tombstone space; it returns the
    entry-reference remapping so the extent layer can re-point its VEHs.

    With interleaved mapping (Table 2), consecutive entries go to
    different lines of the chunk, avoiding append reflushes. *)

type t

type entry_ref = int
(** [chunk_index * 128 + logical_slot]. *)

type kind = Extent | Slab_extent

type scanned = { ref_ : entry_ref; kind : kind; addr : int; size : int }

val entries_per_chunk : int
(** 120. *)

val chunk_bytes : int
(** 1024. *)

val region_bytes : chunks:int -> int
(** Header line, chunk array, trailing guard-replica line. *)

val create : ?replicate:bool -> Pmem.Device.t -> base:int -> chunks:int -> interleave:bool -> t
(** Format a fresh log. [replicate] (default false) mirrors the header's
    guarded bytes (alt bit + list heads, checksummed at offset 12) into
    the trailing guard line after every header commit, enabling
    {!verify_guard} repair. *)

val open_existing :
  ?replicate:bool ->
  Pmem.Device.t ->
  Sim.Clock.t ->
  base:int ->
  chunks:int ->
  interleave:bool ->
  t * scanned list
(** Rebuild the volatile state (vchunks, free list, chain links) from a
    post-crash or post-shutdown image, performing the "slow GC on the
    persistent bookkeeping log to clean up its tombstone entries" that
    section 4.4 prescribes: live entries are compacted into a fresh chain
    (crash-safe: the old chain is untouched until the alt-bit flip) and
    returned with their {e new} references. Write latency of the
    compaction is charged to [clock]; the caller additionally charges the
    scan reads via {!scanned_chunks}. *)

val append_normal :
  t -> Sim.Clock.t -> kind -> addr:int -> size:int -> entry_ref
(** Log a live extent ([addr], [size] in bytes, 4 KB-aligned/multiples).
    One entry write + flush (category [Log]). *)

val append_tombstone : t -> Sim.Clock.t -> entry_ref -> unit
(** Log the deletion of a previously appended normal entry. *)

val chunks_in_use : t -> int
val capacity_chunks : t -> int

val needs_slow_gc : t -> threshold:float -> bool

val fast_gc : t -> Sim.Clock.t -> int
(** Returns the number of chunks freed. *)

val slow_gc : t -> Sim.Clock.t -> (entry_ref * entry_ref) list
(** Rewrites live entries; returns old-to-new reference remappings. *)

val fast_gc_runs : t -> int
val slow_gc_runs : t -> int

val scan : Pmem.Device.t -> base:int -> interleave:bool -> scanned list
(** Decode the live normal entries from the (post-crash) image by walking
    the active chunk list and applying tombstones, in log order.
    [interleave] must match the configuration the log was written with.
    Pure decoding; the caller charges read latency. *)

val scanned_chunks : Pmem.Device.t -> base:int -> int
(** Length of the active chunk list (for charging recovery reads). *)

val guard_record : base:int -> chunks:int -> Guard.record

val verify_guard : Pmem.Device.t -> Sim.Clock.t -> base:int -> chunks:int -> Guard.status
(** Verify/repair the header record. Recovery runs this before {!scan}/
    {!open_existing}, which read header fields and would raise
    [Media_error] on a poisoned line. Only meaningful for logs created
    with [replicate]. *)
