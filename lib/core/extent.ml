module Int_rb = Support.Rbtree.Make (struct
  type t = int

  let compare = compare
end)

module Size_rb = Support.Rbtree.Make (struct
  type t = int * int (* size, addr *)

  let compare = compare
end)

type mode = In_place | Logged of Booklog.t
type state = Activated | Reclaimed | Retained

type veh = {
  mutable addr : int;
  mutable size : int;
  mutable state : state;
  mutable kind : Booklog.kind;
  mutable log_ref : int;
  mutable node : veh Support.Dlist.node option;
  mutable free_time : float;
  region : int;
}

type region_info = { total : int; data_off : int; dedicated : bool }

let region_bytes = 4 * 1024 * 1024
let header_bytes = 16384 (* in-place region header area *)
let huge_threshold = 2 * 1024 * 1024

type t = {
  heap : Heap.t;
  dev : Pmem.Device.t;
  mode : mode;
  region_lock : Sim.Lock.t;
  on_new_extent : veh -> unit;
  on_drop_extent : veh -> unit;
  addr_tree : veh Int_rb.t;
  reclaimed_by_size : veh Size_rb.t;
  retained_by_size : veh Size_rb.t;
  activated : veh Support.Dlist.t;
  reclaimed : veh Support.Dlist.t; (* FIFO: oldest at the front *)
  retained : veh Support.Dlist.t;
  regions : (int, region_info) Hashtbl.t;
  ref_index : (int, veh) Hashtbl.t;
  mutable activated_bytes : int;
  mutable reclaimed_bytes : int;
  mutable retained_bytes : int;
  mutable reclaimed_peak : int;
  mutable last_decay : float;
  mutable tombs_since_fast_gc : int;
}

let round4k n = (n + 4095) land lnot 4095

let create heap ~mode ~region_lock ~on_new_extent ~on_drop_extent =
  {
    heap;
    dev = Heap.device heap;
    mode;
    region_lock;
    on_new_extent;
    on_drop_extent;
    addr_tree = Int_rb.create ();
    reclaimed_by_size = Size_rb.create ();
    retained_by_size = Size_rb.create ();
    activated = Support.Dlist.create ();
    reclaimed = Support.Dlist.create ();
    retained = Support.Dlist.create ();
    regions = Hashtbl.create 16;
    ref_index = Hashtbl.create 64;
    activated_bytes = 0;
    reclaimed_bytes = 0;
    retained_bytes = 0;
    reclaimed_peak = 0;
    last_decay = 0.0;
    tombs_since_fast_gc = 0;
  }

let booklog t = match t.mode with In_place -> None | Logged l -> Some l
let activated_bytes t = t.activated_bytes
let reclaimed_bytes t = t.reclaimed_bytes
let retained_bytes t = t.retained_bytes
let data_off t = match t.mode with In_place -> header_bytes | Logged _ -> 0

(* Charge a DRAM tree search of [n] elements. *)
let charge_search t clock n =
  let steps = 1 + (if n <= 1 then 0 else int_of_float (Float.log2 (float_of_int n))) in
  for _ = 1 to steps do
    Pmem.Device.search_step t.dev clock
  done

(* --- persistent bookkeeping -------------------------------------------- *)

(* In-place mode: one 8 B slot per possible extent start, in the region's
   header area. Persisted on activation (state 1 + size) and on free
   (cleared); recovery reads only state-1 slots. *)
module Veh = struct
  let nslots = header_bytes / 8
  let l = Pstruct.layout "extent.veh_slots"
  let slots = Pstruct.array l "slots" ~off:0 ~stride:8 ~count:nslots Pstruct.U32
  let () = Pstruct.seal l ~size:header_bytes
end

let slot_index t v =
  let off = v.addr - v.region - data_off t in
  assert (off >= 0 && off mod 4096 = 0);
  off / 4096

let read_slot dev ~region i = Pstruct.get_elt dev ~base:region Veh.slots i

let persist_activated t clock v =
  match t.mode with
  | Logged log ->
      v.log_ref <- Booklog.append_normal log clock v.kind ~addr:v.addr ~size:v.size
  | In_place ->
      let i = slot_index t v in
      Pstruct.set_elt t.dev ~base:v.region Veh.slots i ((v.size / 4096) lor (1 lsl 24));
      Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.elt_span ~base:v.region Veh.slots i)

let run_booklog_gc t clock log =
  t.tombs_since_fast_gc <- t.tombs_since_fast_gc + 1;
  if t.tombs_since_fast_gc >= Booklog.entries_per_chunk then begin
    t.tombs_since_fast_gc <- 0;
    ignore (Booklog.fast_gc log clock)
  end;
  if
    Booklog.needs_slow_gc log
      ~threshold:(Heap.config t.heap).Config.booklog_slow_gc_threshold
  then begin
    let remap = Booklog.slow_gc log clock in
    List.iter
      (fun (old_ref, new_ref) ->
        match Hashtbl.find_opt t.ref_index old_ref with
        | Some v ->
            Hashtbl.remove t.ref_index old_ref;
            v.log_ref <- new_ref;
            Hashtbl.replace t.ref_index new_ref v
        | None -> ())
      remap
  end

let persist_freed t clock v =
  match t.mode with
  | Logged log ->
      assert (v.log_ref >= 0);
      Booklog.append_tombstone log clock v.log_ref;
      Hashtbl.remove t.ref_index v.log_ref;
      v.log_ref <- -1;
      if (Heap.config t.heap).Config.booklog_gc then run_booklog_gc t clock log
  | In_place ->
      let i = slot_index t v in
      Pstruct.set_elt t.dev ~base:v.region Veh.slots i 0;
      Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.elt_span ~base:v.region Veh.slots i)

(* --- list/tree plumbing -------------------------------------------------- *)

let detach t v =
  (match v.node with
  | Some node ->
      let list =
        match v.state with
        | Activated -> t.activated
        | Reclaimed -> t.reclaimed
        | Retained -> t.retained
      in
      Support.Dlist.remove list node;
      v.node <- None
  | None -> ());
  match v.state with
  | Activated -> t.activated_bytes <- t.activated_bytes - v.size
  | Reclaimed ->
      Size_rb.remove t.reclaimed_by_size (v.size, v.addr);
      t.reclaimed_bytes <- t.reclaimed_bytes - v.size
  | Retained ->
      Size_rb.remove t.retained_by_size (v.size, v.addr);
      t.retained_bytes <- t.retained_bytes - v.size

let attach t v state =
  v.state <- state;
  (match state with
  | Activated ->
      v.node <- Some (Support.Dlist.push_back t.activated v);
      t.activated_bytes <- t.activated_bytes + v.size
  | Reclaimed ->
      v.node <- Some (Support.Dlist.push_back t.reclaimed v);
      Size_rb.insert t.reclaimed_by_size (v.size, v.addr) v;
      t.reclaimed_bytes <- t.reclaimed_bytes + v.size;
      if t.reclaimed_bytes > t.reclaimed_peak then t.reclaimed_peak <- t.reclaimed_bytes
  | Retained ->
      v.node <- Some (Support.Dlist.push_back t.retained v);
      Size_rb.insert t.retained_by_size (v.size, v.addr) v;
      t.retained_bytes <- t.retained_bytes + v.size);
  Int_rb.insert t.addr_tree v.addr v

let remove_everywhere t v =
  detach t v;
  Int_rb.remove t.addr_tree v.addr

(* Merge adjacent free neighbours in state [state] (within one region)
   into [v]; [v] must not be in any structure yet. *)
let coalesce t v ~state =
  let try_merge u =
    if u != v && u.region = v.region && u.state = state then
      if u.addr + u.size = v.addr then begin
        remove_everywhere t u;
        v.addr <- u.addr;
        v.size <- v.size + u.size;
        v.free_time <- Float.min v.free_time u.free_time;
        true
      end
      else if v.addr + v.size = u.addr then begin
        remove_everywhere t u;
        v.size <- v.size + u.size;
        v.free_time <- Float.min v.free_time u.free_time;
        true
      end
      else false
    else false
  in
  (match Int_rb.find_last_lt t.addr_tree v.addr with
  | Some (_, u) -> ignore (try_merge u)
  | None -> ());
  match Int_rb.find_opt t.addr_tree (v.addr + v.size) with
  | Some u -> ignore (try_merge u)
  | None -> ()

(* --- regions -------------------------------------------------------------- *)

let map_region t clock ~total ~dedicated =
  Sim.Lock.with_lock t.region_lock clock (fun () ->
      let base = Pmem.Dax.mmap (Heap.dax t.heap) clock ~size:total in
      Heap.register_region t.heap clock ~addr:base ~size:total;
      Hashtbl.replace t.regions base { total; data_off = data_off t; dedicated };
      base)

let unmap_region t clock base =
  Sim.Lock.with_lock t.region_lock clock (fun () ->
      let info = Hashtbl.find t.regions base in
      Heap.unregister_region t.heap clock ~addr:base;
      Pmem.Dax.munmap (Heap.dax t.heap) clock ~addr:base ~size:info.total;
      Hashtbl.remove t.regions base)

let region_data_size t base =
  let info = Hashtbl.find t.regions base in
  info.total - info.data_off

(* --- decay ---------------------------------------------------------------- *)

let release_retained t clock v =
  (* Only whole regions go back to the OS: partial unmaps would leave the
     persistent region table ambiguous for recovery. *)
  if v.size = region_data_size t v.region then begin
    remove_everywhere t v;
    unmap_region t clock v.region
  end

let decay_tick t clock =
  let now = Sim.Clock.now clock in
  let cfg = Heap.config t.heap in
  if now -. t.last_decay >= cfg.Config.decay_interval_ns then begin
    t.last_decay <- now;
    let window = cfg.Config.decay_window_ns in
    (* Reclaimed -> retained, under the smootherstep cap. *)
    let continue_ = ref true in
    while !continue_ do
      match Support.Dlist.peek_front t.reclaimed with
      | None -> continue_ := false
      | Some v ->
          let frac = (now -. v.free_time) /. window in
          let cap = Support.Smootherstep.limit ~total:t.reclaimed_peak ~elapsed_fraction:frac in
          if t.reclaimed_bytes > cap && frac > 0.0 then begin
            detach t v;
            Int_rb.remove t.addr_tree v.addr;
            Pmem.Dax.decommit (Heap.dax t.heap) clock ~addr:v.addr ~size:v.size;
            coalesce t v ~state:Retained;
            attach t v Retained
          end
          else continue_ := false
    done;
    (* Retained -> OS after a full window. *)
    let victims = ref [] in
    Support.Dlist.iter
      (fun v -> if now -. v.free_time >= window then victims := v :: !victims)
      t.retained;
    List.iter (fun v -> release_retained t clock v) !victims
  end

(* --- allocation ------------------------------------------------------------ *)

let fresh_veh ~addr ~size ~kind ~region ~now =
  {
    addr;
    size;
    state = Reclaimed;
    kind;
    log_ref = -1;
    node = None;
    free_time = now;
    region;
  }

(* Split [need] bytes off the front of free extent [v] (not in any
   structure); the remainder (if any) is re-attached in [v]'s state. *)
let split_front t v ~need ~remainder_state =
  assert (v.size >= need);
  if v.size = need then None
  else begin
    let rest =
      fresh_veh ~addr:(v.addr + need) ~size:(v.size - need) ~kind:Booklog.Extent
        ~region:v.region ~now:v.free_time
    in
    v.size <- need;
    attach t rest remainder_state;
    Some rest
  end

let activate t clock v kind =
  v.kind <- kind;
  attach t v Activated;
  persist_activated t clock v;
  (match t.mode with Logged _ -> Hashtbl.replace t.ref_index v.log_ref v | In_place -> ());
  t.on_new_extent v

let alloc_huge t clock ~size ~kind =
  let total = round4k (size + data_off t) in
  let base = map_region t clock ~total ~dedicated:true in
  let v =
    fresh_veh ~addr:(base + data_off t) ~size:(total - data_off t) ~kind ~region:base
      ~now:(Sim.Clock.now clock)
  in
  activate t clock v kind;
  v

let take_best_fit t clock tree ~need =
  charge_search t clock (Size_rb.cardinal tree);
  match Size_rb.find_first_geq tree (need, 0) with
  | None -> None
  | Some (_, v) ->
      detach t v;
      Int_rb.remove t.addr_tree v.addr;
      Some v

let malloc t clock ~size ~kind =
  decay_tick t clock;
  let need = round4k size in
  if need > huge_threshold then alloc_huge t clock ~size:need ~kind
  else
    match take_best_fit t clock t.reclaimed_by_size ~need with
    | Some v ->
        ignore (split_front t v ~need ~remainder_state:Reclaimed);
        activate t clock v kind;
        v
    | None -> (
        match take_best_fit t clock t.retained_by_size ~need with
        | Some v ->
            ignore (split_front t v ~need ~remainder_state:Retained);
            Pmem.Dax.recommit (Heap.dax t.heap) clock ~addr:v.addr ~size:v.size;
            activate t clock v kind;
            v
        | None ->
            let base = map_region t clock ~total:region_bytes ~dedicated:false in
            let v =
              fresh_veh ~addr:(base + data_off t) ~size:(region_bytes - data_off t)
                ~kind:Booklog.Extent ~region:base ~now:(Sim.Clock.now clock)
            in
            ignore (split_front t v ~need ~remainder_state:Reclaimed);
            activate t clock v kind;
            v)

let free t clock v =
  assert (v.state = Activated);
  charge_search t clock (Int_rb.cardinal t.addr_tree);
  detach t v;
  Int_rb.remove t.addr_tree v.addr;
  persist_freed t clock v;
  t.on_drop_extent v;
  let info = Hashtbl.find t.regions v.region in
  if info.dedicated then
    (* Dedicated huge region: straight back to the OS. *)
    unmap_region t clock v.region
  else begin
    v.free_time <- Sim.Clock.now clock;
    v.kind <- Booklog.Extent;
    coalesce t v ~state:Reclaimed;
    attach t v Reclaimed
  end;
  decay_tick t clock

(* --- recovery hooks --------------------------------------------------------- *)

let restore_region t ~base ~total =
  (* A region whose size differs from the default granularity was mapped
     for one huge object. *)
  Hashtbl.replace t.regions base
    { total; data_off = data_off t; dedicated = total <> region_bytes }

let restore_extent t ~addr ~size ~kind ~state ~log_ref ~region =
  (* Region totals are re-derived from the persistent region table by the
     recovery driver before extents are restored. *)
  assert (Hashtbl.mem t.regions region);
  let v = fresh_veh ~addr ~size ~kind ~region ~now:0.0 in
  v.log_ref <- log_ref;
  attach t v state;
  if state = Activated then begin
    if log_ref >= 0 then Hashtbl.replace t.ref_index log_ref v;
    t.on_new_extent v
  end;
  v
