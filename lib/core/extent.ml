module Int_rb = Support.Rbtree.Make (struct
  type t = int

  let compare = compare
end)

module Size_rb = Support.Rbtree.Make (struct
  type t = int * int (* size, addr *)

  let compare = compare
end)

module Time_rb = Support.Rbtree.Make (struct
  type t = float * int (* free_time, addr *)

  let compare = compare
end)

type mode = In_place | Logged of Booklog.t
type state = Activated | Reclaimed | Retained

type veh = {
  mutable addr : int;
  mutable size : int;
  mutable state : state;
  mutable kind : Booklog.kind;
  mutable log_ref : int;
  mutable free_time : float;
  region : int;
}

type pagedesc = {
  base : int;
  total : int;
  page_data_off : int;
  dedicated : bool;
  mutable activated_count : int;
}

let region_bytes = 4 * 1024 * 1024
let header_bytes = 16384 (* in-place region header area *)
let huge_threshold = 2 * 1024 * 1024

type t = {
  heap : Heap.t;
  dev : Pmem.Device.t;
  mode : mode;
  region_lock : Sim.Lock.t;
  on_new_extent : veh -> unit;
  on_drop_extent : veh -> unit;
  addr_tree : veh Int_rb.t;
  reclaimed_by_size : veh Size_rb.t;
  retained_by_size : veh Size_rb.t;
  reclaimed_by_time : veh Time_rb.t; (* oldest free first *)
  retained_by_time : veh Time_rb.t;
  pages : pagedesc Int_rb.t; (* keyed by region base *)
  ref_index : veh Int_rb.t; (* keyed by bookkeeping-log ref *)
  empty_pages : int Queue.t; (* bases to consider for whole-page release *)
  mutable activated_bytes : int;
  mutable reclaimed_bytes : int;
  mutable retained_bytes : int;
  mutable reclaimed_peak : int;
  mutable last_decay : float;
  mutable tombs_since_fast_gc : int;
}

let round4k n = (n + 4095) land lnot 4095

let create heap ~mode ~region_lock ~on_new_extent ~on_drop_extent =
  {
    heap;
    dev = Heap.device heap;
    mode;
    region_lock;
    on_new_extent;
    on_drop_extent;
    addr_tree = Int_rb.create ();
    reclaimed_by_size = Size_rb.create ();
    retained_by_size = Size_rb.create ();
    reclaimed_by_time = Time_rb.create ();
    retained_by_time = Time_rb.create ();
    pages = Int_rb.create ();
    ref_index = Int_rb.create ();
    empty_pages = Queue.create ();
    activated_bytes = 0;
    reclaimed_bytes = 0;
    retained_bytes = 0;
    reclaimed_peak = 0;
    last_decay = 0.0;
    tombs_since_fast_gc = 0;
  }

let booklog t = match t.mode with In_place -> None | Logged l -> Some l
let activated_bytes t = t.activated_bytes
let reclaimed_bytes t = t.reclaimed_bytes
let retained_bytes t = t.retained_bytes
let data_off t = match t.mode with In_place -> header_bytes | Logged _ -> 0

(* Charge a DRAM tree search of [n] elements and count it. With blame
   attribution on, the search steps land under an [extent:lookup] frame
   so tree-walk cost separates from the surrounding malloc/free. *)
let charge_search t clock n =
  Pmem.Device.note_extent_lookup t.dev;
  let steps = 1 + (if n <= 1 then 0 else int_of_float (Float.log2 (float_of_int n))) in
  let attr = Pmem.Device.attribution t.dev in
  (match attr with
  | None -> ()
  | Some a ->
      Telemetry.Attr.enter_named a ~tid:(Sim.Clock.id clock) ~name:"extent:lookup"
        ~ts:(Sim.Clock.now clock));
  for _ = 1 to steps do
    Pmem.Device.search_step t.dev clock
  done;
  match attr with
  | None -> ()
  | Some a -> Telemetry.Attr.leave a ~tid:(Sim.Clock.id clock) ~ts:(Sim.Clock.now clock)

(* A tree probe that costs no simulated time (neighbour peeks inside an
   operation already charged) still counts toward the lookup telemetry. *)
let note_lookup t = Pmem.Device.note_extent_lookup t.dev

let page_of t base = Int_rb.find_opt t.pages base

let page_of_addr t addr =
  note_lookup t;
  match Int_rb.find_last_leq t.pages addr with
  | Some (_, pd) when addr < pd.base + pd.total -> Some pd
  | Some _ | None -> None

let iter_pages t f = Int_rb.iter (fun _ pd -> f pd) t.pages
let page_count t = Int_rb.cardinal t.pages

(* --- persistent bookkeeping -------------------------------------------- *)

(* In-place mode: one 8 B slot per possible extent start, in the region's
   header area. Persisted on activation (state 1 + size) and on free
   (cleared); recovery reads only state-1 slots. *)
module Veh = struct
  let nslots = header_bytes / 8
  let l = Pstruct.layout "extent.veh_slots"
  let slots = Pstruct.array l "slots" ~off:0 ~stride:8 ~count:nslots Pstruct.U32
  let () = Pstruct.seal l ~size:header_bytes
end

let slot_index t v =
  let off = v.addr - v.region - data_off t in
  assert (off >= 0 && off mod 4096 = 0);
  off / 4096

let read_slot dev ~region i = Pstruct.get_elt dev ~base:region Veh.slots i

let persist_activated t clock v =
  match t.mode with
  | Logged log ->
      v.log_ref <- Booklog.append_normal log clock v.kind ~addr:v.addr ~size:v.size
  | In_place ->
      let i = slot_index t v in
      Pstruct.set_elt t.dev ~base:v.region Veh.slots i ((v.size / 4096) lor (1 lsl 24));
      Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.elt_span ~base:v.region Veh.slots i)

let run_booklog_gc t clock log =
  t.tombs_since_fast_gc <- t.tombs_since_fast_gc + 1;
  if t.tombs_since_fast_gc >= Booklog.entries_per_chunk then begin
    t.tombs_since_fast_gc <- 0;
    ignore (Booklog.fast_gc log clock)
  end;
  if
    Booklog.needs_slow_gc log
      ~threshold:(Heap.config t.heap).Config.booklog_slow_gc_threshold
  then begin
    let remap = Booklog.slow_gc log clock in
    List.iter
      (fun (old_ref, new_ref) ->
        note_lookup t;
        match Int_rb.find_opt t.ref_index old_ref with
        | Some v ->
            Int_rb.remove t.ref_index old_ref;
            v.log_ref <- new_ref;
            Int_rb.insert t.ref_index new_ref v
        | None -> ())
      remap
  end

let persist_freed t clock v =
  match t.mode with
  | Logged log ->
      assert (v.log_ref >= 0);
      Booklog.append_tombstone log clock v.log_ref;
      Int_rb.remove t.ref_index v.log_ref;
      v.log_ref <- -1;
      if (Heap.config t.heap).Config.booklog_gc then run_booklog_gc t clock log
  | In_place ->
      let i = slot_index t v in
      Pstruct.set_elt t.dev ~base:v.region Veh.slots i 0;
      Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.elt_span ~base:v.region Veh.slots i)

(* --- tree plumbing -------------------------------------------------------- *)

let page_data_size pd = pd.total - pd.page_data_off

(* A non-dedicated page whose data area collapsed back into one reclaimed
   extent: nothing of it is live, the whole region can go back to the OS. *)
let page_fully_free t pd =
  (not pd.dedicated) && pd.activated_count = 0
  && (note_lookup t;
      match Int_rb.find_opt t.addr_tree (pd.base + pd.page_data_off) with
      (* Either free state qualifies: the decay loop may retain the
         extent in the same tick that queued its page. *)
      | Some v -> v.state <> Activated && v.size = page_data_size pd
      | None -> false)

let detach t v =
  (match v.state with
  | Activated ->
      (match page_of t v.region with
      | Some pd -> pd.activated_count <- pd.activated_count - 1
      | None -> ());
      t.activated_bytes <- t.activated_bytes - v.size
  | Reclaimed ->
      Size_rb.remove t.reclaimed_by_size (v.size, v.addr);
      Time_rb.remove t.reclaimed_by_time (v.free_time, v.addr);
      t.reclaimed_bytes <- t.reclaimed_bytes - v.size
  | Retained ->
      Size_rb.remove t.retained_by_size (v.size, v.addr);
      Time_rb.remove t.retained_by_time (v.free_time, v.addr);
      t.retained_bytes <- t.retained_bytes - v.size);
  Int_rb.remove t.addr_tree v.addr

let attach t v state =
  v.state <- state;
  Int_rb.insert t.addr_tree v.addr v;
  match state with
  | Activated ->
      (match page_of t v.region with
      | Some pd -> pd.activated_count <- pd.activated_count + 1
      | None -> ());
      t.activated_bytes <- t.activated_bytes + v.size
  | Reclaimed ->
      Size_rb.insert t.reclaimed_by_size (v.size, v.addr) v;
      Time_rb.insert t.reclaimed_by_time (v.free_time, v.addr) v;
      t.reclaimed_bytes <- t.reclaimed_bytes + v.size;
      if t.reclaimed_bytes > t.reclaimed_peak then t.reclaimed_peak <- t.reclaimed_bytes;
      (match page_of t v.region with
      | Some pd -> if page_fully_free t pd then Queue.add pd.base t.empty_pages
      | None -> ())
  | Retained ->
      Size_rb.insert t.retained_by_size (v.size, v.addr) v;
      Time_rb.insert t.retained_by_time (v.free_time, v.addr) v;
      t.retained_bytes <- t.retained_bytes + v.size;
      (* A page split between reclaimed and retained halves only becomes
         one spanning free extent after retention coalesces them: queue
         the hint here too so it does not wait out the full window. *)
      (match page_of t v.region with
      | Some pd -> if page_fully_free t pd then Queue.add pd.base t.empty_pages
      | None -> ())

(* Merge adjacent free neighbours in state [state] (within one page) into
   [v]; [v] must not be in any structure yet. Neighbours come from floor /
   exact probes of the address tree, O(log n) each. *)
let coalesce t v ~state =
  let try_merge u =
    if u != v && u.region = v.region && u.state = state then begin
      if u.addr + u.size = v.addr then begin
        detach t u;
        v.addr <- u.addr;
        v.size <- v.size + u.size;
        v.free_time <- Float.min v.free_time u.free_time;
        Pmem.Device.note_extent_coalesced t.dev
      end
      else if v.addr + v.size = u.addr then begin
        detach t u;
        v.size <- v.size + u.size;
        v.free_time <- Float.min v.free_time u.free_time;
        Pmem.Device.note_extent_coalesced t.dev
      end
    end
  in
  note_lookup t;
  (match Int_rb.find_last_lt t.addr_tree v.addr with
  | Some (_, u) -> try_merge u
  | None -> ());
  note_lookup t;
  match Int_rb.find_opt t.addr_tree (v.addr + v.size) with
  | Some u -> try_merge u
  | None -> ()

(* --- pages ---------------------------------------------------------------- *)

let map_region t clock ~total ~dedicated =
  Sim.Lock.with_lock t.region_lock clock (fun () ->
      let base = Pmem.Dax.mmap (Heap.dax t.heap) clock ~size:total in
      Heap.register_region t.heap clock ~addr:base ~size:total;
      Int_rb.insert t.pages base
        { base; total; page_data_off = data_off t; dedicated; activated_count = 0 };
      base)

let unmap_region ?(decommitted = 0) t clock base =
  Sim.Lock.with_lock t.region_lock clock (fun () ->
      let pd = Option.get (page_of t base) in
      Heap.unregister_region t.heap clock ~addr:base;
      Pmem.Dax.munmap (Heap.dax t.heap) clock ~decommitted ~addr:base ~size:pd.total ();
      Int_rb.remove t.pages base)

let region_data_size t base = page_data_size (Option.get (page_of t base))

(* --- decay ---------------------------------------------------------------- *)

let release_retained t clock v =
  (* Only whole regions go back to the OS: partial unmaps would leave the
     persistent region table ambiguous for recovery. *)
  if v.size = region_data_size t v.region then begin
    detach t v;
    (* Retained extents were decommitted on retention: only the header
       area still counts as mapped. *)
    unmap_region ~decommitted:v.size t clock v.region
  end

(* Whole-page release: a page queued when its last live extent died is
   unmapped once the decay interval comes around, so churn-heavy phases
   give address space back instead of pinning one reclaimed extent per
   dead slab (the fragmentation Figure 15 measures). The queue entry is a
   hint — the page is re-checked here because an allocation may have
   carved the extent up again in the meantime. *)
let drain_empty_pages t clock =
  let rec go () =
    match Queue.take_opt t.empty_pages with
    | None -> ()
    | Some base ->
        (match page_of t base with
        | Some pd when page_fully_free t pd -> (
            match Int_rb.find_opt t.addr_tree (pd.base + pd.page_data_off) with
            | Some v ->
                let decommitted = if v.state = Retained then v.size else 0 in
                detach t v;
                unmap_region ~decommitted t clock base
            | None -> ())
        | Some _ | None -> ());
        go ()
  in
  go ()

let decay_tick t clock =
  let now = Sim.Clock.now clock in
  let cfg = Heap.config t.heap in
  if now -. t.last_decay >= cfg.Config.decay_interval_ns then begin
    t.last_decay <- now;
    let window = cfg.Config.decay_window_ns in
    (* Reclaimed -> retained, oldest free first, under the smootherstep
       cap; the time-keyed tree replaces the FIFO list. *)
    let continue_ = ref true in
    while !continue_ do
      match Time_rb.min_binding_opt t.reclaimed_by_time with
      | None -> continue_ := false
      | Some (_, v) ->
          let frac = (now -. v.free_time) /. window in
          let cap = Support.Smootherstep.limit ~total:t.reclaimed_peak ~elapsed_fraction:frac in
          if t.reclaimed_bytes > cap && frac > 0.0 then begin
            detach t v;
            Pmem.Dax.decommit (Heap.dax t.heap) clock ~addr:v.addr ~size:v.size;
            coalesce t v ~state:Retained;
            attach t v Retained
          end
          else continue_ := false
    done;
    (* Retained -> OS after a full window: walk the time tree in order and
       stop at the first extent still inside the window. *)
    let victims = ref [] in
    let rec collect key =
      note_lookup t;
      match Time_rb.find_first_geq t.retained_by_time key with
      | Some ((ft, addr), v) when now -. ft >= window ->
          victims := v :: !victims;
          collect (ft, addr + 1)
      | Some _ | None -> ()
    in
    collect (Float.neg_infinity, 0);
    List.iter (fun v -> release_retained t clock v) !victims;
    drain_empty_pages t clock
  end

(* --- allocation ------------------------------------------------------------ *)

let fresh_veh ~addr ~size ~kind ~region ~now =
  { addr; size; state = Reclaimed; kind; log_ref = -1; free_time = now; region }

(* Split [need] bytes off the front of free extent [v] (not in any
   structure); the remainder (if any) is re-attached in [v]'s state. *)
let split_front t v ~need ~remainder_state =
  assert (v.size >= need);
  if v.size = need then None
  else begin
    let rest =
      fresh_veh ~addr:(v.addr + need) ~size:(v.size - need) ~kind:Booklog.Extent
        ~region:v.region ~now:v.free_time
    in
    v.size <- need;
    attach t rest remainder_state;
    Some rest
  end

let activate t clock v kind =
  v.kind <- kind;
  attach t v Activated;
  persist_activated t clock v;
  (match t.mode with Logged _ -> Int_rb.insert t.ref_index v.log_ref v | In_place -> ());
  t.on_new_extent v

let alloc_huge t clock ~size ~kind =
  let total = round4k (size + data_off t) in
  let base = map_region t clock ~total ~dedicated:true in
  let v =
    fresh_veh ~addr:(base + data_off t) ~size:(total - data_off t) ~kind ~region:base
      ~now:(Sim.Clock.now clock)
  in
  activate t clock v kind;
  v

let take_best_fit t clock tree ~need =
  charge_search t clock (Size_rb.cardinal tree);
  match Size_rb.find_first_geq tree (need, 0) with
  | None -> None
  | Some (_, v) ->
      detach t v;
      Some v

let malloc t clock ~size ~kind =
  decay_tick t clock;
  let need = round4k size in
  if need > huge_threshold then alloc_huge t clock ~size:need ~kind
  else
    match take_best_fit t clock t.reclaimed_by_size ~need with
    | Some v ->
        ignore (split_front t v ~need ~remainder_state:Reclaimed);
        activate t clock v kind;
        v
    | None -> (
        match take_best_fit t clock t.retained_by_size ~need with
        | Some v ->
            ignore (split_front t v ~need ~remainder_state:Retained);
            Pmem.Dax.recommit (Heap.dax t.heap) clock ~addr:v.addr ~size:v.size;
            activate t clock v kind;
            v
        | None ->
            let base = map_region t clock ~total:region_bytes ~dedicated:false in
            let v =
              fresh_veh ~addr:(base + data_off t) ~size:(region_bytes - data_off t)
                ~kind:Booklog.Extent ~region:base ~now:(Sim.Clock.now clock)
            in
            ignore (split_front t v ~need ~remainder_state:Reclaimed);
            activate t clock v kind;
            v)

let free t clock v =
  assert (v.state = Activated);
  charge_search t clock (Int_rb.cardinal t.addr_tree);
  detach t v;
  persist_freed t clock v;
  t.on_drop_extent v;
  let pd = Option.get (page_of t v.region) in
  if pd.dedicated then
    (* Dedicated huge region: straight back to the OS. *)
    unmap_region t clock v.region
  else begin
    v.free_time <- Sim.Clock.now clock;
    v.kind <- Booklog.Extent;
    coalesce t v ~state:Reclaimed;
    attach t v Reclaimed
  end;
  decay_tick t clock

(* --- recovery hooks --------------------------------------------------------- *)

let restore_region t ~base ~total =
  (* A region whose size differs from the default granularity was mapped
     for one huge object. *)
  Int_rb.insert t.pages base
    {
      base;
      total;
      page_data_off = data_off t;
      dedicated = total <> region_bytes;
      activated_count = 0;
    }

let restore_extent t ~addr ~size ~kind ~state ~log_ref ~region =
  (* Region totals are re-derived from the persistent region table by the
     recovery driver before extents are restored. *)
  assert (Int_rb.mem t.pages region);
  let v = fresh_veh ~addr ~size ~kind ~region ~now:0.0 in
  v.log_ref <- log_ref;
  attach t v state;
  if state = Activated then begin
    if log_ref >= 0 then Int_rb.insert t.ref_index log_ref v;
    t.on_new_extent v
  end;
  v
