type state = Running | Shutdown | Recovering

let magic = 0x4E564131 (* "NVA1" *)
let region_slots = 4096
let superblock_bytes = 4096
let region_table_off = superblock_bytes
let region_table_bytes = region_slots * 8

(* Guard areas for the region table: a full mirror (the "extent records"
   replica) plus one u16 content checksum per region-table cache line,
   shared by primary and mirror. Space is always reserved (the layout
   must not depend on the config), maintenance is gated on
   [Config.media_replication]. *)
let region_lines = region_table_bytes / Pmem.Cacheline.size
let region_mirror_off = region_table_off + region_table_bytes
let region_ck_off = region_mirror_off + region_table_bytes
let region_ck_bytes = region_lines * 2
let root_table_off = (region_ck_off + region_ck_bytes + 4095) land lnot 4095

type t = {
  dev : Pmem.Device.t;
  dax : Pmem.Dax.t;
  config : Config.t;
  replicate : bool;
  wal_off : int;
  wal_stride : int;
  booklog_off : int;
  booklog_stride : int;
  heap_start : int;
}

(* Superblock layout, at device address 0. Bytes 0..7 (magic, arenas,
   state, one pad byte) are guarded by the checksum at offset 8; the
   replica lives on the superblock page's second cache line. *)
module Sb = struct
  let l = Pstruct.layout "heap.superblock"
  let magic = Pstruct.u32 l "magic" ~off:0
  let arenas = Pstruct.u16 l "arenas" ~off:4
  let state = Pstruct.u8 l "state" ~off:6
  let cksum = Pstruct.u16 l "cksum" ~off:8
  let () = Pstruct.seal l ~size:superblock_bytes
end

let _ = Sb.cksum

let sb_guard =
  {
    Guard.primary = 0;
    len = 8;
    p_ck = 8;
    replica = Pmem.Cacheline.size;
    r_ck = Pmem.Cacheline.size + 8;
    cat = Pmem.Stats.Meta;
  }

let region_guard line =
  assert (line >= 0 && line < region_lines);
  {
    Guard.primary = region_table_off + (line * Pmem.Cacheline.size);
    len = Pmem.Cacheline.size;
    p_ck = region_ck_off + (line * 2);
    replica = region_mirror_off + (line * Pmem.Cacheline.size);
    r_ck = region_ck_off + (line * 2);
    cat = Pmem.Stats.Meta;
  }

(* Region table: [region_slots] packed slots right after the superblock. *)
module Rt = struct
  let l = Pstruct.layout "heap.region_table"
  let slots = Pstruct.array l "slots" ~off:0 ~count:region_slots Pstruct.I64
  let () = Pstruct.seal l ~size:region_table_bytes
end

let state_code = function Running -> 0 | Shutdown -> 1 | Recovering -> 2

let state_of_code = function
  | 0 -> Running
  | 1 -> Shutdown
  | 2 -> Recovering
  | _ -> invalid_arg "Heap.state_of_code"

let page_align n = (n + 4095) land lnot 4095

let layout dev (config : Config.t) =
  let wal_off = page_align (root_table_off + (config.root_slots * 8)) in
  let wal_stride = page_align (Wal.region_bytes ~entries:config.wal_entries) in
  let booklog_off = wal_off + (config.arenas * wal_stride) in
  let booklog_stride = page_align (Booklog.region_bytes ~chunks:config.booklog_chunks) in
  let heap_start = booklog_off + (config.arenas * booklog_stride) in
  assert (heap_start < Pmem.Device.size dev);
  (wal_off, wal_stride, booklog_off, booklog_stride, heap_start)

let init dev config =
  let wal_off, wal_stride, booklog_off, booklog_stride, heap_start = layout dev config in
  let replicate = config.Config.media_replication in
  Pstruct.set dev ~base:0 Sb.magic magic;
  Pstruct.set dev ~base:0 Sb.arenas config.Config.arenas;
  Pstruct.set dev ~base:0 Sb.state (state_code Running);
  Guard.refresh dev sb_guard;
  Pmem.Device.fill dev region_table_off region_table_bytes '\000';
  if replicate then begin
    (* Birth the guard areas valid: mirror = primary = zeros, and every
       per-line checksum holds the zero-line sum, so scrub and recovery
       verify untouched lines uniformly (no "never written" special
       case). The superblock replica is synced by the first commit's
       caller ([Nvalloc.create] persists the whole init image). *)
    Pmem.Device.fill dev region_mirror_off region_table_bytes '\000';
    let zero_sum = Pmem.Device.sum16 dev ~addr:region_table_off ~len:Pmem.Cacheline.size in
    for line = 0 to region_lines - 1 do
      Pmem.Device.write_u16 dev (region_ck_off + (line * 2)) zero_sum
    done;
    Pmem.Device.blit dev ~src:sb_guard.Guard.primary ~dst:sb_guard.Guard.replica
      ~len:(sb_guard.Guard.len + 2)
  end;
  let dax = Pmem.Dax.create ~start:heap_start dev in
  { dev; dax; config; replicate; wal_off; wal_stride; booklog_off; booklog_stride; heap_start }

let open_existing dev config =
  (* A failed magic check on a checksum-"valid" superblock is media
     corruption that slipped past the guard (e.g. a blessed line): name
     it, don't assert — the fuzzer's oracle reports this message. *)
  if Pstruct.get dev ~base:0 Sb.magic <> magic then
    failwith
      (Printf.sprintf "Heap.open_existing: bad superblock magic 0x%x (corrupt image)"
         (Pstruct.get dev ~base:0 Sb.magic));
  if Pstruct.get dev ~base:0 Sb.arenas <> config.Config.arenas then
    failwith
      (Printf.sprintf "Heap.open_existing: superblock records %d arenas, config has %d"
         (Pstruct.get dev ~base:0 Sb.arenas) config.Config.arenas);
  let found = state_of_code (Pstruct.get dev ~base:0 Sb.state) in
  let wal_off, wal_stride, booklog_off, booklog_stride, heap_start = layout dev config in
  let replicate = config.Config.media_replication in
  let dax = Pmem.Dax.create ~start:heap_start dev in
  let t =
    { dev; dax; config; replicate; wal_off; wal_stride; booklog_off; booklog_stride; heap_start }
  in
  (found, t)

let device t = t.dev
let dax t = t.dax
let config t = t.config

let set_state t clock s =
  Pstruct.set t.dev ~base:0 Sb.state (state_code s);
  (* The checksum shares the superblock's first line: refreshing it rides
     the state commit for free. *)
  Guard.refresh t.dev sb_guard;
  Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.span ~base:0 Sb.state);
  if t.replicate then Guard.write_replica t.dev clock sb_guard

let root_addr t i =
  assert (i >= 0 && i < t.config.Config.root_slots);
  root_table_off + (i * 8)

let root_slots t = t.config.Config.root_slots

let wal_base t ~arena =
  assert (arena >= 0 && arena < t.config.Config.arenas);
  t.wal_off + (arena * t.wal_stride)

let booklog_base t ~arena =
  assert (arena >= 0 && arena < t.config.Config.arenas);
  t.booklog_off + (arena * t.booklog_stride)

let heap_start t = t.heap_start

(* --- region table ------------------------------------------------------- *)

(* Slot: low 20 bits size in 4 KB units, high bits base in 4 KB units;
   0 = free slot. *)
let encode_region ~addr ~size =
  assert (addr mod 4096 = 0 && size mod 4096 = 0 && size > 0);
  Int64.logor (Int64.of_int (size / 4096)) (Int64.shift_left (Int64.of_int (addr / 4096)) 20)

let decode_region v =
  let size = Int64.to_int (Int64.logand v 0xFFFFFL) * 4096 in
  let addr = Int64.to_int (Int64.shift_right_logical v 20) * 4096 in
  (addr, size)

let read_slot dev i = Pstruct.get_elt dev ~base:region_table_off Rt.slots i

let write_slot t clock i v =
  Pstruct.set_elt t.dev ~base:region_table_off Rt.slots i v;
  (* Replica-first ordering: the new line content is staged into the
     mirror and checksum and persisted (deferred under batching — the
     commit below drains it first) strictly before the primary slot
     commits. A crash between the two leaves either (old, old) or a
     checksum that matches only the mirror, so the repair path rolls the
     slot write forward atomically — never a torn region record. *)
  if t.replicate then begin
    let r = region_guard (i * 8 / Pmem.Cacheline.size) in
    Guard.refresh t.dev r;
    Guard.write_replica t.dev clock r
  end;
  Pstruct.commit t.dev clock Pmem.Stats.Meta
    (Pstruct.elt_span ~base:region_table_off Rt.slots i)

let register_region t clock ~addr ~size =
  let rec find i =
    if i >= region_slots then failwith "Heap.register_region: region table full"
    else if read_slot t.dev i = 0L then i
    else find (i + 1)
  in
  write_slot t clock (find 0) (encode_region ~addr ~size)

let unregister_region t clock ~addr =
  let rec find i =
    if i >= region_slots then failwith "Heap.unregister_region: not found"
    else
      let v = read_slot t.dev i in
      if v <> 0L && fst (decode_region v) = addr then i else find (i + 1)
  in
  write_slot t clock (find 0) 0L

let read_regions dev =
  let acc = ref [] in
  for i = region_slots - 1 downto 0 do
    let v = read_slot dev i in
    if v <> 0L then acc := decode_region v :: !acc
  done;
  !acc

let regions t = read_regions t.dev

(* --- media verification ------------------------------------------------ *)

let replicated t = t.replicate
let verify_superblock dev clock = Guard.verify_repair dev clock sb_guard

let verify_regions dev clock =
  let repaired = ref 0 and lost = ref 0 in
  for line = 0 to region_lines - 1 do
    match Guard.verify_repair dev clock (region_guard line) with
    | Guard.Clean -> ()
    | Guard.Repaired -> incr repaired
    | Guard.Lost -> incr lost
  done;
  (!repaired, !lost)
