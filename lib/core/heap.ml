type state = Running | Shutdown | Recovering

let magic = 0x4E564131 (* "NVA1" *)
let region_slots = 4096
let superblock_bytes = 4096
let region_table_off = superblock_bytes
let region_table_bytes = region_slots * 8
let root_table_off = region_table_off + region_table_bytes

type t = {
  dev : Pmem.Device.t;
  dax : Pmem.Dax.t;
  config : Config.t;
  wal_off : int;
  wal_stride : int;
  booklog_off : int;
  booklog_stride : int;
  heap_start : int;
}

(* Superblock layout, at device address 0. *)
module Sb = struct
  let l = Pstruct.layout "heap.superblock"
  let magic = Pstruct.u32 l "magic" ~off:0
  let arenas = Pstruct.u16 l "arenas" ~off:4
  let state = Pstruct.u8 l "state" ~off:6
  let () = Pstruct.seal l ~size:superblock_bytes
end

(* Region table: [region_slots] packed slots right after the superblock. *)
module Rt = struct
  let l = Pstruct.layout "heap.region_table"
  let slots = Pstruct.array l "slots" ~off:0 ~count:region_slots Pstruct.I64
  let () = Pstruct.seal l ~size:region_table_bytes
end

let state_code = function Running -> 0 | Shutdown -> 1 | Recovering -> 2

let state_of_code = function
  | 0 -> Running
  | 1 -> Shutdown
  | 2 -> Recovering
  | _ -> invalid_arg "Heap.state_of_code"

let page_align n = (n + 4095) land lnot 4095

let layout dev (config : Config.t) =
  let wal_off = page_align (root_table_off + (config.root_slots * 8)) in
  let wal_stride = page_align (Wal.region_bytes ~entries:config.wal_entries) in
  let booklog_off = wal_off + (config.arenas * wal_stride) in
  let booklog_stride = page_align (Booklog.region_bytes ~chunks:config.booklog_chunks) in
  let heap_start = booklog_off + (config.arenas * booklog_stride) in
  assert (heap_start < Pmem.Device.size dev);
  (wal_off, wal_stride, booklog_off, booklog_stride, heap_start)

let init dev config =
  let wal_off, wal_stride, booklog_off, booklog_stride, heap_start = layout dev config in
  Pstruct.set dev ~base:0 Sb.magic magic;
  Pstruct.set dev ~base:0 Sb.arenas config.Config.arenas;
  Pstruct.set dev ~base:0 Sb.state (state_code Running);
  Pmem.Device.fill dev region_table_off region_table_bytes '\000';
  let dax = Pmem.Dax.create ~start:heap_start dev in
  { dev; dax; config; wal_off; wal_stride; booklog_off; booklog_stride; heap_start }

let open_existing dev config =
  assert (Pstruct.get dev ~base:0 Sb.magic = magic);
  assert (Pstruct.get dev ~base:0 Sb.arenas = config.Config.arenas);
  let found = state_of_code (Pstruct.get dev ~base:0 Sb.state) in
  let wal_off, wal_stride, booklog_off, booklog_stride, heap_start = layout dev config in
  let dax = Pmem.Dax.create ~start:heap_start dev in
  let t = { dev; dax; config; wal_off; wal_stride; booklog_off; booklog_stride; heap_start } in
  (found, t)

let device t = t.dev
let dax t = t.dax
let config t = t.config

let set_state t clock s =
  Pstruct.set t.dev ~base:0 Sb.state (state_code s);
  Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.span ~base:0 Sb.state)

let root_addr t i =
  assert (i >= 0 && i < t.config.Config.root_slots);
  root_table_off + (i * 8)

let root_slots t = t.config.Config.root_slots

let wal_base t ~arena =
  assert (arena >= 0 && arena < t.config.Config.arenas);
  t.wal_off + (arena * t.wal_stride)

let booklog_base t ~arena =
  assert (arena >= 0 && arena < t.config.Config.arenas);
  t.booklog_off + (arena * t.booklog_stride)

let heap_start t = t.heap_start

(* --- region table ------------------------------------------------------- *)

(* Slot: low 20 bits size in 4 KB units, high bits base in 4 KB units;
   0 = free slot. *)
let encode_region ~addr ~size =
  assert (addr mod 4096 = 0 && size mod 4096 = 0 && size > 0);
  Int64.logor (Int64.of_int (size / 4096)) (Int64.shift_left (Int64.of_int (addr / 4096)) 20)

let decode_region v =
  let size = Int64.to_int (Int64.logand v 0xFFFFFL) * 4096 in
  let addr = Int64.to_int (Int64.shift_right_logical v 20) * 4096 in
  (addr, size)

let read_slot dev i = Pstruct.get_elt dev ~base:region_table_off Rt.slots i

let write_slot t clock i v =
  Pstruct.set_elt t.dev ~base:region_table_off Rt.slots i v;
  Pstruct.commit t.dev clock Pmem.Stats.Meta
    (Pstruct.elt_span ~base:region_table_off Rt.slots i)

let register_region t clock ~addr ~size =
  let rec find i =
    if i >= region_slots then failwith "Heap.register_region: region table full"
    else if read_slot t.dev i = 0L then i
    else find (i + 1)
  in
  write_slot t clock (find 0) (encode_region ~addr ~size)

let unregister_region t clock ~addr =
  let rec find i =
    if i >= region_slots then failwith "Heap.unregister_region: not found"
    else
      let v = read_slot t.dev i in
      if v <> 0L && fst (decode_region v) = addr then i else find (i + 1)
  in
  write_slot t clock (find 0) 0L

let read_regions dev =
  let acc = ref [] in
  for i = region_slots - 1 downto 0 do
    let v = read_slot dev i in
    if v <> 0L then acc := decode_region v :: !acc
  done;
  !acc

let regions t = read_regions t.dev
