type mapping = Sequential | Interleaved of int

type t = {
  base : int;
  nbits : int;
  lines : int;
  mapping : mapping;
  bytes_a : int Pstruct.arr; (* the bitmap as a u8 array, base-relative *)
}

let bits_per_line = Pmem.Cacheline.size * 8

let lines_for ~nbits ~mapping =
  let minimum = (nbits + bits_per_line - 1) / bits_per_line in
  let minimum = max 1 minimum in
  match mapping with
  | Sequential -> minimum
  | Interleaved stripes ->
      assert (stripes >= 1);
      (* No point in more stripes than blocks. *)
      max minimum (min stripes (max 1 nbits))

let make ~base ~nbits ~mapping =
  assert (base mod Pmem.Cacheline.size = 0);
  assert (nbits > 0);
  let lines = lines_for ~nbits ~mapping in
  let l = Pstruct.layout "bitmap" in
  let bytes_a = Pstruct.array l "bits" ~off:0 ~count:(lines * Pmem.Cacheline.size) Pstruct.U8 in
  Pstruct.seal l ~size:(lines * Pmem.Cacheline.size);
  { base; nbits; lines; mapping; bytes_a }

let bytes t = t.lines * Pmem.Cacheline.size

let bit_location t b =
  assert (b >= 0 && b < t.nbits);
  match t.mapping with
  | Sequential -> (b / bits_per_line, b mod bits_per_line)
  | Interleaved _ -> (b mod t.lines, b / t.lines)

let line_addr t b =
  let line, _ = bit_location t b in
  t.base + (line * Pmem.Cacheline.size)

let bit_span t b =
  Pstruct.span_of ~addr:(line_addr t b) ~len:Pmem.Cacheline.size

let byte_and_mask t b =
  let line, idx = bit_location t b in
  let byte = (line * Pmem.Cacheline.size) + (idx / 8) in
  (byte, 1 lsl (idx mod 8))

let set dev t b =
  let byte, mask = byte_and_mask t b in
  Pstruct.set_elt dev ~base:t.base t.bytes_a byte
    (Pstruct.get_elt dev ~base:t.base t.bytes_a byte lor mask)

let clear dev t b =
  let byte, mask = byte_and_mask t b in
  Pstruct.set_elt dev ~base:t.base t.bytes_a byte
    (Pstruct.get_elt dev ~base:t.base t.bytes_a byte land lnot mask)

let get dev t b =
  let byte, mask = byte_and_mask t b in
  Pstruct.get_elt dev ~base:t.base t.bytes_a byte land mask <> 0

let clear_all dev t = Pmem.Device.fill dev t.base (bytes t) '\000'

let popcount dev t =
  let n = ref 0 in
  for b = 0 to t.nbits - 1 do
    if get dev t b then incr n
  done;
  !n

let iter_set dev t f =
  for b = 0 to t.nbits - 1 do
    if get dev t b then f b
  done
