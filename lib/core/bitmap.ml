type mapping = Sequential | Interleaved of int

type t = {
  base : int;
  nbits : int;
  lines : int;
  mapping : mapping;
  bytes_a : int Pstruct.arr; (* the bitmap as a u8 array, base-relative *)
}

let bits_per_line = Pmem.Cacheline.size * 8

let lines_for ~nbits ~mapping =
  let minimum = (nbits + bits_per_line - 1) / bits_per_line in
  let minimum = max 1 minimum in
  match mapping with
  | Sequential -> minimum
  | Interleaved stripes ->
      assert (stripes >= 1);
      (* No point in more stripes than blocks. *)
      max minimum (min stripes (max 1 nbits))

let make ~base ~nbits ~mapping =
  assert (base mod Pmem.Cacheline.size = 0);
  assert (nbits > 0);
  let lines = lines_for ~nbits ~mapping in
  let l = Pstruct.layout "bitmap" in
  let bytes_a = Pstruct.array l "bits" ~off:0 ~count:(lines * Pmem.Cacheline.size) Pstruct.U8 in
  Pstruct.seal l ~size:(lines * Pmem.Cacheline.size);
  { base; nbits; lines; mapping; bytes_a }

let bytes t = t.lines * Pmem.Cacheline.size

let bit_location t b =
  assert (b >= 0 && b < t.nbits);
  match t.mapping with
  | Sequential -> (b / bits_per_line, b mod bits_per_line)
  | Interleaved _ -> (b mod t.lines, b / t.lines)

let line_addr t b =
  let line, _ = bit_location t b in
  t.base + (line * Pmem.Cacheline.size)

let bit_span t b =
  Pstruct.span_of ~addr:(line_addr t b) ~len:Pmem.Cacheline.size

let byte_and_mask t b =
  let line, idx = bit_location t b in
  let byte = (line * Pmem.Cacheline.size) + (idx / 8) in
  (byte, 1 lsl (idx mod 8))

let set dev t b =
  let byte, mask = byte_and_mask t b in
  Pstruct.set_elt dev ~base:t.base t.bytes_a byte
    (Pstruct.get_elt dev ~base:t.base t.bytes_a byte lor mask)

let clear dev t b =
  let byte, mask = byte_and_mask t b in
  Pstruct.set_elt dev ~base:t.base t.bytes_a byte
    (Pstruct.get_elt dev ~base:t.base t.bytes_a byte land lnot mask)

let get dev t b =
  let byte, mask = byte_and_mask t b in
  Pstruct.get_elt dev ~base:t.base t.bytes_a byte land mask <> 0

let clear_all dev t = Pmem.Device.fill dev t.base (bytes t) '\000'

let popcount dev t =
  let n = ref 0 in
  for b = 0 to t.nbits - 1 do
    if get dev t b then incr n
  done;
  !n

let iter_set dev t f =
  for b = 0 to t.nbits - 1 do
    if get dev t b then f b
  done

(* Word-level scans (section 5.1): the bitmap bytes are little-endian, so
   bit [p] of an 8-byte word read at byte offset [o] is the same bit as
   byte [o + p/8], mask [1 lsl (p mod 8)] — in-line bit index [o*8 + p].
   Full words compare equal to all-ones and are skipped in one step. *)

let words_per_line = Pmem.Cacheline.size / 8

let read_word dev t ~line ~word =
  Pmem.Device.read_int64 dev (t.base + (line * Pmem.Cacheline.size) + (word * 8))

(* Bit indices >= [valid] within the line do not map to any block; read
   them as ones so the scan never reports them. [lo] is the in-line bit
   index of the word's bit 0. *)
let mask_invalid w ~lo ~valid =
  if valid >= lo + 64 then w
  else if valid <= lo then Int64.minus_one
  else Int64.logor w (Int64.shift_left Int64.minus_one (valid - lo))

let first_zero_bit w =
  if Int64.equal w Int64.minus_one then None
  else begin
    let j = ref 0 in
    while Int64.logand (Int64.shift_right_logical w !j) 1L <> 0L do
      incr j
    done;
    Some !j
  end

let find_first_zero dev t =
  match t.mapping with
  | Sequential ->
      (* Global word [w] covers blocks [w*64, w*64+64). *)
      let nwords = (t.nbits + 63) / 64 in
      let rec scan w =
        if w >= nwords then None
        else
          let raw = read_word dev t ~line:(w / words_per_line) ~word:(w mod words_per_line) in
          let lo = w mod words_per_line * 64 in
          let valid_in_line = t.nbits - (w / words_per_line * bits_per_line) in
          match first_zero_bit (mask_invalid raw ~lo ~valid:valid_in_line) with
          | Some j -> Some ((w * 64) + j)
          | None -> scan (w + 1)
      in
      scan 0
  | Interleaved _ ->
      (* Block [b] maps to (line [b mod lines], in-line index [b / lines]),
         so block order is index-major: the smallest free block overall is
         the smallest (index, line) pair over each line's first zero. *)
      let best = ref max_int in
      for line = 0 to t.lines - 1 do
        if line < t.nbits then begin
          let valid = (t.nbits - line + t.lines - 1) / t.lines in
          let rec scan w =
            if w * 64 < valid then
              let raw = read_word dev t ~line ~word:w in
              match first_zero_bit (mask_invalid raw ~lo:(w * 64) ~valid) with
              | Some j ->
                  let b = (((w * 64) + j) * t.lines) + line in
                  if b < !best then best := b
              | None -> scan (w + 1)
          in
          scan 0
        end
      done;
      if !best = max_int then None else Some !best

let set_first dev t =
  match find_first_zero dev t with
  | None -> None
  | Some b ->
      set dev t b;
      Some b
