(** Arena: the per-core allocation domain (section 4.2).

    Each arena owns, under one lock:
    - a slab freelist per size class (slabs with free blocks);
    - the slab LRU list scanned head-to-tail for morphing candidates;
    - a large allocator ({!Extent}) from which slabs and large extents
      are carved;
    - a WAL and (when log-structured bookkeeping is on) a bookkeeping log.

    Thread-local tcaches sit above the arena: {!alloc_small} serves from
    the calling thread's tcache and only takes the arena lock to refill;
    {!free_small} pushes into the tcache and only locks to return blocks
    to their slab on overflow. This mirrors the paper's design, including
    its scalability limits (cross-thread frees serialize on the owning
    arena, which is why PAllocator's per-thread allocators beat NVAlloc
    at 64 threads on eADR, section 6.7).

    The module implements the three metadata protocols:
    - NVAlloc-LOG: every bitmap transition is WAL-logged and flushed
      (entry kinds and the checkpoint rule are documented in {!Wal});
    - NVAlloc-GC: no flushes for small-allocation metadata; the volatile
      image is rebuilt by post-crash GC;
    - slab morphing (section 5.2): a three-step, flag-guarded header
      transformation allowing a mostly-empty slab to change size class
      while its surviving old-class blocks are tracked in the index
      table. *)

type t

val create :
  Heap.t ->
  index:int ->
  region_lock:Sim.Lock.t ->
  on_slab_created:(Slab.t -> unit) ->
  on_slab_destroyed:(Slab.t -> unit) ->
  on_extent_created:(Extent.veh -> int -> unit) ->
  on_extent_dropped:(Extent.veh -> unit) ->
  t
(** The callbacks maintain the owner's global address index ([int] is the
    arena index). *)

val of_recovered :
  Heap.t ->
  index:int ->
  region_lock:Sim.Lock.t ->
  booklog:Booklog.t option ->
  wal:Wal.t ->
  on_slab_created:(Slab.t -> unit) ->
  on_slab_destroyed:(Slab.t -> unit) ->
  on_extent_created:(Extent.veh -> int -> unit) ->
  on_extent_dropped:(Extent.veh -> unit) ->
  t
(** Build an arena around recovered persistent structures (recovery
    constructs the booklog/WAL handles itself). *)

val index : t -> int

val set_telemetry : t -> Telemetry.t option -> unit
(** Attach/detach a telemetry sink: tcache refills, slab morphs, WAL
    appends and WAL checkpoints become spans (["refill"], ["morph"],
    ["wal:append"], ["wal:checkpoint"]) with matching latency histograms.
    Emission never charges simulated time; detached costs one compare
    per operation. *)

val lock : t -> Sim.Lock.t
val wal : t -> Wal.t
val large : t -> Extent.t
val heap : t -> Heap.t

val register_tcaches : t -> Tcache.t array -> unit
(** Announce a thread's tcaches so WAL checkpoints can drain them. *)

val set_peers : t -> t array -> unit
(** Give this arena the heap's full arena array (self included, indexed
    by arena index). Tcache entries can hold foreign-arena blocks — a
    cross-arena free parks the block in the freeing thread's tcache — and
    a drain returns each block through the slab's owning arena (under its
    lock), so empty-slab destruction releases the extent into the right
    arena's allocator. Without peers a drain falls back to the draining
    arena, which is only correct for single-arena heaps. *)

val alloc_small :
  t -> Sim.Clock.t -> tcaches:Tcache.t array -> class_idx:int -> Slab.t * int
(** Returns the block's slab and {e address}; the caller publishes the
    user pointer and writes the WAL [Alloc] entry (it knows [dest]).
    Addresses (not indices) are the stable currency because a slab can
    morph while blocks sit in tcaches. *)

val free_small :
  t ->
  Sim.Clock.t ->
  tcaches:Tcache.t array ->
  Slab.t ->
  addr:int ->
  dest:int ->
  Pstruct.span option
(** [addr] is the block's address inside [slab] (current or old class;
    morphing is resolved here). [t] must be the slab's owning arena; the
    tcache is the freeing thread's; [dest] is recorded in the WAL [Free]
    entry so recovery can also clear a dangling user pointer. Returns the
    [Free] entry's span (when one was logged) so the caller's
    destination-clear commit can declare it as a dependency. *)

val log_op : t -> Sim.Clock.t -> Wal.kind -> addr:int -> dest:int -> Pstruct.span option
(** Append a WAL entry (checkpointing first if the ring is full).
    [Large_*] kinds are logged in both variants, small kinds only under
    [Log_based] consistency. Returns the entry's span when appended. *)

val wal_dep : Wal.kind -> Pstruct.span option -> (string * Pstruct.span) list
(** Dependency list for {!Pstruct.commit} naming a WAL entry span (empty
    when no entry was appended). *)

val malloc_large : t -> Sim.Clock.t -> size:int -> Extent.veh
val free_large : t -> Sim.Clock.t -> Extent.veh -> unit

val checkpoint_if_needed : t -> Sim.Clock.t -> unit
(** Drain registered tcaches and reset the WAL when it is near full;
    called internally before WAL appends, exposed for tests. *)

val async_checkpoint_tick : t -> Sim.Clock.t -> bool
(** Background-checkpoint poll: when [Config.async_checkpoint] is a
    positive fraction and this arena's WAL occupancy has reached it,
    take the arena lock and checkpoint. Returns whether a checkpoint
    ran. Driven off the critical path by the workload driver's daemon
    thread so foreground appends rarely hit a full ring. *)

val drain_all_tcaches : t -> Sim.Clock.t -> unit
(** Return every tcache-resident block to its slab (shutdown path). *)

val adopt_slab_veh : t -> Extent.veh -> unit
(** Recovery hook: remember the extent backing a slab (before
    {!restore_slab}). *)

val restore_slab : t -> Slab.t -> unit
(** Recovery hook: adopt a rebuilt vslab into freelists/LRU;
    {!adopt_slab_veh} must have been called for its extent. *)

val iter_slabs : t -> (Slab.t -> unit) -> unit
(** All live slabs of this arena (for tests and recovery sweeps). *)

val recover_return_block : t -> Sim.Clock.t -> Slab.t -> int -> unit
(** Recovery hook: return a leaked current-class block to its slab
    (bit cleared and persisted, freelist membership fixed). *)

val recover_release_old_block : t -> Sim.Clock.t -> Slab.t -> int -> unit
(** Recovery hook: release a leaked old-class block of a morphing slab. *)

val recover_rebuild_slab : t -> Sim.Clock.t -> Slab.t -> live:(int -> bool) -> int
(** GC-variant recovery: rebuild a slab's bitmap and free list wholesale
    from the conservative-GC mark predicate (morph-pinned blocks stay
    allocated). Returns how many stale-allocated blocks were released. *)

val live_small_blocks : t -> int
(** Allocated-block count over all slabs, tcache-resident blocks
    excluded (test observability). *)

(** {1 Media quarantine} *)

val quarantine_slab : t -> Slab.t -> unit
(** Withdraw a slab with an unrepairable header: out of the freelists,
    the LRU and the slab table, backing extent kept (the range is never
    reissued), future frees into it swallowed and counted. *)

val dropped_frees : t -> int
(** Frees swallowed because their slab was quarantined. *)

val find_slab : t -> int -> Slab.t option
(** Look up a live (non-quarantined) vslab by base address. *)
