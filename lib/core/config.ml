type consistency = Log_based | Gc_based | Internal_collection

type t = {
  consistency : consistency;
  bit_stripes : int;
  interleave_tcache : bool;
  interleave_wal : bool;
  interleave_log : bool;
  slab_morphing : bool;
  morph_su_threshold : float;
  log_bookkeeping : bool;
  booklog_gc : bool;
  booklog_chunks : int;
  wal_entries : int;
  booklog_slow_gc_threshold : float;
  tcache_capacity : int;
  arenas : int;
  decay_interval_ns : float;
  decay_window_ns : float;
  root_slots : int;
  flush_batch : bool;
  wal_group_commit : int;
  async_checkpoint : float;
  media_replication : bool;
  media_scrub : bool;
  media_scrub_interval_ns : float;
  media_max_repair : int;
  (* Declared SLO targets for latency attribution: (op class, target ns,
     goal fraction of ops expected within target). The error budget is
     1 - goal; the burn rate reported by [nvalloc-cli slo] is the
     violating fraction divided by that budget. *)
  slo_targets : (string * float * float) list;
}

let log_default =
  {
    consistency = Log_based;
    bit_stripes = 6;
    interleave_tcache = true;
    interleave_wal = true;
    interleave_log = true;
    slab_morphing = true;
    morph_su_threshold = 0.20;
    log_bookkeeping = true;
    booklog_gc = true;
    booklog_chunks = 512;
    wal_entries = 8192;
    booklog_slow_gc_threshold = 0.8;
    tcache_capacity = 32;
    arenas = 40;
    decay_interval_ns = 50_000_000.0;
    decay_window_ns = 500_000_000.0;
    root_slots = 1 lsl 20;
    flush_batch = true;
    wal_group_commit = 8;
    async_checkpoint = 0.5;
    media_replication = false;
    media_scrub = false;
    media_scrub_interval_ns = 1_000_000.0;
    media_max_repair = 3;
    (* Calibrated against the batched Larson run in EXPERIMENTS.md "SLO
       attribution": p99 sits comfortably inside these with batching on;
       forcing the sync pipeline burns through the budgets. *)
    slo_targets =
      [ ("malloc:small", 8192.0, 0.99); ("malloc:large", 65536.0, 0.99); ("free", 4096.0, 0.99) ];
  }

let gc_default = { log_default with consistency = Gc_based }

(* Conservative lower bound on the device bytes the metadata (replicas
   included) needs: superblock page, region table + mirror + checksum
   array, root table, per-arena WAL and bookkeeping log with their replica
   lines, and one slab of headroom. Mirrors Heap.layout's structure
   without depending on it. *)
let media_floor t =
  let wal = 64 + (t.wal_entries * 16) + 64 in
  let booklog = if t.log_bookkeeping then 64 + (t.booklog_chunks * 1024) + 64 else 0 in
  4096 + 32768 + 32768 + 1024 + (t.root_slots * 8) + (t.arenas * (wal + booklog)) + 65536

let validate ?dev_size t =
  let reject fmt = Printf.ksprintf invalid_arg fmt in
  if t.arenas < 1 then reject "Config.arenas: need at least one arena (got %d)" t.arenas;
  if t.arenas > 64 then
    reject
      "Config.arenas: the packed slab header's arena field is 6 bits, at most 64 arenas \
       (got %d)"
      t.arenas;
  if t.root_slots < 1 then
    reject "Config.root_slots: need at least one root slot (got %d)" t.root_slots;
  if t.wal_entries < 2 then
    reject "Config.wal_entries: need at least 2 WAL entries (got %d)" t.wal_entries;
  if t.wal_entries mod 64 <> 0 then
    reject "Config.wal_entries: must be a multiple of 64, the WAL frame size (got %d)"
      t.wal_entries;
  if t.log_bookkeeping && t.booklog_chunks < 2 then
    reject
      "Config.booklog_chunks: log-structured bookkeeping needs at least 2 chunks (got %d)"
      t.booklog_chunks;
  if t.bit_stripes < 1 then
    reject "Config.bit_stripes: need at least one bitmap stripe (got %d)" t.bit_stripes;
  if t.tcache_capacity < 1 then
    reject "Config.tcache_capacity: need at least one cached block (got %d)"
      t.tcache_capacity;
  if not (t.morph_su_threshold >= 0.0 && t.morph_su_threshold <= 1.0) then
    reject "Config.morph_su_threshold: must be within [0, 1] (got %g)" t.morph_su_threshold;
  if not (t.booklog_slow_gc_threshold > 0.0 && t.booklog_slow_gc_threshold <= 1.0) then
    reject "Config.booklog_slow_gc_threshold: must be within (0, 1] (got %g)"
      t.booklog_slow_gc_threshold;
  if t.wal_group_commit < 0 then
    reject "Config.wal_group_commit: group size cannot be negative (got %d)"
      t.wal_group_commit;
  if t.wal_group_commit > t.wal_entries / 2 then
    reject
      "Config.wal_group_commit: an open group must fit well inside the ring (got %d for \
       %d entries)"
      t.wal_group_commit t.wal_entries;
  if not (t.async_checkpoint >= 0.0 && t.async_checkpoint <= 1.0) then
    reject "Config.async_checkpoint: must be a ring fraction within [0, 1] (got %g)"
      t.async_checkpoint;
  if t.media_max_repair < 1 then
    reject
      "Config.media_max_repair: need at least one repair attempt before quarantine (got \
       %d)"
      t.media_max_repair;
  List.iter
    (fun (op, target_ns, goal) ->
      if op = "" then reject "Config.slo_targets: op class name cannot be empty";
      if not (target_ns > 0.0) then
        reject "Config.slo_targets: %s needs a positive target (got %g ns)" op target_ns;
      if not (goal > 0.0 && goal < 1.0) then
        reject
          "Config.slo_targets: %s goal must be within (0, 1) — goal 1 leaves no error \
           budget to burn (got %g)"
          op goal)
    t.slo_targets;
  if t.media_scrub && not (t.media_scrub_interval_ns > 0.0) then
    reject "Config.media_scrub_interval_ns: scrubbing needs a positive interval (got %g)"
      t.media_scrub_interval_ns;
  if t.media_scrub && not t.media_replication then
    reject "Config.media_scrub: scrubbing repairs from replicas, enable media_replication";
  if t.media_replication && not t.log_bookkeeping then
    reject
      "Config.media_replication: slab-header verification needs the bookkeeping log's \
       authoritative extent kinds, enable log_bookkeeping";
  match dev_size with
  | Some size when t.media_replication && size < media_floor t ->
      reject
        "Config.media_replication: device too small to hold metadata replicas (need >= \
         %d bytes, got %d)"
        (media_floor t) size
  | _ -> ()

let ic_default = { log_default with consistency = Internal_collection }

(* Everything synchronous: one flush + fence per commit site, no group
   commit, no background checkpointing — the pre-batching behaviour,
   selectable for A/B runs via the CLI's --no-batch. *)
let sync t = { t with flush_batch = false; wal_group_commit = 0; async_checkpoint = 0.0 }

let base consistency =
  {
    log_default with
    consistency;
    bit_stripes = 1;
    interleave_tcache = false;
    interleave_wal = false;
    interleave_log = false;
    slab_morphing = false;
    log_bookkeeping = false;
  }

(* "+Interleaved" (Figure 11): the interleaved tcache layout groups blocks
   by the cache line of their bitmap bit, which only has an effect when the
   bitmap itself is striped; the ablation therefore enables both. *)
let with_interleaved_tcache t = { t with interleave_tcache = true; bit_stripes = 6 }
let with_log_bookkeeping t = { t with log_bookkeeping = true; interleave_log = false }
