(** Large allocator: extents and virtual extent headers (sections 2.2, 4.3).

    One instance lives in every arena. Extents (4 KB-multiple byte ranges
    carved out of 4 MB mapped regions) are described by volatile VEHs in
    one of three states:

    - {e activated}: allocated extents;
    - {e reclaimed}: free extents whose physical memory is still mapped;
    - {e retained}: free extents whose physical pages were released
      (decommitted) but whose address range is still reserved.

    Every index is a balanced tree: the address-ordered extent tree (the
    paper's "R-tree") answers the floor/ceiling probes that splitting and
    neighbour coalescing need in O(log n); (size, addr)-ordered trees give
    best-fit; (free_time, addr)-ordered trees give oldest-first decay
    without list walks; the mapped regions themselves live in an
    address-ordered tree of {e page descriptors}, each counting its
    activated extents so a page whose last live extent dies is detected in
    O(1) and the whole region released back to the OS at the next decay
    tick — reclaimed space coalesces across slab boundaries instead of
    pinning a region per dead slab. A decay pass driven by the
    smootherstep curve (50 ms ticks) moves idle reclaimed extents to
    retained and releases fully-retained regions.

    Tree searches and merges feed the device counters
    [extent_tree_lookups] and [extents_coalesced].

    Persistent bookkeeping is pluggable ({!mode}): {e in-place} header
    slots at the head of each region (the design whose random small
    writes Figure 2 exposes — used by the Base configuration and the
    baseline allocators), or the {e log-structured} bookkeeping log of
    section 5.3. Only activated extents are persisted; recovery rebuilds
    free extents from the gaps (section 4.4). *)

type mode = In_place | Logged of Booklog.t

type state = Activated | Reclaimed | Retained

type veh = {
  mutable addr : int;
  mutable size : int;
  mutable state : state;
  mutable kind : Booklog.kind;
  mutable log_ref : int;  (** bookkeeping-log entry, -1 when none *)
  mutable free_time : float;
  region : int;  (** base address of the owning mapped region *)
}

type pagedesc = {
  base : int;  (** region base address *)
  total : int;  (** mapped bytes, header area included *)
  page_data_off : int;  (** first data byte (in-place header area) *)
  dedicated : bool;  (** mapped for one huge object *)
  mutable activated_count : int;  (** live extents on this page *)
}
(** Descriptor of one mapped region ("huge page"), kept in an
    address-ordered tree. *)

type t

val region_bytes : int
(** Default mapped-region granularity (4 MB). *)

val header_bytes : int
(** In-place mode: bytes reserved at the head of each region for the VEH
    slot table (one u32 slot on an 8 B stride per possible 4 KB extent
    start). *)

val read_slot : Pmem.Device.t -> region:int -> int -> int
(** In-place VEH slot [i] of the region at [region] (recovery scans). *)

val create :
  Heap.t ->
  mode:mode ->
  region_lock:Sim.Lock.t ->
  on_new_extent:(veh -> unit) ->
  on_drop_extent:(veh -> unit) ->
  t
(** [on_new_extent]/[on_drop_extent] keep the owner's global address
    index in sync (every activated extent announce/retract). *)

val malloc : t -> Sim.Clock.t -> size:int -> kind:Booklog.kind -> veh
(** Allocate [size] bytes (rounded up to 4 KB). Requests above 2 MB map a
    dedicated region, as the paper's mmap path does. *)

val free : t -> Sim.Clock.t -> veh -> unit
(** Return an activated extent; coalesces with reclaimed neighbours and
    runs the decay tick. *)

val decay_tick : t -> Sim.Clock.t -> unit
(** Run decay if the 50 ms interval elapsed (also called internally). *)

val booklog : t -> Booklog.t option
val activated_bytes : t -> int
val reclaimed_bytes : t -> int
val retained_bytes : t -> int

val page_of_addr : t -> int -> pagedesc option
(** Floor lookup: the mapped region containing the address, if any. *)

val iter_pages : t -> (pagedesc -> unit) -> unit
(** In increasing base-address order. *)

val page_count : t -> int

val restore_region : t -> base:int -> total:int -> unit
(** Recovery hook: re-register a mapped region read back from the
    persistent region table (before restoring its extents). *)

val restore_extent :
  t -> addr:int -> size:int -> kind:Booklog.kind -> state:state -> log_ref:int -> region:int -> veh
(** Recovery hook: insert a VEH rebuilt from persistent state without
    touching persistent bookkeeping. *)
