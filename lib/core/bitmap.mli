(** Persistent slab bitmaps with sequential or interleaved bit mapping.

    Section 5.1: a slab's bitmap has one bit per block. With the baseline
    {e sequential} mapping, consecutive blocks map to consecutive bits, so
    consecutive allocations flush the same cache line over and over (a
    reflush). The {e interleaved} mapping divides the bitmap into [S] bit
    stripes, one cache line each, and maps block [b] to stripe [b mod S] —
    consecutive allocations then flush different lines.

    A layout is positioned at a base device address; callers flush the
    line returned by {!line_addr} after mutating a bit. *)

type mapping =
  | Sequential
  | Interleaved of int  (** stripe (cache-line) count *)

type t = {
  base : int;  (** device address of the bitmap region *)
  nbits : int;  (** number of blocks *)
  lines : int;  (** cache lines occupied *)
  mapping : mapping;
  bytes_a : int Pstruct.arr;  (** the bitmap bytes as a typed u8 array *)
}

val bits_per_line : int
(** 512 = 64 B * 8. *)

val lines_for : nbits:int -> mapping:mapping -> int
(** Cache lines needed to host [nbits] bits under [mapping]. Interleaving
    uses [max stripes (ceil nbits/512)] lines so that a stripe never
    overflows its line. *)

val make : base:int -> nbits:int -> mapping:mapping -> t
val bytes : t -> int
(** Size of the bitmap region ([lines * 64]). *)

val bit_location : t -> int -> int * int
(** [bit_location t b] is [(line, index_in_line)] of block [b]'s bit. *)

val line_addr : t -> int -> int
(** Device address of the cache line holding block [b]'s bit (the flush
    target after {!set}/{!clear}). *)

val bit_span : t -> int -> Pstruct.span
(** The cache-line span holding block [b]'s bit, for flushing or for
    declaring it as a commit dependency. *)

val set : Pmem.Device.t -> t -> int -> unit
val clear : Pmem.Device.t -> t -> int -> unit
val get : Pmem.Device.t -> t -> int -> bool
val clear_all : Pmem.Device.t -> t -> unit
val popcount : Pmem.Device.t -> t -> int
(** Number of set bits (allocated blocks). *)

val iter_set : Pmem.Device.t -> t -> (int -> unit) -> unit
(** Apply to every block index whose bit is set. *)

val find_first_zero : Pmem.Device.t -> t -> int option
(** Lowest block index whose bit is clear, scanning the bitmap 64-bit
    words at a time: all-ones words are skipped with a single compare, so
    a nearly-full slab costs [lines * 8] word reads instead of [nbits]
    bit probes. Under the interleaved mapping block order is index-major
    across stripes, so every line's first zero is a candidate and the
    smallest [(index, line)] pair wins. [None] when every block is
    allocated. *)

val set_first : Pmem.Device.t -> t -> int option
(** [find_first_zero] + [set]; returns the block allocated. The caller
    still flushes {!line_addr} (or declares {!bit_span}) as with {!set}. *)
