(** Per-arena write-ahead log.

    NVAlloc-LOG records every small-allocator metadata change in a WAL and
    flushes the entry before the change itself (section 4.1); replaying
    the WAL after a failure resolves all memory leaks. The log is a ring
    of 16 B entries validated by a per-entry epoch byte, so neither entry
    invalidation nor ring zeroing needs extra flushes.

    {b Entry/bitmap protocol} (see also {!Recovery}): a slab bitmap bit is
    set iff its block is user-live {e or} sitting in some tcache. The WAL
    disambiguates:

    - [Refill addr] — block moved slab -> tcache (bit set, not user-live);
    - [Alloc (addr, dest)] — block handed to the user, pointer at [dest];
    - [Free addr] — block moved user -> tcache (bit still set);
    - [Large_alloc]/[Large_free] — the same protocol for extents.

    When the ring fills, the arena {e checkpoints}: it flushes all its
    tcaches back to their slabs (clearing their bits) and bumps the epoch,
    invalidating every entry at the cost of one header flush. Hence after
    a crash, a set bit with no valid WAL entry is user-live (its alloc
    entry can only have been dropped by a checkpoint, which emptied the
    tcaches first), and replay of the valid window recovers the rest:
    last-entry [Refill]/[Free] means "in a tcache, really free"; last-entry
    [Alloc] is confirmed against [dest].

    With interleaved mapping (section 5.1, applied to WALs per Table 2),
    consecutive entries are placed in different cache lines of a 16-line
    frame, eliminating the append reflushes that sequential WALs suffer.

    {b Torn stores}: an entry spans two 8-byte words of one cache line and
    ADR only guarantees 8-byte store atomicity, so a crash during the
    entry's flush can persist one word next to the other word's stale
    content from a previous epoch. A 16-bit checksum in the first word
    covers every payload field; replay skips (and counts) entries that
    fail it, which restores the invariant that a valid entry implies a
    fully persisted one. *)

type t

type kind = Alloc | Free | Refill | Large_alloc | Large_free

val entry_bytes : int
(** 16. *)

val region_bytes : entries:int -> int
(** Device bytes needed for a log of [entries] entries (header line and
    trailing guard-replica line included). [entries] must be a positive
    multiple of 64. *)

val create :
  ?group:int ->
  ?replicate:bool ->
  Pmem.Device.t -> base:int -> entries:int -> interleave:bool -> t
(** Format a fresh log (volatile image; first use flushes the header).

    [group] (default 0) enables group commit: up to [group] appends share
    one commit record — an epoch-tagged watermark packed into the
    header's first 8-byte word, so one ADR-atomic persist commits the
    whole batch — and their metadata effects are deferred to the group's
    close ({!defer_commit}/{!flush_group}). Replay then only accepts
    entries below the watermark: a crash mid-group loses the open group
    wholesale, never a suffix-less prefix of its effects.

    [replicate] (default false) mirrors the guarded header bytes into
    the region's trailing guard line after every header commit, enabling
    {!verify_guard} repair. The header checksum itself is maintained
    unconditionally (it rides inside the header's own line). *)

val entries : t -> int
val used : t -> int
val near_full : t -> bool
(** True when the next {!append} would not fit: the arena must checkpoint
    first. *)

val is_ready : t -> bool
(** False between {!adopt} and {!seal} (recovery in progress). *)

val group_commit : t -> int
(** The [group] this log was created/adopted with; 0 = synchronous. *)

val open_group : t -> int
(** Appends in the currently open group (0 when grouping is off or the
    group just closed). Test observability. *)

val append : t -> Sim.Clock.t -> kind -> addr:int -> dest:int -> unit
(** Write and flush one entry (category [Wal]). With group commit on,
    the entry's flush is deferred into the open group instead. *)

val append_span : t -> Sim.Clock.t -> kind -> addr:int -> dest:int -> Pstruct.span
(** Like {!append}, returning the entry's span so callers can declare it
    as a persist-ordering dependency of the metadata commit the entry
    covers. The span is returned even under {!unsafe_set_skip_flush} —
    it denotes what {e should} have persisted. *)

val defer_commit :
  ?deps:(string * Pstruct.span) list -> t -> Sim.Clock.t -> Pmem.Stats.category ->
  Pstruct.span -> unit
(** A metadata commit ordered after this log's latest entry. With group
    commit on (and the log ready), the commit is queued and retires in
    the open group's close — after the group's entries and its commit
    record are durable — closing the group if it just reached [group]
    appends. Otherwise exactly [Pstruct.commit]. *)

val flush_group : t -> Sim.Clock.t -> unit
(** Close the open group now (no-op when empty or grouping is off):
    persist its entries (one fence), persist the commit record (one
    fence), then retire the deferred commits (one fence). Called by
    {!checkpoint} and by the arena around operations that must not stay
    provisional (large allocs, quiesce points). *)

val checkpoint : t -> Sim.Clock.t -> unit
(** Close the open group, then bump the epoch (invalidating all entries)
    and flush the header. The caller must have emptied the arena's
    tcaches first. *)

val reopen :
  ?group:int ->
  ?replicate:bool ->
  Pmem.Device.t -> Sim.Clock.t -> base:int -> entries:int -> interleave:bool -> t
(** Recovery: adopt an existing log region and invalidate its entries by
    bumping the epoch (one header flush). Call after {!replay}.
    Equivalent to {!adopt} immediately followed by {!seal}. *)

val adopt :
  ?group:int ->
  ?replicate:bool ->
  Pmem.Device.t -> base:int -> entries:int -> interleave:bool -> t
(** Adopt an existing log region {e without} invalidating its entries:
    the persisted epoch (and hence the replay window) stays intact, so a
    crash while recovery is still running leaves the log replayable and
    recovery idempotent. {!append}/{!checkpoint} are forbidden (assert)
    until {!seal}. *)

val seal : t -> Sim.Clock.t -> unit
(** Finish an {!adopt}: bump the epoch (invalidating the replayed window,
    one header flush) and enable appends. Call once the recovery sanity
    pass no longer needs the old entries. *)

val unsafe_set_skip_flush : t -> bool -> unit
(** Fault-injection hook (tests only): when set, {!append} writes the
    entry but skips its flush — deliberately breaking the flush-before-
    effect ordering so the fuzzer can demonstrate that the broken
    protocol is caught and shrunk to a replayable plan. Composes with
    flush coalescing: the skipped entry's line is also dropped from the
    thread's pending buffer (and from the open group's phase A), so no
    later fence quietly persists it. Never set this outside a test
    harness. *)

val unsafe_set_skip_commit_record : t -> bool -> unit
(** Fault-injection hook (tests only): when set, {!flush_group}'s commit
    record forgets its contract — the watermark advances and the
    deferred effects retire while phase A is dropped (the group's
    entries leave the pending buffer unflushed). A crash then finds
    effects durable under a commit record with no entries behind it:
    no undo evidence for the recovery sanity pass, the observable
    endpoint of writing the record before the entries are durable.
    The model checker must catch the resulting leak/dangling state
    (and, in check mode, the dirty entry-span dependencies). Never set
    this outside a test harness. *)

type replayed = { kind : kind; seq : int; addr : int; dest : int }

val replay : Pmem.Device.t -> base:int -> entries:int -> replayed list
(** Decode the valid window from the (post-crash) image, sorted by
    sequence number. Pure decoding: the caller charges read latency. *)

val replay_torn : Pmem.Device.t -> base:int -> entries:int -> replayed list * int
(** Like {!replay}, additionally returning how many entries of the
    current epoch were skipped because their checksum failed (torn
    stores observed half-written). *)

val guard_record : base:int -> entries:int -> Guard.record
(** The header's guard record: checksum at [base+8] (same line as the
    commit word), replica on the region's trailing line. *)

val verify_guard : Pmem.Device.t -> Sim.Clock.t -> base:int -> entries:int -> Guard.status
(** Verify/repair the header record. Recovery runs this before
    {!replay}/{!adopt}, which read header fields and would raise
    [Media_error] on a poisoned line. Only meaningful for logs created
    with [replicate]. *)

val replay_full :
  Pmem.Device.t -> base:int -> entries:int -> replayed list * replayed list * int
(** [(committed, discarded, torn)]. [committed] and [torn] are exactly
    {!replay_torn}'s results. [discarded] are structurally valid entries
    of the current epoch at or beyond the group-commit watermark: the
    open group at the crash. Their ops never committed — but their
    metadata effects (bitmap bits, root publications) may have leaked to
    the media through flushes of shared cache lines, so recovery's
    sanity pass must treat them as undo evidence rather than assume
    "no entry in the window" means "checkpointed, hence fully durable".
    Empty for synchronous logs. Sorted by sequence number. *)
