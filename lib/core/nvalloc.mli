(** NVAlloc: the public allocator API (section 4.1).

    The programming model follows the paper: [create] ~ [nvalloc_init],
    [exit_] ~ [nvalloc_exit], and the leak-free allocation pair
    {!malloc_to}/{!free_from}, which atomically allocate an object and
    publish its address at a caller-chosen persistent location ([dest]) —
    typically a slot of the built-in root table, or a word inside another
    persistent object (e.g. a linked-list next pointer). Addresses are
    device offsets, which is exactly the offset-based pointer
    representation the paper uses to survive remapping.

    Consistency comes in the two variants of Table 2, selected by
    {!Config.consistency}: NVAlloc-LOG (WAL on every small-allocator
    metadata change) and NVAlloc-GC (no small-metadata flushes,
    post-crash conservative GC).

    Threads are logical simulation threads: {!thread} registers one,
    assigning it to the arena with the fewest threads and building its
    tcaches. All operations take the thread handle, whose clock absorbs
    the simulated latency. *)

type t
type thread

type recovery_report = {
  found_state : Heap.state;  (** flag found at open: Shutdown = clean *)
  wal_entries_replayed : int;
  torn_wal_skipped : int;
      (** WAL entries of the current epoch rejected by their checksum —
          records observed half-written by a torn in-flight store *)
  wal_entries_undone : int;
      (** blocks/extents whose leak was resolved by WAL replay (LOG) *)
  torn_slab_creations : int;
      (** slab extents whose bookkeeping entry persisted but whose header
          flush did not; their extents are reclaimed *)
  leaked_blocks_reclaimed : int;  (** small blocks freed by the sanity pass *)
  leaked_extents_reclaimed : int;
  gc_blocks_marked : int;  (** conservative-GC marks (GC variant only) *)
  booklog_entries : int;  (** live bookkeeping entries recovered *)
  media_repairs : int;
      (** guarded records healed from their replica during this recovery
          (superblock, region-table lines, log headers, slab headers) *)
  quarantined_slabs : int;
      (** slabs whose header lost both copies: no vslab is built, the
          range is withdrawn and owner queries keep answering for it *)
  quarantined_bytes : int;
}

val pp_recovery_report : Format.formatter -> recovery_report -> unit
(** One-line diagnostic rendering, so oracle/fuzzer failures are
    explainable. *)

val create : ?config:Config.t -> Pmem.Device.t -> Sim.Clock.t -> t
(** Format a fresh heap on the device ([nvalloc_init]). Default config is
    {!Config.log_default}. Raises [Invalid_argument] on a config rejected
    by {!Config.validate}. *)

val recover : ?config:Config.t -> Pmem.Device.t -> Sim.Clock.t -> t * recovery_report
(** Open an existing heap (section 4.4): rebuild vslabs and VEHs from the
    bookkeeping log (or region headers), undo torn morphs, then — if the
    shutdown was not clean — run the variant's sanity pass: WAL replay
    (LOG) or conservative GC from the root table (GC). All scan and
    repair latency is charged to the clock, which is how Figure 18's
    recovery times are measured.

    Recovery is {e idempotent}: the WAL windows are invalidated only
    after the sanity pass completes, every repair re-applies cleanly, and
    the heap state flips to [Running] last — so a crash at any flush
    point {e inside} recovery (including an injected one) leaves an image
    from which a second [recover] reaches the same consistent state. *)

val exit_ : t -> Sim.Clock.t -> unit
(** Clean shutdown: drain tcaches, persist all volatile metadata, mark
    the heap [Shutdown]. The handle must not be used afterwards. *)

val config : t -> Config.t
val device : t -> Pmem.Device.t
val heap : t -> Heap.t

val thread : t -> Sim.Clock.t -> thread
val thread_clock : thread -> Sim.Clock.t
val thread_arena : thread -> int

val root_addr : t -> int -> int
(** Address of root-table slot [i] (use as [dest]). *)

val root_slots : t -> int

val malloc_to : t -> thread -> size:int -> dest:int -> int
(** Allocate [size] bytes, persistently publish the block's address at
    [dest], return the address. Small requests (<= 16 KB) go through the
    slab allocator; larger ones through the extent allocator. *)

val free_from : t -> thread -> dest:int -> unit
(** Read the address stored at [dest], free the object, and clear
    [dest]. Raises [Invalid_argument err_free_unpublished] when [dest]
    holds no published address (never-published or already-freed slot);
    the baselines raise the identical message, so the error is uniform
    across every allocator. A free into a quarantined range is swallowed
    (counted in {!dropped_frees}) and only the publication retracted —
    graceful degradation, never an error. *)

val err_free_unpublished : string
(** The exact [Invalid_argument] message raised by a free of an
    unpublished destination slot, shared with the baseline engines. *)

val read_ptr : t -> dest:int -> int
(** The address stored at [dest] (0 = null). *)

(** {1 Observability (tests, benchmarks)} *)

val mapped_bytes : t -> int
val peak_mapped_bytes : t -> int
val reset_peak : t -> unit
val stats : t -> Pmem.Stats.t
val allocated_small_blocks : t -> int
(** Blocks marked allocated across all slabs (tcache-resident included). *)

val metadata_bytes : t -> int
(** Bytes of per-object heap metadata currently resident: each live
    slab's header area (packed header line, bitmaps, morph index table —
    everything below [Slab.data_off]) plus the in-place VEH slot tables
    at the head of mapped regions. Fixed-size arena structures (WAL,
    bookkeeping log) are excluded: they do not scale with live objects. *)

type owner_info = { base : int; size : int; is_slab : bool }

val owner_of_addr : t -> int -> owner_info option
(** The slab or large extent containing the address, if any (test
    observability; no latency charged). Quarantined ranges report as
    slabs: the allocator still owns them. *)

val check_owner_index : t -> (string, string) result
(** Validate that owners in the index are disjoint (test invariant). *)

val iter_slabs : t -> (Slab.t -> unit) -> unit

val iter_allocated : t -> (addr:int -> size:int -> unit) -> unit
(** Enumerate every allocated object (small blocks, morph-carried
    old-class blocks, large extents). This is the PMDK
    [POBJ_FIRST]/[POBJ_NEXT] idiom that the internal-collection variant
    relies on: after a crash the application walks its objects and frees
    the ones it no longer references. In the internal-collection variant
    the enumeration is exact (tcache-resident blocks are unmarked); in
    NVAlloc-LOG it may transiently include tcache-resident blocks. *)

val arenas : t -> Arena.t array

val integrity_walk : t -> Sim.Clock.t -> (string, string) result
(** Deep heap-integrity walk over the persistent image and the volatile
    bookkeeping, for the model checker (lib/check) and tests. Two passes:
    structural invariants with tcaches live (owner-index disjointness;
    per-slab free-stack/bitmap agreement, persisted header fields matching
    the volatile layout, morph flag at rest; morph index-table entries
    matching the volatile old-block set, recomputed pin counts and pinned
    bits), then a {e quiescing} pass — every tcache drained and every WAL
    checkpointed under the arena lock, charging the clock like a shutdown
    would — after which each WAL must be empty and the structural
    invariants must still hold with zero tcache residents. [Ok summary]
    on success, [Error diagnostic] naming the first violated invariant.
    The drain mutates the heap (tcaches empty afterwards); run it after
    the workload, not concurrently with one. *)

val slab_utilization_histogram : t -> buckets:float list -> int array
(** Count slabs by occupancy ratio bucket; [buckets] are the upper bounds
    (e.g. [[0.3; 0.7; 1.0]] for the Figure 15(b) breakdown). *)

(** {1 Media faults (robustness layer)}

    Only meaningful under [Config.media_replication]. Every critical
    metadata record (superblock, region-table lines, WAL/booklog
    headers, slab headers) carries a {!Guard} checksum-plus-replica
    pair; poisoned or rotten copies are healed on demand (a one-integer
    gate on every [malloc_to]/[free_from] maps outstanding poisoned
    lines to their records and repairs them, bounded by
    [Config.media_max_repair]), pre-emptively by {!scrub}, and at
    {!recover} time before any header is decoded. A slab header that
    loses {e both} copies is quarantined: its capacity is withdrawn,
    live blocks are written off, frees into the range are swallowed, and
    allocation continues degraded. *)

val scrub : t -> Sim.Clock.t -> int * int
(** One scrub pass over every guarded record: rewrite at-rest bit-rot
    from the verified cached image, verify/repair each checksum pair,
    quarantine slabs that lost both copies. [(repaired, lost)]. *)

val scrub_tick : t -> Sim.Clock.t -> bool
(** Idle-slot hook ([Instance.maintenance]): run {!scrub} if
    [Config.media_scrub] is on and [Config.media_scrub_interval_ns] has
    elapsed since the last pass. Returns whether a pass ran. *)

val quarantined_slabs : t -> int
val quarantined_bytes : t -> int

val dropped_frees : t -> int
(** Frees swallowed into quarantined slabs/ranges since creation. *)

val seed_poison : t -> seed:int -> count:int -> int
(** Deterministically poison up to [count] guarded metadata lines —
    never both copies of one record, so every seeded fault is
    repairable. Returns the number of lines poisoned. *)

val inject_bitrot : t -> seed:int -> flips:int -> int
(** Deterministic at-rest bit flips over guarded byte spans (one copy
    per record), in the persisted image only. Returns flips applied. *)

val unsafe_set_broken_scrub : t -> bool -> unit
(** Seeded mutation for the differential oracle: make {!scrub} bless a
    damaged primary (recompute its checksum over the corrupt bytes)
    instead of repairing it from the replica. *)

(** {1 Telemetry} *)

val set_telemetry : t -> Telemetry.t option -> unit
(** Attach one sink to the whole stack: the device (flush/fence spans,
    WPQ depth), every arena (refill/morph/WAL spans) and the allocator
    itself (["alloc"]/["free"] spans with latency histograms). Emission
    never charges simulated time; [None] detaches everywhere. *)

val telemetry : t -> Telemetry.t option

val telemetry_snapshot : t -> Telemetry.t -> ts:float -> unit
(** Emit one heap-introspection snapshot at simulated time [ts] on the
    {!Telemetry.snapshot_tid} track: per-size-class slab counts and mean
    occupancy, free/full/partial slab counts, extent activated /
    reclaimed / retained bytes and fragmentation ratio, mapped bytes.
    Read-only; charges nothing. *)
