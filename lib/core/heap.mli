(** Persistent heap layout: superblock, region table, root table.

    The heap occupies the whole device:

    {v
    0            superblock (magic, arena count, run-state flag, cksum;
                 guard replica on the page's second cache line)
    4 KB         region table: 4096 slots * 8 B (base and size, 4 KB units)
    36 KB        region-table mirror (guard replica of every line)
    68 KB        region-table checksums: one u16 per line, shared by
                 primary and mirror
    72 KB        root table: root_slots * 8 B (page aligned)
    ...          per-arena WAL regions
    ...          per-arena bookkeeping-log regions
    heap_start   extent space managed through Dax (the "heap files")
    v}

    The guard areas ({!Guard}) are always laid out; their maintenance —
    mirror writes on {!register_region}/{!unregister_region}, superblock
    replica on {!set_state} — is gated on [Config.media_replication], and
    the mirror is persisted {e before} the primary slot commits so a
    repair can only roll a region write forward atomically, never tear
    it. Checksums that share an already-committed line (the superblock's)
    are refreshed unconditionally — they ride for free.

    The run-state flag implements section 4.4's per-heap state: [Running],
    [Shutdown] (set by a clean [nvalloc_exit]) or [Recovering]; finding
    [Running]/[Recovering] at open time means a failure happened and a
    sanity pass (WAL replay or conservative GC) is required.

    The region table persists which 4 MB regions are mapped, so recovery
    can walk the heap without the volatile Dax state. *)

type state = Running | Shutdown | Recovering

type t

val region_slots : int

val init : Pmem.Device.t -> Config.t -> t
(** Format a fresh heap (volatile image; the first fence persists). *)

val open_existing : Pmem.Device.t -> Config.t -> state * t
(** Rebuild the layout handle from a (post-crash or post-shutdown) image;
    returns the persisted run state as found. [Config] must match the one
    the heap was initialised with (checked against the superblock where
    recorded). The caller ({!Recovery}) is responsible for moving the
    state to [Recovering] and eventually back to [Running]. *)

val device : t -> Pmem.Device.t
val dax : t -> Pmem.Dax.t
val config : t -> Config.t
val set_state : t -> Sim.Clock.t -> state -> unit

val root_addr : t -> int -> int
(** Device address of root slot [i]. *)

val root_slots : t -> int
val wal_base : t -> arena:int -> int
val booklog_base : t -> arena:int -> int
val heap_start : t -> int

(** {1 Region table} *)

val register_region : t -> Sim.Clock.t -> addr:int -> size:int -> unit
(** Record a mapped region (one small metadata flush). *)

val unregister_region : t -> Sim.Clock.t -> addr:int -> unit

val regions : t -> (int * int) list
(** Mapped regions [(addr, size)], from the persistent table. *)

val read_regions : Pmem.Device.t -> (int * int) list
(** Static variant for recovery, before a handle exists. *)

(** {1 Media verification}

    Only meaningful for heaps initialised with
    [Config.media_replication]; on other heaps the guard areas hold
    garbage and these must not be called. *)

val replicated : t -> bool

val sb_guard : Guard.record
val region_guard : int -> Guard.record
(** Guard record of region-table line [i] (0 <= i < {!region_lines}). *)

val region_lines : int

val verify_superblock : Pmem.Device.t -> Sim.Clock.t -> Guard.status
(** Verify/repair the superblock record. Static: recovery runs it before
    [open_existing] reads (possibly poisoned) superblock fields. *)

val verify_regions : Pmem.Device.t -> Sim.Clock.t -> int * int
(** Verify/repair every region-table line; [(repaired, lost)]. *)
