type kind = Alloc | Free | Refill | Large_alloc | Large_free

let entry_bytes = 16
let entries_per_line = Pmem.Cacheline.size / entry_bytes (* 4 *)
let frame_lines = 16
let frame_entries = frame_lines * entries_per_line (* 64 *)

type t = {
  dev : Pmem.Device.t;
  base : int;
  nentries : int;
  interleave : bool;
  mutable epoch : int; (* 1..255, skipping 0 = never-written *)
  mutable next : int; (* next logical slot *)
  mutable seq : int;
  mutable ready : bool; (* false between [adopt] and [seal] *)
  mutable skip_flush : bool; (* fault-injection hook, see [unsafe_set_skip_flush] *)
}

let region_bytes ~entries =
  assert (entries > 0 && entries mod frame_entries = 0);
  Pmem.Cacheline.size + (entries * entry_bytes)

let kind_code = function
  | Alloc -> 1
  | Free -> 2
  | Refill -> 3
  | Large_alloc -> 4
  | Large_free -> 5

let kind_of_code = function
  | 1 -> Some Alloc
  | 2 -> Some Free
  | 3 -> Some Refill
  | 4 -> Some Large_alloc
  | 5 -> Some Large_free
  | _ -> None

(* 16-bit entry checksum over every payload field. The entry spans two
   8-byte words of one cache line ([kind epoch ck seq | addr dest]); ADR
   only guarantees 8-byte atomicity, so a crash mid-flush can persist one
   word of a new entry next to the other word's stale content from a
   previous life of the slot. The checksum lives in the first word and
   covers the second, so any torn combination fails validation and replay
   treats the entry as never written — exactly the "operation had not
   completed" semantics the WAL protocol needs. *)
let checksum ~kind ~epoch ~seq ~addr ~dest =
  let h = ref 0x9E37 in
  let mix v =
    h := (!h lxor v) * 0x01000193 land 0x3FFFFFFF;
    h := !h lxor (!h lsr 15)
  in
  mix kind;
  mix epoch;
  mix seq;
  mix addr;
  mix dest;
  !h land 0xFFFF

(* Logical slot [n] -> byte offset of its entry (relative to the entry
   area). Interleaving spreads the 64 entries of a frame across its 16
   lines: consecutive appends land in consecutive lines. *)
let slot_offset t n =
  let phys =
    if not t.interleave then n
    else
      let frame = n / frame_entries and k = n mod frame_entries in
      let line = k mod frame_lines and pos = k / frame_lines in
      (frame * frame_entries) + (line * entries_per_line) + pos
  in
  Pmem.Cacheline.size + (phys * entry_bytes)

let create dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  Pmem.Device.write_u8 dev base 1;
  (* Entry epochs are all 0 (the device zero-fills), hence invalid. *)
  {
    dev;
    base;
    nentries = entries;
    interleave;
    epoch = 1;
    next = 0;
    seq = 0;
    ready = true;
    skip_flush = false;
  }

let entries t = t.nentries
let used t = t.next
let near_full t = t.next >= t.nentries
let unsafe_set_skip_flush t v = t.skip_flush <- v

let append t clock kind ~addr ~dest =
  assert t.ready;
  assert (not (near_full t));
  let off = t.base + slot_offset t t.next in
  let code = kind_code kind in
  Pmem.Device.write_u8 t.dev off code;
  Pmem.Device.write_u8 t.dev (off + 1) t.epoch;
  Pmem.Device.write_u16 t.dev (off + 2)
    (checksum ~kind:code ~epoch:t.epoch ~seq:t.seq ~addr ~dest);
  Pmem.Device.write_u32 t.dev (off + 4) t.seq;
  Pmem.Device.write_u32 t.dev (off + 8) addr;
  Pmem.Device.write_u32 t.dev (off + 12) dest;
  if not t.skip_flush then
    Pmem.Device.flush t.dev clock Pmem.Stats.Wal ~addr:off ~len:entry_bytes;
  t.next <- t.next + 1;
  t.seq <- t.seq + 1

let checkpoint t clock =
  assert t.ready;
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  Pmem.Device.write_u8 t.dev t.base t.epoch;
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr:t.base ~len:1

let adopt dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  {
    dev;
    base;
    nentries = entries;
    interleave;
    epoch = Pmem.Device.read_u8 dev base;
    next = 0;
    seq = 0;
    ready = false;
    skip_flush = false;
  }

let seal t clock =
  assert (not t.ready);
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  t.seq <- 0;
  t.ready <- true;
  Pmem.Device.write_u8 t.dev t.base t.epoch;
  Pmem.Device.flush t.dev clock Pmem.Stats.Meta ~addr:t.base ~len:1

let reopen dev clock ~base ~entries ~interleave =
  let t = adopt dev ~base ~entries ~interleave in
  seal t clock;
  t

type replayed = { kind : kind; seq : int; addr : int; dest : int }

let replay_torn dev ~base ~entries =
  let epoch = Pmem.Device.read_u8 dev base in
  let acc = ref [] in
  let torn = ref 0 in
  for phys = 0 to entries - 1 do
    let off = base + Pmem.Cacheline.size + (phys * entry_bytes) in
    if Pmem.Device.read_u8 dev (off + 1) = epoch then begin
      let code = Pmem.Device.read_u8 dev off in
      match kind_of_code code with
      | Some kind ->
          let seq = Pmem.Device.read_u32 dev (off + 4) in
          let addr = Pmem.Device.read_u32 dev (off + 8) in
          let dest = Pmem.Device.read_u32 dev (off + 12) in
          if Pmem.Device.read_u16 dev (off + 2) = checksum ~kind:code ~epoch ~seq ~addr ~dest
          then acc := { kind; seq; addr; dest } :: !acc
          else incr torn
      | None -> ()
    end
  done;
  (List.sort (fun a b -> compare a.seq b.seq) !acc, !torn)

let replay dev ~base ~entries = fst (replay_torn dev ~base ~entries)
