type kind = Alloc | Free | Refill | Large_alloc | Large_free

let entry_bytes = 16
let entries_per_line = Pmem.Cacheline.size / entry_bytes (* 4 *)
let frame_lines = 16
let frame_entries = frame_lines * entries_per_line (* 64 *)

(* A metadata commit deferred until its WAL group closes: the effect's
   span flushes in the group's phase C, after the entries (phase A) and
   the commit record (phase B) are durable. *)
type deferred = {
  d_cat : Pmem.Stats.category;
  d_span : Pstruct.span;
  d_deps : (string * Pstruct.span) list;
}

type t = {
  dev : Pmem.Device.t;
  base : int;
  nentries : int;
  interleave : bool;
  mutable epoch : int; (* 1..255, skipping 0 = never-written *)
  mutable next : int; (* next logical slot *)
  mutable seq : int;
  mutable ready : bool; (* false between [adopt] and [seal] *)
  mutable skip_flush : bool; (* fault-injection hook, see [unsafe_set_skip_flush] *)
  (* Group commit: up to [group_n] appends share one commit record (the
     epoch-tagged watermark in the header) and one fence triple. 0 =
     synchronous (every append flushes and every commit retires inline). *)
  group_n : int;
  mutable gcount : int; (* appends in the open group *)
  mutable gspans : Pstruct.span list; (* their entry spans, newest first *)
  mutable geffects : deferred list; (* deferred commits, newest first *)
  mutable skip_record : bool; (* fault hook, see [unsafe_set_skip_commit_record] *)
  replicate : bool; (* maintain the header's guard replica (media model) *)
}

(* One leading header line, the entry area, one trailing guard-replica
   line (a mirrored copy of the guarded header bytes, see {!Guard}). *)
let region_bytes ~entries =
  assert (entries > 0 && entries mod frame_entries = 0);
  Pmem.Cacheline.size + (entries * entry_bytes) + Pmem.Cacheline.size

let kind_code = function
  | Alloc -> 1
  | Free -> 2
  | Refill -> 3
  | Large_alloc -> 4
  | Large_free -> 5

let kind_of_code = function
  | 1 -> Some Alloc
  | 2 -> Some Free
  | 3 -> Some Refill
  | 4 -> Some Large_alloc
  | 5 -> Some Large_free
  | _ -> None

(* 16-bit entry checksum over every payload field. The entry spans two
   8-byte words of one cache line ([kind epoch ck seq | addr dest]); ADR
   only guarantees 8-byte atomicity, so a crash mid-flush can persist one
   word of a new entry next to the other word's stale content from a
   previous life of the slot. The checksum lives in the first word and
   covers the second, so any torn combination fails validation and replay
   treats the entry as never written — exactly the "operation had not
   completed" semantics the WAL protocol needs. *)
let checksum ~kind ~epoch ~seq ~addr ~dest =
  let h = ref 0x9E37 in
  let mix v =
    h := (!h lxor v) * 0x01000193 land 0x3FFFFFFF;
    h := !h lxor (!h lsr 15)
  in
  mix kind;
  mix epoch;
  mix seq;
  mix addr;
  mix dest;
  !h land 0xFFFF

(* Logical slot [n] -> byte offset of its entry (relative to the entry
   area). Interleaving spreads the 64 entries of a frame across its 16
   lines: consecutive appends land in consecutive lines. *)
(* Header line and packed entry layout. The epoch byte and the group-
   commit record (watermark) share the header's first 8-byte word, so one
   ADR-atomic persist always carries a mutually consistent (epoch,
   watermark) pair — neither can tear away from the other. [gc_epoch] = 0
   marks a synchronous log (no grouping; replay accepts the whole valid
   window); nonzero, the watermark [gc_seq] bounds the committed prefix:
   replay accepts an entry iff its seq is below the watermark of the
   current epoch. *)
module Hdr = struct
  let l = Pstruct.layout "wal.header"
  let epoch = Pstruct.u8 l "epoch" ~off:0
  let gc_epoch = Pstruct.u8 l "gc_epoch" ~off:1
  let gc_ck = Pstruct.u16 l "gc_ck" ~off:2
  let gc_seq = Pstruct.u32 l "gc_seq" ~off:4
  let cksum = Pstruct.u16 l "cksum" ~off:8
  let () = Pstruct.seal l ~size:Pmem.Cacheline.size
end

let _ = Hdr.cksum

(* Media guard over the header's first word (epoch + watermark): content
   checksum at offset 8 (same line — refreshed inside every header
   commit for free), replica on the region's trailing line. Repairing a
   torn or poisoned header from a replica that trails by one update
   re-creates a state the crash model already covers: the watermark (or
   epoch) rolls back to just before the damaged commit, whose entries
   replay as the open-group / pre-checkpoint window. *)
let guard_record ~base ~entries =
  {
    Guard.primary = base;
    len = 8;
    p_ck = base + 8;
    replica = base + Pmem.Cacheline.size + (entries * entry_bytes);
    r_ck = base + Pmem.Cacheline.size + (entries * entry_bytes) + 8;
    cat = Pmem.Stats.Wal;
  }

(* The watermark word is 8-byte-atomic under ADR, so this checksum guards
   nothing in the simulated failure model — it is defence in depth against
   a stale word from a previous format of the region. *)
let gc_checksum ~epoch ~seq = checksum ~kind:0x6C ~epoch ~seq ~addr:0 ~dest:0

let hdr_word_span base = Pstruct.span_of ~addr:base ~len:8

module Entry = struct
  let l = Pstruct.layout "wal.entry"
  let kind = Pstruct.u8 l "kind" ~off:0
  let epoch = Pstruct.u8 l "epoch" ~off:1
  let ck = Pstruct.u16 l "ck" ~off:2
  let seq = Pstruct.u32 l "seq" ~off:4
  let addr = Pstruct.u32 l "addr" ~off:8
  let dest = Pstruct.u32 l "dest" ~off:12
  let () = Pstruct.seal l ~size:entry_bytes
end

let slot_offset t n =
  let phys =
    if not t.interleave then n
    else
      let frame = n / frame_entries and k = n mod frame_entries in
      let line = k mod frame_lines and pos = k / frame_lines in
      (frame * frame_entries) + (line * entries_per_line) + pos
  in
  Pmem.Cacheline.size + (phys * entry_bytes)

(* Every header write goes through here: a log that is (or has become)
   synchronous must zero the group-commit record, or a stale watermark
   from a grouped life of the region would discard the sync entries of
   this one. In grouped mode the watermark rides along with the epoch —
   set to the current seq, so entries of the (new) epoch stay uncommitted
   until their group closes. *)
let write_header t =
  Pstruct.set t.dev ~base:t.base Hdr.epoch t.epoch;
  if t.group_n > 0 then begin
    Pstruct.set t.dev ~base:t.base Hdr.gc_epoch t.epoch;
    Pstruct.set t.dev ~base:t.base Hdr.gc_ck (gc_checksum ~epoch:t.epoch ~seq:t.seq);
    Pstruct.set t.dev ~base:t.base Hdr.gc_seq t.seq
  end
  else begin
    Pstruct.set t.dev ~base:t.base Hdr.gc_epoch 0;
    Pstruct.set t.dev ~base:t.base Hdr.gc_ck 0;
    Pstruct.set t.dev ~base:t.base Hdr.gc_seq 0
  end;
  Guard.refresh t.dev (guard_record ~base:t.base ~entries:t.nentries)

let write_replica t clock =
  if t.replicate then
    Guard.write_replica t.dev clock (guard_record ~base:t.base ~entries:t.nentries)

let create ?(group = 0) ?(replicate = false) dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  assert (group >= 0);
  let t =
    {
      dev;
      base;
      nentries = entries;
      interleave;
      epoch = 1;
      next = 0;
      seq = 0;
      ready = true;
      skip_flush = false;
      group_n = group;
      gcount = 0;
      gspans = [];
      geffects = [];
      skip_record = false;
      replicate;
    }
  in
  (* Entry epochs are all 0 (the device zero-fills), hence invalid. *)
  write_header t;
  if replicate then
    (* Volatile-only here; the caller persists the whole init image. *)
    let r = guard_record ~base ~entries in
    Pmem.Device.blit dev ~src:r.Guard.primary ~dst:r.Guard.replica ~len:(r.Guard.len + 2)
  else ();
  t

let entries t = t.nentries
let used t = t.next
let near_full t = t.next >= t.nentries
let is_ready t = t.ready
let group_commit t = t.group_n
let open_group t = t.gcount
let unsafe_set_skip_flush t v = t.skip_flush <- v
let unsafe_set_skip_commit_record t v = t.skip_record <- v

(* Returns the entry's base offset; allocation-free so the plain [append]
   fast path stays allocation-free too (grouped appends allocate a span
   for the group's phase A — three conses per op, off the flush path). *)
let append_off t clock kind ~addr ~dest =
  assert t.ready;
  assert (not (near_full t));
  let off = t.base + slot_offset t t.next in
  let code = kind_code kind in
  Pstruct.set t.dev ~base:off Entry.kind code;
  Pstruct.set t.dev ~base:off Entry.epoch t.epoch;
  Pstruct.set t.dev ~base:off Entry.ck
    (checksum ~kind:code ~epoch:t.epoch ~seq:t.seq ~addr ~dest);
  Pstruct.set t.dev ~base:off Entry.seq t.seq;
  Pstruct.set t.dev ~base:off Entry.addr addr;
  Pstruct.set t.dev ~base:off Entry.dest dest;
  let elen = Pstruct.size Entry.l in
  if t.group_n = 0 then begin
    if not t.skip_flush then Pmem.Device.flush t.dev clock Pmem.Stats.Wal ~addr:off ~len:elen
    else
      (* The broken-protocol hook must compose with coalescing: a skipped
         flush must also leave the thread's pending buffer, or the next
         fence would quietly persist it and the fuzz scenario would lose
         its teeth. (Dropping the line may drop pending sibling entries
         too — strictly more broken, which is the point of the hook.) *)
      Pmem.Device.unpend t.dev clock ~addr:off ~len:elen
  end
  else begin
    t.gcount <- t.gcount + 1;
    if not t.skip_flush then begin
      Pmem.Device.flush_weak t.dev clock Pmem.Stats.Wal ~addr:off ~len:elen;
      t.gspans <- Pstruct.span_of ~addr:off ~len:elen :: t.gspans
    end
    else begin
      Pmem.Device.unpend t.dev clock ~addr:off ~len:elen;
      (* Drop same-line spans from the open group so phase A does not
         re-persist the line the hook just suppressed. *)
      let line = Pmem.Cacheline.index off in
      t.gspans <-
        List.filter (fun (s : Pstruct.span) -> Pmem.Cacheline.index s.addr <> line) t.gspans
    end
  end;
  t.next <- t.next + 1;
  t.seq <- t.seq + 1;
  off

let append t clock kind ~addr ~dest = ignore (append_off t clock kind ~addr ~dest)

let append_span t clock kind ~addr ~dest =
  let off = append_off t clock kind ~addr ~dest in
  Pstruct.layout_span ~base:off Entry.l

(* Close the open group. Three fences cover what would have been 2N:
   phase A persists the group's entries; phase B persists the commit
   record (the watermark — one atomic header-word write that marks every
   entry below it committed); phase C retires the deferred metadata
   commits those entries order (validating their declared deps, which
   phase A made durable). A crash before B loses the whole group (replay
   stops at the old watermark: the allocator never published the ops'
   effects, so no pointer dangles); a crash after B replays it. *)
let flush_group t clock =
  if t.group_n > 0 && (t.gcount > 0 || t.geffects <> []) then begin
    (* Blame attribution: the whole three-phase close is one interior
       frame, so its flushes and fences separate from the op that
       happened to trip the group boundary. *)
    (match Pmem.Device.attribution t.dev with
    | None -> ()
    | Some a ->
        Telemetry.Attr.enter_named a ~tid:(Sim.Clock.id clock) ~name:"wal:group_commit"
          ~ts:(Sim.Clock.now clock));
    if t.skip_record then
      (* Broken-protocol hook: the commit record forgets its contract.
         Phase A is dropped — the group's entries leave the pending
         buffer unflushed — while the watermark still advances and phase
         C still retires the effects. A crash now finds effects durable
         under a commit record with no entries behind it: no undo
         evidence, which the recovery sanity pass cannot heal. This is
         the observable endpoint of writing the record before the
         entries are durable — the ordering the three-phase close
         exists to enforce. *)
      List.iter
        (fun (s : Pstruct.span) -> Pmem.Device.unpend t.dev clock ~addr:s.addr ~len:s.len)
        t.gspans
    else
      List.iter
        (fun (s : Pstruct.span) ->
          Pmem.Device.flush_weak t.dev clock Pmem.Stats.Wal ~addr:s.addr ~len:s.len)
        t.gspans;
    Pmem.Device.fence t.dev clock;
    if t.gcount > 0 then begin
      Pstruct.set t.dev ~base:t.base Hdr.gc_epoch t.epoch;
      Pstruct.set t.dev ~base:t.base Hdr.gc_ck (gc_checksum ~epoch:t.epoch ~seq:t.seq);
      Pstruct.set t.dev ~base:t.base Hdr.gc_seq t.seq;
      Guard.refresh t.dev (guard_record ~base:t.base ~entries:t.nentries);
      let w = hdr_word_span t.base in
      Pmem.Device.flush_weak t.dev clock Pmem.Stats.Wal ~addr:w.Pstruct.addr ~len:w.Pstruct.len;
      write_replica t clock;
      Pmem.Device.fence t.dev clock;
      Pmem.Device.note_group_commit t.dev clock ~entries:t.gcount
    end;
    (match t.geffects with
    | [] -> ()
    | effects ->
        List.iter
          (fun d ->
            List.iter
              (fun (note, (s : Pstruct.span)) ->
                Pmem.Device.depends_on ~note t.dev clock ~addr:s.addr ~len:s.len)
              d.d_deps;
            Pmem.Device.commit_flush_weak t.dev clock d.d_cat ~addr:d.d_span.Pstruct.addr
              ~len:d.d_span.Pstruct.len)
          (List.rev effects);
        Pmem.Device.fence t.dev clock);
    t.gcount <- 0;
    t.gspans <- [];
    t.geffects <- [];
    match Pmem.Device.attribution t.dev with
    | None -> ()
    | Some a -> Telemetry.Attr.leave a ~tid:(Sim.Clock.id clock) ~ts:(Sim.Clock.now clock)
  end

(* A metadata commit ordered after a grouped entry: queue it for the
   group's phase C instead of retiring it inline. With grouping off (or
   before [seal] re-enables the log — recovery replays effects through
   the same code paths) this is exactly [Pstruct.commit]. *)
let defer_commit ?(deps = []) t clock cat span =
  if t.group_n = 0 || not t.ready then Pstruct.commit ~deps t.dev clock cat span
  else begin
    t.geffects <- { d_cat = cat; d_span = span; d_deps = deps } :: t.geffects;
    if t.gcount >= t.group_n then flush_group t clock
  end

let checkpoint t clock =
  assert t.ready;
  (* The open group belongs to the dying epoch: close it first, so ops
     already acknowledged to callers stay recoverable right up to the
     epoch bump that obsoletes them. *)
  flush_group t clock;
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  write_header t;
  Pstruct.commit t.dev clock Pmem.Stats.Meta (hdr_word_span t.base);
  write_replica t clock

let adopt ?(group = 0) ?(replicate = false) dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  {
    dev;
    base;
    nentries = entries;
    interleave;
    epoch = Pstruct.get dev ~base Hdr.epoch;
    next = 0;
    seq = 0;
    ready = false;
    skip_flush = false;
    group_n = group;
    gcount = 0;
    gspans = [];
    geffects = [];
    skip_record = false;
    replicate;
  }

let seal t clock =
  assert (not t.ready);
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  t.seq <- 0;
  t.ready <- true;
  write_header t;
  Pstruct.commit t.dev clock Pmem.Stats.Meta (hdr_word_span t.base);
  write_replica t clock

let reopen ?group ?replicate dev clock ~base ~entries ~interleave =
  let t = adopt ?group ?replicate dev ~base ~entries ~interleave in
  seal t clock;
  t

let verify_guard dev clock ~base ~entries =
  Guard.verify_repair dev clock (guard_record ~base ~entries)

type replayed = { kind : kind; seq : int; addr : int; dest : int }

let replay_full dev ~base ~entries =
  let epoch = Pstruct.get dev ~base Hdr.epoch in
  (* Group-commit watermark: [gc_epoch] = 0 marks a synchronous log —
     every entry was durable before its effects, accept the whole valid
     window. Nonzero, only entries the commit record covers (seq below
     the current epoch's watermark) are committed; a watermark from
     another epoch, or one failing its checksum, covers nothing. Valid
     entries at or beyond the watermark belonged to the open group at the
     crash: their ops never committed, but their metadata effects may
     have leaked to the media through shared-line flushes, so recovery
     needs them as undo evidence — they come back separately. *)
  let limit =
    let gc_epoch = Pstruct.get dev ~base Hdr.gc_epoch in
    if gc_epoch = 0 then max_int
    else
      let gc_seq = Pstruct.get dev ~base Hdr.gc_seq in
      if
        gc_epoch = epoch
        && Pstruct.get dev ~base Hdr.gc_ck = gc_checksum ~epoch:gc_epoch ~seq:gc_seq
      then gc_seq
      else 0
  in
  let acc = ref [] in
  let dropped = ref [] in
  let torn = ref 0 in
  for phys = 0 to entries - 1 do
    let off = base + Pmem.Cacheline.size + (phys * entry_bytes) in
    if Pstruct.get dev ~base:off Entry.epoch = epoch then begin
      let code = Pstruct.get dev ~base:off Entry.kind in
      match kind_of_code code with
      | Some kind ->
          let seq = Pstruct.get dev ~base:off Entry.seq in
          let addr = Pstruct.get dev ~base:off Entry.addr in
          let dest = Pstruct.get dev ~base:off Entry.dest in
          if Pstruct.get dev ~base:off Entry.ck = checksum ~kind:code ~epoch ~seq ~addr ~dest
          then begin
            if seq < limit then acc := { kind; seq; addr; dest } :: !acc
            else dropped := { kind; seq; addr; dest } :: !dropped
          end
          else incr torn
      | None -> ()
    end
  done;
  let by_seq = List.sort (fun a b -> compare a.seq b.seq) in
  (by_seq !acc, by_seq !dropped, !torn)

let replay_torn dev ~base ~entries =
  let committed, _, torn = replay_full dev ~base ~entries in
  (committed, torn)

let replay dev ~base ~entries = fst (replay_torn dev ~base ~entries)
