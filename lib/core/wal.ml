type kind = Alloc | Free | Refill | Large_alloc | Large_free

let entry_bytes = 16
let entries_per_line = Pmem.Cacheline.size / entry_bytes (* 4 *)
let frame_lines = 16
let frame_entries = frame_lines * entries_per_line (* 64 *)

type t = {
  dev : Pmem.Device.t;
  base : int;
  nentries : int;
  interleave : bool;
  mutable epoch : int; (* 1..255, skipping 0 = never-written *)
  mutable next : int; (* next logical slot *)
  mutable seq : int;
  mutable ready : bool; (* false between [adopt] and [seal] *)
  mutable skip_flush : bool; (* fault-injection hook, see [unsafe_set_skip_flush] *)
}

let region_bytes ~entries =
  assert (entries > 0 && entries mod frame_entries = 0);
  Pmem.Cacheline.size + (entries * entry_bytes)

let kind_code = function
  | Alloc -> 1
  | Free -> 2
  | Refill -> 3
  | Large_alloc -> 4
  | Large_free -> 5

let kind_of_code = function
  | 1 -> Some Alloc
  | 2 -> Some Free
  | 3 -> Some Refill
  | 4 -> Some Large_alloc
  | 5 -> Some Large_free
  | _ -> None

(* 16-bit entry checksum over every payload field. The entry spans two
   8-byte words of one cache line ([kind epoch ck seq | addr dest]); ADR
   only guarantees 8-byte atomicity, so a crash mid-flush can persist one
   word of a new entry next to the other word's stale content from a
   previous life of the slot. The checksum lives in the first word and
   covers the second, so any torn combination fails validation and replay
   treats the entry as never written — exactly the "operation had not
   completed" semantics the WAL protocol needs. *)
let checksum ~kind ~epoch ~seq ~addr ~dest =
  let h = ref 0x9E37 in
  let mix v =
    h := (!h lxor v) * 0x01000193 land 0x3FFFFFFF;
    h := !h lxor (!h lsr 15)
  in
  mix kind;
  mix epoch;
  mix seq;
  mix addr;
  mix dest;
  !h land 0xFFFF

(* Logical slot [n] -> byte offset of its entry (relative to the entry
   area). Interleaving spreads the 64 entries of a frame across its 16
   lines: consecutive appends land in consecutive lines. *)
(* Header line (epoch byte) and packed entry layout. *)
module Hdr = struct
  let l = Pstruct.layout "wal.header"
  let epoch = Pstruct.u8 l "epoch" ~off:0
  let () = Pstruct.seal l ~size:Pmem.Cacheline.size
end

module Entry = struct
  let l = Pstruct.layout "wal.entry"
  let kind = Pstruct.u8 l "kind" ~off:0
  let epoch = Pstruct.u8 l "epoch" ~off:1
  let ck = Pstruct.u16 l "ck" ~off:2
  let seq = Pstruct.u32 l "seq" ~off:4
  let addr = Pstruct.u32 l "addr" ~off:8
  let dest = Pstruct.u32 l "dest" ~off:12
  let () = Pstruct.seal l ~size:entry_bytes
end

let slot_offset t n =
  let phys =
    if not t.interleave then n
    else
      let frame = n / frame_entries and k = n mod frame_entries in
      let line = k mod frame_lines and pos = k / frame_lines in
      (frame * frame_entries) + (line * entries_per_line) + pos
  in
  Pmem.Cacheline.size + (phys * entry_bytes)

let create dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  Pstruct.set dev ~base Hdr.epoch 1;
  (* Entry epochs are all 0 (the device zero-fills), hence invalid. *)
  {
    dev;
    base;
    nentries = entries;
    interleave;
    epoch = 1;
    next = 0;
    seq = 0;
    ready = true;
    skip_flush = false;
  }

let entries t = t.nentries
let used t = t.next
let near_full t = t.next >= t.nentries
let unsafe_set_skip_flush t v = t.skip_flush <- v

(* Returns the entry's base offset; allocation-free so the plain [append]
   fast path stays allocation-free too. *)
let append_off t clock kind ~addr ~dest =
  assert t.ready;
  assert (not (near_full t));
  let off = t.base + slot_offset t t.next in
  let code = kind_code kind in
  Pstruct.set t.dev ~base:off Entry.kind code;
  Pstruct.set t.dev ~base:off Entry.epoch t.epoch;
  Pstruct.set t.dev ~base:off Entry.ck
    (checksum ~kind:code ~epoch:t.epoch ~seq:t.seq ~addr ~dest);
  Pstruct.set t.dev ~base:off Entry.seq t.seq;
  Pstruct.set t.dev ~base:off Entry.addr addr;
  Pstruct.set t.dev ~base:off Entry.dest dest;
  if not t.skip_flush then
    Pmem.Device.flush t.dev clock Pmem.Stats.Wal ~addr:off ~len:(Pstruct.size Entry.l);
  t.next <- t.next + 1;
  t.seq <- t.seq + 1;
  off

let append t clock kind ~addr ~dest = ignore (append_off t clock kind ~addr ~dest)

let append_span t clock kind ~addr ~dest =
  let off = append_off t clock kind ~addr ~dest in
  Pstruct.layout_span ~base:off Entry.l

let checkpoint t clock =
  assert t.ready;
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  Pstruct.set t.dev ~base:t.base Hdr.epoch t.epoch;
  Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.span ~base:t.base Hdr.epoch)

let adopt dev ~base ~entries ~interleave =
  assert (entries mod frame_entries = 0);
  {
    dev;
    base;
    nentries = entries;
    interleave;
    epoch = Pstruct.get dev ~base Hdr.epoch;
    next = 0;
    seq = 0;
    ready = false;
    skip_flush = false;
  }

let seal t clock =
  assert (not t.ready);
  t.epoch <- (if t.epoch >= 255 then 1 else t.epoch + 1);
  t.next <- 0;
  t.seq <- 0;
  t.ready <- true;
  Pstruct.set t.dev ~base:t.base Hdr.epoch t.epoch;
  Pstruct.commit t.dev clock Pmem.Stats.Meta (Pstruct.span ~base:t.base Hdr.epoch)

let reopen dev clock ~base ~entries ~interleave =
  let t = adopt dev ~base ~entries ~interleave in
  seal t clock;
  t

type replayed = { kind : kind; seq : int; addr : int; dest : int }

let replay_torn dev ~base ~entries =
  let epoch = Pstruct.get dev ~base Hdr.epoch in
  let acc = ref [] in
  let torn = ref 0 in
  for phys = 0 to entries - 1 do
    let off = base + Pmem.Cacheline.size + (phys * entry_bytes) in
    if Pstruct.get dev ~base:off Entry.epoch = epoch then begin
      let code = Pstruct.get dev ~base:off Entry.kind in
      match kind_of_code code with
      | Some kind ->
          let seq = Pstruct.get dev ~base:off Entry.seq in
          let addr = Pstruct.get dev ~base:off Entry.addr in
          let dest = Pstruct.get dev ~base:off Entry.dest in
          if Pstruct.get dev ~base:off Entry.ck = checksum ~kind:code ~epoch ~seq ~addr ~dest
          then acc := { kind; seq; addr; dest } :: !acc
          else incr torn
      | None -> ()
    end
  done;
  (List.sort (fun a b -> compare a.seq b.seq) !acc, !torn)

let replay dev ~base ~entries = fst (replay_torn dev ~base ~entries)
