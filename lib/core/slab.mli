(** Slabs: 64 KB containers of fixed-size blocks (sections 2.1, 4.2, 5.2).

    Each slab has a {e persistent header} — everything needed to rebuild
    state after a crash — and a {e volatile} descriptor ([t], the paper's
    vslab) for fast free-block search.

    The persistent header is one {e packed 64-bit word} (plus its
    checksum), so that every header commit dirties exactly one cache
    line and every header update is a single 8-byte store — crash-atomic
    under the torn-store model, no torn multi-field headers to repair:

    {v
    bit 0              16      24    26         34          44     50         63
        +--------------+-------+-----+----------+-----------+------+----------+-+
        | magic 0x51AB | class | flg | old_class| index_cnt | arena| free_hint|0|
        |    16 bits   |   8   |  2  |    8     |    10     |  6   |    13    | |
        +--------------+-------+-----+----------+-----------+------+----------+-+
    v}

    - [class] is the size-class index; [data_offset] is {e derived} from
      it via {!layout_of_class} and no longer stored.
    - [flg]/[old_class]/[index_cnt] are the morphing fields (section
      5.2); the index table records the live blocks of the previous size
      class while the slab hosts two classes at once. [old_class] =
      [0xFF] ([Header.no_class]) when the slab is not morphing.
    - [arena] is the owning arena index (recovery placement).
    - [free_hint] is an {e advisory} free-block count, refreshed only
      inside header commits and recomputed by recovery — never read on
      the hot path, so no extra header dirtying per alloc/free.
    - bit 63 stays zero, making the word a lossless OCaml int.

    Persistent layout of a slab (offsets from the slab base):
    {v
    0     packed header word (8 B)   cksum:u16 (offset 8)
    64    index_table     (512 entries * 2 B, fixed position)
    1088  guard replica   (mirrored copy of bytes 0..9, one cache line)
    1152  bitmap          (bitmap_lines * 64 B, cache-line aligned)
    data_offset  blocks
    v}

    [cksum] guards the packed word ({!Guard}): it is refreshed inside
    every header commit (same cache line, so it persists for free), and —
    when [Config.media_replication] is on — mirrored together with the
    word into the guard-replica line so a poisoned or rotten header can
    be repaired instead of losing the slab.

    The index table sits at a fixed offset {e before} the bitmap so that a
    morph's step-2 index writes can never clobber the old bitmap, which
    the crash-undo path may still need while the flag is 1.

    An index-table entry packs the old-class block index (low 12 bits) and
    an allocated bit (bit 15). Mutators in this module only touch the
    volatile image; callers flush the returned/selected lines, so that the
    flush pattern (the thing the paper measures) is decided by the
    allocator paths in {!Arena}. *)

val slab_bytes : int
(** 64 KB. *)

val index_capacity : int
(** Maximum index-table entries (bound on live old-class blocks a morph
    candidate may carry); 512. *)

val magic : int

type layout = {
  class_idx : int;
  block_size : int;
  nblocks : int;
  bitmap_lines : int;
  index_off : int;  (** slab-relative offset of the index table *)
  data_off : int;  (** slab-relative offset of block 0 *)
}

val layout_of_class : class_idx:int -> mapping:Bitmap.mapping -> layout
(** Computed to a fixpoint: enlarging the header shrinks the block count,
    which can shrink the bitmap again. *)

(** Volatile descriptor (the vslab). *)
type t = {
  addr : int;  (** slab base address in the device *)
  arena : int;  (** owning arena index *)
  mutable layout : layout;
  mutable bitmap : Bitmap.t;
  mutable free_count : int;
  mutable avail : int array;
      (** volatile free-block bitset (1 = available), kept via
          {!free_put}/{!free_claim}; agrees bit-for-bit with the
          complement of the persistent bitmap on non-morphing slabs
          outside the internal-collection variant *)
  mutable tcached : int;
      (** blocks sitting in tcaches while unmarked in the bitmap
          (internal-collection variant); such a slab must not morph *)
  mutable freelist_node : t Support.Dlist.node option;
      (** membership in the arena's per-class slab freelist *)
  mutable lru_node : t Support.Dlist.node option;  (** membership in the LRU *)
  mutable morph : morph option;
  mutable dying : bool;  (** being returned to the large allocator *)
  mutable quarantined : bool;
      (** header unrepairable: withdrawn from freelists and the LRU,
          blocks written off, frees dropped (see [Nvalloc]) *)
}

(** Volatile morphing state of a slab_in. *)
and morph = {
  old_class : int;
  old_block_size : int;
  old_data_off : int;
  mutable cnt_slab : int;  (** live old-class blocks (paper's cnt_slab) *)
  cnt_block : int array;  (** per new block: overlapping live old blocks *)
  old_live : (int, int) Hashtbl.t;  (** old block index -> index-table slot *)
}

(** {1 Creation and header access} *)

val format :
  Pmem.Device.t -> addr:int -> arena:int -> mapping:Bitmap.mapping -> layout -> t
(** Write a fresh persistent header (volatile image only; caller flushes
    header and bitmap lines) and build its vslab. [layout] must have been
    computed with the same [mapping]. *)

val header_addr : t -> int
(** Address of the header line (the packed word). *)

val bitmap_addr : t -> int
val index_entry_addr : t -> int -> int
(** Address of index-table slot [i]. *)

val read_index_entry : Pmem.Device.t -> int -> int -> int
val write_index_entry : Pmem.Device.t -> int -> int -> int -> unit
(** Typed index-table access by slab base address (volatile image only;
    callers flush/commit). *)

val index_entry_span : int -> int -> Pstruct.span
(** Span of index-table slot [i] of the slab based at the given address
    (flush target / commit dependency). *)

val header_commit_span : int -> Pstruct.span
(** The header unit the morph protocol commits: the packed word plus its
    checksum (the first 16 bytes of the slab — always one cache line). *)

val guard_record : int -> Guard.record
(** The header's guard record (checksum at offset 8, replica line at
    offset 1088) for the slab based at the given address. Every header
    write site refreshes the checksum before committing; replication and
    repair are driven by [Arena]/[Nvalloc]. *)

val read_class : Pmem.Device.t -> int -> int
(** [read_class dev addr] reads the size class from a slab header. *)

val is_slab_header : Pmem.Device.t -> int -> bool
(** Magic check, used by recovery when scanning extents. *)

val unsafe_set_broken_header : bool -> unit
(** Mutation-test knob: make the packed-word {e decoder} flip the lowest
    bit of the class field (as a mispacked shift would), so every header
    read disagrees with the volatile layout. Caught by
    [Nvalloc.integrity_walk] and the lib/check runner; never set outside
    a test harness. Global — construction paths reset it. *)

(** Raw persistent-header field access by slab base address, for the
    morphing state machine and recovery (which has no vslab yet). Each
    write is a read-modify-write of the packed word in the volatile
    image only; callers flush. *)
module Header : sig
  val read_class : Pmem.Device.t -> int -> int
  val write_class : Pmem.Device.t -> int -> int -> unit
  val read_flag : Pmem.Device.t -> int -> int
  val write_flag : Pmem.Device.t -> int -> int -> unit
  val read_old_class : Pmem.Device.t -> int -> int
  (** [no_class] when the slab is not (and was not) morphing. *)

  val write_old_class : Pmem.Device.t -> int -> int -> unit
  val read_index_count : Pmem.Device.t -> int -> int
  val write_index_count : Pmem.Device.t -> int -> int -> unit
  val read_arena : Pmem.Device.t -> int -> int
  val write_arena : Pmem.Device.t -> int -> int -> unit
  val read_free_hint : Pmem.Device.t -> int -> int
  val write_free_hint : Pmem.Device.t -> int -> int -> unit
  val no_class : int
end

(** {1 Blocks} *)

val block_addr : t -> int -> int
val block_index : t -> int -> int
(** Inverse of {!block_addr}; asserts alignment to the block grid. *)

val contains_new_block : t -> int -> bool
(** Whether the address lies on the current-class block grid. *)

val usable : t -> int -> bool
(** Block [b] can be handed out: bit clear and (when morphing) not
    overlapped by live old-class blocks. *)

val occupancy_ratio : t -> float
(** Allocated blocks / total blocks (the paper's Ratio_occupy). Counts
    morph-pinned blocks as allocated. *)

(** {1 Volatile free set} *)

val free_mem : t -> int -> bool
(** Block [b] is in the free set. *)

val free_put : t -> int -> unit
(** Add block [b] to the free set (asserts it is absent);
    increments [free_count]. *)

val free_claim : t -> int -> unit
(** Remove block [b] from the free set (asserts it is present);
    decrements [free_count]. *)

val free_take_first : t -> int option
(** Claim and return the lowest-index free block (word-scan first-fit),
    [None] when the free set is empty. *)

val iter_free : t -> (int -> unit) -> unit
(** Apply to every free block index, ascending. *)

val recompute_free : Pmem.Device.t -> t -> unit
(** Rebuild the free set (and [free_count]) from the persistent bitmap
    and the morph pins: free = bit clear and {!usable}. Allocates a fresh
    bitset sized to the current layout — call after a morph swaps the
    layout or after recovery rebuilds the bitmap. *)

(** {1 Morphing support} *)

val pack_index_entry : block:int -> allocated:bool -> int
val unpack_index_entry : int -> int * bool
val old_block_index : morph -> int -> int option
(** [old_block_index m off] is the old-class block index for a
    slab-relative byte offset [off], provided it lies on the old block
    grid and that block is live. *)

val overlapping_new_blocks : t -> morph -> int -> int * int
(** [overlapping_new_blocks t m old_b] is the inclusive range of
    current-class block indices overlapped by old-class block [old_b]
    (clamped to valid blocks). *)

(** {1 Recovery} *)

val recover : Pmem.Device.t -> addr:int -> arena:int -> mapping:Bitmap.mapping -> t * bool
(** Rebuild a vslab from its persistent header (section 4.4). If the
    header's flag shows a morph was torn by a crash, the transformation is
    undone first: flag 1 resets the copied old-class fields; flag 2
    additionally restores the class field and rebuilds the old bitmap
    from the index table. Returns [(vslab, undone)]; when [undone] the
    caller must flush the whole header+bitmap area. Morphing state
    (old_live, cnt_slab, cnt_block) is reconstructed from the index
    table for slabs still hosting two classes, with the old data offset
    re-derived from [old_class] via {!layout_of_class}. *)
