open Nvalloc_core

let report_suffix report = Format.asprintf " [%a]" Nvalloc.pp_recovery_report report

(* Persist-ordering verdict from the device checker (check mode only):
   any commit that retired while a declared dependency was still dirty,
   recorded during the run that led here or during the stage named by
   [stage]. *)
let ordering_failure dev ~stage =
  if not (Pmem.Device.check_mode dev) then None
  else
    let n = Pmem.Device.ordering_violation_count dev in
    if n = 0 then None
    else
      let first =
        match Pmem.Device.ordering_violations dev with
        | v :: _ -> Format.asprintf ": %a" Pmem.Device.pp_violation v
        | [] -> ""
      in
      Some (Printf.sprintf "%d persist-ordering violation(s) %s%s" n stage first)

let check ~config dev clock =
  let fail report fmt =
    Printf.ksprintf (fun msg -> failwith (msg ^ report_suffix report)) fmt
  in
  try
    (* 0. Persist-ordering up to (and including) the crash. *)
    (match ordering_failure dev ~stage:"before recovery" with
    | Some msg -> failwith msg
    | None -> ());
    let t, report = Nvalloc.recover ~config dev clock in
    (* 1. Owner-index disjointness. *)
    (match Nvalloc.check_owner_index t with
    | Ok _ -> ()
    | Error e -> fail report "owner index broken: %s" e);
    (* 2. Every published root resolves to an owned block and frees. *)
    let th = Nvalloc.thread t clock in
    for i = 0 to Nvalloc.root_slots t - 1 do
      let dest = Nvalloc.root_addr t i in
      let v = Nvalloc.read_ptr t ~dest in
      if v > 0 then begin
        if Nvalloc.owner_of_addr t v = None then
          fail report "published root %d -> %#x has no owner" i v;
        Nvalloc.free_from t th ~dest
      end
    done;
    (* 3a. NVAlloc-IC: leak resolution is the application's job — walk
       the exact object enumeration and free the orphans through a
       scratch slot (the POBJ_FIRST/POBJ_NEXT idiom). All published
       roots were just freed, so whatever remains is an orphan. *)
    if config.Config.consistency = Config.Internal_collection then begin
      let orphans = ref [] in
      Nvalloc.iter_allocated t (fun ~addr ~size:_ -> orphans := addr :: !orphans);
      let scratch = Nvalloc.root_addr t 0 in
      List.iter
        (fun addr ->
          Pmem.Device.write_int64 dev scratch (Int64.of_int addr);
          Pmem.Device.flush dev clock Pmem.Stats.Data ~addr:scratch ~len:8;
          Nvalloc.free_from t th ~dest:scratch)
        !orphans
    end;
    (* 3b. Leak-freedom: a clean shutdown drains the tcaches; reopening
       must find a Shutdown heap with nothing still marked allocated. *)
    Nvalloc.exit_ t clock;
    let t2, report2 = Nvalloc.recover ~config dev clock in
    if report2.Nvalloc.found_state <> Heap.Shutdown then
      fail report2 "clean exit not observed as Shutdown";
    let live = Nvalloc.allocated_small_blocks t2 in
    if live <> 0 then fail report "%d small blocks leaked" live;
    (* 4. Usability probe: the heap serves fresh allocations. *)
    let th2 = Nvalloc.thread t2 clock in
    for i = 0 to 63 do
      ignore (Nvalloc.malloc_to t2 th2 ~size:64 ~dest:(Nvalloc.root_addr t2 i))
    done;
    for i = 0 to 63 do
      Nvalloc.free_from t2 th2 ~dest:(Nvalloc.root_addr t2 i)
    done;
    (* 5. Persist-ordering of recovery and the oracle's own traffic. *)
    (match ordering_failure dev ~stage:"during recovery/oracle" with
    | Some msg -> fail report "%s" msg
    | None -> ());
    Ok report
  with
  | Failure msg -> Error msg
  | e -> Error (Printf.sprintf "exception: %s" (Printexc.to_string e))
