open Nvalloc_core

type variant = Log | Gc | Ic

type t = {
  variant : variant;
  seed : int;
  ops : int;
  crash_after : int;
  torn : Pmem.Device.torn_mode option;
  torn_seed : int;
  recovery_crash : int option;
  poison : int;
  pseed : int;
  rot : int;
  rseed : int;
  scrub : bool;
}

let media_active t = t.poison > 0 || t.rot > 0 || t.scrub

let config variant =
  let base =
    match variant with
    | Log -> Config.log_default
    | Gc -> Config.gc_default
    | Ic -> Config.ic_default
  in
  {
    base with
    Config.arenas = 2;
    root_slots = 1024;
    booklog_chunks = 128;
    wal_entries = 1024;
    tcache_capacity = 8;
  }

let variant_name = function Log -> "log" | Gc -> "gc" | Ic -> "ic"

let torn_name = function
  | None -> "line"
  | Some Pmem.Device.Torn_prefix -> "prefix"
  | Some Pmem.Device.Torn_suffix -> "suffix"
  | Some Pmem.Device.Torn_random -> "random"

let to_string t =
  let base =
    Printf.sprintf "v=%s seed=%d ops=%d crash=%d torn=%s tseed=%d rcrash=%s"
      (variant_name t.variant) t.seed t.ops t.crash_after (torn_name t.torn) t.torn_seed
      (match t.recovery_crash with None -> "-" | Some n -> string_of_int n)
  in
  (* Media fields are appended only when active, so legacy plans keep
     their exact historical rendering (round-trip and golden stability). *)
  if media_active t then
    base
    ^ Printf.sprintf " poison=%d pseed=%d rot=%d rseed=%d scrub=%d" t.poison t.pseed t.rot
        t.rseed
        (if t.scrub then 1 else 0)
  else base

let of_string s =
  let ( let* ) = Result.bind in
  let fields = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc tok ->
        let* () = acc in
        if tok = "" then Ok ()
        else
          match String.index_opt tok '=' with
          | Some i ->
              Hashtbl.replace fields
                (String.sub tok 0 i)
                (String.sub tok (i + 1) (String.length tok - i - 1));
              Ok ()
          | None -> Error (Printf.sprintf "bad token %S (expected key=value)" tok))
      (Ok ())
      (String.split_on_char ' ' (String.trim s))
  in
  let get k =
    match Hashtbl.find_opt fields k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" k)
  in
  let int_field k =
    let* v = get k in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %s: not an integer (%S)" k v)
  in
  let* variant =
    let* v = get "v" in
    match v with
    | "log" -> Ok Log
    | "gc" -> Ok Gc
    | "ic" -> Ok Ic
    | _ -> Error (Printf.sprintf "field v: unknown variant %S" v)
  in
  let* seed = int_field "seed" in
  let* ops = int_field "ops" in
  let* crash_after = int_field "crash" in
  let* torn =
    let* v = get "torn" in
    match v with
    | "line" -> Ok None
    | "prefix" -> Ok (Some Pmem.Device.Torn_prefix)
    | "suffix" -> Ok (Some Pmem.Device.Torn_suffix)
    | "random" -> Ok (Some Pmem.Device.Torn_random)
    | _ -> Error (Printf.sprintf "field torn: unknown mode %S" v)
  in
  let opt_int_field k =
    match Hashtbl.find_opt fields k with
    | None -> Ok 0
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "field %s: not an integer (%S)" k v))
  in
  let* torn_seed = int_field "tseed" in
  let* recovery_crash =
    let* v = get "rcrash" in
    if v = "-" then Ok None
    else
      match int_of_string_opt v with
      | Some n -> Ok (Some n)
      | None -> Error (Printf.sprintf "field rcrash: expected - or an integer (%S)" v)
  in
  let* poison = opt_int_field "poison" in
  let* pseed = opt_int_field "pseed" in
  let* rot = opt_int_field "rot" in
  let* rseed = opt_int_field "rseed" in
  let* scrub =
    let* n = opt_int_field "scrub" in
    match n with
    | 0 -> Ok false
    | 1 -> Ok true
    | _ -> Error (Printf.sprintf "field scrub: expected 0 or 1 (got %d)" n)
  in
  if ops < 1 then Error "ops must be >= 1"
  else if crash_after < 1 then Error "crash must be >= 1"
  else if poison < 0 || rot < 0 then Error "poison/rot must be >= 0"
  else
    Ok
      { variant; seed; ops; crash_after; torn; torn_seed; recovery_crash; poison; pseed; rot;
        rseed; scrub }

let sample ?variant ?(media = false) rng =
  let variant =
    match variant with
    | Some v -> v
    (* Media plans pin the LOG variant: guard replication rides the
       bookkeeping log ([Config.media_replication] requires
       [log_bookkeeping]), and poisoned metadata under the GC variant's
       conservative scan has no demand-repair window. *)
    | None when media -> Log
    | None -> ( match Sim.Rng.int rng 3 with 0 -> Log | 1 -> Gc | _ -> Ic)
  in
  let ops = Sim.Rng.int_in rng 40 700 in
  (* ~4-6 flushed lines per op; sampling past the end just means the
     crash lands at (or survives to) the natural end of the run. *)
  let crash_after = Sim.Rng.int_in rng 1 (ops * 6) in
  let torn =
    match Sim.Rng.int rng 4 with
    | 0 -> None
    | 1 -> Some Pmem.Device.Torn_prefix
    | 2 -> Some Pmem.Device.Torn_suffix
    | _ -> Some Pmem.Device.Torn_random
  in
  let torn_seed = Sim.Rng.int rng 1_000_000 in
  let recovery_crash = if Sim.Rng.bool rng then Some (Sim.Rng.int_in rng 1 200) else None in
  let poison, pseed, rot, rseed, scrub =
    if not media then (0, 0, 0, 0, false)
    else
      (* Always at least one fault source: a media plan with all three
         knobs at zero would silently degenerate to a legacy plan. *)
      let poison = Sim.Rng.int rng 5 in
      let rot = Sim.Rng.int rng 5 in
      let scrub = Sim.Rng.int rng 3 = 0 in
      let poison = if poison = 0 && rot = 0 && not scrub then 1 else poison in
      (poison, Sim.Rng.int rng 1_000_000, rot, Sim.Rng.int rng 1_000_000, scrub)
  in
  { variant; seed = Sim.Rng.int rng 1_000_000; ops; crash_after; torn; torn_seed;
    recovery_crash; poison; pseed; rot; rseed; scrub }

let shrink_candidates t =
  let dedup = Hashtbl.create 8 in
  List.filter
    (fun c ->
      let key = to_string c in
      c <> t && not (Hashtbl.mem dedup key) && (Hashtbl.replace dedup key (); true))
    [
      { t with recovery_crash = None };
      { t with torn = None };
      { t with ops = max 1 (t.ops / 2) };
      { t with ops = max 1 (t.ops - (t.ops / 4)) };
      { t with ops = max 1 (t.ops - 1) };
      { t with crash_after = max 1 (t.crash_after / 2) };
      { t with crash_after = max 1 (t.crash_after - (t.crash_after / 4)) };
      { t with crash_after = max 1 (t.crash_after - 1) };
      (match t.recovery_crash with
      | Some n when n > 1 -> { t with recovery_crash = Some (n / 2) }
      | _ -> t);
      { t with poison = 0; rot = 0; scrub = false };
      { t with scrub = false };
      { t with rot = 0 };
      { t with poison = 0 };
      { t with poison = t.poison / 2 };
      { t with rot = t.rot / 2 };
    ]
