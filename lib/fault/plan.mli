(** Crash plans: the unit of work of the fault-injection fuzzer.

    A plan fully determines one fault scenario — which variant to run,
    the seeded workload, where the first crash lands, whether the
    in-flight line tears (and how), and optionally a second crash armed
    {e inside} recovery. Everything is drawn from {!Sim.Rng}, so a plan
    replays bit-for-bit: the one-line {!to_string} rendering is a
    complete repro, accepted back by {!of_string} (and by
    [nvalloc-cli fuzz --plan]). *)

type variant = Log | Gc | Ic

type t = {
  variant : variant;
  seed : int;  (** workload RNG seed (op mix, sizes, slots) *)
  ops : int;  (** workload operations before the natural end *)
  crash_after : int;
      (** first crash: countdown in flushed lines ({!Pmem.Device.schedule_crash_after});
          if the workload finishes first, the device crashes at the end
          with the countdown still pending *)
  torn : Pmem.Device.torn_mode option;
      (** [None] = line-granular crash; [Some] tears the in-flight line *)
  torn_seed : int;  (** seed of the torn word-subset mask *)
  recovery_crash : int option;
      (** optional second crash, armed across the first [Nvalloc.recover] *)
}

val config : variant -> Nvalloc_core.Config.t
(** The small fixed configuration plans run under (2 arenas, 1 Ki root
    slots, 1 Ki WAL entries, 8-deep tcaches) — small enough that crash
    points cover all metadata phases within a few hundred ops. *)

val to_string : t -> string
(** One line, e.g. [v=log seed=42 ops=600 crash=55 torn=prefix tseed=7 rcrash=12]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] describes the first bad token. *)

val sample : ?variant:variant -> Sim.Rng.t -> t
(** Draw a plan; the variant too, unless pinned by [?variant]. *)

val shrink_candidates : t -> t list
(** Strictly simpler plans to try when [t] fails, most aggressive first:
    drop the recovery crash, drop the torn mode, then fewer ops and an
    earlier crash. The fuzzer greedily recurses on the first candidate
    that still fails. *)
