(** Crash plans: the unit of work of the fault-injection fuzzer.

    A plan fully determines one fault scenario — which variant to run,
    the seeded workload, where the first crash lands, whether the
    in-flight line tears (and how), and optionally a second crash armed
    {e inside} recovery. Everything is drawn from {!Sim.Rng}, so a plan
    replays bit-for-bit: the one-line {!to_string} rendering is a
    complete repro, accepted back by {!of_string} (and by
    [nvalloc-cli fuzz --plan]). *)

type variant = Log | Gc | Ic

type t = {
  variant : variant;
  seed : int;  (** workload RNG seed (op mix, sizes, slots) *)
  ops : int;  (** workload operations before the natural end *)
  crash_after : int;
      (** first crash: countdown in flushed lines ({!Pmem.Device.schedule_crash_after});
          if the workload finishes first, the device crashes at the end
          with the countdown still pending *)
  torn : Pmem.Device.torn_mode option;
      (** [None] = line-granular crash; [Some] tears the in-flight line *)
  torn_seed : int;  (** seed of the torn word-subset mask *)
  recovery_crash : int option;
      (** optional second crash, armed across the first [Nvalloc.recover] *)
  poison : int;
      (** guarded metadata lines to poison mid-workload (at op [ops/2],
          via {!Nvalloc_core.Nvalloc.seed_poison}); 0 = none *)
  pseed : int;  (** seed of the poison line selection *)
  rot : int;
      (** at-rest bit flips to inject at op [ops/3]
          ({!Nvalloc_core.Nvalloc.inject_bitrot}); 0 = none *)
  rseed : int;  (** seed of the bit-flip placement *)
  scrub : bool;
      (** at op [3*ops/4], poison a live slab header and immediately run
          a {!Nvalloc_core.Nvalloc.scrub} pass — the window in which a
          broken scrub ([--broken-scrub]) blesses the damage *)
}

val media_active : t -> bool
(** Whether the plan injects any media fault ([poison], [rot] or
    [scrub]); such plans run with [Config.media_replication] on. *)

val config : variant -> Nvalloc_core.Config.t
(** The small fixed configuration plans run under (2 arenas, 1 Ki root
    slots, 1 Ki WAL entries, 8-deep tcaches) — small enough that crash
    points cover all metadata phases within a few hundred ops. *)

val to_string : t -> string
(** One line, e.g. [v=log seed=42 ops=600 crash=55 torn=prefix tseed=7 rcrash=12].
    The media fields ([poison=… pseed=… rot=… rseed=… scrub=…]) are
    appended only when {!media_active}, so legacy plans render exactly
    as before. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] describes the first bad token.
    Absent media fields default to zero/off, so historical one-line
    repros still parse. *)

val sample : ?variant:variant -> ?media:bool -> Sim.Rng.t -> t
(** Draw a plan; the variant too, unless pinned by [?variant]. With
    [~media:true] (default false) the plan also draws media faults —
    poison count, bit-rot flips and/or an inject-then-scrub step, at
    least one of them active — and pins the LOG variant (guard
    replication requires the bookkeeping log). *)

val shrink_candidates : t -> t list
(** Strictly simpler plans to try when [t] fails, most aggressive first:
    drop the recovery crash, drop the torn mode, then fewer ops and an
    earlier crash. The fuzzer greedily recurses on the first candidate
    that still fails. *)
