open Nvalloc_core

type counterexample = { original : Plan.t; shrunk : Plan.t; reason : string }

let sizes = [| 32; 48; 136; 1024; 40 * 1024 |]
let workload_slots = 512

(* Seeded op mix over the first [workload_slots] root slots: frees of
   published slots interleaved with small and large allocations — enough
   churn for refills, slab creation, morphing pressure and booklog
   traffic, all deterministic from the plan's seed. *)
let workload t th ~seed ~ops =
  let rng = Sim.Rng.create seed in
  for _ = 1 to ops do
    let dest = Nvalloc.root_addr t (Sim.Rng.int rng workload_slots) in
    if Nvalloc.read_ptr t ~dest > 0 then begin
      if Sim.Rng.bool rng then Nvalloc.free_from t th ~dest
    end
    else ignore (Nvalloc.malloc_to t th ~size:sizes.(Sim.Rng.int rng (Array.length sizes)) ~dest)
  done

let run_plan ?(batch = true) ?(broken = false) ?(broken_record = false) ?(check_order = true)
    ?telemetry (plan : Plan.t) =
  let config = Plan.config plan.Plan.variant in
  let config = if batch then config else Config.sync config in
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  Pmem.Device.set_check_mode dev check_order;
  let clock = Sim.Clock.create () in
  let t = Nvalloc.create ~config dev clock in
  (* Attaching a sink records the full timeline — workload flushes, the
     crash, recovery phases — without touching simulated behaviour; the
     CLI replays a failing plan this way to dump the tail. *)
  (match telemetry with
  | Some sink -> Nvalloc.set_telemetry t (Some sink)
  | None -> ());
  if broken then
    Array.iter (fun a -> Wal.unsafe_set_skip_flush (Arena.wal a) true) (Nvalloc.arenas t);
  if broken_record then
    Array.iter
      (fun a -> Wal.unsafe_set_skip_commit_record (Arena.wal a) true)
      (Nvalloc.arenas t);
  let th = Nvalloc.thread t clock in
  Pmem.Device.schedule_crash_after ?torn:plan.Plan.torn ~torn_seed:plan.Plan.torn_seed dev
    plan.Plan.crash_after;
  (try
     workload t th ~seed:plan.Plan.seed ~ops:plan.Plan.ops;
     (* The countdown outlived the workload: crash at the natural end. *)
     Pmem.Device.cancel_scheduled_crash dev;
     Pmem.Device.crash dev
   with Pmem.Device.Injected_crash -> ());
  (match plan.Plan.recovery_crash with
  | None -> ()
  | Some n -> (
      (* Second crash, armed across recovery itself: whether it fires
         mid-recovery or recovery completes first, the oracle's own
         recovery must still reach a consistent state. *)
      Pmem.Device.schedule_crash_after dev n;
      try
        let _t, _report = Nvalloc.recover ~config dev clock in
        Pmem.Device.cancel_scheduled_crash dev;
        Pmem.Device.crash dev
      with Pmem.Device.Injected_crash -> ()));
  Oracle.check ~config dev clock

let max_shrink_rounds = 64

let shrink ?batch ?broken ?broken_record ?check_order plan ~reason =
  let fails p =
    match run_plan ?batch ?broken ?broken_record ?check_order p with
    | Error e -> Some e
    | Ok _ -> None
  in
  let rec go plan reason rounds =
    if rounds = 0 then (plan, reason)
    else
      match
        List.find_map
          (fun c -> Option.map (fun r -> (c, r)) (fails c))
          (Plan.shrink_candidates plan)
      with
      | Some (smaller, reason') -> go smaller reason' (rounds - 1)
      | None -> (plan, reason)
  in
  go plan reason max_shrink_rounds

let fuzz ?batch ?broken ?broken_record ?check_order ?variant ?(on_plan = fun _ _ -> ())
    ~seed ~runs () =
  let rng = Sim.Rng.create seed in
  let rec loop i =
    if i >= runs then None
    else begin
      let plan = Plan.sample ?variant rng in
      on_plan i plan;
      match run_plan ?batch ?broken ?broken_record ?check_order plan with
      | Ok _ -> loop (i + 1)
      | Error reason ->
          let shrunk, reason = shrink ?batch ?broken ?broken_record ?check_order plan ~reason in
          Some { original = plan; shrunk; reason }
    end
  in
  loop 0
