open Nvalloc_core

type counterexample = { original : Plan.t; shrunk : Plan.t; reason : string }

let sizes = [| 32; 48; 136; 1024; 40 * 1024 |]
let workload_slots = 512

(* Seeded op mix over the first [workload_slots] root slots: frees of
   published slots interleaved with small and large allocations — enough
   churn for refills, slab creation, morphing pressure and booklog
   traffic, all deterministic from the plan's seed. [inject] runs before
   each op (1-based); the media hooks hang off it. *)
let workload t th ~seed ~ops ~inject =
  let rng = Sim.Rng.create seed in
  for op = 1 to ops do
    inject op;
    let dest = Nvalloc.root_addr t (Sim.Rng.int rng workload_slots) in
    if Nvalloc.read_ptr t ~dest > 0 then begin
      if Sim.Rng.bool rng then Nvalloc.free_from t th ~dest
    end
    else ignore (Nvalloc.malloc_to t th ~size:sizes.(Sim.Rng.int rng (Array.length sizes)) ~dest)
  done

(* The scrub hook poisons the superblock line plus a live slab header
   and runs the pass in the same step: demand repair never sees the
   damage, so what happens next is entirely the scrubber's doing. A
   clean scrub repairs both from their replicas; [--broken-scrub]
   blesses the garbage instead, and recovery then chokes on the
   checksum-"valid" superblock magic (and reclaims the "torn" slab out
   from under its published roots) — the corruption the oracle must
   report. The superblock target makes the catch deterministic: nothing
   rewrites that line between the blessing and the crash, whereas a
   blessed slab's dangling roots can be masked when every affected
   (addr, dest) pair is still in the WAL replay window. *)
let poison_and_scrub t dev clock =
  let rec find i =
    if i >= workload_slots then None
    else
      let addr = Nvalloc.read_ptr t ~dest:(Nvalloc.root_addr t i) in
      if addr > 0 then
        match Nvalloc.owner_of_addr t addr with
        | Some { Nvalloc.base; is_slab = true; _ } -> Some base
        | _ -> find (i + 1)
      else find (i + 1)
  in
  (match find 0 with
  | Some base -> Pmem.Device.poison dev ~line:(base / Pmem.Cacheline.size)
  | None -> ());
  Pmem.Device.poison dev ~line:(Heap.sb_guard.Guard.primary / Pmem.Cacheline.size);
  ignore (Nvalloc.scrub t clock : int * int)

let run_plan ?(batch = true) ?(broken = false) ?(broken_record = false)
    ?(broken_scrub = false) ?(check_order = true) ?telemetry ?on_device (plan : Plan.t) =
  let media = Plan.media_active plan in
  let config = Plan.config plan.Plan.variant in
  let config = if media then { config with Config.media_replication = true } else config in
  let config = if batch then config else Config.sync config in
  let dev = Pmem.Device.create ~size:(64 * 1024 * 1024) () in
  Pmem.Device.set_check_mode dev check_order;
  let clock = Sim.Clock.create () in
  (* The packed-header mutation knob is process-global (the harness's
     Instance.of_nvalloc pins it on every construction); pin it here too
     so a mutation run elsewhere in the process can never leak into a
     fuzz plan's fresh stack. *)
  Slab.unsafe_set_broken_header false;
  let t = Nvalloc.create ~config dev clock in
  (* Attaching a sink records the full timeline — workload flushes, the
     crash, recovery phases — without touching simulated behaviour; the
     CLI replays a failing plan this way to dump the tail. *)
  (match telemetry with
  | Some sink -> Nvalloc.set_telemetry t (Some sink)
  | None -> ());
  if broken then
    Array.iter (fun a -> Wal.unsafe_set_skip_flush (Arena.wal a) true) (Nvalloc.arenas t);
  if broken_record then
    Array.iter
      (fun a -> Wal.unsafe_set_skip_commit_record (Arena.wal a) true)
      (Nvalloc.arenas t);
  if broken_scrub then Nvalloc.unsafe_set_broken_scrub t true;
  let inject =
    if not media then fun _ -> ()
    else begin
      (* Rot before poison before scrub: the injectors partner-exclude
         against faults already present, so this order keeps every
         seeded fault repairable (the zero-loss bound). *)
      let rot_at = max 1 (plan.Plan.ops / 3) in
      let poison_at = max 1 (plan.Plan.ops / 2) in
      let scrub_at = max 1 (3 * plan.Plan.ops / 4) in
      fun op ->
        if op = rot_at && plan.Plan.rot > 0 then
          ignore (Nvalloc.inject_bitrot t ~seed:plan.Plan.rseed ~flips:plan.Plan.rot : int);
        if op = poison_at && plan.Plan.poison > 0 then
          ignore (Nvalloc.seed_poison t ~seed:plan.Plan.pseed ~count:plan.Plan.poison : int);
        if op = scrub_at && plan.Plan.scrub then poison_and_scrub t dev clock
    end
  in
  let th = Nvalloc.thread t clock in
  Pmem.Device.schedule_crash_after ?torn:plan.Plan.torn ~torn_seed:plan.Plan.torn_seed dev
    plan.Plan.crash_after;
  (try
     workload t th ~seed:plan.Plan.seed ~ops:plan.Plan.ops ~inject;
     (* The countdown outlived the workload: crash at the natural end. *)
     Pmem.Device.cancel_scheduled_crash dev;
     Pmem.Device.crash dev
   with Pmem.Device.Injected_crash -> ());
  (match plan.Plan.recovery_crash with
  | None -> ()
  | Some n -> (
      (* Second crash, armed across recovery itself: whether it fires
         mid-recovery or recovery completes first, the oracle's own
         recovery must still reach a consistent state. *)
      Pmem.Device.schedule_crash_after dev n;
      try
        let _t, _report = Nvalloc.recover ~config dev clock in
        Pmem.Device.cancel_scheduled_crash dev;
        Pmem.Device.crash dev
      with Pmem.Device.Injected_crash -> ()));
  let verdict = Oracle.check ~config dev clock in
  (match on_device with Some f -> f dev | None -> ());
  verdict

let max_shrink_rounds = 64

let shrink ?batch ?broken ?broken_record ?broken_scrub ?check_order plan ~reason =
  let fails p =
    match run_plan ?batch ?broken ?broken_record ?broken_scrub ?check_order p with
    | Error e -> Some e
    | Ok _ -> None
  in
  let rec go plan reason rounds =
    if rounds = 0 then (plan, reason)
    else
      match
        List.find_map
          (fun c -> Option.map (fun r -> (c, r)) (fails c))
          (Plan.shrink_candidates plan)
      with
      | Some (smaller, reason') -> go smaller reason' (rounds - 1)
      | None -> (plan, reason)
  in
  go plan reason max_shrink_rounds

let fuzz ?batch ?broken ?broken_record ?broken_scrub ?check_order ?variant ?media
    ?(adjust = fun p -> p) ?(on_plan = fun _ _ -> ()) ~seed ~runs () =
  let rng = Sim.Rng.create seed in
  let rec loop i =
    if i >= runs then None
    else begin
      let plan = adjust (Plan.sample ?variant ?media rng) in
      on_plan i plan;
      match run_plan ?batch ?broken ?broken_record ?broken_scrub ?check_order plan with
      | Ok _ -> loop (i + 1)
      | Error reason ->
          let shrunk, reason =
            shrink ?batch ?broken ?broken_record ?broken_scrub ?check_order plan ~reason
          in
          Some { original = plan; shrunk; reason }
    end
  in
  loop 0
