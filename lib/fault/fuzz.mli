(** The crash-plan fuzzer.

    {!run_plan} executes one {!Plan.t}: seeded workload, first crash
    (optionally torn), optional second crash armed inside recovery, then
    the full {!Oracle}. {!fuzz} samples plans from a seeded {!Sim.Rng},
    and when one fails, greedily shrinks it (fewer ops, earlier crash,
    simpler fault) until no smaller plan still fails, returning a
    replayable counterexample.

    [?broken] deliberately breaks the WAL's flush-before-effect ordering
    ({!Nvalloc_core.Wal.unsafe_set_skip_flush}) on the workload instance.
    It exists to demonstrate the pipeline end to end: a real protocol
    bug is caught by the oracle and shrunk to a one-line repro.

    [?check_order] (default [true]) runs every plan with the device's
    persist-ordering checker enabled ({!Pmem.Device.set_check_mode}):
    commits whose declared dependencies are still dirty are recorded and
    turned into oracle failures, catching ordering bugs {e without}
    needing the crash to land in the vulnerable window.

    [?batch] (default [true]) keeps the variant config's batched
    persistence pipeline — flush coalescing, WAL group commit, async
    checkpoint threshold — so every sampled crash point also exercises
    the deferred paths; [~batch:false] forces the synchronous pipeline
    ({!Nvalloc_core.Config.sync}).

    [?broken_record] makes every WAL group commit "forget" its commit
    record ({!Nvalloc_core.Wal.unsafe_set_skip_commit_record}): deferred
    effects persist while replay discards the group — the mutation the
    model-based checker must catch.

    [?broken_scrub] makes every scrub pass bless a damaged primary
    instead of repairing it from the replica
    ({!Nvalloc_core.Nvalloc.unsafe_set_broken_scrub}) — the media
    mutation the crash oracle must catch on plans with [scrub] set.

    Media plans ({!Plan.media_active}) run with
    [Config.media_replication] forced on and fire three deterministic
    hooks inside the workload: bit-rot at op [ops/3], poison at
    [ops/2], and at [3*ops/4] (when [plan.scrub]) a poison-then-scrub
    step against a live slab header — the only window in which the
    scrubber, not demand repair, meets the damage. *)

type counterexample = {
  original : Plan.t;  (** the sampled plan that first failed *)
  shrunk : Plan.t;  (** the smallest still-failing plan found *)
  reason : string;  (** the oracle's verdict on [shrunk] *)
}

val run_plan :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?broken_scrub:bool ->
  ?check_order:bool ->
  ?telemetry:Telemetry.t ->
  ?on_device:(Pmem.Device.t -> unit) ->
  Plan.t ->
  (Nvalloc_core.Nvalloc.recovery_report, string) result
(** Execute one plan against a fresh device and run the oracle. With
    [telemetry], the sink is attached to the plan's allocator stack
    before the workload starts, so the whole timeline — workload,
    crash(es), recovery — lands in it; simulated behaviour is unchanged
    (the result is identical with or without a sink). [on_device] runs
    after the oracle against the plan's device (the CLI dumps its media
    counters from it). *)

val shrink :
  ?batch:bool -> ?broken:bool -> ?broken_record:bool -> ?broken_scrub:bool ->
  ?check_order:bool -> Plan.t -> reason:string -> Plan.t * string
(** Greedy shrinking: recurse on the first {!Plan.shrink_candidates}
    member that still fails (bounded number of rounds). *)

val fuzz :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?broken_scrub:bool ->
  ?check_order:bool ->
  ?variant:Plan.variant ->
  ?media:bool ->
  ?adjust:(Plan.t -> Plan.t) ->
  ?on_plan:(int -> Plan.t -> unit) ->
  seed:int ->
  runs:int ->
  unit ->
  counterexample option
(** Sample and run up to [runs] plans; [None] means every plan passed.
    [on_plan] observes each plan before it runs (progress reporting).
    [?media] passes through to {!Plan.sample}: sampled plans draw
    poison/bit-rot/scrub faults and pin the LOG variant. [?adjust]
    rewrites each sampled plan before it runs (the CLI uses it to pin
    media fields from flags); the printed counterexample is the
    adjusted plan, so one-line repros stay exact. *)
