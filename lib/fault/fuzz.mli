(** The crash-plan fuzzer.

    {!run_plan} executes one {!Plan.t}: seeded workload, first crash
    (optionally torn), optional second crash armed inside recovery, then
    the full {!Oracle}. {!fuzz} samples plans from a seeded {!Sim.Rng},
    and when one fails, greedily shrinks it (fewer ops, earlier crash,
    simpler fault) until no smaller plan still fails, returning a
    replayable counterexample.

    [?broken] deliberately breaks the WAL's flush-before-effect ordering
    ({!Nvalloc_core.Wal.unsafe_set_skip_flush}) on the workload instance.
    It exists to demonstrate the pipeline end to end: a real protocol
    bug is caught by the oracle and shrunk to a one-line repro.

    [?check_order] (default [true]) runs every plan with the device's
    persist-ordering checker enabled ({!Pmem.Device.set_check_mode}):
    commits whose declared dependencies are still dirty are recorded and
    turned into oracle failures, catching ordering bugs {e without}
    needing the crash to land in the vulnerable window.

    [?batch] (default [true]) keeps the variant config's batched
    persistence pipeline — flush coalescing, WAL group commit, async
    checkpoint threshold — so every sampled crash point also exercises
    the deferred paths; [~batch:false] forces the synchronous pipeline
    ({!Nvalloc_core.Config.sync}).

    [?broken_record] makes every WAL group commit "forget" its commit
    record ({!Nvalloc_core.Wal.unsafe_set_skip_commit_record}): deferred
    effects persist while replay discards the group — the mutation the
    model-based checker must catch. *)

type counterexample = {
  original : Plan.t;  (** the sampled plan that first failed *)
  shrunk : Plan.t;  (** the smallest still-failing plan found *)
  reason : string;  (** the oracle's verdict on [shrunk] *)
}

val run_plan :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?check_order:bool ->
  ?telemetry:Telemetry.t ->
  Plan.t ->
  (Nvalloc_core.Nvalloc.recovery_report, string) result
(** Execute one plan against a fresh device and run the oracle. With
    [telemetry], the sink is attached to the plan's allocator stack
    before the workload starts, so the whole timeline — workload,
    crash(es), recovery — lands in it; simulated behaviour is unchanged
    (the result is identical with or without a sink). *)

val shrink :
  ?batch:bool -> ?broken:bool -> ?broken_record:bool -> ?check_order:bool ->
  Plan.t -> reason:string -> Plan.t * string
(** Greedy shrinking: recurse on the first {!Plan.shrink_candidates}
    member that still fails (bounded number of rounds). *)

val fuzz :
  ?batch:bool ->
  ?broken:bool ->
  ?broken_record:bool ->
  ?check_order:bool ->
  ?variant:Plan.variant ->
  ?on_plan:(int -> Plan.t -> unit) ->
  seed:int ->
  runs:int ->
  unit ->
  counterexample option
(** Sample and run up to [runs] plans; [None] means every plan passed.
    [on_plan] observes each plan before it runs (progress reporting). *)
