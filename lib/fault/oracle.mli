(** The post-crash invariant oracle.

    One checker consolidates the properties the crash tests used to
    duplicate (crash sweep, morph-undo, internal-collection sweep). Given
    a device that just crashed (or stopped mid-recovery), {!check}
    recovers it and requires, in order:

    + {b owner-index disjointness} — no two owners overlap;
    + {b root reachability} — every published root slot resolves to an
      owned block and can be freed;
    + {b leak-freedom} — after freeing everything reachable (plus, for
      NVAlloc-IC, the application-side orphan resolution via
      [iter_allocated]), a clean shutdown and re-open finds a [Shutdown]
      heap with zero allocated small blocks;
    + {b usability} — the recovered heap serves fresh allocations.

    A failure is rendered with the stage that failed and the recovery
    report's diagnostics, so a fuzzer counterexample is explainable. *)

val check :
  config:Nvalloc_core.Config.t ->
  Pmem.Device.t ->
  Sim.Clock.t ->
  (Nvalloc_core.Nvalloc.recovery_report, string) result
(** Run the full oracle. [Ok report] is the report of the {e first}
    recovery; [Error msg] names the violated invariant (any exception is
    caught and rendered too). The device contents are consumed: the heap
    ends recovered, emptied and probed. *)
