(** Allocator-instance factory used by all experiments. *)

type kind =
  | Pmdk
  | Nvm_malloc
  | Pallocator
  | Makalu
  | Ralloc
  | Jemalloc
  | Tcmalloc
  | Nv_log  (** NVAlloc-LOG, all optimisations on *)
  | Nv_gc  (** NVAlloc-GC, all optimisations on *)
  | Nv_ic  (** NVAlloc-IC (internal collection), the future-work variant *)
  | Nv_custom of string * Nvalloc_core.Config.t  (** ablations / sensitivity *)

val name : kind -> string

val force_sync : bool ref
(** When set, every NVAlloc config {!make} builds is passed through
    {!Nvalloc_core.Config.sync} — flush coalescing, WAL group commit and
    the async checkpoint threshold all off. Lets the CLI's
    [--no-batch] flag compare the synchronous pipeline across whole
    experiment runs without threading a parameter through the registry.
    Baselines are unaffected. Default [false]. *)

val make :
  ?eadr:bool ->
  ?dev_size:int ->
  ?root_slots:int ->
  threads:int ->
  kind ->
  Alloc_api.Instance.t
(** Default device size 512 MiB, default root slots 2^18. *)

val strong : kind list
(** The paper's strongly consistent set: PMDK, nvm_malloc, PAllocator,
    NVAlloc-LOG (Figure 9). *)

val weak : kind list
(** Makalu, Ralloc, NVAlloc-GC (Figure 10). *)

val large_set : kind list
(** Figure 12's set (Ralloc excluded as in the paper). *)

val log_base : Nvalloc_core.Config.t
val log_interleaved : Nvalloc_core.Config.t
val log_booklog : Nvalloc_core.Config.t
val log_full : Nvalloc_core.Config.t
val log_no_morph : Nvalloc_core.Config.t
val gc_no_morph : Nvalloc_core.Config.t
val log_stripes : int -> Nvalloc_core.Config.t
val log_su : float -> Nvalloc_core.Config.t
