(** SLO attribution reports: build the [nvalloc/slo/v1] JSON document
    from a blame-tree attribution handle after a workload run, render it
    for humans, and gate a current report against a committed baseline.

    Reports are pure derivations of attribution state — building one
    does no simulated work, and the output is byte-deterministic for a
    given seed (sorted paths, merged per-thread histograms). *)

val schema : string
(** ["nvalloc/slo/v1"]. *)

type meta = {
  workload : string;
  allocator : string;
  threads : int;
  seed : int;
  batching : bool;  (** false when the run forced the sync pipeline *)
  makespan_ns : float;
  total_ops : int;
}

val burn_rate : violations:int -> count:int -> goal:float -> float
(** Fraction of the error budget [1 - goal] consumed by the violating
    fraction of ops; 1.0 means the budget is exactly spent, above 1.0
    the SLO is broken. 0 when [count] is 0. *)

val build : meta:meta -> Telemetry.Attr.t -> Telemetry.Json.t
(** The full report: per-op merged percentiles with SLO target,
    violation count, burn rate and worst window; component totals
    (leaf self-time aggregated by component name) with shares; the
    per-path blame tree; and the degradation-event timeline. *)

val render : Telemetry.Json.t -> string
(** Human-readable rendering of a report built by {!build} (or parsed
    back from disk — it only reads JSON fields). *)

val check :
  baseline:Telemetry.Json.t ->
  current:Telemetry.Json.t ->
  (unit, string list) result
(** Regression gate. Fails when run identity (workload, allocator,
    threads, seed — but deliberately not batching, so a forced-sync run
    gates against the batched baseline) differs, when a component's
    share of attributed time regresses past both an absolute and a
    relative slack, when a dominant component appears that the baseline
    never saw, when an op class p99 grows by more than a factor that
    exceeds the histogram bucket quantisation, or when a declared SLO's
    burn rate crosses 1.0 that the baseline kept within budget. *)
