(** Figure 11: execution-time breakdown of the Figure-9 configurations
    (Base, +Interleaved, +Log, full NVAlloc-LOG) at 8 threads. *)

let configs =
  [
    ("Base", Factory.log_base);
    ("+Interleaved", Factory.log_interleaved);
    ("+Log", Factory.log_booklog);
    ("NVAlloc-LOG", Factory.log_full);
  ]

let benchmarks :
    (string * int * (Alloc_api.Instance.t -> threads:int -> Workloads.Driver.result)) list =
  [
    ( "Threadtest", 128 * 1024 * 1024,
      fun inst ~threads -> Workloads.Threadtest.run inst ~params:(Sizes.threadtest threads) () );
    ( "Larson-small", 128 * 1024 * 1024,
      fun inst ~threads -> Workloads.Larson.run inst ~params:(Sizes.larson_small threads) () );
    ( "DBMStest", Sizes.large_dev,
      fun inst ~threads -> Workloads.Dbmstest.run inst ~params:(Sizes.dbmstest threads) () );
  ]

let fig11 () =
  let threads = 8 in
  List.mapi
    (fun i (bench_name, dev_size, run) ->
      let rows =
        List.map
          (fun (label, config) ->
            let inst =
              Factory.make ~dev_size ~threads (Factory.Nv_custom (label, config))
            in
            let _ = run inst ~threads in
            let st = Pmem.Device.stats inst.Alloc_api.Instance.dev in
            let total =
              Array.fold_left
                (fun acc c -> acc +. Sim.Clock.now c)
                0.0 inst.Alloc_api.Instance.clocks
            in
            let part v = Output.pct (if total > 0.0 then v /. total else 0.0) in
            let meta = Pmem.Stats.flush_time st Pmem.Stats.Meta in
            let wal = Pmem.Stats.flush_time st Pmem.Stats.Wal in
            let log = Pmem.Stats.flush_time st Pmem.Stats.Log in
            let data = Pmem.Stats.flush_time st Pmem.Stats.Data in
            let search = Pmem.Stats.work_time st Pmem.Stats.Search in
            let other = total -. meta -. wal -. log -. data -. search in
            [
              label; Output.ms total; part meta; part wal; part log; part data; part search;
              part (Float.max 0.0 other);
            ])
          configs
      in
      {
        Output.id = Printf.sprintf "fig11%c" (Char.chr (Char.code 'a' + i));
        title = Printf.sprintf "%s time breakdown, 8 threads (sum of thread time)" bench_name;
        header =
          [ "config"; "total ms"; "FlushMeta"; "FlushWAL"; "FlushLog"; "FlushData"; "Search";
            "Other" ];
        rows;
        notes = [];
      })
    benchmarks
