(* SLO attribution report: turn a blame-tree attribution handle
   ([Telemetry.Attr]) into the JSON document behind [nvalloc-cli slo]
   (schema nvalloc/slo/v1), a human-readable rendering, and the
   regression gate [scripts/slo_check.sh] runs against a committed
   baseline — the BENCH_micro.json pattern extended to tail attribution.

   Everything here is derived from attribution state after the run;
   building a report performs no simulated work and the output is
   byte-deterministic for a given seed (sorted paths, merged per-thread
   histograms, arrival-ordered events). *)

module Json = Telemetry.Json
module Attr = Telemetry.Attr
module Histogram = Telemetry.Histogram

let schema = "nvalloc/slo/v1"

type meta = {
  workload : string;
  allocator : string;
  threads : int;
  seed : int;
  batching : bool;
  makespan_ns : float;
  total_ops : int;
}

(* Burn rate: the fraction of the error budget (1 - goal) the violating
   fraction of ops consumed. 1.0 = budget exactly spent; > 1 = SLO
   broken. *)
let burn_rate ~violations ~count ~goal =
  if count = 0 then 0.0 else float_of_int violations /. float_of_int count /. (1.0 -. goal)

let hist_fields h =
  [
    ("count", Json.Num (float_of_int (Histogram.count h)));
    ("p50_ns", Json.Num (Histogram.percentile h 0.50));
    ("p90_ns", Json.Num (Histogram.percentile h 0.90));
    ("p99_ns", Json.Num (Histogram.percentile h 0.99));
    ("p999_ns", Json.Num (Histogram.percentile h 0.999));
    ("max_ns", Json.Num (Histogram.max_value h));
    ("mean_ns", Json.Num (Histogram.mean h));
  ]

let op_json attr op =
  (* Per-thread histograms are merged here — percentiles come from the
     merged distribution, not an average of per-thread percentiles. *)
  let h = Attr.op_histogram attr op in
  let count = Histogram.count h in
  let target =
    List.find_opt (fun (o, _, _) -> o = op) (Attr.slo_targets attr)
  in
  let windows = Attr.windows attr ~op in
  let slo_fields =
    match target with
    | None -> [ ("target_ns", Json.Null) ]
    | Some (_, target_ns, goal) ->
        let violations = Attr.violations attr ~op in
        let worst =
          List.fold_left
            (fun acc (idx, wh, wv) ->
              let b = burn_rate ~violations:wv ~count:(Histogram.count wh) ~goal in
              match acc with Some (_, _, _, best) when best >= b -> acc | _ -> Some (idx, wh, wv, b))
            None windows
        in
        [
          ("target_ns", Json.Num target_ns);
          ("goal", Json.Num goal);
          ("violations", Json.Num (float_of_int violations));
          ("burn_rate", Json.Num (burn_rate ~violations ~count ~goal));
          ( "worst_window",
            match worst with
            | None -> Json.Null
            | Some (idx, wh, wv, b) ->
                Json.Obj
                  ([
                     ("index", Json.Num (float_of_int idx));
                     ("start_ns", Json.Num (float_of_int idx *. Attr.slo_window_ns attr));
                     ("violations", Json.Num (float_of_int wv));
                     ("burn_rate", Json.Num b);
                   ]
                  @ hist_fields wh) );
        ]
  in
  Json.Obj
    ((("op", Json.Str op) :: hist_fields h)
    @ slo_fields
    @ [ ("windows", Json.Num (float_of_int (List.length windows))) ])

(* Aggregate leaf self-time by component name (last path element) across
   all paths: the "fence share" the CI gate watches, independent of
   which op the fence happened under. *)
let component_totals attr =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (path, self, count) ->
      match List.rev path with
      | [] -> ()
      | leaf :: _ ->
          let s, c = Option.value ~default:(0.0, 0) (Hashtbl.find_opt tbl leaf) in
          Hashtbl.replace tbl leaf (s +. self, c + count))
    (Attr.nodes attr);
  Hashtbl.fold (fun name (s, c) acc -> (name, s, c) :: acc) tbl []
  |> List.sort (fun (n1, _, _) (n2, _, _) -> compare n1 n2)

let total_attributed attr =
  List.fold_left (fun acc (_, self, _) -> acc +. self) 0.0 (Attr.nodes attr)

let build ~meta attr =
  let total = total_attributed attr in
  let share self = if total > 0.0 then self /. total else 0.0 in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("workload", Json.Str meta.workload);
      ("allocator", Json.Str meta.allocator);
      ("threads", Json.Num (float_of_int meta.threads));
      ("seed", Json.Num (float_of_int meta.seed));
      ("batching", Json.Bool meta.batching);
      ("window_ns", Json.Num (Attr.slo_window_ns attr));
      ("makespan_ns", Json.Num meta.makespan_ns);
      ("total_ops", Json.Num (float_of_int meta.total_ops));
      ("ops", Json.Arr (List.map (op_json attr) (Attr.op_names attr)));
      ("total_attributed_ns", Json.Num total);
      ( "components",
        Json.Arr
          (List.map
             (fun (name, self, count) ->
               Json.Obj
                 [
                   ("component", Json.Str name);
                   ("self_ns", Json.Num self);
                   ("count", Json.Num (float_of_int count));
                   ("share", Json.Num (share self));
                 ])
             (component_totals attr)) );
      ( "paths",
        Json.Arr
          (List.map
             (fun (path, self, count) ->
               Json.Obj
                 [
                   ("path", Json.Str (String.concat ";" path));
                   ("self_ns", Json.Num self);
                   ("count", Json.Num (float_of_int count));
                   ("share", Json.Num (share self));
                 ])
             (Attr.nodes attr)) );
      ( "events",
        Json.Arr
          (List.map
             (fun (ts, name) ->
               Json.Obj [ ("ts_ns", Json.Num ts); ("name", Json.Str name) ])
             (Attr.events attr)) );
    ]

(* --- human rendering ------------------------------------------------------ *)

let mem key j = Json.member key j
let fnum key j = Option.bind (mem key j) Json.num
let fstr key j = Option.bind (mem key j) Json.str
let farr key j = Option.value ~default:[] (Option.bind (mem key j) Json.arr)
let g0 = Option.value ~default:0.0
let gs = Option.value ~default:""

let render report =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "SLO report: %s on %s (threads=%.0f seed=%.0f %s)\n"
       (gs (fstr "workload" report))
       (gs (fstr "allocator" report))
       (g0 (fnum "threads" report))
       (g0 (fnum "seed" report))
       (match mem "batching" report with Some (Json.Bool false) -> "sync" | _ -> "batched"));
  Buffer.add_string b
    (Printf.sprintf "makespan %.0f ns, %.0f ops, window %.0f ns\n\n"
       (g0 (fnum "makespan_ns" report))
       (g0 (fnum "total_ops" report))
       (g0 (fnum "window_ns" report)));
  Buffer.add_string b
    (Printf.sprintf "%-14s %8s %9s %9s %9s %9s | %9s %6s %7s %6s\n" "op" "count"
       "p50" "p99" "p999" "max" "target" "goal" "viol" "burn");
  List.iter
    (fun op ->
      Buffer.add_string b
        (Printf.sprintf "%-14s %8.0f %9.0f %9.0f %9.0f %9.0f" (gs (fstr "op" op))
           (g0 (fnum "count" op)) (g0 (fnum "p50_ns" op)) (g0 (fnum "p99_ns" op))
           (g0 (fnum "p999_ns" op)) (g0 (fnum "max_ns" op)));
      (match fnum "target_ns" op with
      | None -> Buffer.add_string b (Printf.sprintf " | %9s" "-")
      | Some t ->
          Buffer.add_string b
            (Printf.sprintf " | %9.0f %6.3f %7.0f %6.2f" t (g0 (fnum "goal" op))
               (g0 (fnum "violations" op))
               (g0 (fnum "burn_rate" op))));
      Buffer.add_char b '\n')
    (farr "ops" report);
  Buffer.add_string b
    (Printf.sprintf "\ncomponents (of %.0f attributed ns):\n"
       (g0 (fnum "total_attributed_ns" report)));
  let comps =
    List.sort
      (fun c1 c2 -> compare (g0 (fnum "self_ns" c2)) (g0 (fnum "self_ns" c1)))
      (farr "components" report)
  in
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "  %-16s %14.0f ns  %6.2f%%  (x%.0f)\n"
           (gs (fstr "component" c)) (g0 (fnum "self_ns" c))
           (100.0 *. g0 (fnum "share" c))
           (g0 (fnum "count" c))))
    comps;
  let events = farr "events" report in
  if events <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\ndegradation events (%d):\n" (List.length events));
    List.iteri
      (fun i e ->
        if i < 16 then
          Buffer.add_string b
            (Printf.sprintf "  %12.0f  %s\n" (g0 (fnum "ts_ns" e)) (gs (fstr "name" e))))
      events;
    if List.length events > 16 then
      Buffer.add_string b (Printf.sprintf "  ... %d more\n" (List.length events - 16))
  end;
  Buffer.contents b

(* --- regression gate ------------------------------------------------------ *)

(* Tolerances: attribution shares are exactly reproducible for one seed,
   so the slack only needs to absorb legitimate code evolution between
   baseline re-recordings — not measurement noise. A component must gain
   5 share-points AND a quarter of its baseline share to trip (the
   absolute slack keeps sub-percent components from gating on rounding;
   small-but-present components like the fence share ARE gated — a sync
   pipeline inflates fence from under 1% to several %, and catching
   that is this gate's reason to exist); op p99 must jump more than two
   histogram buckets (the buckets are factor-2, so 2.5x means a real
   tail move); any declared burn rate crossing 1.0 (budget exhausted)
   when the baseline had budget left always trips. *)
let share_abs_slack = 0.05
let share_rel_slack = 1.25
let p99_factor = 2.5

let check ~baseline ~current =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match (fstr "schema" baseline, fstr "schema" current) with
  | Some s1, Some s2 when s1 = schema && s2 = schema -> ()
  | _ -> fail "schema mismatch: expected %s in both documents" schema);
  List.iter
    (fun key ->
      let b = gs (fstr key baseline) and c = gs (fstr key current) in
      if b <> c then fail "%s mismatch: baseline %s vs current %s" key b c)
    [ "workload"; "allocator" ];
  List.iter
    (fun key ->
      let b = g0 (fnum key baseline) and c = g0 (fnum key current) in
      if b <> c then fail "%s mismatch: baseline %g vs current %g" key b c)
    [ "threads"; "seed" ];
  (* Component share gate — the fence-share regression a forced-sync
     pipeline must trip. *)
  let share_of j name =
    List.fold_left
      (fun acc c -> if gs (fstr "component" c) = name then g0 (fnum "share" c) else acc)
      0.0 (farr "components" j)
  in
  List.iter
    (fun c ->
      let name = gs (fstr "component" c) in
      let base = g0 (fnum "share" c) in
      let cur = share_of current name in
      if cur > base +. share_abs_slack && cur > base *. share_rel_slack then
        fail "component %s share regressed: %.1f%% -> %.1f%% of attributed time" name
          (100.0 *. base) (100.0 *. cur))
    (farr "components" baseline);
  (* A dominant component the baseline never saw is also a regression. *)
  List.iter
    (fun c ->
      let name = gs (fstr "component" c) in
      let cur = g0 (fnum "share" c) in
      if cur > 0.10 && share_of baseline name = 0.0 then
        fail "new dominant component %s: %.1f%% of attributed time" name (100.0 *. cur))
    (farr "components" current);
  (* Per-op tail latency and error-budget burn. *)
  let op_of j name =
    List.find_opt (fun o -> gs (fstr "op" o) = name) (farr "ops" j)
  in
  List.iter
    (fun bop ->
      let name = gs (fstr "op" bop) in
      match op_of current name with
      | None -> fail "op class %s missing from current report" name
      | Some cop ->
          let bp99 = g0 (fnum "p99_ns" bop) and cp99 = g0 (fnum "p99_ns" cop) in
          if bp99 > 0.0 && cp99 > bp99 *. p99_factor then
            fail "op %s p99 regressed: %.0f ns -> %.0f ns (> %.1fx)" name bp99 cp99
              p99_factor;
          (match (fnum "burn_rate" bop, fnum "burn_rate" cop) with
          | Some bb, Some cb when bb <= 1.0 && cb > 1.0 ->
              fail "op %s error budget exhausted: burn rate %.2f -> %.2f" name bb cb
          | _ -> ()))
    (farr "ops" baseline);
  match !failures with [] -> Ok () | fs -> Error (List.rev fs)
