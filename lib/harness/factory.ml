open Nvalloc_core

type kind =
  | Pmdk
  | Nvm_malloc
  | Pallocator
  | Makalu
  | Ralloc
  | Jemalloc
  | Tcmalloc
  | Nv_log
  | Nv_gc
  | Nv_ic
  | Nv_custom of string * Config.t

let name = function
  | Pmdk -> "PMDK"
  | Nvm_malloc -> "nvm_malloc"
  | Pallocator -> "PAllocator"
  | Makalu -> "Makalu"
  | Ralloc -> "Ralloc"
  | Jemalloc -> "jemalloc"
  | Tcmalloc -> "tcmalloc"
  | Nv_log -> "NVAlloc-LOG"
  | Nv_gc -> "NVAlloc-GC"
  | Nv_ic -> "NVAlloc-IC"
  | Nv_custom (n, _) -> n

let force_sync = ref false

let make ?(eadr = false) ?(dev_size = 512 * 1024 * 1024) ?(root_slots = 1 lsl 18) ~threads kind =
  let baseline knobs =
    Baselines.Bengine.instance ~knobs ~threads ~dev_size ~eadr ~root_slots ()
  in
  let nvalloc ?name config =
    let config = if !force_sync then Config.sync config else config in
    Alloc_api.Instance.of_nvalloc ?name
      ~config:{ config with Config.root_slots }
      ~threads ~dev_size ~eadr ()
  in
  match kind with
  | Pmdk -> baseline Baselines.Knobs.pmdk
  | Nvm_malloc -> baseline Baselines.Knobs.nvm_malloc
  | Pallocator -> baseline Baselines.Knobs.pallocator
  | Makalu -> baseline Baselines.Knobs.makalu
  | Ralloc -> baseline Baselines.Knobs.ralloc
  | Jemalloc -> baseline Baselines.Knobs.jemalloc
  | Tcmalloc -> baseline Baselines.Knobs.tcmalloc
  | Nv_log -> nvalloc Config.log_default
  | Nv_gc -> nvalloc Config.gc_default
  | Nv_ic -> nvalloc Config.ic_default
  | Nv_custom (n, config) -> nvalloc ~name:n config

let strong = [ Pmdk; Nvm_malloc; Pallocator; Nv_log ]
let weak = [ Makalu; Ralloc; Nv_gc ]
let large_set = [ Pmdk; Nvm_malloc; Pallocator; Makalu; Nv_log ]

let log_base = Config.base Config.Log_based
let log_interleaved = Config.with_interleaved_tcache log_base
let log_booklog = Config.with_log_bookkeeping log_base
let log_full = Config.log_default
let log_no_morph = { Config.log_default with Config.slab_morphing = false }
let gc_no_morph = { Config.gc_default with Config.slab_morphing = false }
let log_stripes n = { Config.log_default with Config.bit_stripes = n }
let log_su su = { Config.log_default with Config.morph_su_threshold = su }
