type params = { nodes : int; min_size : int; max_size : int }

let default = { nodes = 20_000; min_size = 64; max_size = 128 }

let run (inst : Alloc_api.Instance.t) ?(params = default) ?(seed = 5) ?crash_after () =
  let open Alloc_api.Instance in
  let rng = Sim.Rng.create seed in
  (* Node layout: [next:int64][payload...]; the root slot anchors the
     head, each node's first word anchors the next node, so the GC-based
     recoveries must walk the whole chain. *)
  let head_dest = Driver.slot inst ~tid:0 0 in
  let size () = Sim.Rng.int_in rng params.min_size params.max_size in
  (match crash_after with
  | None -> ()
  | Some n -> Pmem.Device.schedule_crash_after inst.dev n);
  (* With [crash_after] the build is cut short by the injected crash:
     the measured recovery then runs over a heap with an operation in
     flight, not one stopped at a quiescent point. *)
  (try
     let tail = ref (inst.malloc ~tid:0 ~size:(size ()) ~dest:head_dest) in
     for _ = 2 to params.nodes do
       let node = inst.malloc ~tid:0 ~size:(size ()) ~dest:!tail in
       tail := node
     done;
     Pmem.Device.cancel_scheduled_crash inst.dev
   with Pmem.Device.Injected_crash -> ());
  inst.recover ()
