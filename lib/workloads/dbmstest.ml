type params = {
  objects : int;
  iterations : int;
  warmup : int;
  min_size : int;
  max_size : int;
  delete_frac : float;
}

let default =
  {
    objects = 128;
    iterations = 4;
    warmup = 4;
    min_size = 32 * 1024;
    max_size = 512 * 1024;
    delete_frac = 0.9;
  }

type phase = Alloc of int | Delete of int list

type state = {
  rng : Sim.Rng.t;
  mutable iter : int;
  mutable phase : phase;
  free_slots : int Stack.t;
  mutable live : int list;
  mutable ops : int;
}

let run (inst : Alloc_api.Instance.t) ?(params = default) ?(seed = 23) () =
  let open Alloc_api.Instance in
  let capacity = params.objects * 3 in
  Driver.require_slots inst capacity;
  let total_iters = params.warmup + params.iterations in
  let states =
    Array.init inst.threads (fun tid ->
        let free_slots = Stack.create () in
        for i = capacity - 1 downto 0 do
          Stack.push i free_slots
        done;
        { rng = Sim.Rng.create (seed + tid); iter = 0; phase = Alloc 0; free_slots;
          live = []; ops = 0 })
  in
  let step ~tid () =
    let st = states.(tid) in
    if st.iter >= total_iters then false
    else begin
      (match st.phase with
      | Alloc k ->
          let i = Stack.pop st.free_slots in
          let size = Sim.Rng.poisson_in st.rng params.min_size params.max_size in
          ignore (inst.malloc ~tid ~size ~dest:(Driver.slot inst ~tid i));
          st.live <- i :: st.live;
          st.ops <- st.ops + 1;
          if k + 1 < params.objects then st.phase <- Alloc (k + 1)
          else begin
            (* Choose the random victims for the delete phase. *)
            let arr = Array.of_list st.live in
            Sim.Rng.shuffle st.rng arr;
            let nvictims =
              int_of_float (float_of_int (Array.length arr) *. params.delete_frac)
            in
            let victims = Array.to_list (Array.sub arr 0 nvictims) in
            st.live <-
              List.filter (fun i -> not (List.mem i victims)) (Array.to_list arr);
            st.phase <- Delete victims
          end
      | Delete [] ->
          st.iter <- st.iter + 1;
          st.phase <- Alloc 0
      | Delete (i :: rest) ->
          inst.free ~tid ~dest:(Driver.slot inst ~tid i);
          Stack.push i st.free_slots;
          st.ops <- st.ops + 1;
          st.phase <- Delete rest);
      true
    end
  in
  Driver.run inst ~ops_of:(fun ~tid -> states.(tid).ops) ~step_of:step
