(** Workload driver: runs per-thread step functions over an allocator
    instance through the deterministic scheduler and gathers the metrics
    every experiment reports. *)

type result = {
  allocator : string;
  threads : int;
  total_ops : int;  (** allocation + free operations performed *)
  makespan_ns : float;  (** simulated wall-clock of the run *)
  mops : float;  (** throughput, million operations / simulated second *)
  peak_bytes : int;  (** peak mapped persistent memory during the run *)
}

type backend =
  Alloc_api.Instance.t -> ops_of:(tid:int -> int) -> step_of:(tid:int -> unit -> bool) -> result

val set_parallel_backend : backend option -> unit
(** Execution-backend seam: with a backend installed, {!run} delegates
    the whole drive (after the threads guard and peak reset) to it
    instead of the simulated scheduler. [Par.Runner.workload] installs
    the domain-pool backend scoped around one workload call; nothing
    else should touch this. The sim scheduler remains the default and
    the only deterministic backend. *)

val run :
  Alloc_api.Instance.t -> ops_of:(tid:int -> int) -> step_of:(tid:int -> unit -> bool) -> result
(** [step_of ~tid] builds thread [tid]'s step closure ([false] = done);
    [ops_of ~tid] declares how many operations that thread will have
    performed, for the throughput figure. Resets peak tracking before
    starting. When the instance's device has a telemetry sink attached,
    the scheduler emits per-step "run" spans into it and the instance's
    heap snapshot is taken every 1024 scheduler steps and once at the
    makespan. Raises [Invalid_argument] on an instance with
    [threads <= 0]. *)

val require_slots : Alloc_api.Instance.t -> int -> unit
(** Assert that each thread's root-slot partition holds at least [n]
    slots, raising a descriptive [Invalid_argument] otherwise — the
    uniform guard workloads use against op counts that overflow the
    per-thread partitioning. Also rejects [threads <= 0]. *)

val idle : Alloc_api.Instance.t -> tid:int -> unit
(** Charge a short idle spin (used when a consumer waits for its
    producer). *)

val slots_per_thread : Alloc_api.Instance.t -> int
(** Root-table slots available to each thread (disjoint partitions).
    Raises [Invalid_argument] on [threads <= 0]. *)

val slot : Alloc_api.Instance.t -> tid:int -> int -> int
(** Address of thread [tid]'s [i]-th root slot. *)
