type params = {
  slots : int;
  ops : int;
  min_size : int;
  max_size : int;
  cross_frac : float;
}

let small = { slots = 1000; ops = 10_000; min_size = 64; max_size = 256; cross_frac = 0.2 }

let large =
  { slots = 64; ops = 1500; min_size = 32 * 1024; max_size = 512 * 1024; cross_frac = 0.2 }

let run (inst : Alloc_api.Instance.t) ?(params = small) ?(seed = 11) () =
  let open Alloc_api.Instance in
  Driver.require_slots inst params.slots;
  let occupied = Array.make (inst.threads * params.slots) false in
  let rngs = Array.init inst.threads (fun tid -> Sim.Rng.create (seed + tid)) in
  let remaining = Array.make inst.threads params.ops in
  let step ~tid () =
    if remaining.(tid) <= 0 then false
    else begin
      let rng = rngs.(tid) in
      let owner =
        if inst.threads > 1 && Sim.Rng.float rng 1.0 < params.cross_frac then
          (tid + 1) mod inst.threads
        else tid
      in
      let i = Sim.Rng.int rng params.slots in
      let key = (owner * params.slots) + i in
      let dest = Driver.slot inst ~tid:owner i in
      if occupied.(key) then begin
        inst.free ~tid ~dest;
        occupied.(key) <- false;
        remaining.(tid) <- remaining.(tid) - 1
      end
      else if owner = tid then begin
        let size = Sim.Rng.int_in rng params.min_size params.max_size in
        ignore (inst.malloc ~tid ~size ~dest);
        occupied.(key) <- true;
        remaining.(tid) <- remaining.(tid) - 1
      end
      else
        (* A cross-thread probe that found the slot empty: cheap retry. *)
        Driver.idle inst ~tid;
      true
    end
  in
  Driver.run inst ~ops_of:(fun ~tid:_ -> params.ops) ~step_of:step
