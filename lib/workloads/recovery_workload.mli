(** Recovery workload (section 6.6 / Figure 18): build a single linked
    list of [nodes] nodes with sizes uniform in [min_size, max_size]
    (the paper uses 10 M nodes of 64-128 B; scaled to 20 k), then crash
    and measure single-threaded recovery time. *)

type params = { nodes : int; min_size : int; max_size : int }

val default : params

val run :
  Alloc_api.Instance.t -> ?params:params -> ?seed:int -> ?crash_after:int -> unit -> float
(** Returns the simulated recovery time in nanoseconds. [crash_after]
    arms {!Pmem.Device.schedule_crash_after} before the build, so the
    measured recovery starts from a mid-operation crash rather than the
    quiescent end of the workload; without it the build runs to
    completion and the crash is clean. *)
