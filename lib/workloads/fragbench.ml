type dist = Fixed of int | Uniform of int * int

type workload = { label : string; before : dist; delete_frac : float; after : dist }

let w1 = { label = "W1"; before = Fixed 100; delete_frac = 0.9; after = Fixed 130 }
let w2 = { label = "W2"; before = Uniform (100, 150); delete_frac = 0.0; after = Uniform (200, 250) }
let w3 = { label = "W3"; before = Uniform (100, 150); delete_frac = 0.9; after = Uniform (200, 250) }
let w4 = { label = "W4"; before = Uniform (100, 200); delete_frac = 0.5; after = Uniform (1000, 2000) }
let all = [ w1; w2; w3; w4 ]

type params = { live_cap : int; churn : int }

let default = { live_cap = 12 * 1024 * 1024; churn = 60 * 1024 * 1024 }

type frag_result = { result : Driver.result; peak_before : int; peak_after : int }

let draw rng = function Fixed n -> n | Uniform (lo, hi) -> Sim.Rng.int_in rng lo hi

(* Live-object table: slot index -> size. *)
type state = {
  rng : Sim.Rng.t;
  mutable live : (int * int) array; (* (slot, size), dense prefix of [count] *)
  mutable count : int;
  free_slots : int Stack.t;
  mutable live_bytes : int;
  mutable churned : int;
  mutable ops : int;
}

let delete_random inst st =
  let open Alloc_api.Instance in
  assert (st.count > 0);
  let k = Sim.Rng.int st.rng st.count in
  let slot, size = st.live.(k) in
  st.live.(k) <- st.live.(st.count - 1);
  st.count <- st.count - 1;
  inst.free ~tid:0 ~dest:(Driver.slot inst ~tid:0 slot);
  Stack.push slot st.free_slots;
  st.live_bytes <- st.live_bytes - size;
  st.ops <- st.ops + 1

let churn_phase inst st ~(params : params) ~dist =
  let open Alloc_api.Instance in
  st.churned <- 0;
  while st.churned < params.churn do
    let size = draw st.rng dist in
    while st.live_bytes + size > params.live_cap do
      delete_random inst st
    done;
    let slot = Stack.pop st.free_slots in
    ignore (inst.malloc ~tid:0 ~size ~dest:(Driver.slot inst ~tid:0 slot));
    st.live.(st.count) <- (slot, size);
    st.count <- st.count + 1;
    st.live_bytes <- st.live_bytes + size;
    st.churned <- st.churned + size;
    st.ops <- st.ops + 1
  done

let run (inst : Alloc_api.Instance.t) ~workload ?(params = default) ?(seed = 31) () =
  let open Alloc_api.Instance in
  let max_live = (params.live_cap / 64) + 64 in
  Driver.require_slots inst max_live;
  let free_slots = Stack.create () in
  for i = max_live - 1 downto 0 do
    Stack.push i free_slots
  done;
  let st =
    {
      rng = Sim.Rng.create seed;
      live = Array.make max_live (0, 0);
      count = 0;
      free_slots;
      live_bytes = 0;
      churned = 0;
      ops = 0;
    }
  in
  inst.reset_peak ();
  let peak_before = ref 0 in
  (* The phases run as one logical thread; Driver.run is bypassed because
     phases need code between them. *)
  churn_phase inst st ~params ~dist:workload.before;
  peak_before := inst.peak_bytes ();
  let victims = int_of_float (float_of_int st.count *. workload.delete_frac) in
  for _ = 1 to victims do
    delete_random inst st
  done;
  churn_phase inst st ~params ~dist:workload.after;
  let makespan = Sim.Clock.now inst.clocks.(0) in
  {
    result =
      {
        Driver.allocator = inst.name;
        threads = 1;
        total_ops = st.ops;
        makespan_ns = makespan;
        mops = (if makespan > 0.0 then float_of_int st.ops /. (makespan /. 1e9) /. 1e6 else 0.0);
        peak_bytes = inst.peak_bytes ();
      };
    peak_before = !peak_before;
    peak_after = inst.peak_bytes ();
  }
