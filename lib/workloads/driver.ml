type result = {
  allocator : string;
  threads : int;
  total_ops : int;
  makespan_ns : float;
  mops : float;
  peak_bytes : int;
}

(* Heap-introspection snapshot cadence, in scheduler steps summed over
   all threads. Scheduler order is deterministic, so snapshot times are
   too. *)
let snapshot_period = 1024

(* Idle-poll charge for the background-maintenance daemon. The scheduler
   picks the smallest clock, so the daemon interleaves with the workers
   every [poll] of simulated time; checkpoint work it performs charges
   its own clock on top. *)
let maintenance_poll_ns = 2000.0

(* An instance with no threads has nothing to schedule and makes the
   per-thread root-slot partition a division by zero: reject it loudly
   instead of failing deep inside a workload. *)
let require_threads (inst : Alloc_api.Instance.t) =
  if inst.Alloc_api.Instance.threads <= 0 then
    invalid_arg
      (Printf.sprintf "Driver: instance %S has %d threads (need >= 1)"
         inst.Alloc_api.Instance.name inst.Alloc_api.Instance.threads)

(* Execution-backend seam. The simulated scheduler below is the default
   and the only deterministic backend; [lib/par] installs a replacement
   that drives the same per-thread step closures on OCaml domains
   (scoped: installed for one workload call, then removed). The hook
   lives here — not in the workloads — so every workload gains the
   domain backend without knowing it exists. *)
type backend =
  Alloc_api.Instance.t -> ops_of:(tid:int -> int) -> step_of:(tid:int -> unit -> bool) -> result

let parallel_backend : backend option ref = ref None
let set_parallel_backend b = parallel_backend := b

let rec run (inst : Alloc_api.Instance.t) ~ops_of ~step_of =
  match !parallel_backend with
  | Some exec ->
      require_threads inst;
      inst.Alloc_api.Instance.reset_peak ();
      exec inst ~ops_of ~step_of
  | None -> run_sim inst ~ops_of ~step_of

and run_sim (inst : Alloc_api.Instance.t) ~ops_of ~step_of =
  require_threads inst;
  inst.Alloc_api.Instance.reset_peak ();
  let telem = Pmem.Device.telemetry inst.Alloc_api.Instance.dev in
  let steps = ref 0 in
  let wrap ~tid =
    let step = step_of ~tid in
    match telem with
    | None -> step
    | Some _ ->
        fun () ->
          let live = step () in
          incr steps;
          if !steps mod snapshot_period = 0 then
            inst.Alloc_api.Instance.snapshot
              (Sim.Clock.now inst.Alloc_api.Instance.clocks.(tid));
          live
  in
  let threads =
    Array.init inst.Alloc_api.Instance.threads (fun tid ->
        { Sim.Scheduler.clock = inst.Alloc_api.Instance.clocks.(tid); step = wrap ~tid })
  in
  (* The maintenance daemon (async WAL checkpoints) runs as one extra
     scheduler thread on its own clock: it polls while any worker is
     live and retires with the last of them. Its clock is deliberately
     excluded from the makespan — trailing idle polls are not workload
     time; the contention its checkpoints cause lands on worker clocks
     through the arena locks. *)
  let scheduled =
    match inst.Alloc_api.Instance.maintenance with
    | None -> threads
    | Some tick ->
        let live_workers = ref (Array.length threads) in
        let workers =
          Array.map
            (fun th ->
              {
                th with
                Sim.Scheduler.step =
                  (fun () ->
                    let live = th.Sim.Scheduler.step () in
                    if not live then decr live_workers;
                    live);
              })
            threads
        in
        let dclock = Sim.Clock.create () in
        let daemon =
          {
            Sim.Scheduler.clock = dclock;
            step =
              (fun () ->
                if !live_workers = 0 then false
                else begin
                  if not (tick dclock) then Sim.Clock.charge dclock maintenance_poll_ns;
                  true
                end);
          }
        in
        Array.append workers [| daemon |]
  in
  Sim.Scheduler.run ?telem scheduled;
  let makespan = Sim.Scheduler.makespan threads in
  (* Close the track with a final snapshot at the makespan. *)
  (match telem with Some _ -> inst.Alloc_api.Instance.snapshot makespan | None -> ());
  let total_ops = ref 0 in
  for tid = 0 to inst.Alloc_api.Instance.threads - 1 do
    total_ops := !total_ops + ops_of ~tid
  done;
  {
    allocator = inst.Alloc_api.Instance.name;
    threads = inst.Alloc_api.Instance.threads;
    total_ops = !total_ops;
    makespan_ns = makespan;
    mops = (if makespan > 0.0 then float_of_int !total_ops /. (makespan /. 1e9) /. 1e6 else 0.0);
    peak_bytes = inst.Alloc_api.Instance.peak_bytes ();
  }

let idle (inst : Alloc_api.Instance.t) ~tid =
  Sim.Clock.charge inst.Alloc_api.Instance.clocks.(tid) 100.0

let slots_per_thread (inst : Alloc_api.Instance.t) =
  require_threads inst;
  inst.Alloc_api.Instance.root_count / inst.Alloc_api.Instance.threads

let require_slots (inst : Alloc_api.Instance.t) n =
  let per = slots_per_thread inst in
  if n > per then
    invalid_arg
      (Printf.sprintf
         "Driver: workload needs %d root slots per thread, instance %S provides %d (%d slots \
          / %d threads)"
         n inst.Alloc_api.Instance.name per inst.Alloc_api.Instance.root_count
         inst.Alloc_api.Instance.threads)

let slot (inst : Alloc_api.Instance.t) ~tid i =
  let per = slots_per_thread inst in
  if i < 0 || i >= per then
    invalid_arg (Printf.sprintf "Driver.slot: index %d outside the %d-slot partition" i per);
  (* Interleave consecutive logical slots across cache lines (8 slots of
     8 B per line): benchmark harnesses pad their result arrays to avoid
     false sharing, and without this every allocator pays identical
     destination-line reflushes that mask the metadata effects under
     study. *)
  let phys =
    if per mod 8 = 0 && per >= 64 then (i mod 8 * (per / 8)) + (i / 8) else i
  in
  inst.Alloc_api.Instance.root ((tid * per) + phys)
