type params = { iterations : int; objects : int; size : int }

let default = { iterations = 10; objects = 1000; size = 64 }

type phase = Alloc of int | Free of int

type state = { mutable iter : int; mutable phase : phase }

let run (inst : Alloc_api.Instance.t) ?(params = default) () =
  let open Alloc_api.Instance in
  Driver.require_slots inst params.objects;
  let states = Array.init inst.threads (fun _ -> { iter = 0; phase = Alloc 0 }) in
  let step ~tid () =
    let st = states.(tid) in
    if st.iter >= params.iterations then false
    else begin
      (match st.phase with
      | Alloc i ->
          ignore (inst.malloc ~tid ~size:params.size ~dest:(Driver.slot inst ~tid i));
          st.phase <- (if i + 1 < params.objects then Alloc (i + 1) else Free 0)
      | Free i ->
          inst.free ~tid ~dest:(Driver.slot inst ~tid i);
          if i + 1 < params.objects then st.phase <- Free (i + 1)
          else begin
            st.iter <- st.iter + 1;
            st.phase <- Alloc 0
          end);
      true
    end
  in
  Driver.run inst
    ~ops_of:(fun ~tid:_ -> 2 * params.iterations * params.objects)
    ~step_of:step
