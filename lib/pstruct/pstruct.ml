type span = { addr : int; len : int }

let span_of ~addr ~len = { addr; len }

let union a b =
  let lo = min a.addr b.addr and hi = max (a.addr + a.len) (b.addr + b.len) in
  { addr = lo; len = hi - lo }

type _ ty =
  | U8 : int ty
  | U16 : int ty
  | U32 : int ty
  | I64 : int64 ty
  | Int : int ty
  | Bytes : int -> bytes ty

let ty_len : type a. a ty -> int = function
  | U8 -> 1
  | U16 -> 2
  | U32 -> 4
  | I64 -> 8
  | Int -> 8
  | Bytes n ->
      if n <= 0 then invalid_arg "Pstruct: Bytes field must have positive length";
      n

(* Declared extents, kept for overlap rejection and pretty-printing.
   [e_pp] closes over the typed field so [pp] needs no GADT dispatch. *)
type entry = {
  e_name : string;
  e_off : int;
  e_len : int;
  e_pp : Pmem.Device.t -> int -> Format.formatter -> unit;
}

type layout = {
  l_name : string;
  mutable l_entries : entry list; (* reverse declaration order *)
  mutable l_sealed : int option;
}

type 'a field = { f_layout : layout; f_name : string; f_off : int; f_ty : 'a ty }

type 'a arr = {
  a_layout : layout;
  a_name : string;
  a_off : int;
  a_stride : int;
  a_count : int;
  a_ty : 'a ty;
}

let layout name = { l_name = name; l_entries = []; l_sealed = None }
let layout_name l = l.l_name

let reject l fmt =
  Printf.ksprintf (fun msg -> invalid_arg (Printf.sprintf "Pstruct %s: %s" l.l_name msg)) fmt

let reserve l name ~off ~len pp =
  if l.l_sealed <> None then reject l "field %s declared after seal" name;
  if off < 0 || len <= 0 then reject l "field %s has bad extent (off=%d, len=%d)" name off len;
  List.iter
    (fun e ->
      if off < e.e_off + e.e_len && e.e_off < off + len then
        reject l "field %s [%d..%d) overlaps %s [%d..%d)" name off (off + len) e.e_name
          e.e_off (e.e_off + e.e_len))
    l.l_entries;
  l.l_entries <- { e_name = name; e_off = off; e_len = len; e_pp = pp } :: l.l_entries

let pp_value : type a. a ty -> Format.formatter -> a -> unit =
 fun ty ppf v ->
  match ty with
  | U8 -> Format.fprintf ppf "%#x" v
  | U16 -> Format.fprintf ppf "%#x" v
  | U32 -> Format.fprintf ppf "%#x" v
  | I64 -> Format.fprintf ppf "%#Lx" v
  | Int -> Format.fprintf ppf "%d" v
  | Bytes _ ->
      Format.pp_print_char ppf '"';
      Bytes.iter (fun c -> Format.fprintf ppf "%02x" (Char.code c)) v;
      Format.pp_print_char ppf '"'

let[@inline] read : type a. a ty -> Pmem.Device.t -> int -> a =
 fun ty dev addr ->
  match ty with
  | U8 -> Pmem.Device.read_u8 dev addr
  | U16 -> Pmem.Device.read_u16 dev addr
  | U32 -> Pmem.Device.read_u32 dev addr
  | I64 -> Pmem.Device.read_int64 dev addr
  | Int -> Pmem.Device.read_int dev addr
  | Bytes n -> Pmem.Device.read_bytes dev addr n

let[@inline] write : type a. a ty -> Pmem.Device.t -> int -> a -> unit =
 fun ty dev addr v ->
  match ty with
  | U8 -> Pmem.Device.write_u8 dev addr v
  | U16 -> Pmem.Device.write_u16 dev addr v
  | U32 -> Pmem.Device.write_u32 dev addr v
  | I64 -> Pmem.Device.write_int64 dev addr v
  | Int -> Pmem.Device.write_int dev addr v
  | Bytes n ->
      if Bytes.length v <> n then
        invalid_arg
          (Printf.sprintf "Pstruct: bytes value of length %d written to %d-byte field"
             (Bytes.length v) n);
      Pmem.Device.write_bytes dev addr v

let field l name ~off ty =
  let f = { f_layout = l; f_name = name; f_off = off; f_ty = ty } in
  reserve l name ~off ~len:(ty_len ty) (fun dev base ppf ->
      pp_value ty ppf (read ty dev (base + off)));
  f

let array l name ~off ?stride ~count ty =
  let elt = ty_len ty in
  let stride = Option.value ~default:elt stride in
  if count <= 0 || stride < elt then
    reject l "array %s has bad shape (count=%d, stride=%d, elt=%d)" name count stride elt;
  let a = { a_layout = l; a_name = name; a_off = off; a_stride = stride; a_count = count; a_ty = ty } in
  reserve l name ~off ~len:(stride * count) (fun dev base ppf ->
      let shown = min count 8 in
      Format.pp_print_char ppf '[';
      for i = 0 to shown - 1 do
        if i > 0 then Format.pp_print_string ppf "; ";
        pp_value ty ppf (read ty dev (base + off + (i * stride)))
      done;
      if shown < count then Format.fprintf ppf "; … %d more" (count - shown);
      Format.pp_print_char ppf ']');
  a

let u8 l name ~off = field l name ~off U8
let u16 l name ~off = field l name ~off U16
let u32 l name ~off = field l name ~off U32
let i64 l name ~off = field l name ~off I64
let int_ l name ~off = field l name ~off Int
let bytes_ l name ~off ~len = field l name ~off (Bytes len)

let seal l ~size =
  if l.l_sealed <> None then reject l "sealed twice";
  if size <= 0 then reject l "sealed with non-positive size %d" size;
  List.iter
    (fun e ->
      if e.e_off + e.e_len > size then
        reject l "field %s [%d..%d) escapes sealed size %d" e.e_name e.e_off
          (e.e_off + e.e_len) size)
    l.l_entries;
  l.l_sealed <- Some size

let size l =
  match l.l_sealed with Some s -> s | None -> reject l "size of unsealed layout"

(* --- typed access ------------------------------------------------------ *)

let[@inline] get dev ~base f = read f.f_ty dev (base + f.f_off)
let[@inline] set dev ~base f v = write f.f_ty dev (base + f.f_off) v

let[@inline] elt_addr a base i =
  if i < 0 || i >= a.a_count then
    invalid_arg
      (Printf.sprintf "Pstruct %s: index %d outside array %s[%d]" a.a_layout.l_name i
         a.a_name a.a_count);
  base + a.a_off + (i * a.a_stride)

let[@inline] get_elt dev ~base a i = read a.a_ty dev (elt_addr a base i)
let[@inline] set_elt dev ~base a i v = write a.a_ty dev (elt_addr a base i) v

(* --- spans -------------------------------------------------------------- *)

let[@inline] span ~base f = { addr = base + f.f_off; len = ty_len f.f_ty }
let elt_span ~base a i = { addr = elt_addr a base i; len = ty_len a.a_ty }
let arr_span ~base a = { addr = base + a.a_off; len = a.a_stride * a.a_count }
let layout_span ~base l = { addr = base; len = size l }

(* --- persistence -------------------------------------------------------- *)

let[@inline] flush_span dev clock cat s = Pmem.Device.flush dev clock cat ~addr:s.addr ~len:s.len

let commit ?(deps = []) dev clock cat s =
  List.iter
    (fun (note, d) -> Pmem.Device.depends_on ~note dev clock ~addr:d.addr ~len:d.len)
    deps;
  Pmem.Device.commit_flush dev clock cat ~addr:s.addr ~len:s.len

(* --- debugging ---------------------------------------------------------- *)

let pp dev ~base ppf l =
  let entries = List.sort (fun a b -> compare a.e_off b.e_off) (List.rev l.l_entries) in
  Format.fprintf ppf "@[<v 2>%s @@ %#x {" l.l_name base;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,%-12s @@+%-4d = " e.e_name e.e_off;
      e.e_pp dev base ppf)
    entries;
  Format.fprintf ppf "@]@,}"
