(** Typed persistent layouts.

    Every persistent structure in the allocator used to be hand-rolled
    offset arithmetic over raw {!Pmem.Device} accessors — nothing stated
    which bytes form a field, which fields belong to one commit, or what
    must be persisted before a commit point. This module is the thin
    typed layer that fixes that (in the spirit of FliT): a layout is
    declared once — field name, offset, width — and yields typed
    getters/setters, spans for flushing, a {!commit} combinator that
    declares its persist-ordering dependencies to the device checker, and
    pretty-printing of any live struct.

    Layouts are built imperatively at module-initialisation time and then
    {!seal}ed; overlapping fields and fields escaping the sealed size are
    rejected with [Invalid_argument] at declaration time, so a bad layout
    fails at program start, not at first access. *)

type span = { addr : int; len : int }
(** A byte range of the device — the unit of flushing and of ordering
    dependencies. *)

val span_of : addr:int -> len:int -> span
val union : span -> span -> span
(** Bounding box of two spans. Flushing is cache-line granular, so the
    union of spans that share lines flushes the same line set as flushing
    each span separately. *)

(** Field types. [Int] is a 63-bit OCaml int stored as a little-endian
    int64; [Bytes n] is a raw [n]-byte field. *)
type _ ty =
  | U8 : int ty
  | U16 : int ty
  | U32 : int ty
  | I64 : int64 ty
  | Int : int ty
  | Bytes : int -> bytes ty

type layout
type 'a field
type 'a arr

(** {1 Declaring layouts} *)

val layout : string -> layout
(** A fresh, empty, unsealed layout; the name appears in error messages
    and {!pp} output. *)

val field : layout -> string -> off:int -> 'a ty -> 'a field
(** Declare a field. Raises [Invalid_argument] if the layout is sealed,
    the offset is negative, or the field overlaps one already declared. *)

val array : layout -> string -> off:int -> ?stride:int -> count:int -> 'a ty -> 'a arr
(** Declare an array of [count] elements at [off], [stride] bytes apart
    (default: the element width). Reserves [off, off + stride*count);
    same rejection rules as {!field}. *)

val u8 : layout -> string -> off:int -> int field
val u16 : layout -> string -> off:int -> int field
val u32 : layout -> string -> off:int -> int field
val i64 : layout -> string -> off:int -> int64 field
val int_ : layout -> string -> off:int -> int field
val bytes_ : layout -> string -> off:int -> len:int -> bytes field

val seal : layout -> size:int -> unit
(** Freeze the layout at [size] bytes. Raises [Invalid_argument] if
    already sealed or any declared field extends past [size]. *)

val size : layout -> int
(** The sealed size. Raises [Invalid_argument] if not sealed. *)

val layout_name : layout -> string

(** {1 Typed access}

    A struct instance is a [base] address on a device; fields address
    [base + off]. *)

val get : Pmem.Device.t -> base:int -> 'a field -> 'a
val set : Pmem.Device.t -> base:int -> 'a field -> 'a -> unit

val get_elt : Pmem.Device.t -> base:int -> 'a arr -> int -> 'a
val set_elt : Pmem.Device.t -> base:int -> 'a arr -> int -> 'a -> unit
(** Element access; an index outside [0, count) raises
    [Invalid_argument]. *)

(** {1 Spans} *)

val span : base:int -> 'a field -> span
val elt_span : base:int -> 'a arr -> int -> span
val arr_span : base:int -> 'a arr -> span
val layout_span : base:int -> layout -> span
(** The whole sealed struct. *)

(** {1 Persistence} *)

val flush_span : Pmem.Device.t -> Sim.Clock.t -> Pmem.Stats.category -> span -> unit
(** Plain {!Pmem.Device.flush} of the span (not a commit point). *)

val commit :
  ?deps:(string * span) list ->
  Pmem.Device.t ->
  Sim.Clock.t ->
  Pmem.Stats.category ->
  span ->
  unit
(** Flush+fence the span as a {e commit point}: each [dep] (a label and a
    span that the protocol persisted — or should have persisted — before
    this commit) is declared to the device's persist-ordering checker via
    {!Pmem.Device.depends_on}, then the span retires through
    {!Pmem.Device.commit_flush}, which validates the dependencies when
    check mode is on. With check mode off this is exactly {!flush_span}. *)

(** {1 Debugging} *)

val pp : Pmem.Device.t -> base:int -> Format.formatter -> layout -> unit
(** Print every declared field of the live struct at [base], in offset
    order; arrays print up to their first 8 elements. *)
