(** Simulated mutex.

    A lock is a timestamp: the moment it next becomes free. Acquisition by a
    thread whose clock is behind that timestamp stalls the thread (models
    contention); releasing publishes the holder's current time. The
    min-clock scheduling discipline in {!Scheduler} guarantees that the
    serialisation this produces is consistent: the thread that acquires is
    always the earliest-clock runnable thread. *)

type t

val create : ?acquire_ns:float -> unit -> t
(** [acquire_ns] is the uncontended acquisition cost (CAS + cache traffic),
    default 20 ns. *)

val acquire : t -> Clock.t -> unit
(** Stalls [clock] until the lock is free, then charges the acquisition
    cost. Counts a contention event when a stall occurred. *)

val release : t -> Clock.t -> unit

val with_lock : t -> Clock.t -> (unit -> 'a) -> 'a
(** [with_lock t clock f] brackets [f] with {!acquire}/{!release}. [f] must
    not raise: the simulation treats exceptions inside critical sections as
    fatal programming errors. *)

val contention_count : t -> int
(** Number of acquisitions that had to wait. *)

val set_wait_hook : t -> (Clock.t -> float -> unit) option -> unit
(** Observation hook called with the stall duration on every contended
    acquire, before the stall. Used by latency attribution to charge
    lock-wait components; the hook must not touch simulated clocks (the
    stall is charged identically either way). [None] (the default)
    restores the unobserved path. *)
