(** Per-thread simulated clock.

    Every logical thread in the simulation owns one clock, measured in
    nanoseconds since the start of the run. All latency charged by the
    persistent-memory device, locks and CPU work advances the clock of the
    thread performing the operation.

    The representation keeps the time in an all-float sub-record so that
    advancing the clock stores an unboxed float instead of allocating —
    read it through {!now}. *)

type t

val create : unit -> t
(** Each clock gets a unique {!id}; the device uses it to keep per-thread
    flush-stream state (reflush windows, sequentiality), since those are
    properties of one core's write stream. *)

val now : t -> float
val id : t -> int

val charge : t -> float -> unit
(** [charge t ns] advances the clock by [ns] nanoseconds. *)

val wait_until : t -> float -> unit
(** [wait_until t time] advances the clock to [time] if it is in the
    future; a no-op otherwise. *)

val restart : t -> unit
(** Reset the clock to 0 (used by benchmarks that time phases of one
    instance separately); the [id] is unchanged. *)
