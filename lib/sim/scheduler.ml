type thread = { clock : Clock.t; step : unit -> bool }

(* Binary min-heap of runnable thread indices, keyed by (clock, index).
   The index tie-break makes the pop order identical to the former
   linear scan (which took the first thread with the strictly smallest
   clock), so schedules — and therefore every simulated result — are
   unchanged; each step costs O(log n) instead of O(n). A step only
   advances its own thread's clock, so re-keying after a step is a
   single sift-down from the root. *)
let run ?telem threads =
  let n = Array.length threads in
  if n > 0 then begin
    (* With a sink attached, each scheduled step becomes a "run" span:
       [ts] = the thread's clock when picked, [dur] = how far the step
       advanced it. Interned once; emission is outside the step, charges
       nothing, and the [None] path costs one compare per step. *)
    let step_name =
      match telem with Some t -> Telemetry.intern t "run" | None -> -1
    in
    let heap = Array.init n (fun i -> i) in
    let size = ref n in
    let lt i j =
      let a = Clock.now threads.(i).clock and b = Clock.now threads.(j).clock in
      a < b || (a = b && i < j)
    in
    let rec sift_down i =
      let l = (2 * i) + 1 in
      if l < !size then begin
        let m = if l + 1 < !size && lt heap.(l + 1) heap.(l) then l + 1 else l in
        if lt heap.(m) heap.(i) then begin
          let tmp = heap.(m) in
          heap.(m) <- heap.(i);
          heap.(i) <- tmp;
          sift_down m
        end
      end
    in
    for i = (n / 2) - 1 downto 0 do
      sift_down i
    done;
    while !size > 0 do
      let i = heap.(0) in
      let clock = threads.(i).clock in
      let before = Clock.now clock in
      let live = threads.(i).step () in
      (match telem with
      | None -> ()
      | Some t ->
          Telemetry.span t ~tid:(Clock.id clock) ~name:step_name ~ts:before
            ~dur:(Clock.now clock -. before));
      if live then sift_down 0
      else begin
        decr size;
        heap.(0) <- heap.(!size);
        if !size > 0 then sift_down 0
      end
    done
  end

let makespan threads =
  Array.fold_left (fun acc t -> Float.max acc (Clock.now t.clock)) 0.0 threads
