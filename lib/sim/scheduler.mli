(** Deterministic discrete-time thread scheduler.

    Logical threads are step functions. The scheduler repeatedly runs one
    step of the runnable thread with the smallest clock (ties broken by
    thread index), selected from a binary min-heap keyed on (clock,
    index) — O(log n) per step, with the same visit order as a linear
    min-scan — so simulated time advances consistently across threads:
    an operation that starts earlier is simulated earlier. One step should
    correspond to one workload operation (e.g. one malloc/free pair); locks
    and device queues then interleave the threads at operation granularity.

    The simulation is single-OS-threaded and needs no Domain machinery:
    determinism is the point, see DESIGN.md section 1. *)

type thread = {
  clock : Clock.t;
  step : unit -> bool;  (** perform one operation; [false] when finished *)
}

val run : ?telem:Telemetry.t -> thread array -> unit
(** Runs all threads to completion. With [telem], each scheduled step is
    emitted as a "run" span on its thread's track ([ts] = clock when
    picked, [dur] = clock advance); emission charges no simulated time,
    so traced and untraced runs produce identical simulated results. *)

val makespan : thread array -> float
(** Largest clock value: the simulated wall-clock duration of the run.
    Throughput = operations / makespan. *)
