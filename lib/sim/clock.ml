(* The time lives in a single-field all-float record: stores to [st.now]
   write an unboxed float in place, where a float field in the mixed
   (float + int) record this used to be would allocate a fresh box on
   every [charge]/[wait_until] — once or twice per simulated flush. *)
type state = { mutable now : float }
type t = { st : state; id : int }

let counter = ref 0

let create () =
  incr counter;
  { st = { now = 0.0 }; id = !counter }

let now t = t.st.now
let id t = t.id
let charge t ns = t.st.now <- t.st.now +. ns
let wait_until t time = if time > t.st.now then t.st.now <- time

(* Benchmark support: restart a thread's clock (e.g. FPTree re-runs the
   same instance for several phases and times each from zero). *)
let restart t = t.st.now <- 0.0
