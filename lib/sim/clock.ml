(* The time lives in a single-field all-float record: stores to [st.now]
   write an unboxed float in place, where a float field in the mixed
   (float + int) record this used to be would allocate a fresh box on
   every [charge]/[wait_until] — once or twice per simulated flush. *)
type state = { mutable now : float }
type t = { st : state; id : int }

(* Atomic: the domain-parallel backend (lib/par) builds instances — and
   therefore clocks — from several domains at once (one allocator stack
   per swept seed); ids must stay unique across them. Within one
   instance clocks are still created sequentially, so the relative
   creation order that telemetry's tid normalisation relies on is
   unchanged. *)
let counter = Atomic.make 0

let create () = { st = { now = 0.0 }; id = Atomic.fetch_and_add counter 1 + 1 }

let now t = t.st.now
let id t = t.id
let charge t ns = t.st.now <- t.st.now +. ns
let wait_until t time = if time > t.st.now then t.st.now <- time

(* Benchmark support: restart a thread's clock (e.g. FPTree re-runs the
   same instance for several phases and times each from zero). *)
let restart t = t.st.now <- 0.0
