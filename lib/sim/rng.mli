(** Deterministic pseudo-random number generator (splitmix64).

    All workload generators draw from this module so that every experiment
    is reproducible bit-for-bit across runs and OCaml versions, which the
    crash-injection tests rely on. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> int -> t
(** [split t i] derives child generator [i] as a pure function of [t]'s
    current state and [i] ([t] is not advanced): the same parent state
    yields the same child stream regardless of how many other children
    are split off, in which order, or on which domain. The
    domain-parallel seed sweeps ([lib/par]) use this so per-task
    randomness is reproducible for any [--domains] count. [i] must be
    non-negative. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val poisson_in : t -> int -> int -> int
(** [poisson_in t lo hi] draws from a (truncated, discretised) Poisson-like
    distribution centred between [lo] and [hi], clamped to the range.
    DBMStest uses this for its 32 KB - 512 KB object sizes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
