type t = {
  mutable free_at : float;
  acquire_ns : float;
  mutable contended : int;
  (* Observation hook for latency attribution: called with the stall
     duration on contended acquires, before the wait. Must not touch the
     clock — the wait itself is charged identically with or without it. *)
  mutable on_wait : (Clock.t -> float -> unit) option;
}

let create ?(acquire_ns = 20.0) () =
  { free_at = 0.0; acquire_ns; contended = 0; on_wait = None }

let set_wait_hook t hook = t.on_wait <- hook

let acquire t clock =
  if t.free_at > Clock.now clock then begin
    t.contended <- t.contended + 1;
    (match t.on_wait with
    | None -> ()
    | Some f -> f clock (t.free_at -. Clock.now clock));
    Clock.wait_until clock t.free_at
  end;
  Clock.charge clock t.acquire_ns;
  (* Reserve the lock up to the holder's current time; extended on
     release. This keeps a second acquirer from slipping in between. *)
  t.free_at <- Clock.now clock

let release t clock = t.free_at <- Clock.now clock

let with_lock t clock f =
  acquire t clock;
  let r = f () in
  release t clock;
  r

let contention_count t = t.contended
