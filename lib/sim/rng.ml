type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: tiny, high-quality, and identical on every platform. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* Shift by 2 so the value fits OCaml's 63-bit int without wrapping. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let poisson_in t lo hi =
  (* Sum of four uniforms approximates a centred bell; cheap and
     deterministic, which is all the DBMStest size distribution needs. *)
  let quarter () = int_in t 0 ((hi - lo) / 4) in
  let v = lo + quarter () + quarter () + quarter () + quarter () in
  if v < lo then lo else if v > hi then hi else v

(* Deterministic child stream for parallel fan-out: child [i] is a pure
   function of (parent state, i) — the parent is not advanced, so the
   same parent state yields the same child for any execution order or
   domain count. The derivation is the splitmix64 finaliser over the
   parent state offset by (i+1) golden-ratio steps, i.e. child [i]
   starts where a dedicated generator seeded [i+1] increments ahead of
   the parent would, then diffuses; children of distinct indices are
   independent streams by the same argument splitmix64 itself rests
   on. *)
let split t i =
  assert (i >= 0);
  let open Int64 in
  let z = add t.state (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  { state = logxor z (shift_right_logical z 31) }

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
