type t = {
  seq_flush_ns : float;
  rand_flush_ns : float;
  reflush_base_ns : float;
  reflush_step_ns : float;
  reflush_window : int;
  fence_ns : float;
  pm_read_line_ns : float;
  dram_ns : float;
  search_ns : float;
  wpq_capacity : int;
  wpq_drain_ns : float;
  media_parallelism : float;
}

let default =
  {
    seq_flush_ns = 100.0;
    rand_flush_ns = 300.0;
    reflush_base_ns = 800.0;
    reflush_step_ns = 100.0;
    reflush_window = 4;
    fence_ns = 20.0;
    pm_read_line_ns = 170.0;
    dram_ns = 15.0;
    search_ns = 25.0;
    wpq_capacity = 64;
    wpq_drain_ns = 95.0;
    media_parallelism = 4.0;
  }

(* eADR: no clwb, but dirty lines still consume PM write bandwidth when
   they leave the cache; a flat per-line cost independent of the access
   pattern (hence interleaved mapping is moot there, Figure 19). *)
let eadr =
  {
    default with
    seq_flush_ns = 60.0;
    rand_flush_ns = 60.0;
    reflush_base_ns = 60.0;
    reflush_step_ns = 0.0;
    fence_ns = 5.0;
  }

let[@inline] flush_cost t ~distance ~sequential =
  match distance with
  | Some d when d < t.reflush_window ->
      t.reflush_base_ns -. (t.reflush_step_ns *. float_of_int d)
  | Some _ | None -> if sequential then t.seq_flush_ns else t.rand_flush_ns
