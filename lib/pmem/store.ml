let chunk_bytes = 1 lsl 20
let () = assert (chunk_bytes mod Cacheline.size = 0)

type t = { total : int; chunks : Bytes.t option array }

let create ~size =
  assert (size > 0);
  { total = size; chunks = Array.make ((size + chunk_bytes - 1) / chunk_bytes) None }

let size t = t.total

let chunk_of t i =
  match t.chunks.(i) with
  | Some c -> c
  | None ->
      let c = Bytes.make chunk_bytes '\000' in
      t.chunks.(i) <- Some c;
      c

(* Fast-path predicate: the [len]-byte access stays inside one chunk. *)
let within addr len = addr land (chunk_bytes - 1) <= chunk_bytes - len

let get_u8 t addr =
  assert (addr >= 0 && addr < t.total);
  match t.chunks.(addr lsr 20) with
  | None -> 0
  | Some c -> Bytes.get_uint8 c (addr land (chunk_bytes - 1))

let set_u8 t addr v =
  assert (addr >= 0 && addr < t.total);
  Bytes.set_uint8 (chunk_of t (addr lsr 20)) (addr land (chunk_bytes - 1)) v

let get_u16 t addr =
  if within addr 2 then
    match t.chunks.(addr lsr 20) with
    | None -> 0
    | Some c -> Bytes.get_uint16_le c (addr land (chunk_bytes - 1))
  else get_u8 t addr lor (get_u8 t (addr + 1) lsl 8)

let set_u16 t addr v =
  if within addr 2 then Bytes.set_uint16_le (chunk_of t (addr lsr 20)) (addr land (chunk_bytes - 1)) v
  else begin
    set_u8 t addr (v land 0xFF);
    set_u8 t (addr + 1) ((v lsr 8) land 0xFF)
  end

let get_i64 t addr =
  if within addr 8 then
    match t.chunks.(addr lsr 20) with
    | None -> 0L
    | Some c -> Bytes.get_int64_le c (addr land (chunk_bytes - 1))
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 t (addr + i)))
    done;
    !v
  end

let set_i64 t addr v =
  if within addr 8 then Bytes.set_int64_le (chunk_of t (addr lsr 20)) (addr land (chunk_bytes - 1)) v
  else
    for i = 0 to 7 do
      set_u8 t (addr + i)
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
    done

let get_u32 t addr =
  if within addr 4 then
    match t.chunks.(addr lsr 20) with
    | None -> 0
    | Some c -> Int32.to_int (Bytes.get_int32_le c (addr land (chunk_bytes - 1))) land 0xFFFFFFFF
  else
    get_u8 t addr
    lor (get_u8 t (addr + 1) lsl 8)
    lor (get_u8 t (addr + 2) lsl 16)
    lor (get_u8 t (addr + 3) lsl 24)

let set_u32 t addr v =
  if within addr 4 then
    Bytes.set_int32_le (chunk_of t (addr lsr 20)) (addr land (chunk_bytes - 1)) (Int32.of_int v)
  else
    for i = 0 to 3 do
      set_u8 t (addr + i) ((v lsr (8 * i)) land 0xFF)
    done

(* Range operations walk chunk by chunk. *)
let rec iter_ranges t addr len f =
  if len > 0 then begin
    let off = addr land (chunk_bytes - 1) in
    let n = min len (chunk_bytes - off) in
    f (addr lsr 20) off addr n;
    iter_ranges t (addr + n) (len - n) f
  end

let read_bytes t addr len =
  let b = Bytes.make len '\000' in
  iter_ranges t addr len (fun ci off abs n ->
      match t.chunks.(ci) with
      | None -> ()
      | Some c -> Bytes.blit c off b (abs - addr) n);
  b

let write_bytes t addr src =
  iter_ranges t addr (Bytes.length src) (fun ci off abs n ->
      Bytes.blit src (abs - addr) (chunk_of t ci) off n)

let fill t addr len ch =
  iter_ranges t addr len (fun ci off _abs n ->
      (* Zero-filling a chunk that was never written is a no-op for every
         segment of the range — head, whole chunks and partial tail alike
         — since absent chunks already read as zeros. Only materialise a
         chunk when the fill byte is non-zero or the chunk exists. *)
      match t.chunks.(ci) with
      | None when ch = '\000' -> ()
      | None | Some _ -> Bytes.fill (chunk_of t ci) off n ch)

let allocated_chunks t =
  Array.fold_left (fun acc c -> match c with None -> acc | Some _ -> acc + 1) 0 t.chunks

let copy_line ~src ~dst line =
  let addr = line * Cacheline.size in
  let ci = addr lsr 20 and off = addr land (chunk_bytes - 1) in
  match src.chunks.(ci) with
  | None -> (
      (* Source line is zeros. *)
      match dst.chunks.(ci) with
      | None -> ()
      | Some d -> Bytes.fill d off Cacheline.size '\000')
  | Some s -> Bytes.blit s off (chunk_of dst ci) off Cacheline.size
