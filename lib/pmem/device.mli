(** The simulated persistent-memory device.

    The device keeps two images of memory:

    - the {e volatile} image — what the CPU sees through its caches; all
      reads and writes operate on it;
    - the {e persisted} image — what survives a crash.

    A write dirties the cache lines it touches. {!flush} writes dirty
    lines back to the persisted image, charging the issuing thread the
    media latency classified as sequential / random / reflush (see
    {!Latency}), throttled by the shared {!Xpbuffer}. {!crash} discards
    the volatile state of all dirty lines, which is exactly the failure
    model of ADR platforms (CPU caches are lost, the DIMM's write-pending
    queue is not — lines already admitted are persistent).

    In eADR mode ({!Latency.eadr}) flushes cost nothing and a crash
    preserves CPU caches, matching the paper's emulation in section 6.7.

    Crash injection: {!schedule_crash_after} arms a countdown of flushed
    lines after which the device crashes itself and raises
    {!Injected_crash}; the crash-consistency tests sweep this countdown
    over every flush of a scenario. A torn mode refines the crash point:
    ADR platforms only guarantee 8-byte store atomicity, so the line
    {e in flight} at the crash may persist only a subset of its 8-byte
    words ({!torn_mode}), chosen deterministically from a seed. *)

type t

exception Injected_crash

exception Media_error of { op : string; addr : int; len : int; line : int }
(** An uncorrectable media error: the read at [addr, addr+len) touched
    poisoned cache line [line]. Raised by the data accessors; see
    {!poison}. *)

type torn_mode =
  | Torn_prefix  (** the first k words (k drawn from the seed) persist *)
  | Torn_suffix  (** the last k words persist *)
  | Torn_random  (** a strict word subset drawn from the seed persists *)

val create : ?lat:Latency.t -> ?trace_limit:int -> size:int -> unit -> t
(** [size] is the device capacity in bytes; it must be a multiple of the
    cache-line size. *)

val size : t -> int
val stats : t -> Stats.t
val latency : t -> Latency.t
val is_eadr : t -> bool

(** {1 Telemetry}

    With a sink attached the device emits, per line flush, a span named
    [flush:<cat>] / [reflush:<cat>] (args: byte address, reflush
    distance) plus a latency-histogram observation; per fence, a [fence]
    span; and a [wpq_depth] counter sampled every 64 flushes. Emission
    never charges simulated clocks — attaching telemetry cannot change
    simulated results. Detached ([None], the default), the cost is one
    field check per flush/fence. *)

val set_telemetry : t -> Telemetry.t option -> unit
val telemetry : t -> Telemetry.t option

val attribution : t -> Telemetry.Attr.t option
(** Blame-tree handle of the attached sink, when
    [Telemetry.enable_attribution] was called on it. With attribution on,
    flushes/reflushes, fences, PM reads and DRAM/search work additionally
    charge leaf components into the calling thread's open frame; upper
    layers use this handle to open interior frames (WAL group commit,
    extent lookup, guard verify). Charges never touch simulated clocks. *)

val reset_stats : t -> unit
(** {!Stats.reset} plus the classification state behind the counters:
    per-thread reflush windows and sequentiality rings restart cold, as
    on a fresh device. (The WPQ and dirty lines are simulation state,
    not stats, and are untouched.) *)

(** {1 Data access (volatile image)}

    Accessors do not charge simulated time: loads and stores hitting the
    CPU cache are negligible next to flush costs. Multi-byte accessors are
    little-endian.

    Every accessor bounds-checks its access against the device size and
    raises [Invalid_argument] with the uniform message
    ["Pmem.Device.<op>: out of bounds (addr=_, len=_, device size=_)"]. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_int64 : t -> int -> int64
val write_int64 : t -> int -> int64 -> unit
val read_int : t -> int -> int
(** 63-bit int stored as int64; asserts the stored value fits. *)

val write_int : t -> int -> int -> unit
val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit
val fill : t -> int -> int -> char -> unit

(** {1 Persistence} *)

val set_batching : t -> bool -> unit
(** Enable per-thread flush coalescing (FliT-style, off by default): with
    batching on, {!flush} only enqueues its dirty lines into the calling
    thread's pending set — deduplicated per cache line — and the next
    ordering point ({!fence}, {!commit_flush}, {!flush_all}) drains the
    set under its single fence. A crash discards pending (undrained)
    flushes, exactly as ADR discards unflushed cache lines. *)

val batching : t -> bool

val flush : t -> Sim.Clock.t -> Stats.category -> addr:int -> len:int -> unit
(** Write back every dirty cache line in [addr, addr+len); clean lines are
    skipped for free, as [clwb] of a clean line is. Advances the thread's
    clock to the completion of the slowest line (clwb...clwb; sfence).
    With batching on ({!set_batching}) this defers instead: the lines
    persist at the thread's next ordering point. *)

val flush_weak : t -> Sim.Clock.t -> Stats.category -> addr:int -> len:int -> unit
(** Always-deferring {!flush} (regardless of the batching mode): enqueue
    the span's dirty lines into the calling thread's pending set. *)

val unpend : t -> Sim.Clock.t -> addr:int -> len:int -> unit
(** Remove the span's lines from the calling thread's pending set — the
    deferred analogue of "never flushed it": a later fence will not
    persist them. Fault-injection hooks ([Wal.unsafe_set_skip_flush])
    need this to keep their teeth under batching. *)

val pending_flushes : t -> Sim.Clock.t -> int
(** Lines currently deferred by this thread (test observability). *)

val fence : t -> Sim.Clock.t -> unit
(** Drain the calling thread's pending deferred flushes (if any), then
    charge a store fence. *)

val flush_all : t -> Sim.Clock.t -> Stats.category -> unit
(** Write back every dirty line (shutdown path: persist the whole
    volatile state, e.g. NVAlloc-GC's never-flushed bitmaps). *)

val charge_pm_read : t -> Sim.Clock.t -> lines:int -> unit
(** Charge a recovery-style scan of [lines] cache lines from the media. *)

val charge_work : t -> Sim.Clock.t -> Stats.work -> ns:float -> unit
(** Charge CPU-side work (index search, list manipulation) to the clock
    and to the breakdown accounting. *)

val dram_op : t -> Sim.Clock.t -> unit
(** Shorthand: one generic DRAM-side operation charged as [Other]. *)

val search_step : t -> Sim.Clock.t -> unit
(** Shorthand: one step of a DRAM index search charged as [Search]. *)

(** {1 Crashes and recovery support} *)

val crash : t -> unit
(** Lose the CPU caches: revert all dirty lines to the persisted image
    (eADR: persist them instead). Resets flush-history state. *)

val schedule_crash_after : ?torn:torn_mode -> ?torn_seed:int -> t -> int -> unit
(** Arm crash injection: the crash fires when the [n]-th next line flush
    begins, raising {!Injected_crash}. Without [torn], the in-flight line
    persists whole (it was admitted to the WPQ); with [torn], only the
    word subset drawn from [(torn_seed, line)] persists — the remaining
    words keep their previous persisted content. [n < 1] raises
    [Invalid_argument]. Arming while already armed replaces the pending
    countdown and torn spec. *)

val cancel_scheduled_crash : t -> unit
(** Disarm. Idempotent, and a no-op after the countdown already fired
    (firing disarms the device). *)

val crash_armed : t -> bool
(** Whether a scheduled crash is still pending (test observability). *)

val dirty_lines : t -> int
val persisted_int64 : t -> int -> int64
(** Read the persisted image directly (test observability only). *)

val persisted_u8 : t -> int -> int

(** {1 Media faults}

    Real PM media fails at rest, not only at power loss: uncorrectable
    errors surface as {e poisoned} cache lines whose reads fault, and
    long-lived heaps accumulate {e bit-rot}. The model here is
    deterministic (seeded), so fuzz plans carrying media faults replay
    from a one-line repro.

    Poisoning a line scrambles its content in both images — an
    uncorrectable error returns garbage, not stale data — and makes every
    normal read of the line raise {!Media_error} (and count a poison
    hit). Writes remain allowed: a repair path rewrites the line in place
    and then clears the poison. Poison survives {!crash} — media damage
    is not volatile state. *)

val poison : t -> line:int -> unit
(** Mark [line] poisoned and scramble its content (idempotent). *)

val clear_poison : t -> line:int -> unit
(** Unmark [line] (the content stays whatever it is — repair first). *)

val is_poisoned : t -> line:int -> bool
val poisoned_lines : t -> int list  (** ascending *)

val poisoned_count : t -> int

val poisoned_within : t -> addr:int -> len:int -> bool
(** Whether any line covering [addr, addr+len) is poisoned. *)

val clear_poison_within : t -> addr:int -> len:int -> unit

val seed_poison : t -> seed:int -> count:int -> int list -> int list
(** [seed_poison t ~seed ~count lines] poisons [count] lines sampled
    without replacement from [lines], deterministically from [seed].
    Returns the lines poisoned (fewer than [count] when the pool is
    smaller). *)

val corrupt_bit : t -> addr:int -> bit:int -> unit
(** Flip bit [bit] (0..7) of the {e persisted} byte at [addr] — at-rest
    rot in the media image. The cached (volatile) copy stays intact, so
    runtime reads are unaffected and the line's next writeback silently
    absorbs the flip; otherwise the damage surfaces when a crash
    promotes the persisted image (or a {!scrub_lines} pass catches it
    first). *)

val inject_bitrot : t -> seed:int -> flips:int -> addr:int -> len:int -> int
(** At-rest bit-rot: [flips] random single-bit flips over
    [addr, addr+len), deterministic from [seed], skipping poisoned lines.
    Returns the number of flips applied. *)

val scrub_lines : t -> addr:int -> len:int -> int
(** Rewrite every clean line in [addr, addr+len) whose persisted bytes
    have drifted from the cached copy (clean lines otherwise satisfy
    persisted = volatile, so a difference is exactly at-rest rot).
    Dirty and poisoned lines are skipped. Returns lines rewritten. *)

val sum16 : t -> addr:int -> len:int -> int
(** 16-bit content checksum over the volatile image, bypassing the poison
    check (guard machinery must be able to hash damaged lines). Reading
    [len] zero bytes yields a fixed nonzero value. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Volatile-image copy that bypasses the poison check and dirties the
    destination — the repair path's "rewrite primary from replica". *)

val note_media_repair : t -> unit
(** Count one repaired record (see {!Stats.record_media_repair}). *)

val note_quarantine : t -> unit
val note_scrub_pass : t -> unit

val note_extent_coalesced : t -> unit
(** Count one extent merge (see {!Stats.record_extent_coalesced}). *)

val note_extent_lookup : t -> unit
(** Count one extent-index tree search. *)

val note_header_flush_line : t -> unit
(** Count one cache line dirtied by a slab-header commit. *)

(** {1 Persist-ordering checker}

    In check mode the device validates declared persist-ordering
    dependencies dynamically, FliT-style: a thread declares with
    {!depends_on} the byte spans that must be durable before its next
    commit point, and {!commit_flush} — a commit-classified flush —
    validates them as it retires. A dependency is satisfied iff, when the
    commit begins, every line it covers is clean or the dependency's own
    bytes already match the persisted image (so unrelated writes sharing
    a line cannot false-positive). Violations are recorded, not raised:
    the protocol under test keeps running and {!Fault.Oracle} turns the
    record into a failure.

    The checker is per-thread (keyed by {!Sim.Clock.id}) and intended for
    the deterministic single-threaded harnesses (unit tests, the crash
    fuzzer); it is off by default and costs nothing when off. A crash
    voids pending dependencies but keeps recorded violations. *)

type violation = {
  v_commit_addr : int;
  v_commit_len : int;
  v_dep_addr : int;
  v_dep_len : int;
  v_dep_note : string;  (** caller-supplied label, e.g. ["wal:Refill"] *)
  v_dirty_line : int;  (** the dependency line still dirty at the commit *)
  v_dep_epochs : int;  (** times that line had persisted before the violation *)
}

val set_check_mode : t -> bool -> unit
(** [set_check_mode t true] starts a fresh checker (counters zeroed);
    [set_check_mode t false] discards it. *)

val check_mode : t -> bool

val depends_on : ?note:string -> t -> Sim.Clock.t -> addr:int -> len:int -> unit
(** Declare that [addr, addr+len) must be durable before this thread's
    next {!commit_flush} retires. No-op when check mode is off;
    zero-length dependencies are ignored. *)

val commit_flush : t -> Sim.Clock.t -> Stats.category -> addr:int -> len:int -> unit
(** A commit point: in check mode it first validates (and consumes) the
    thread's declared dependencies, then flushes synchronously. With
    batching on, the thread's pending deferred flushes drain (under their
    own fence) {e before} validation — dependencies deferred by earlier
    {!flush} calls are durable strictly before the commit retires. *)

val commit_flush_weak : t -> Sim.Clock.t -> Stats.category -> addr:int -> len:int -> unit
(** Validate (and consume) dependencies like {!commit_flush}, but defer
    the flush itself into the pending set. For callers that batch several
    commits behind one ordering point (WAL group commit) and have already
    made the dependencies durable. *)

val note_group_commit : t -> Sim.Clock.t -> entries:int -> unit
(** Record one closed WAL group of [entries] appends (stats counter plus
    a [group_commit] telemetry counter/histogram when a sink is attached). *)

val ordering_commits_checked : t -> int
val ordering_deps_tracked : t -> int
val ordering_violation_count : t -> int

val ordering_violations : t -> violation list
(** Oldest first; capped at the first 32 (the count keeps counting). *)

val pp_violation : Format.formatter -> violation -> unit
