type category = Meta | Wal | Log | Data
type work = Search | Other

(* Category tags index [cat_ns] and the trace's tag bytes. *)
let cat_index = function Meta -> 0 | Wal -> 1 | Log -> 2 | Data -> 3
let cat_of_index = function 0 -> Meta | 1 -> Wal | 2 -> Log | _ -> Data

type t = {
  trace_limit : int;
  mutable flushes : int;
  mutable reflushes : int;
  mutable sequentials : int;
  mutable randoms : int;
  cat_ns : float array; (* flush time by category; floats stay unboxed *)
  mutable t_fence : float;
  mutable t_read : float;
  mutable t_search : float;
  mutable t_other : float;
  (* Batched-persistence pipeline: how much synchronous persist traffic
     the coalescing buffers and WAL group commit absorbed. *)
  mutable fences_saved : int;
  mutable flushes_coalesced : int;
  mutable group_commits : int;
  mutable group_commit_entries : int;
  (* Media-fault model: reads that hit a poisoned line, repairs that
     rewrote a damaged record from its replica, regions written off as
     unrepairable, injected bit flips, and completed scrub passes. *)
  mutable poison_hits : int;
  mutable media_repairs : int;
  mutable media_quarantines : int;
  mutable bitrot_flips : int;
  mutable scrub_passes : int;
  (* Metadata-layout counters (packed headers + extent trees): extents
     merged by coalescing, balanced-tree searches in the extent index,
     and cache lines dirtied by slab-header commits (one per commit with
     the packed header — the paper's "fewer dirty metadata lines"). *)
  mutable extents_coalesced : int;
  mutable extent_tree_lookups : int;
  mutable header_flush_lines : int;
  (* First [trace_limit] metadata-class flushes, as two preallocated
     parallel buffers (category tag byte + address). The former list
     prepend allocated a cons + tuple per traced flush and needed a final
     List.rev; this records with two stores and no allocation. *)
  trace_cats : Bytes.t;
  trace_addrs : int array;
  mutable traced : int;
}

let create ?(trace_limit = 1000) () =
  if trace_limit < 0 then
    invalid_arg
      (Printf.sprintf "Pmem.Stats.create: trace_limit must be >= 0 (got %d)" trace_limit);
  {
    trace_limit;
    flushes = 0;
    reflushes = 0;
    sequentials = 0;
    randoms = 0;
    cat_ns = Array.make 4 0.0;
    t_fence = 0.0;
    t_read = 0.0;
    t_search = 0.0;
    t_other = 0.0;
    fences_saved = 0;
    flushes_coalesced = 0;
    group_commits = 0;
    group_commit_entries = 0;
    poison_hits = 0;
    media_repairs = 0;
    media_quarantines = 0;
    bitrot_flips = 0;
    scrub_passes = 0;
    extents_coalesced = 0;
    extent_tree_lookups = 0;
    header_flush_lines = 0;
    trace_cats = Bytes.make (max trace_limit 1) '\000';
    trace_addrs = Array.make (max trace_limit 1) 0;
    traced = 0;
  }

let reset t =
  t.flushes <- 0;
  t.reflushes <- 0;
  t.sequentials <- 0;
  t.randoms <- 0;
  Array.fill t.cat_ns 0 4 0.0;
  t.t_fence <- 0.0;
  t.t_read <- 0.0;
  t.t_search <- 0.0;
  t.t_other <- 0.0;
  t.fences_saved <- 0;
  t.flushes_coalesced <- 0;
  t.group_commits <- 0;
  t.group_commit_entries <- 0;
  t.poison_hits <- 0;
  t.media_repairs <- 0;
  t.media_quarantines <- 0;
  t.bitrot_flips <- 0;
  t.scrub_passes <- 0;
  t.extents_coalesced <- 0;
  t.extent_tree_lookups <- 0;
  t.header_flush_lines <- 0;
  (* Zero the trace buffers too, not just the cursor: a reset instance
     must not leak the previous run's addresses through the raw buffers,
     and must be indistinguishable from a fresh instance. *)
  Bytes.fill t.trace_cats 0 (Bytes.length t.trace_cats) '\000';
  Array.fill t.trace_addrs 0 (Array.length t.trace_addrs) 0;
  t.traced <- 0

let record_flush t cat ~addr ~reflush ~sequential ~ns =
  t.flushes <- t.flushes + 1;
  if reflush then t.reflushes <- t.reflushes + 1
  else if sequential then t.sequentials <- t.sequentials + 1
  else t.randoms <- t.randoms + 1;
  let idx = cat_index cat in
  t.cat_ns.(idx) <- t.cat_ns.(idx) +. ns;
  (* Data flushes (idx 3) are not traced; once the trace is full the
     whole branch is one compare on the common path. *)
  if t.traced < t.trace_limit && idx < 3 then begin
    Bytes.set t.trace_cats t.traced (Char.chr idx);
    t.trace_addrs.(t.traced) <- addr;
    t.traced <- t.traced + 1
  end

let record_fence t ~ns = t.t_fence <- t.t_fence +. ns
let record_read t ~ns = t.t_read <- t.t_read +. ns
let record_fences_saved t n = if n > 0 then t.fences_saved <- t.fences_saved + n
let record_flush_coalesced t = t.flushes_coalesced <- t.flushes_coalesced + 1

let record_group_commit t ~entries =
  t.group_commits <- t.group_commits + 1;
  t.group_commit_entries <- t.group_commit_entries + entries

let record_poison_hit t = t.poison_hits <- t.poison_hits + 1
let record_media_repair t = t.media_repairs <- t.media_repairs + 1
let record_quarantine t = t.media_quarantines <- t.media_quarantines + 1
let record_bitrot t n = if n > 0 then t.bitrot_flips <- t.bitrot_flips + n
let record_scrub_pass t = t.scrub_passes <- t.scrub_passes + 1
let record_extent_coalesced t = t.extents_coalesced <- t.extents_coalesced + 1
let record_extent_lookup t = t.extent_tree_lookups <- t.extent_tree_lookups + 1
let record_header_flush_line t = t.header_flush_lines <- t.header_flush_lines + 1

let charge_work t work ~ns =
  match work with
  | Search -> t.t_search <- t.t_search +. ns
  | Other -> t.t_other <- t.t_other +. ns

let flushes t = t.flushes
let poison_hits t = t.poison_hits
let media_repairs t = t.media_repairs
let media_quarantines t = t.media_quarantines
let bitrot_flips t = t.bitrot_flips
let scrub_passes t = t.scrub_passes
let extents_coalesced t = t.extents_coalesced
let extent_tree_lookups t = t.extent_tree_lookups
let header_flush_lines t = t.header_flush_lines
let fences_saved t = t.fences_saved
let flushes_coalesced t = t.flushes_coalesced
let group_commits t = t.group_commits
let group_commit_entries t = t.group_commit_entries

let group_commit_size t =
  if t.group_commits = 0 then 0.0
  else float_of_int t.group_commit_entries /. float_of_int t.group_commits

let reflushes t = t.reflushes
let sequential_flushes t = t.sequentials
let random_flushes t = t.randoms

let reflush_ratio t =
  if t.flushes = 0 then 0.0 else float_of_int t.reflushes /. float_of_int t.flushes

let flush_time t cat = t.cat_ns.(cat_index cat)
let work_time t = function Search -> t.t_search | Other -> t.t_other
let total_flush_time t = t.cat_ns.(0) +. t.cat_ns.(1) +. t.cat_ns.(2) +. t.cat_ns.(3)

let trace t =
  List.init t.traced (fun i ->
      (cat_of_index (Char.code (Bytes.get t.trace_cats i)), t.trace_addrs.(i)))

(* --- machine-readable dump --------------------------------------------- *)

let cat_name = function Meta -> "meta" | Wal -> "wal" | Log -> "log" | Data -> "data"

let cat_of_name = function
  | "meta" -> Some Meta
  | "wal" -> Some Wal
  | "log" -> Some Log
  | "data" -> Some Data
  | _ -> None

let json_schema = "nvalloc/stats/v4"
let json_schema_v3 = "nvalloc/stats/v3"
let json_schema_v2 = "nvalloc/stats/v2"
let json_schema_v1 = "nvalloc/stats/v1"

let to_json t =
  let open Telemetry.Json in
  Obj
    [
      ("schema", Str json_schema);
      ("trace_limit", Num (float_of_int t.trace_limit));
      ("flushes", Num (float_of_int t.flushes));
      ("reflushes", Num (float_of_int t.reflushes));
      ("sequential_flushes", Num (float_of_int t.sequentials));
      ("random_flushes", Num (float_of_int t.randoms));
      ("reflush_ratio", Num (reflush_ratio t));
      ( "flush_ns",
        Obj
          [
            ("meta", Num t.cat_ns.(0));
            ("wal", Num t.cat_ns.(1));
            ("log", Num t.cat_ns.(2));
            ("data", Num t.cat_ns.(3));
          ] );
      ("fence_ns", Num t.t_fence);
      ("read_ns", Num t.t_read);
      ("search_ns", Num t.t_search);
      ("other_ns", Num t.t_other);
      ("fences_saved", Num (float_of_int t.fences_saved));
      ("flushes_coalesced", Num (float_of_int t.flushes_coalesced));
      ("group_commits", Num (float_of_int t.group_commits));
      ("group_commit_entries", Num (float_of_int t.group_commit_entries));
      ("group_commit_size", Num (group_commit_size t));
      ("poison_hits", Num (float_of_int t.poison_hits));
      ("media_repairs", Num (float_of_int t.media_repairs));
      ("media_quarantines", Num (float_of_int t.media_quarantines));
      ("bitrot_flips", Num (float_of_int t.bitrot_flips));
      ("scrub_passes", Num (float_of_int t.scrub_passes));
      ("extents_coalesced", Num (float_of_int t.extents_coalesced));
      ("extent_tree_lookups", Num (float_of_int t.extent_tree_lookups));
      ("header_flush_lines", Num (float_of_int t.header_flush_lines));
      ( "trace",
        Arr
          (List.init t.traced (fun i ->
               Obj
                 [
                   ("cat", Str (cat_name (cat_of_index (Char.code (Bytes.get t.trace_cats i)))));
                   ("addr", Num (float_of_int t.trace_addrs.(i)));
                 ])) );
    ]

let of_json j =
  let open Telemetry.Json in
  let ( let* ) r f = Result.bind r f in
  let field name conv j =
    match Option.bind (member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Stats.of_json: missing or ill-typed field %S" name)
  in
  let* schema = field "schema" str j in
  let* schema_rank =
    if schema = json_schema then Ok 4
    else if schema = json_schema_v3 then Ok 3
    else if schema = json_schema_v2 then Ok 2
    else if schema = json_schema_v1 then Ok 1
    else Error (Printf.sprintf "Stats.of_json: unknown schema %S" schema)
  in
  let int_field name = field name (fun v -> Option.map int_of_float (num v)) j in
  (* Counters read back as zero from documents older than the schema
     revision that introduced them: v2 added the batching pipeline, v3
     the media-fault model, v4 the metadata-layout counters. Documents at
     or after the introducing revision must carry the field. *)
  let opt_int_field ~since name =
    let since_rank = match since with `V2 -> 2 | `V3 -> 3 | `V4 -> 4 in
    match member name j with
    | None when schema_rank < since_rank -> Ok 0
    | _ -> int_field name
  in
  let v2_int_field = opt_int_field ~since:`V2 in
  let v3_int_field = opt_int_field ~since:`V3 in
  let v4_int_field = opt_int_field ~since:`V4 in
  let num_field name = field name num j in
  let* trace_limit = int_field "trace_limit" in
  let* () =
    if trace_limit >= 0 then Ok () else Error "Stats.of_json: negative trace_limit"
  in
  let* flushes = int_field "flushes" in
  let* reflushes = int_field "reflushes" in
  let* sequentials = int_field "sequential_flushes" in
  let* randoms = int_field "random_flushes" in
  let* by_cat = field "flush_ns" Option.some j in
  let* meta_ns = field "meta" num by_cat in
  let* wal_ns = field "wal" num by_cat in
  let* log_ns = field "log" num by_cat in
  let* data_ns = field "data" num by_cat in
  let* fence_ns = num_field "fence_ns" in
  let* read_ns = num_field "read_ns" in
  let* search_ns = num_field "search_ns" in
  let* other_ns = num_field "other_ns" in
  let* fences_saved = v2_int_field "fences_saved" in
  let* flushes_coalesced = v2_int_field "flushes_coalesced" in
  let* group_commits = v2_int_field "group_commits" in
  let* group_commit_entries = v2_int_field "group_commit_entries" in
  let* poison_hits = v3_int_field "poison_hits" in
  let* media_repairs = v3_int_field "media_repairs" in
  let* media_quarantines = v3_int_field "media_quarantines" in
  let* bitrot_flips = v3_int_field "bitrot_flips" in
  let* scrub_passes = v3_int_field "scrub_passes" in
  let* extents_coalesced = v4_int_field "extents_coalesced" in
  let* extent_tree_lookups = v4_int_field "extent_tree_lookups" in
  let* header_flush_lines = v4_int_field "header_flush_lines" in
  let* trace = field "trace" arr j in
  let* () =
    if List.length trace <= trace_limit then Ok ()
    else Error "Stats.of_json: trace longer than trace_limit"
  in
  let t = create ~trace_limit () in
  t.flushes <- flushes;
  t.reflushes <- reflushes;
  t.sequentials <- sequentials;
  t.randoms <- randoms;
  t.cat_ns.(0) <- meta_ns;
  t.cat_ns.(1) <- wal_ns;
  t.cat_ns.(2) <- log_ns;
  t.cat_ns.(3) <- data_ns;
  t.t_fence <- fence_ns;
  t.t_read <- read_ns;
  t.t_search <- search_ns;
  t.t_other <- other_ns;
  t.fences_saved <- fences_saved;
  t.flushes_coalesced <- flushes_coalesced;
  t.group_commits <- group_commits;
  t.group_commit_entries <- group_commit_entries;
  t.poison_hits <- poison_hits;
  t.media_repairs <- media_repairs;
  t.media_quarantines <- media_quarantines;
  t.bitrot_flips <- bitrot_flips;
  t.scrub_passes <- scrub_passes;
  t.extents_coalesced <- extents_coalesced;
  t.extent_tree_lookups <- extent_tree_lookups;
  t.header_flush_lines <- header_flush_lines;
  let rec load = function
    | [] -> Ok t
    | entry :: rest ->
        let* cat =
          match Option.bind (Option.bind (member "cat" entry) str) cat_of_name with
          | Some c -> Ok c
          | None -> Error "Stats.of_json: bad trace entry category"
        in
        let* addr = field "addr" (fun v -> Option.map int_of_float (num v)) entry in
        Bytes.set t.trace_cats t.traced (Char.chr (cat_index cat));
        t.trace_addrs.(t.traced) <- addr;
        t.traced <- t.traced + 1;
        load rest
  in
  load trace

let to_json_string t = Telemetry.Json.to_string (to_json t)

let of_json_string s =
  Result.bind (Telemetry.Json.parse s) (fun j -> of_json j)

let pp_summary ppf t =
  Format.fprintf ppf
    "flushes=%d reflush=%d (%.1f%%) seq=%d rand=%d meta=%.0fns wal=%.0fns log=%.0fns \
     data=%.0fns saved_fences=%d coalesced=%d group_commits=%d (avg %.1f) \
     header_lines=%d ext_coalesced=%d ext_lookups=%d"
    t.flushes t.reflushes
    (100.0 *. reflush_ratio t)
    t.sequentials t.randoms t.cat_ns.(0) t.cat_ns.(1) t.cat_ns.(2) t.cat_ns.(3)
    t.fences_saved t.flushes_coalesced t.group_commits (group_commit_size t)
    t.header_flush_lines t.extents_coalesced t.extent_tree_lookups
