type category = Meta | Wal | Log | Data
type work = Search | Other

(* Category tags index [cat_ns] and the trace's tag bytes. *)
let cat_index = function Meta -> 0 | Wal -> 1 | Log -> 2 | Data -> 3
let cat_of_index = function 0 -> Meta | 1 -> Wal | 2 -> Log | _ -> Data

type t = {
  trace_limit : int;
  mutable flushes : int;
  mutable reflushes : int;
  mutable sequentials : int;
  mutable randoms : int;
  cat_ns : float array; (* flush time by category; floats stay unboxed *)
  mutable t_fence : float;
  mutable t_read : float;
  mutable t_search : float;
  mutable t_other : float;
  (* First [trace_limit] metadata-class flushes, as two preallocated
     parallel buffers (category tag byte + address). The former list
     prepend allocated a cons + tuple per traced flush and needed a final
     List.rev; this records with two stores and no allocation. *)
  trace_cats : Bytes.t;
  trace_addrs : int array;
  mutable traced : int;
}

let create ?(trace_limit = 1000) () =
  {
    trace_limit;
    flushes = 0;
    reflushes = 0;
    sequentials = 0;
    randoms = 0;
    cat_ns = Array.make 4 0.0;
    t_fence = 0.0;
    t_read = 0.0;
    t_search = 0.0;
    t_other = 0.0;
    trace_cats = Bytes.make (max trace_limit 1) '\000';
    trace_addrs = Array.make (max trace_limit 1) 0;
    traced = 0;
  }

let reset t =
  t.flushes <- 0;
  t.reflushes <- 0;
  t.sequentials <- 0;
  t.randoms <- 0;
  Array.fill t.cat_ns 0 4 0.0;
  t.t_fence <- 0.0;
  t.t_read <- 0.0;
  t.t_search <- 0.0;
  t.t_other <- 0.0;
  t.traced <- 0

let record_flush t cat ~addr ~reflush ~sequential ~ns =
  t.flushes <- t.flushes + 1;
  if reflush then t.reflushes <- t.reflushes + 1
  else if sequential then t.sequentials <- t.sequentials + 1
  else t.randoms <- t.randoms + 1;
  let idx = cat_index cat in
  t.cat_ns.(idx) <- t.cat_ns.(idx) +. ns;
  (* Data flushes (idx 3) are not traced; once the trace is full the
     whole branch is one compare on the common path. *)
  if t.traced < t.trace_limit && idx < 3 then begin
    Bytes.set t.trace_cats t.traced (Char.chr idx);
    t.trace_addrs.(t.traced) <- addr;
    t.traced <- t.traced + 1
  end

let record_fence t ~ns = t.t_fence <- t.t_fence +. ns
let record_read t ~ns = t.t_read <- t.t_read +. ns

let charge_work t work ~ns =
  match work with
  | Search -> t.t_search <- t.t_search +. ns
  | Other -> t.t_other <- t.t_other +. ns

let flushes t = t.flushes
let reflushes t = t.reflushes
let sequential_flushes t = t.sequentials
let random_flushes t = t.randoms

let reflush_ratio t =
  if t.flushes = 0 then 0.0 else float_of_int t.reflushes /. float_of_int t.flushes

let flush_time t cat = t.cat_ns.(cat_index cat)
let work_time t = function Search -> t.t_search | Other -> t.t_other
let total_flush_time t = t.cat_ns.(0) +. t.cat_ns.(1) +. t.cat_ns.(2) +. t.cat_ns.(3)

let trace t =
  List.init t.traced (fun i ->
      (cat_of_index (Char.code (Bytes.get t.trace_cats i)), t.trace_addrs.(i)))

let pp_summary ppf t =
  Format.fprintf ppf
    "flushes=%d reflush=%d (%.1f%%) seq=%d rand=%d meta=%.0fns wal=%.0fns log=%.0fns data=%.0fns"
    t.flushes t.reflushes
    (100.0 *. reflush_ratio t)
    t.sequentials t.randoms t.cat_ns.(0) t.cat_ns.(1) t.cat_ns.(2) t.cat_ns.(3)
