(** Counters and time accounting for one allocator instance.

    The paper's evaluation needs three kinds of observability:
    - flush classification counts (Figure 1a: reflush vs regular flush);
    - a trace of the first flush addresses of metadata (Figure 2);
    - execution-time breakdown by category (Figure 11: FlushMeta,
      FlushWAL, Search, Other — we additionally separate the bookkeeping
      log as FlushLog and user payload as FlushData). *)

type category = Meta | Wal | Log | Data
(** What a flush persists. [Meta] — slab bitmaps / headers / extent
    headers; [Wal] — write-ahead-log entries; [Log] — the log-structured
    bookkeeping log; [Data] — user payload (root pointers, object bodies). *)

type work = Search | Other
(** CPU-side time categories for the breakdown. *)

type t

val cat_index : category -> int
(** Stable index 0..3 ([Meta], [Wal], [Log], [Data]) — used by callers
    that keep per-category arrays (telemetry handles, breakdowns). *)

val cat_name : category -> string
(** Lower-case label: ["meta"], ["wal"], ["log"], ["data"]. *)

val create : ?trace_limit:int -> unit -> t
(** [trace_limit] bounds the recorded flush-address trace (default 1000,
    matching Figure 2's "first 1000 flush operations"). [trace_limit:0]
    disables tracing; negative raises [Invalid_argument]. *)

val reset : t -> unit
(** Zero every counter, time and the flush trace (buffers included) — a
    reset instance is indistinguishable from a fresh one. *)

(* Recording (used by Device and by allocators). *)

val record_flush :
  t -> category -> addr:int -> reflush:bool -> sequential:bool -> ns:float -> unit

val record_fence : t -> ns:float -> unit
val record_read : t -> ns:float -> unit
val charge_work : t -> work -> ns:float -> unit

val record_fences_saved : t -> int -> unit
(** [n] fence charges avoided because a single drain persisted what [n+1]
    synchronous commit sites would each have fenced for. No-op for n<=0. *)

val record_flush_coalesced : t -> unit
(** A deferred flush deduplicated against a line already pending (or
    already persisted by the time its batch drained). *)

val record_group_commit : t -> entries:int -> unit
(** One WAL group closed, covering [entries] appends. *)

(* Media-fault model (poisoned lines, bit-rot, repair and scrub). *)

val record_poison_hit : t -> unit
(** A read touched a poisoned cache line and raised [Device.Media_error]. *)

val record_media_repair : t -> unit
(** A damaged metadata record was rewritten from its replica (or its
    replica re-synced from a healthy primary). *)

val record_quarantine : t -> unit
(** A metadata region was written off as unrepairable and withdrawn from
    service. *)

val record_bitrot : t -> int -> unit
(** [n] bit flips were injected into the persisted image. No-op for n<=0. *)

val record_scrub_pass : t -> unit
(** One background scrub pass over the metadata regions completed. *)

(* Metadata layout (packed headers + extent trees). *)

val record_extent_coalesced : t -> unit
(** Two adjacent free extents were merged into one. *)

val record_extent_lookup : t -> unit
(** One balanced-tree search in the extent index (floor/ceiling/best-fit). *)

val record_header_flush_line : t -> unit
(** One cache line dirtied by a slab-header commit (exactly one per
    commit with the packed header word). *)

(* Reporting. *)

val flushes : t -> int
(** Total flush operations (reflushes included). *)

val reflushes : t -> int
val sequential_flushes : t -> int
val random_flushes : t -> int
val fences_saved : t -> int
val flushes_coalesced : t -> int
val group_commits : t -> int
val group_commit_entries : t -> int
val poison_hits : t -> int
val media_repairs : t -> int
val media_quarantines : t -> int
val bitrot_flips : t -> int
val scrub_passes : t -> int
val extents_coalesced : t -> int
val extent_tree_lookups : t -> int
val header_flush_lines : t -> int

val group_commit_size : t -> float
(** Mean appends per closed WAL group; 0 when no group ever closed. *)

val reflush_ratio : t -> float
(** Fraction of flushes that were reflushes; 0 when no flushes occurred. *)

val flush_time : t -> category -> float
val work_time : t -> work -> float

val total_flush_time : t -> float
val trace : t -> (category * int) list
(** Flush trace in issue order: category and byte address, truncated to
    [trace_limit] metadata-class entries (Meta, Wal and Log; Figure 2
    plots metadata flushes only). *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Machine-readable dump} *)

val to_json : t -> Telemetry.Json.t
(** Every counter, time and the recorded flush trace, schema
    ["nvalloc/stats/v4"]. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] reconstructs an
    observationally equal instance. Documents with the earlier schemas
    ["nvalloc/stats/v1"] (pre-batching), ["nvalloc/stats/v2"]
    (pre-media) or ["nvalloc/stats/v3"] (pre-metadata-layout) still
    load; counters a schema predates read back as zero. *)

val to_json_string : t -> string
val of_json_string : string -> (t, string) result
