(** Dirty-line bitmap of a simulated device.

    One bit per 64 B cache line, stored as per-1 MiB-chunk bitmaps that
    are allocated lazily alongside {!Store}'s data chunks. Replaces the
    former [(int, unit) Hashtbl.t] dirty set: mark/test/clear are O(1)
    bit operations, the dirty count is maintained incrementally, and
    whole-device sweeps ({!iter}) skip clean regions word-at-a-time. *)

type t

val create : size:int -> t
(** [size] is the device capacity in bytes (multiple of the cache-line
    size); lines are indexed [0 .. size/64 - 1]. *)

val mark : t -> int -> unit
(** Set one line dirty. *)

val mark_range : t -> first:int -> last:int -> unit
(** Set lines [first..last] (inclusive) dirty, word-at-a-time. *)

val test : t -> int -> bool
val clear : t -> int -> unit

val count : t -> int
(** Number of dirty lines; O(1). *)

val iter : t -> (int -> unit) -> unit
(** Visit every dirty line in ascending order. The callback may {!clear}
    the line it is given (each bitmap word is snapshotted before its
    bits are dispatched); it must not mark new lines. *)

val reset : t -> unit
(** Drop all dirty bits (crash path). *)
