(* Fixed-capacity move-to-front LRU over a ring buffer.

   The former implementation kept the LRU in a plain array and shifted
   the whole window on every miss (the common case in reflush-light
   streams). Here the front is a moving [head] index: a miss is O(scan)
   with an O(1) insert that overwrites the victim in place; only a hit at
   distance [d] pays an O(d) rotation to restore recency order. Slots
   hold plain ints (cache-line or XPLine indices), so no allocation ever
   happens after [create], except the [Some d] of a hit. *)

type t = { cap : int; slots : int array; mutable head : int; mutable len : int }

let create capacity =
  assert (capacity >= 0);
  { cap = capacity; slots = Array.make (max capacity 1) min_int; head = 0; len = 0 }

let capacity t = t.cap
let length t = t.len

(* Physical slot of logical position [i] (0 = most recent). *)
let slot t i =
  let p = t.head + i in
  if p >= t.cap then p - t.cap else p

(* Logical position of [v], or -1. Tail recursion over int arguments:
   this is the per-flush hot path, and unlike a [ref]-based loop it
   allocates nothing. *)
let rec find_from t v i =
  if i >= t.len then -1
  else
    let p = t.head + i in
    let p = if p >= t.cap then p - t.cap else p in
    if Array.unsafe_get t.slots p = v then i else find_from t v (i + 1)

let find t v = find_from t v 0

let touch t v =
  let w = t.cap in
  if w = 0 then None
  else
    match find t v with
    | -1 ->
        t.head <- (if t.head = 0 then w - 1 else t.head - 1);
        Array.unsafe_set t.slots t.head v;
        if t.len < w then t.len <- t.len + 1;
        None
    | d ->
        for i = d downto 1 do
          t.slots.(slot t i) <- t.slots.(slot t (i - 1))
        done;
        t.slots.(t.head) <- v;
        Some d

(* [touch] for streams that only need the hit/miss bit: same window
   update, no [Some] allocation on hits. *)
let touch_mem t v =
  let w = t.cap in
  if w = 0 then false
  else
    match find t v with
    | -1 ->
        t.head <- (if t.head = 0 then w - 1 else t.head - 1);
        Array.unsafe_set t.slots t.head v;
        if t.len < w then t.len <- t.len + 1;
        false
    | d ->
        for i = d downto 1 do
          t.slots.(slot t i) <- t.slots.(slot t (i - 1))
        done;
        t.slots.(t.head) <- v;
        true

(* Does the window contain [v] or [v - 1]? (The Device's XPLine
   sequentiality test; specialised here to keep the hot path free of a
   closure allocation per flush.) *)
let rec mem_self_or_pred_from t v i =
  if i >= t.len then false
  else
    let p = t.head + i in
    let p = if p >= t.cap then p - t.cap else p in
    let s = Array.unsafe_get t.slots p in
    s = v || s + 1 = v || mem_self_or_pred_from t v (i + 1)

let mem_self_or_pred t v = mem_self_or_pred_from t v 0

(* Fusion of [mem_self_or_pred] (on the pre-touch window) and
   [touch_mem]: one scan finds both the position of [v] and whether [v]
   or [v - 1] is present, then applies the same move-to-front update.
   One ring traversal per flush instead of two. *)
let touch_seq t v =
  let w = t.cap in
  if w = 0 then false
  else begin
    let pos = ref (-1) in
    let seq = ref false in
    for i = 0 to t.len - 1 do
      let p = t.head + i in
      let p = if p >= w then p - w else p in
      let s = Array.unsafe_get t.slots p in
      if s = v then begin
        seq := true;
        if !pos < 0 then pos := i
      end
      else if s + 1 = v then seq := true
    done;
    (match !pos with
    | -1 ->
        t.head <- (if t.head = 0 then w - 1 else t.head - 1);
        Array.unsafe_set t.slots t.head v;
        if t.len < w then t.len <- t.len + 1
    | d ->
        for i = d downto 1 do
          t.slots.(slot t i) <- t.slots.(slot t (i - 1))
        done;
        t.slots.(t.head) <- v);
    !seq
  end

let exists t p =
  let rec go i = i < t.len && (p t.slots.(slot t i) || go (i + 1)) in
  go 0

let to_list t = List.init t.len (fun i -> t.slots.(slot t i))

let reset t =
  t.head <- 0;
  t.len <- 0
