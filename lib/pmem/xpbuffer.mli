(** Model of the Optane write-pending queue (XPBuffer).

    A shared leaky bucket: occupancy drains at one entry per
    [wpq_drain_ns] (the media write bandwidth); enqueueing into a full
    bucket stalls until a slot frees. On ADR a flush waits only for WPQ
    acceptance plus its classified line cost — the media write drains
    asynchronously — so the bucket is invisible until the device is
    oversubscribed. This produces the throughput plateaus of Figures
    9/10/12 and the stripes-vs-threads interaction of Figure 16(a):
    bursts of flushes to many distinct lines (exactly what a large
    bit-stripe count produces under high thread counts) fill it. *)

type t

val create : Latency.t -> t
val reset : t -> unit

val admit : t -> now:float -> media_ns:float -> float
(** [admit t ~now ~media_ns] pushes one line write issued at time [now]
    whose thread-visible cost is [media_ns]. Returns the completion time
    ([now + stall + media_ns]) where the stall is nonzero only when the
    bucket is full. The calling thread's clock advances to the returned
    time (clwb...clwb; sfence). *)

val stall_time : t -> float
(** Total stall time injected so far (for diagnostics). *)

val occupancy : t -> now:float -> float
(** Queue depth at simulated time [now], in entries (may exceed the
    nominal capacity while a stall drains). Telemetry/diagnostics only. *)
