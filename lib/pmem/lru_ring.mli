(** Fixed-capacity move-to-front LRU of ints over a ring buffer.

    Used by {!Device} for the per-thread reflush-distance window and the
    recent-XPLine window. Observationally equivalent to an array-shift
    LRU (same distances, same eviction order) but a miss — the common
    case — inserts in O(1) by moving the head instead of shifting the
    whole window. Allocation-free after {!create}. *)

type t

val create : int -> t
(** [create capacity]. A capacity of 0 yields a ring on which {!touch}
    always misses and records nothing. *)

val capacity : t -> int
val length : t -> int

val touch : t -> int -> int option
(** [touch t v] returns the LRU distance of [v] before the touch
    ([Some 0] = most recently touched, [None] = not in the window) and
    moves [v] to the front, evicting the least-recent entry if the ring
    is full. *)

val touch_mem : t -> int -> bool
(** [touch] returning only whether the value was already in the window;
    avoids the [Some] allocation on hits. *)

val mem_self_or_pred : t -> int -> bool
(** Does the window contain [v] or [v - 1]? Closure-free specialisation
    of the XPLine sequentiality test. *)

val touch_seq : t -> int -> bool
(** [mem_self_or_pred] on the pre-touch window fused with {!touch_mem}'s
    update, in a single scan: the per-flush XPLine sequentiality check. *)

val exists : t -> (int -> bool) -> bool
(** Predicate over the current window, most recent first. *)

val to_list : t -> int list
(** Window contents, most recent first (tests/debugging). *)

val reset : t -> unit
