(* The media state lives in an all-float record so the per-flush updates
   store unboxed floats instead of allocating a box per assignment (a
   mixed record would box its float fields). *)
type state = {
  mutable media_free : float; (* virtual time the media catches up with the queue *)
  mutable stalls : float;
}

type t = { lat : Latency.t; st : state }

let create lat = { lat; st = { media_free = 0.0; stalls = 0.0 } }

let reset t =
  t.st.media_free <- 0.0;
  t.st.stalls <- 0.0

let[@inline] admit t ~now ~media_ns =
  let lat = t.lat and st = t.st in
  (* The WPQ absorbs up to [capacity] entries of backlog; beyond that the
     flush stalls until the media catches up. Each admitted line occupies
     the shared media for its classified latency divided by the media
     parallelism, which is what bounds aggregate flush bandwidth.
     Comparisons are open-coded (no Float.max calls) so every
     intermediate stays an unboxed local. *)
  let window = float_of_int lat.Latency.wpq_capacity *. lat.Latency.wpq_drain_ns in
  let backlog = st.media_free -. now in
  let backlog = if backlog > 0.0 then backlog else 0.0 in
  let stall = backlog -. window in
  let stall = if stall > 0.0 then stall else 0.0 in
  st.stalls <- st.stalls +. stall;
  let start = now +. stall in
  let media_free = st.media_free in
  let busy_from = if media_free > start then media_free else start in
  st.media_free <- busy_from +. (media_ns /. lat.Latency.media_parallelism);
  start +. media_ns

let stall_time t = t.st.stalls

let occupancy t ~now =
  (* Entries still queued at [now]: the backlog the media has yet to
     drain, in drain-slot units. Telemetry-only — never consulted on the
     simulation path. *)
  let backlog = t.st.media_free -. now in
  if backlog <= 0.0 then 0.0 else backlog /. t.lat.Latency.wpq_drain_ns
