let page_size = 4096
let mmap_ns = 1800.0
let munmap_ns = 1200.0

type region = { addr : int; size : int }

type t = {
  dev : Device.t;
  mutable free : region list; (* sorted by addr, coalesced *)
  mutable mapped : int;
  mutable peak : int;
}

let create ?(start = 0) dev =
  assert (start mod page_size = 0 && start < Device.size dev);
  { dev; free = [ { addr = start; size = Device.size dev - start } ]; mapped = 0; peak = 0 }

let device t = t.dev

let round_up size = (size + page_size - 1) / page_size * page_size

let mmap t clock ~size =
  let size = round_up (max size page_size) in
  Device.charge_work t.dev clock Stats.Other ~ns:mmap_ns;
  let rec take acc = function
    | [] -> raise Out_of_memory
    | r :: rest when r.size >= size ->
        let leftover =
          if r.size = size then [] else [ { addr = r.addr + size; size = r.size - size } ]
        in
        t.free <- List.rev_append acc (leftover @ rest);
        r.addr
    | r :: rest -> take (r :: acc) rest
  in
  let addr = take [] t.free in
  t.mapped <- t.mapped + size;
  if t.mapped > t.peak then t.peak <- t.mapped;
  addr

let munmap t clock ?(decommitted = 0) ~addr ~size () =
  let size = round_up size in
  if addr mod page_size <> 0 then
    invalid_arg (Printf.sprintf "Pmem.Dax.munmap: unaligned addr %d (page size %d)" addr page_size);
  Device.charge_work t.dev clock Stats.Other ~ns:munmap_ns;
  (* [decommitted] bytes of the range already left the mapped count at
     decommit time; subtracting them again would double-count. *)
  t.mapped <- t.mapped - (size - round_up decommitted);
  (* Insert in address order and coalesce with neighbours. *)
  let rec insert = function
    | [] -> [ { addr; size } ]
    | r :: rest ->
        if addr + size < r.addr then { addr; size } :: r :: rest
        else if addr + size = r.addr then { addr; size = size + r.size } :: rest
        else if r.addr + r.size = addr then
          match insert_merged { addr = r.addr; size = r.size + size } rest with
          | merged -> merged
        else begin
          assert (r.addr + r.size < addr);
          r :: insert rest
        end
  and insert_merged merged = function
    | r :: rest when merged.addr + merged.size = r.addr ->
        { merged with size = merged.size + r.size } :: rest
    | rest -> merged :: rest
  in
  t.free <- insert t.free

let fault_ns_per_page = 250.0

let decommit t clock ~addr ~size =
  ignore addr;
  let size = round_up size in
  Device.charge_work t.dev clock Stats.Other ~ns:munmap_ns;
  t.mapped <- t.mapped - size

let recommit t clock ~addr ~size =
  ignore addr;
  let size = round_up size in
  let pages = size / page_size in
  Device.charge_work t.dev clock Stats.Other ~ns:(float_of_int pages *. fault_ns_per_page);
  t.mapped <- t.mapped + size;
  if t.mapped > t.peak then t.peak <- t.mapped

let mapped_bytes t = t.mapped
let peak_mapped_bytes t = t.peak
let reset_peak t = t.peak <- t.mapped
