(** Chunked, lazily allocated byte store.

    A memory image of the device. Chunks (1 MiB) are allocated on first
    write; unwritten chunks read as zeros. This keeps creating a 512 MiB
    simulated device O(1) and its resident size proportional to the bytes
    actually touched — the harness creates hundreds of devices.

    Chunk size is a multiple of the cache-line size, so line-granular
    operations never straddle chunks; word accessors handle the (rare)
    straddling byte ranges with a slow path. *)

type t

val chunk_bytes : int
val create : size:int -> t
val size : t -> int
val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit
val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit
val fill : t -> int -> int -> char -> unit

val copy_line : src:t -> dst:t -> int -> unit
(** [copy_line ~src ~dst line] copies one 64 B cache line. *)

val allocated_chunks : t -> int
(** Number of chunks materialised so far (observability: [fill] with
    ['\000'] must never allocate one — see the regression test). *)
